file(REMOVE_RECURSE
  "libat_aoa.a"
)
