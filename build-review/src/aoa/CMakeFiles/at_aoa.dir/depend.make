# Empty dependencies file for at_aoa.
# This may be replaced when dependencies are built.
