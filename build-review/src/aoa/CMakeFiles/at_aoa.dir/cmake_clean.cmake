file(REMOVE_RECURSE
  "CMakeFiles/at_aoa.dir/covariance.cpp.o"
  "CMakeFiles/at_aoa.dir/covariance.cpp.o.d"
  "CMakeFiles/at_aoa.dir/elevation.cpp.o"
  "CMakeFiles/at_aoa.dir/elevation.cpp.o.d"
  "CMakeFiles/at_aoa.dir/joint.cpp.o"
  "CMakeFiles/at_aoa.dir/joint.cpp.o.d"
  "CMakeFiles/at_aoa.dir/music.cpp.o"
  "CMakeFiles/at_aoa.dir/music.cpp.o.d"
  "CMakeFiles/at_aoa.dir/spectrum.cpp.o"
  "CMakeFiles/at_aoa.dir/spectrum.cpp.o.d"
  "CMakeFiles/at_aoa.dir/symmetry.cpp.o"
  "CMakeFiles/at_aoa.dir/symmetry.cpp.o.d"
  "libat_aoa.a"
  "libat_aoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_aoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
