
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aoa/covariance.cpp" "src/aoa/CMakeFiles/at_aoa.dir/covariance.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/covariance.cpp.o.d"
  "/root/repo/src/aoa/elevation.cpp" "src/aoa/CMakeFiles/at_aoa.dir/elevation.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/elevation.cpp.o.d"
  "/root/repo/src/aoa/joint.cpp" "src/aoa/CMakeFiles/at_aoa.dir/joint.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/joint.cpp.o.d"
  "/root/repo/src/aoa/music.cpp" "src/aoa/CMakeFiles/at_aoa.dir/music.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/music.cpp.o.d"
  "/root/repo/src/aoa/spectrum.cpp" "src/aoa/CMakeFiles/at_aoa.dir/spectrum.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/spectrum.cpp.o.d"
  "/root/repo/src/aoa/symmetry.cpp" "src/aoa/CMakeFiles/at_aoa.dir/symmetry.cpp.o" "gcc" "src/aoa/CMakeFiles/at_aoa.dir/symmetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/array/CMakeFiles/at_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
