
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/calibration.cpp" "src/array/CMakeFiles/at_array.dir/calibration.cpp.o" "gcc" "src/array/CMakeFiles/at_array.dir/calibration.cpp.o.d"
  "/root/repo/src/array/geometry.cpp" "src/array/CMakeFiles/at_array.dir/geometry.cpp.o" "gcc" "src/array/CMakeFiles/at_array.dir/geometry.cpp.o.d"
  "/root/repo/src/array/placed_array.cpp" "src/array/CMakeFiles/at_array.dir/placed_array.cpp.o" "gcc" "src/array/CMakeFiles/at_array.dir/placed_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
