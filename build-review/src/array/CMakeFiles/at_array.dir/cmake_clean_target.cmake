file(REMOVE_RECURSE
  "libat_array.a"
)
