# Empty dependencies file for at_array.
# This may be replaced when dependencies are built.
