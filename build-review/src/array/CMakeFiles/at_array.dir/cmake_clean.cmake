file(REMOVE_RECURSE
  "CMakeFiles/at_array.dir/calibration.cpp.o"
  "CMakeFiles/at_array.dir/calibration.cpp.o.d"
  "CMakeFiles/at_array.dir/geometry.cpp.o"
  "CMakeFiles/at_array.dir/geometry.cpp.o.d"
  "CMakeFiles/at_array.dir/placed_array.cpp.o"
  "CMakeFiles/at_array.dir/placed_array.cpp.o.d"
  "libat_array.a"
  "libat_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
