file(REMOVE_RECURSE
  "libat_baselines.a"
)
