# Empty dependencies file for at_baselines.
# This may be replaced when dependencies are built.
