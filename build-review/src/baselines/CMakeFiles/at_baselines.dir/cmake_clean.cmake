file(REMOVE_RECURSE
  "CMakeFiles/at_baselines.dir/fingerprint.cpp.o"
  "CMakeFiles/at_baselines.dir/fingerprint.cpp.o.d"
  "CMakeFiles/at_baselines.dir/phase_aoa.cpp.o"
  "CMakeFiles/at_baselines.dir/phase_aoa.cpp.o.d"
  "CMakeFiles/at_baselines.dir/rssi.cpp.o"
  "CMakeFiles/at_baselines.dir/rssi.cpp.o.d"
  "libat_baselines.a"
  "libat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
