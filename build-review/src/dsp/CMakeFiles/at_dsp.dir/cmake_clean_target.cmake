file(REMOVE_RECURSE
  "libat_dsp.a"
)
