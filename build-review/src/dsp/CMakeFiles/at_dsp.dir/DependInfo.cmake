
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/cfo.cpp" "src/dsp/CMakeFiles/at_dsp.dir/cfo.cpp.o" "gcc" "src/dsp/CMakeFiles/at_dsp.dir/cfo.cpp.o.d"
  "/root/repo/src/dsp/detector.cpp" "src/dsp/CMakeFiles/at_dsp.dir/detector.cpp.o" "gcc" "src/dsp/CMakeFiles/at_dsp.dir/detector.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/at_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/at_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/noise.cpp" "src/dsp/CMakeFiles/at_dsp.dir/noise.cpp.o" "gcc" "src/dsp/CMakeFiles/at_dsp.dir/noise.cpp.o.d"
  "/root/repo/src/dsp/preamble.cpp" "src/dsp/CMakeFiles/at_dsp.dir/preamble.cpp.o" "gcc" "src/dsp/CMakeFiles/at_dsp.dir/preamble.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
