file(REMOVE_RECURSE
  "CMakeFiles/at_dsp.dir/cfo.cpp.o"
  "CMakeFiles/at_dsp.dir/cfo.cpp.o.d"
  "CMakeFiles/at_dsp.dir/detector.cpp.o"
  "CMakeFiles/at_dsp.dir/detector.cpp.o.d"
  "CMakeFiles/at_dsp.dir/fft.cpp.o"
  "CMakeFiles/at_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/at_dsp.dir/noise.cpp.o"
  "CMakeFiles/at_dsp.dir/noise.cpp.o.d"
  "CMakeFiles/at_dsp.dir/preamble.cpp.o"
  "CMakeFiles/at_dsp.dir/preamble.cpp.o.d"
  "libat_dsp.a"
  "libat_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
