# Empty compiler generated dependencies file for at_dsp.
# This may be replaced when dependencies are built.
