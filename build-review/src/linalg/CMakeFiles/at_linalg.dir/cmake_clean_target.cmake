file(REMOVE_RECURSE
  "libat_linalg.a"
)
