# Empty compiler generated dependencies file for at_linalg.
# This may be replaced when dependencies are built.
