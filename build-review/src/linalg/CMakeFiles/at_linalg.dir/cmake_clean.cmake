file(REMOVE_RECURSE
  "CMakeFiles/at_linalg.dir/eigen.cpp.o"
  "CMakeFiles/at_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/at_linalg.dir/kernels.cpp.o"
  "CMakeFiles/at_linalg.dir/kernels.cpp.o.d"
  "CMakeFiles/at_linalg.dir/matrix.cpp.o"
  "CMakeFiles/at_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/at_linalg.dir/types.cpp.o"
  "CMakeFiles/at_linalg.dir/types.cpp.o.d"
  "libat_linalg.a"
  "libat_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
