file(REMOVE_RECURSE
  "libat_core.a"
)
