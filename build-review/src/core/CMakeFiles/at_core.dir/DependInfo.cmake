
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arraytrack.cpp" "src/core/CMakeFiles/at_core.dir/arraytrack.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/arraytrack.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/core/CMakeFiles/at_core.dir/latency.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/latency.cpp.o.d"
  "/root/repo/src/core/localize3d.cpp" "src/core/CMakeFiles/at_core.dir/localize3d.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/localize3d.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/at_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/realtime.cpp" "src/core/CMakeFiles/at_core.dir/realtime.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/realtime.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/at_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/server.cpp.o.d"
  "/root/repo/src/core/sic.cpp" "src/core/CMakeFiles/at_core.dir/sic.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/sic.cpp.o.d"
  "/root/repo/src/core/suppression.cpp" "src/core/CMakeFiles/at_core.dir/suppression.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/suppression.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/core/CMakeFiles/at_core.dir/synthesis.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/synthesis.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/core/CMakeFiles/at_core.dir/thread_pool.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/thread_pool.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/at_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/at_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/aoa/CMakeFiles/at_aoa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/at_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/at_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/array/CMakeFiles/at_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/at_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
