file(REMOVE_RECURSE
  "CMakeFiles/at_core.dir/arraytrack.cpp.o"
  "CMakeFiles/at_core.dir/arraytrack.cpp.o.d"
  "CMakeFiles/at_core.dir/latency.cpp.o"
  "CMakeFiles/at_core.dir/latency.cpp.o.d"
  "CMakeFiles/at_core.dir/localize3d.cpp.o"
  "CMakeFiles/at_core.dir/localize3d.cpp.o.d"
  "CMakeFiles/at_core.dir/pipeline.cpp.o"
  "CMakeFiles/at_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/at_core.dir/realtime.cpp.o"
  "CMakeFiles/at_core.dir/realtime.cpp.o.d"
  "CMakeFiles/at_core.dir/server.cpp.o"
  "CMakeFiles/at_core.dir/server.cpp.o.d"
  "CMakeFiles/at_core.dir/sic.cpp.o"
  "CMakeFiles/at_core.dir/sic.cpp.o.d"
  "CMakeFiles/at_core.dir/suppression.cpp.o"
  "CMakeFiles/at_core.dir/suppression.cpp.o.d"
  "CMakeFiles/at_core.dir/synthesis.cpp.o"
  "CMakeFiles/at_core.dir/synthesis.cpp.o.d"
  "CMakeFiles/at_core.dir/thread_pool.cpp.o"
  "CMakeFiles/at_core.dir/thread_pool.cpp.o.d"
  "CMakeFiles/at_core.dir/tracker.cpp.o"
  "CMakeFiles/at_core.dir/tracker.cpp.o.d"
  "libat_core.a"
  "libat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
