# Empty dependencies file for at_core.
# This may be replaced when dependencies are built.
