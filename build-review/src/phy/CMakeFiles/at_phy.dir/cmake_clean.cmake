file(REMOVE_RECURSE
  "CMakeFiles/at_phy.dir/csi.cpp.o"
  "CMakeFiles/at_phy.dir/csi.cpp.o.d"
  "CMakeFiles/at_phy.dir/frame_buffer.cpp.o"
  "CMakeFiles/at_phy.dir/frame_buffer.cpp.o.d"
  "CMakeFiles/at_phy.dir/frontend.cpp.o"
  "CMakeFiles/at_phy.dir/frontend.cpp.o.d"
  "CMakeFiles/at_phy.dir/mac.cpp.o"
  "CMakeFiles/at_phy.dir/mac.cpp.o.d"
  "CMakeFiles/at_phy.dir/wire.cpp.o"
  "CMakeFiles/at_phy.dir/wire.cpp.o.d"
  "libat_phy.a"
  "libat_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
