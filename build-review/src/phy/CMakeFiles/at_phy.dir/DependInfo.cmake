
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/csi.cpp" "src/phy/CMakeFiles/at_phy.dir/csi.cpp.o" "gcc" "src/phy/CMakeFiles/at_phy.dir/csi.cpp.o.d"
  "/root/repo/src/phy/frame_buffer.cpp" "src/phy/CMakeFiles/at_phy.dir/frame_buffer.cpp.o" "gcc" "src/phy/CMakeFiles/at_phy.dir/frame_buffer.cpp.o.d"
  "/root/repo/src/phy/frontend.cpp" "src/phy/CMakeFiles/at_phy.dir/frontend.cpp.o" "gcc" "src/phy/CMakeFiles/at_phy.dir/frontend.cpp.o.d"
  "/root/repo/src/phy/mac.cpp" "src/phy/CMakeFiles/at_phy.dir/mac.cpp.o" "gcc" "src/phy/CMakeFiles/at_phy.dir/mac.cpp.o.d"
  "/root/repo/src/phy/wire.cpp" "src/phy/CMakeFiles/at_phy.dir/wire.cpp.o" "gcc" "src/phy/CMakeFiles/at_phy.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/array/CMakeFiles/at_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/at_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/at_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
