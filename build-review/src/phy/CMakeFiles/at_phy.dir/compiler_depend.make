# Empty compiler generated dependencies file for at_phy.
# This may be replaced when dependencies are built.
