file(REMOVE_RECURSE
  "libat_phy.a"
)
