file(REMOVE_RECURSE
  "CMakeFiles/at_geom.dir/floorplan.cpp.o"
  "CMakeFiles/at_geom.dir/floorplan.cpp.o.d"
  "CMakeFiles/at_geom.dir/paths.cpp.o"
  "CMakeFiles/at_geom.dir/paths.cpp.o.d"
  "CMakeFiles/at_geom.dir/vec2.cpp.o"
  "CMakeFiles/at_geom.dir/vec2.cpp.o.d"
  "libat_geom.a"
  "libat_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
