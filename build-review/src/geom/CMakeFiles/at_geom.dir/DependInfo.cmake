
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/floorplan.cpp" "src/geom/CMakeFiles/at_geom.dir/floorplan.cpp.o" "gcc" "src/geom/CMakeFiles/at_geom.dir/floorplan.cpp.o.d"
  "/root/repo/src/geom/paths.cpp" "src/geom/CMakeFiles/at_geom.dir/paths.cpp.o" "gcc" "src/geom/CMakeFiles/at_geom.dir/paths.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/geom/CMakeFiles/at_geom.dir/vec2.cpp.o" "gcc" "src/geom/CMakeFiles/at_geom.dir/vec2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
