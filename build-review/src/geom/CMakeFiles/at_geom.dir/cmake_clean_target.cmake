file(REMOVE_RECURSE
  "libat_geom.a"
)
