# Empty dependencies file for at_geom.
# This may be replaced when dependencies are built.
