# Empty compiler generated dependencies file for at_testbed.
# This may be replaced when dependencies are built.
