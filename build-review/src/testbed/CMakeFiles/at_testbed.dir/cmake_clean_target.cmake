file(REMOVE_RECURSE
  "libat_testbed.a"
)
