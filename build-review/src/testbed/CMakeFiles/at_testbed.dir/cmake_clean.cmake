file(REMOVE_RECURSE
  "CMakeFiles/at_testbed.dir/metrics.cpp.o"
  "CMakeFiles/at_testbed.dir/metrics.cpp.o.d"
  "CMakeFiles/at_testbed.dir/office.cpp.o"
  "CMakeFiles/at_testbed.dir/office.cpp.o.d"
  "CMakeFiles/at_testbed.dir/render.cpp.o"
  "CMakeFiles/at_testbed.dir/render.cpp.o.d"
  "CMakeFiles/at_testbed.dir/runner.cpp.o"
  "CMakeFiles/at_testbed.dir/runner.cpp.o.d"
  "CMakeFiles/at_testbed.dir/scenario.cpp.o"
  "CMakeFiles/at_testbed.dir/scenario.cpp.o.d"
  "libat_testbed.a"
  "libat_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
