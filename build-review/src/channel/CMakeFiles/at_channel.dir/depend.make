# Empty dependencies file for at_channel.
# This may be replaced when dependencies are built.
