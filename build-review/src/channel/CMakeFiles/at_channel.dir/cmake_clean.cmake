file(REMOVE_RECURSE
  "CMakeFiles/at_channel.dir/channel.cpp.o"
  "CMakeFiles/at_channel.dir/channel.cpp.o.d"
  "CMakeFiles/at_channel.dir/spatial_field.cpp.o"
  "CMakeFiles/at_channel.dir/spatial_field.cpp.o.d"
  "libat_channel.a"
  "libat_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/at_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
