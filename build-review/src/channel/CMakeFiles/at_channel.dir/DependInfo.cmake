
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel.cpp" "src/channel/CMakeFiles/at_channel.dir/channel.cpp.o" "gcc" "src/channel/CMakeFiles/at_channel.dir/channel.cpp.o.d"
  "/root/repo/src/channel/spatial_field.cpp" "src/channel/CMakeFiles/at_channel.dir/spatial_field.cpp.o" "gcc" "src/channel/CMakeFiles/at_channel.dir/spatial_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/at_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
