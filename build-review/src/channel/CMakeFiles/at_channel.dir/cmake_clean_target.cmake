file(REMOVE_RECURSE
  "libat_channel.a"
)
