file(REMOVE_RECURSE
  "CMakeFiles/robustness_demo.dir/robustness_demo.cpp.o"
  "CMakeFiles/robustness_demo.dir/robustness_demo.cpp.o.d"
  "robustness_demo"
  "robustness_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
