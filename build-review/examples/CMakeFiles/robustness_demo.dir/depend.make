# Empty dependencies file for robustness_demo.
# This may be replaced when dependencies are built.
