file(REMOVE_RECURSE
  "CMakeFiles/collision_sic.dir/collision_sic.cpp.o"
  "CMakeFiles/collision_sic.dir/collision_sic.cpp.o.d"
  "collision_sic"
  "collision_sic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_sic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
