# Empty compiler generated dependencies file for collision_sic.
# This may be replaced when dependencies are built.
