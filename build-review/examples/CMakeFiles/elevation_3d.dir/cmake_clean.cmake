file(REMOVE_RECURSE
  "CMakeFiles/elevation_3d.dir/elevation_3d.cpp.o"
  "CMakeFiles/elevation_3d.dir/elevation_3d.cpp.o.d"
  "elevation_3d"
  "elevation_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elevation_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
