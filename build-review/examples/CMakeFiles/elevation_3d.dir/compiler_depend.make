# Empty compiler generated dependencies file for elevation_3d.
# This may be replaced when dependencies are built.
