
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/calibration_demo.cpp" "examples/CMakeFiles/calibration_demo.dir/calibration_demo.cpp.o" "gcc" "examples/CMakeFiles/calibration_demo.dir/calibration_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/testbed/CMakeFiles/at_testbed.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/at_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/at_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/aoa/CMakeFiles/at_aoa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/at_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/at_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/array/CMakeFiles/at_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/at_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/at_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/at_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
