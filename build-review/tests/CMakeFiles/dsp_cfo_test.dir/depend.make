# Empty dependencies file for dsp_cfo_test.
# This may be replaced when dependencies are built.
