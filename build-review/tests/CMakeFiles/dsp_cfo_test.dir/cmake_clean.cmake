file(REMOVE_RECURSE
  "CMakeFiles/dsp_cfo_test.dir/dsp_cfo_test.cpp.o"
  "CMakeFiles/dsp_cfo_test.dir/dsp_cfo_test.cpp.o.d"
  "dsp_cfo_test"
  "dsp_cfo_test.pdb"
  "dsp_cfo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_cfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
