file(REMOVE_RECURSE
  "CMakeFiles/csi_joint_test.dir/csi_joint_test.cpp.o"
  "CMakeFiles/csi_joint_test.dir/csi_joint_test.cpp.o.d"
  "csi_joint_test"
  "csi_joint_test.pdb"
  "csi_joint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_joint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
