# Empty dependencies file for localize3d_test.
# This may be replaced when dependencies are built.
