file(REMOVE_RECURSE
  "CMakeFiles/localize3d_test.dir/localize3d_test.cpp.o"
  "CMakeFiles/localize3d_test.dir/localize3d_test.cpp.o.d"
  "localize3d_test"
  "localize3d_test.pdb"
  "localize3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localize3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
