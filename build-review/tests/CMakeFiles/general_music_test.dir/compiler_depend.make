# Empty compiler generated dependencies file for general_music_test.
# This may be replaced when dependencies are built.
