file(REMOVE_RECURSE
  "CMakeFiles/general_music_test.dir/general_music_test.cpp.o"
  "CMakeFiles/general_music_test.dir/general_music_test.cpp.o.d"
  "general_music_test"
  "general_music_test.pdb"
  "general_music_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_music_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
