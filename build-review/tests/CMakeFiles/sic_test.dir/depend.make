# Empty dependencies file for sic_test.
# This may be replaced when dependencies are built.
