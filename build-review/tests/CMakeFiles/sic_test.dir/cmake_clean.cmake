file(REMOVE_RECURSE
  "CMakeFiles/sic_test.dir/sic_test.cpp.o"
  "CMakeFiles/sic_test.dir/sic_test.cpp.o.d"
  "sic_test"
  "sic_test.pdb"
  "sic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
