file(REMOVE_RECURSE
  "CMakeFiles/dsp_detector_test.dir/dsp_detector_test.cpp.o"
  "CMakeFiles/dsp_detector_test.dir/dsp_detector_test.cpp.o.d"
  "dsp_detector_test"
  "dsp_detector_test.pdb"
  "dsp_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
