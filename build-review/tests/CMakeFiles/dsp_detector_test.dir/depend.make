# Empty dependencies file for dsp_detector_test.
# This may be replaced when dependencies are built.
