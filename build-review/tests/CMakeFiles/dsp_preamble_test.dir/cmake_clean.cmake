file(REMOVE_RECURSE
  "CMakeFiles/dsp_preamble_test.dir/dsp_preamble_test.cpp.o"
  "CMakeFiles/dsp_preamble_test.dir/dsp_preamble_test.cpp.o.d"
  "dsp_preamble_test"
  "dsp_preamble_test.pdb"
  "dsp_preamble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_preamble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
