file(REMOVE_RECURSE
  "CMakeFiles/invariance_test.dir/invariance_test.cpp.o"
  "CMakeFiles/invariance_test.dir/invariance_test.cpp.o.d"
  "invariance_test"
  "invariance_test.pdb"
  "invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
