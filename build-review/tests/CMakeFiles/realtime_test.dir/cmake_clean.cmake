file(REMOVE_RECURSE
  "CMakeFiles/realtime_test.dir/realtime_test.cpp.o"
  "CMakeFiles/realtime_test.dir/realtime_test.cpp.o.d"
  "realtime_test"
  "realtime_test.pdb"
  "realtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
