# Empty dependencies file for projector_equivalence_test.
# This may be replaced when dependencies are built.
