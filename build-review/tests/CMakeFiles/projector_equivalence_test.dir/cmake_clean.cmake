file(REMOVE_RECURSE
  "CMakeFiles/projector_equivalence_test.dir/projector_equivalence_test.cpp.o"
  "CMakeFiles/projector_equivalence_test.dir/projector_equivalence_test.cpp.o.d"
  "projector_equivalence_test"
  "projector_equivalence_test.pdb"
  "projector_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projector_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
