file(REMOVE_RECURSE
  "CMakeFiles/dsp_noise_test.dir/dsp_noise_test.cpp.o"
  "CMakeFiles/dsp_noise_test.dir/dsp_noise_test.cpp.o.d"
  "dsp_noise_test"
  "dsp_noise_test.pdb"
  "dsp_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
