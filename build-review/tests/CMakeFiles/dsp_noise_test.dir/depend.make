# Empty dependencies file for dsp_noise_test.
# This may be replaced when dependencies are built.
