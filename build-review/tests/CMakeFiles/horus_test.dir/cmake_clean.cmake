file(REMOVE_RECURSE
  "CMakeFiles/horus_test.dir/horus_test.cpp.o"
  "CMakeFiles/horus_test.dir/horus_test.cpp.o.d"
  "horus_test"
  "horus_test.pdb"
  "horus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
