# Empty dependencies file for horus_test.
# This may be replaced when dependencies are built.
