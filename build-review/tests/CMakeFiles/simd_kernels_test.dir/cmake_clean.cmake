file(REMOVE_RECURSE
  "CMakeFiles/simd_kernels_test.dir/simd_kernels_test.cpp.o"
  "CMakeFiles/simd_kernels_test.dir/simd_kernels_test.cpp.o.d"
  "simd_kernels_test"
  "simd_kernels_test.pdb"
  "simd_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
