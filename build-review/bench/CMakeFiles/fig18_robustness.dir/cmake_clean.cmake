file(REMOVE_RECURSE
  "CMakeFiles/fig18_robustness.dir/fig18_robustness.cpp.o"
  "CMakeFiles/fig18_robustness.dir/fig18_robustness.cpp.o.d"
  "fig18_robustness"
  "fig18_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
