# Empty dependencies file for fig18_robustness.
# This may be replaced when dependencies are built.
