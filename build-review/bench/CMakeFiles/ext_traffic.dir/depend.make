# Empty dependencies file for ext_traffic.
# This may be replaced when dependencies are built.
