file(REMOVE_RECURSE
  "CMakeFiles/ext_traffic.dir/ext_traffic.cpp.o"
  "CMakeFiles/ext_traffic.dir/ext_traffic.cpp.o.d"
  "ext_traffic"
  "ext_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
