file(REMOVE_RECURSE
  "CMakeFiles/table1_peak_stability.dir/table1_peak_stability.cpp.o"
  "CMakeFiles/table1_peak_stability.dir/table1_peak_stability.cpp.o.d"
  "table1_peak_stability"
  "table1_peak_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_peak_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
