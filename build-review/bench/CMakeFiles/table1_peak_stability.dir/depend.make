# Empty dependencies file for table1_peak_stability.
# This may be replaced when dependencies are built.
