file(REMOVE_RECURSE
  "CMakeFiles/fig7_spatial_smoothing.dir/fig7_spatial_smoothing.cpp.o"
  "CMakeFiles/fig7_spatial_smoothing.dir/fig7_spatial_smoothing.cpp.o.d"
  "fig7_spatial_smoothing"
  "fig7_spatial_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spatial_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
