# Empty dependencies file for fig7_spatial_smoothing.
# This may be replaced when dependencies are built.
