# Empty compiler generated dependencies file for sec22_diversity_synthesis.
# This may be replaced when dependencies are built.
