file(REMOVE_RECURSE
  "CMakeFiles/sec22_diversity_synthesis.dir/sec22_diversity_synthesis.cpp.o"
  "CMakeFiles/sec22_diversity_synthesis.dir/sec22_diversity_synthesis.cpp.o.d"
  "sec22_diversity_synthesis"
  "sec22_diversity_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_diversity_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
