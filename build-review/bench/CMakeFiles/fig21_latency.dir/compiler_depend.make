# Empty compiler generated dependencies file for fig21_latency.
# This may be replaced when dependencies are built.
