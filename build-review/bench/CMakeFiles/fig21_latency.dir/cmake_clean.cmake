file(REMOVE_RECURSE
  "CMakeFiles/fig21_latency.dir/fig21_latency.cpp.o"
  "CMakeFiles/fig21_latency.dir/fig21_latency.cpp.o.d"
  "fig21_latency"
  "fig21_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
