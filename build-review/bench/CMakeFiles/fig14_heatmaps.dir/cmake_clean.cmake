file(REMOVE_RECURSE
  "CMakeFiles/fig14_heatmaps.dir/fig14_heatmaps.cpp.o"
  "CMakeFiles/fig14_heatmaps.dir/fig14_heatmaps.cpp.o.d"
  "fig14_heatmaps"
  "fig14_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
