# Empty compiler generated dependencies file for fig14_heatmaps.
# This may be replaced when dependencies are built.
