file(REMOVE_RECURSE
  "CMakeFiles/kernels_micro.dir/kernels_micro.cpp.o"
  "CMakeFiles/kernels_micro.dir/kernels_micro.cpp.o.d"
  "kernels_micro"
  "kernels_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
