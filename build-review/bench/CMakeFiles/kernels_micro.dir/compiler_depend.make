# Empty compiler generated dependencies file for kernels_micro.
# This may be replaced when dependencies are built.
