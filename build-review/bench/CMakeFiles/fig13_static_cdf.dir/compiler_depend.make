# Empty compiler generated dependencies file for fig13_static_cdf.
# This may be replaced when dependencies are built.
