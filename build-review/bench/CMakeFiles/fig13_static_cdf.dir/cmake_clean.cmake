file(REMOVE_RECURSE
  "CMakeFiles/fig13_static_cdf.dir/fig13_static_cdf.cpp.o"
  "CMakeFiles/fig13_static_cdf.dir/fig13_static_cdf.cpp.o.d"
  "fig13_static_cdf"
  "fig13_static_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_static_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
