file(REMOVE_RECURSE
  "CMakeFiles/ext_realtime.dir/ext_realtime.cpp.o"
  "CMakeFiles/ext_realtime.dir/ext_realtime.cpp.o.d"
  "ext_realtime"
  "ext_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
