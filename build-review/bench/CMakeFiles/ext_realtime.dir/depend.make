# Empty dependencies file for ext_realtime.
# This may be replaced when dependencies are built.
