# Empty dependencies file for ext3d_height.
# This may be replaced when dependencies are built.
