file(REMOVE_RECURSE
  "CMakeFiles/ext3d_height.dir/ext3d_height.cpp.o"
  "CMakeFiles/ext3d_height.dir/ext3d_height.cpp.o.d"
  "ext3d_height"
  "ext3d_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3d_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
