# Empty dependencies file for baselines_comparison.
# This may be replaced when dependencies are built.
