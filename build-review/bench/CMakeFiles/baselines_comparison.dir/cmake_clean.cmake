file(REMOVE_RECURSE
  "CMakeFiles/baselines_comparison.dir/baselines_comparison.cpp.o"
  "CMakeFiles/baselines_comparison.dir/baselines_comparison.cpp.o.d"
  "baselines_comparison"
  "baselines_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
