file(REMOVE_RECURSE
  "CMakeFiles/sec435_collision_sic.dir/sec435_collision_sic.cpp.o"
  "CMakeFiles/sec435_collision_sic.dir/sec435_collision_sic.cpp.o.d"
  "sec435_collision_sic"
  "sec435_collision_sic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec435_collision_sic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
