# Empty dependencies file for sec435_collision_sic.
# This may be replaced when dependencies are built.
