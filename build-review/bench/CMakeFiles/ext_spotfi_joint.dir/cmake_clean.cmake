file(REMOVE_RECURSE
  "CMakeFiles/ext_spotfi_joint.dir/ext_spotfi_joint.cpp.o"
  "CMakeFiles/ext_spotfi_joint.dir/ext_spotfi_joint.cpp.o.d"
  "ext_spotfi_joint"
  "ext_spotfi_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spotfi_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
