# Empty compiler generated dependencies file for ext_spotfi_joint.
# This may be replaced when dependencies are built.
