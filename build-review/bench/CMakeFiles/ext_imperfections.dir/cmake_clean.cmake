file(REMOVE_RECURSE
  "CMakeFiles/ext_imperfections.dir/ext_imperfections.cpp.o"
  "CMakeFiles/ext_imperfections.dir/ext_imperfections.cpp.o.d"
  "ext_imperfections"
  "ext_imperfections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_imperfections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
