# Empty dependencies file for ext_imperfections.
# This may be replaced when dependencies are built.
