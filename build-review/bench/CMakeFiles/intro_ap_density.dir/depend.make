# Empty dependencies file for intro_ap_density.
# This may be replaced when dependencies are built.
