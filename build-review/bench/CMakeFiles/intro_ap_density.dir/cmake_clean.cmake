file(REMOVE_RECURSE
  "CMakeFiles/intro_ap_density.dir/intro_ap_density.cpp.o"
  "CMakeFiles/intro_ap_density.dir/intro_ap_density.cpp.o.d"
  "intro_ap_density"
  "intro_ap_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_ap_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
