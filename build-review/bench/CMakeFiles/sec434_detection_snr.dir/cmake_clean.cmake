file(REMOVE_RECURSE
  "CMakeFiles/sec434_detection_snr.dir/sec434_detection_snr.cpp.o"
  "CMakeFiles/sec434_detection_snr.dir/sec434_detection_snr.cpp.o.d"
  "sec434_detection_snr"
  "sec434_detection_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec434_detection_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
