# Empty dependencies file for sec434_detection_snr.
# This may be replaced when dependencies are built.
