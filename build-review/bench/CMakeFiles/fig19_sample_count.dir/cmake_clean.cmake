file(REMOVE_RECURSE
  "CMakeFiles/fig19_sample_count.dir/fig19_sample_count.cpp.o"
  "CMakeFiles/fig19_sample_count.dir/fig19_sample_count.cpp.o.d"
  "fig19_sample_count"
  "fig19_sample_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_sample_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
