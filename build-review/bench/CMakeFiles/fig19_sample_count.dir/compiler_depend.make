# Empty compiler generated dependencies file for fig19_sample_count.
# This may be replaced when dependencies are built.
