file(REMOVE_RECURSE
  "CMakeFiles/fig16_antenna_sweep.dir/fig16_antenna_sweep.cpp.o"
  "CMakeFiles/fig16_antenna_sweep.dir/fig16_antenna_sweep.cpp.o.d"
  "fig16_antenna_sweep"
  "fig16_antenna_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_antenna_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
