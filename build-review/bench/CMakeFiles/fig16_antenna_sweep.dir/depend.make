# Empty dependencies file for fig16_antenna_sweep.
# This may be replaced when dependencies are built.
