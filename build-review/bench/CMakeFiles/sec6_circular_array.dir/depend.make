# Empty dependencies file for sec6_circular_array.
# This may be replaced when dependencies are built.
