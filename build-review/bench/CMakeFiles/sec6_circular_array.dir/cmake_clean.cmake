file(REMOVE_RECURSE
  "CMakeFiles/sec6_circular_array.dir/sec6_circular_array.cpp.o"
  "CMakeFiles/sec6_circular_array.dir/sec6_circular_array.cpp.o.d"
  "sec6_circular_array"
  "sec6_circular_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_circular_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
