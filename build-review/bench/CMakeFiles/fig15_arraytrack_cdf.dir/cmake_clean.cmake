file(REMOVE_RECURSE
  "CMakeFiles/fig15_arraytrack_cdf.dir/fig15_arraytrack_cdf.cpp.o"
  "CMakeFiles/fig15_arraytrack_cdf.dir/fig15_arraytrack_cdf.cpp.o.d"
  "fig15_arraytrack_cdf"
  "fig15_arraytrack_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_arraytrack_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
