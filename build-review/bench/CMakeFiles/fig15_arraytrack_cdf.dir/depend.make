# Empty dependencies file for fig15_arraytrack_cdf.
# This may be replaced when dependencies are built.
