file(REMOVE_RECURSE
  "CMakeFiles/fig20_snr.dir/fig20_snr.cpp.o"
  "CMakeFiles/fig20_snr.dir/fig20_snr.cpp.o.d"
  "fig20_snr"
  "fig20_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
