# Empty dependencies file for fig20_snr.
# This may be replaced when dependencies are built.
