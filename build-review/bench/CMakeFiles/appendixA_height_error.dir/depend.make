# Empty dependencies file for appendixA_height_error.
# This may be replaced when dependencies are built.
