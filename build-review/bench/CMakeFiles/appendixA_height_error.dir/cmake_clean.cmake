file(REMOVE_RECURSE
  "CMakeFiles/appendixA_height_error.dir/appendixA_height_error.cpp.o"
  "CMakeFiles/appendixA_height_error.dir/appendixA_height_error.cpp.o.d"
  "appendixA_height_error"
  "appendixA_height_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_height_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
