file(REMOVE_RECURSE
  "CMakeFiles/fig17_pillar_blocking.dir/fig17_pillar_blocking.cpp.o"
  "CMakeFiles/fig17_pillar_blocking.dir/fig17_pillar_blocking.cpp.o.d"
  "fig17_pillar_blocking"
  "fig17_pillar_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pillar_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
