# Empty dependencies file for fig17_pillar_blocking.
# This may be replaced when dependencies are built.
