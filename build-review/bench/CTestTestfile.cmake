# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build-review/bench/fig21_latency" "--smoke")
set_tests_properties(bench_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(kernels_smoke "/root/repo/build-review/bench/kernels_micro" "--smoke")
set_tests_properties(kernels_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
