file(REMOVE_RECURSE
  "CMakeFiles/arraytrack_sim.dir/arraytrack_sim.cpp.o"
  "CMakeFiles/arraytrack_sim.dir/arraytrack_sim.cpp.o.d"
  "arraytrack_sim"
  "arraytrack_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arraytrack_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
