# Empty compiler generated dependencies file for arraytrack_sim.
# This may be replaced when dependencies are built.
