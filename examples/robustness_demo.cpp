// Robustness sweeps (paper 4.3): how accuracy responds to SNR, client
// antenna orientation (polarization), and client height, on a compact
// three-AP deployment.
//
//   ./robustness_demo
#include <cstdio>

#include "core/arraytrack.h"
#include "testbed/metrics.h"

using namespace arraytrack;

namespace {

geom::Floorplan make_room() {
  geom::Floorplan plan({{0, 0}, {20, 12}});
  plan.add_wall({0, 0}, {20, 0}, geom::Material::kBrick);
  plan.add_wall({20, 0}, {20, 12}, geom::Material::kBrick);
  plan.add_wall({20, 12}, {0, 12}, geom::Material::kBrick);
  plan.add_wall({0, 12}, {0, 0}, geom::Material::kBrick);
  plan.add_wall({7, 0}, {7, 7}, geom::Material::kDrywall);
  plan.add_wall({13, 5}, {13, 12}, geom::Material::kDrywall);
  return plan;
}

testbed::ErrorStats run(const geom::Floorplan& plan, core::SystemConfig cfg) {
  core::System sys(&plan, cfg);
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({19.0, 1.0}, deg2rad(135.0));
  sys.add_ap({10.0, 11.0}, deg2rad(-90.0));
  testbed::ErrorStats stats;
  int id = 0;
  double t = 0.0;
  for (double y = 2.0; y <= 10.0; y += 2.0) {
    for (double x = 2.5; x <= 18.0; x += 3.0) {
      const geom::Vec2 truth{x, y};
      sys.transmit(id, truth, t);
      sys.transmit(id, truth + geom::Vec2{0.03, 0.01}, t + 0.03);
      sys.transmit(id, truth + geom::Vec2{-0.02, 0.03}, t + 0.06);
      if (const auto fix = sys.locate(id, t + 0.07))
        stats.add(geom::distance(fix->position, truth));
      ++id;
      t += 1.0;
    }
  }
  return stats;
}

}  // namespace

int main() {
  const auto plan = make_room();

  std::printf("--- transmit power (received SNR) sweep ---\n");
  for (double tx_dbm : {15.0, 0.0, -10.0, -20.0, -30.0}) {
    core::SystemConfig cfg;
    cfg.channel.tx_power_dbm = tx_dbm;
    const auto stats = run(plan, cfg);
    std::printf("tx %+5.0f dBm: %s\n", tx_dbm,
                stats.summary("", "m").c_str());
  }

  std::printf("\n--- antenna polarization mismatch sweep (4.3.2) ---\n");
  for (double pol : {0.0, 45.0, 80.0}) {
    core::SystemConfig cfg;
    cfg.channel.polarization_mismatch_deg = pol;
    const auto stats = run(plan, cfg);
    std::printf("mismatch %3.0f deg: %s\n", pol,
                stats.summary("", "m").c_str());
  }

  std::printf("\n--- client height sweep (4.3.1 / appendix A) ---\n");
  for (double h : {1.5, 1.0, 0.0}) {
    core::SystemConfig cfg;
    cfg.channel.client_height_m = h;
    cfg.channel.ap_height_m = 1.5;
    const auto stats = run(plan, cfg);
    std::printf("client %.1f m below AP: %s\n", 1.5 - h,
                stats.summary("", "m").c_str());
  }
  return 0;
}
