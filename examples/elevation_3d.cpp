// 3-D localization walkthrough (the paper's 4.3.1 future work,
// implemented): L-shaped arrays estimate elevation directly, so the
// system reports client height and sheds the planar height bias.
//
//   ./elevation_3d
#include <cstdio>

#include "core/localize3d.h"
#include "geom/floorplan.h"

using namespace arraytrack;

int main() {
  // A 20 x 12 m space; APs wall-mounted at 2.5 m, client handheld.
  geom::Floorplan plan({{0, 0}, {20, 12}});
  plan.add_wall({0, 0}, {20, 0}, geom::Material::kBrick);
  plan.add_wall({20, 0}, {20, 12}, geom::Material::kBrick);
  plan.add_wall({20, 12}, {0, 12}, geom::Material::kBrick);
  plan.add_wall({0, 12}, {0, 0}, geom::Material::kBrick);
  plan.add_wall({8, 0}, {8, 7}, geom::Material::kDrywall);

  channel::ChannelConfig ccfg;
  ccfg.ap_height_m = 2.5;
  ccfg.client_height_m = 1.1;  // phone in hand
  channel::MultipathChannel chan(&plan, ccfg, 11);
  const double lambda = ccfg.wavelength_m();

  // Three L-array APs: an 8-element horizontal row plus a 4-element
  // vertical column (12 antennas from 6 radios via diversity
  // synthesis).
  struct Site {
    geom::Vec2 pos;
    double orient;
  };
  const Site sites[] = {{{1.0, 1.0}, deg2rad(45.0)},
                        {{19.0, 1.0}, deg2rad(135.0)},
                        {{10.0, 11.5}, deg2rad(-90.0)}};
  std::vector<std::unique_ptr<phy::AccessPointFrontEnd>> aps;
  for (int i = 0; i < 3; ++i) {
    array::PlacedArray placed(core::make_3d_ap_geometry(lambda),
                              sites[i].pos, sites[i].orient);
    phy::ApConfig acfg;
    acfg.radios = 6;
    aps.push_back(std::make_unique<phy::AccessPointFrontEnd>(
        i, placed, &chan, acfg));
    aps.back()->run_calibration();
  }
  std::printf("three L-array APs mounted at %.1f m\n", ccfg.ap_height_m);

  const geom::Vec2 truth{13.0, 6.0};
  std::printf("client at (%.1f, %.1f), height %.1f m\n", truth.x, truth.y,
              ccfg.client_height_m);

  // One frame per AP; per-AP azimuth AND elevation spectra.
  std::vector<core::Ap3dSpectrum> obs;
  for (auto& ap : aps) {
    core::Ap3dProcessor proc(ap.get());
    const auto spectrum =
        proc.process(ap->capture_snapshot(truth, 0.0, 0));
    const double az_truth = wrap_2pi(ap->array().bearing_to(truth));
    const double el_truth =
        std::atan2(ccfg.client_height_m - ccfg.ap_height_m,
                   geom::distance(truth, ap->array().position()));
    std::printf(
        "  AP%d: azimuth truth %6.1f deg -> est %6.1f deg | elevation "
        "truth %5.1f deg -> est %5.1f deg\n",
        ap->id(), rad2deg(az_truth),
        rad2deg(spectrum.azimuth.dominant_bearing()), rad2deg(el_truth),
        rad2deg(spectrum.elevation.dominant_elevation()));
    obs.push_back(spectrum);
  }

  core::Localizer3d loc(plan.bounds());
  const auto fix = loc.locate(obs);
  if (!fix) {
    std::printf("no fix\n");
    return 1;
  }
  std::printf("\n3-D estimate: (%.2f, %.2f) at height %.2f m\n",
              fix->position.x, fix->position.y, fix->height_m);
  std::printf("plan error %.1f cm, height error %.1f cm\n",
              geom::distance(fix->position, truth) * 100.0,
              std::abs(fix->height_m - ccfg.client_height_m) * 100.0);
  return 0;
}
