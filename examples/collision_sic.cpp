// Collision handling (paper 4.3.5): two clients transmit overlapping
// frames. As long as the preambles themselves do not overlap, the AP
// detects both, and successive interference cancellation removes the
// first transmitter's bearings from the second's spectrum.
//
//   ./collision_sic
#include <cstdio>

#include "core/arraytrack.h"
#include "core/pipeline.h"
#include "core/sic.h"
#include "dsp/preamble.h"
#include "testbed/office.h"

using namespace arraytrack;

int main() {
  auto tb = testbed::OfficeTestbed::standard();
  core::SystemConfig cfg;
  core::System sys(&tb.plan, cfg);
  sys.add_ap(tb.ap_sites[2].position, tb.ap_sites[2].orientation_rad);
  auto& ap = sys.ap(0);

  const geom::Vec2 alice = tb.clients[5];
  const geom::Vec2 bob = tb.clients[30];
  std::printf("alice at (%.1f, %.1f), bob at (%.1f, %.1f), one AP at "
              "(%.1f, %.1f)\n",
              alice.x, alice.y, bob.x, bob.y, ap.array().position().x,
              ap.array().position().y);

  // Build the colliding waveforms: bob starts while alice's frame body
  // is still on the air, but after her preamble finished.
  dsp::PreambleGenerator gen(2);
  const auto wf_alice = gen.frame(4000, /*seed=*/1);
  const auto wf_bob = gen.frame(4000, /*seed=*/2);
  phy::Transmission ta, tb2;
  ta.waveform = &wf_alice;
  ta.client_pos = alice;
  ta.start_sample = 0;
  ta.client_id = 1;
  tb2.waveform = &wf_bob;
  tb2.client_pos = bob;
  tb2.start_sample = gen.preamble().size() + 800;
  tb2.client_id = 2;

  const auto captures = ap.receive({ta, tb2}, 0.0);
  std::printf("collision on the air: %zu preambles detected\n",
              captures.size());
  if (captures.size() != 2) return 1;

  core::ApProcessor proc(&ap);
  const auto spec_alice = proc.process(captures[0]);
  auto spec_bob_raw = proc.process(captures[1]);

  const double truth_a = wrap_2pi(ap.array().bearing_to(alice));
  const double truth_b = wrap_2pi(ap.array().bearing_to(bob));

  std::printf("\nalice's spectrum (clean window):\n%s",
              spec_alice.to_ascii(72, 6).c_str());
  std::printf("alice truth %.1f deg, dominant %.1f deg\n", rad2deg(truth_a),
              rad2deg(spec_alice.dominant_bearing()));

  std::printf("\nbob's raw spectrum (contaminated by alice's body):\n%s",
              spec_bob_raw.to_ascii(72, 6).c_str());

  const auto spec_bob = core::sic_cancel(spec_alice, spec_bob_raw);
  std::printf("\nbob's spectrum after SIC:\n%s",
              spec_bob.to_ascii(72, 6).c_str());
  std::printf("bob truth %.1f deg, dominant %.1f deg\n", rad2deg(truth_b),
              rad2deg(spec_bob.dominant_bearing()));

  std::printf("\npreamble-overlap odds for 1000 B packets at 11 Mb/s: "
              "%.2f%%\n",
              100.0 * core::preamble_collision_probability(1000, 11e6));
  return 0;
}
