// Quickstart: the smallest useful ArrayTrack deployment.
//
// Builds a two-room floorplan, installs three access points, has a
// client transmit three frames (with the small inadvertent motion a
// hand-held device always has), and asks the server where the client
// is.
//
//   ./quickstart
#include <cstdio>

#include "core/arraytrack.h"

using namespace arraytrack;

int main() {
  // 1. Describe the environment: a 18 x 10 m space with a dividing
  //    drywall partition. Walls reflect and attenuate; the multipath
  //    they create is what ArrayTrack's pipeline exists to survive.
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  plan.add_wall({9, 0}, {9, 6}, geom::Material::kDrywall);

  // 2. Bring up the system: each add_ap() creates an AP with eight
  //    radios driving a 16-antenna rectangular array through the
  //    AntSel diversity switch, and runs the two-pass phase
  //    calibration automatically.
  core::System sys(&plan);
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({17.0, 1.0}, deg2rad(135.0));
  sys.add_ap({9.0, 9.5}, deg2rad(-90.0));
  std::printf("installed %zu calibrated APs\n", sys.num_aps());

  // 3. The client transmits. Any frames work — ArrayTrack only reads
  //    raw preamble samples, so even encrypted traffic or ACKs count.
  //    Three frames spaced tens of milliseconds apart (and a few
  //    centimeters of hand motion) enable multipath suppression.
  const geom::Vec2 truth{13.2, 6.4};
  sys.transmit(/*client_id=*/1, truth, /*time_s=*/0.000);
  sys.transmit(1, truth + geom::Vec2{0.03, -0.02}, 0.030);
  sys.transmit(1, truth + geom::Vec2{-0.01, 0.04}, 0.060);

  // 4. Ask the server for a location estimate.
  const auto fix = sys.locate(1, /*now_s=*/0.070);
  if (!fix) {
    std::printf("no location fix (no frames heard?)\n");
    return 1;
  }
  std::printf("ground truth: (%.2f, %.2f)\n", truth.x, truth.y);
  std::printf("estimate:     (%.2f, %.2f)\n", fix->position.x,
              fix->position.y);
  std::printf("error:        %.2f cm\n",
              geom::distance(fix->position, truth) * 100.0);

  // 5. The likelihood heatmap behind the estimate (paper Fig. 14).
  if (const auto map = sys.heatmap(1, 0.070)) {
    std::printf("\nlikelihood heatmap (@ = most likely):\n%s",
                map->to_ascii(64).c_str());
  }
  return 0;
}
