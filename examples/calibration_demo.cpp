// Phase calibration walkthrough (paper section 3, eqs. 9-12).
//
// Each radio's downconverter adds an unknown phase offset; without
// calibration, inter-antenna phase — the entire basis of AoA — is
// meaningless. A single calibration pass against a tone source is
// contaminated by the rig's own cable/splitter imperfections; running
// it twice with the external paths swapped cancels that error exactly.
//
//   ./calibration_demo
#include <cstdio>

#include "aoa/music.h"
#include "array/calibration.h"
#include "array/geometry.h"
#include "array/placed_array.h"
#include "channel/channel.h"
#include "core/pipeline.h"
#include "geom/floorplan.h"
#include "phy/frontend.h"

using namespace arraytrack;

int main() {
  // Hidden truth: eight radios with random LO phase offsets.
  array::RadioBank radios(8, /*seed=*/1234);
  std::printf("hidden radio LO offsets (deg):");
  for (double o : radios.true_offsets()) std::printf(" %5.1f", rad2deg(o));
  std::printf("\n\n");

  // One calibration pass: off by the external-path imbalance.
  array::CalibrationRig::Options opt;
  opt.external_path_imbalance_rad = 0.25;
  array::CalibrationRig rig(&radios, opt, /*seed=*/77);
  const auto pass1 = rig.measure(/*swapped=*/false);
  array::PhaseCalibration one_pass(pass1);
  std::printf("single-pass calibration residual: %.2f deg (rig imbalance "
              "%.2f deg)\n",
              rad2deg(one_pass.max_residual(radios)),
              rad2deg(std::abs(rig.true_imbalance())));

  // Two passes with the external paths exchanged: eqs. 11-12.
  array::PhaseCalibration two_pass(rig.calibrate());
  std::printf("two-pass calibration residual:    %.4f deg\n",
              rad2deg(two_pass.max_residual(radios)));
  std::printf("recovered rig imbalance:          %.2f deg (truth %.2f)\n\n",
              rad2deg(rig.estimated_imbalance()),
              rad2deg(rig.true_imbalance()));

  // What calibration buys: MUSIC before and after, on a live AP.
  geom::Floorplan plan({{-30, -30}, {30, 30}});
  channel::ChannelConfig ccfg;
  channel::MultipathChannel chan(&plan, ccfg);
  const double lambda = ccfg.wavelength_m();
  array::PlacedArray arr(
      array::ArrayGeometry::rectangular(8, lambda / 2, lambda / 4), {0, 0},
      0.0);
  phy::AccessPointFrontEnd ap(0, arr, &chan);

  const geom::Vec2 client{8.0, 11.0};
  const double truth = wrap_2pi(ap.array().bearing_to(client));
  const auto frame = ap.capture_snapshot(client, 0.0, 0);

  core::PipelineOptions po;
  po.bearing_sigma_deg = 0.0;
  {
    core::ApProcessor proc(&ap, po);  // not calibrated yet
    const auto spec = proc.process(frame);
    std::printf("before calibration: truth %.1f deg, MUSIC dominant %.1f "
                "deg\n",
                rad2deg(truth), rad2deg(spec.dominant_bearing()));
  }
  ap.run_calibration();
  {
    core::ApProcessor proc(&ap, po);
    const auto spec = proc.process(frame);
    std::printf("after calibration:  truth %.1f deg, MUSIC dominant %.1f "
                "deg\n",
                rad2deg(truth), rad2deg(spec.dominant_bearing()));
  }
  return 0;
}
