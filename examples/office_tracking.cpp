// Office tracking: the paper's headline scenario. The standard
// 41-client office testbed is brought up with all six APs, a subset of
// static clients is localized, and then a mobile user walks a corridor
// route transmitting as they go — the real-time tracking use case
// (augmented reality navigation, retail analytics) from the paper's
// introduction.
//
//   ./office_tracking
#include <cstdio>

#include "core/tracker.h"
#include "testbed/metrics.h"
#include "testbed/runner.h"

using namespace arraytrack;

int main() {
  auto tb = testbed::OfficeTestbed::standard();
  testbed::RunnerConfig rc;
  testbed::ExperimentRunner runner(&tb, rc);
  std::printf("office testbed: %.0fx%.0f m, %zu APs, %zu client sites\n",
              tb.plan.bounds().width(), tb.plan.bounds().height(),
              tb.ap_sites.size(), tb.clients.size());

  // --- Part 1: static clients -------------------------------------
  std::printf("\nlocalizing 10 static clients with all six APs:\n");
  const std::vector<std::size_t> sample = {0, 4, 9, 13, 18, 22, 27, 31, 36, 40};
  auto obs = runner.observe_clients(sample);
  testbed::ErrorStats stats;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto fix = runner.system().server().locate_from_spectra(obs[i].per_ap);
    if (!fix) continue;
    const double err = geom::distance(fix->position, obs[i].truth);
    stats.add(err);
    std::printf("  client %2zu: truth (%5.2f, %5.2f)  est (%5.2f, %5.2f)  "
                "err %5.1f cm\n",
                sample[i], obs[i].truth.x, obs[i].truth.y, fix->position.x,
                fix->position.y, err * 100.0);
  }
  std::printf("%s\n", stats.summary("static sample", "m").c_str());

  // --- Part 2: a walking user -------------------------------------
  // The user walks along the corridor at ~1 m/s, transmitting a frame
  // every 100 ms (the paper's refresh interval); each location fix
  // fuses the last few frames.
  std::printf("\ntracking a user walking the corridor:\n");
  auto& sys = runner.system();
  const int kUser = 100;
  double t = 1000.0;  // well past the static experiment frames
  geom::Vec2 pos{3.0, 7.0};
  const geom::Vec2 step{0.1, 0.0};  // 1 m/s at 100 ms per frame
  testbed::ErrorStats raw_track, smooth_track;
  core::LocationTracker tracker;  // constant-velocity Kalman + gating
  for (int tick = 0; tick < 40; ++tick) {
    sys.transmit(kUser, pos, t);
    if (tick >= 2) {
      const auto fix = sys.locate(kUser, t + 0.001);
      if (fix) {
        const geom::Vec2 smoothed = tracker.update(fix->position, t);
        raw_track.add(geom::distance(fix->position, pos));
        smooth_track.add(geom::distance(smoothed, pos));
        if (tick % 8 == 0)
          std::printf("  t=%4.1fs truth (%5.2f, %4.2f)  fix (%5.2f, %4.2f)  "
                      "tracked (%5.2f, %4.2f)%s\n",
                      t - 1000.0, pos.x, pos.y, fix->position.x,
                      fix->position.y, smoothed.x, smoothed.y,
                      tracker.last_rejected() ? "  [outlier gated]" : "");
      }
    }
    pos += step;
    t += 0.1;
  }
  std::printf("%s\n", raw_track.summary("raw fixes", "m").c_str());
  std::printf("%s\n", smooth_track.summary("Kalman-tracked", "m").c_str());
  return 0;
}
