// The MUSIC kernels evaluate the pseudospectrum denominator in
// signal-subspace projector form,
//   a^H E_n E_n^H a = |a|^2 - sum_{s<d} |e_s^H a|^2,
// instead of summing over the m - d noise eigenvectors. These tests
// pin the algebra: the projector spectrum must match a naive
// noise-eigenvector reference within 1e-9 (see max_deviation for the
// exact metric) across randomized covariances, signal counts,
// smoothing settings and forward-backward averaging.
#include <gtest/gtest.h>

#include <random>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "array/geometry.h"
#include "array/placed_array.h"
#include "linalg/eigen.h"

namespace arraytrack::aoa {
namespace {

using array::ArrayGeometry;
using array::PlacedArray;

constexpr double kLambda = 0.1226;

std::vector<std::size_t> first_n(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// Random full-rank Hermitian PSD covariance: a strong rank-3 block of
// random (non-steering) signal directions over a weak full-rank
// Wishart noise floor two orders of magnitude down. The gap keeps
// automatic d estimation (eig_threshold) on a multi-dimensional noise
// subspace; a gapless spectrum would push d to ms - 1, and a
// one-dimensional noise subspace hits eps-deep nulls where ANY
// evaluation order disagrees at 1/eps scale. The projector identity
// under test is subspace algebra, so a well-conditioned spectrum is
// the meaningful comparison.
linalg::CMatrix random_covariance(std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  linalg::CMatrix s(m, 3);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < 3; ++k) s(i, k) = cplx{g(rng), g(rng)};
  linalg::CMatrix x(m, 2 * m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t k = 0; k < 2 * m; ++k) x(i, k) = cplx{g(rng), g(rng)};
  linalg::CMatrix n = x * x.hermitian();
  n *= cplx{0.01 / double(2 * m), 0.0};
  linalg::CMatrix r = s * s.hermitian() + n;
  for (std::size_t i = 0; i < m; ++i) r(i, i) += 0.001;
  return r;
}

// Reference evaluation: explicit sum over the noise eigenvectors, the
// form the seed implementation used.
double naive_denominator(const linalg::CVector& a,
                         const linalg::EigenResult& eig,
                         std::size_t num_signals) {
  const std::size_t m = a.size();
  double denom = 0.0;
  for (std::size_t n = 0; n + num_signals < m; ++n)
    denom += std::norm(eig.eigenvectors.col(n).dot(a));
  return denom;
}

// Both kernels evaluate p = 1 / max(denom, 1e-12) with a normalized
// steering vector, so denom = 1/p recovers the quadratic form. The
// two evaluation orders agree to the orthonormality defect of the
// Jacobi eigenbasis -- an ABSOLUTE ~m*eps error in the form. At an
// eps-deep null (one noise eigenvector nearly orthogonal to the
// steering vector) that defect is unavoidably huge in relative terms
// for ANY evaluation order, so the identity is pinned two ways:
// absolutely on the form at its natural scale |a|^2 = 1 everywhere,
// and relatively on the spectrum wherever the form is
// well-conditioned (denom >= 1e-6).
double max_deviation(const AoaSpectrum& got, const AoaSpectrum& want) {
  EXPECT_EQ(got.bins(), want.bins());
  double worst = 0.0;
  for (std::size_t i = 0; i < got.bins(); ++i) {
    const double denom_got = 1.0 / std::max(got[i], 1e-300);
    const double denom_want = 1.0 / std::max(want[i], 1e-300);
    double dev = std::abs(denom_got - denom_want);
    if (denom_want >= 1e-6)
      dev = std::max(dev, std::abs(got[i] - want[i]) / std::abs(want[i]));
    worst = std::max(worst, dev);
  }
  return worst;
}

struct LinearCase {
  std::size_t smoothing_groups;
  bool forward_backward;
  std::size_t fixed_d;  // 0 = automatic
};

class LinearProjectorSweep : public ::testing::TestWithParam<LinearCase> {};

TEST_P(LinearProjectorSweep, MatchesNaiveNoiseSum) {
  const auto c = GetParam();
  const PlacedArray pa(ArrayGeometry::uniform_linear(8, kLambda / 2.0),
                       {0, 0}, 0.0);
  MusicOptions opt;
  opt.smoothing_groups = c.smoothing_groups;
  opt.forward_backward = c.forward_backward;
  opt.fixed_num_signals = c.fixed_d;
  MusicEstimator music(&pa, first_n(8), kLambda, opt);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto r = random_covariance(pa.size(), 1000 * seed);
    const auto got = music.spectrum_from_covariance(r);

    // Naive reference: replicate the smoothing front end, then sum
    // over the noise eigenvectors per swept bin.
    linalg::CMatrix rs = spatial_smooth(r, opt.smoothing_groups);
    if (opt.forward_backward) rs = forward_backward(rs);
    const auto eig = linalg::eig_hermitian(rs);
    const std::size_t d = music.estimate_num_signals(eig.eigenvalues);
    const std::size_t ms = rs.rows();
    const auto sub = first_n(ms);

    AoaSpectrum want(opt.bins);
    const std::size_t half = opt.bins / 2;
    for (std::size_t i = 0; i <= half; ++i) {
      const double theta = kTwoPi * double(i) / double(opt.bins);
      const auto a = pa.steering_subset(theta, kLambda, sub).normalized();
      const double p = 1.0 / std::max(naive_denominator(a, eig, d), 1e-12);
      want[i] = p;
      want[(opt.bins - i) % opt.bins] = p;
    }
    EXPECT_LT(max_deviation(got, want), 1e-9)
        << "seed " << seed << " groups " << c.smoothing_groups << " fb "
        << c.forward_backward << " d " << c.fixed_d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LinearProjectorSweep,
    ::testing::Values(LinearCase{2, false, 0}, LinearCase{4, false, 0},
                      LinearCase{2, true, 0}, LinearCase{4, true, 0},
                      LinearCase{2, false, 1}, LinearCase{2, false, 2},
                      LinearCase{4, false, 3}, LinearCase{4, true, 2}));

TEST(GeneralProjectorTest, MatchesNaiveNoiseSum) {
  const double radius = kLambda / 2.0 / (2.0 * std::sin(kPi / 8.0));
  const PlacedArray pa(ArrayGeometry::circular(8, radius), {0, 0}, 0.0);
  for (std::size_t fixed_d : {std::size_t(0), std::size_t(1), std::size_t(3)}) {
    GeneralMusicOptions opt;
    opt.fixed_num_signals = fixed_d;
    GeneralMusic music(&pa, first_n(8), kLambda, opt);

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto r = random_covariance(pa.size(), 77 * seed);
      const auto got = music.spectrum_from_covariance(r);

      const auto eig = linalg::eig_hermitian(r);
      std::size_t d = fixed_d;
      if (d == 0) {
        for (double v : eig.eigenvalues)
          if (v >= opt.eig_threshold * eig.eigenvalues.back()) ++d;
      }
      d = std::min(std::max<std::size_t>(d, 1), pa.size() - 1);

      AoaSpectrum want(opt.bins);
      for (std::size_t i = 0; i < opt.bins; ++i) {
        const double theta = kTwoPi * double(i) / double(opt.bins);
        const auto a =
            pa.steering_subset(theta, kLambda, first_n(8)).normalized();
        want[i] = 1.0 / std::max(naive_denominator(a, eig, d), 1e-12);
      }
      EXPECT_LT(max_deviation(got, want), 1e-9)
          << "seed " << seed << " d " << fixed_d;
    }
  }
}

// The precomputed-table Bartlett overload must agree exactly with the
// rebuild-every-call entry point.
TEST(BartlettTableTest, TableOverloadMatches) {
  const double radius = kLambda / 2.0 / (2.0 * std::sin(kPi / 8.0));
  const PlacedArray pa(ArrayGeometry::circular(8, radius), {0, 0}, 0.0);
  const auto table = bartlett_steering_table(pa, first_n(8), kLambda, 360);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto r = random_covariance(pa.size(), 31 * seed);
    const auto direct = bartlett_spectrum(pa, first_n(8), kLambda, r, 360);
    const auto cached = bartlett_spectrum(table, r);
    ASSERT_EQ(direct.bins(), cached.bins());
    for (std::size_t i = 0; i < direct.bins(); ++i)
      EXPECT_DOUBLE_EQ(direct[i], cached[i]);
  }
}

}  // namespace
}  // namespace arraytrack::aoa
