// Tests for per-client subspace tracking (linalg/subspace.h) and its
// integration through the MUSIC estimator and the location service.
//
// The load-bearing contracts: (a) with the exact override (force_exact
// or ARRAYTRACK_EXACT_EVD) the tracker path is byte-identical to the
// tracker-less path, at every SIMD level and across worker counts and
// batch widths; (b) the tracked recursion's spectra stay within a
// pinned tolerance of the exact ones on a drifting stream; (c) the
// drift monitor reseeds on signal-count changes and reset() drops all
// state. The service suites also run under the ThreadSanitizer tier of
// tools/check.sh, which makes per-session tracker mutation a race test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <random>
#include <vector>

#include "aoa/music.h"
#include "array/geometry.h"
#include "array/placed_array.h"
#include "core/simd.h"
#include "linalg/subspace.h"
#include "service/service.h"
#include "service/stats.h"

namespace arraytrack {
namespace {

using core::simd::ForcedLevel;
using core::simd::Level;

std::vector<Level> testable_levels() {
  std::vector<Level> out;
  for (Level lvl : {Level::kScalar, Level::kSse2, Level::kAvx2})
    if (core::simd::clamp_to_hardware(lvl) == lvl) out.push_back(lvl);
  return out;
}

// ---------------------------------------------------------------------
// Shared D-selection rule
// ---------------------------------------------------------------------

TEST(SubspaceSignalCountTest, ThresholdRuleMatchesPaper) {
  // Ascending eigenvalues; threshold 0.1 of the largest (10.0).
  const std::vector<double> eig{0.01, 0.5, 2.0, 10.0};
  EXPECT_EQ(linalg::signal_count(eig, 0.1), 2u);   // 2.0 and 10.0
  EXPECT_EQ(linalg::signal_count(eig, 0.04), 3u);  // 0.5 joins
  // Everything qualifies, but one noise direction must remain.
  EXPECT_EQ(linalg::signal_count(eig, 1e-4), 3u);
  // Nothing but the largest qualifies; at least one signal remains.
  EXPECT_EQ(linalg::signal_count(eig, 2.0), 1u);
}

TEST(SubspaceSignalCountTest, FixedOverrideAndDegenerateSizes) {
  const std::vector<double> eig{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(linalg::signal_count(eig, 0.06, 2), 2u);
  EXPECT_EQ(linalg::signal_count(eig, 0.06, 9), 3u);  // clamped to n - 1
  EXPECT_EQ(linalg::signal_count({5.0}, 0.06), 1u);   // single entry
}

// ---------------------------------------------------------------------
// Tracker against the MUSIC estimator
// ---------------------------------------------------------------------

constexpr double kLambda = 0.1226;

array::PlacedArray ula8() {
  return array::PlacedArray(
      array::ArrayGeometry::uniform_linear(8, kLambda / 2), {0, 0}, 0.0);
}

std::vector<std::size_t> first_n(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

/// Deterministic covariance stream of slowly drifting sources with a
/// noise floor and small Hermitian sample jitter — the steady-state
/// regime the tracker is built for.
class DriftingScene {
 public:
  DriftingScene(const array::PlacedArray* pa, std::vector<double> bearings,
                std::vector<double> powers, double drift_rad, double jitter,
                unsigned seed = 99)
      : pa_(pa), bearings_(std::move(bearings)), powers_(std::move(powers)),
        drift_(drift_rad), jitter_(jitter), rng_(seed) {}

  linalg::CMatrix next() {
    const std::size_t m = pa_->size();
    linalg::CMatrix r(m, m);
    for (std::size_t d = 0; d < bearings_.size(); ++d) {
      bearings_[d] += (d % 2 == 0 ? drift_ : -drift_);
      const auto a = pa_->steering(bearings_[d], kLambda);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          r(i, j) += powers_[d] * a[i] * std::conj(a[j]);
    }
    std::normal_distribution<double> g(0.0, jitter_);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const cplx e{g(rng_), g(rng_)};
        r(i, j) += e;
        r(j, i) += std::conj(e);
      }
      r(i, i) += 0.05 + std::abs(g(rng_));
    }
    return r;
  }

 private:
  const array::PlacedArray* pa_;
  std::vector<double> bearings_, powers_;
  double drift_, jitter_;
  std::mt19937_64 rng_;
};

TEST(SubspaceTrackerTest, ForceExactBitwiseMatchesTrackerless) {
  const auto pa = ula8();
  const aoa::MusicEstimator music(&pa, first_n(8), kLambda);

  auto opt = music.subspace_options();
  opt.force_exact = true;
  linalg::SubspaceTracker tracker(opt);
  EXPECT_TRUE(tracker.exact_only());

  DriftingScene scene(&pa, {deg2rad(70.0), deg2rad(115.0)}, {4.0, 1.5},
                      2e-3, 1e-3);
  for (int frame = 0; frame < 40; ++frame) {
    const auto r = scene.next();
    const auto tracked = music.spectrum_from_covariance(r, &tracker);
    const auto exact = music.spectrum_from_covariance(r);
    ASSERT_EQ(tracked.bins(), exact.bins());
    for (std::size_t b = 0; b < exact.bins(); ++b)
      ASSERT_EQ(tracked[b], exact[b]) << "frame " << frame << " bin " << b;
  }
  EXPECT_EQ(tracker.full_evds(), 40u);
  EXPECT_EQ(tracker.tracked_updates(), 0u);
  EXPECT_TRUE(tracker.basis().exact);
}

TEST(SubspaceTrackerTest, EnvOverrideForcesExactAtConstruction) {
  ASSERT_EQ(0, setenv("ARRAYTRACK_EXACT_EVD", "1", 1));
  EXPECT_TRUE(linalg::exact_evd_forced());
  linalg::SubspaceTracker forced;
  ASSERT_EQ(0, setenv("ARRAYTRACK_EXACT_EVD", "0", 1));
  EXPECT_FALSE(linalg::exact_evd_forced());
  linalg::SubspaceTracker free_running;
  ASSERT_EQ(0, unsetenv("ARRAYTRACK_EXACT_EVD"));

  // The snapshot happens at construction: `forced` stays exact-only
  // after the variable is gone, `free_running` tracks.
  EXPECT_TRUE(forced.exact_only());
  EXPECT_FALSE(free_running.exact_only());
  const auto pa = ula8();
  DriftingScene scene(&pa, {deg2rad(90.0)}, {3.0}, 1e-3, 1e-3);
  for (int i = 0; i < 10; ++i) {
    const auto r = scene.next();
    forced.update(r);
    free_running.update(r);
  }
  EXPECT_EQ(forced.tracked_updates(), 0u);
  EXPECT_GT(free_running.tracked_updates(), 0u);
}

TEST(SubspaceTrackerTest, TrackedSpectraWithinPinnedTolerance) {
  const auto pa = ula8();
  const aoa::MusicEstimator music(&pa, first_n(8), kLambda);
  linalg::SubspaceTracker tracker(music.subspace_options());

  DriftingScene scene(&pa, {deg2rad(70.0), deg2rad(115.0)}, {4.0, 1.5},
                      1e-3, 1e-3);
  std::vector<double> errors;
  const int frames = 300;
  for (int frame = 0; frame < frames; ++frame) {
    const auto r = scene.next();
    auto tracked = music.spectrum_from_covariance(r, &tracker);
    auto exact = music.spectrum_from_covariance(r);
    // Normalized spectra: MUSIC peak heights are 1/residual and swing
    // wildly with tiny subspace perturbations; the *shape* (relative
    // power versus bearing) is what localization consumes.
    tracked.normalize();
    exact.normalize();
    double err = 0.0;
    for (std::size_t b = 0; b < exact.bins(); ++b)
      err = std::max(err, std::abs(tracked[b] - exact[b]));
    errors.push_back(err);
    // The tracked spectrum's strongest bearing must coincide with one
    // of the exact spectrum's peaks. (Not necessarily the *strongest*
    // exact peak: MUSIC peak heights are reciprocal projection
    // residuals, and two comparable peaks can swap rank under a tiny
    // subspace perturbation while both bearings stay put.)
    const double dom = tracked.dominant_bearing();
    double nearest = kTwoPi;
    for (const auto& pk : exact.find_peaks(0.08))
      nearest = std::min(nearest,
                         std::abs(wrap_pi(pk.bearing_rad - dom)));
    EXPECT_LT(nearest, 1.5 * exact.bin_width_rad()) << "frame " << frame;
  }
  std::nth_element(errors.begin(), errors.begin() + frames / 2, errors.end());
  const double median = errors[std::size_t(frames) / 2];
  // Pinned tolerance on the median per-frame max bin deviation of the
  // normalized spectra. 0.05 fails if the recursion decouples from the
  // stream (errors jump to O(1)) while riding out one-step lag.
  EXPECT_LT(median, 0.05);
  // The point of the tracker: most updates skip the decomposition.
  EXPECT_GT(double(tracker.tracked_updates()) / double(tracker.updates()),
            0.5);
}

TEST(SubspaceTrackerTest, ReseedsWhenSignalCountChanges) {
  const auto pa = ula8();
  const aoa::MusicEstimator music(&pa, first_n(8), kLambda);
  linalg::SubspaceTracker tracker(music.subspace_options());

  // Phase 1: a single strong source, long enough to settle.
  DriftingScene one(&pa, {deg2rad(80.0)}, {4.0}, 5e-4, 1e-3, 7);
  for (int i = 0; i < 30; ++i) music.spectrum_from_covariance(one.next(),
                                                              &tracker);
  const std::size_t d_before = tracker.basis().num_signals;
  const std::uint64_t reseeds_before = tracker.reseeds();

  // Phase 2: a second source of comparable power appears.
  DriftingScene two(&pa, {deg2rad(80.0), deg2rad(130.0)}, {4.0, 3.0},
                    5e-4, 1e-3, 8);
  for (int i = 0; i < 10; ++i) music.spectrum_from_covariance(two.next(),
                                                              &tracker);
  EXPECT_GT(tracker.basis().num_signals, d_before);
  EXPECT_GT(tracker.reseeds(), reseeds_before)
      << "signal-count change must force a full decomposition";
}

TEST(SubspaceTrackerTest, ResetDropsStateAndCountersAggregate) {
  const auto pa = ula8();
  linalg::SubspaceCounters shared;
  linalg::SubspaceTracker a({}, &shared);
  linalg::SubspaceTracker b({}, &shared);

  DriftingScene scene(&pa, {deg2rad(95.0)}, {3.0}, 1e-3, 1e-3);
  for (int i = 0; i < 12; ++i) {
    const auto r = scene.next();
    a.update(r);
    b.update(r);
  }
  ASSERT_GT(a.tracked_updates(), 0u);

  a.reset();
  const auto& basis = a.update(scene.next());
  EXPECT_TRUE(basis.exact) << "first update after reset() must reseed";

  // Per-tracker tallies are exhaustive and the shared counters are
  // exactly their sum.
  EXPECT_EQ(a.updates(), a.full_evds() + a.tracked_updates());
  EXPECT_EQ(shared.evd_full.load(), a.full_evds() + b.full_evds());
  EXPECT_EQ(shared.evd_tracked.load(),
            a.tracked_updates() + b.tracked_updates());
  EXPECT_EQ(shared.evd_reseed.load(), a.reseeds() + b.reseeds());
}

// ---------------------------------------------------------------------
// Adaptive reseed cadence
// ---------------------------------------------------------------------

/// Rank-1 source at `bearing` over a fixed noise floor.
linalg::CMatrix rank1_cov(const array::PlacedArray& pa, double bearing) {
  const std::size_t m = pa.size();
  linalg::CMatrix r(m, m);
  const auto a = pa.steering(bearing, kLambda);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) r(i, j) = 3.0 * a[i] * std::conj(a[j]);
  for (std::size_t i = 0; i < m; ++i) r(i, i) += 0.05;
  return r;
}

TEST(SubspaceAdaptiveReseedTest, RisingResidualShrinksPeriod) {
  const auto pa = ula8();
  linalg::SubspaceOptions opt;  // adaptive_reseed on, initial period 64
  linalg::SubspaceTracker trk(opt);
  ASSERT_EQ(trk.reseed_period_current(), opt.reseed_period);

  // Accelerating rotation: each update the source moves a little
  // farther than the last, so the tracked residual climbs within every
  // refresh window until the drift monitor (or a rising-trend timer
  // reseed) fires. The cadence must tighten, not stretch.
  double bearing = deg2rad(80.0);
  double step = 0.0;
  for (int i = 0; i < 400; ++i) {
    step += 2e-4;
    bearing += step;
    trk.update(rank1_cov(pa, bearing));
  }
  EXPECT_LT(trk.reseed_period_current(), opt.reseed_period);
  EXPECT_GT(trk.reseeds(), 0u);
}

TEST(SubspaceAdaptiveReseedTest, FlatResidualStretchesPeriod) {
  const auto pa = ula8();
  linalg::SubspaceOptions opt;
  linalg::SubspaceTracker trk(opt);

  // A static scene: residuals sit at ~0, every reseed is the timer
  // firing for nothing, and the cadence must stretch toward the cap.
  const auto r = rank1_cov(pa, deg2rad(80.0));
  for (int i = 0; i < 400; ++i) trk.update(r);
  EXPECT_GT(trk.reseed_period_current(), opt.reseed_period);
  EXPECT_LE(trk.reseed_period_current(), opt.reseed_period_max);
}

TEST(SubspaceAdaptiveReseedTest, FixedModeKeepsPeriodAndReset) {
  const auto pa = ula8();
  linalg::SubspaceOptions opt;
  opt.adaptive_reseed = false;
  linalg::SubspaceTracker fixed(opt);
  const auto r = rank1_cov(pa, deg2rad(80.0));
  for (int i = 0; i < 200; ++i) fixed.update(r);
  EXPECT_EQ(fixed.reseed_period_current(), opt.reseed_period);

  // reset() restores the initial (clamped) cadence in adaptive mode.
  linalg::SubspaceTracker adapt;
  for (int i = 0; i < 400; ++i) adapt.update(r);
  ASSERT_NE(adapt.reseed_period_current(), adapt.options().reseed_period);
  adapt.reset();
  EXPECT_EQ(adapt.reseed_period_current(), adapt.options().reseed_period);
}

// ---------------------------------------------------------------------
// Service layer
// ---------------------------------------------------------------------

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

std::vector<core::FrameEvent> interleaved_schedule(int clients, int frames,
                                                   double gap_s) {
  static const std::vector<geom::Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  std::vector<core::FrameEvent> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c)
      out.push_back({0.1 + gap_s * i + 0.011 * c, c, sites[std::size_t(c)]});
  return out;
}

service::ServiceReport run_service(const geom::Floorplan* plan,
                                   const std::vector<core::FrameEvent>& sched,
                                   std::size_t workers, std::size_t batch_max,
                                   bool subspace_tracking,
                                   std::string* stats_json = nullptr) {
  auto sys = make_system(plan);
  service::ServiceOptions opt;
  opt.workers = workers;
  opt.batch_max = batch_max;
  opt.subspace_tracking = subspace_tracking;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  service::LocationService svc(sys.get(), opt);
  auto rep = svc.run(sched);
  if (stats_json != nullptr) *stats_json = svc.stats_json();
  return rep;
}

void expect_same_fixes(const service::ServiceReport& a,
                       const service::ServiceReport& b, const char* what) {
  ASSERT_EQ(a.fixes.size(), b.fixes.size()) << what;
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    const auto& x = a.fixes[i];
    const auto& y = b.fixes[i];
    EXPECT_EQ(x.client_id, y.client_id) << what << " fix " << i;
    EXPECT_EQ(x.seq, y.seq) << what << " fix " << i;
    EXPECT_EQ(x.frame_time_s, y.frame_time_s) << what << " fix " << i;
    // Byte-identical positions, not a tolerance: the tracked stream is
    // a function of per-client frame order alone, which the service
    // preserves at any worker count or drain width.
    EXPECT_EQ(x.position.x, y.position.x) << what << " fix " << i;
    EXPECT_EQ(x.position.y, y.position.y) << what << " fix " << i;
    EXPECT_EQ(x.smoothed.x, y.smoothed.x) << what << " fix " << i;
    EXPECT_EQ(x.smoothed.y, y.smoothed.y) << what << " fix " << i;
    EXPECT_EQ(x.likelihood, y.likelihood) << what << " fix " << i;
  }
}

TEST(SubspaceServiceTest, TrackedFixesByteIdenticalAcrossWorkersAndBatches) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(4, 6, 0.2);

  std::string base_stats;
  const auto base =
      run_service(&plan, schedule, 1, 1, /*subspace_tracking=*/true,
                  &base_stats);
  ASSERT_GT(base.fixes.size(), 0u);
  // Tracking actually engaged: steady-state updates skipped the EVD,
  // and the stats snapshot reports the split.
  EXPECT_NE(base_stats.find("\"evd_tracked\""), std::string::npos);
  EXPECT_NE(base_stats.find("\"evd_full\""), std::string::npos);
  EXPECT_NE(base_stats.find("\"evd_reseed\""), std::string::npos);

  for (std::size_t workers : {2u, 8u}) {
    for (std::size_t batch_max : {1u, 8u}) {
      const auto other = run_service(&plan, schedule, workers, batch_max,
                                     /*subspace_tracking=*/true);
      expect_same_fixes(base, other,
                        (std::string("workers ") + std::to_string(workers) +
                         " batch " + std::to_string(batch_max))
                            .c_str());
    }
  }
}

TEST(SubspaceServiceTest, TrackedModeSkipsDecompositions) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(2, 12, 0.1);
  auto sys = make_system(&plan);
  service::ServiceOptions opt;
  opt.workers = 2;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 1.0;
  service::LocationService svc(sys.get(), opt);  // tracking defaults on
  const auto rep = svc.run(schedule);
  ASSERT_GT(rep.fixes.size(), 4u);
  const auto& st = svc.stats();
  EXPECT_GT(st.subspace.evd_tracked.load(), 0u);
  EXPECT_GT(st.subspace.evd_full.load(), 0u);  // cold seeds at least
}

TEST(SubspaceServiceTest, ExactOverrideMatchesTrackingOffAtEverySimdLevel) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(3, 5, 0.2);

  for (Level lvl : testable_levels()) {
    ForcedLevel guard(lvl);
    // Tracking on but forced exact via the environment kill switch...
    ASSERT_EQ(0, setenv("ARRAYTRACK_EXACT_EVD", "1", 1));
    const auto forced =
        run_service(&plan, schedule, 2, 8, /*subspace_tracking=*/true);
    ASSERT_EQ(0, unsetenv("ARRAYTRACK_EXACT_EVD"));
    // ...must be byte-identical to tracking disabled outright.
    const auto off =
        run_service(&plan, schedule, 2, 8, /*subspace_tracking=*/false);
    ASSERT_GT(forced.fixes.size(), 0u);
    expect_same_fixes(forced, off, "exact override vs tracking off");
  }
}

}  // namespace
}  // namespace arraytrack
