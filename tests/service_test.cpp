// Tests for the concurrent location-serving engine.
//
// The load-bearing properties: (a) fixes are byte-identical across
// worker counts under the virtual clock, (b) per-client ordering
// survives multi-worker execution, (c) overload sheds loudly — every
// submitted frame is accounted to exactly one terminal counter. The
// whole file also runs under the ThreadSanitizer tier of
// tools/check.sh, which is what makes (b) a race test and not just an
// ordering test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>

#include "phy/wire.h"
#include "service/service.h"
#include "service/stats.h"

namespace arraytrack::service {
namespace {

using core::FrameEvent;
using geom::Vec2;

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

/// Fresh system per run: identical seeds => identical channel/noise
/// draws, which is what lets runs be compared byte for byte.
std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

const std::vector<Vec2>& client_sites() {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  return sites;
}

/// `frames` per client, staggered so clients interleave.
std::vector<FrameEvent> interleaved_schedule(int clients, int frames,
                                             double gap_s) {
  std::vector<FrameEvent> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c)
      out.push_back({0.1 + gap_s * i + 0.011 * c, c,
                     client_sites()[std::size_t(c)]});
  std::sort(out.begin(), out.end(),
            [](const FrameEvent& a, const FrameEvent& b) {
              return a.time_s < b.time_s;
            });
  return out;
}

ServiceOptions virtual_options(std::size_t workers) {
  ServiceOptions opt;
  opt.workers = workers;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  return opt;
}

TEST(ServiceTest, ByteIdenticalFixesAcrossWorkerCounts) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(3, 6, 0.2);

  std::vector<ServiceReport> reports;
  for (std::size_t workers : {1u, 2u, 8u}) {
    auto sys = make_system(&plan);
    LocationService svc(sys.get(), virtual_options(workers));
    reports.push_back(svc.run(schedule));
  }

  const auto& base = reports[0];
  ASSERT_GT(base.fixes.size(), 0u);
  EXPECT_EQ(base.shed_queue_full + base.shed_deadline, 0u);
  for (std::size_t r = 1; r < reports.size(); ++r) {
    const auto& other = reports[r];
    ASSERT_EQ(base.fixes.size(), other.fixes.size()) << "workers run " << r;
    EXPECT_EQ(base.jobs_coalesced, other.jobs_coalesced);
    for (std::size_t i = 0; i < base.fixes.size(); ++i) {
      const auto& a = base.fixes[i];
      const auto& b = other.fixes[i];
      EXPECT_EQ(a.client_id, b.client_id);
      EXPECT_EQ(a.seq, b.seq);
      EXPECT_EQ(a.frame_time_s, b.frame_time_s);
      // Byte-identical positions: the pipeline is pool-width invariant
      // and the admitted job set is identical, so exact double
      // equality is the contract, not a tolerance.
      EXPECT_EQ(a.position.x, b.position.x);
      EXPECT_EQ(a.position.y, b.position.y);
      EXPECT_EQ(a.smoothed.x, b.smoothed.x);
      EXPECT_EQ(a.smoothed.y, b.smoothed.y);
      EXPECT_EQ(a.likelihood, b.likelihood);
    }
  }
}

TEST(ServiceTest, PerClientOrderingUnderManyWorkers) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  auto opt = virtual_options(8);
  opt.shards = 4;  // fewer shards than workers: claim contention
  opt.virtual_cost_s = 0.05;
  LocationService svc(sys.get(), opt);

  svc.start();
  for (const auto& ev : interleaved_schedule(4, 8, 0.08)) svc.submit(ev);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();  // emission order
  svc.stop();

  ASSERT_GT(fixes.size(), 0u);
  std::map<int, std::uint64_t> last_seq;
  std::map<int, double> last_time;
  for (const auto& f : fixes) {
    if (last_seq.count(f.client_id)) {
      EXPECT_LT(last_seq[f.client_id], f.seq)
          << "client " << f.client_id << " fixes out of order";
      EXPECT_LE(last_time[f.client_id], f.frame_time_s);
    }
    last_seq[f.client_id] = f.seq;
    last_time[f.client_id] = f.frame_time_s;
  }
}

TEST(ServiceTest, OverloadShedsAndAccountsEveryFrame) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(2, 40, 0.02);  // ~100 Hz offered

  auto run_once = [&] {
    auto sys = make_system(&plan);
    ServiceOptions opt = virtual_options(1);
    opt.virtual_cost_s = 0.08;       // server keeps up with ~12 Hz only
    opt.latency_slo_s = 0.2;
    opt.shard_queue_capacity = 2;
    opt.coalesce_per_client = false;  // force real overload
    LocationService svc(sys.get(), opt);
    return svc.run(schedule);
  };

  const auto rep = run_once();
  EXPECT_EQ(rep.frames_in, schedule.size());
  EXPECT_GT(rep.shed_queue_full + rep.shed_deadline, 0u)
      << "overload must activate shedding";
  // Every frame lands in exactly one terminal counter: coalesced at
  // admission, enqueued and later shed, failed, or fixed.
  EXPECT_EQ(rep.frames_in, rep.jobs_coalesced + rep.jobs_enqueued);
  EXPECT_EQ(rep.jobs_enqueued, rep.fixes_emitted + rep.locate_failures +
                                   rep.shed_queue_full + rep.shed_deadline);
  EXPECT_EQ(rep.fixes_emitted, rep.fixes.size());

  // Under the virtual clock the overload outcome is reproducible.
  const auto rep2 = run_once();
  EXPECT_EQ(rep.fixes.size(), rep2.fixes.size());
  EXPECT_EQ(rep.shed_queue_full, rep2.shed_queue_full);
  EXPECT_EQ(rep.shed_deadline, rep2.shed_deadline);
}

TEST(ServiceTest, CoalescingBoundsBacklog) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  ServiceOptions opt = virtual_options(2);
  opt.virtual_cost_s = 0.05;
  opt.latency_slo_s = 0.0;  // isolate coalescing from shedding
  LocationService svc(sys.get(), opt);

  std::vector<FrameEvent> burst;
  for (int i = 0; i < 100; ++i)
    burst.push_back({0.1 + 0.001 * i, 0, client_sites()[0]});
  const auto rep = svc.run(burst);

  EXPECT_EQ(rep.frames_in, 100u);
  EXPECT_GT(rep.jobs_coalesced, 80u);
  EXPECT_LT(rep.fixes.size(), 20u);
  EXPECT_EQ(rep.frames_in, rep.jobs_coalesced + rep.jobs_enqueued);
}

TEST(ServiceTest, WallClockModeServes) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  ServiceOptions opt;
  opt.workers = 2;
  opt.virtual_clock = false;
  opt.latency_slo_s = 30.0;  // no shedding on a slow CI box
  LocationService svc(sys.get(), opt);

  svc.start();
  for (const auto& ev : interleaved_schedule(2, 4, 0.05)) svc.submit(ev);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();
  svc.stop();

  // Submits land back-to-back in real time, so most frames coalesce
  // into the queued job while the workers are busy — at least one fix
  // per client must still come out, and every frame must be accounted.
  ASSERT_GE(fixes.size(), 2u);
  for (const auto& f : fixes) {
    EXPECT_GE(f.latency_s, 0.0);
    EXPECT_GE(f.error_m, 0.0);
    EXPECT_LT(f.error_m, 1.5);
  }
  const auto& st = svc.stats();
  EXPECT_EQ(st.fixes_emitted.load(), fixes.size());
  EXPECT_EQ(st.frames_in.load(), st.jobs_coalesced.load() +
                                     st.fixes_emitted.load() +
                                     st.locate_failures.load());
}

TEST(ServiceTest, WireIngestProducesFix) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  ServiceOptions opt = virtual_options(2);
  LocationService svc(sys.get(), opt);

  // An AP deployment would ship encoded capture records; synthesize
  // them from the simulated front ends.
  const Vec2 truth{11.0, 4.0};
  phy::WireFormat wire;
  std::vector<LocationService::WireRecord> records;
  sys->transmit(7, truth, 0.5);
  for (std::size_t a = 0; a < sys->num_aps(); ++a)
    records.push_back({a, wire.encode(sys->ap(int(a)).buffer().newest())});

  svc.start();
  svc.submit_wire(0.5, records);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();
  svc.stop();

  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].client_id, 7);
  EXPECT_LT(geom::distance(fixes[0].position, truth), 1.5);
  EXPECT_EQ(svc.stats().decode_errors.load(), 0u);
}

TEST(ServiceTest, WireIngestRejectsMalformedRecords) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(1));

  phy::WireFormat wire;
  sys->transmit(3, {8.0, 5.0}, 0.2);
  auto good = wire.encode(sys->ap(0).buffer().newest());

  std::vector<LocationService::WireRecord> records;
  records.push_back({0, std::vector<std::uint8_t>{1, 2, 3}});  // garbage
  auto truncated = good;
  truncated.resize(good.size() / 2);
  records.push_back({1, truncated});
  records.push_back({99, good});  // AP index out of range

  svc.start();
  svc.submit_wire(0.2, records);
  svc.flush();
  svc.stop();

  EXPECT_EQ(svc.stats().wire_records_in.load(), 3u);
  EXPECT_EQ(svc.stats().decode_errors.load(), 3u);
  EXPECT_EQ(svc.stats().frames_in.load(), 0u);
  EXPECT_TRUE(svc.bus().drain_retained().empty());
}

TEST(ServiceTest, StatsJsonSnapshotIsWellFormed) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(2));
  const auto rep = svc.run(interleaved_schedule(2, 3, 0.2));

  const std::string& js = rep.stats_json;
  for (const char* key :
       {"\"frames_in\"", "\"jobs_coalesced\"", "\"shed_queue_full\"",
        "\"shed_deadline\"", "\"fixes_emitted\"", "\"queue_depth\"",
        "\"queue_wait_ms\"", "\"processing_ms\"", "\"e2e_ms\"", "\"p99\""})
    EXPECT_NE(js.find(key), std::string::npos) << key << " missing:\n" << js;
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
}

TEST(StreamingHistogramTest, CountsMeanMaxAndPercentiles) {
  StreamingHistogram h(0.1, 1000.0, 40);
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 1e-6);
  EXPECT_DOUBLE_EQ(h.max_seen(), 100.0);
  // Quantiles are bucket-approximate: generous tolerance.
  EXPECT_NEAR(h.percentile(50), 50.0, 15.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 25.0);
  EXPECT_LE(h.percentile(10), h.percentile(90));
}

TEST(StreamingHistogramTest, UnderflowOverflowAndReset) {
  StreamingHistogram h(1.0, 10.0, 4);
  h.record(0.001);   // underflow bucket
  h.record(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(StreamingHistogramTest, ConcurrentRecordsAreExactInCount) {
  StreamingHistogram h(0.1, 100.0, 16);
  constexpr int kThreads = 4;
  constexpr int kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i) h.record(0.5 + double((t + i) % 50));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), std::uint64_t(kThreads * kPer));
}

}  // namespace
}  // namespace arraytrack::service
