// Tests for the AoA spectrum container and its operations.
#include <gtest/gtest.h>

#include <cmath>

#include "aoa/spectrum.h"

namespace arraytrack::aoa {
namespace {

AoaSpectrum gaussian_peak_spectrum(std::size_t bins, double center_rad,
                                   double width_rad, double height = 1.0) {
  AoaSpectrum s(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = bearing_distance(s.bin_bearing(i), center_rad);
    s[i] += height * std::exp(-0.5 * (d / width_rad) * (d / width_rad));
  }
  return s;
}

TEST(BearingDistanceTest, WrapsCorrectly) {
  EXPECT_NEAR(bearing_distance(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(bearing_distance(0.0, kPi), kPi, 1e-12);
  EXPECT_NEAR(bearing_distance(deg2rad(350), deg2rad(10)), deg2rad(20),
              1e-12);
}

TEST(SpectrumTest, ValueAtInterpolates) {
  AoaSpectrum s(4);  // bins at 0, 90, 180, 270 deg
  s[0] = 0.0;
  s[1] = 1.0;
  EXPECT_NEAR(s.value_at(deg2rad(45.0)), 0.5, 1e-12);
  EXPECT_NEAR(s.value_at(deg2rad(90.0)), 1.0, 1e-12);
  // Wraparound between bin 3 and bin 0.
  s[3] = 0.4;
  EXPECT_NEAR(s.value_at(deg2rad(315.0)), 0.2, 1e-12);
}

TEST(SpectrumTest, NormalizeSetsMaxToOne) {
  auto s = gaussian_peak_spectrum(360, deg2rad(100), deg2rad(5), 7.0);
  s.normalize();
  EXPECT_NEAR(s.max_value(), 1.0, 1e-12);
  AoaSpectrum z(8);
  z.normalize();  // all-zero: no-op, no NaN
  EXPECT_DOUBLE_EQ(z.max_value(), 0.0);
}

TEST(SpectrumTest, FindPeaksSortedByPower) {
  auto s = gaussian_peak_spectrum(720, deg2rad(60), deg2rad(4), 1.0);
  s += gaussian_peak_spectrum(720, deg2rad(200), deg2rad(4), 0.6);
  s += gaussian_peak_spectrum(720, deg2rad(300), deg2rad(4), 0.3);
  const auto peaks = s.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 60.0, 1.0);
  EXPECT_NEAR(rad2deg(peaks[1].bearing_rad), 200.0, 1.0);
  EXPECT_NEAR(rad2deg(peaks[2].bearing_rad), 300.0, 1.0);
  EXPECT_GT(peaks[0].power, peaks[1].power);
}

TEST(SpectrumTest, FindPeaksRespectsFloor) {
  auto s = gaussian_peak_spectrum(720, deg2rad(60), deg2rad(4), 1.0);
  s += gaussian_peak_spectrum(720, deg2rad(200), deg2rad(4), 0.05);
  EXPECT_EQ(s.find_peaks(0.1).size(), 1u);
  EXPECT_EQ(s.find_peaks(0.01).size(), 2u);
}

TEST(SpectrumTest, FindPeaksHandlesWraparound) {
  const auto s = gaussian_peak_spectrum(720, deg2rad(0.5), deg2rad(4), 1.0);
  const auto peaks = s.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_LT(bearing_distance(peaks[0].bearing_rad, deg2rad(0.5)),
            deg2rad(1.0));
}

TEST(SpectrumTest, RemoveLobeErasesOnlyThatLobe) {
  auto s = gaussian_peak_spectrum(720, deg2rad(60), deg2rad(4), 1.0);
  s += gaussian_peak_spectrum(720, deg2rad(200), deg2rad(4), 0.6);
  // Remove by a bearing slightly off the peak center (walks uphill).
  s.remove_lobe(deg2rad(57.0));
  const auto peaks = s.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 200.0, 1.0);
  // The other lobe is untouched.
  EXPECT_NEAR(s.value_at(deg2rad(200.0)), 0.6, 1e-6);
}

TEST(SpectrumTest, GeometryWeightingSuppressesEndfire) {
  AoaSpectrum s(720);
  for (std::size_t i = 0; i < s.bins(); ++i) s[i] = 1.0;
  s.apply_geometry_weighting();
  // Endfire (0 and 180 deg) crushed, broadside (90/270) untouched.
  EXPECT_LT(s.value_at(deg2rad(2.0)), 0.1);
  EXPECT_LT(s.value_at(deg2rad(178.0)), 0.1);
  EXPECT_LT(s.value_at(deg2rad(358.0)), 0.1);
  EXPECT_NEAR(s.value_at(deg2rad(90.0)), 1.0, 1e-9);
  EXPECT_NEAR(s.value_at(deg2rad(270.0)), 1.0, 1e-9);
  // Inside the paper's 15..165 degree window the weight is exactly 1.
  EXPECT_NEAR(s.value_at(deg2rad(20.0)), 1.0, 1e-9);
  EXPECT_NEAR(s.value_at(deg2rad(340.0)), 1.0, 1e-9);
  // At 10 degrees off axis the weight is sin(10 deg).
  EXPECT_NEAR(s.value_at(deg2rad(10.0)), std::sin(deg2rad(10.0)), 1e-6);
}

TEST(SpectrumTest, SidePowerAndScaleSide) {
  auto s = gaussian_peak_spectrum(720, deg2rad(90), deg2rad(5), 1.0);
  s += gaussian_peak_spectrum(720, deg2rad(270), deg2rad(5), 0.5);
  EXPECT_GT(s.side_power(true), s.side_power(false));
  s.scale_side(/*front=*/false, 0.0);
  EXPECT_NEAR(s.value_at(deg2rad(270.0)), 0.0, 1e-9);
  EXPECT_NEAR(s.value_at(deg2rad(90.0)), 1.0, 1e-6);
}

TEST(SpectrumTest, DominantBearing) {
  auto s = gaussian_peak_spectrum(720, deg2rad(123), deg2rad(3), 2.0);
  EXPECT_NEAR(rad2deg(s.dominant_bearing()), 123.0, 0.6);
}

TEST(SpectrumTest, AccumulateMismatchThrows) {
  AoaSpectrum a(10), b(12);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(SpectrumTest, AsciiRenderNonEmpty) {
  const auto s = gaussian_peak_spectrum(720, deg2rad(90), deg2rad(5), 1.0);
  const auto art = s.to_ascii(40, 6);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace arraytrack::aoa
