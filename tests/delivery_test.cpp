// Tests for the streaming fix delivery + read-side query layer
// (src/delivery): the fix bus and its per-subscriber drop-oldest
// rings, geofence zone-presence triggers, the time-decayed history
// store with epoch-snapshot queries, and the service integration.
//
// The load-bearing properties: (a) a stalled subscriber sheds its own
// backlog — counted, never silent — and never blocks the publish
// path; (b) zone events are a deterministic per-client function of
// the fix stream (hysteresis absorbs boundary jitter); (c) snapshot
// queries are safe concurrently with the write path; (d) event
// streams and query results are byte-identical across worker counts,
// batch widths, and subscriber counts under the virtual clock. The
// Delivery/Query/Geofence suites also run under the ThreadSanitizer
// tier of tools/check.sh, which makes (a) and (c) race tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "delivery/bus.h"
#include "service/service.h"

namespace arraytrack {
namespace {

using core::FrameEvent;
using geom::Vec2;

delivery::Fix make_fix(int client, std::uint64_t seq, Vec2 pos,
                       double time_s = 0.0) {
  delivery::Fix f;
  f.client_id = client;
  f.seq = seq;
  f.frame_time_s = time_s;
  f.position = pos;
  f.smoothed = pos;
  f.likelihood = 1.0;
  return f;
}

// ---------------------------------------------------------------------
// Geofence: polygons and presence triggers
// ---------------------------------------------------------------------

TEST(GeofenceTest, PolygonContainsAndSignedDistance) {
  const auto sq = geom::Polygon::rectangle({{2.0, 2.0}, {6.0, 6.0}});
  EXPECT_TRUE(sq.contains({4.0, 4.0}));
  EXPECT_FALSE(sq.contains({1.0, 4.0}));
  EXPECT_NEAR(sq.signed_distance({4.0, 4.0}), -2.0, 1e-12);  // inside
  EXPECT_NEAR(sq.signed_distance({8.0, 4.0}), 2.0, 1e-12);   // outside
  EXPECT_NEAR(sq.area(), 16.0, 1e-12);
  // Degenerate polygons are empty: nothing is ever inside them.
  EXPECT_FALSE(geom::Polygon({{0, 0}, {1, 1}}).contains({0.5, 0.5}));
}

TEST(GeofenceTest, EnterLeaveDwellSequence) {
  delivery::GeofenceEngine eng;
  delivery::ZoneOptions zopt;
  zopt.leave_margin_m = 0.25;
  zopt.dwell_s = 0.5;
  const int zid =
      eng.add_zone(geom::Polygon::rectangle({{2, 2}, {6, 6}}), zopt, "lab");

  std::vector<delivery::Event> events;
  auto emit = [&](delivery::Event&& ev) { events.push_back(std::move(ev)); };

  std::uint64_t seq = 0;
  auto step = [&](double x, double t) {
    eng.update(make_fix(7, seq++, {x, 4.0}, t), emit);
  };
  step(0.5, 0.0);  // far outside
  step(4.0, 0.1);  // inside -> enter
  step(4.5, 0.3);  // still inside, dwell not yet reached
  step(4.2, 0.7);  // inside 0.6s >= 0.5 -> dwell (once)
  step(4.1, 0.9);  // no second dwell
  step(8.0, 1.1);  // outside by > margin -> leave

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, delivery::EventKind::kZoneEnter);
  EXPECT_EQ(events[0].zone_id, zid);
  EXPECT_EQ(events[1].kind, delivery::EventKind::kZoneDwell);
  EXPECT_NEAR(events[1].dwell_s, 0.6, 1e-12);
  EXPECT_EQ(events[2].kind, delivery::EventKind::kZoneLeave);
  EXPECT_NEAR(events[2].dwell_s, 1.0, 1e-12);  // total visit time
  EXPECT_EQ(eng.trigger_fires(), 3u);
}

TEST(GeofenceTest, HysteresisAbsorbsBoundaryJitter) {
  delivery::GeofenceEngine eng;
  delivery::ZoneOptions zopt;
  zopt.leave_margin_m = 0.25;
  eng.add_zone(geom::Polygon::rectangle({{2, 2}, {6, 6}}), zopt);

  std::vector<delivery::Event> events;
  auto emit = [&](delivery::Event&& ev) { events.push_back(std::move(ev)); };

  // A client jittering across the x=6 boundary but never farther out
  // than the leave margin: one enter, no leave, no flapping.
  std::uint64_t seq = 0;
  double t = 0.0;
  eng.update(make_fix(1, seq++, {5.5, 4.0}, t += 0.1), emit);  // enter
  for (double x : {6.1, 5.9, 6.2, 5.8, 6.15})
    eng.update(make_fix(1, seq++, {x, 4.0}, t += 0.1), emit);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, delivery::EventKind::kZoneEnter);

  // Stepping clearly past the margin finally leaves.
  eng.update(make_fix(1, seq++, {6.5, 4.0}, t += 0.1), emit);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, delivery::EventKind::kZoneLeave);
}

TEST(GeofenceTest, OccupancyTracksPresencePerZone) {
  delivery::GeofenceEngine eng;
  const int za = eng.add_zone(geom::Polygon::rectangle({{0, 0}, {4, 4}}));
  const int zb = eng.add_zone(geom::Polygon::rectangle({{6, 0}, {10, 4}}));
  auto drop = [](delivery::Event&&) {};

  eng.update(make_fix(3, 0, {2, 2}), drop);   // 3 in A
  eng.update(make_fix(1, 0, {2, 1}), drop);   // 1 in A
  eng.update(make_fix(2, 0, {8, 2}), drop);   // 2 in B
  EXPECT_EQ(eng.occupants(za), (std::vector<int>{1, 3}));  // ascending
  EXPECT_EQ(eng.occupants(zb), (std::vector<int>{2}));
  EXPECT_TRUE(eng.occupants(99).empty());

  eng.forget_client(3);
  EXPECT_EQ(eng.occupants(za), (std::vector<int>{1}));
}

// ---------------------------------------------------------------------
// Query layer: history store and snapshots
// ---------------------------------------------------------------------

TEST(QueryTest, HistoryDownsamplingInvariants) {
  delivery::HistoryOptions hopt;
  hopt.dense_capacity = 8;
  hopt.tier_capacity = 4;
  hopt.tiers = 2;
  delivery::HistoryStore store(hopt);

  const int kAppends = 200;
  for (int i = 0; i < kAppends; ++i)
    store.append(make_fix(5, std::uint64_t(i),
                          {double(i) * 0.1, 1.0}, double(i) * 0.05));

  const auto snap = store.snapshot(5);
  ASSERT_NE(snap, nullptr);
  // Bounded: dense at capacity, every tier at or under its capacity.
  EXPECT_EQ(snap->dense.size(), hopt.dense_capacity);
  ASSERT_EQ(snap->tiers.size(), hopt.tiers);
  for (const auto& tier : snap->tiers)
    EXPECT_LE(tier.size(), hopt.tier_capacity);
  EXPECT_EQ(store.total_points(), snap->points());
  EXPECT_EQ(store.approx_bytes(),
            snap->points() * sizeof(delivery::TrackPoint));

  // The full retained trajectory is ascending in time and the tail is
  // geometrically thinned: tier i holds points spaced 2^(i+1) appends
  // apart, so deeper tiers span older, sparser history.
  const auto traj = store.trajectory(5, -1.0, 1e9);
  ASSERT_GT(traj.size(), hopt.dense_capacity);
  for (std::size_t i = 1; i < traj.size(); ++i)
    EXPECT_LT(traj[i - 1].time_s, traj[i].time_s);
  for (std::size_t ti = 0; ti < snap->tiers.size(); ++ti) {
    const auto& tier = snap->tiers[ti];
    const auto spacing = std::uint64_t(1) << (ti + 1);
    for (std::size_t i = 1; i < tier.size(); ++i)
      EXPECT_EQ(tier[i].seq - tier[i - 1].seq, spacing) << "tier " << ti;
  }

  // latest() is the newest appended fix; trajectory() respects [t0,t1].
  ASSERT_TRUE(store.latest(5).has_value());
  EXPECT_EQ(store.latest(5)->seq, std::uint64_t(kAppends - 1));
  const auto windowed = store.trajectory(5, 5.0, 7.0);
  for (const auto& p : windowed) {
    EXPECT_GE(p.time_s, 5.0);
    EXPECT_LE(p.time_s, 7.0);
  }
  EXPECT_FALSE(store.latest(42).has_value());
  EXPECT_TRUE(store.trajectory(42, 0.0, 1.0).empty());

  store.forget_client(5);
  EXPECT_EQ(store.total_points(), 0u);
  EXPECT_EQ(store.snapshot(5), nullptr);
}

TEST(QueryTest, SnapshotsAreImmutableEpochs) {
  delivery::HistoryStore store({4, 2, 1});
  for (int i = 0; i < 6; ++i)
    store.append(make_fix(1, std::uint64_t(i), {double(i), 0.0}, double(i)));
  const auto epoch = store.snapshot(1);
  ASSERT_NE(epoch, nullptr);
  const auto before = epoch->points();
  const double last_t = epoch->dense.back().time_s;

  for (int i = 6; i < 20; ++i)
    store.append(make_fix(1, std::uint64_t(i), {double(i), 0.0}, double(i)));
  // The old epoch is untouched by later appends.
  EXPECT_EQ(epoch->points(), before);
  EXPECT_EQ(epoch->dense.back().time_s, last_t);
  EXPECT_NE(store.snapshot(1), epoch);
}

TEST(QueryTest, ConcurrentReadersDuringPublish) {
  // Write path vs read path under TSan: one publisher streams fixes
  // through the bus (history + geofence + fanout) while readers
  // hammer the snapshot queries. Invariants only — readers see some
  // consistent epoch, never a torn one.
  delivery::FixBus bus;
  const int zid =
      bus.add_zone(geom::Polygon::rectangle({{2, 0}, {6, 4}}), {}, "mid");
  auto sub = bus.subscribe({.capacity = 64, .label = "drain"});

  constexpr int kClients = 3;
  constexpr std::uint64_t kFixes = 4000;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t)
    readers.emplace_back([&, t] {
      std::uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const int c = t % kClients;
        if (const auto latest = bus.latest(c)) {
          // Per-client time/seq only move forward across epochs.
          EXPECT_GE(latest->seq, last_seen);
          last_seen = latest->seq;
        }
        const auto traj = bus.trajectory(c, 0.0, 1e9);
        for (std::size_t i = 1; i < traj.size(); ++i)
          EXPECT_LT(traj[i - 1].time_s, traj[i].time_s);
        const auto occ = bus.zone_occupancy(zid);
        EXPECT_TRUE(std::is_sorted(occ.begin(), occ.end()));
      }
    });
  std::thread drainer([&] {
    delivery::Event ev;
    while (!done.load(std::memory_order_acquire))
      if (!sub->poll(ev)) std::this_thread::yield();
  });

  for (std::uint64_t i = 0; i < kFixes; ++i) {
    const int c = int(i % kClients);
    const double x = double((i * 7) % 90) * 0.1;
    bus.publish(make_fix(c, i / kClients, {x, 2.0}, double(i) * 1e-3));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  drainer.join();
  EXPECT_EQ(bus.published_fixes(), kFixes);
}

// ---------------------------------------------------------------------
// Delivery: the bus and its subscribers
// ---------------------------------------------------------------------

TEST(DeliveryTest, StalledSubscriberShedsItsOwnBacklogOnly) {
  delivery::FixBus bus;
  auto healthy = bus.subscribe({.capacity = 4096, .label = "healthy"});
  auto stalled = bus.subscribe({.capacity = 16, .label = "stalled"});

  constexpr std::uint64_t kFixes = 500;
  for (std::uint64_t i = 0; i < kFixes; ++i)
    bus.publish(make_fix(1, i, {1.0, 1.0}, double(i)));

  // The stalled ring shed everything beyond its capacity; the healthy
  // subscriber and the publish path never noticed.
  EXPECT_EQ(stalled->published(), kFixes);
  EXPECT_EQ(stalled->shed(), kFixes - stalled->options().capacity);
  EXPECT_EQ(stalled->cursor(), stalled->delivered() + stalled->shed());
  EXPECT_EQ(healthy->shed(), 0u);
  EXPECT_EQ(healthy->poll_batch().size(), kFixes);

  // What survives in the stalled ring is the NEWEST tail, in order.
  const auto tail = stalled->poll_batch();
  ASSERT_EQ(tail.size(), stalled->options().capacity);
  EXPECT_EQ(tail.back().fix.seq, kFixes - 1);
  for (std::size_t i = 1; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].fix.seq, tail[i - 1].fix.seq + 1);
  EXPECT_EQ(stalled->lag(), 0u);
  EXPECT_EQ(bus.total_shed(), kFixes - tail.size());
}

TEST(DeliveryTest, SubscriptionFilters) {
  delivery::FixBus bus;
  const int zid =
      bus.add_zone(geom::Polygon::rectangle({{0, 0}, {4, 4}}), {}, "a");
  bus.add_zone(geom::Polygon::rectangle({{6, 0}, {10, 4}}), {}, "b");
  auto only_c2 = bus.subscribe({.client_id = 2, .label = "c2"});
  auto zones_only =
      bus.subscribe({.fixes = false, .zone_id = zid, .label = "zoneA"});

  bus.publish(make_fix(1, 0, {2, 2}, 0.1));  // c1 enters zone a
  bus.publish(make_fix(2, 0, {8, 2}, 0.2));  // c2 enters zone b
  bus.publish(make_fix(2, 1, {8, 2}, 0.3));

  const auto c2_events = only_c2->poll_batch();
  ASSERT_EQ(c2_events.size(), 3u);  // 2 fixes + 1 zone-b enter
  for (const auto& ev : c2_events) EXPECT_EQ(ev.fix.client_id, 2);

  const auto zone_events = zones_only->poll_batch();
  ASSERT_EQ(zone_events.size(), 1u);  // only zone a's enter, no fixes
  EXPECT_EQ(zone_events[0].kind, delivery::EventKind::kZoneEnter);
  EXPECT_EQ(zone_events[0].zone_id, zid);
  EXPECT_EQ(zone_events[0].fix.client_id, 1);

  bus.unsubscribe(only_c2);
  bus.publish(make_fix(2, 2, {8, 2}, 0.4));
  EXPECT_EQ(only_c2->published(), 3u);  // nothing offered after unsubscribe
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(DeliveryTest, EventKindNamesAndStatsJson) {
  EXPECT_STREQ(delivery::event_kind_name(delivery::EventKind::kFix), "fix");
  EXPECT_STREQ(delivery::event_kind_name(delivery::EventKind::kZoneEnter),
               "zone_enter");
  EXPECT_STREQ(delivery::event_kind_name(delivery::EventKind::kZoneLeave),
               "zone_leave");
  EXPECT_STREQ(delivery::event_kind_name(delivery::EventKind::kZoneDwell),
               "zone_dwell");

  delivery::FixBus bus;
  auto sub = bus.subscribe({.capacity = 2, .label = "tiny"});
  for (std::uint64_t i = 0; i < 10; ++i)
    bus.publish(make_fix(1, i, {1, 1}, double(i)));
  const auto js = bus.stats_json();
  EXPECT_NE(js.find("\"published_fixes\": 10"), std::string::npos) << js;
  EXPECT_NE(js.find("\"label\": \"tiny\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"shed\": 8"), std::string::npos) << js;
  EXPECT_NE(js.find("\"history_points\""), std::string::npos) << js;
}

// ---------------------------------------------------------------------
// Service integration
// ---------------------------------------------------------------------

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

std::vector<FrameEvent> interleaved_schedule(int clients, int frames,
                                             double gap_s) {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  std::vector<FrameEvent> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c)
      out.push_back({0.1 + gap_s * i + 0.011 * c, c, sites[std::size_t(c)]});
  std::sort(out.begin(), out.end(),
            [](const FrameEvent& a, const FrameEvent& b) {
              return a.time_s < b.time_s;
            });
  return out;
}

service::ServiceOptions virtual_options(std::size_t workers,
                                        std::size_t batch_max) {
  service::ServiceOptions opt;
  opt.workers = workers;
  opt.batch_max = batch_max;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  return opt;
}

/// Canonical event order for cross-config comparison: the per-client
/// substream is deterministic, the interleaving across clients is not
/// — the same convention ServiceReport.fixes already uses.
void sort_events(std::vector<delivery::Event>& evs) {
  std::sort(evs.begin(), evs.end(),
            [](const delivery::Event& a, const delivery::Event& b) {
              if (a.fix.frame_time_s != b.fix.frame_time_s)
                return a.fix.frame_time_s < b.fix.frame_time_s;
              if (a.fix.client_id != b.fix.client_id)
                return a.fix.client_id < b.fix.client_id;
              if (a.fix.seq != b.fix.seq) return a.fix.seq < b.fix.seq;
              if (a.kind != b.kind) return int(a.kind) < int(b.kind);
              return a.zone_id < b.zone_id;
            });
}

struct ConfigRun {
  std::vector<delivery::Event> events;
  std::vector<service::ServiceFix> fixes;
  std::vector<std::vector<delivery::TrackPoint>> trajectories;
  std::vector<int> occupancy;
};

ConfigRun run_config(const geom::Floorplan* plan,
                     const std::vector<FrameEvent>& schedule,
                     std::size_t workers, std::size_t batch_max,
                     std::size_t extra_subscribers) {
  auto sys = make_system(plan);
  service::LocationService svc(sys.get(), virtual_options(workers, batch_max));
  const int zid = svc.add_zone(
      geom::Polygon::rectangle({{3.0, 1.0}, {7.0, 5.0}}), {}, "around-c1");
  auto sub = svc.bus().subscribe({.capacity = 1024, .label = "main"});
  // Extra subscribers change fan-out width, never stream content.
  std::vector<std::shared_ptr<delivery::Subscriber>> extras;
  for (std::size_t i = 0; i < extra_subscribers; ++i)
    extras.push_back(svc.bus().subscribe({.capacity = 1024, .label = "x"}));

  ConfigRun out;
  out.fixes = svc.run(schedule).fixes;
  out.events = sub->poll_batch();
  sort_events(out.events);
  for (int c = 0; c < 3; ++c)
    out.trajectories.push_back(svc.trajectory(c, 0.0, 1e9));
  out.occupancy = svc.zone_occupancy(zid);
  return out;
}

TEST(DeliveryServiceTest, StreamsAndQueriesByteIdenticalAcrossConfigs) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(3, 6, 0.2);

  // workers x batch width x subscriber count; all must agree with the
  // first configuration byte for byte.
  const auto base = run_config(&plan, schedule, 1, 8, 0);
  ASSERT_GT(base.events.size(), 0u);
  ASSERT_GT(base.fixes.size(), 0u);
  // The zone around client 1's site fired at least an enter.
  EXPECT_TRUE(std::any_of(base.events.begin(), base.events.end(),
                          [](const delivery::Event& e) {
                            return e.kind == delivery::EventKind::kZoneEnter;
                          }));
  EXPECT_EQ(base.occupancy, (std::vector<int>{1}));

  struct Cfg { std::size_t workers, batch, subs; };
  for (const Cfg cfg : {Cfg{2, 1, 2}, Cfg{8, 8, 5}, Cfg{2, 4, 0}}) {
    const auto other =
        run_config(&plan, schedule, cfg.workers, cfg.batch, cfg.subs);
    ASSERT_EQ(base.events.size(), other.events.size())
        << "workers=" << cfg.workers << " batch=" << cfg.batch;
    for (std::size_t i = 0; i < base.events.size(); ++i) {
      const auto& a = base.events[i];
      const auto& b = other.events[i];
      EXPECT_EQ(int(a.kind), int(b.kind));
      EXPECT_EQ(a.zone_id, b.zone_id);
      EXPECT_EQ(a.dwell_s, b.dwell_s);
      EXPECT_EQ(a.fix.client_id, b.fix.client_id);
      EXPECT_EQ(a.fix.seq, b.fix.seq);
      EXPECT_EQ(a.fix.frame_time_s, b.fix.frame_time_s);
      EXPECT_EQ(a.fix.position.x, b.fix.position.x);
      EXPECT_EQ(a.fix.position.y, b.fix.position.y);
      EXPECT_EQ(a.fix.smoothed.x, b.fix.smoothed.x);
      EXPECT_EQ(a.fix.smoothed.y, b.fix.smoothed.y);
      EXPECT_EQ(a.fix.likelihood, b.fix.likelihood);
    }
    ASSERT_EQ(base.trajectories.size(), other.trajectories.size());
    for (std::size_t c = 0; c < base.trajectories.size(); ++c) {
      const auto& ta = base.trajectories[c];
      const auto& tb = other.trajectories[c];
      ASSERT_EQ(ta.size(), tb.size()) << "client " << c;
      for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].seq, tb[i].seq);
        EXPECT_EQ(ta[i].time_s, tb[i].time_s);
        EXPECT_EQ(ta[i].position.x, tb[i].position.x);
        EXPECT_EQ(ta[i].position.y, tb[i].position.y);
        EXPECT_EQ(ta[i].smoothed.x, tb[i].smoothed.x);
        EXPECT_EQ(ta[i].smoothed.y, tb[i].smoothed.y);
      }
    }
    EXPECT_EQ(base.occupancy, other.occupancy);
  }
}

TEST(DeliveryServiceTest, TakeFixesShimMatchesSubscribedStream) {
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(3, 5, 0.2);
  auto sys = make_system(&plan);
  service::LocationService svc(sys.get(), virtual_options(2, 8));
  auto sub = svc.bus().subscribe({.capacity = 1024, .label = "shim"});

  // run() drains through the bus's retained catch-all buffer; the
  // subscriber saw the same committed fixes over the bus.
  auto report = svc.run(schedule);
  auto events = sub->poll_batch();
  sort_events(events);
  ASSERT_EQ(events.size(), report.fixes.size());  // no zones -> fixes only
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, delivery::EventKind::kFix);
    EXPECT_EQ(events[i].fix.client_id, report.fixes[i].client_id);
    EXPECT_EQ(events[i].fix.seq, report.fixes[i].seq);
    EXPECT_EQ(events[i].fix.position.x, report.fixes[i].position.x);
    EXPECT_EQ(events[i].fix.position.y, report.fixes[i].position.y);
  }
  // A second drain is empty (take semantics preserved).
  EXPECT_TRUE(svc.bus().drain_retained().empty());
  // The merged stats JSON carries the delivery block.
  const auto js = svc.stats_json();
  EXPECT_NE(js.find("\"delivery\": {"), std::string::npos) << js;
  EXPECT_NE(js.find("\"subscribers\": ["), std::string::npos) << js;
  EXPECT_NE(report.stats_json.find("\"delivery\": {"), std::string::npos);
}

TEST(DeliveryServiceTest, LiveQueriesDuringServiceRun) {
  // Snapshot queries racing the real write path (worker threads
  // publishing at fix-commit time) — the TSan contract for the
  // service-facing query API.
  const auto plan = make_plan();
  const auto schedule = interleaved_schedule(3, 6, 0.2);
  auto sys = make_system(&plan);
  service::LocationService svc(sys.get(), virtual_options(4, 4));
  const int zid = svc.add_zone(
      geom::Polygon::rectangle({{3.0, 1.0}, {7.0, 5.0}}), {}, "mid");

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (int c = 0; c < 3; ++c) {
        const auto traj = svc.trajectory(c, 0.0, 1e9);
        for (std::size_t i = 1; i < traj.size(); ++i)
          EXPECT_LT(traj[i - 1].time_s, traj[i].time_s);
        svc.latest(c);
      }
      const auto occ = svc.zone_occupancy(zid);
      EXPECT_TRUE(std::is_sorted(occ.begin(), occ.end()));
    }
  });
  const auto report = svc.run(schedule);
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_GT(report.fixes.size(), 0u);
  const auto last = svc.latest(1);
  ASSERT_TRUE(last.has_value());
  EXPECT_GT(last->time_s, 0.0);
}

}  // namespace
}  // namespace arraytrack
