// Tests for the FFT/DFT kernels.
#include <gtest/gtest.h>

#include <random>

#include "dsp/fft.h"

namespace arraytrack::dsp {
namespace {

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<cplx> out(n);
  for (auto& v : out) v = cplx{g(rng), g(rng)};
  return out;
}

double max_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(FftTest, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(FftTest, DeltaTransformsToFlat) {
  std::vector<cplx> x(8, cplx{0, 0});
  x[0] = cplx{1, 0};
  const auto f = fft(x);
  for (const auto& v : f) EXPECT_NEAR(std::abs(v - cplx{1, 0}), 0.0, 1e-12);
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::exp(kJ * (kTwoPi * double(k) * double(i) / double(n)));
  const auto f = fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k)
      EXPECT_NEAR(std::abs(f[i]), double(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(f[i]), 0.0, 1e-9);
  }
}

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, IfftInvertsFft) {
  const auto x = random_signal(GetParam(), unsigned(GetParam()));
  EXPECT_LT(max_diff(ifft(fft(x)), x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTripTest,
                         ::testing::Values(1, 2, 8, 64, 128, 256,
                                           // non-power-of-two -> direct DFT
                                           3, 12, 53, 100));

TEST(FftTest, ParsevalHolds) {
  const auto x = random_signal(128, 77);
  const auto f = fft(x);
  double tx = 0.0, tf = 0.0;
  for (const auto& v : x) tx += std::norm(v);
  for (const auto& v : f) tf += std::norm(v);
  EXPECT_NEAR(tf, tx * 128.0, 1e-6 * tf);
}

TEST(FftTest, LinearityProperty) {
  const auto a = random_signal(64, 1);
  const auto b = random_signal(64, 2);
  std::vector<cplx> sum(64);
  const cplx alpha{2.0, -1.0};
  for (std::size_t i = 0; i < 64; ++i) sum[i] = alpha * a[i] + b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(std::abs(fsum[i] - (alpha * fa[i] + fb[i])), 0.0, 1e-9);
}

TEST(FftTest, MatchesDirectDftOnPowerOfTwo) {
  // The radix-2 path must agree with a textbook direct DFT.
  const auto x = random_signal(16, 9);
  const auto fast = fft(x);
  for (std::size_t k = 0; k < 16; ++k) {
    cplx acc{0, 0};
    for (std::size_t n = 0; n < 16; ++n)
      acc += x[n] * std::exp(-kJ * (kTwoPi * double(k * n) / 16.0));
    EXPECT_NEAR(std::abs(fast[k] - acc), 0.0, 1e-9);
  }
}

TEST(CircularXcorrTest, DeltaCorrelation) {
  std::vector<cplx> d(16, cplx{0, 0});
  d[0] = cplx{1, 0};
  const auto c = circular_xcorr(d, d);
  EXPECT_NEAR(std::abs(c[0] - cplx{1, 0}), 0.0, 1e-10);
  for (std::size_t i = 1; i < c.size(); ++i)
    EXPECT_NEAR(std::abs(c[i]), 0.0, 1e-10);
}

TEST(CircularXcorrTest, FindsCircularShift) {
  const auto a = random_signal(64, 5);
  std::vector<cplx> b(64);
  const std::size_t shift = 17;
  for (std::size_t i = 0; i < 64; ++i) b[(i + 64 - shift) % 64] = a[i];
  // b[n] = a[n + shift] => correlation peak at d = shift.
  const auto c = circular_xcorr(b, a);
  std::size_t best = 0;
  for (std::size_t i = 1; i < 64; ++i)
    if (std::abs(c[i]) > std::abs(c[best])) best = i;
  EXPECT_EQ(best, shift);
}

TEST(CircularXcorrTest, SizeMismatchThrows) {
  EXPECT_THROW(
      circular_xcorr(std::vector<cplx>(4), std::vector<cplx>(8)),
      std::invalid_argument);
}

}  // namespace
}  // namespace arraytrack::dsp
