// Fault-injection tier for the federation layer.
//
// The cluster must stay coherent when nodes die mid-run and when the
// links between tiers misbehave. Coherent means three auditable
// properties, each asserted here:
//
//   1. No fix is ever double-published, whatever the links replayed or
//      the membership did — the (client, frame_time) stream on the
//      front bus is strictly increasing per client.
//   2. Every record offered to the front tier lands in exactly one
//      terminal counter along the chain: unroutable, a link terminal
//      (delivered / dropped / bad-tag / replayed / lost-on-reset), or
//      a node ingest terminal (accepted / decode error / version
//      reject / duplicate / replay / ring drop).
//   3. Shard handoff converges: after a kill and restart, every client
//      is being fixed again and sessions lost are counted, never
//      silently resurrected.
//
// All fault injection is seeded, so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "phy/wire.h"
#include "service/service.h"
#include "service/stats.h"

namespace arraytrack::cluster {
namespace {

using geom::Vec2;
using service::LocationService;
using service::ServiceOptions;
using Record = LocationService::TimedWireRecord;

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

const std::vector<Vec2>& client_sites() {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  return sites;
}

/// 4 clients x `frames` transmits; one frame iteration emits a whole
/// 4 * num_aps record group, so any multiple of that group size is a
/// clean split point (no event torn across ingest batches).
std::vector<Record> wire_schedule(core::System& sys, int frames) {
  phy::WireFormat wire;
  std::vector<Record> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < 4; ++c) {
      const double t = 0.1 + 0.2 * i + 0.011 * c;
      sys.transmit(c, client_sites()[std::size_t(c)], t);
      for (std::size_t a = 0; a < sys.num_aps(); ++a)
        out.push_back({t, a, wire.encode(sys.ap(int(a)).buffer().newest())});
    }
  return out;
}

ClusterOptions cluster_options(std::size_t nodes) {
  ClusterOptions opt;
  opt.nodes = nodes;
  opt.service.workers = 2;
  opt.service.virtual_clock = true;
  opt.service.virtual_cost_s = 0.02;
  opt.service.latency_slo_s = 0.5;
  return opt;
}

/// Property 1: the published stream never repeats or rewinds a
/// client's frame time.
void expect_no_double_publish(const std::vector<delivery::Fix>& fixes) {
  std::map<int, double> last;
  for (const auto& f : fixes) {
    auto it = last.find(f.client_id);
    if (it != last.end())
      EXPECT_GT(f.frame_time_s, it->second)
          << "client " << f.client_id << " fix repeated or rewound";
    last[f.client_id] = f.frame_time_s;
  }
}

/// Property 2, link layer: exact when no corruption is injected (a
/// corrupted length field can evaporate a frame into resync bytes).
void expect_links_accounted(const LinkStats& st, std::size_t buffered,
                            bool exact) {
  const std::uint64_t entered = st.sent + st.fault_duplicated;
  const std::uint64_t terminal = st.delivered + st.auth_bad_tag +
                                 st.auth_replayed + st.fault_dropped +
                                 st.lost_on_reset;
  if (exact) {
    EXPECT_EQ(terminal, entered);
    EXPECT_EQ(buffered, 0u);
  } else {
    EXPECT_LE(terminal, entered);
  }
}

/// Property 2, node layer (the ingest_test invariant).
void expect_node_accounted(const service::ServiceStats& st) {
  EXPECT_EQ(st.wire_records_in.load(),
            st.wire_accepted.load() + st.decode_errors.load() +
                st.wire_version_rejected.load() + st.wire_duplicates.load() +
                st.wire_replays.load() + st.ring_dropped.load());
}

TEST(ClusterFaultTest, KillAndRestartMidRunConverges) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 9);
  const std::size_t third = records.size() / 3;  // frame-group aligned

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(3));
  cluster.ingest({records.begin(), records.begin() + std::ptrdiff_t(third)});
  cluster.flush();

  // Kill whichever node owns client 0 — guaranteed to hold sessions.
  const std::size_t victim = cluster.node_of(0);
  const std::uint64_t sent_before = cluster.link_stats(victim).sent;
  cluster.node_kill(victim);
  EXPECT_EQ(cluster.node_service(victim), nullptr);
  EXPECT_GE(cluster.stats().sessions_lost, 1u);
  // Every envelope the dead link carried is accounted, not vanished.
  EXPECT_EQ(cluster.link_stats(victim).delivered +
                cluster.link_stats(victim).lost_on_reset,
            sent_before);
  // Survivors own every shard now.
  for (int c = 0; c < 4; ++c) EXPECT_NE(cluster.node_of(c), victim);

  // Middle third: orphaned clients are re-heard by survivors and start
  // fresh sessions.
  cluster.ingest({records.begin() + std::ptrdiff_t(third),
                  records.begin() + std::ptrdiff_t(2 * third)});
  cluster.flush();

  cluster.node_restart(victim);
  EXPECT_NE(cluster.node_service(victim), nullptr);
  EXPECT_EQ(cluster.stats().node_restarts, 1u);

  cluster.ingest(
      {records.begin() + std::ptrdiff_t(2 * third), records.end()});
  ClusterReport rep = cluster.run({});

  expect_no_double_publish(rep.fixes);
  for (std::size_t n = 0; n < cluster.num_slots(); ++n)
    if (cluster.node_alive(n))
      expect_node_accounted(cluster.node_service(n)->stats());
  expect_links_accounted(rep.links, 0, true);

  // Convergence: in the final third every client is being fixed again.
  const double t_final = records[2 * third].time_s;
  std::set<int> final_clients;
  for (const auto& f : rep.fixes)
    if (f.frame_time_s >= t_final) final_clients.insert(f.client_id);
  EXPECT_EQ(final_clients.size(), 4u)
      << "a client never recovered after the restart";
}

TEST(ClusterFaultTest, KillWithRecordsInFlightCountsThemLost) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4);

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(2));
  cluster.ingest(records);  // buffered on the links, never pumped
  const std::size_t victim = cluster.node_of(0);
  cluster.node_kill(victim);
  EXPECT_GT(cluster.link_stats(victim).lost_on_reset, 0u);
  cluster.flush();

  // Chain balance: offered = unroutable + put on links; every link
  // envelope = delivered or lost with the dead pipe; every delivered
  // data record hit a node ingest terminal.
  const LinkStats links = cluster.total_link_stats();
  EXPECT_EQ(cluster.stats().records_in,
            cluster.stats().unroutable + links.sent);
  EXPECT_EQ(links.sent, links.delivered + links.lost_on_reset);
  std::uint64_t node_in = 0;
  for (std::size_t n = 0; n < cluster.num_slots(); ++n)
    if (cluster.node_alive(n)) {
      node_in += cluster.node_service(n)->stats().wire_records_in.load();
      expect_node_accounted(cluster.node_service(n)->stats());
    }
  EXPECT_EQ(node_in, links.delivered);  // no handoffs in this run
}

TEST(ClusterFaultTest, DropDuplicateReorderKeepEveryInvariant) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 8);

  auto opt = cluster_options(2);
  opt.faults.drop = 0.1;
  opt.faults.duplicate = 0.15;
  opt.faults.reorder = 0.1;
  opt.faults.seed = 7;

  auto run = [&] {
    Cluster cluster([&] { return make_system(&plan); }, opt);
    ClusterReport rep = cluster.run(records);
    expect_no_double_publish(rep.fixes);
    expect_links_accounted(rep.links, 0, true);
    std::uint64_t node_in = 0;
    for (std::size_t n = 0; n < cluster.num_slots(); ++n) {
      node_in += cluster.node_service(n)->stats().wire_records_in.load();
      expect_node_accounted(cluster.node_service(n)->stats());
    }
    // Duplicated and reordered envelopes die at the link's replay
    // check; what reaches a node is each surviving record once.
    EXPECT_EQ(node_in, rep.links.delivered);
    EXPECT_GT(rep.links.fault_dropped, 0u);
    EXPECT_GT(rep.links.auth_replayed, 0u);
    EXPECT_FALSE(rep.fixes.empty());
    return rep;
  };

  // Seeded faults: the whole run, fixes included, is reproducible.
  const ClusterReport a = run();
  const ClusterReport b = run();
  ASSERT_EQ(a.fixes.size(), b.fixes.size());
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    EXPECT_EQ(a.fixes[i].client_id, b.fixes[i].client_id);
    EXPECT_EQ(a.fixes[i].frame_time_s, b.fixes[i].frame_time_s);
    EXPECT_EQ(a.fixes[i].position.x, b.fixes[i].position.x);
    EXPECT_EQ(a.fixes[i].position.y, b.fixes[i].position.y);
  }
  EXPECT_EQ(a.links.fault_dropped, b.links.fault_dropped);
  EXPECT_EQ(a.links.auth_replayed, b.links.auth_replayed);
}

TEST(ClusterFaultTest, CorruptionAndTruncationDegradeGracefully) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 8);

  auto opt = cluster_options(2);
  opt.faults.corrupt = 0.08;
  opt.faults.truncate = 0.08;
  opt.faults.seed = 5;
  Cluster cluster([&] { return make_system(&plan); }, opt);
  ClusterReport rep = cluster.run(records);

  // Damaged frames are rejected by the tag check and the stream
  // resyncs — the surviving traffic still produces fixes and nothing
  // is double-published or misattributed.
  EXPECT_GT(rep.links.auth_bad_tag, 0u);
  EXPECT_FALSE(rep.fixes.empty());
  expect_no_double_publish(rep.fixes);
  expect_links_accounted(rep.links, 0, false);
  for (std::size_t n = 0; n < cluster.num_slots(); ++n)
    expect_node_accounted(cluster.node_service(n)->stats());
}

TEST(ClusterFaultTest, RestartHandsSurvivorSessionsBack) {
  // After a kill, survivors build sessions for the orphaned clients;
  // the restart must migrate those sessions to the rejoining node via
  // handoff (not leave them split across nodes).
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 6);
  const std::size_t half = records.size() / 2;

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(2));
  cluster.ingest({records.begin(), records.begin() + std::ptrdiff_t(half)});
  cluster.flush();
  const std::size_t victim = cluster.node_of(0);
  cluster.node_kill(victim);
  cluster.ingest({records.begin() + std::ptrdiff_t(half), records.end()});
  cluster.flush();
  EXPECT_EQ(cluster.stats().handoffs_sent, 0u);

  cluster.node_restart(victim);
  // Client 0's shard is the victim's again, and its session moved with
  // it.
  EXPECT_EQ(cluster.node_of(0), victim);
  EXPECT_GT(cluster.stats().handoffs_sent, 0u);
  EXPECT_EQ(cluster.stats().handoffs_applied, cluster.stats().handoffs_sent);
  const auto clients = cluster.node_service(victim)->session_clients();
  EXPECT_TRUE(std::find(clients.begin(), clients.end(), 0) != clients.end());
}

}  // namespace
}  // namespace arraytrack::cluster
