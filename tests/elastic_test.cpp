// Elastic worker-pool tests.
//
// The autoscaler's contract has two halves. Determinism: under the
// virtual clock, resize decisions are a pure function of the admitted
// schedule — the same records produce the same resize log on every
// run, and the fix set is byte-identical to a fixed-width run (width
// never changes which jobs are admitted or what the pipeline computes,
// only when modeled workers pick them up). Behavior: the pool grows on
// sustained queue depth, shrinks when idle, steps by one with
// hysteresis, and never leaves [min_workers, max_workers]. The wall
// mode exercises real thread spawn/retirement (also under the TSan
// tier of tools/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "phy/wire.h"
#include "service/service.h"
#include "service/stats.h"

namespace arraytrack::service {
namespace {

using geom::Vec2;
using Record = LocationService::TimedWireRecord;

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

const std::vector<Vec2>& client_sites() {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  return sites;
}

std::vector<Record> encode_event(core::System& sys,
                                 const phy::WireFormat& wire, double t,
                                 int client, Vec2 pos) {
  sys.transmit(client, pos, t);
  std::vector<Record> out;
  for (std::size_t a = 0; a < sys.num_aps(); ++a)
    out.push_back({t, a, wire.encode(sys.ap(int(a)).buffer().newest())});
  return out;
}

/// A burst that outruns one modeled worker (4 clients every 50 ms at a
/// 150 ms job cost), followed by a sparse single-client trickle whose
/// commits keep the virtual clock moving while the queue sits empty —
/// the shape that must first grow the pool, then shrink it back.
std::vector<Record> burst_then_trickle(core::System& sys) {
  phy::WireFormat wire;
  std::vector<Record> out;
  for (int i = 0; i < 16; ++i)
    for (int c = 0; c < 4; ++c)
      for (auto& r : encode_event(sys, wire, 0.1 + 0.05 * i + 0.011 * c, c,
                                  client_sites()[std::size_t(c)]))
        out.push_back(std::move(r));
  for (int i = 0; i < 20; ++i)
    for (auto& r :
         encode_event(sys, wire, 2.0 + 0.3 * i, 0, client_sites()[0]))
      out.push_back(std::move(r));
  return out;
}

ServiceOptions elastic_options() {
  ServiceOptions opt;
  opt.workers = 1;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.15;
  opt.latency_slo_s = 10.0;  // keep shedding out of the picture
  // One shard: the autoscaler's depth signal is per-shard backlog, so
  // funnel every client through one queue to let pressure build.
  opt.shards = 1;
  opt.elastic.enabled = true;
  opt.elastic.min_workers = 1;
  opt.elastic.max_workers = 4;
  opt.elastic.eval_period_s = 0.25;
  opt.elastic.grow_depth = 1.5;
  opt.elastic.shrink_depth = 1.05;
  opt.elastic.hysteresis = 2;
  return opt;
}

void expect_identical_fixes(const ServiceReport& a, const ServiceReport& b) {
  ASSERT_EQ(a.fixes.size(), b.fixes.size());
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    EXPECT_EQ(a.fixes[i].client_id, b.fixes[i].client_id);
    EXPECT_EQ(a.fixes[i].seq, b.fixes[i].seq);
    EXPECT_EQ(a.fixes[i].frame_time_s, b.fixes[i].frame_time_s);
    EXPECT_EQ(a.fixes[i].position.x, b.fixes[i].position.x);
    EXPECT_EQ(a.fixes[i].position.y, b.fixes[i].position.y);
    EXPECT_EQ(a.fixes[i].smoothed.x, b.fixes[i].smoothed.x);
    EXPECT_EQ(a.fixes[i].smoothed.y, b.fixes[i].smoothed.y);
    EXPECT_EQ(a.fixes[i].likelihood, b.fixes[i].likelihood);
  }
}

TEST(ElasticTest, GrowsUnderSustainedDepthAndShrinksWhenIdle) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = burst_then_trickle(*capture);

  auto sys = make_system(&plan);
  LocationService svc(sys.get(), elastic_options());
  svc.run_wire(records);
  const auto log = svc.elastic_log();

  ASSERT_FALSE(log.empty());
  bool grew = false, shrank = false;
  double last_t = -1.0;
  std::size_t width = 1;
  for (const auto& ev : log) {
    EXPECT_GT(ev.time_s, last_t);  // evals are strictly ordered
    last_t = ev.time_s;
    EXPECT_EQ(ev.from, width);  // the log is a connected trajectory
    // Resizes step by one and stay clamped.
    EXPECT_EQ(std::max(ev.from, ev.to) - std::min(ev.from, ev.to), 1u);
    EXPECT_GE(ev.to, 1u);
    EXPECT_LE(ev.to, 4u);
    grew |= ev.to > ev.from;
    shrank |= ev.to < ev.from;
    width = ev.to;
  }
  EXPECT_TRUE(grew) << "burst never grew the pool";
  EXPECT_TRUE(shrank) << "trickle never shrank the pool";
  EXPECT_EQ(svc.stats().elastic_grow.load() - svc.stats().elastic_shrink.load(),
            width - 1);
  // The trickle tail ends idle: the pool must be back at the minimum.
  EXPECT_EQ(width, 1u);
}

TEST(ElasticTest, ResizeScheduleIsPinnedUnderTheVirtualClock) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = burst_then_trickle(*capture);

  std::vector<std::vector<LocationService::ResizeEvent>> logs;
  for (int run = 0; run < 2; ++run) {
    auto sys = make_system(&plan);
    LocationService svc(sys.get(), elastic_options());
    svc.run_wire(records);
    logs.push_back(svc.elastic_log());
  }
  ASSERT_EQ(logs[0].size(), logs[1].size());
  ASSERT_FALSE(logs[0].empty());
  for (std::size_t i = 0; i < logs[0].size(); ++i) {
    // Bit-equal times: evals fire at deterministic period boundaries,
    // not at thread-dependent instants.
    EXPECT_EQ(logs[0][i].time_s, logs[1][i].time_s);
    EXPECT_EQ(logs[0][i].from, logs[1][i].from);
    EXPECT_EQ(logs[0][i].to, logs[1][i].to);
    // Every eval point is a multiple of the eval period.
    const double k = logs[0][i].time_s / 0.25;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
}

TEST(ElasticTest, FixesAreByteIdenticalElasticityOnVsOff) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = burst_then_trickle(*capture);

  auto sys_e = make_system(&plan);
  LocationService elastic(sys_e.get(), elastic_options());
  const auto rep_elastic = elastic.run_wire(records);
  ASSERT_FALSE(elastic.elastic_log().empty());  // it really did resize

  for (std::size_t fixed_width : {1u, 4u}) {
    auto sys_f = make_system(&plan);
    auto opt = elastic_options();
    opt.elastic.enabled = false;
    opt.workers = fixed_width;
    LocationService fixed(sys_f.get(), opt);
    const auto rep_fixed = fixed.run_wire(records);
    expect_identical_fixes(rep_elastic, rep_fixed);
  }
}

TEST(ElasticTest, WidthIsClampedToMaxUnderOverload) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = burst_then_trickle(*capture);

  auto sys = make_system(&plan);
  auto opt = elastic_options();
  opt.elastic.max_workers = 2;
  LocationService svc(sys.get(), opt);
  svc.run_wire(records);
  ASSERT_FALSE(svc.elastic_log().empty());
  for (const auto& ev : svc.elastic_log()) EXPECT_LE(ev.to, 2u);
  EXPECT_LE(svc.worker_width(), 2u);
  EXPECT_LE(svc.stats().workers_now.load(), 2u);
}

TEST(ElasticTest, DisabledElasticityNeverResizes) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = burst_then_trickle(*capture);

  auto sys = make_system(&plan);
  auto opt = elastic_options();
  opt.elastic.enabled = false;
  opt.workers = 2;
  LocationService svc(sys.get(), opt);
  svc.run_wire(records);
  EXPECT_TRUE(svc.elastic_log().empty());
  EXPECT_EQ(svc.worker_width(), 2u);
  EXPECT_EQ(svc.stats().elastic_grow.load(), 0u);
  EXPECT_EQ(svc.stats().elastic_shrink.load(), 0u);
}

TEST(ElasticTest, WallModeSpawnsAndRetiresRealWorkers) {
  // Wall clock: resizes spawn and retire actual threads. Behavior is
  // timing-dependent, so the assertions are structural — clamped
  // width, a connected resize trajectory, clean shutdown — not a
  // pinned schedule. Under the TSan tier this doubles as a race test
  // on the spawn/retire paths.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  phy::WireFormat wire;
  std::vector<Record> records;
  for (int i = 0; i < 12; ++i)
    for (int c = 0; c < 4; ++c)
      for (auto& r : encode_event(*capture, wire, 0.1 + 0.05 * i + 0.011 * c,
                                  c, client_sites()[std::size_t(c)]))
        records.push_back(std::move(r));

  auto sys = make_system(&plan);
  ServiceOptions opt;
  opt.workers = 1;
  opt.virtual_clock = false;
  opt.latency_slo_s = 10.0;
  opt.shards = 1;
  opt.elastic.enabled = true;
  opt.elastic.min_workers = 1;
  opt.elastic.max_workers = 3;
  opt.elastic.eval_period_s = 0.01;  // wall seconds; keep the test quick
  opt.elastic.grow_depth = 1.0;
  opt.elastic.hysteresis = 1;
  LocationService svc(sys.get(), opt);
  svc.start();
  svc.ingest_wire(records);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();
  const auto log = svc.elastic_log();
  svc.stop();

  EXPECT_FALSE(fixes.empty());
  std::size_t width = 1;
  for (const auto& ev : log) {
    EXPECT_EQ(ev.from, width);
    EXPECT_GE(ev.to, 1u);
    EXPECT_LE(ev.to, 3u);
    width = ev.to;
  }
  EXPECT_GE(svc.worker_width(), 1u);
  EXPECT_LE(svc.worker_width(), 3u);
}

}  // namespace
}  // namespace arraytrack::service
