// Tests for the persistent worker pool and, more importantly, for the
// contract it must keep: routing the server's hot paths through the
// pool must not change a single output bit, whatever the pool width.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/arraytrack.h"
#include "core/thread_pool.h"

namespace arraytrack::core {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(0, hits.size(), 0,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RangesCoverExactlyOnce) {
  ThreadPool pool(2);
  for (std::size_t n : {1u, 2u, 7u, 64u, 97u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_ranges(n, 0, [&](std::size_t lo, std::size_t hi) {
      ASSERT_LT(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, MaxParallelOneIsServedInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 16, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelismDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, 0, [&](std::size_t) {
    pool.parallel_for(0, 8, 0, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8, 0,
                                 [&](std::size_t i) {
                                   if (i == 5)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 4, 0, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPoolTest, SharedPoolIsPersistent) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

// --- Pool-width invariance of the server outputs ------------------------

struct Rig {
  explicit Rig(std::size_t threads) : plan(make_plan()) {
    SystemConfig cfg;
    cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
    cfg.server.localizer.threads = threads;
    sys = std::make_unique<System>(&plan, cfg);
    sys->add_ap({1, 1}, deg2rad(45.0));
    sys->add_ap({17, 1}, deg2rad(135.0));
    sys->add_ap({9, 9.5}, deg2rad(-90.0));
    for (std::size_t f = 0; f < 3; ++f)
      sys->transmit(0, {12.0, 6.0}, double(f) * 0.03);
  }
  static geom::Floorplan make_plan() {
    geom::Floorplan plan({{0, 0}, {18, 10}});
    plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
    plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
    plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
    plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
    return plan;
  }
  geom::Floorplan plan;
  std::unique_ptr<System> sys;
};

TEST(PoolDeterminismTest, ClientSpectraIdenticalAcrossPoolWidths) {
  Rig serial(1);
  const auto want = serial.sys->server().client_spectra(0, 0.1);
  ASSERT_EQ(want.size(), 3u);

  for (std::size_t threads : {std::size_t(2), std::size_t(0)}) {
    Rig rig(threads);
    const auto got = rig.sys->server().client_spectra(0, 0.1);
    ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k].ap_position.x, want[k].ap_position.x);
      EXPECT_EQ(got[k].ap_position.y, want[k].ap_position.y);
      EXPECT_EQ(got[k].orientation_rad, want[k].orientation_rad);
      ASSERT_EQ(got[k].spectrum.bins(), want[k].spectrum.bins());
      for (std::size_t i = 0; i < want[k].spectrum.bins(); ++i)
        ASSERT_EQ(got[k].spectrum[i], want[k].spectrum[i])
            << "threads=" << threads << " ap=" << k << " bin=" << i;
    }
  }
}

TEST(PoolDeterminismTest, HeatmapAndLocateIdenticalAcrossPoolWidths) {
  Rig serial(1);
  const auto want_map = serial.sys->heatmap(0, 0.1);
  const auto want_fix = serial.sys->locate(0, 0.1);
  ASSERT_TRUE(want_map.has_value());
  ASSERT_TRUE(want_fix.has_value());

  for (std::size_t threads : {std::size_t(2), std::size_t(0)}) {
    Rig rig(threads);
    const auto map = rig.sys->heatmap(0, 0.1);
    ASSERT_TRUE(map.has_value()) << "threads=" << threads;
    ASSERT_EQ(map->cells.size(), want_map->cells.size());
    for (std::size_t i = 0; i < map->cells.size(); ++i)
      ASSERT_EQ(map->cells[i], want_map->cells[i])
          << "threads=" << threads << " cell=" << i;

    const auto fix = rig.sys->locate(0, 0.1);
    ASSERT_TRUE(fix.has_value()) << "threads=" << threads;
    EXPECT_EQ(fix->position.x, want_fix->position.x);
    EXPECT_EQ(fix->position.y, want_fix->position.y);
    EXPECT_EQ(fix->likelihood, want_fix->likelihood);
  }
}

}  // namespace
}  // namespace arraytrack::core
