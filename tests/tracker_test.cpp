// Tests for the constant-velocity Kalman location tracker.
#include <gtest/gtest.h>

#include <random>

#include "core/tracker.h"

namespace arraytrack::core {
namespace {

TEST(TrackerTest, FirstFixInitializes) {
  LocationTracker t;
  EXPECT_FALSE(t.initialized());
  const auto p = t.update({3.0, 4.0}, 0.0);
  EXPECT_TRUE(t.initialized());
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
  EXPECT_DOUBLE_EQ(t.velocity().norm(), 0.0);
}

TEST(TrackerTest, LearnsConstantVelocity) {
  LocationTracker t;
  for (int k = 0; k <= 30; ++k)
    t.update({0.1 * k, 0.05 * k}, 0.1 * k);  // 1 m/s x, 0.5 m/s y
  EXPECT_NEAR(t.velocity().x, 1.0, 0.1);
  EXPECT_NEAR(t.velocity().y, 0.5, 0.1);
  // Prediction extrapolates along the velocity.
  const auto p = t.predict(3.0 + 0.5);
  EXPECT_NEAR(p.x, 3.5, 0.15);
  EXPECT_NEAR(p.y, 1.75, 0.1);
}

TEST(TrackerTest, SmoothsNoisyFixes) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> g(0.0, 0.4);
  LocationTracker t;
  double raw_err = 0.0, filt_err = 0.0;
  int n = 0;
  for (int k = 0; k <= 200; ++k) {
    const double time = 0.1 * k;
    const geom::Vec2 truth{1.0 * time, 2.0};
    const geom::Vec2 fix{truth.x + g(rng), truth.y + g(rng)};
    const auto est = t.update(fix, time);
    if (k > 20) {  // after convergence
      raw_err += geom::distance(fix, truth);
      filt_err += geom::distance(est, truth);
      ++n;
    }
  }
  EXPECT_LT(filt_err / n, 0.6 * (raw_err / n));
}

TEST(TrackerTest, RejectsOutliers) {
  LocationTracker t;
  for (int k = 0; k <= 20; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  // A 10 m ghost fix must be gated out.
  const auto est = t.update({12.0, 10.0}, 2.2);
  EXPECT_TRUE(t.last_rejected());
  EXPECT_LT(geom::distance(est, {2.2, 0.0}), 0.5);
  // And a sane fix afterwards is accepted again.
  t.update({2.3, 0.0}, 2.3);
  EXPECT_FALSE(t.last_rejected());
}

TEST(TrackerTest, ReinitializesAfterLongGap) {
  LocationTracker t;
  for (int k = 0; k <= 10; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  // 10 s silence, then the user reappears across the building: the
  // stale track must not gate the new fix out.
  const auto est = t.update({25.0, 9.0}, 11.0);
  EXPECT_FALSE(t.last_rejected());
  EXPECT_DOUBLE_EQ(est.x, 25.0);
  EXPECT_DOUBLE_EQ(est.y, 9.0);
}

TEST(TrackerTest, ResetClearsState) {
  LocationTracker t;
  t.update({1, 1}, 0.0);
  t.reset();
  EXPECT_FALSE(t.initialized());
  const auto p = t.update({5, 5}, 10.0);
  EXPECT_DOUBLE_EQ(p.x, 5.0);
}

TEST(TrackerTest, CovarianceStaysBoundedOnStraightTrack) {
  LocationTracker t;
  for (int k = 0; k <= 500; ++k) {
    const auto est = t.update({0.05 * k, 1.0}, 0.05 * k);
    EXPECT_TRUE(std::isfinite(est.x));
    EXPECT_TRUE(std::isfinite(est.y));
  }
  EXPECT_NEAR(t.position().y, 1.0, 0.1);
}

TEST(TrackerTest, OutOfOrderTimestampReinitializes) {
  // The service layer can replay a coalesced-then-restored client or a
  // clock-skewed AP; a fix stamped BEFORE the last update must not run
  // the filter with a negative dt (which would corrupt the covariance).
  LocationTracker t;
  for (int k = 0; k <= 20; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  EXPECT_NEAR(t.velocity().x, 1.0, 0.2);
  const auto est = t.update({7.0, 7.0}, 1.0);  // 1 s into the past
  EXPECT_FALSE(t.last_rejected());
  // Reinit: the fix is taken verbatim and the velocity forgotten.
  EXPECT_DOUBLE_EQ(est.x, 7.0);
  EXPECT_DOUBLE_EQ(est.y, 7.0);
  EXPECT_DOUBLE_EQ(t.velocity().norm(), 0.0);
  EXPECT_DOUBLE_EQ(t.last_update_s(), 1.0);
  // And the track keeps working from the new epoch.
  const auto next = t.update({7.1, 7.0}, 1.1);
  EXPECT_TRUE(std::isfinite(next.x));
  EXPECT_FALSE(t.last_rejected());
}

TEST(TrackerTest, EqualTimestampDoesNotReinitialize) {
  // dt == 0 is a legal repeat fix (two APs decoding the same frame);
  // it must refine, not reset, the track.
  LocationTracker t;
  for (int k = 0; k <= 20; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  const auto v_before = t.velocity();
  t.update({2.0, 0.0}, 2.0);  // same time as the last update
  EXPECT_FALSE(t.last_rejected());
  EXPECT_GT(t.velocity().x, 0.5 * v_before.x);  // velocity survives
}

TEST(TrackerTest, MaxCoastBoundaryIsExclusive) {
  TrackerOptions opt;
  opt.max_coast_s = 2.0;
  LocationTracker t(opt);
  for (int k = 0; k <= 20; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  // Gap of exactly max_coast_s: still the same track, so a fix on the
  // extrapolated path is accepted and the velocity kept.
  t.update({4.0, 0.0}, 4.0);
  EXPECT_FALSE(t.last_rejected());
  EXPECT_GT(t.velocity().x, 0.3);
  // A hair past the window: reinitialize, even on a wild position.
  t.update({-50.0, 30.0}, 4.0 + opt.max_coast_s + 1e-6);
  EXPECT_FALSE(t.last_rejected());
  EXPECT_DOUBLE_EQ(t.position().x, -50.0);
  EXPECT_DOUBLE_EQ(t.velocity().norm(), 0.0);
}

TEST(TrackerTest, PredictBeforeAndAfterCoasting) {
  LocationTracker t;
  for (int k = 0; k <= 30; ++k) t.update({0.1 * k, 0.05 * k}, 0.1 * k);
  // Forward extrapolation follows the learned velocity...
  const auto ahead = t.predict(3.0 + 1.0);
  EXPECT_NEAR(ahead.x, 4.0, 0.3);
  EXPECT_NEAR(ahead.y, 2.0, 0.2);
  // ...predict() at the current time is just the filtered position...
  const auto now = t.predict(3.0);
  EXPECT_NEAR(now.x, t.position().x, 1e-12);
  EXPECT_NEAR(now.y, t.position().y, 1e-12);
  // ...and backward extrapolation runs the velocity in reverse.
  const auto behind = t.predict(3.0 - 1.0);
  EXPECT_NEAR(behind.x, 2.0, 0.3);
  // After a reinit (long gap) the velocity is zero, so predict()
  // holds the last fix regardless of horizon.
  t.update({9.0, 9.0}, 100.0);
  const auto held = t.predict(105.0);
  EXPECT_DOUBLE_EQ(held.x, 9.0);
  EXPECT_DOUBLE_EQ(held.y, 9.0);
}

TEST(TrackerTest, CoastingDuringRejectionsThenRecovery) {
  // Several consecutive ghost fixes: each is gated, the track coasts on
  // the prediction, and a sane fix within max_coast_s re-locks.
  LocationTracker t;
  for (int k = 0; k <= 20; ++k) t.update({0.1 * k, 0.0}, 0.1 * k);
  for (int j = 1; j <= 3; ++j) {
    const auto est = t.update({15.0, -12.0}, 2.0 + 0.1 * j);
    EXPECT_TRUE(t.last_rejected());
    EXPECT_NEAR(est.x, 2.0 + 0.1 * j, 0.4);  // coasting along +x
    EXPECT_NEAR(est.y, 0.0, 0.3);
  }
  t.update({2.4, 0.0}, 2.4);
  EXPECT_FALSE(t.last_rejected());
  EXPECT_NEAR(t.position().x, 2.4, 0.3);
}

}  // namespace
}  // namespace arraytrack::core
