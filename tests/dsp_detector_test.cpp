// Tests for packet detection: Schmidl-Cox and matched filtering.
#include <gtest/gtest.h>

#include <random>

#include "dsp/detector.h"
#include "dsp/noise.h"
#include "dsp/preamble.h"

namespace arraytrack::dsp {
namespace {

// A stream with noise, then the preamble at `offset`, then more noise.
std::vector<cplx> stream_with_preamble(const PreambleGenerator& gen,
                                       std::size_t offset, double snr_db,
                                       std::size_t tail, std::uint64_t seed) {
  AwgnSource noise(seed);
  const double noise_power = db_to_linear(-snr_db);  // signal power is 1
  std::vector<cplx> s =
      noise.generate(offset + gen.preamble().size() + tail, noise_power);
  for (std::size_t i = 0; i < gen.preamble().size(); ++i)
    s[offset + i] += gen.preamble()[i];
  return s;
}

TEST(SchmidlCoxTest, RejectsZeroPeriod) {
  EXPECT_THROW(SchmidlCoxDetector(0), std::invalid_argument);
}

TEST(SchmidlCoxTest, MetricNearOneInsidePreamble) {
  PreambleGenerator gen(2);
  SchmidlCoxDetector det(gen.sts_period());
  const auto m = det.metric(gen.short_section());
  // Inside the repeated short symbols, the autocorrelation metric is ~1.
  EXPECT_GT(m[0], 0.99);
  EXPECT_GT(m[m.size() / 2], 0.99);
}

TEST(SchmidlCoxTest, DetectsCleanPreamble) {
  PreambleGenerator gen(2);
  const auto s = stream_with_preamble(gen, 500, 30.0, 500, 11);
  SchmidlCoxDetector det(gen.sts_period());
  const auto d = det.detect(s);
  ASSERT_TRUE(d.has_value());
  // Plateau starts at/near the preamble (within one STS period).
  EXPECT_NEAR(double(d->start_index), 500.0, double(gen.sts_period()));
}

TEST(SchmidlCoxTest, NoDetectionOnPureNoise) {
  AwgnSource noise(5);
  const auto s = noise.generate(4000, 1.0);
  PreambleGenerator gen(2);
  SchmidlCoxDetector det(gen.sts_period(), /*threshold=*/0.8);
  EXPECT_FALSE(det.detect(s).has_value());
}

TEST(MatchedFilterTest, RejectsEmptyReference) {
  EXPECT_THROW(MatchedFilterDetector({}), std::invalid_argument);
}

TEST(MatchedFilterTest, PerfectAlignmentScoresNearOne) {
  PreambleGenerator gen(2);
  MatchedFilterDetector det(gen.short_section());
  const auto c = det.correlation(gen.short_section());
  EXPECT_NEAR(c[0], 1.0, 1e-9);
}

class MatchedFilterSnrTest : public ::testing::TestWithParam<double> {};

TEST_P(MatchedFilterSnrTest, DetectsAtSnr) {
  // The paper (4.3.4): using all ten short training symbols, packets
  // are detectable down to about -10 dB SNR.
  const double snr_db = GetParam();
  PreambleGenerator gen(2);
  MatchedFilterDetector det(gen.short_section(), /*threshold=*/0.15);
  int hits = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto s =
        stream_with_preamble(gen, 700, snr_db, 700, 100 + std::uint64_t(t));
    const auto d = det.detect(s);
    if (d && std::llabs(int64_t(d->start_index) - 700) <= 2) ++hits;
  }
  EXPECT_GE(hits, 8) << "snr=" << snr_db << " dB";
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, MatchedFilterSnrTest,
                         ::testing::Values(20.0, 10.0, 0.0, -5.0, -10.0));

TEST(MatchedFilterTest, FalsePositiveRateLowOnNoise) {
  PreambleGenerator gen(2);
  MatchedFilterDetector det(gen.short_section(), 0.35);
  AwgnSource noise(17);
  int fp = 0;
  for (int t = 0; t < 5; ++t) {
    const auto s = noise.generate(4000, 1.0);
    if (det.detect(s)) ++fp;
  }
  EXPECT_EQ(fp, 0);
}

TEST(MatchedFilterTest, DetectAllFindsStaggeredPreambles) {
  // Two preambles (a "collision" whose preambles do not overlap).
  PreambleGenerator gen(2);
  const std::size_t plen = gen.preamble().size();
  AwgnSource noise(23);
  auto s = noise.generate(2 * plen + 3000, db_to_linear(-25.0));
  const std::size_t o1 = 300;
  const std::size_t o2 = o1 + plen + 400;
  for (std::size_t i = 0; i < plen; ++i) {
    s[o1 + i] += gen.preamble()[i];
    s[o2 + i] += gen.preamble()[i] * cplx{0.8, 0.3};  // different channel
  }
  MatchedFilterDetector det(gen.short_section(), 0.3);
  const auto all = det.detect_all(s, plen / 2);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NEAR(double(all[0].start_index), double(o1), 2.0);
  EXPECT_NEAR(double(all[1].start_index), double(o2), 2.0);
}

TEST(MatchedFilterTest, DetectFromOffsetSkipsEarlier) {
  PreambleGenerator gen(2);
  const auto s = stream_with_preamble(gen, 400, 25.0, 2000, 31);
  MatchedFilterDetector det(gen.short_section(), 0.3);
  const auto d = det.detect(s, /*from=*/900);
  EXPECT_FALSE(d.has_value());  // only one preamble, and it is before 900
}

}  // namespace
}  // namespace arraytrack::dsp
