// Adversarial tests for per-record authentication on inter-node links.
//
// Three layers: (a) known-answer vectors pin the self-contained
// SHA-256 / HMAC-SHA256 to FIPS 180-4 and RFC 4231 — a subtly wrong
// compression function would still "round-trip" its own tags, so only
// external vectors catch it; (b) targeted attacks — bit flips,
// truncation, replay, wrong key — must each land in their dedicated
// rejection counter with nothing delivered; (c) a seeded fuzz sweep
// drives random fault mixes and asserts the link accounting invariant:
// every envelope offered to send() ends in exactly one terminal
// counter. All randomness is splitmix64-seeded, so a failing seed
// reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/auth.h"
#include "cluster/link.h"

namespace arraytrack::cluster {
namespace {

std::string hex(const Digest& d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : d) {
    out += k[b >> 4];
    out += k[b & 0xf];
  }
  return out;
}

Digest sha256_str(const std::string& s) {
  return sha256(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

Digest hmac_str(const std::vector<std::uint8_t>& key, const std::string& s) {
  return hmac_sha256(key, reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size());
}

TEST(AuthTest, Sha256KnownAnswers) {
  // FIPS 180-4 / NIST CAVP vectors.
  EXPECT_EQ(hex(sha256_str("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256_str("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // 56 bytes: exercises the two-block padding path.
  EXPECT_EQ(hex(sha256_str(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Exactly one block of input (64 bytes).
  EXPECT_EQ(hex(sha256_str(std::string(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(AuthTest, HmacSha256Rfc4231Vectors) {
  {  // Test case 1
    std::vector<std::uint8_t> key(20, 0x0b);
    EXPECT_EQ(
        hex(hmac_str(key, "Hi There")),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  }
  {  // Test case 2: key shorter than the hash output
    std::vector<std::uint8_t> key = {'J', 'e', 'f', 'e'};
    EXPECT_EQ(
        hex(hmac_str(key, "what do ya want for nothing?")),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  }
  {  // Test case 3: 50 bytes of 0xdd under a 20-byte key
    std::vector<std::uint8_t> key(20, 0xaa);
    std::string data(50, char(0xdd));
    EXPECT_EQ(
        hex(hmac_str(key, data)),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
  }
  {  // Test case 6: key longer than the block size (pre-hashed path)
    std::vector<std::uint8_t> key(131, 0xaa);
    EXPECT_EQ(
        hex(hmac_str(key,
                     "Test Using Larger Than Block-Size Key - Hash Key First")),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
  }
}

TEST(AuthTest, DigestEqualDiscriminates) {
  Digest a = sha256_str("abc");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 0x01;
  EXPECT_FALSE(digest_equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

// ---- link-level attacks ----

std::vector<std::uint8_t> test_key() {
  return {'t', 'e', 's', 't', '-', 'k', 'e', 'y'};
}

Envelope make_env(std::uint32_t i) {
  Envelope env;
  env.type = (i % 3 == 0) ? EnvelopeType::kHandoff : EnvelopeType::kData;
  env.time_s = 0.25 * double(i);
  env.ap_index = i % 5;
  env.payload.assign(17 + (i % 64), std::uint8_t(i));
  return env;
}

/// Every envelope offered to send() lands in exactly one terminal
/// counter once the pipe has been fully drained and reset. Holds with
/// equality for any plan without corruption (a corrupted length field
/// can evaporate a frame into resync bytes, which only weakens it to
/// <=).
void expect_link_accounted(const LinkStats& st, bool exact) {
  const std::uint64_t entered = st.sent + st.fault_duplicated;
  const std::uint64_t terminal = st.delivered + st.auth_bad_tag +
                                 st.auth_replayed + st.fault_dropped +
                                 st.lost_on_reset;
  if (exact)
    EXPECT_EQ(terminal, entered);
  else
    EXPECT_LE(terminal, entered);
}

TEST(AuthTest, CleanLinkRoundTripsEnvelopesExactly) {
  Link link(test_key());
  for (std::uint32_t i = 0; i < 8; ++i) link.send(make_env(i));
  const auto got = link.receive();
  ASSERT_EQ(got.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Envelope want = make_env(i);
    EXPECT_EQ(got[i].type, want.type);
    EXPECT_EQ(got[i].time_s, want.time_s);
    EXPECT_EQ(got[i].ap_index, want.ap_index);
    EXPECT_EQ(got[i].payload, want.payload);
  }
  EXPECT_EQ(link.stats().delivered, 8u);
  EXPECT_EQ(link.stats().auth_bad_tag, 0u);
  EXPECT_EQ(link.buffered_bytes(), 0u);
  expect_link_accounted(link.stats(), true);
}

TEST(AuthTest, BitFlippedRecordsAreRejectedNotDelivered) {
  FaultPlan plan;
  plan.corrupt = 1.0;  // every frame gets one flipped bit past the magic
  plan.seed = 11;
  Link link(test_key(), plan);
  for (std::uint32_t i = 0; i < 32; ++i) link.send(make_env(i));
  const auto got = link.receive();
  // A single flipped bit anywhere in the signed region must fail the
  // tag (or, if it hits the length field's high bits, resync) — never
  // deliver.
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(link.stats().delivered, 0u);
  EXPECT_EQ(link.stats().fault_corrupted, 32u);
  EXPECT_GT(link.stats().auth_bad_tag, 0u);
  expect_link_accounted(link.stats(), false);
}

TEST(AuthTest, TruncatedRecordsFailAuthAndStreamResyncs) {
  FaultPlan plan;
  plan.truncate = 1.0;  // chop 1..32 tail bytes from every frame
  plan.seed = 13;
  Link link(test_key(), plan);
  for (std::uint32_t i = 0; i < 16; ++i) link.send(make_env(i));
  const auto got = link.receive();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(link.stats().fault_truncated, 16u);
  // Mid-stream truncations fail the tag and force a rescan; the final
  // frame's stub can only stall as an incomplete tail.
  EXPECT_GE(link.stats().auth_bad_tag, 15u);
  EXPECT_GT(link.stats().resync_bytes, 0u);
  link.reset();  // the stalled stub is lost with the pipe
  expect_link_accounted(link.stats(), true);
}

TEST(AuthTest, DuplicatedRecordsAreRejectedAsReplays) {
  FaultPlan plan;
  plan.duplicate = 1.0;
  plan.seed = 17;
  Link link(test_key(), plan);
  for (std::uint32_t i = 0; i < 12; ++i) link.send(make_env(i));
  const auto got = link.receive();
  // First copy of each accepted, second rejected by the monotone
  // envelope sequence.
  EXPECT_EQ(got.size(), 12u);
  EXPECT_EQ(link.stats().fault_duplicated, 12u);
  EXPECT_EQ(link.stats().auth_replayed, 12u);
  expect_link_accounted(link.stats(), true);
}

TEST(AuthTest, ReorderedRecordsAreRejectedNeverDoubleDelivered) {
  FaultPlan plan;
  plan.reorder = 0.5;
  plan.seed = 19;
  Link link(test_key(), plan);
  for (std::uint32_t i = 0; i < 40; ++i) link.send(make_env(i));
  const auto got = link.receive();
  EXPECT_GT(link.stats().fault_reordered, 0u);
  // An out-of-order frame arrives behind a newer sequence and is
  // rejected as a replay; nothing is lost from the pipe, nothing is
  // delivered twice.
  EXPECT_EQ(got.size() + link.stats().auth_replayed, 40u);
  // Each held frame surfaces behind a newer one => replay; the only
  // exception is a frame held at the very end, which receive() flushes
  // still in order.
  EXPECT_LE(link.stats().auth_replayed, link.stats().fault_reordered);
  EXPECT_GE(link.stats().auth_replayed + 1, link.stats().fault_reordered);
  expect_link_accounted(link.stats(), true);
}

TEST(AuthTest, WrongKeyRejectsEverything) {
  auto other = test_key();
  other[0] ^= 0x01;  // one key bit apart — still everything rejected
  Link link(test_key(), other, {});
  for (std::uint32_t i = 0; i < 8; ++i) link.send(make_env(i));
  const auto got = link.receive();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(link.stats().delivered, 0u);
  EXPECT_EQ(link.stats().auth_bad_tag, 8u);
}

TEST(AuthTest, ResetCountsInFlightEnvelopesAsLost) {
  Link link(test_key());
  for (std::uint32_t i = 0; i < 5; ++i) link.send(make_env(i));
  link.reset();  // node killed before the receiver drained
  EXPECT_EQ(link.stats().lost_on_reset, 5u);
  EXPECT_EQ(link.stats().delivered, 0u);
  EXPECT_EQ(link.buffered_bytes(), 0u);
  expect_link_accounted(link.stats(), true);
  // The link is rearmed at sequence zero: a restarted peer's first
  // frame must be accepted, not rejected as a replay.
  link.send(make_env(0));
  EXPECT_EQ(link.receive().size(), 1u);
  EXPECT_EQ(link.stats().auth_replayed, 0u);
}

TEST(AuthTest, FaultInjectionIsSeedReproducible) {
  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.reorder = 0.2;
  plan.truncate = 0.1;
  plan.seed = 23;
  auto run = [&] {
    Link link(test_key(), plan);
    for (std::uint32_t i = 0; i < 64; ++i) link.send(make_env(i));
    link.receive();
    link.reset();
    return link.stats();
  };
  const LinkStats a = run();
  const LinkStats b = run();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.fault_dropped, b.fault_dropped);
  EXPECT_EQ(a.fault_duplicated, b.fault_duplicated);
  EXPECT_EQ(a.fault_reordered, b.fault_reordered);
  EXPECT_EQ(a.fault_truncated, b.fault_truncated);
  EXPECT_EQ(a.auth_bad_tag, b.auth_bad_tag);
  EXPECT_EQ(a.auth_replayed, b.auth_replayed);
  EXPECT_EQ(a.resync_bytes, b.resync_bytes);
}

TEST(AuthTest, FuzzedFaultMixesKeepTheAccountingInvariant) {
  // 24 seeded rounds of mixed traffic under mixed fault rates, drained
  // in irregular chunks. The invariant must hold for every mix; the
  // seed in the failure message reproduces a failing round exactly.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    FaultPlan plan;
    plan.drop = 0.05 * double(seed % 4);
    plan.duplicate = 0.04 * double((seed / 2) % 4);
    plan.reorder = 0.06 * double((seed / 3) % 3);
    plan.corrupt = 0.05 * double((seed / 4) % 3);
    plan.truncate = 0.04 * double((seed / 5) % 3);
    plan.seed = seed;
    Link link(test_key(), plan);
    std::uint64_t delivered_count = 0;
    for (std::uint32_t i = 0; i < 96; ++i) {
      link.send(make_env(i * std::uint32_t(seed)));
      if (i % (1 + seed % 7) == 0) delivered_count += link.receive().size();
    }
    delivered_count += link.receive().size();
    link.reset();
    const LinkStats& st = link.stats();
    EXPECT_EQ(st.delivered, delivered_count) << "seed " << seed;
    const bool exact = plan.corrupt == 0.0;
    expect_link_accounted(st, exact);
    EXPECT_EQ(st.sent, 96u) << "seed " << seed;
    EXPECT_EQ(link.buffered_bytes(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace arraytrack::cluster
