// Tests for the Horus-style probabilistic fingerprinting baseline.
#include <gtest/gtest.h>

#include <random>

#include "baselines/fingerprint.h"

namespace arraytrack::baselines {
namespace {

std::vector<std::vector<double>> readings_around(
    const std::vector<double>& mean, double sigma, int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, sigma);
  std::vector<std::vector<double>> out;
  for (int k = 0; k < n; ++k) {
    std::vector<double> r = mean;
    for (auto& v : r) v += g(rng);
    out.push_back(std::move(r));
  }
  return out;
}

TEST(HorusTest, EmptyAndValidation) {
  HorusFingerprintDb db;
  EXPECT_FALSE(db.locate({}).has_value());
  EXPECT_THROW(db.add({0, 0}, {}), std::invalid_argument);
  EXPECT_THROW(db.add({0, 0}, {{-40.0, -50.0}, {-40.0}}),
               std::invalid_argument);
  db.add({0, 0}, readings_around({-40, -50}, 1.0, 5, 1));
  EXPECT_THROW(db.add({1, 1}, readings_around({-40, -50, -60}, 1.0, 5, 2)),
               std::invalid_argument);
  EXPECT_THROW(db.locate({-40.0}), std::invalid_argument);
}

TEST(HorusTest, PicksMostLikelyCell) {
  HorusFingerprintDb db;
  db.add({0, 0}, readings_around({-40, -70}, 2.0, 10, 3));
  db.add({10, 0}, readings_around({-70, -40}, 2.0, 10, 4));
  db.add({5, 8}, readings_around({-55, -55}, 2.0, 10, 5));
  const auto near_a = db.locate({-41, -69}, 1);
  ASSERT_TRUE(near_a.has_value());
  EXPECT_NEAR(near_a->x, 0.0, 1e-9);
  const auto near_c = db.locate({-56, -54}, 1);
  ASSERT_TRUE(near_c.has_value());
  EXPECT_NEAR(near_c->y, 8.0, 1e-9);
}

TEST(HorusTest, WeightedRefinementInterpolates) {
  HorusFingerprintDb db;
  db.add({0, 0}, readings_around({-40, -60}, 2.0, 10, 6));
  db.add({2, 0}, readings_around({-44, -56}, 2.0, 10, 7));
  // A reading exactly between the two cells pulls the estimate inside
  // the segment.
  const auto fix = db.locate({-42, -58}, 2);
  ASSERT_TRUE(fix.has_value());
  EXPECT_GT(fix->x, 0.2);
  EXPECT_LT(fix->x, 1.8);
}

TEST(HorusTest, VarianceAwareBeatsNaiveWhenApIsNoisy) {
  // AP 1's readings are wildly noisy at cell A (deep fade flutter); a
  // variance-aware model discounts it, so a far-off AP-1 reading does
  // not drag the match away from A.
  HorusFingerprintDb db;
  std::vector<std::vector<double>> a;
  for (int k = 0; k < 10; ++k)
    a.push_back({-50.0, (k % 2) ? -50.0 : -80.0});  // AP1 variance huge
  db.add({0, 0}, a);
  db.add({10, 0}, readings_around({-56, -62}, 1.0, 10, 9));
  const auto fix = db.locate({-50.0, -75.0}, 1);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->x, 0.0, 1e-9);
}

TEST(HorusTest, MoreAccurateThanKnnOnGaussianWorld) {
  // In a synthetic world that matches its model, Horus should beat the
  // plain kNN RADAR matcher.
  std::mt19937_64 rng(11);
  std::normal_distribution<double> g(0.0, 2.0);
  const std::vector<geom::Vec2> aps = {{0, 0}, {20, 0}, {10, 15}};
  auto mean_at = [&](geom::Vec2 p) {
    std::vector<double> m;
    for (const auto& ap : aps)
      m.push_back(-40.0 - 30.0 * std::log10(
                              std::max(geom::distance(p, ap), 1.0)));
    return m;
  };

  HorusFingerprintDb horus;
  RssiFingerprintDb knn;
  for (double y = 0; y <= 15; y += 2.5)
    for (double x = 0; x <= 20; x += 2.5) {
      const auto readings = readings_around(mean_at({x, y}), 2.0, 8,
                                            unsigned(x * 31 + y));
      horus.add({x, y}, readings);
      knn.add({x, y}, readings.front());  // RADAR surveys once per spot
    }

  double horus_err = 0.0, knn_err = 0.0;
  int n = 0;
  for (double y = 1.0; y <= 14; y += 3.1)
    for (double x = 1.0; x <= 19; x += 3.1, ++n) {
      auto reading = mean_at({x, y});
      for (auto& v : reading) v += g(rng);
      horus_err += geom::distance(*horus.locate(reading, 3), {x, y});
      knn_err += geom::distance(*knn.locate(reading, 3), {x, y});
    }
  EXPECT_LT(horus_err / n, knn_err / n);
}

}  // namespace
}  // namespace arraytrack::baselines
