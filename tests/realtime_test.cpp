// Tests for the event-driven real-time server simulation.
#include <gtest/gtest.h>

#include "core/realtime.h"

namespace arraytrack::core {
namespace {

using geom::Vec2;

struct Rig {
  Rig() : plan(make_plan()) {
    SystemConfig cfg;
    cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
    sys = std::make_unique<System>(&plan, cfg);
    sys->add_ap({1, 1}, deg2rad(45.0));
    sys->add_ap({17, 1}, deg2rad(135.0));
    sys->add_ap({9, 9.5}, deg2rad(-90.0));
  }
  static geom::Floorplan make_plan() {
    geom::Floorplan plan({{0, 0}, {18, 10}});
    plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
    plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
    plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
    plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
    return plan;
  }
  geom::Floorplan plan;
  std::unique_ptr<System> sys;
};

std::vector<FrameEvent> steady_schedule(int frames, double gap_s, Vec2 pos) {
  std::vector<FrameEvent> out;
  for (int i = 0; i < frames; ++i)
    out.push_back({0.1 + gap_s * i, 0, pos});
  return out;
}

TEST(RealtimeTest, EmptyScheduleEmptyReport) {
  Rig rig;
  RealtimeSimulator sim(rig.sys.get());
  const auto report = sim.run({});
  EXPECT_EQ(report.frames_in, 0u);
  EXPECT_TRUE(report.fixes.empty());
  EXPECT_DOUBLE_EQ(report.fix_rate_hz(), 0.0);
}

TEST(RealtimeTest, ProducesFixesWithTransportFloor) {
  Rig rig;
  RealtimeOptions opt;
  RealtimeSimulator sim(rig.sys.get(), opt);
  const auto report = sim.run(steady_schedule(5, 0.2, {12.0, 6.0}));
  ASSERT_GE(report.fixes.size(), 4u);
  const double transport = opt.latency.detection_s +
                           opt.latency.serialization_s() +
                           opt.latency.bus_latency_s;
  for (const auto& f : report.fixes) {
    // Latency can never beat detection + serialization + bus.
    EXPECT_GE(f.latency_s, transport - 1e-9);
    EXPECT_LT(f.latency_s, 1.0);  // and stays sane on this machine
    EXPECT_LT(f.error_m, 1.5);
    EXPECT_EQ(f.client_id, 0);
  }
}

TEST(RealtimeTest, CoalescingBoundsQueue) {
  // 100 frames in a burst for one client: with coalescing, the server
  // does a handful of jobs rather than 100.
  Rig rig;
  RealtimeOptions opt;
  RealtimeSimulator sim(rig.sys.get(), opt);
  const auto report = sim.run(steady_schedule(100, 0.001, {9.0, 5.0}));
  EXPECT_EQ(report.frames_in, 100u);
  EXPECT_GT(report.jobs_coalesced, 80u);
  EXPECT_LT(report.fixes.size(), 20u);
}

TEST(RealtimeTest, NoCoalescingProcessesEveryFrame) {
  Rig rig;
  RealtimeOptions opt;
  opt.coalesce_per_client = false;
  RealtimeSimulator sim(rig.sys.get(), opt);
  const auto report = sim.run(steady_schedule(10, 0.2, {9.0, 5.0}));
  EXPECT_EQ(report.jobs_coalesced, 0u);
  EXPECT_EQ(report.fixes.size(), 10u);
}

TEST(RealtimeTest, ProcessingScaleInflatesLatency) {
  Rig rig;
  RealtimeOptions fast;
  RealtimeOptions slow;
  slow.processing_scale = 20.0;
  const auto sched = steady_schedule(6, 0.3, {10.0, 4.0});
  const auto r_fast = RealtimeSimulator(rig.sys.get(), fast).run(sched);
  const auto r_slow = RealtimeSimulator(rig.sys.get(), slow).run(sched);
  ASSERT_FALSE(r_fast.fixes.empty());
  ASSERT_FALSE(r_slow.fixes.empty());
  EXPECT_GT(r_slow.latency_percentile(50), r_fast.latency_percentile(50));
}

TEST(RealtimeTest, ReportStatistics) {
  Rig rig;
  RealtimeSimulator sim(rig.sys.get());
  const auto report = sim.run(steady_schedule(8, 0.25, {11.0, 7.0}));
  ASSERT_GE(report.fixes.size(), 2u);
  EXPECT_GE(report.latency_percentile(95), report.latency_percentile(5));
  EXPECT_GT(report.fix_rate_hz(), 0.0);
  EXPECT_GE(report.median_error_m(), 0.0);
}

}  // namespace
}  // namespace arraytrack::core
