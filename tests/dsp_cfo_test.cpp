// Tests for carrier frequency offset modeling, estimation, correction,
// and the crucial invariance: CFO does not perturb AoA spectra.
#include <gtest/gtest.h>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "array/geometry.h"
#include "array/placed_array.h"
#include "dsp/cfo.h"
#include "dsp/detector.h"
#include "dsp/noise.h"
#include "dsp/preamble.h"

namespace arraytrack::dsp {
namespace {

constexpr double kFs = 40e6;

TEST(CfoTest, PpmConversion) {
  EXPECT_NEAR(ppm_to_hz(20.0, 2.437e9), 48740.0, 1.0);
  EXPECT_NEAR(ppm_to_hz(-5.0, 2.437e9), -12185.0, 1.0);
}

TEST(CfoTest, ApplyRotatesPhaseLinearly) {
  std::vector<cplx> ones(64, cplx{1.0, 0.0});
  const double df = 100e3;
  const auto y = apply_cfo(ones, df, kFs);
  for (std::size_t n = 1; n < y.size(); ++n) {
    const double step = wrap_pi(std::arg(y[n]) - std::arg(y[n - 1]));
    EXPECT_NEAR(step, kTwoPi * df / kFs, 1e-9);
  }
  // Magnitudes untouched.
  for (const auto& v : y) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(CfoTest, CorrectInvertsApply) {
  PreambleGenerator gen(2);
  const auto& x = gen.preamble();
  const auto shifted = apply_cfo(x, 37e3, kFs);
  const auto fixed = correct_cfo(shifted, 37e3, kFs);
  for (std::size_t n = 0; n < x.size(); ++n)
    EXPECT_NEAR(std::abs(fixed[n] - x[n]), 0.0, 1e-9);
}

class CfoEstimateSweep : public ::testing::TestWithParam<double> {};

TEST_P(CfoEstimateSweep, EstimatesWithinTolerance) {
  const double df = GetParam();
  PreambleGenerator gen(2);
  auto x = apply_cfo(gen.preamble(), df, kFs);
  AwgnSource noise(unsigned(df) + 7);
  noise.add_noise(x, 20.0);
  // Estimate over the short training section: period 32 at 40 Msps.
  const double est = estimate_cfo(x, 0, gen.sts_period(),
                                  gen.short_section().size() - gen.sts_period(),
                                  kFs);
  EXPECT_NEAR(est, df, 2500.0) << df;
}

// +-625 kHz unambiguous range for the 32-sample STS period at 40 Msps;
// stay inside it. Typical WiFi offsets are within +-50 kHz.
INSTANTIATE_TEST_SUITE_P(Offsets, CfoEstimateSweep,
                         ::testing::Values(-200e3, -48.7e3, -10e3, 0.0, 10e3,
                                           48.7e3, 200e3));

TEST(CfoTest, LongSymbolEstimateIsFiner) {
  // The 128-sample LTS period gives a finer (if narrower-range)
  // estimate than the STS.
  PreambleGenerator gen(2);
  const double df = 11e3;
  auto x = apply_cfo(gen.preamble(), df, kFs);
  AwgnSource noise(3);
  noise.add_noise(x, 15.0);
  const double coarse = estimate_cfo(x, 0, gen.sts_period(),
                                     gen.short_section().size() -
                                         gen.sts_period(),
                                     kFs);
  const double fine =
      estimate_cfo(x, gen.lts0_offset(), gen.lts_period(), gen.lts_period(),
                   kFs);
  EXPECT_NEAR(fine, df, 1000.0);
  EXPECT_NEAR(coarse, df, 4000.0);
}

TEST(CfoTest, WindowBoundsChecked) {
  std::vector<cplx> x(64);
  EXPECT_THROW(estimate_cfo(x, 0, 0, 8, kFs), std::invalid_argument);
  EXPECT_THROW(estimate_cfo(x, 60, 16, 8, kFs), std::invalid_argument);
}

TEST(CfoTest, DetectionSurvivesCfo) {
  // Schmidl-Cox is CFO-immune by construction (|P| unaffected); the
  // matched filter degrades gracefully over the short symbol span.
  PreambleGenerator gen(2);
  AwgnSource noise(9);
  auto s = noise.generate(3000, db_to_linear(-20.0));
  const auto shifted = apply_cfo(gen.preamble(), 30e3, kFs);
  for (std::size_t i = 0; i < shifted.size(); ++i) s[500 + i] += shifted[i];
  SchmidlCoxDetector sc(gen.sts_period());
  const auto d = sc.detect(s);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(double(d->start_index), 500.0, double(gen.sts_period()));
}

TEST(CfoTest, AoaSpectrumInvariantUnderCfo) {
  // The offset multiplies every antenna's sample by the SAME phasor at
  // each instant, so Rxx — and the MUSIC spectrum — cannot change.
  const double lambda = 0.1226;
  array::PlacedArray pa(array::ArrayGeometry::uniform_linear(8, lambda / 2),
                        {0, 0}, 0.0);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  const auto a = pa.steering(deg2rad(70.0), lambda);

  linalg::CMatrix clean(8, 20), offset(8, 20);
  const double step = kTwoPi * 50e3 / kFs;
  for (std::size_t k = 0; k < 20; ++k) {
    const cplx s = std::exp(kJ * uang(rng));
    const cplx rot = std::exp(kJ * (step * double(k)));
    for (std::size_t m = 0; m < 8; ++m) {
      const cplx n{0.01 * g(rng), 0.01 * g(rng)};
      clean(m, k) = a[m] * s + n;
      offset(m, k) = (a[m] * s + n) * rot;  // common-mode CFO rotation
    }
  }
  std::vector<std::size_t> row = {0, 1, 2, 3, 4, 5, 6, 7};
  aoa::MusicEstimator music(&pa, row, lambda);
  const auto spec_clean = music.spectrum(clean);
  const auto spec_offset = music.spectrum(offset);
  for (std::size_t i = 0; i < spec_clean.bins(); ++i)
    EXPECT_NEAR(spec_clean[i], spec_offset[i],
                1e-6 * (1.0 + spec_clean[i]));
}

}  // namespace
}  // namespace arraytrack::dsp
