// Tests for AoA spectra synthesis and the grid/hill-climb localizer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/synthesis.h"

namespace arraytrack::core {
namespace {

aoa::AoaSpectrum spectrum_peaking_at(double bearing_rad,
                                     double width_rad = deg2rad(4.0),
                                     std::size_t bins = 720) {
  aoa::AoaSpectrum s(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = aoa::bearing_distance(s.bin_bearing(i), bearing_rad);
    s[i] = std::exp(-0.5 * (d / width_rad) * (d / width_rad));
  }
  return s;
}

// An AP at `pos` (orientation `orient`) whose spectrum points exactly
// at world point `target`.
ApSpectrum ap_looking_at(geom::Vec2 pos, double orient, geom::Vec2 target) {
  ApSpectrum ap;
  ap.ap_position = pos;
  ap.orientation_rad = orient;
  const double world = (target - pos).angle();
  ap.spectrum = spectrum_peaking_at(wrap_2pi(world - orient));
  return ap;
}

TEST(ApSpectrumTest, LikelihoodTowardPeaksAtTarget) {
  const geom::Vec2 target{5, 5};
  const auto ap = ap_looking_at({0, 0}, deg2rad(30.0), target);
  EXPECT_NEAR(ap.likelihood_toward(target, 1e-9), 1.0, 1e-3);
  // Far off the beam: floored.
  EXPECT_NEAR(ap.likelihood_toward({-5, -5}, 1e-9), 1e-9, 1e-10);
}

TEST(LocalizerTest, EmptyInputYieldsNullopt) {
  Localizer loc({{0, 0}, {10, 10}});
  EXPECT_FALSE(loc.locate({}).has_value());
}

TEST(LocalizerTest, TwoApsTriangulate) {
  const geom::Vec2 truth{6.0, 4.0};
  std::vector<ApSpectrum> aps = {
      ap_looking_at({0, 0}, 0.0, truth),
      ap_looking_at({10, 0}, deg2rad(90.0), truth),
  };
  Localizer loc({{0, 0}, {10, 10}});
  const auto fix = loc.locate(aps);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 0.15);
}

TEST(LocalizerTest, MoreApsShrinkError) {
  const geom::Vec2 truth{12.5, 7.5};
  std::vector<ApSpectrum> all = {
      ap_looking_at({0, 0}, 0.0, truth),
      ap_looking_at({25, 0}, 0.0, truth),
      ap_looking_at({0, 15}, 0.0, truth),
      ap_looking_at({25, 15}, 0.0, truth),
  };
  Localizer loc({{0, 0}, {25, 15}});
  const auto two =
      loc.locate({all[0], all[1]});
  const auto four = loc.locate(all);
  ASSERT_TRUE(two && four);
  EXPECT_LE(geom::distance(four->position, truth),
            geom::distance(two->position, truth) + 0.05);
  EXPECT_LT(geom::distance(four->position, truth), 0.15);
}

TEST(LocalizerTest, HillClimbRefinesBeyondGrid) {
  // Coarse grid (0.5 m) + hill climbing should still land within a few
  // centimeters because the likelihood surface is smooth.
  const geom::Vec2 truth{6.13, 4.27};
  std::vector<ApSpectrum> aps = {
      ap_looking_at({0, 0}, 0.0, truth),
      ap_looking_at({10, 0}, 0.0, truth),
      ap_looking_at({5, 10}, 0.0, truth),
  };
  LocalizerOptions opt;
  opt.grid_step_m = 0.5;
  Localizer loc({{0, 0}, {10, 10}}, opt);
  const auto fix = loc.locate(aps);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 0.10);
}

TEST(LocalizerTest, MirroredSpectraCreateGhostWithTwoAps) {
  // Without symmetry removal a linear array cannot tell front from
  // back: fuse mirrored spectra and the heatmap has multiple modes.
  const geom::Vec2 truth{5.0, 3.0};
  auto make_mirrored = [&](geom::Vec2 pos) {
    ApSpectrum ap;
    ap.ap_position = pos;
    ap.orientation_rad = 0.0;
    const double local = wrap_2pi((truth - pos).angle());
    auto s = spectrum_peaking_at(local);
    // Mirror: theta -> -theta.
    auto m = spectrum_peaking_at(wrap_2pi(-local));
    s += m;
    ap.spectrum = s;
    return ap;
  };
  std::vector<ApSpectrum> aps = {make_mirrored({0, 0}), make_mirrored({10, 0})};
  Localizer loc({{0, -10}, {10, 10}});
  const auto map = loc.heatmap(aps);
  // The ghost (5, -3) should be as likely as the truth.
  const double at_truth = loc.likelihood(aps, truth);
  const double at_ghost = loc.likelihood(aps, {5.0, -3.0});
  EXPECT_NEAR(at_ghost / at_truth, 1.0, 0.15);
  (void)map;
}

TEST(LocalizerTest, FloorPreventsSingleApVeto) {
  // One AP points away from the truth entirely (blocked direct path):
  // with the floor the other three still dominate.
  const geom::Vec2 truth{6.0, 6.0};
  std::vector<ApSpectrum> aps = {
      ap_looking_at({0, 0}, 0.0, truth),
      ap_looking_at({12, 0}, 0.0, truth),
      ap_looking_at({0, 12}, 0.0, truth),
      ap_looking_at({12, 12}, 0.0, {1.0, 1.0}),  // wrong bearing
  };
  Localizer loc({{0, 0}, {12, 12}});
  const auto fix = loc.locate(aps);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 0.3);
}

TEST(HeatmapTest, GridGeometry) {
  Localizer loc({{0, 0}, {4, 2}});
  std::vector<ApSpectrum> aps = {ap_looking_at({0, 0}, 0.0, {2, 1})};
  const auto map = loc.heatmap(aps);
  EXPECT_EQ(map.nx, 40u);
  EXPECT_EQ(map.ny, 20u);
  EXPECT_EQ(map.cells.size(), 800u);
  const auto c = map.cell_center(0, 0);
  EXPECT_NEAR(c.x, 0.05, 1e-12);
  EXPECT_NEAR(c.y, 0.05, 1e-12);
  EXPECT_GT(map.max_value(), 0.0);
  EXPECT_FALSE(map.to_ascii(40).empty());
}

TEST(HeatmapTest, SingleThreadMatchesMultiThread) {
  const geom::Vec2 truth{3.3, 1.2};
  std::vector<ApSpectrum> aps = {ap_looking_at({0, 0}, 0.0, truth),
                                 ap_looking_at({4, 0}, 0.0, truth)};
  LocalizerOptions opt1;
  opt1.threads = 1;
  LocalizerOptions optn;
  optn.threads = 4;
  const auto m1 = Localizer({{0, 0}, {4, 2}}, opt1).heatmap(aps);
  const auto mn = Localizer({{0, 0}, {4, 2}}, optn).heatmap(aps);
  ASSERT_EQ(m1.cells.size(), mn.cells.size());
  for (std::size_t i = 0; i < m1.cells.size(); ++i)
    EXPECT_DOUBLE_EQ(m1.cells[i], mn.cells[i]);
}

}  // namespace
}  // namespace arraytrack::core
