// Tests for the baseline localizers.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fingerprint.h"
#include "baselines/phase_aoa.h"
#include "baselines/rssi.h"
#include "linalg/types.h"

namespace arraytrack::baselines {
namespace {

TEST(PhaseAoaTest, RecoversFreeSpaceBearing) {
  // Half-wavelength pair with arrival bearing theta: phase difference
  // is pi*cos(theta) in our steering convention.
  for (double deg : {30.0, 60.0, 90.0, 120.0, 150.0}) {
    const double delta = kPi * std::cos(deg2rad(deg));
    const cplx x1{1.0, 0.0};
    const cplx x2 = std::exp(kJ * delta);
    const auto est = phase_difference_bearing(x1, x2);
    ASSERT_TRUE(est.has_value()) << deg;
    EXPECT_NEAR(rad2deg(*est), deg, 0.5) << deg;
  }
}

TEST(PhaseAoaTest, SnapshotAverageVersion) {
  linalg::CMatrix x(2, 5);
  const double delta = kPi * std::cos(deg2rad(75.0));
  for (std::size_t k = 0; k < 5; ++k) {
    const cplx s = std::exp(kJ * (0.7 * double(k)));
    x(0, k) = s;
    x(1, k) = s * std::exp(kJ * delta);
  }
  const auto est = phase_difference_bearing(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(rad2deg(*est), 75.0, 0.5);
}

TEST(PhaseAoaTest, ZeroInputRejected) {
  EXPECT_FALSE(phase_difference_bearing(cplx{0, 0}, cplx{1, 0}).has_value());
  EXPECT_THROW(phase_difference_bearing(linalg::CMatrix(1, 5)),
               std::invalid_argument);
}

TEST(LogDistanceModelTest, PredictInvertRoundTrip) {
  LogDistanceModel m{-30.0, 3.0};
  for (double d : {1.0, 3.0, 10.0, 30.0})
    EXPECT_NEAR(m.invert_distance_m(m.predict_dbm(d)), d, 1e-9);
  // 1 m reference.
  EXPECT_NEAR(m.predict_dbm(1.0), -30.0, 1e-12);
  // Monotone decreasing.
  EXPECT_GT(m.predict_dbm(2.0), m.predict_dbm(8.0));
}

TEST(RssiTrilaterationTest, ExactReadingsLocalize) {
  LogDistanceModel m{-30.0, 3.0};
  const geom::Vec2 truth{6.0, 4.0};
  std::vector<RssiReading> readings;
  for (const auto& ap : {geom::Vec2{0, 0}, geom::Vec2{12, 0},
                         geom::Vec2{6, 10}}) {
    readings.push_back({ap, m.predict_dbm(geom::distance(ap, truth))});
  }
  const auto fix =
      rssi_trilaterate(readings, m, {{0, 0}, {12, 10}}, 0.25);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(*fix, truth), 0.3);
}

TEST(RssiTrilaterationTest, QuantizedReadingsMeterScaleError) {
  // Whole-dB quantization (what commodity hardware reports) alone
  // degrades accuracy to decimeters..meters — the coarseness argument
  // of the paper's related-work section.
  LogDistanceModel m{-30.0, 3.0};
  const geom::Vec2 truth{6.3, 4.7};
  std::vector<RssiReading> readings;
  for (const auto& ap : {geom::Vec2{0, 0}, geom::Vec2{12, 0},
                         geom::Vec2{6, 10}}) {
    const double r = std::round(m.predict_dbm(geom::distance(ap, truth)));
    readings.push_back({ap, r});
  }
  const auto fix =
      rssi_trilaterate(readings, m, {{0, 0}, {12, 10}}, 0.25);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(*fix, truth), 3.0);  // still sane
}

TEST(RssiTrilaterationTest, NeedsThreeAps) {
  LogDistanceModel m;
  std::vector<RssiReading> two = {{{0, 0}, -40}, {{10, 0}, -50}};
  EXPECT_FALSE(rssi_trilaterate(two, m, {{0, 0}, {10, 10}}).has_value());
}

TEST(WeightedCentroidTest, PullsTowardStrongAp) {
  std::vector<RssiReading> readings = {
      {{0, 0}, -30.0},   // strong
      {{10, 0}, -70.0},  // weak
  };
  const auto fix = rssi_weighted_centroid(readings);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(fix->x, 2.0);
  EXPECT_FALSE(rssi_weighted_centroid({}).has_value());
}

TEST(FingerprintTest, ExactMatchReturnsSurveyPoint) {
  RssiFingerprintDb db;
  db.add({0, 0}, {-40, -50, -60});
  db.add({5, 0}, {-50, -40, -55});
  db.add({0, 5}, {-60, -55, -40});
  const auto fix = db.locate({-50, -40, -55}, 1);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->x, 5.0, 1e-12);
  EXPECT_NEAR(fix->y, 0.0, 1e-12);
}

TEST(FingerprintTest, KnnAverages) {
  RssiFingerprintDb db;
  db.add({0, 0}, {-40, -40});
  db.add({2, 0}, {-42, -42});
  db.add({20, 20}, {-90, -90});
  const auto fix = db.locate({-41, -41}, 2);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->x, 1.0, 1e-12);
}

TEST(FingerprintTest, MismatchedVectorThrows) {
  RssiFingerprintDb db;
  db.add({0, 0}, {-40, -50});
  EXPECT_THROW(db.add({1, 1}, {-40}), std::invalid_argument);
  EXPECT_THROW(db.locate({-40}), std::invalid_argument);
  RssiFingerprintDb empty;
  EXPECT_FALSE(empty.locate({}).has_value());
}

}  // namespace
}  // namespace arraytrack::baselines
