// Tests for the arbitrary-geometry MUSIC estimator (circular arrays)
// and the Bartlett beamformer spectrum.
#include <gtest/gtest.h>

#include <random>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "array/geometry.h"
#include "array/placed_array.h"

namespace arraytrack::aoa {
namespace {

using array::ArrayGeometry;
using array::PlacedArray;

constexpr double kLambda = 0.1226;

PlacedArray circ8() {
  const double radius = kLambda / 2.0 / (2.0 * std::sin(kPi / 8.0));
  return PlacedArray(ArrayGeometry::circular(8, radius), {0, 0}, 0.0);
}

std::vector<std::size_t> first_n(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

linalg::CMatrix snapshots(const PlacedArray& pa,
                          const std::vector<double>& bearings, std::size_t n,
                          double snr_db, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  const double sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);
  linalg::CMatrix x(pa.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    for (double b : bearings) {
      const auto a = pa.steering(b, kLambda);
      const cplx s = std::exp(kJ * uang(rng));
      for (std::size_t m = 0; m < pa.size(); ++m) x(m, k) += a[m] * s;
    }
    for (std::size_t m = 0; m < pa.size(); ++m)
      x(m, k) += cplx{sigma * g(rng), sigma * g(rng)};
  }
  return x;
}

TEST(GeneralMusicTest, RejectsTooFewElements) {
  const auto pa = circ8();
  EXPECT_THROW(GeneralMusic(&pa, {0}, kLambda), std::invalid_argument);
}

// Circular arrays resolve the full circle — including the bearings a
// linear array would mirror.
class CircularBearingSweep : public ::testing::TestWithParam<double> {};

TEST_P(CircularBearingSweep, NoMirrorAmbiguity) {
  const double deg = GetParam();
  const auto pa = circ8();
  GeneralMusic music(&pa, first_n(8), kLambda);
  const auto x = snapshots(pa, {deg2rad(deg)}, 20, 25,
                           std::uint64_t(900 + deg));
  const auto spec = music.spectrum(x);
  EXPECT_LT(rad2deg(bearing_distance(spec.dominant_bearing(), deg2rad(deg))),
            3.0);
  // The mirror bearing is NOT an equal peak (unlike a linear array).
  EXPECT_GT(spec.value_at(deg2rad(deg)),
            3.0 * spec.value_at(wrap_2pi(deg2rad(-deg))) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(FullCircle, CircularBearingSweep,
                         ::testing::Values(10.0, 60.0, 110.0, 170.0, 200.0,
                                           250.0, 300.0, 345.0));

TEST(GeneralMusicTest, TwoSourcesResolved) {
  const auto pa = circ8();
  GeneralMusic music(&pa, first_n(8), kLambda);
  const auto x =
      snapshots(pa, {deg2rad(40), deg2rad(250)}, 40, 25, 42);
  const auto spec = music.spectrum(x);
  bool f40 = false, f250 = false;
  for (const auto& p : spec.find_peaks(0.05)) {
    if (rad2deg(bearing_distance(p.bearing_rad, deg2rad(40))) < 4) f40 = true;
    if (rad2deg(bearing_distance(p.bearing_rad, deg2rad(250))) < 4)
      f250 = true;
  }
  EXPECT_TRUE(f40);
  EXPECT_TRUE(f250);
}

TEST(GeneralMusicTest, FixedSignalCountHonored) {
  const auto pa = circ8();
  GeneralMusicOptions opt;
  opt.fixed_num_signals = 1;
  GeneralMusic music(&pa, first_n(8), kLambda, opt);
  const auto x = snapshots(pa, {deg2rad(75)}, 20, 20, 5);
  EXPECT_NO_THROW(music.spectrum(x));
}

TEST(BartlettTest, PeaksAtSourceButWider) {
  const auto pa = circ8();
  const auto x = snapshots(pa, {deg2rad(120)}, 30, 25, 9);
  const auto r = sample_covariance(x);
  const auto bart = bartlett_spectrum(pa, first_n(8), kLambda, r);
  GeneralMusic music(&pa, first_n(8), kLambda);
  const auto mus = music.spectrum_from_covariance(r);

  EXPECT_LT(rad2deg(bearing_distance(bart.dominant_bearing(), deg2rad(120))),
            4.0);
  // MUSIC's peak is sharper: its half-power neighborhood is narrower.
  auto width_deg = [](const AoaSpectrum& s) {
    const double peak = s.max_value();
    std::size_t count = 0;
    for (std::size_t i = 0; i < s.bins(); ++i)
      if (s[i] > 0.5 * peak) ++count;
    return double(count) * 360.0 / double(s.bins());
  };
  EXPECT_LT(width_deg(mus), width_deg(bart));
}

TEST(BartlettTest, SizeMismatchThrows) {
  const auto pa = circ8();
  EXPECT_THROW(
      bartlett_spectrum(pa, first_n(8), kLambda, linalg::CMatrix(4, 4)),
      std::invalid_argument);
}

}  // namespace
}  // namespace arraytrack::aoa
