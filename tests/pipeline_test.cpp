// Tests for the per-AP spectrum pipeline (ApProcessor), channel
// consistency between the snapshot and waveform paths, CFO through the
// front end, and wire-format transport of live captures.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dsp/preamble.h"
#include "phy/wire.h"

namespace arraytrack::core {
namespace {

using geom::Vec2;

struct Rig {
  Rig() : plan({{-40, -40}, {40, 40}}), channel(&plan, make_cfg(), 3) {
    plan.add_wall({-30, -12}, {30, -12}, geom::Material::kDrywall);
  }
  static channel::ChannelConfig make_cfg() {
    channel::ChannelConfig cfg;
    cfg.tx_power_dbm = 10.0;
    return cfg;
  }
  phy::AccessPointFrontEnd make_ap(std::size_t radios = 8) {
    const double s = channel.config().wavelength_m() / 2.0;
    array::PlacedArray placed(
        array::ArrayGeometry::rectangular(radios, s, s / 2.0), {0, 0}, 0.0);
    phy::ApConfig cfg;
    cfg.radios = radios;
    phy::AccessPointFrontEnd ap(0, placed, &channel, cfg);
    ap.run_calibration();
    return ap;
  }
  geom::Floorplan plan;
  channel::MultipathChannel channel;
};

TEST(ApProcessorTest, ClampsSmoothingForSmallArrays) {
  Rig rig;
  auto ap4 = rig.make_ap(4);
  PipelineOptions opt;
  opt.music.smoothing_groups = 4;  // would leave a 1-element subarray
  ApProcessor proc(&ap4, opt);
  EXPECT_EQ(proc.options().music.smoothing_groups, 2u);  // clamped to M/2
  // And it still produces a sane spectrum.
  const auto frame = ap4.capture_snapshot({8, 6}, 0.0, 0);
  const auto spec = proc.process(frame);
  EXPECT_GT(spec.max_value(), 0.0);
}

TEST(ApProcessorTest, RowLargerThanRadiosRejected) {
  Rig rig;
  auto ap = rig.make_ap(8);
  PipelineOptions opt;
  opt.linear_elements = 12;
  EXPECT_THROW(ApProcessor(&ap, opt), std::invalid_argument);
}

TEST(ApProcessorTest, ProcessTaggedCarriesPose) {
  Rig rig;
  auto ap = rig.make_ap();
  ApProcessor proc(&ap);
  const auto frame = ap.capture_snapshot({5, 9}, 0.0, 0);
  const auto tagged = proc.process_tagged(frame);
  EXPECT_EQ(tagged.ap_position, ap.array().position());
  EXPECT_DOUBLE_EQ(tagged.orientation_rad, ap.array().orientation());
  EXPECT_NEAR(tagged.spectrum.max_value(), 1.0, 1e-9);
}

TEST(ApProcessorTest, ToggleEffects) {
  Rig rig;
  auto ap = rig.make_ap();
  const Vec2 client{7.0, 10.0};
  const auto frame = ap.capture_snapshot(client, 0.0, 0);

  PipelineOptions raw;
  raw.geometry_weighting = false;
  raw.symmetry_removal = false;
  raw.bearing_sigma_deg = 0.0;
  const auto spec_raw = ApProcessor(&ap, raw).process(frame);

  // Raw spectrum is mirrored.
  const double truth = wrap_2pi(ap.array().bearing_to(client));
  EXPECT_NEAR(spec_raw.value_at(truth), spec_raw.value_at(wrap_2pi(-truth)),
              0.05 * (1.0 + spec_raw.value_at(truth)));

  PipelineOptions sym = raw;
  sym.symmetry_removal = true;
  const auto spec_sym = ApProcessor(&ap, sym).process(frame);
  EXPECT_GT(spec_sym.value_at(truth), 5.0 * spec_sym.value_at(wrap_2pi(-truth)));
}

TEST(FrontEndCfoTest, DetectionAndBearingSurviveOffset) {
  // +-20 ppm at 2.437 GHz is ~49 kHz; AoA must be unaffected and the
  // detector must still find the frame.
  Rig rig;
  auto ap = rig.make_ap();
  const Vec2 client{10.0, 8.0};
  dsp::PreambleGenerator gen(2);
  const auto wf = gen.frame(1000, 4);

  phy::Transmission tx;
  tx.waveform = &wf;
  tx.client_pos = client;
  tx.start_sample = 400;
  tx.client_id = 1;
  tx.cfo_hz = 48.7e3;

  const auto captures = ap.receive({tx}, 0.0);
  ASSERT_EQ(captures.size(), 1u);

  ApProcessor proc(&ap);
  const auto spec = proc.process(captures[0]);
  const double truth = wrap_2pi(ap.array().bearing_to(client));
  EXPECT_LT(rad2deg(aoa::bearing_distance(spec.dominant_bearing(), truth)),
            5.0);
}

TEST(FrontEndCfoTest, ZeroAndNonzeroCfoGiveSameBearing) {
  Rig rig;
  auto ap = rig.make_ap();
  const Vec2 client{-6.0, 11.0};
  dsp::PreambleGenerator gen(2);
  const auto wf = gen.frame(600, 5);
  ApProcessor proc(&ap);

  auto bearing_with_cfo = [&](double cfo) {
    phy::Transmission tx;
    tx.waveform = &wf;
    tx.client_pos = client;
    tx.start_sample = 300;
    tx.client_id = 1;
    tx.cfo_hz = cfo;
    const auto captures = ap.receive({tx}, 0.0);
    EXPECT_EQ(captures.size(), 1u);
    return proc.process(captures[0]).dominant_bearing();
  };
  const double b0 = bearing_with_cfo(0.0);
  const double b1 = bearing_with_cfo(30e3);
  // Not bit-identical (noise draws differ) but the bearing must agree.
  EXPECT_LT(rad2deg(aoa::bearing_distance(b0, b1)), 2.0);
}

TEST(WireTransportTest, LocalizationSurvivesTransport) {
  // Encode a live capture, ship it, decode, process: the spectrum must
  // match the locally processed one (16-bit transport).
  Rig rig;
  auto ap = rig.make_ap();
  const Vec2 client{12.0, -5.0};
  const auto frame = ap.capture_snapshot(client, 1.0, 2);

  phy::WireFormat wire;
  const auto decoded = wire.decode(wire.encode(frame));
  ASSERT_TRUE(decoded.has_value());

  ApProcessor proc(&ap);
  const auto local = proc.process(frame);
  const auto remote = proc.process(*decoded);
  for (std::size_t i = 0; i < local.bins(); ++i)
    EXPECT_NEAR(local[i], remote[i], 0.02 * (1.0 + local[i]));
}

TEST(ChannelConsistencyTest, SnapshotAndWaveformPathsAgree) {
  // The fast snapshot path and the full waveform path must yield the
  // same dominant bearing for the same client.
  Rig rig;
  auto ap = rig.make_ap();
  const Vec2 client{9.0, 7.0};
  ApProcessor proc(&ap);

  const auto snap = proc.process(ap.capture_snapshot(client, 0.0, 0));

  dsp::PreambleGenerator gen(2);
  const auto wf = gen.frame(500, 6);
  phy::Transmission tx;
  tx.waveform = &wf;
  tx.client_pos = client;
  tx.start_sample = 250;
  tx.client_id = 0;
  const auto captures = ap.receive({tx}, 0.0);
  ASSERT_EQ(captures.size(), 1u);
  const auto wave = proc.process(captures[0]);

  EXPECT_LT(rad2deg(aoa::bearing_distance(snap.dominant_bearing(),
                                          wave.dominant_bearing())),
            4.0);
}

TEST(ChannelHeightsTest, PerAntennaHeightsChangeResponse) {
  Rig rig;
  const Vec2 tx{10, 0};
  const std::vector<Vec2> ants = {{0, 0}, {0.06, 0}};
  const auto flat = rig.channel.response(tx, {0, 0}, ants);
  const std::vector<double> heights = {1.5, 2.5};
  const auto tilted = rig.channel.response(tx, {0, 0}, ants, heights);
  // Same first antenna (1.5 m = config height), different second.
  EXPECT_NEAR(std::abs(flat.gains[0] - tilted.gains[0]), 0.0, 1e-12);
  EXPECT_GT(std::abs(flat.gains[1] - tilted.gains[1]), 1e-9);
}

}  // namespace
}  // namespace arraytrack::core
