// Tests for the symmetry removal step (paper 2.3.4).
#include <gtest/gtest.h>

#include <random>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "aoa/symmetry.h"
#include "array/geometry.h"
#include "array/placed_array.h"

namespace arraytrack::aoa {
namespace {

using array::ArrayGeometry;
using array::PlacedArray;

constexpr double kLambda = 0.1226;

PlacedArray rect8() {
  // Quarter-wavelength row gap: the production geometry (see
  // System::add_ap) — front/back decidable at every bearing.
  return PlacedArray(ArrayGeometry::rectangular(8, kLambda / 2, kLambda / 4),
                     {0, 0}, 0.0);
}

std::vector<std::size_t> all16() {
  std::vector<std::size_t> v(16);
  for (std::size_t i = 0; i < 16; ++i) v[i] = i;
  return v;
}

// Snapshots over the full 16-element set for one source.
linalg::CMatrix snapshots16(const PlacedArray& pa, double bearing_rad,
                            std::size_t n, double snr_db,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  const double sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);
  const auto elements = all16();
  const auto a = pa.steering_subset(bearing_rad, kLambda, elements);
  linalg::CMatrix x(16, n);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx s = std::exp(kJ * uang(rng));
    for (std::size_t m = 0; m < 16; ++m)
      x(m, k) = a[m] * s + cplx{sigma * g(rng), sigma * g(rng)};
  }
  return x;
}

struct Resolved {
  Side side;
  AoaSpectrum spec;
  double truth_value;
  double mirror_value;
};

Resolved run_resolution(double bearing_deg, std::uint64_t seed) {
  const auto pa = rect8();
  const double truth = deg2rad(bearing_deg);
  std::vector<std::size_t> row = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto x16 = snapshots16(pa, truth, 20, 25, seed);
  const auto x8 = x16.block(0, 0, 8, x16.cols());

  MusicEstimator music(&pa, row, kLambda);
  AoaSpectrum spec = music.spectrum(x8);
  SymmetryResolver resolver(&pa, all16(), kLambda);
  const Side side = resolver.resolve(sample_covariance(x16), &spec);
  return {side, spec, spec.value_at(wrap_2pi(truth)),
          spec.value_at(wrap_2pi(-truth))};
}

TEST(SymmetryTest, RequiresThreeElements) {
  const auto pa = rect8();
  EXPECT_THROW(SymmetryResolver(&pa, {0, 1}, kLambda), std::invalid_argument);
}

class SymmetrySideSweep : public ::testing::TestWithParam<double> {};

TEST_P(SymmetrySideSweep, PicksCorrectSideAndSuppressesMirror) {
  const double bearing_deg = GetParam();
  const auto r =
      run_resolution(bearing_deg, std::uint64_t(7000 + bearing_deg));
  const Side want = std::sin(deg2rad(bearing_deg)) > 0.0 ? Side::kFront
                                                         : Side::kBack;
  EXPECT_EQ(r.side, want) << "bearing " << bearing_deg;
  EXPECT_GT(r.truth_value, 20.0 * r.mirror_value) << "bearing " << bearing_deg;
}

// The quarter-wavelength row gap keeps the decision well-posed across
// the full sweep, including broadside.
INSTANTIATE_TEST_SUITE_P(Bearings, SymmetrySideSweep,
                         ::testing::Values(30.0, 60.0, 75.0, 90.0, 120.0,
                                           150.0, -30.0, -60.0, -75.0,
                                           -90.0, -120.0, -150.0));

TEST(SymmetryTest, HalfWavelengthGapDegeneratesNearBroadside) {
  // Documents why the production geometry uses a lambda/4 row gap: at
  // a lambda/2 gap the +/-theta extended steering vectors coincide as
  // |sin(theta)| -> 1, so a broadside source cannot be sided.
  PlacedArray pa(ArrayGeometry::rectangular(8, kLambda / 2, kLambda / 2),
                 {0, 0}, 0.0);
  const auto elements = all16();
  const auto front = pa.steering_subset(deg2rad(90.0), kLambda, elements);
  const auto back = pa.steering_subset(deg2rad(-90.0), kLambda, elements);
  double diff = 0.0;
  for (std::size_t i = 0; i < front.size(); ++i)
    diff += std::abs(front[i] - back[i]);
  EXPECT_LT(diff, 1e-9);
  // Whereas the lambda/4 gap separates them by a full pi per off-row
  // element.
  const auto pa4 = rect8();
  const auto f4 = pa4.steering_subset(deg2rad(90.0), kLambda, elements);
  const auto b4 = pa4.steering_subset(deg2rad(-90.0), kLambda, elements);
  double diff4 = 0.0;
  for (std::size_t i = 0; i < f4.size(); ++i) diff4 += std::abs(f4[i] - b4[i]);
  EXPECT_GT(diff4, 8.0);
}

TEST(SymmetryTest, ProbePowerPeaksAtSource) {
  const auto pa = rect8();
  const auto x = snapshots16(pa, deg2rad(60.0), 20, 25, 77);
  const auto r = sample_covariance(x);
  SymmetryResolver resolver(&pa, all16(), kLambda);
  EXPECT_GT(resolver.probe_power(r, deg2rad(60.0)),
            2.0 * resolver.probe_power(r, deg2rad(-60.0)));
  EXPECT_GT(resolver.probe_power(r, deg2rad(60.0)),
            5.0 * resolver.probe_power(r, deg2rad(150.0)));
}

TEST(SymmetryTest, CovarianceSizeMismatchThrows) {
  const auto pa = rect8();
  SymmetryResolver resolver(&pa, all16(), kLambda);
  AoaSpectrum spec(720);
  EXPECT_THROW(resolver.probe_power(linalg::CMatrix(8, 8), 0.0),
               std::invalid_argument);
}

TEST(SymmetryTest, AmbiguousSpectrumLeftUntouched) {
  // A flat (peakless) spectrum gives no evidence: resolver must not
  // suppress anything.
  const auto pa = rect8();
  AoaSpectrum flat(720);
  for (std::size_t i = 0; i < flat.bins(); ++i) flat[i] = 1.0;
  SymmetryResolver resolver(&pa, all16(), kLambda);
  linalg::CMatrix r = linalg::CMatrix::identity(16);
  const Side side = resolver.resolve(r, &flat);
  EXPECT_EQ(side, Side::kAmbiguous);
  for (std::size_t i = 0; i < flat.bins(); ++i) EXPECT_DOUBLE_EQ(flat[i], 1.0);
}

}  // namespace
}  // namespace arraytrack::aoa
