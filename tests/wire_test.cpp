// Tests for the AP-to-server wire format, across both header
// generations: v1 (versioned, per-AP sequence numbers) and legacy v0
// (accepted only behind the accept_legacy_v0 compat flag).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <random>

#include "aoa/covariance.h"
#include "phy/wire.h"

namespace arraytrack::phy {
namespace {

FrameCapture make_frame(std::size_t elements, std::size_t snapshots,
                        unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1e-4);  // realistic mW-scale IQ
  FrameCapture f;
  f.timestamp_s = 12.345;
  f.snr_db = 27.5;
  f.client_id = 9;
  f.source_ap = 3;
  f.wire_seq = 7700000000001ull;  // exercises the full u64 width
  f.samples = linalg::CMatrix(elements, snapshots);
  f.element_ids.resize(elements);
  for (std::size_t m = 0; m < elements; ++m) {
    f.element_ids[m] = m;
    for (std::size_t k = 0; k < snapshots; ++k)
      f.samples(m, k) = cplx{g(rng), g(rng)};
  }
  return f;
}

/// Both header generations, with decode permissive enough to read its
/// own output (v0 needs the compat flag).
WireFormat wire_for_version(int version) {
  WireFormat wire;
  wire.version = version;
  wire.accept_legacy_v0 = (version == 0);
  return wire;
}

TEST(WireTest, EncodedSizeMatchesPaperAccounting) {
  // (10 samples)(32 bits/sample)(8 radios) = 320 bytes of payload; the
  // header adds a fixed overhead (60 bytes for v1, 44 for legacy v0 —
  // v1 carries version, AP id and sequence number).
  WireFormat wire;  // 16 bits per rail = 32 bits per sample
  const std::size_t payload = 8 * 10 * 4;
  const std::size_t size = wire.encoded_size(8, 10);
  EXPECT_EQ(size, 60 + 4 * 8 + payload);
  WireFormat legacy = wire_for_version(0);
  EXPECT_EQ(legacy.encoded_size(8, 10), 44 + 4 * 8 + payload);
  // Tt at the paper's 1 Mbit/s effective link: payload alone is 2.56 ms.
  EXPECT_NEAR(wire.serialization_s(8, 10, 1e6),
              double(size) * 8.0 / 1e6, 1e-12);
  EXPECT_GT(wire.serialization_s(8, 10, 1e6), 2.56e-3);
}

class WireVersionSweep : public ::testing::TestWithParam<int> {};

TEST_P(WireVersionSweep, RoundTripMetadata) {
  WireFormat wire = wire_for_version(GetParam());
  const auto f = make_frame(16, 10, 1);
  const auto bytes = wire.encode(f);
  ASSERT_EQ(bytes.size(), wire.encoded_size(16, 10));
  EXPECT_EQ(WireFormat::header_version(bytes.data(), bytes.size()),
            GetParam());
  const auto g = wire.decode(bytes);
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->timestamp_s, f.timestamp_s);
  EXPECT_DOUBLE_EQ(g->snr_db, f.snr_db);
  EXPECT_EQ(g->client_id, f.client_id);
  EXPECT_EQ(g->element_ids, f.element_ids);
  ASSERT_EQ(g->samples.rows(), 16u);
  ASSERT_EQ(g->samples.cols(), 10u);
  if (GetParam() == 0) {
    // Legacy records carry no provenance.
    EXPECT_EQ(g->source_ap, 0u);
    EXPECT_EQ(g->wire_seq, 0u);
  } else {
    EXPECT_EQ(g->source_ap, f.source_ap);
    EXPECT_EQ(g->wire_seq, f.wire_seq);
  }
}

TEST_P(WireVersionSweep, TruncationAtEveryLengthIsRejected) {
  WireFormat wire = wire_for_version(GetParam());
  const auto bytes = wire.encode(make_frame(4, 6, 11));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + long(len));
    EXPECT_FALSE(wire.decode(cut).has_value()) << "length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Versions, WireVersionSweep, ::testing::Values(0, 1));

TEST(WireTest, LegacyV0RequiresCompatFlag) {
  WireFormat writer = wire_for_version(0);
  const auto bytes = writer.encode(make_frame(8, 10, 21));
  WireFormat strict;  // default: v1 decode, no legacy
  EXPECT_FALSE(strict.decode(bytes).has_value());
  EXPECT_EQ(WireFormat::header_version(bytes.data(), bytes.size()), 0);
  strict.accept_legacy_v0 = true;
  EXPECT_TRUE(strict.decode(bytes).has_value());
}

TEST(WireTest, UnknownFutureVersionIsRejected) {
  WireFormat wire;
  auto bytes = wire.encode(make_frame(4, 5, 22));
  for (std::uint32_t v : {0u, 2u, 7u, 0xffffffffu}) {
    auto b = bytes;
    for (int i = 0; i < 4; ++i) b[4 + std::size_t(i)] = std::uint8_t(v >> (8 * i));
    EXPECT_FALSE(wire.decode(b).has_value()) << "version " << v;
    if (v != 0xffffffffu) {
      EXPECT_EQ(WireFormat::header_version(b.data(), b.size()), int(v));
    }
  }
}

class WireBitDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WireBitDepthSweep, QuantizationErrorBounded) {
  WireFormat wire;
  wire.bits_per_rail = GetParam();
  const auto f = make_frame(8, 10, 2);
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  // Worst-case error is half an LSB of the shared full scale.
  double peak = 0.0;
  for (std::size_t m = 0; m < 8; ++m)
    for (std::size_t k = 0; k < 10; ++k) {
      peak = std::max(peak, std::abs(f.samples(m, k).real()));
      peak = std::max(peak, std::abs(f.samples(m, k).imag()));
    }
  const double lsb = peak / double((1l << (wire.bits_per_rail - 1)) - 1);
  for (std::size_t m = 0; m < 8; ++m)
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_LE(std::abs(g->samples(m, k).real() - f.samples(m, k).real()),
                0.51 * lsb);
      EXPECT_LE(std::abs(g->samples(m, k).imag() - f.samples(m, k).imag()),
                0.51 * lsb);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, WireBitDepthSweep,
                         ::testing::Values(8, 12, 16, 24));

TEST(WireTest, SixteenBitPreservesCovariance) {
  // The covariance (what MUSIC consumes) must survive 16-bit transport
  // essentially unchanged.
  WireFormat wire;
  const auto f = make_frame(8, 10, 3);
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  const auto r1 = aoa::sample_covariance(f.samples);
  const auto r2 = aoa::sample_covariance(g->samples);
  EXPECT_LT(r1.max_abs_diff(r2), 1e-4 * r1.frobenius_norm());
}

TEST(WireTest, RejectsMalformedInput) {
  WireFormat wire;
  EXPECT_FALSE(wire.decode({}).has_value());
  EXPECT_FALSE(wire.decode(std::vector<std::uint8_t>(16, 0)).has_value());
  auto bytes = wire.encode(make_frame(4, 5, 4));
  bytes[0] ^= 0xff;  // bad magic
  EXPECT_FALSE(wire.decode(bytes).has_value());
  bytes[0] ^= 0xff;
  bytes.pop_back();  // truncated
  EXPECT_FALSE(wire.decode(bytes).has_value());
  bytes.push_back(0);
  bytes.push_back(0);  // trailing junk
  EXPECT_FALSE(wire.decode(bytes).has_value());
}

// The service ingest path feeds decode() attacker-controlled bytes, so
// it must never crash, over-allocate from a lying header, or hand the
// pipeline non-finite values — for ANY input. Sanity contract for a
// frame decode() does accept: plausible shape and all-finite fields.
void expect_sane(const std::optional<FrameCapture>& g) {
  if (!g) return;
  ASSERT_GE(g->samples.rows(), 1u);
  ASSERT_LE(g->samples.rows(), 1024u);
  ASSERT_GE(g->samples.cols(), 1u);
  ASSERT_LE(g->samples.cols(), 65536u);
  ASSERT_EQ(g->element_ids.size(), g->samples.rows());
  ASSERT_TRUE(std::isfinite(g->timestamp_s));
  ASSERT_TRUE(std::isfinite(g->snr_db));
  for (std::size_t m = 0; m < g->samples.rows(); ++m)
    for (std::size_t k = 0; k < g->samples.cols(); ++k) {
      ASSERT_TRUE(std::isfinite(g->samples(m, k).real()));
      ASSERT_TRUE(std::isfinite(g->samples(m, k).imag()));
    }
}

TEST(WireTest, CorruptionAtEveryOffsetNeverCrashes) {
  // Both generations, with legacy decoding enabled so the v0 parser is
  // also exercised against corrupted headers.
  for (int version : {0, 1}) {
    WireFormat wire = wire_for_version(version);
    const auto bytes = wire.encode(make_frame(4, 6, 12));
    std::mt19937_64 rng(99);
    for (std::size_t off = 0; off < bytes.size(); ++off) {
      // Random bit flip plus a whole-byte overwrite at every offset:
      // the header fields (magic, version, shape, bits, seq, scale,
      // timestamp) all get hit.
      auto flipped = bytes;
      flipped[off] ^= std::uint8_t(1u << (rng() % 8));
      expect_sane(wire.decode(flipped));
      auto stomped = bytes;
      stomped[off] = std::uint8_t(rng());
      expect_sane(wire.decode(stomped));
    }
  }
}

TEST(WireTest, ImpossibleHeaderShapesAreRejected) {
  WireFormat wire;
  auto bytes = wire.encode(make_frame(4, 6, 13));
  auto put32 = [&](std::size_t off, std::uint32_t v) {
    auto b = bytes;
    for (int i = 0; i < 4; ++i) b[off + std::size_t(i)] = std::uint8_t(v >> (8 * i));
    return b;
  };
  // v1 header: elements at offset 8, snapshots at 12, bits at 16.
  // elements: zero, over the cap, and huge enough that a naive
  // size computation would overflow.
  for (std::uint32_t v : {0u, 1025u, 0xffffffffu})
    EXPECT_FALSE(wire.decode(put32(8, v)).has_value()) << "elements " << v;
  // snapshots: zero and over the cap.
  for (std::uint32_t v : {0u, 65537u, 0xfffffff0u})
    EXPECT_FALSE(wire.decode(put32(12, v)).has_value()) << "snapshots " << v;
  // bits per rail: below 2, above 32.
  for (std::uint32_t v : {0u, 1u, 33u, 64u, 0x80000000u})
    EXPECT_FALSE(wire.decode(put32(16, v)).has_value()) << "bits " << v;
}

TEST(WireTest, NonFiniteHeaderFieldsAreRejected) {
  WireFormat wire;
  const auto base = wire.encode(make_frame(2, 3, 14));
  auto putf64 = [&](std::size_t off, double v) {
    auto b = base;
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) b[off + std::size_t(i)] = std::uint8_t(bits >> (8 * i));
    return b;
  };
  // v1 header: timestamp at offset 32, snr at 40, scale at 48.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double v : {nan, inf, -inf}) {
    EXPECT_FALSE(wire.decode(putf64(32, v)).has_value()) << "timestamp";
    EXPECT_FALSE(wire.decode(putf64(40, v)).has_value()) << "snr";
    EXPECT_FALSE(wire.decode(putf64(48, v)).has_value()) << "scale";
  }
  // A zero or negative scale is equally impossible from encode().
  EXPECT_FALSE(wire.decode(putf64(48, 0.0)).has_value());
  EXPECT_FALSE(wire.decode(putf64(48, -1.0)).has_value());
}

TEST(WireTest, RandomGarbageBuffersNeverCrash) {
  WireFormat wire;
  wire.accept_legacy_v0 = true;  // exercise both parsers
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng() % 512);
    for (auto& b : junk) b = std::uint8_t(rng());
    if (junk.size() >= 4) {
      // Give two thirds of the trials a valid magic so decode gets
      // past the first gate and exercises the header validation of
      // both generations.
      if (trial % 3 == 0) {
        junk[0] = 0x32; junk[1] = 0x52; junk[2] = 0x54; junk[3] = 0x41;  // v1
      } else if (trial % 3 == 1) {
        junk[0] = 0x31; junk[1] = 0x52; junk[2] = 0x54; junk[3] = 0x41;  // v0
      }
    }
    expect_sane(wire.decode(junk));
  }
}

TEST(WireTest, ZeroFrameSurvives) {
  WireFormat wire;
  FrameCapture f;
  f.samples = linalg::CMatrix(2, 3);
  f.element_ids = {0, 1};
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  for (std::size_t m = 0; m < 2; ++m)
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(g->samples(m, k), (cplx{0, 0}));
}

}  // namespace
}  // namespace arraytrack::phy
