// Tests for the AP-to-server wire format.
#include <gtest/gtest.h>

#include <random>

#include "aoa/covariance.h"
#include "phy/wire.h"

namespace arraytrack::phy {
namespace {

FrameCapture make_frame(std::size_t elements, std::size_t snapshots,
                        unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1e-4);  // realistic mW-scale IQ
  FrameCapture f;
  f.timestamp_s = 12.345;
  f.snr_db = 27.5;
  f.client_id = 9;
  f.samples = linalg::CMatrix(elements, snapshots);
  f.element_ids.resize(elements);
  for (std::size_t m = 0; m < elements; ++m) {
    f.element_ids[m] = m;
    for (std::size_t k = 0; k < snapshots; ++k)
      f.samples(m, k) = cplx{g(rng), g(rng)};
  }
  return f;
}

TEST(WireTest, EncodedSizeMatchesPaperAccounting) {
  // (10 samples)(32 bits/sample)(8 radios) = 320 bytes of payload; the
  // header adds a fixed overhead.
  WireFormat wire;  // 16 bits per rail = 32 bits per sample
  const std::size_t payload = 8 * 10 * 4;
  const std::size_t size = wire.encoded_size(8, 10);
  EXPECT_EQ(size, 44 + 4 * 8 + payload);
  // Tt at the paper's 1 Mbit/s effective link: payload alone is 2.56 ms.
  EXPECT_NEAR(wire.serialization_s(8, 10, 1e6),
              double(size) * 8.0 / 1e6, 1e-12);
  EXPECT_GT(wire.serialization_s(8, 10, 1e6), 2.56e-3);
}

TEST(WireTest, RoundTripMetadata) {
  WireFormat wire;
  const auto f = make_frame(16, 10, 1);
  const auto bytes = wire.encode(f);
  ASSERT_EQ(bytes.size(), wire.encoded_size(16, 10));
  const auto g = wire.decode(bytes);
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->timestamp_s, f.timestamp_s);
  EXPECT_DOUBLE_EQ(g->snr_db, f.snr_db);
  EXPECT_EQ(g->client_id, f.client_id);
  EXPECT_EQ(g->element_ids, f.element_ids);
  ASSERT_EQ(g->samples.rows(), 16u);
  ASSERT_EQ(g->samples.cols(), 10u);
}

class WireBitDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WireBitDepthSweep, QuantizationErrorBounded) {
  WireFormat wire;
  wire.bits_per_rail = GetParam();
  const auto f = make_frame(8, 10, 2);
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  // Worst-case error is half an LSB of the shared full scale.
  double peak = 0.0;
  for (std::size_t m = 0; m < 8; ++m)
    for (std::size_t k = 0; k < 10; ++k) {
      peak = std::max(peak, std::abs(f.samples(m, k).real()));
      peak = std::max(peak, std::abs(f.samples(m, k).imag()));
    }
  const double lsb = peak / double((1l << (wire.bits_per_rail - 1)) - 1);
  for (std::size_t m = 0; m < 8; ++m)
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_LE(std::abs(g->samples(m, k).real() - f.samples(m, k).real()),
                0.51 * lsb);
      EXPECT_LE(std::abs(g->samples(m, k).imag() - f.samples(m, k).imag()),
                0.51 * lsb);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, WireBitDepthSweep,
                         ::testing::Values(8, 12, 16, 24));

TEST(WireTest, SixteenBitPreservesCovariance) {
  // The covariance (what MUSIC consumes) must survive 16-bit transport
  // essentially unchanged.
  WireFormat wire;
  const auto f = make_frame(8, 10, 3);
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  const auto r1 = aoa::sample_covariance(f.samples);
  const auto r2 = aoa::sample_covariance(g->samples);
  EXPECT_LT(r1.max_abs_diff(r2), 1e-4 * r1.frobenius_norm());
}

TEST(WireTest, RejectsMalformedInput) {
  WireFormat wire;
  EXPECT_FALSE(wire.decode({}).has_value());
  EXPECT_FALSE(wire.decode(std::vector<std::uint8_t>(16, 0)).has_value());
  auto bytes = wire.encode(make_frame(4, 5, 4));
  bytes[0] ^= 0xff;  // bad magic
  EXPECT_FALSE(wire.decode(bytes).has_value());
  bytes[0] ^= 0xff;
  bytes.pop_back();  // truncated
  EXPECT_FALSE(wire.decode(bytes).has_value());
  bytes.push_back(0);
  bytes.push_back(0);  // trailing junk
  EXPECT_FALSE(wire.decode(bytes).has_value());
}

TEST(WireTest, ZeroFrameSurvives) {
  WireFormat wire;
  FrameCapture f;
  f.samples = linalg::CMatrix(2, 3);
  f.element_ids = {0, 1};
  const auto g = wire.decode(wire.encode(f));
  ASSERT_TRUE(g.has_value());
  for (std::size_t m = 0; m < 2; ++m)
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(g->samples(m, k), (cplx{0, 0}));
}

}  // namespace
}  // namespace arraytrack::phy
