// Tests for collision SIC (paper 4.3.5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/sic.h"

namespace arraytrack::core {
namespace {

aoa::AoaSpectrum peak_at(double center_deg, double height,
                         std::size_t bins = 720, double width_deg = 4.0) {
  aoa::AoaSpectrum s(bins);
  const double c = deg2rad(center_deg);
  const double w = deg2rad(width_deg);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = aoa::bearing_distance(s.bin_bearing(i), c);
    s[i] = height * std::exp(-0.5 * (d / w) * (d / w));
  }
  return s;
}

TEST(SicTest, RemovesFirstPacketBearings) {
  // Packet 1 arrives from 50 deg; packet 2 from 120 deg. The second
  // window's spectrum contains both.
  const auto first = peak_at(50, 1.0);
  auto contaminated = peak_at(50, 0.9);
  contaminated += peak_at(120, 1.0);
  const auto cleaned = sic_cancel(first, contaminated);
  const auto peaks = cleaned.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 120.0, 1.5);
}

TEST(SicTest, MultipleFirstPacketPeaks) {
  // Packet 1 has a direct + reflection bearing; both must go.
  auto first = peak_at(50, 1.0);
  first += peak_at(200, 0.7);
  auto contaminated = peak_at(50, 0.8);
  contaminated += peak_at(200, 0.6);
  contaminated += peak_at(120, 1.0);
  const auto cleaned = sic_cancel(first, contaminated);
  const auto peaks = cleaned.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 120.0, 1.5);
}

TEST(SicTest, DoesNotCarveSecondPacketWhenNoMatch) {
  // Packet 1's bearing does not appear in the second spectrum at all
  // (its frame ended before the second preamble): nothing removed.
  const auto first = peak_at(50, 1.0);
  auto contaminated = peak_at(120, 1.0);
  const auto cleaned = sic_cancel(first, contaminated);
  const auto peaks = cleaned.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 120.0, 1.5);
}

TEST(SicTest, CloseBearingsWithinToleranceCancelled) {
  SicOptions opt;
  opt.match_tolerance_rad = deg2rad(5.0);
  const auto first = peak_at(50, 1.0);
  auto contaminated = peak_at(53, 0.9);  // same emitter, slight shift
  contaminated += peak_at(120, 1.0);
  const auto cleaned = sic_cancel(first, contaminated, opt);
  EXPECT_EQ(cleaned.find_peaks(0.1).size(), 1u);
}

TEST(SicTest, OutputNormalized) {
  const auto first = peak_at(50, 1.0);
  auto contaminated = peak_at(50, 5.0);
  contaminated += peak_at(120, 2.0);
  const auto cleaned = sic_cancel(first, contaminated);
  EXPECT_NEAR(cleaned.max_value(), 1.0, 1e-9);
}

TEST(PreambleCollisionTest, PaperNumbers) {
  // "For collision between two packets of 1000 bytes each, the chance
  // of preamble colliding is 0.6%." 1000 B at 11 Mbit/s has ~727 us
  // airtime; 2 x 16 us preamble overlap window / airtime fits 0.6%
  // only at a particular rate — verify the formula's shape instead:
  // monotone decreasing in packet size, increasing in preamble length.
  const double p1 =
      preamble_collision_probability(1000, 11e6);
  const double p2 = preamble_collision_probability(2000, 11e6);
  EXPECT_GT(p1, p2);
  EXPECT_NEAR(p1, 16e-6 / (1000.0 * 8.0 / 11e6), 1e-12);
  // At 1000 B / ~22 Mbit/s the number matches the paper's 0.6% within
  // rounding: airtime 364 us, 16/364 = 4.4%... the paper counts only
  // same-start alignment; our model reports the raw ratio. Shape checks:
  EXPECT_LT(p2, p1);
  EXPECT_LE(preamble_collision_probability(1, 1e3), 1.0);  // clamped
}

}  // namespace
}  // namespace arraytrack::core
