// Tests for the two-pass phase calibration (paper eqs. 9-12).
#include <gtest/gtest.h>

#include "array/calibration.h"

namespace arraytrack::array {
namespace {

TEST(RadioBankTest, OffsetsFixedAndDeterministic) {
  RadioBank a(8, 5), b(8, 5), c(8, 6);
  EXPECT_EQ(a.true_offsets(), b.true_offsets());
  EXPECT_NE(a.true_offsets(), c.true_offsets());
  for (double o : a.true_offsets()) {
    EXPECT_GE(o, 0.0);
    EXPECT_LT(o, kTwoPi);
  }
}

TEST(RadioBankTest, DownconvertAppliesOffset) {
  RadioBank bank(4, 9);
  const cplx in{1.0, 0.0};
  for (std::size_t i = 0; i < 4; ++i) {
    const cplx out = bank.downconvert(i, in);
    EXPECT_NEAR(wrap_2pi(std::arg(out)), wrap_2pi(bank.true_offsets()[i]),
                1e-12);
    EXPECT_NEAR(std::abs(out), 1.0, 1e-12);
  }
}

TEST(CalibrationTest, SinglePassContaminatedByExternalPaths) {
  RadioBank bank(8, 11);
  CalibrationRig::Options opt;
  opt.external_path_imbalance_rad = 0.3;
  CalibrationRig rig(&bank, opt, 21);
  const auto pass1 = rig.measure(false);
  // A single pass is off by the external path imbalance.
  double worst = 0.0;
  for (std::size_t i = 1; i < bank.size(); ++i) {
    const double truth =
        wrap_pi(bank.true_offsets()[i] - bank.true_offsets()[0]);
    worst = std::max(worst, std::abs(wrap_pi(pass1[i] - truth)));
  }
  EXPECT_NEAR(worst, std::abs(rig.true_imbalance()), 1e-9);
}

TEST(CalibrationTest, TwoPassCancelsImperfectionExactly) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    RadioBank bank(8, 100 + seed);
    CalibrationRig::Options opt;
    opt.external_path_imbalance_rad = 0.4;
    CalibrationRig rig(&bank, opt, 200 + seed);
    PhaseCalibration cal(rig.calibrate());
    // Equations 11-12: the combination recovers the internal offsets
    // exactly (zero measurement noise here).
    EXPECT_LT(cal.max_residual(bank), 1e-9) << "seed " << seed;
    // And the rig's imbalance estimate matches its hidden truth.
    EXPECT_NEAR(rig.estimated_imbalance(), rig.true_imbalance(), 1e-9);
  }
}

TEST(CalibrationTest, NoiseDegradesGracefully) {
  RadioBank bank(8, 31);
  CalibrationRig::Options opt;
  opt.external_path_imbalance_rad = 0.3;
  opt.measurement_noise_rad = 0.02;
  CalibrationRig rig(&bank, opt, 33);
  PhaseCalibration cal(rig.calibrate());
  // Residual bounded by a few times the per-measurement noise.
  EXPECT_LT(cal.max_residual(bank), 0.1);
}

TEST(CalibrationTest, ApplyRemovesOffsets) {
  RadioBank bank(4, 55);
  CalibrationRig rig(&bank, {}, 56);
  PhaseCalibration cal(rig.calibrate());

  // A wavefront with all-equal phase, downconverted then calibrated,
  // must come out phase-aligned up to the common radio-0 reference.
  linalg::CVector rf(4);
  for (std::size_t i = 0; i < 4; ++i) rf[i] = cplx{1.0, 0.0};
  const auto down = bank.downconvert(rf);
  const auto fixed = cal.apply(down);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_NEAR(wrap_pi(std::arg(fixed[i]) - std::arg(fixed[0])), 0.0, 1e-9);
}

TEST(CalibrationTest, ApplySizeMismatchThrows) {
  PhaseCalibration cal(std::vector<double>{0.0, 0.1});
  EXPECT_THROW(cal.apply(linalg::CVector(3)), std::invalid_argument);
}

}  // namespace
}  // namespace arraytrack::array
