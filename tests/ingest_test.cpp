// Deterministic stress tests for the sharded wire-ingest front-end.
//
// The load-bearing properties: (a) the admitted fix set is
// byte-identical for any decoder-thread count under the virtual clock,
// (b) per-AP sequence validation rejects duplicates and replays and
// counts gaps, (c) ring overflow drops oldest and is accounted, and
// (d) every offered record ends in exactly one terminal counter:
//   wire_records_in == wire_accepted + decode_errors
//                      + wire_version_rejected + wire_duplicates
//                      + wire_replays + ring_dropped.
// The concurrent cases also run under the ThreadSanitizer tier of
// tools/check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "phy/wire.h"
#include "service/service.h"
#include "service/stats.h"

namespace arraytrack::service {
namespace {

using geom::Vec2;
using Record = LocationService::TimedWireRecord;

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

/// Fresh system per run: identical seeds => identical channel/noise
/// draws, which is what lets fix sets be compared byte for byte.
std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

const std::vector<Vec2>& client_sites() {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  return sites;
}

/// Transmits once and encodes every AP's newest capture as a timed
/// record — what a real deployment's APs would put on the wire.
std::vector<Record> encode_event(core::System& sys,
                                 const phy::WireFormat& wire, double t,
                                 int client, Vec2 pos) {
  sys.transmit(client, pos, t);
  std::vector<Record> out;
  for (std::size_t a = 0; a < sys.num_aps(); ++a)
    out.push_back({t, a, wire.encode(sys.ap(int(a)).buffer().newest())});
  return out;
}

void append(std::vector<Record>& dst, std::vector<Record> src) {
  for (auto& r : src) dst.push_back(std::move(r));
}

/// `frames` transmits per client, staggered so clients interleave.
std::vector<Record> wire_schedule(core::System& sys, int clients, int frames,
                                  double gap_s) {
  phy::WireFormat wire;
  std::vector<Record> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c)
      append(out, encode_event(sys, wire, 0.1 + gap_s * i + 0.011 * c, c,
                               client_sites()[std::size_t(c)]));
  return out;
}

ServiceOptions virtual_options(std::size_t decoder_threads) {
  ServiceOptions opt;
  opt.workers = 2;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  opt.decoder_threads = decoder_threads;
  return opt;
}

/// The ingest accounting invariant: every offered record ends in
/// exactly one terminal counter.
void expect_accounted(const ServiceStats& st) {
  EXPECT_EQ(st.wire_records_in.load(),
            st.wire_accepted.load() + st.decode_errors.load() +
                st.wire_version_rejected.load() + st.wire_duplicates.load() +
                st.wire_replays.load() + st.ring_dropped.load());
}

void expect_identical_fixes(const ServiceReport& a, const ServiceReport& b) {
  ASSERT_EQ(a.fixes.size(), b.fixes.size());
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    EXPECT_EQ(a.fixes[i].client_id, b.fixes[i].client_id);
    EXPECT_EQ(a.fixes[i].seq, b.fixes[i].seq);
    EXPECT_EQ(a.fixes[i].frame_time_s, b.fixes[i].frame_time_s);
    // Exact double equality is the contract, not a tolerance: the
    // admitted job set and the pipeline are both deterministic.
    EXPECT_EQ(a.fixes[i].position.x, b.fixes[i].position.x);
    EXPECT_EQ(a.fixes[i].position.y, b.fixes[i].position.y);
    EXPECT_EQ(a.fixes[i].smoothed.x, b.fixes[i].smoothed.x);
    EXPECT_EQ(a.fixes[i].smoothed.y, b.fixes[i].smoothed.y);
    EXPECT_EQ(a.fixes[i].likelihood, b.fixes[i].likelihood);
  }
}

TEST(IngestTest, ByteIdenticalFixesAcrossDecoderThreadCounts) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 3, 5, 0.2);

  std::vector<ServiceReport> reports;
  for (std::size_t decoders : {1u, 2u, 8u}) {
    auto sys = make_system(&plan);
    LocationService svc(sys.get(), virtual_options(decoders));
    reports.push_back(svc.run_wire(records));
    expect_accounted(svc.stats());
    EXPECT_EQ(svc.stats().ring_dropped.load(), 0u);
    EXPECT_EQ(svc.stats().decode_errors.load(), 0u);
  }
  ASSERT_GT(reports[0].fixes.size(), 0u);
  for (std::size_t r = 1; r < reports.size(); ++r)
    expect_identical_fixes(reports[0], reports[r]);
}

TEST(IngestTest, ArrivalInterleavingDoesNotChangeFixes) {
  // Same records, adversarially reordered across APs (all of AP0's
  // records first, then AP1's, ...) while preserving each AP's own
  // arrival order — the canonical drain order must erase the
  // difference.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 2, 4, 0.15);
  auto reordered = records;
  std::stable_sort(reordered.begin(), reordered.end(),
                   [](const Record& a, const Record& b) {
                     return a.ap_index < b.ap_index;
                   });

  std::vector<ServiceReport> reports;
  const std::vector<Record>* feeds[] = {&records, &reordered};
  for (const std::vector<Record>* feed : feeds) {
    auto sys = make_system(&plan);
    LocationService svc(sys.get(), virtual_options(2));
    reports.push_back(svc.run_wire(*feed));
    expect_accounted(svc.stats());
  }
  ASSERT_GT(reports[0].fixes.size(), 0u);
  expect_identical_fixes(reports[0], reports[1]);
}

TEST(IngestTest, DuplicatesAndReplaysAreRejected) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  phy::WireFormat wire;
  const auto first = encode_event(*capture, wire, 0.1, 5, {12.0, 6.0});
  const auto second = encode_event(*capture, wire, 0.3, 5, {12.1, 6.0});
  const auto aps = std::uint64_t(capture->num_aps());

  std::vector<Record> feed = first;
  auto dup = first;  // same seq, retransmitted later
  for (auto& r : dup) r.time_s = 0.2;
  append(feed, dup);
  append(feed, second);
  auto replay = first;  // older seq after a newer one was seen
  for (auto& r : replay) r.time_s = 0.4;
  append(feed, replay);

  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(1));
  const auto rep = svc.run_wire(feed);

  const auto& st = svc.stats();
  EXPECT_EQ(st.wire_records_in.load(), 4 * aps);
  EXPECT_EQ(st.wire_duplicates.load(), aps);
  EXPECT_EQ(st.wire_replays.load(), aps);
  EXPECT_EQ(st.wire_accepted.load(), 2 * aps);
  expect_accounted(st);
  // Only the two genuine captures survive to become jobs.
  EXPECT_EQ(rep.fixes.size(), 2u);
  for (const auto& f : rep.fixes) EXPECT_EQ(f.client_id, 5);
}

TEST(IngestTest, SequenceGapsAreCountedButAccepted) {
  // Loss upstream of the server (a dropped record) shows as a forward
  // sequence jump: worth counting, wrong to reject.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  phy::WireFormat wire;
  std::vector<Record> feed = encode_event(*capture, wire, 0.1, 2, {9.0, 7.0});
  capture->transmit(2, {9.1, 7.0}, 0.3);
  for (std::size_t a = 0; a < capture->num_aps(); ++a) {
    phy::FrameCapture f = capture->ap(int(a)).buffer().newest();
    f.wire_seq += 7;  // as if 7 records were lost on this AP's link
    feed.push_back({0.3, a, wire.encode(f)});
  }
  const auto aps = std::uint64_t(capture->num_aps());

  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(1));
  const auto rep = svc.run_wire(feed);

  const auto& st = svc.stats();
  EXPECT_EQ(st.wire_gaps.load(), aps);
  EXPECT_EQ(st.wire_accepted.load(), 2 * aps);
  EXPECT_EQ(st.wire_duplicates.load(), 0u);
  EXPECT_EQ(st.wire_replays.load(), 0u);
  expect_accounted(st);
  EXPECT_EQ(rep.fixes.size(), 2u);
}

TEST(IngestTest, LegacyV0OnlyBehindCompatFlag) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  phy::WireFormat v0;
  v0.version = 0;
  const auto records = encode_event(*capture, v0, 0.2, 1, {5.0, 3.0});
  const auto aps = std::uint64_t(capture->num_aps());

  {
    // Strict deployment: unversioned records are refused as a policy
    // decision, accounted apart from corruption.
    auto sys = make_system(&plan);
    LocationService svc(sys.get(), virtual_options(2));
    const auto rep = svc.run_wire(records);
    EXPECT_EQ(svc.stats().wire_version_rejected.load(), aps);
    EXPECT_EQ(svc.stats().decode_errors.load(), 0u);
    EXPECT_EQ(svc.stats().wire_accepted.load(), 0u);
    expect_accounted(svc.stats());
    EXPECT_TRUE(rep.fixes.empty());
  }
  {
    // Migration deployment: the flag admits them, tagged as legacy,
    // with synthetic per-AP arrival-order sequence numbers.
    auto sys = make_system(&plan);
    auto opt = virtual_options(2);
    opt.wire.accept_legacy_v0 = true;
    LocationService svc(sys.get(), opt);
    const auto rep = svc.run_wire(records);
    EXPECT_EQ(svc.stats().wire_legacy_in.load(), aps);
    EXPECT_EQ(svc.stats().wire_accepted.load(), aps);
    EXPECT_EQ(svc.stats().wire_version_rejected.load(), 0u);
    expect_accounted(svc.stats());
    ASSERT_EQ(rep.fixes.size(), 1u);
    EXPECT_EQ(rep.fixes[0].client_id, 1);
  }
}

TEST(IngestTest, RingOverflowDropsOldestAndIsCounted) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 1, 10, 0.1);  // 30 records
  const auto aps = std::uint64_t(capture->num_aps());

  auto sys = make_system(&plan);
  auto opt = virtual_options(1);
  opt.shards = 1;                // everything lands in one ring
  opt.ingest_ring_capacity = 4;  // far smaller than the burst
  LocationService svc(sys.get(), opt);
  const auto rep = svc.run_wire(records);

  const auto& st = svc.stats();
  EXPECT_EQ(st.wire_records_in.load(), 10 * aps);
  EXPECT_EQ(st.wire_accepted.load(), 4u);
  EXPECT_EQ(st.ring_dropped.load(), 10 * aps - 4u);
  expect_accounted(st);
  // Drop-oldest: the survivors are the newest records, so the fixes
  // that do come out are for the newest frame times.
  ASSERT_GT(rep.fixes.size(), 0u);
  for (const auto& f : rep.fixes) EXPECT_GT(f.frame_time_s, 0.8);
}

TEST(IngestTest, PerClientFifoWithConcurrentDecodersAndWorkers) {
  // Concurrent decoder threads, claim-contended shards, many workers:
  // each client's fixes must still be emitted in frame order. Under
  // the TSan tier this is a race test, not just an ordering test.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 6, 0.08);

  auto sys = make_system(&plan);
  auto opt = virtual_options(8);
  opt.workers = 8;
  opt.shards = 4;
  opt.virtual_cost_s = 0.05;
  LocationService svc(sys.get(), opt);
  svc.start();
  svc.ingest_wire(records);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();  // emission order
  svc.stop();
  expect_accounted(svc.stats());

  ASSERT_GT(fixes.size(), 0u);
  std::map<int, std::uint64_t> last_seq;
  std::map<int, double> last_time;
  for (const auto& f : fixes) {
    if (last_seq.count(f.client_id)) {
      EXPECT_LT(last_seq[f.client_id], f.seq)
          << "client " << f.client_id << " fixes out of order";
      EXPECT_LE(last_time[f.client_id], f.frame_time_s);
    }
    last_seq[f.client_id] = f.seq;
    last_time[f.client_id] = f.frame_time_s;
  }
}

TEST(IngestTest, EveryOfferedRecordIsAccountedExactlyOnce) {
  // A hostile mix on one feed: valid v1 traffic, corrupt bytes,
  // truncations, unversioned v0, duplicates — all concurrent decoders.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  phy::WireFormat wire;
  std::vector<Record> feed = encode_event(*capture, wire, 0.1, 0, {12.0, 6.0});
  append(feed, encode_event(*capture, wire, 0.3, 1, {5.0, 3.0}));
  auto dup = feed;  // duplicate the entire history so far
  for (auto& r : dup) r.time_s += 0.4;
  append(feed, dup);
  feed.push_back({0.5, 0, {0x13, 0x37}});  // garbage
  auto truncated = feed[0];
  truncated.time_s = 0.55;
  truncated.bytes.resize(truncated.bytes.size() / 2);
  feed.push_back(std::move(truncated));
  phy::WireFormat v0;
  v0.version = 0;
  append(feed, encode_event(*capture, v0, 0.6, 2, {9.0, 7.0}));  // no flag
  feed.push_back({0.7, 99, feed[0].bytes});  // unknown AP index

  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(3));
  svc.run_wire(feed);

  const auto& st = svc.stats();
  EXPECT_EQ(st.wire_records_in.load(), feed.size());
  EXPECT_GT(st.wire_accepted.load(), 0u);
  EXPECT_GT(st.wire_duplicates.load(), 0u);
  EXPECT_GT(st.decode_errors.load(), 0u);
  EXPECT_GT(st.wire_version_rejected.load(), 0u);
  expect_accounted(st);
}

TEST(IngestTest, SubmitWireStillGroupsOneCallAsOneArrival) {
  // The legacy entry point must behave exactly as before: one call,
  // one arrival group, one job per client heard.
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  LocationService svc(sys.get(), virtual_options(1));
  phy::WireFormat wire;
  const Vec2 truth{11.0, 4.0};
  sys->transmit(7, truth, 0.5);
  std::vector<LocationService::WireRecord> records;
  for (std::size_t a = 0; a < sys->num_aps(); ++a)
    records.push_back({a, wire.encode(sys->ap(int(a)).buffer().newest())});

  svc.start();
  svc.submit_wire(0.5, records);
  svc.flush();
  const auto fixes = svc.bus().drain_retained();
  svc.stop();

  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].client_id, 7);
  EXPECT_LT(geom::distance(fixes[0].position, truth), 1.5);
  expect_accounted(svc.stats());
}

}  // namespace
}  // namespace arraytrack::service
