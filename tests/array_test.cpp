// Tests for array geometries, placement and steering vectors.
#include <gtest/gtest.h>

#include "array/geometry.h"
#include "array/placed_array.h"
#include "channel/channel.h"

namespace arraytrack::array {
namespace {

using geom::Vec2;

TEST(GeometryTest, UniformLinearCenteredAndSpaced) {
  const auto g = ArrayGeometry::uniform_linear(8, 0.0613);
  ASSERT_EQ(g.size(), 8u);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(g.offset(i).x - g.offset(i - 1).x, 0.0613, 1e-12);
    EXPECT_DOUBLE_EQ(g.offset(i).y, 0.0);
  }
  // Centered: mean offset ~0.
  double cx = 0;
  for (const auto& o : g.offsets()) cx += o.x;
  EXPECT_NEAR(cx, 0.0, 1e-12);
  EXPECT_NEAR(g.aperture_m(), 7 * 0.0613, 1e-12);
}

TEST(GeometryTest, RectangularTwoRows) {
  const auto g = ArrayGeometry::rectangular(8, 0.0613, 0.0613);
  ASSERT_EQ(g.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(g.offset(i).y, 0.0);
    EXPECT_DOUBLE_EQ(g.offset(i + 8).y, -0.0613);
    EXPECT_DOUBLE_EQ(g.offset(i).x, g.offset(i + 8).x);
  }
}

TEST(GeometryTest, CircularOnRadius) {
  const auto g = ArrayGeometry::circular(6, 0.1);
  ASSERT_EQ(g.size(), 6u);
  for (const auto& o : g.offsets()) EXPECT_NEAR(o.norm(), 0.1, 1e-12);
}

TEST(GeometryTest, SubsetSelects) {
  const auto g = ArrayGeometry::rectangular(4, 0.06, 0.06);
  const auto s = g.subset({0, 1, 4});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.offset(2).y, g.offset(4).y);
}

TEST(PlacedArrayTest, WorldPositionsRotateAndTranslate) {
  PlacedArray pa(ArrayGeometry::uniform_linear(2, 1.0), {10, 20}, kPi / 2);
  const auto w = pa.world_positions();
  // Offsets (-0.5, 0) and (0.5, 0) rotated 90 deg -> (0, -0.5), (0, 0.5).
  EXPECT_NEAR(w[0].x, 10.0, 1e-12);
  EXPECT_NEAR(w[0].y, 19.5, 1e-12);
  EXPECT_NEAR(w[1].x, 10.0, 1e-12);
  EXPECT_NEAR(w[1].y, 20.5, 1e-12);
}

TEST(PlacedArrayTest, BearingConversions) {
  PlacedArray pa(ArrayGeometry::uniform_linear(2, 0.06), {0, 0},
                 deg2rad(30.0));
  EXPECT_NEAR(pa.local_to_world(deg2rad(10.0)), deg2rad(40.0), 1e-12);
  EXPECT_NEAR(pa.world_to_local(deg2rad(40.0)), deg2rad(10.0), 1e-12);
  // Bearing to a world point 45 deg from origin with 30 deg orientation
  // = 15 deg local.
  EXPECT_NEAR(pa.bearing_to({1.0, 1.0}), deg2rad(15.0), 1e-12);
}

TEST(SteeringTest, UnitModulusAndFirstElementRelativePhase) {
  PlacedArray pa(ArrayGeometry::uniform_linear(8, 0.0613), {0, 0}, 0.0);
  const double lambda = 0.1226;
  const auto a = pa.steering(deg2rad(60.0), lambda);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i]), 1.0, 1e-12);
  // Half-wavelength ULA: phase step between adjacent elements is
  // pi*cos(theta).
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double step = wrap_pi(std::arg(a[i]) - std::arg(a[i - 1]));
    EXPECT_NEAR(step, kPi * std::cos(deg2rad(60.0)), 1e-9);
  }
}

TEST(SteeringTest, BroadsideIsFlat) {
  PlacedArray pa(ArrayGeometry::uniform_linear(8, 0.0613), {0, 0}, 0.0);
  const auto a = pa.steering(kPi / 2, 0.1226);  // broadside: cos = 0
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - a[0]), 0.0, 1e-9);
}

TEST(SteeringTest, MirrorSymmetryOfLinearArray) {
  // a(theta) == a(-theta) for a linear array: the ambiguity symmetry
  // removal exists to fix.
  PlacedArray pa(ArrayGeometry::uniform_linear(8, 0.0613), {0, 0}, 0.0);
  const auto ap = pa.steering(deg2rad(50.0), 0.1226);
  const auto am = pa.steering(deg2rad(-50.0), 0.1226);
  for (std::size_t i = 0; i < ap.size(); ++i)
    EXPECT_NEAR(std::abs(ap[i] - am[i]), 0.0, 1e-12);
  // The rectangular (off-row) geometry breaks the mirror symmetry.
  PlacedArray rect(ArrayGeometry::rectangular(8, 0.0613, 0.0613), {0, 0},
                   0.0);
  std::vector<std::size_t> nine = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  const auto rp = rect.steering_subset(deg2rad(50.0), 0.1226, nine);
  const auto rm = rect.steering_subset(deg2rad(-50.0), 0.1226, nine);
  double diff = 0.0;
  for (std::size_t i = 0; i < rp.size(); ++i) diff += std::abs(rp[i] - rm[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(SteeringTest, MatchesChannelFarField) {
  // The steering model must agree with the exact spherical-wave channel
  // in the far field: relative inter-element phases within a degree.
  geom::Floorplan plan({{-100, -100}, {100, 100}});
  channel::ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  channel::MultipathChannel chan(&plan, cfg);
  const double lambda = cfg.wavelength_m();

  PlacedArray pa(ArrayGeometry::uniform_linear(8, lambda / 2), {0, 0},
                 deg2rad(20.0));
  // Far enough that spherical-wavefront curvature across the 0.43 m
  // aperture stays well under the tolerance.
  const double theta_local = deg2rad(75.0);
  const double world = pa.local_to_world(theta_local);
  const geom::Vec2 tx = geom::unit_from_angle(world) * 120.0;

  const auto resp = chan.response(tx, pa.position(), pa.world_positions());
  const auto a = pa.steering(theta_local, lambda);
  // Compare phase differences relative to element 0.
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double chan_rel =
        wrap_pi(std::arg(resp.gains[i]) - std::arg(resp.gains[0]));
    const double steer_rel = wrap_pi(std::arg(a[i]) - std::arg(a[0]));
    EXPECT_NEAR(wrap_pi(chan_rel - steer_rel), 0.0, deg2rad(1.5))
        << "element " << i;
  }
}

}  // namespace
}  // namespace arraytrack::array
