// Tests for the bounded lock-free multi-producer ring that carries
// decoded wire events from the ingest decoders to the admission drain.
// The concurrent cases run under TSan in the tier-1 race pass (see
// tools/check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/mpsc_ring.h"

namespace arraytrack::core {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  // Minimum is 2: a one-cell Vyukov ring cannot distinguish full from
  // empty (the published seq equals the next position's "free" value).
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1025).capacity(), 2048u);
}

TEST(MpscRingTest, PushPopFifoSingleThread) {
  MpscRing<int> ring(8);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // starts empty
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int full = 99;
  EXPECT_FALSE(ring.try_push(full));
  EXPECT_EQ(full, 99);  // failed push leaves the value untouched
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRingTest, CapacityOneEdge) {
  // Requesting capacity 1 yields the smallest safe ring (two cells);
  // once full, a push must fail and push_overwrite must evict the
  // oldest resident, not wedge or silently overwrite.
  MpscRing<int> ring(1);
  ASSERT_EQ(ring.capacity(), 2u);
  int v = 1;
  EXPECT_TRUE(ring.try_push(v));
  v = 2;
  EXPECT_TRUE(ring.try_push(v));
  v = 3;
  EXPECT_FALSE(ring.try_push(v));
  EXPECT_EQ(v, 3);                        // failed push leaves it alone
  EXPECT_EQ(ring.push_overwrite(3), 1u);  // evicts the 1
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.try_pop(out));
  // Repeat across many laps so the per-cell lap sequencing is hit too.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.push_overwrite(i), 0u);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscRingTest, WraparoundManyLaps) {
  // Interleaved pushes and pops drive head/tail far past the capacity,
  // exercising the cell sequence-number lap arithmetic.
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) {
      std::uint64_t v = next_in;
      if (ring.try_push(v)) ++next_in;
    }
    std::uint64_t out;
    for (int i = 0; i < 2; ++i) {
      if (ring.try_pop(out)) {
        EXPECT_EQ(out, next_out++);
      }
    }
  }
  std::uint64_t out;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, next_in);
  EXPECT_GT(next_in, 1000u);  // far more traffic than capacity
}

TEST(MpscRingTest, DropOldestKeepsNewestAndCountsDrops) {
  MpscRing<int> ring(4);
  std::size_t dropped = 0;
  for (int i = 0; i < 100; ++i) dropped += ring.push_overwrite(i);
  EXPECT_EQ(dropped, 100u - ring.capacity());
  // Survivors are exactly the newest `capacity` events, in order.
  int out;
  for (int want = 96; want < 100; ++want) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRingTest, ConcurrentProducersDeliverEveryValueExactlyOnce) {
  // N producers push disjoint tagged ranges while one consumer drains;
  // a per-producer count and a global checksum prove no value is lost,
  // duplicated, or torn. Ring is large enough that nothing is dropped.
  // Spin loops yield: single-core CI boxes (and the TSan tier) must
  // not burn a scheduler timeslice per failed push/pop.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  MpscRing<std::uint64_t> ring(kProducers * kPerProducer);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = (std::uint64_t(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  std::uint64_t sum = 0, n = 0;
  std::vector<std::uint64_t> per_producer(kProducers, 0);
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::thread consumer([&] {
    std::uint64_t out;
    while (n < kProducers * kPerProducer) {
      if (!ring.try_pop(out)) {
        std::this_thread::yield();
        continue;
      }
      const std::size_t p = std::size_t(out >> 32);
      const std::uint64_t i = out & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      ASSERT_LT(i, kPerProducer);
      // Per-producer order is preserved (each producer's pushes are
      // sequenced, and the ring is FIFO per claimed slot order).
      if (per_producer[p] > 0) {
        EXPECT_GT(i, last_seen[p]);
      }
      last_seen[p] = i;
      ++per_producer[p];
      sum += out;
      ++n;
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  consumer.join();
  std::uint64_t want_sum = 0;
  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::uint64_t i = 0; i < kPerProducer; ++i)
      want_sum += (std::uint64_t(p) << 32) | i;
  EXPECT_EQ(sum, want_sum);
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(per_producer[p], kPerProducer);
}

TEST(MpscRingTest, ConcurrentProducersWithOverflowNeverLoseAccounting) {
  // Tiny ring + drop-oldest: delivered + dropped must equal offered,
  // and every delivered value must be well-formed (no torn reads).
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpscRing<std::uint64_t> ring(8);
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        dropped.fetch_add(
            ring.push_overwrite((std::uint64_t(p) << 32) | i),
            std::memory_order_relaxed);
    });
  }
  std::uint64_t delivered = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    for (;;) {
      if (ring.try_pop(out)) {
        EXPECT_LT(out >> 32, kProducers);
        EXPECT_LT(out & 0xffffffffu, kPerProducer);
        ++delivered;
      } else if (done.load(std::memory_order_acquire)) {
        while (ring.try_pop(out)) ++delivered;
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(delivered + dropped.load(), kProducers * kPerProducer);
}

TEST(MpscRingTest, DropOldestWraparoundAtMinimumCapacity) {
  // The degenerate 2-cell ring (the smallest the constructor allows)
  // is where the drop-oldest path laps itself hardest: nearly every
  // push must evict, and the evict/insert pair wraps the two cells
  // thousands of times. Concurrent producers hammer it while a
  // consumer drains; accounting must still balance exactly and no
  // value may be torn or out of range. The fix-bus subscriber rings
  // reuse this exact path (delivery/subscriber.h), so this is also
  // the delivery layer's backpressure edge case.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(2);
  ASSERT_EQ(ring.capacity(), 2u);
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        dropped.fetch_add(
            ring.push_overwrite((std::uint64_t(p) << 32) | i),
            std::memory_order_relaxed);
    });
  }
  std::uint64_t delivered = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    for (;;) {
      if (ring.try_pop(out)) {
        EXPECT_LT(out >> 32, kProducers);
        EXPECT_LT(out & 0xffffffffu, kPerProducer);
        ++delivered;
      } else if (done.load(std::memory_order_acquire)) {
        while (ring.try_pop(out)) ++delivered;
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(delivered + dropped.load(), kProducers * kPerProducer);
  // With 2 cells and 4 producers the ring must have overflowed; a
  // zero drop count would mean push_overwrite degenerated to blocking.
  EXPECT_GT(dropped.load(), 0u);
}

TEST(MpscRingTest, MoveOnlyPayload) {
  // The ingest events carry heap-owning frames; the ring must move,
  // not copy.
  MpscRing<std::unique_ptr<int>> ring(4);
  auto v = std::make_unique<int>(42);
  EXPECT_TRUE(ring.try_push(v));
  EXPECT_EQ(v, nullptr);  // moved from
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace arraytrack::core
