// Tests for the multipath channel model.
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "channel/spatial_field.h"
#include "dsp/preamble.h"

namespace arraytrack::channel {
namespace {

using geom::Floorplan;
using geom::Material;
using geom::Vec2;

Floorplan free_space() { return Floorplan({{-100, -100}, {100, 100}}); }

TEST(ChannelConfigTest, Wavelength) {
  ChannelConfig cfg;
  // 2.437 GHz -> ~12.3 cm; half wavelength ~6.15 cm (paper: 6.13 cm at
  // their exact channel).
  EXPECT_NEAR(cfg.wavelength_m(), 0.123, 0.001);
}

TEST(SpatialFieldTest, DeterministicAndBounded) {
  SpatialField f(7, 0.1);
  const double v1 = f.value({1.0, 2.0});
  SpatialField g(7, 0.1);
  EXPECT_DOUBLE_EQ(v1, g.value({1.0, 2.0}));
  for (double x = 0; x < 5.0; x += 0.37) {
    const double v = f.value({x, 2 * x});
    EXPECT_LE(std::abs(v), 2.01);
  }
}

TEST(SpatialFieldTest, DecorrelatesOverCorrelationLength) {
  SpatialField f(9, 0.1);
  // Average absolute change over ~one correlation length is O(1);
  // over a hundredth of it, tiny.
  double big = 0.0, small = 0.0;
  int n = 0;
  for (double x = 0.0; x < 10.0; x += 0.5, ++n) {
    const Vec2 p{x, 1.0};
    big += std::abs(f.value(p + Vec2{0.1, 0.0}) - f.value(p));
    small += std::abs(f.value(p + Vec2{0.001, 0.0}) - f.value(p));
  }
  EXPECT_GT(big / n, 10.0 * (small / n));
}

TEST(ChannelTest, FreeSpacePhaseProgression) {
  // Phase at a single antenna advances by -2*pi*d/lambda: two receivers
  // half a wavelength apart along the propagation axis differ by pi.
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  MultipathChannel chan(&plan, cfg);
  const double lambda = cfg.wavelength_m();
  const Vec2 tx{0, 0};
  const std::vector<Vec2> rx = {{10.0, 0.0}, {10.0 + lambda / 2.0, 0.0}};
  const auto resp = chan.response(tx, rx[0], rx);
  const double dphase =
      wrap_pi(std::arg(resp.gains[1]) - std::arg(resp.gains[0]));
  EXPECT_NEAR(std::abs(dphase), kPi, 0.01);
}

TEST(ChannelTest, FreeSpaceAmplitudeFollowsInverseDistance) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  MultipathChannel chan(&plan, cfg);
  const Vec2 tx{0, 0};
  const auto r5 = chan.response(tx, {5, 0}, std::vector<Vec2>{{5, 0}});
  const auto r10 = chan.response(tx, {10, 0}, std::vector<Vec2>{{10, 0}});
  const double ratio = std::abs(r5.gains[0]) / std::abs(r10.gains[0]);
  EXPECT_NEAR(ratio, 2.0, 0.01);
  // 6 dB per distance doubling.
  EXPECT_NEAR(r5.total_power_dbm - r10.total_power_dbm, 6.02, 0.1);
}

TEST(ChannelTest, SnrRisesWithTxPower) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.tx_power_dbm = 0.0;
  MultipathChannel chan(&plan, cfg);
  const std::vector<Vec2> rx = {{8, 0}};
  const double snr0 = chan.snr_db({0, 0}, rx[0], rx);
  chan.config().tx_power_dbm = 10.0;
  const double snr10 = chan.snr_db({0, 0}, rx[0], rx);
  EXPECT_NEAR(snr10 - snr0, 10.0, 1e-6);
}

TEST(ChannelTest, ReflectionAddsSecondComponent) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kMetal);
  ChannelConfig cfg;
  cfg.scatter_scale = 0.0;
  MultipathChannel chan(&plan, cfg);
  const auto comps = chan.components({0, 3}, {10, 4});
  ASSERT_EQ(comps.size(), 2u);
  // Strongest first; direct is shorter and lossless, so it leads.
  EXPECT_TRUE(comps[0].direct());
  EXPECT_EQ(comps[1].order, 1);
  EXPECT_GT(comps[1].length_m, comps[0].length_m);
  // Virtual source of the reflection is the mirror image of tx.
  EXPECT_NEAR(comps[1].virtual_source.x, 0.0, 1e-9);
  EXPECT_NEAR(comps[1].virtual_source.y, -3.0, 1e-9);
}

TEST(ChannelTest, AoaOfDirectPathPointsAtTransmitter) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  MultipathChannel chan(&plan, cfg);
  const Vec2 rx{0, 0};
  const Vec2 tx{3.0, 4.0};
  const auto comps = chan.components(tx, rx);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_NEAR(comps[0].aoa_rad, std::atan2(4.0, 3.0), 1e-9);
}

TEST(ChannelTest, BlockedDirectPathWeakerThanReflection) {
  // A metal wall between tx and rx, plus a mirror wall to the side:
  // the reflected path should carry more power (the S1/S2 NLOS setup
  // of the paper's section 6).
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({5, 1}, {5, 5}, Material::kMetal);     // blocker
  plan.add_wall({-50, 0}, {50, 0}, Material::kGlass);  // reflector
  ChannelConfig cfg;
  cfg.scatter_scale = 0.0;
  MultipathChannel chan(&plan, cfg);
  const auto comps = chan.components({0, 3}, {10, 3});
  ASSERT_GE(comps.size(), 2u);
  // Strongest component is NOT the direct path.
  EXPECT_FALSE(comps[0].direct());
}

TEST(ChannelTest, ScatterJitterMovesReflectionsOnly) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kCubicle);  // rough surface
  ChannelConfig cfg;
  MultipathChannel chan(&plan, cfg);
  const Vec2 rx{10, 4};
  const auto a = chan.components({0, 3.0}, rx);
  const auto b = chan.components({0.05, 3.0}, rx);  // 5 cm move
  ASSERT_EQ(a.size(), b.size());
  // Direct bearing nearly identical.
  double direct_shift = 0.0;
  bool jitter_changed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Components are sorted by power; match by order flag instead.
    if (a[i].direct()) {
      for (const auto& bc : b)
        if (bc.direct())
          direct_shift = std::abs(wrap_pi(a[i].aoa_rad - bc.aoa_rad));
    } else {
      for (const auto& bc : b)
        if (!bc.direct() &&
            std::abs(a[i].phase_jitter_rad - bc.phase_jitter_rad) > 1e-3)
          jitter_changed = true;
    }
  }
  EXPECT_LT(direct_shift, deg2rad(0.5));
  EXPECT_TRUE(jitter_changed);
}

TEST(ChannelTest, PolarizationLossReducesPower) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  cfg.polarization_mismatch_deg = 0.0;
  MultipathChannel aligned(&plan, cfg);
  cfg.polarization_mismatch_deg = 45.0;
  MultipathChannel mis45(&plan, cfg);
  cfg.polarization_mismatch_deg = 90.0;
  MultipathChannel mis90(&plan, cfg);
  const std::vector<Vec2> rx = {{8, 0}};
  const double p0 = aligned.response({0, 0}, rx[0], rx).total_power_dbm;
  const double p45 = mis45.response({0, 0}, rx[0], rx).total_power_dbm;
  const double p90 = mis90.response({0, 0}, rx[0], rx).total_power_dbm;
  // Paper 4.3.2: 45 deg -> ~3 dB, 90 deg -> 20 dB (capped).
  EXPECT_NEAR(p0 - p45, 3.0, 0.2);
  EXPECT_NEAR(p0 - p90, 20.0, 0.2);
}

TEST(ChannelTest, HeightDifferenceLengthensPaths) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  cfg.ap_height_m = 1.5;
  cfg.client_height_m = 1.5;
  MultipathChannel same(&plan, cfg);
  cfg.client_height_m = 0.0;
  MultipathChannel diff(&plan, cfg);
  const std::vector<Vec2> rx = {{5, 0}};
  const double p_same = same.response({0, 0}, rx[0], rx).total_power_dbm;
  const double p_diff = diff.response({0, 0}, rx[0], rx).total_power_dbm;
  // 3-D distance sqrt(25 + 2.25) = 5.22 m: slightly less power.
  EXPECT_LT(p_diff, p_same);
  EXPECT_NEAR(p_same - p_diff, 20.0 * std::log10(std::hypot(5.0, 1.5) / 5.0),
              0.05);
}

TEST(ChannelTest, ApplyProducesDelayedScaledWaveform) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.max_reflection_order = 0;
  MultipathChannel chan(&plan, cfg);
  dsp::PreambleGenerator gen(2);
  const auto& wf = gen.preamble();
  const std::vector<Vec2> rx = {{12, 0}};
  const auto streams = chan.apply(wf, {0, 0}, rx[0], rx);
  ASSERT_EQ(streams.size(), 1u);
  ASSERT_GE(streams[0].size(), wf.size());
  // Free space single path: output is gain * waveform (delay is
  // relative to the earliest arrival = itself, so ~0).
  const auto resp = chan.response({0, 0}, rx[0], rx);
  for (std::size_t i = 100; i < 200; ++i) {
    EXPECT_NEAR(std::abs(streams[0][i]), std::abs(resp.gains[0] * wf[i]),
                1e-9 + 1e-6 * std::abs(wf[i]));
  }
}

TEST(ChannelTest, ApplyMultipathSpreadsEnergy) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kMetal);
  plan.add_wall({-50, 30}, {50, 30}, Material::kMetal);
  ChannelConfig cfg;
  MultipathChannel chan(&plan, cfg);
  dsp::PreambleGenerator gen(2);
  const auto& wf = gen.preamble();
  const std::vector<Vec2> rx = {{20, 6}};
  const auto streams = chan.apply(wf, {0, 3}, rx[0], rx);
  // Output extends beyond the input length by the delay spread.
  EXPECT_GT(streams[0].size(), wf.size());
  // Energy after the direct copy ends (echoes) is nonzero.
  double tail = 0.0;
  for (std::size_t i = wf.size(); i < streams[0].size(); ++i)
    tail += std::norm(streams[0][i]);
  EXPECT_GT(tail, 0.0);
}

TEST(ChannelTest, NoiseFloorPowerMatchesConfig) {
  Floorplan plan = free_space();
  ChannelConfig cfg;
  cfg.noise_floor_dbm = -95.0;
  MultipathChannel chan(&plan, cfg);
  EXPECT_NEAR(chan.noise_power_mw(), std::pow(10.0, -9.5), 1e-14);
}

}  // namespace
}  // namespace arraytrack::channel
