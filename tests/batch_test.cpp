// Tests for the batched multi-client localization path.
//
// The load-bearing contract is bitwise determinism: batching changes
// memory traffic, never results. Each layer is pinned independently —
// the SoA kernels against their single-row forms at every SIMD level,
// Localizer::locate_batch against sequential locate() calls (including
// ragged batch sizes), and the LocationService fix set across batch
// widths and worker counts under the virtual clock. The service suite
// also runs under the ThreadSanitizer tier of tools/check.sh, which
// makes the multi-worker batch drain a race test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "core/simd.h"
#include "core/synthesis.h"
#include "linalg/kernels.h"
#include "service/service.h"

namespace arraytrack {
namespace {

using core::simd::ForcedLevel;
using core::simd::Level;

std::vector<Level> testable_levels() {
  std::vector<Level> out;
  for (Level lvl : {Level::kScalar, Level::kSse2, Level::kAvx2})
    if (core::simd::clamp_to_hardware(lvl) == lvl) out.push_back(lvl);
  return out;
}

// ---------------------------------------------------------------------
// Kernel layer
// ---------------------------------------------------------------------

struct KernelFixture {
  std::size_t bins = 100;
  std::size_t count = 517;  // not a multiple of any vector width
  std::vector<std::int32_t> bin0, bin1;
  std::vector<double> frac;

  explicit KernelFixture(unsigned seed = 11) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::uniform_int_distribution<std::int32_t> b(0, std::int32_t(bins) - 1);
    bin0.resize(count);
    bin1.resize(count);
    frac.resize(count);
    for (std::size_t c = 0; c < count; ++c) {
      bin0[c] = b(rng);
      bin1[c] = (bin0[c] + 1) % std::int32_t(bins);
      frac[c] = u(rng);
    }
  }

  /// Transposed table for `nrows` batch rows, values in (floor/2, 1.5).
  std::vector<double> make_table(std::size_t nrows, unsigned seed) const {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(0.025, 1.5);
    std::vector<double> t(bins * nrows);
    for (auto& v : t) v = u(rng);
    return t;
  }
};

TEST(BatchKernelsTest, GatherLerpProductBatchBitwiseMatchesSingle) {
  const KernelFixture f;
  const double floor = 0.05;
  for (Level lvl : testable_levels()) {
    ForcedLevel g(lvl);
    for (std::size_t nrows : {1u, 2u, 7u, 8u, 9u}) {
      const auto table = f.make_table(nrows, 23 + unsigned(nrows));
      std::vector<double> cells(f.count * nrows, 1.0);
      linalg::kernels::gather_lerp_product_batch(
          table.data(), f.bin0.data(), f.bin1.data(), f.frac.data(), f.count,
          nrows, floor, cells.data());

      std::vector<double> row_table(f.bins), row_cells(f.count);
      for (std::size_t r = 0; r < nrows; ++r) {
        for (std::size_t b = 0; b < f.bins; ++b)
          row_table[b] = table[b * nrows + r];
        std::fill(row_cells.begin(), row_cells.end(), 1.0);
        linalg::kernels::gather_lerp_product(row_table.data(), f.bin0.data(),
                                             f.bin1.data(), f.frac.data(),
                                             f.count, floor, row_cells.data());
        for (std::size_t c = 0; c < f.count; ++c)
          ASSERT_EQ(0, std::memcmp(&row_cells[c], &cells[c * nrows + r], 8))
              << "level " << core::simd::name(lvl) << " nrows " << nrows
              << " row " << r << " cell " << c;
      }
    }
  }
}

TEST(BatchKernelsTest, GatherLerpProductBatchChunkInvariant) {
  // Splitting the cell range across two calls must reproduce the
  // one-call result exactly (the tiled sweep relies on this).
  const KernelFixture f;
  const double floor = 0.05;
  const std::size_t nrows = 5;
  const auto table = f.make_table(nrows, 41);
  for (Level lvl : testable_levels()) {
    ForcedLevel g(lvl);
    std::vector<double> whole(f.count * nrows, 1.0);
    linalg::kernels::gather_lerp_product_batch(
        table.data(), f.bin0.data(), f.bin1.data(), f.frac.data(), f.count,
        nrows, floor, whole.data());
    for (std::size_t split : {1u, 4u, 255u, 516u}) {
      std::vector<double> parts(f.count * nrows, 1.0);
      linalg::kernels::gather_lerp_product_batch(
          table.data(), f.bin0.data(), f.bin1.data(), f.frac.data(), split,
          nrows, floor, parts.data());
      linalg::kernels::gather_lerp_product_batch(
          table.data(), f.bin0.data() + split, f.bin1.data() + split,
          f.frac.data() + split, f.count - split, nrows, floor,
          parts.data() + split * nrows);
      ASSERT_EQ(0, std::memcmp(whole.data(), parts.data(),
                               whole.size() * sizeof(double)))
          << "level " << core::simd::name(lvl) << " split " << split;
    }
  }
}

TEST(BatchKernelsTest, FirBatchBitwiseMatchesPortableLoop) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t nout = 240, ntaps = 33;
  std::vector<double> taps(ntaps);
  for (auto& v : taps) v = u(rng);
  for (Level lvl : testable_levels()) {
    ForcedLevel g(lvl);
    for (std::size_t nrows : {1u, 3u, 8u, 9u}) {
      std::vector<double> in((nout + ntaps - 1) * nrows);
      for (auto& v : in) v = u(rng);
      std::vector<double> out(nout * nrows);
      linalg::kernels::fir_batch(in.data(), nrows, nout, taps.data(), ntaps,
                                 out.data());
      for (std::size_t r = 0; r < nrows; ++r)
        for (std::size_t i = 0; i < nout; ++i) {
          // The un-batched blur loop in AoaSpectrum::convolve_gaussian:
          // plain multiply-add, strictly tap-ascending.
          double acc = 0.0;
          for (std::size_t j = 0; j < ntaps; ++j)
            acc += taps[j] * in[(i + j) * nrows + r];
          ASSERT_EQ(0, std::memcmp(&acc, &out[i * nrows + r], 8))
              << "level " << core::simd::name(lvl) << " nrows " << nrows
              << " row " << r << " sample " << i;
        }
    }
  }
}

// ---------------------------------------------------------------------
// Localizer layer
// ---------------------------------------------------------------------

aoa::AoaSpectrum spectrum_peaking_at(double bearing_rad,
                                     std::size_t bins = 360) {
  aoa::AoaSpectrum s(bins);
  const double width = deg2rad(5.0);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = aoa::bearing_distance(s.bin_bearing(i), bearing_rad);
    s[i] = std::exp(-0.5 * (d / width) * (d / width));
  }
  return s;
}

core::ApSpectrum ap_looking_at(geom::Vec2 pos, double orient,
                               geom::Vec2 target) {
  core::ApSpectrum ap;
  ap.ap_position = pos;
  ap.orientation_rad = orient;
  ap.spectrum = spectrum_peaking_at(wrap_2pi((target - pos).angle() - orient));
  return ap;
}

/// `n` localization requests over shared AP poses (one LUT group),
/// with the last row, when present, on a different pose set (a second
/// group) — so batches exercise both the shared and the split path.
std::vector<std::vector<core::ApSpectrum>> make_batch(std::size_t n) {
  std::vector<std::vector<core::ApSpectrum>> batch;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(2.0, 8.0);
  for (std::size_t j = 0; j < n; ++j) {
    const geom::Vec2 target{u(rng), u(rng)};
    if (j + 1 == n && n > 1) {
      batch.push_back({ap_looking_at({0.5, 0.5}, deg2rad(10.0), target),
                       ap_looking_at({9.5, 5.0}, deg2rad(170.0), target)});
    } else {
      batch.push_back({ap_looking_at({0, 0}, 0.0, target),
                       ap_looking_at({10, 0}, deg2rad(90.0), target),
                       ap_looking_at({5, 9.5}, deg2rad(-90.0), target)});
    }
  }
  return batch;
}

TEST(BatchLocalizerTest, LocateBatchBitwiseMatchesSequentialLocate) {
  core::LocalizerOptions opt;
  opt.threads = 1;
  const core::Localizer loc({{0, 0}, {10, 10}}, opt);
  for (Level lvl : testable_levels()) {
    ForcedLevel g(lvl);
    for (std::size_t n : {1u, 7u, 8u, 9u}) {
      const auto batch = make_batch(n);
      const auto got = loc.locate_batch(batch);
      ASSERT_EQ(got.size(), n);
      for (std::size_t j = 0; j < n; ++j) {
        const auto want = loc.locate(batch[j]);
        ASSERT_EQ(want.has_value(), got[j].has_value());
        ASSERT_TRUE(want.has_value());
        // Bitwise, not near: batching must not change results.
        EXPECT_EQ(want->position.x, got[j]->position.x)
            << "level " << core::simd::name(lvl) << " n " << n << " row " << j;
        EXPECT_EQ(want->position.y, got[j]->position.y);
        EXPECT_EQ(want->likelihood, got[j]->likelihood);
      }
    }
  }
}

TEST(BatchLocalizerTest, LocateBatchKeepsEmptyRowContract) {
  core::LocalizerOptions opt;
  opt.threads = 1;
  const core::Localizer loc({{0, 0}, {10, 10}}, opt);
  auto batch = make_batch(3);
  batch.emplace(batch.begin() + 1);  // empty row mid-batch
  batch.push_back({});
  const auto got = loc.locate_batch(batch);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_FALSE(got[1].has_value());
  EXPECT_FALSE(got[4].has_value());
  for (std::size_t j : {0u, 2u, 3u}) ASSERT_TRUE(got[j].has_value());
}

TEST(BatchLocalizerTest, HeatmapBatchMatchesHeatmap) {
  core::LocalizerOptions opt;
  opt.threads = 1;
  const core::Localizer loc({{0, 0}, {10, 10}}, opt);
  const auto batch = make_batch(4);
  std::vector<const std::vector<core::ApSpectrum>*> rows;
  for (const auto& r : batch) rows.push_back(&r);
  const auto maps = loc.heatmap_batch(rows);
  ASSERT_EQ(maps.size(), batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const auto want = loc.heatmap(batch[j]);
    ASSERT_EQ(want.cells.size(), maps[j].cells.size());
    EXPECT_EQ(0, std::memcmp(want.cells.data(), maps[j].cells.data(),
                             want.cells.size() * sizeof(double)));
  }
}

// ---------------------------------------------------------------------
// Service layer
// ---------------------------------------------------------------------

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

std::vector<core::FrameEvent> interleaved_schedule(int clients, int frames,
                                                   double gap_s) {
  static const std::vector<geom::Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  std::vector<core::FrameEvent> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c)
      out.push_back({0.1 + gap_s * i + 0.011 * c, c, sites[std::size_t(c)]});
  return out;
}

TEST(BatchServiceTest, FixesByteIdenticalAcrossBatchWidthsAndWorkers) {
  // Two contracts, asserted separately. (1) The drain width never
  // changes anything: at a fixed worker count, every fix field —
  // including virtual-clock timing — is byte-identical for batch_max
  // 1/4/16. (2) The admitted job set and its results are also
  // worker-count invariant (schedule is non-saturating, like
  // service_test's, so coalescing does not depend on capacity);
  // latencies legitimately differ across worker counts, so those are
  // excluded from the cross-worker comparison.
  const auto plan = make_plan();
  // The 0.011 s client stagger against a 0.02 s virtual cost means a
  // single worker drains multi-job batches each round, while the
  // 0.2 s round gap empties every queue before the next round.
  const auto schedule = interleaved_schedule(4, 6, 0.2);

  auto run = [&](std::size_t workers, std::size_t batch_max) {
    auto sys = make_system(&plan);
    service::ServiceOptions opt;
    opt.workers = workers;
    opt.batch_max = batch_max;
    opt.virtual_clock = true;
    opt.virtual_cost_s = 0.02;
    opt.latency_slo_s = 0.5;
    service::LocationService svc(sys.get(), opt);
    return svc.run(schedule);
  };

  std::vector<service::ServiceReport> per_worker_base;
  for (std::size_t workers : {1u, 2u, 8u}) {
    const auto base = run(workers, 1);
    ASSERT_GT(base.fixes.size(), 0u);
    for (std::size_t batch_max : {4u, 16u}) {
      const auto other = run(workers, batch_max);
      ASSERT_EQ(base.fixes.size(), other.fixes.size())
          << "workers " << workers << " batch_max " << batch_max;
      EXPECT_EQ(base.jobs_coalesced, other.jobs_coalesced);
      EXPECT_EQ(base.shed_deadline, other.shed_deadline);
      for (std::size_t i = 0; i < base.fixes.size(); ++i) {
        const auto& a = base.fixes[i];
        const auto& b = other.fixes[i];
        EXPECT_EQ(a.client_id, b.client_id);
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.frame_time_s, b.frame_time_s);
        EXPECT_EQ(a.position.x, b.position.x)
            << "workers " << workers << " batch_max " << batch_max << " fix "
            << i;
        EXPECT_EQ(a.position.y, b.position.y);
        EXPECT_EQ(a.smoothed.x, b.smoothed.x);
        EXPECT_EQ(a.smoothed.y, b.smoothed.y);
        EXPECT_EQ(a.likelihood, b.likelihood);
        EXPECT_EQ(a.latency_s, b.latency_s);
      }
    }
    per_worker_base.push_back(base);
  }

  const auto& w1 = per_worker_base.front();
  for (std::size_t r = 1; r < per_worker_base.size(); ++r) {
    const auto& other = per_worker_base[r];
    ASSERT_EQ(w1.fixes.size(), other.fixes.size()) << "worker run " << r;
    EXPECT_EQ(w1.jobs_coalesced, other.jobs_coalesced);
    for (std::size_t i = 0; i < w1.fixes.size(); ++i) {
      const auto& a = w1.fixes[i];
      const auto& b = other.fixes[i];
      EXPECT_EQ(a.client_id, b.client_id);
      EXPECT_EQ(a.seq, b.seq);
      EXPECT_EQ(a.frame_time_s, b.frame_time_s);
      EXPECT_EQ(a.position.x, b.position.x) << "worker run " << r;
      EXPECT_EQ(a.position.y, b.position.y);
      EXPECT_EQ(a.smoothed.x, b.smoothed.x);
      EXPECT_EQ(a.smoothed.y, b.smoothed.y);
      EXPECT_EQ(a.likelihood, b.likelihood);
    }
  }
}

TEST(BatchServiceTest, BatchOccupancyRecordedInStats) {
  const auto plan = make_plan();
  auto sys = make_system(&plan);
  service::ServiceOptions opt;
  opt.workers = 1;
  opt.batch_max = 4;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  service::LocationService svc(sys.get(), opt);
  const auto rep = svc.run(interleaved_schedule(4, 4, 0.05));
  ASSERT_GT(rep.fixes.size(), 0u);
  EXPECT_GT(svc.stats().batch_occupancy.count(), 0u);
  EXPECT_GE(svc.stats().batch_occupancy.max_seen(), 1.0);
  EXPECT_NE(rep.stats_json.find("\"batch_occupancy\""), std::string::npos);
  EXPECT_NE(rep.stats_json.find("\"batch_max\": 4"), std::string::npos);
}

TEST(BatchServiceTest, EnvOverrideForcesBatchWidth) {
  const auto plan = make_plan();
  ASSERT_EQ(0, setenv("ARRAYTRACK_BATCH", "3", 1));
  {
    auto sys = make_system(&plan);
    service::ServiceOptions opt;
    opt.batch_max = 16;
    service::LocationService svc(sys.get(), opt);
    EXPECT_EQ(svc.options().batch_max, 3u);
    EXPECT_NE(svc.stats_json().find("\"batch_max\": 3"), std::string::npos);
  }
  // Malformed or non-positive values are ignored.
  ASSERT_EQ(0, setenv("ARRAYTRACK_BATCH", "not-a-number", 1));
  {
    auto sys = make_system(&plan);
    service::ServiceOptions opt;
    opt.batch_max = 16;
    service::LocationService svc(sys.get(), opt);
    EXPECT_EQ(svc.options().batch_max, 16u);
  }
  ASSERT_EQ(0, setenv("ARRAYTRACK_BATCH", "0", 1));
  {
    auto sys = make_system(&plan);
    service::LocationService svc(sys.get(), service::ServiceOptions{});
    EXPECT_EQ(svc.options().batch_max, 8u);  // the default width
  }
  ASSERT_EQ(0, unsetenv("ARRAYTRACK_BATCH"));
}

}  // namespace
}  // namespace arraytrack
