// End-to-end invariance properties: rigidly moving an entire scenario
// (floorplan, APs, client) must move the location estimate with it.
// These run with scatter disabled so the channel is exactly equivariant.
#include <gtest/gtest.h>

#include "core/arraytrack.h"

namespace arraytrack::core {
namespace {

using geom::Vec2;

struct Pose {
  Vec2 shift;
  double rot = 0.0;  // about the origin, applied before the shift

  Vec2 apply(const Vec2& p) const { return p.rotated(rot) + shift; }
};

geom::Floorplan make_plan(const Pose& pose) {
  // An asymmetric room so the estimate cannot luck into invariance.
  geom::Floorplan plan({{-40, -40}, {60, 60}});
  const Vec2 corners[4] = {{0, 0}, {18, 0}, {18, 11}, {0, 11}};
  for (int i = 0; i < 4; ++i)
    plan.add_wall(pose.apply(corners[i]), pose.apply(corners[(i + 1) % 4]),
                  geom::Material::kBrick);
  plan.add_wall(pose.apply({7, 0}), pose.apply({7, 6}),
                geom::Material::kDrywall);
  return plan;
}

std::optional<LocationEstimate> locate_in(const Pose& pose,
                                          const geom::Floorplan& plan,
                                          const Vec2& client_local) {
  SystemConfig cfg;
  cfg.channel.scatter_scale = 0.0;  // exact equivariance
  cfg.server.localizer.grid_step_m = 0.1;
  System sys(&plan, cfg);
  sys.add_ap(pose.apply({1.5, 1.5}), deg2rad(40.0) + pose.rot);
  sys.add_ap(pose.apply({16.5, 1.5}), deg2rad(140.0) + pose.rot);
  sys.add_ap(pose.apply({9.0, 10.0}), deg2rad(-90.0) + pose.rot);
  sys.transmit(0, pose.apply(client_local), 0.0);
  return sys.locate(0, 0.01);
}

TEST(InvarianceTest, TranslationMovesEstimateExactly) {
  const Vec2 client{12.0, 6.5};
  const Pose identity{};
  const Pose shifted{{23.0, 17.0}, 0.0};
  const auto plan0 = make_plan(identity);
  const auto plan1 = make_plan(shifted);
  const auto fix0 = locate_in(identity, plan0, client);
  const auto fix1 = locate_in(shifted, plan1, client);
  ASSERT_TRUE(fix0 && fix1);
  // The estimate in the shifted world equals the shifted estimate,
  // up to grid/hill-climb resolution.
  EXPECT_LT(geom::distance(fix1->position, fix0->position + shifted.shift),
            0.06)
      << fix0->position.to_string() << " vs " << fix1->position.to_string();
}

TEST(InvarianceTest, RotationRotatesEstimate) {
  const Vec2 client{12.0, 6.5};
  const Pose identity{};
  const Pose rotated{{5.0, 3.0}, deg2rad(90.0)};
  const auto plan0 = make_plan(identity);
  const auto plan1 = make_plan(rotated);
  const auto fix0 = locate_in(identity, plan0, client);
  const auto fix1 = locate_in(rotated, plan1, client);
  ASSERT_TRUE(fix0 && fix1);
  EXPECT_LT(geom::distance(fix1->position, rotated.apply(fix0->position)),
            0.06);
}

TEST(InvarianceTest, DeterministicRepeatability) {
  const Vec2 client{5.0, 8.0};
  const Pose identity{};
  const auto plan = make_plan(identity);
  const auto a = locate_in(identity, plan, client);
  const auto b = locate_in(identity, plan, client);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->position.x, b->position.x);
  EXPECT_DOUBLE_EQ(a->position.y, b->position.y);
  EXPECT_DOUBLE_EQ(a->likelihood, b->likelihood);
}

}  // namespace
}  // namespace arraytrack::core
