// Tests for CSI capture and joint angle-delay (SpotFi-style) MUSIC.
#include <gtest/gtest.h>

#include "aoa/joint.h"
#include "aoa/music.h"
#include "dsp/noise.h"
#include "phy/csi.h"

namespace arraytrack {
namespace {

using geom::Vec2;

constexpr double kSpacingHz = 312.5e3;
constexpr double kLambda = 0.1226;

array::PlacedArray row8() {
  return array::PlacedArray(
      array::ArrayGeometry::uniform_linear(8, kLambda / 2), {0, 0}, 0.0);
}

std::vector<std::size_t> first8() { return {0, 1, 2, 3, 4, 5, 6, 7}; }

// Synthetic CSI for explicit paths {bearing, delay, gain} on an
// 8-element half-wavelength row over 52 standard subcarriers.
linalg::CMatrix make_csi(const array::PlacedArray& pa,
                         const std::vector<double>& bearings,
                         const std::vector<double>& delays_s,
                         const std::vector<cplx>& gains, double snr_db,
                         unsigned seed) {
  const auto subs = phy::standard_subcarriers();
  linalg::CMatrix h(8, subs.size());
  dsp::AwgnSource noise(seed);
  double sig_power = 0.0;
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t b = 0; b < subs.size(); ++b) {
      cplx acc{0, 0};
      for (std::size_t p = 0; p < bearings.size(); ++p) {
        const auto a = pa.steering(bearings[p], kLambda);
        acc += gains[p] * a[m] *
               std::exp(-kJ * (kTwoPi * double(subs[b]) * kSpacingHz *
                               delays_s[p]));
      }
      sig_power += std::norm(acc);
      h(m, b) = acc;
    }
  }
  sig_power /= double(8 * subs.size());
  const double npow = sig_power / dsp::db_to_linear(snr_db);
  for (std::size_t m = 0; m < 8; ++m)
    for (std::size_t b = 0; b < subs.size(); ++b)
      h(m, b) += noise.sample(npow);
  return h;
}

TEST(CsiTest, StandardSubcarriersSkipDc) {
  const auto subs = phy::standard_subcarriers();
  EXPECT_EQ(subs.size(), 52u);
  EXPECT_EQ(subs.front(), -26);
  EXPECT_EQ(subs.back(), 26);
  for (int k : subs) EXPECT_NE(k, 0);
}

TEST(CsiTest, SynthesizeSinglePathIsFlatAndLinearPhase) {
  channel::PathResponse pr;
  pr.gains = linalg::CMatrix(1, 2);
  pr.gains(0, 0) = cplx{1.0, 0.0};
  pr.gains(0, 1) = cplx{0.0, 1.0};
  pr.delays_s = {50e-9};
  pr.delays = {2};
  const auto subs = phy::standard_subcarriers();
  const auto csi =
      phy::synthesize_csi(pr, kSpacingHz, subs, 0.0, nullptr);
  ASSERT_EQ(csi.h.rows(), 2u);
  ASSERT_EQ(csi.h.cols(), 52u);
  // Constant magnitude across subcarriers, phase slope 2*pi*f*tau.
  for (std::size_t b = 0; b < 52; ++b)
    EXPECT_NEAR(std::abs(csi.h(0, b)), 1.0, 1e-12);
  for (std::size_t b = 1; b < 52; ++b) {
    const double df = csi.subcarrier_offsets_hz[b] -
                      csi.subcarrier_offsets_hz[b - 1];
    const double dphi =
        wrap_pi(std::arg(csi.h(0, b)) - std::arg(csi.h(0, b - 1)));
    EXPECT_NEAR(dphi, -kTwoPi * df * 50e-9, 1e-6);
  }
}

TEST(CsiTest, ExtractMatchesNarrowbandGainSinglePath) {
  // One LTS period through a flat channel g: CSI == g on every bin.
  dsp::PreambleGenerator gen(2);
  const cplx g{0.4, -0.8};
  std::vector<cplx> window(gen.lts_period());
  const auto& lts = gen.long_symbol();
  for (std::size_t i = 0; i < window.size(); ++i) window[i] = g * lts[i];
  const auto csi = phy::extract_csi({window}, gen);
  ASSERT_EQ(csi.h.cols(), 52u);
  for (std::size_t b = 0; b < 52; ++b)
    EXPECT_NEAR(std::abs(csi.h(0, b) - g), 0.0, 1e-9) << b;
}

TEST(JointSpectrumTest, GridAndDirectPathRule) {
  aoa::JointSpectrum spec(11, 5, 400e-9);
  EXPECT_NEAR(spec.theta_of(0), 0.0, 1e-12);
  EXPECT_NEAR(spec.theta_of(10), kPi, 1e-12);
  EXPECT_NEAR(spec.tau_of(4), 400e-9, 1e-18);

  std::vector<aoa::JointSpectrum::Peak> peaks = {
      {deg2rad(120), 150e-9, 1.0},   // strongest: a reflection
      {deg2rad(60), 10e-9, 0.6},     // weaker but earliest: direct
      {deg2rad(30), 300e-9, 0.05},   // below the power floor
  };
  const auto direct = aoa::JointSpectrum::direct_path(peaks, 0.3);
  EXPECT_NEAR(rad2deg(direct.theta_rad), 60.0, 1e-9);
}

TEST(JointTest, ConstructionValidation) {
  const auto pa = row8();
  EXPECT_THROW(aoa::JointAoaTof(&pa, {0}, kLambda, kSpacingHz),
               std::invalid_argument);
  aoa::JointOptions opt;
  opt.antenna_block = 9;
  EXPECT_THROW(aoa::JointAoaTof(&pa, first8(), kLambda, kSpacingHz, opt),
               std::invalid_argument);
}

TEST(JointTest, SinglePathPeaksAtBearingAndDelay) {
  const auto pa = row8();
  const auto csi = make_csi(pa, {deg2rad(70)}, {60e-9}, {cplx{1, 0}}, 30, 1);
  aoa::JointAoaTof joint(&pa, first8(), kLambda, kSpacingHz);
  const auto spec = joint.spectrum(csi);
  const auto peaks = spec.find_peaks(0.2);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(rad2deg(peaks[0].theta_rad), 70.0, 4.0);
  EXPECT_NEAR(peaks[0].tau_s * 1e9, 60.0, 30.0);
}

TEST(JointTest, DirectIdentifiedWhenReflectionStronger) {
  // The ArrayTrack failure mode the SpotFi extension fixes: a stronger
  // reflection at a different bearing with a longer delay. Angle-only
  // MUSIC ranks the reflection first; the joint direct-path rule picks
  // the smaller-delay peak.
  const auto pa = row8();
  const double direct_deg = 55.0, refl_deg = 115.0;
  const auto csi = make_csi(pa, {deg2rad(direct_deg), deg2rad(refl_deg)},
                            {20e-9, 180e-9},
                            {cplx{0.6, 0.0}, cplx{0.0, 1.0}}, 30, 2);

  aoa::JointAoaTof joint(&pa, first8(), kLambda, kSpacingHz);
  const auto spec = joint.spectrum(csi);
  // MUSIC pseudospectrum heights are not power-ordered, so use a low
  // floor and rely on the delay rule.
  const auto peaks = spec.find_peaks(0.03);
  ASSERT_GE(peaks.size(), 2u);
  const auto direct = aoa::JointSpectrum::direct_path(peaks, 0.02);
  EXPECT_NEAR(rad2deg(direct.theta_rad), direct_deg, 5.0);
  EXPECT_LT(direct.tau_s, 120e-9);
  // The reflection is present as its own (theta, tau) peak.
  bool refl_seen = false;
  for (const auto& p : peaks)
    if (std::abs(rad2deg(p.theta_rad) - refl_deg) < 6.0 &&
        p.tau_s > 120e-9)
      refl_seen = true;
  EXPECT_TRUE(refl_seen);
}

TEST(JointTest, CoherentPathsResolvedBySmoothing) {
  // Both paths have unit gain and zero relative phase randomness
  // (fully coherent) — the 2-D smoothing must still split them.
  const auto pa = row8();
  const auto csi = make_csi(pa, {deg2rad(45), deg2rad(135)},
                            {30e-9, 200e-9}, {cplx{1, 0}, cplx{1, 0}}, 35, 3);
  aoa::JointAoaTof joint(&pa, first8(), kLambda, kSpacingHz);
  const auto peaks = joint.spectrum(csi).find_peaks(0.03);
  bool f45 = false, f135 = false;
  for (const auto& p : peaks) {
    if (std::abs(rad2deg(p.theta_rad) - 45.0) < 6) f45 = true;
    if (std::abs(rad2deg(p.theta_rad) - 135.0) < 6) f135 = true;
  }
  EXPECT_TRUE(f45);
  EXPECT_TRUE(f135);
}

TEST(JointTest, EndToEndThroughChannel) {
  // Full stack: floorplan channel -> path_response -> CSI -> joint
  // spectrum; the direct-path rule must land near the true bearing.
  geom::Floorplan plan({{-40, -40}, {40, 40}});
  plan.add_wall({-30, -10}, {30, -10}, geom::Material::kMetal);
  channel::ChannelConfig cfg;
  channel::MultipathChannel chan(&plan, cfg, 5);

  const auto pa = row8();
  const Vec2 client{9.0, 7.0};
  const auto pr = chan.path_response(client, pa.position(),
                                     pa.world_positions());
  dsp::AwgnSource noise(9);
  const auto csi = phy::synthesize_csi(pr, kSpacingHz,
                                       phy::standard_subcarriers(),
                                       chan.noise_power_mw(), &noise);
  aoa::JointAoaTof joint(&pa, first8(), cfg.wavelength_m(), kSpacingHz);
  const auto peaks = joint.spectrum(csi.h).find_peaks(0.15);
  ASSERT_FALSE(peaks.empty());
  const auto direct = aoa::JointSpectrum::direct_path(peaks, 0.25);
  const double truth = pa.bearing_to(client);
  EXPECT_NEAR(rad2deg(direct.theta_rad), rad2deg(truth), 6.0);
  EXPECT_LT(direct.tau_s, 60e-9);
}

}  // namespace
}  // namespace arraytrack
