// The SIMD kernel layer must be a pure performance refactor: every
// dispatch level (scalar, SSE2, AVX2+FMA) computes the same numbers to
// 1e-9 relative, a fixed level is bitwise deterministic under any
// caller chunking, and the dispatch override machinery (environment
// variables, force(), ForcedLevel) behaves as documented. Sizes are
// deliberately awkward — odd antenna counts, bin counts that are not a
// multiple of any vector width — so remainder lanes are exercised.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "core/arraytrack.h"
#include "core/simd.h"
#include "linalg/kernels.h"
#include "testbed/office.h"

namespace arraytrack {
namespace {

using core::simd::ForcedLevel;
using core::simd::Level;
using linalg::SplitPlanes;

// Levels this machine can actually run (always includes kScalar).
std::vector<Level> runnable_levels() {
  std::vector<Level> out{Level::kScalar};
  for (Level l : {Level::kSse2, Level::kAvx2})
    if (core::simd::clamp_to_hardware(l) == l) out.push_back(l);
  return out;
}

void fill_planes(SplitPlanes& p, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t k = 0; k < p.m; ++k)
    for (std::size_t i = 0; i < p.rows; ++i)
      p.set(k, i, cplx{u(rng), u(rng)});
}

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, double tol,
                  const char* what, Level lvl) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale =
        std::max({std::abs(got[i]), std::abs(want[i]), 1e-12});
    EXPECT_LE(std::abs(got[i] - want[i]) / scale, tol)
        << what << " at level " << core::simd::name(lvl) << " index " << i
        << ": got " << got[i] << " want " << want[i];
  }
}

// --- cross-level equivalence ------------------------------------------

TEST(SimdKernelsTest, ProjectorMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t m : {std::size_t(3), std::size_t(5), std::size_t(7)}) {
    for (std::size_t rows :
         {std::size_t(6), std::size_t(357), std::size_t(361),
          std::size_t(720)}) {
      SplitPlanes t(rows, m);
      fill_planes(t, rng);
      const std::size_t nvec = 1 + (m + rows) % 3;
      std::vector<double> ev_re(nvec * m), ev_im(nvec * m);
      for (auto& v : ev_re) v = u(rng);
      for (auto& v : ev_im) v = u(rng);

      std::vector<double> want(rows);
      {
        ForcedLevel g(Level::kScalar);
        linalg::kernels::projector_power(t, ev_re.data(), ev_im.data(), nvec,
                                         want.data());
      }
      for (Level lvl : runnable_levels()) {
        ForcedLevel g(lvl);
        std::vector<double> got(rows, -1.0);
        linalg::kernels::projector_power(t, ev_re.data(), ev_im.data(), nvec,
                                         got.data());
        expect_close(got, want, 1e-9, "projector", lvl);
      }
    }
  }
}

TEST(SimdKernelsTest, BartlettMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(12);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t m : {std::size_t(3), std::size_t(5), std::size_t(7)}) {
    SplitPlanes t(357, m);
    fill_planes(t, rng);
    std::vector<cplx> r(m * m);
    for (std::size_t i = 0; i < m; ++i) {
      r[i * m + i] = cplx{2.0 + u(rng), 0.0};
      for (std::size_t j = i + 1; j < m; ++j) {
        r[i * m + j] = cplx{u(rng), u(rng)};
        r[j * m + i] = std::conj(r[i * m + j]);
      }
    }
    std::vector<double> want(t.rows);
    {
      ForcedLevel g(Level::kScalar);
      linalg::kernels::bartlett_power(t, r.data(), want.data());
    }
    for (Level lvl : runnable_levels()) {
      ForcedLevel g(lvl);
      std::vector<double> got(t.rows, -1.0);
      linalg::kernels::bartlett_power(t, r.data(), got.data());
      expect_close(got, want, 1e-9, "bartlett", lvl);
    }
  }
}

TEST(SimdKernelsTest, CovarianceMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(13);
  for (std::size_t m :
       {std::size_t(3), std::size_t(5), std::size_t(7), std::size_t(16)}) {
    for (std::size_t n :
         {std::size_t(3), std::size_t(7), std::size_t(10), std::size_t(33)}) {
      SplitPlanes x(n, m);
      fill_planes(x, rng);
      std::vector<cplx> want(m * m);
      {
        ForcedLevel g(Level::kScalar);
        linalg::kernels::covariance(x, want.data());
      }
      for (Level lvl : runnable_levels()) {
        ForcedLevel g(lvl);
        std::vector<cplx> got(m * m, cplx{-1.0, -1.0});
        linalg::kernels::covariance(x, got.data());
        for (std::size_t t = 0; t < m * m; ++t) {
          const double scale = std::max(std::abs(want[t]), 1e-12);
          EXPECT_LE(std::abs(got[t] - want[t]) / scale, 1e-9)
              << "covariance m=" << m << " n=" << n << " at level "
              << core::simd::name(lvl) << " flat index " << t;
        }
        // The diagonal must be exactly real at every level (Hermitian
        // eigensolvers downstream rely on it).
        for (std::size_t i = 0; i < m; ++i)
          EXPECT_EQ(got[i * m + i].imag(), 0.0);
      }
    }
  }
}

TEST(SimdKernelsTest, ForwardBackwardMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(14);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t m :
       {std::size_t(3), std::size_t(4), std::size_t(7), std::size_t(8)}) {
    std::vector<cplx> r(m * m);
    for (auto& v : r) v = cplx{u(rng), u(rng)};
    std::vector<cplx> want(m * m);
    {
      ForcedLevel g(Level::kScalar);
      linalg::kernels::forward_backward(r.data(), m, want.data());
    }
    for (Level lvl : runnable_levels()) {
      ForcedLevel g(lvl);
      std::vector<cplx> got(m * m, cplx{-1.0, -1.0});
      linalg::kernels::forward_backward(r.data(), m, got.data());
      // Pure additions with a 0.5 scale: every level is exact.
      for (std::size_t t = 0; t < m * m; ++t)
        EXPECT_EQ(got[t], want[t])
            << "forward_backward m=" << m << " at level "
            << core::simd::name(lvl) << " flat index " << t;
    }
  }
}

TEST(SimdKernelsTest, GatherLerpProductMatchesScalarAtEveryLevel) {
  std::mt19937_64 rng(15);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  constexpr std::size_t kBins = 720;
  constexpr std::size_t kCount = 1003;  // odd: forces remainder lanes
  std::vector<double> power(kBins);
  // Half the power values sit below the floor so clamping is active.
  for (auto& v : power) v = 0.1 * u(rng);
  std::vector<std::int32_t> bin0(kCount), bin1(kCount);
  std::vector<double> frac(kCount);
  std::uniform_int_distribution<std::int32_t> bins(0, kBins - 1);
  for (std::size_t c = 0; c < kCount; ++c) {
    bin0[c] = bins(rng);
    bin1[c] = (bin0[c] + 1) % std::int32_t(kBins);
    frac[c] = u(rng);
  }
  const double floor = 0.05;

  std::vector<double> want(kCount, 1.0);
  {
    ForcedLevel g(Level::kScalar);
    linalg::kernels::gather_lerp_product(power.data(), bin0.data(),
                                         bin1.data(), frac.data(), kCount,
                                         floor, want.data());
  }
  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    std::vector<double> got(kCount, 1.0);
    linalg::kernels::gather_lerp_product(power.data(), bin0.data(),
                                         bin1.data(), frac.data(), kCount,
                                         floor, got.data());
    expect_close(got, want, 1e-9, "gather_lerp_product", lvl);
  }
}

// --- chunk invariance --------------------------------------------------

// A fixed level must produce bitwise-identical cells no matter how the
// caller splits the range — this is what makes the pooled heatmap
// deterministic at any thread count. Split at awkward offsets so chunk
// boundaries land mid-vector.
TEST(SimdKernelsTest, GatherLerpProductIsChunkInvariant) {
  std::mt19937_64 rng(16);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  constexpr std::size_t kBins = 720;
  constexpr std::size_t kCount = 997;
  std::vector<double> power(kBins);
  for (auto& v : power) v = 0.05 + u(rng);
  std::vector<std::int32_t> bin0(kCount), bin1(kCount);
  std::vector<double> frac(kCount);
  std::uniform_int_distribution<std::int32_t> bins(0, kBins - 1);
  for (std::size_t c = 0; c < kCount; ++c) {
    bin0[c] = bins(rng);
    bin1[c] = (bin0[c] + 1) % std::int32_t(kBins);
    frac[c] = u(rng);
  }

  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    std::vector<double> whole(kCount, 1.0);
    linalg::kernels::gather_lerp_product(power.data(), bin0.data(),
                                         bin1.data(), frac.data(), kCount,
                                         0.0, whole.data());
    for (std::size_t split : {std::size_t(1), std::size_t(37),
                              std::size_t(501), std::size_t(995)}) {
      std::vector<double> parts(kCount, 1.0);
      linalg::kernels::gather_lerp_product(power.data(), bin0.data(),
                                           bin1.data(), frac.data(), split,
                                           0.0, parts.data());
      linalg::kernels::gather_lerp_product(
          power.data(), bin0.data() + split, bin1.data() + split,
          frac.data() + split, kCount - split, 0.0, parts.data() + split);
      for (std::size_t c = 0; c < kCount; ++c)
        ASSERT_EQ(whole[c], parts[c])
            << "level " << core::simd::name(lvl) << " split " << split
            << " cell " << c;
    }
  }
}

// --- dispatch machinery -------------------------------------------------

TEST(SimdDispatchTest, ForcedLevelRestoresPreviousLevel) {
  const Level before = core::simd::active();
  {
    ForcedLevel g(Level::kScalar);
    EXPECT_EQ(core::simd::active(), Level::kScalar);
    {
      ForcedLevel inner(Level::kAvx2);  // clamped to hardware
      EXPECT_EQ(core::simd::active(),
                core::simd::clamp_to_hardware(Level::kAvx2));
    }
    EXPECT_EQ(core::simd::active(), Level::kScalar);
  }
  EXPECT_EQ(core::simd::active(), before);
}

TEST(SimdDispatchTest, EnvironmentForceScalarHonoredOnReset) {
  const Level before = core::simd::active();
  ASSERT_EQ(unsetenv("ARRAYTRACK_SIMD"), 0);
  ASSERT_EQ(setenv("ARRAYTRACK_FORCE_SCALAR", "1", 1), 0);
  core::simd::reset();
  EXPECT_EQ(core::simd::active(), Level::kScalar);
  // "0" and empty mean "not forced".
  ASSERT_EQ(setenv("ARRAYTRACK_FORCE_SCALAR", "0", 1), 0);
  core::simd::reset();
  EXPECT_EQ(core::simd::active(), core::simd::detect());
  EXPECT_NE(core::simd::detect(), Level::kScalar);  // on any SSE2+ machine
  ASSERT_EQ(unsetenv("ARRAYTRACK_FORCE_SCALAR"), 0);
  core::simd::reset();
  EXPECT_EQ(core::simd::active(), core::simd::hardware_level());
  core::simd::force(before);
}

TEST(SimdDispatchTest, EnvironmentLevelRequestIsClamped) {
  const Level before = core::simd::active();
  // ARRAYTRACK_FORCE_SCALAR outranks ARRAYTRACK_SIMD in detect();
  // clear it so this test behaves the same under tools/check.sh's
  // forced-scalar pass (each gtest case runs in its own process).
  ASSERT_EQ(unsetenv("ARRAYTRACK_FORCE_SCALAR"), 0);
  ASSERT_EQ(setenv("ARRAYTRACK_SIMD", "sse2", 1), 0);
  core::simd::reset();
  EXPECT_EQ(core::simd::active(),
            core::simd::clamp_to_hardware(Level::kSse2));
  ASSERT_EQ(setenv("ARRAYTRACK_SIMD", "bogus", 1), 0);
  core::simd::reset();
  EXPECT_EQ(core::simd::active(), core::simd::hardware_level());
  ASSERT_EQ(unsetenv("ARRAYTRACK_SIMD"), 0);
  core::simd::reset();
  core::simd::force(before);
}

// --- end-to-end dispatch override ---------------------------------------

// Forcing each level and re-running the full 6-AP office localization
// must land on (numerically) the same fix: the kernels only reorder
// floating-point sums, they never change what is computed.
TEST(SimdDispatchTest, LocateEndToEndAgreesAcrossLevels) {
  const auto tb = testbed::OfficeTestbed::standard();
  core::SystemConfig cfg;
  core::System sys(&tb.plan, cfg);
  for (const auto& site : tb.ap_sites)
    sys.add_ap(site.position, site.orientation_rad);
  for (std::size_t f = 0; f < 3; ++f)
    sys.transmit(0, tb.clients[12], double(f) * 0.03);

  std::optional<core::LocationEstimate> reference;
  {
    ForcedLevel g(Level::kScalar);
    reference = sys.locate(0, 0.1);
  }
  ASSERT_TRUE(reference.has_value());

  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    const auto fix = sys.locate(0, 0.1);
    ASSERT_TRUE(fix.has_value()) << core::simd::name(lvl);
    // The grid argmax is identical in practice; hill climbing from the
    // same cell converges to the same point. Allow a micrometre of
    // numeric slack and ~1e-6 relative on the likelihood product.
    EXPECT_NEAR(fix->position.x, reference->position.x, 1e-6)
        << core::simd::name(lvl);
    EXPECT_NEAR(fix->position.y, reference->position.y, 1e-6)
        << core::simd::name(lvl);
    const double rel =
        std::abs(fix->likelihood - reference->likelihood) /
        std::max(std::abs(reference->likelihood), 1e-300);
    EXPECT_LE(rel, 1e-6) << core::simd::name(lvl);
  }
}

}  // namespace
}  // namespace arraytrack
