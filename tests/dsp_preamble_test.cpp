// Tests for 802.11 OFDM preamble synthesis.
#include <gtest/gtest.h>

#include "dsp/noise.h"
#include "dsp/preamble.h"

namespace arraytrack::dsp {
namespace {

TEST(PreambleTest, TimingConstants) {
  // 320 base samples at 20 Msps = 16 us, the 802.11 preamble duration.
  EXPECT_EQ(PreambleTiming::kTotal, 320u);
  const double duration =
      double(PreambleTiming::kTotal) / double(PreambleTiming::kBaseRateHz);
  EXPECT_NEAR(duration, 16e-6, 1e-12);
}

TEST(PreambleTest, RejectsNonPowerOfTwoOversample) {
  EXPECT_THROW(PreambleGenerator(3), std::invalid_argument);
  EXPECT_NO_THROW(PreambleGenerator(1));
  EXPECT_NO_THROW(PreambleGenerator(4));
}

class PreambleOversampleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PreambleOversampleTest, SectionLengths) {
  const std::size_t os = GetParam();
  PreambleGenerator gen(os);
  EXPECT_EQ(gen.sts_period(), 16 * os);
  EXPECT_EQ(gen.lts_period(), 64 * os);
  EXPECT_EQ(gen.short_section().size(), 160 * os);
  EXPECT_EQ(gen.preamble().size(), 320 * os);
  EXPECT_EQ(gen.lts0_offset(), 192 * os);
  EXPECT_EQ(gen.lts1_offset(), 256 * os);
  EXPECT_NEAR(gen.sample_rate_hz(), 20e6 * double(os), 1.0);
}

TEST_P(PreambleOversampleTest, UnitAveragePower) {
  PreambleGenerator gen(GetParam());
  EXPECT_NEAR(mean_power(gen.preamble()), 1.0, 1e-9);
}

TEST_P(PreambleOversampleTest, ShortSymbolPeriodicity) {
  // The ten short training symbols are identical repetitions.
  PreambleGenerator gen(GetParam());
  const auto& sec = gen.short_section();
  const std::size_t period = gen.sts_period();
  for (std::size_t i = 0; i + period < sec.size(); ++i)
    EXPECT_NEAR(std::abs(sec[i] - sec[i + period]), 0.0, 1e-9)
        << "at sample " << i;
}

TEST_P(PreambleOversampleTest, LongSymbolsIdentical) {
  // S0 and S1 are identical (the property diversity synthesis uses).
  PreambleGenerator gen(GetParam());
  const auto& p = gen.preamble();
  const std::size_t o0 = gen.lts0_offset();
  const std::size_t o1 = gen.lts1_offset();
  for (std::size_t i = 0; i < gen.lts_period(); ++i)
    EXPECT_NEAR(std::abs(p[o0 + i] - p[o1 + i]), 0.0, 1e-9);
}

TEST_P(PreambleOversampleTest, GuardIsCyclicPrefix) {
  // The guard interval is the tail of the long symbol (GI2).
  PreambleGenerator gen(GetParam());
  const auto& p = gen.preamble();
  const std::size_t gi = 32 * gen.oversample();
  const std::size_t gi_start = gen.lts0_offset() - gi;
  const auto& lts = gen.long_symbol();
  for (std::size_t i = 0; i < gi; ++i)
    EXPECT_NEAR(std::abs(p[gi_start + i] - lts[lts.size() - gi + i]), 0.0,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Oversampling, PreambleOversampleTest,
                         ::testing::Values(1, 2, 4));

TEST(PreambleTest, OversampledAgreesWithBaseRate) {
  // Decimating the 2x waveform by 2 must recover the 1x waveform.
  PreambleGenerator base(1);
  PreambleGenerator twox(2);
  const auto& p1 = base.preamble();
  const auto& p2 = twox.preamble();
  for (std::size_t i = 0; i < p1.size(); ++i)
    EXPECT_NEAR(std::abs(p1[i] - p2[2 * i]), 0.0, 1e-6) << "sample " << i;
}

TEST(PreambleTest, FrameAppendsBody) {
  PreambleGenerator gen(2);
  const auto f = gen.frame(500, /*seed=*/3);
  EXPECT_EQ(f.size(), gen.preamble().size() + 500);
  // Body is unit power QPSK.
  std::vector<cplx> body(f.begin() + std::ptrdiff_t(gen.preamble().size()),
                         f.end());
  EXPECT_NEAR(mean_power(body), 1.0, 1e-9);
  // Deterministic per seed.
  const auto f2 = gen.frame(500, 3);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_EQ(f[i], f2[i]);
}

}  // namespace
}  // namespace arraytrack::dsp
