// Tests for the 3-D extension: elevation spectra from a vertical
// column and (x, y, z) localization (paper section 4.3.1 future work).
#include <gtest/gtest.h>

#include <random>

#include "core/localize3d.h"
#include "geom/floorplan.h"

namespace arraytrack::core {
namespace {

using geom::Vec2;

struct Rig {
  Rig()
      : plan({{-5, -5}, {25, 17}}),
        channel(&plan, make_cfg(), 7) {}

  static channel::ChannelConfig make_cfg() {
    channel::ChannelConfig cfg;
    cfg.ap_height_m = 2.5;       // wall-mounted AP
    cfg.client_height_m = 1.0;   // handheld client
    cfg.max_reflection_order = 0;  // free space for the unit tests
    return cfg;
  }

  phy::AccessPointFrontEnd make_ap(int id, Vec2 pos, double orient) {
    const double lambda = channel.config().wavelength_m();
    array::PlacedArray placed(make_3d_ap_geometry(lambda), pos, orient);
    phy::ApConfig cfg;
    cfg.radios = 6;  // 12 elements via diversity synthesis
    phy::AccessPointFrontEnd ap(id, placed, &channel, cfg);
    ap.run_calibration();
    return ap;
  }

  geom::Floorplan plan;
  channel::MultipathChannel channel;
};

TEST(Geometry3dTest, LShapedLayout) {
  const auto g = array::ArrayGeometry::l_shaped(8, 4, 0.06);
  ASSERT_EQ(g.size(), 12u);
  EXPECT_TRUE(g.has_vertical_extent());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(g.z_offset(i), 0.0);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(g.z_offset(8 + i), 0.06 * double(i + 1), 1e-12);
  // Flat arrays report no vertical extent.
  EXPECT_FALSE(array::ArrayGeometry::uniform_linear(8, 0.06)
                   .has_vertical_extent());
}

TEST(Geometry3dTest, Standard3dGeometry) {
  const auto g = make_3d_ap_geometry(0.1226);
  ASSERT_EQ(g.size(), 12u);
  EXPECT_TRUE(g.has_vertical_extent());
  // Column sits a quarter wavelength behind the row.
  for (std::size_t i = 8; i < 12; ++i)
    EXPECT_NEAR(g.offset(i).y, -0.1226 / 4.0, 1e-12);
}

TEST(Steering3Test, ReducesToPlanarAtZeroElevation) {
  array::PlacedArray pa(array::ArrayGeometry::l_shaped(8, 4, 0.0613), {0, 0},
                        0.0);
  const auto flat = pa.steering(deg2rad(70.0), 0.1226);
  const auto a3 = pa.steering3(deg2rad(70.0), 0.0, 0.1226);
  for (std::size_t i = 0; i < flat.size(); ++i)
    EXPECT_NEAR(std::abs(flat[i] - a3[i]), 0.0, 1e-12);
}

TEST(Steering3Test, VerticalPhaseFollowsElevation) {
  array::PlacedArray pa(array::ArrayGeometry::l_shaped(8, 4, 0.0613), {0, 0},
                        0.0);
  const double lambda = 0.1226;
  const double el = deg2rad(25.0);
  const auto a = pa.steering3(deg2rad(90.0), el, lambda);
  // Adjacent column elements differ by k * dz * sin(el).
  for (std::size_t i = 9; i < 12; ++i) {
    const double step = wrap_pi(std::arg(a[i]) - std::arg(a[i - 1]));
    EXPECT_NEAR(step, kTwoPi / lambda * 0.0613 * std::sin(el), 1e-9);
  }
}

TEST(ElevationSpectrumTest, InterpolationAndClamping) {
  aoa::ElevationSpectrum s(5, -0.5, 0.5);
  s[2] = 1.0;  // center bin at elevation 0
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.125), 0.5);
  EXPECT_DOUBLE_EQ(s.value_at(-2.0), s.value_at(-0.5));  // clamped
  EXPECT_DOUBLE_EQ(s.dominant_elevation(), 0.0);
}

TEST(ElevationMusicTest, RejectsBadConstruction) {
  array::PlacedArray pa(array::ArrayGeometry::l_shaped(8, 4, 0.0613), {0, 0},
                        0.0);
  EXPECT_THROW(aoa::ElevationMusic(&pa, {8}, 0.1226), std::invalid_argument);
  aoa::ElevationMusicOptions opt;
  opt.smoothing_groups = 4;
  EXPECT_THROW(aoa::ElevationMusic(&pa, {8, 9, 10, 11}, 0.1226, opt),
               std::invalid_argument);
}

class ElevationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ElevationSweep, ColumnRecoversElevation) {
  // Synthetic plane wave at a known elevation on the column.
  const double el_true = deg2rad(GetParam());
  array::PlacedArray pa(array::ArrayGeometry::l_shaped(8, 4, 0.0613), {0, 0},
                        0.0);
  const double lambda = 0.1226;
  const auto a = pa.steering3(deg2rad(90.0), el_true, lambda);

  std::mt19937_64 rng(unsigned(GetParam() * 10) + 3);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  linalg::CMatrix x(4, 20);
  for (std::size_t k = 0; k < 20; ++k) {
    const cplx s = std::exp(kJ * uang(rng));
    for (std::size_t i = 0; i < 4; ++i)
      x(i, k) = a[8 + i] * s + cplx{0.03 * g(rng), 0.03 * g(rng)};
  }
  aoa::ElevationMusic music(&pa, {8, 9, 10, 11}, lambda);
  const auto spec = music.spectrum(x);
  EXPECT_NEAR(rad2deg(spec.dominant_elevation()), GetParam(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(Elevations, ElevationSweep,
                         ::testing::Values(-40.0, -20.0, -8.0, 0.0, 8.0,
                                           20.0, 40.0));

TEST(Ap3dProcessorTest, ElevationOfLowClientIsNegative) {
  Rig rig;
  auto ap = rig.make_ap(0, {0, 0}, deg2rad(45.0));
  // Off-axis client (local bearing ~34 deg): at endfire the elevation
  // cosine projects directly into an azimuth bias of |el| (~10 deg),
  // which is exactly the error the 3-D localizer corrects for.
  const Vec2 client{2.0, 10.0};  // ~10 m away, 1.5 m below the AP
  const auto frame = ap.capture_snapshot(client, 0.0, 0);
  Ap3dProcessor proc(&ap);
  const auto obs = proc.process(frame);

  const double el_true = std::atan2(1.0 - 2.5, geom::distance(client, {0, 0}));
  EXPECT_NEAR(rad2deg(obs.elevation.dominant_elevation()), rad2deg(el_true),
              6.0);
  // Azimuth still correct.
  const double az_true = wrap_2pi(ap.array().bearing_to(client));
  EXPECT_LT(rad2deg(aoa::bearing_distance(obs.azimuth.dominant_bearing(),
                                          az_true)),
            4.0);
}

TEST(Localizer3dTest, RecoversPositionAndHeight) {
  Rig rig;
  auto ap0 = rig.make_ap(0, {0, 0}, deg2rad(45.0));
  auto ap1 = rig.make_ap(1, {20, 0}, deg2rad(135.0));
  auto ap2 = rig.make_ap(2, {10, 14}, deg2rad(-90.0));

  const Vec2 truth{8.0, 6.0};
  const double truth_z = 1.0;  // the channel's client height

  std::vector<Ap3dSpectrum> obs;
  for (auto* ap : {&ap0, &ap1, &ap2}) {
    const auto frame = ap->capture_snapshot(truth, 0.0, 0);
    Ap3dProcessor proc(ap);
    obs.push_back(proc.process(frame));
  }

  Localizer3d loc({{0, 0}, {20, 14}});
  const auto fix = loc.locate(obs);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 0.5)
      << fix->position.to_string();
  EXPECT_NEAR(fix->height_m, truth_z, 0.6);
}

TEST(Localizer3dTest, DistinguishesFloorFromTableHeight) {
  Rig rig;
  auto run_at_height = [&](double h) {
    rig.channel.config().client_height_m = h;
    auto ap0 = rig.make_ap(0, {0, 0}, deg2rad(45.0));
    auto ap1 = rig.make_ap(1, {20, 0}, deg2rad(135.0));
    auto ap2 = rig.make_ap(2, {10, 14}, deg2rad(-90.0));
    std::vector<Ap3dSpectrum> obs;
    for (auto* ap : {&ap0, &ap1, &ap2}) {
      Ap3dProcessor proc(ap);
      obs.push_back(proc.process(ap->capture_snapshot({9.0, 5.0}, 0.0, 0)));
    }
    Localizer3d loc({{0, 0}, {20, 14}});
    const auto fix = loc.locate(obs);
    return fix ? fix->height_m : -1.0;
  };
  const double low = run_at_height(0.2);
  const double high = run_at_height(1.6);
  EXPECT_LT(low, high - 0.5);
}

TEST(Localizer3dTest, EmptyInputNullopt) {
  Localizer3d loc({{0, 0}, {10, 10}});
  EXPECT_FALSE(loc.locate({}).has_value());
}

}  // namespace
}  // namespace arraytrack::core
