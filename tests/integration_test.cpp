// End-to-end integration tests over the office testbed: the full
// pipeline from channel through MUSIC to fused location, on a subset of
// clients (the full 41-client sweeps live in bench/).
#include <gtest/gtest.h>

#include "core/sic.h"
#include "dsp/preamble.h"
#include "testbed/metrics.h"
#include "testbed/office.h"
#include "testbed/runner.h"

namespace arraytrack {
namespace {

using geom::Vec2;

testbed::RunnerConfig fast_runner() {
  testbed::RunnerConfig cfg;
  cfg.system.server.localizer.grid_step_m = 0.25;
  return cfg;
}

TEST(IntegrationTest, SixApsLocalizeSampledClients) {
  const auto tb = testbed::OfficeTestbed::standard();
  testbed::ExperimentRunner runner(&tb, fast_runner());
  const auto obs = runner.observe_clients({0, 7, 14, 21, 28, 35, 40});
  ASSERT_EQ(obs.size(), 7u);
  const auto errors =
      runner.localization_errors(obs, {0, 1, 2, 3, 4, 5});
  ASSERT_EQ(errors.size(), 7u);
  testbed::ErrorStats stats(errors);
  // The paper gets 23 cm median / 31 cm mean with six APs over 41
  // clients; on a 7-client sample with a coarse test grid we only
  // require sub-meter median — the benches check the tighter numbers.
  EXPECT_LT(stats.median(), 1.0) << stats.summary("6 APs", "m");
}

TEST(IntegrationTest, MoreApsNoWorseThanThree) {
  const auto tb = testbed::OfficeTestbed::standard();
  testbed::ExperimentRunner runner(&tb, fast_runner());
  const auto obs = runner.observe_clients({3, 11, 19, 27, 33});
  testbed::ErrorStats three(runner.localization_errors(obs, {0, 2, 4}));
  testbed::ErrorStats six(
      runner.localization_errors(obs, {0, 1, 2, 3, 4, 5}));
  EXPECT_LE(six.median(), three.median() + 0.5)
      << "3 APs: " << three.summary("", "m")
      << " 6 APs: " << six.summary("", "m");
}

TEST(IntegrationTest, ObservationsCoverAllAps) {
  const auto tb = testbed::OfficeTestbed::standard();
  testbed::ExperimentRunner runner(&tb, fast_runner());
  const auto obs = runner.observe_clients({20});
  ASSERT_EQ(obs.size(), 1u);
  // Every AP heard the frames (power never below the noise floor in
  // this testbed at default tx power).
  EXPECT_EQ(obs[0].per_ap.size(), 6u);
}

TEST(IntegrationTest, WaveformCollisionSicEndToEnd) {
  // Two clients collide; the AP detects both preambles, and SIC cleans
  // the second spectrum (paper 4.3.5) so each client's strongest
  // bearing matches its true direction.
  const auto tb = testbed::OfficeTestbed::standard();
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;
  core::System sys(&tb.plan, cfg);
  sys.add_ap(tb.ap_sites[2].position, tb.ap_sites[2].orientation_rad);
  auto& ap = sys.ap(0);

  const Vec2 c1 = tb.clients[5];
  const Vec2 c2 = tb.clients[30];

  dsp::PreambleGenerator gen(2);
  const auto wf1 = gen.frame(4000, 1);
  const auto wf2 = gen.frame(4000, 2);
  phy::Transmission t1, t2;
  t1.waveform = &wf1;
  t1.client_pos = c1;
  t1.start_sample = 0;
  t1.client_id = 1;
  t2.waveform = &wf2;
  t2.client_pos = c2;
  t2.start_sample = gen.preamble().size() + 800;  // preambles disjoint
  t2.client_id = 2;

  const auto captures = ap.receive({t1, t2}, 0.0);
  ASSERT_EQ(captures.size(), 2u);

  // The second capture is a two-transmitter mixture: a per-capture
  // side decision is unreliable, so process mirrored and compare
  // against bearing-or-mirror (multi-AP synthesis resolves the side).
  core::PipelineOptions po;
  po.symmetry_removal = false;
  core::ApProcessor proc(&ap, po);
  auto spec1 = proc.process(captures[0]);
  auto spec2_raw = proc.process(captures[1]);
  const auto spec2 = core::sic_cancel(spec1, spec2_raw);

  const double truth1 = wrap_2pi(ap.array().bearing_to(c1));
  const double truth2 = wrap_2pi(ap.array().bearing_to(c2));
  auto mirror_err = [](const aoa::AoaSpectrum& s, double truth) {
    return rad2deg(
        std::min(aoa::bearing_distance(s.dominant_bearing(), truth),
                 aoa::bearing_distance(s.dominant_bearing(),
                                       wrap_2pi(-truth))));
  };
  // The second spectrum carries residual body interference even after
  // SIC, so its peak can sit several degrees off; 12 degrees still
  // identifies the transmitter's direction unambiguously.
  EXPECT_LT(mirror_err(spec1, truth1), 8.0);
  EXPECT_LT(mirror_err(spec2, truth2), 12.0);
}

TEST(IntegrationTest, PillarBlockedClientStillLocalized) {
  // Client 40 sits behind a pillar from AP 3's view; multi-AP fusion
  // still pins it down (paper section 6, scenario S2).
  const auto tb = testbed::OfficeTestbed::standard();
  testbed::ExperimentRunner runner(&tb, fast_runner());
  const auto obs = runner.observe_clients({40});
  const auto errors = runner.localization_errors(obs, {0, 1, 2, 3, 4, 5});
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_LT(errors[0], 1.5);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto tb = testbed::OfficeTestbed::standard();
  auto run_once = [&]() {
    testbed::ExperimentRunner runner(&tb, fast_runner());
    const auto obs = runner.observe_clients({10});
    return runner.localization_errors(obs, {0, 1, 2, 3, 4, 5})[0];
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace arraytrack
