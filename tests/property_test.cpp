// Cross-module property tests: invariants that must hold for whole
// families of inputs rather than single examples.
#include <gtest/gtest.h>

#include <random>

#include "aoa/music.h"
#include "channel/channel.h"
#include "core/synthesis.h"
#include "dsp/detector.h"
#include "dsp/noise.h"
#include "dsp/preamble.h"
#include "geom/paths.h"

namespace arraytrack {
namespace {

using geom::Vec2;

// ---------------------------------------------------------------------
// Fermat's principle: the specular reflection point minimizes the total
// tx -> wall -> rx path length over all points on the wall.
class FermatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FermatSweep, ReflectionPointMinimizesLength) {
  std::mt19937_64 rng{std::uint64_t(GetParam())};
  std::uniform_real_distribution<double> u(-8.0, 8.0);
  geom::Floorplan plan({{-50, -50}, {50, 50}});
  // Random wall well away from tx/rx.
  const Vec2 a{u(rng) - 20.0, u(rng) - 20.0};
  const Vec2 b = a + Vec2{12.0 + u(rng), u(rng)};
  plan.add_wall(a, b, geom::Material::kMetal);
  const Vec2 tx{u(rng), u(rng) + 5.0};
  const Vec2 rx{u(rng) + 6.0, u(rng) + 7.0};

  geom::PathFinderOptions opt;
  opt.max_order = 1;
  const auto paths = geom::find_paths(plan, tx, rx, opt);
  for (const auto& p : paths) {
    if (p.order() != 1) continue;
    // Sample alternative bounce points along the wall.
    for (double t = 0.02; t < 1.0; t += 0.07) {
      const Vec2 q = a + (b - a) * t;
      const double alt = geom::distance(tx, q) + geom::distance(q, rx);
      EXPECT_GE(alt + 1e-9, p.length_m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FermatSweep, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Channel self-consistency: response() must equal the sum over
// components() of exact spherical waves from each virtual source.
class ChannelConsistencySweep : public ::testing::TestWithParam<int> {};

TEST_P(ChannelConsistencySweep, ResponseMatchesComponents) {
  std::mt19937_64 rng{std::uint64_t(100 + GetParam())};
  std::uniform_real_distribution<double> u(2.0, 18.0);
  geom::Floorplan plan({{0, 0}, {20, 20}});
  plan.add_wall({0, 0}, {20, 0}, geom::Material::kBrick);
  plan.add_wall({0, 20}, {20, 20}, geom::Material::kGlass);

  channel::ChannelConfig cfg;
  channel::MultipathChannel chan(&plan, cfg, 5);
  const Vec2 tx{u(rng), u(rng)};
  const Vec2 rx{u(rng), u(rng)};
  const std::vector<Vec2> ants = {rx, rx + Vec2{0.06, 0.0},
                                  rx + Vec2{0.0, 0.06}};

  const auto resp = chan.response(tx, rx, ants);
  const auto comps = chan.components(tx, rx);
  const double lambda = cfg.wavelength_m();
  for (std::size_t m = 0; m < ants.size(); ++m) {
    cplx expect{0, 0};
    for (const auto& pc : comps) {
      const double d = geom::distance(pc.virtual_source, ants[m]);
      expect += pc.amplitude_at(d, cfg) *
                std::exp(kJ * (-kTwoPi * d / lambda + pc.phase_jitter_rad));
    }
    EXPECT_NEAR(std::abs(resp.gains[m] - expect), 0.0,
                1e-9 * (1.0 + std::abs(expect)))
        << "antenna " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelConsistencySweep,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// MUSIC accuracy is monotone-ish in SNR: very high SNR must never be
// worse than very low SNR for the same geometry.
class MusicSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicSnrSweep, BearingErrorShrinksWithSnr) {
  const double bearing = deg2rad(GetParam());
  const double lambda = 0.1226;
  array::PlacedArray pa(array::ArrayGeometry::uniform_linear(8, lambda / 2),
                        {0, 0}, 0.0);
  std::vector<std::size_t> row = {0, 1, 2, 3, 4, 5, 6, 7};
  aoa::MusicEstimator music(&pa, row, lambda);

  auto mean_err = [&](double snr_db) {
    double acc = 0.0;
    const int reps = 8;
    for (int r = 0; r < reps; ++r) {
      std::mt19937_64 rng(std::uint64_t(GetParam() * 100 + r +
                                        std::uint64_t(snr_db * 7)));
      std::uniform_real_distribution<double> uang(0.0, kTwoPi);
      std::normal_distribution<double> g(0.0, 1.0);
      const double sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);
      const auto a = pa.steering(bearing, lambda);
      linalg::CMatrix x(8, 10);
      for (std::size_t k = 0; k < 10; ++k) {
        const cplx s = std::exp(kJ * uang(rng));
        for (std::size_t m = 0; m < 8; ++m)
          x(m, k) = a[m] * s + cplx{sigma * g(rng), sigma * g(rng)};
      }
      acc += rad2deg(
          aoa::bearing_distance(music.spectrum(x).dominant_bearing(), bearing));
    }
    return acc / reps;
  };
  EXPECT_LE(mean_err(30.0), mean_err(-3.0) + 0.5) << GetParam();
  EXPECT_LT(mean_err(30.0), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bearings, MusicSnrSweep,
                         ::testing::Values(35.0, 60.0, 90.0, 120.0, 150.0));

// ---------------------------------------------------------------------
// Detector ROC: detection probability is non-decreasing in SNR at a
// fixed threshold (sampled coarsely).
TEST(DetectorProperty, RocMonotoneInSnr) {
  dsp::PreambleGenerator gen(2);
  dsp::MatchedFilterDetector det(gen.short_section(), 0.22);
  auto rate = [&](double snr_db) {
    int hits = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      dsp::AwgnSource noise(std::uint64_t(snr_db * 13 + t) + 7777);
      auto s = noise.generate(2500, dsp::db_to_linear(-snr_db));
      for (std::size_t i = 0; i < gen.preamble().size(); ++i)
        s[600 + i] += gen.preamble()[i];
      const auto d = det.detect(s);
      if (d && std::llabs(std::int64_t(d->start_index) - 600) <= 3) ++hits;
    }
    return double(hits) / trials;
  };
  const double lo = rate(-14.0);
  const double mid = rate(-8.0);
  const double hi = rate(5.0);
  EXPECT_LE(lo, mid + 0.25);
  EXPECT_LE(mid, hi + 1e-9);
  EXPECT_GE(hi, 0.95);
}

// ---------------------------------------------------------------------
// Synthesis: the likelihood at the true position dominates random
// distant positions when every AP's spectrum points at the truth.
class SynthesisDominanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisDominanceSweep, TruthDominatesRandomPoints) {
  std::mt19937_64 rng{std::uint64_t(500 + GetParam())};
  std::uniform_real_distribution<double> u(1.0, 19.0);
  const Vec2 truth{u(rng), u(rng) * 0.6};

  auto make_ap = [&](Vec2 pos) {
    core::ApSpectrum ap;
    ap.ap_position = pos;
    ap.orientation_rad = 0.0;
    aoa::AoaSpectrum s(720);
    const double b = wrap_2pi((truth - pos).angle());
    for (std::size_t i = 0; i < s.bins(); ++i) {
      const double d = aoa::bearing_distance(s.bin_bearing(i), b);
      s[i] = std::exp(-0.5 * std::pow(d / deg2rad(4.0), 2.0));
    }
    ap.spectrum = s;
    return ap;
  };
  std::vector<core::ApSpectrum> aps = {make_ap({0, -2}), make_ap({20, -2}),
                                       make_ap({10, 14})};
  core::Localizer loc({{0, 0}, {20, 12}});
  const double at_truth = loc.likelihood(aps, truth);
  for (int i = 0; i < 25; ++i) {
    const Vec2 q{u(rng), u(rng) * 0.6};
    if (geom::distance(q, truth) < 1.5) continue;
    EXPECT_GT(at_truth, loc.likelihood(aps, q)) << q.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisDominanceSweep,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace arraytrack
