// Tests for the AP front end: buffers, snapshot capture, waveform
// reception with packet detection and diversity synthesis.
#include <gtest/gtest.h>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "dsp/preamble.h"
#include "phy/frame_buffer.h"
#include "phy/frontend.h"

namespace arraytrack::phy {
namespace {

using geom::Vec2;

TEST(FrameBufferTest, PushPopOrder) {
  CircularFrameBuffer buf(4);
  for (int i = 0; i < 3; ++i) {
    FrameCapture f;
    f.timestamp_s = double(i);
    EXPECT_FALSE(buf.push(f));
  }
  EXPECT_EQ(buf.size(), 3u);
  const auto f = buf.pop();
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->timestamp_s, 0.0);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(FrameBufferTest, EvictsOldestWhenFull) {
  CircularFrameBuffer buf(2);
  for (int i = 0; i < 3; ++i) {
    FrameCapture f;
    f.timestamp_s = double(i);
    const bool evicted = buf.push(f);
    EXPECT_EQ(evicted, i == 2);
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_DOUBLE_EQ(buf.at(0).timestamp_s, 1.0);
  EXPECT_DOUBLE_EQ(buf.newest().timestamp_s, 2.0);
}

TEST(FrameBufferTest, RecentFromFiltersClientAndWindow) {
  CircularFrameBuffer buf(16);
  for (int i = 0; i < 6; ++i) {
    FrameCapture f;
    f.timestamp_s = double(i) * 0.04;
    f.client_id = i % 2;
    buf.push(f);
  }
  // Client 0 frames at t = 0, 0.08, 0.16; window 0.1 ending at 0.17.
  const auto recent = buf.recent_from(0, 0.17, 0.1);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_DOUBLE_EQ(recent[0].timestamp_s, 0.08);
  EXPECT_DOUBLE_EQ(recent[1].timestamp_s, 0.16);
  // Frames after "now" never counted.
  EXPECT_TRUE(buf.recent_from(0, -1.0, 0.1).empty());
}

class FrontEndTest : public ::testing::Test {
 protected:
  FrontEndTest()
      : plan_({{-50, -50}, {50, 50}}),
        channel_(&plan_, make_config()),
        ap_(0, make_array(), &channel_, make_ap_config()) {}

  static channel::ChannelConfig make_config() {
    channel::ChannelConfig cfg;
    cfg.tx_power_dbm = 10.0;
    return cfg;
  }

  static ApConfig make_ap_config() {
    ApConfig cfg;
    cfg.snapshots = 10;
    return cfg;
  }

  array::PlacedArray make_array() {
    const double s = make_config().wavelength_m() / 2.0;
    return array::PlacedArray(array::ArrayGeometry::rectangular(8, s, s / 2),
                              {0, 0}, 0.0);
  }

  geom::Floorplan plan_;
  channel::MultipathChannel channel_;
  AccessPointFrontEnd ap_;
};

TEST_F(FrontEndTest, RejectsTooSmallArray) {
  ApConfig cfg;
  cfg.radios = 8;
  cfg.diversity_synthesis = true;
  array::PlacedArray tiny(array::ArrayGeometry::uniform_linear(8, 0.06),
                          {0, 0}, 0.0);
  EXPECT_THROW(AccessPointFrontEnd(1, tiny, &channel_, cfg),
               std::invalid_argument);
}

TEST_F(FrontEndTest, CaptureShapeAndBuffering) {
  const auto frame = ap_.capture_snapshot({10, 5}, 1.5, /*client=*/3);
  EXPECT_EQ(frame.samples.rows(), 16u);  // diversity: both rows
  EXPECT_EQ(frame.samples.cols(), 10u);
  EXPECT_EQ(frame.element_ids.size(), 16u);
  EXPECT_EQ(frame.client_id, 3);
  EXPECT_DOUBLE_EQ(frame.timestamp_s, 1.5);
  EXPECT_EQ(ap_.buffer().size(), 1u);
  EXPECT_GT(frame.snr_db, 0.0);
}

TEST_F(FrontEndTest, SnrFallsWithDistance) {
  EXPECT_GT(ap_.snr_db({5, 0}), ap_.snr_db({40, 0}));
}

TEST_F(FrontEndTest, CalibrationEnablesAoa) {
  // Without calibration the per-radio LO offsets scramble inter-antenna
  // phase and MUSIC points anywhere; with calibration the peak lands on
  // the true bearing.
  const Vec2 client{12.0, 9.0};  // 36.9 deg from AP at origin, orient 0
  const double truth_deg = rad2deg((client - Vec2{0, 0}).angle());

  const auto frame = ap_.capture_snapshot(client, 0.0, 0);
  std::vector<std::size_t> row = {0, 1, 2, 3, 4, 5, 6, 7};
  aoa::MusicEstimator music(&ap_.array(), row,
                            channel_.config().wavelength_m());

  const auto raw = frame.samples.block(0, 0, 8, 10);
  const auto spec_raw = music.spectrum(raw);
  const double err_raw = std::abs(
      rad2deg(aoa::bearing_distance(spec_raw.dominant_bearing(),
                                    deg2rad(truth_deg))));

  ap_.run_calibration();
  const auto cal = ap_.calibrated_samples(frame).block(0, 0, 8, 10);
  const auto spec_cal = music.spectrum(cal);
  const double err_cal = std::abs(
      rad2deg(aoa::bearing_distance(spec_cal.dominant_bearing(),
                                    deg2rad(truth_deg))));

  EXPECT_LT(err_cal, 2.0);
  EXPECT_GT(err_raw, err_cal);
}

TEST_F(FrontEndTest, DiversityRowsShareRadioOffsets) {
  // Rows m and m+8 share radio m; after calibration, the phase
  // relationship between the two rows must match the channel geometry.
  ap_.run_calibration();
  const Vec2 client{15.0, 7.0};
  const auto frame = ap_.capture_snapshot(client, 0.0, 0);
  const auto cal = ap_.calibrated_samples(frame);

  const auto resp = channel_.response(client, ap_.array().position(),
                                      ap_.array().world_positions());
  // Compare measured inter-row phase vs channel truth at element pair
  // (0, 8), averaging over snapshots.
  cplx meas{0, 0};
  for (std::size_t k = 0; k < cal.cols(); ++k)
    meas += cal(8, k) * std::conj(cal(0, k));
  const double measured = std::arg(meas);
  const double expected = std::arg(resp.gains[8] * std::conj(resp.gains[0]));
  EXPECT_NEAR(wrap_pi(measured - expected), 0.0, deg2rad(8.0));
}

TEST_F(FrontEndTest, ReceiveDetectsCleanFrame) {
  ap_.run_calibration();
  dsp::PreambleGenerator gen(2);
  const auto wf = gen.frame(2000, 5);
  Transmission tx;
  tx.waveform = &wf;
  tx.client_pos = {10, 6};
  tx.start_sample = 777;
  tx.client_id = 4;
  const auto captures = ap_.receive({tx}, 2.0);
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].client_id, 4);
  EXPECT_EQ(captures[0].samples.rows(), 16u);
  EXPECT_GT(captures[0].snr_db, 10.0);
}

TEST_F(FrontEndTest, ReceiveMatchesSnapshotBearing) {
  // The waveform pipeline (detection + LTS extraction + diversity
  // switch) must produce the same MUSIC bearing as the snapshot path.
  ap_.run_calibration();
  const Vec2 client{9.0, 12.0};
  const double truth_deg = rad2deg((client - Vec2{0, 0}).angle());

  dsp::PreambleGenerator gen(2);
  const auto wf = gen.frame(500, 6);
  Transmission tx;
  tx.waveform = &wf;
  tx.client_pos = client;
  tx.start_sample = 300;
  tx.client_id = 1;
  const auto captures = ap_.receive({tx}, 0.0);
  ASSERT_EQ(captures.size(), 1u);

  std::vector<std::size_t> row = {0, 1, 2, 3, 4, 5, 6, 7};
  aoa::MusicEstimator music(&ap_.array(), row,
                            channel_.config().wavelength_m());
  const auto cal = ap_.calibrated_samples(captures[0]).block(0, 0, 8, 10);
  const auto spec = music.spectrum(cal);
  EXPECT_LT(rad2deg(aoa::bearing_distance(spec.dominant_bearing(),
                                          deg2rad(truth_deg))),
            3.0);
}

TEST_F(FrontEndTest, ReceiveTwoStaggeredTransmitters) {
  ap_.run_calibration();
  dsp::PreambleGenerator gen(2);
  const auto wf1 = gen.frame(3000, 7);
  const auto wf2 = gen.frame(3000, 8);
  Transmission t1, t2;
  t1.waveform = &wf1;
  t1.client_pos = {12, 3};
  t1.start_sample = 100;
  t1.client_id = 0;
  t2.waveform = &wf2;
  t2.client_pos = {-4, 14};
  t2.start_sample = 100 + gen.preamble().size() + 500;  // preambles disjoint
  t2.client_id = 1;
  const auto captures = ap_.receive({t1, t2}, 0.0);
  ASSERT_EQ(captures.size(), 2u);
  EXPECT_EQ(captures[0].client_id, 0);
  EXPECT_EQ(captures[1].client_id, 1);
}

TEST_F(FrontEndTest, NoDiversityConfigCapturesSingleRow) {
  ApConfig cfg;
  cfg.diversity_synthesis = false;
  AccessPointFrontEnd ap(2, make_array(), &channel_, cfg);
  const auto frame = ap.capture_snapshot({5, 5}, 0.0, 0);
  EXPECT_EQ(frame.samples.rows(), 8u);
}

}  // namespace
}  // namespace arraytrack::phy
