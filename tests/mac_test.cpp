// Tests for MAC framing, CRC-32 and the Poisson traffic source.
#include <gtest/gtest.h>

#include "dsp/noise.h"
#include "phy/mac.h"

namespace arraytrack::phy {
namespace {

TEST(Crc32Test, KnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  // Empty input -> 0.
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(MacAddressTest, ClientMacDeterministicAndLocal) {
  const auto a = client_mac(7);
  const auto b = client_mac(7);
  const auto c = client_mac(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a[0] & 0x02, 0x02);  // locally administered
  EXPECT_EQ(a[0] & 0x01, 0x00);  // unicast
  EXPECT_EQ(to_string(a).size(), 17u);
}

TEST(MacFrameTest, SerializeParseRoundTrip) {
  MacFrame f;
  f.addr1 = client_mac(1);
  f.addr2 = client_mac(2);
  f.addr3 = client_mac(3);
  f.sequence = 1234;
  f.duration = 44;
  f.payload = {1, 2, 3, 4, 5, 0xff, 0x00};

  const auto bytes = f.serialize();
  EXPECT_EQ(bytes.size(), 24u + f.payload.size() + 4u);
  const auto g = MacFrame::parse(bytes);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->addr2, f.addr2);
  EXPECT_EQ(g->sequence, 1234);
  EXPECT_EQ(g->duration, 44);
  EXPECT_EQ(g->payload, f.payload);
}

TEST(MacFrameTest, CorruptionDetected) {
  MacFrame f;
  f.addr2 = client_mac(9);
  f.payload = {10, 20, 30};
  auto bytes = f.serialize();
  bytes[12] ^= 0x40;  // flip a bit in addr2
  EXPECT_FALSE(MacFrame::parse(bytes).has_value());
  EXPECT_FALSE(MacFrame::parse({1, 2, 3}).has_value());  // too short
}

TEST(MacFrameTest, QpskRoundTripClean) {
  MacFrame f;
  f.addr2 = client_mac(4);
  f.sequence = 99;
  f.payload.assign(100, 0xa5);
  const auto symbols = f.to_qpsk();
  EXPECT_EQ(symbols.size(), f.serialize().size() * 4);
  // Unit power QPSK.
  EXPECT_NEAR(dsp::mean_power(symbols), 1.0, 1e-9);
  const auto g = MacFrame::from_qpsk(symbols);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->sequence, 99);
  EXPECT_EQ(g->addr2, f.addr2);
}

TEST(MacFrameTest, QpskSurvivesModerateNoise) {
  MacFrame f;
  f.addr2 = client_mac(5);
  f.payload.assign(64, 0x3c);
  auto symbols = f.to_qpsk();
  dsp::AwgnSource noise(11);
  noise.add_noise(symbols, 15.0);  // QPSK at 15 dB: essentially error-free
  EXPECT_TRUE(MacFrame::from_qpsk(symbols).has_value());
}

TEST(MacFrameTest, QpskCrcCatchesHeavyNoise) {
  MacFrame f;
  f.payload.assign(64, 0x3c);
  auto symbols = f.to_qpsk();
  dsp::AwgnSource noise(12);
  noise.add_noise(symbols, -5.0);  // hopeless SNR: bits flip
  EXPECT_FALSE(MacFrame::from_qpsk(symbols).has_value());
}

TEST(TrafficSourceTest, RateAndOrdering) {
  TrafficSource src(10, 5.0, 77);
  const auto events = src.schedule(100.0);
  // ~10 clients * 5 Hz * 100 s = 5000 events; Poisson fluctuation small.
  EXPECT_NEAR(double(events.size()), 5000.0, 300.0);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
  // Every client appears; sequence numbers increase per client.
  std::vector<int> last_seq(10, -1);
  std::vector<int> count(10, 0);
  for (const auto& e : events) {
    ASSERT_GE(e.client_id, 0);
    ASSERT_LT(e.client_id, 10);
    EXPECT_GT(int(e.sequence), last_seq[std::size_t(e.client_id)]);
    last_seq[std::size_t(e.client_id)] = int(e.sequence);
    ++count[std::size_t(e.client_id)];
  }
  for (int c : count) EXPECT_GT(c, 300);
}

TEST(TrafficSourceTest, DeterministicPerSeed) {
  TrafficSource a(3, 2.0, 5), b(3, 2.0, 5);
  const auto ea = a.schedule(10.0);
  const auto eb = b.schedule(10.0);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].time_s, eb[i].time_s);
    EXPECT_EQ(ea[i].client_id, eb[i].client_id);
  }
}

}  // namespace
}  // namespace arraytrack::phy
