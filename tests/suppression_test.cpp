// Tests for the multipath suppression algorithm (paper 2.4, Fig. 8).
#include <gtest/gtest.h>

#include <cmath>

#include "core/suppression.h"

namespace arraytrack::core {
namespace {

aoa::AoaSpectrum peak_at(std::size_t bins, double center_deg, double width_deg,
                         double height) {
  aoa::AoaSpectrum s(bins);
  const double c = deg2rad(center_deg);
  const double w = deg2rad(width_deg);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = aoa::bearing_distance(s.bin_bearing(i), c);
    s[i] = height * std::exp(-0.5 * (d / w) * (d / w));
  }
  return s;
}

aoa::AoaSpectrum combine(std::initializer_list<aoa::AoaSpectrum> parts) {
  aoa::AoaSpectrum out = *parts.begin();
  bool first = true;
  for (const auto& p : parts) {
    if (first) {
      first = false;
      continue;
    }
    out += p;
  }
  return out;
}

TEST(SuppressionTest, EmptyGroupThrows) {
  EXPECT_THROW(suppress_multipath({}), std::invalid_argument);
}

TEST(SuppressionTest, SingletonPassesThrough) {
  const auto s = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.7)});
  const auto out = suppress_multipath({s});
  // Step 1 of Fig. 8: no grouping possible -> output unchanged.
  for (std::size_t i = 0; i < s.bins(); ++i) EXPECT_EQ(out[i], s[i]);
}

TEST(SuppressionTest, RemovesUnstableReflection) {
  // Direct path at 60 in both frames; reflection jumps 200 -> 230.
  const auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  const auto f2 = combine({peak_at(720, 60.8, 4, 1.0), peak_at(720, 230, 4, 0.8)});
  const auto out = suppress_multipath({f1, f2});
  const auto peaks = out.find_peaks(0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(rad2deg(peaks[0].bearing_rad), 60.0, 1.5);
}

TEST(SuppressionTest, KeepsStablePeaksEvenIfReflection) {
  // "For those scenarios in which both the direct-path and
  // reflection-path peaks are unchanged, we keep all of them."
  const auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  const auto f2 = combine({peak_at(720, 61, 4, 1.0), peak_at(720, 202, 4, 0.8)});
  const auto out = suppress_multipath({f1, f2});
  EXPECT_EQ(out.find_peaks(0.1).size(), 2u);
}

TEST(SuppressionTest, ThreeFrameGroupMoreSelective) {
  // Reflection matches frame 2 by luck but not frame 3 -> removed.
  const auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  const auto f2 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 203, 4, 0.8)});
  const auto f3 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 260, 4, 0.8)});
  const auto two = suppress_multipath({f1, f2});
  EXPECT_EQ(two.find_peaks(0.1).size(), 2u);
  const auto three = suppress_multipath({f1, f2, f3});
  ASSERT_EQ(three.find_peaks(0.1).size(), 1u);
  EXPECT_NEAR(rad2deg(three.find_peaks(0.1)[0].bearing_rad), 60.0, 1.5);
}

TEST(SuppressionTest, VanishedPeakRemoved) {
  // The reflection disappears entirely in frame 2.
  const auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  const auto f2 = peak_at(720, 60, 4, 1.0);
  const auto out = suppress_multipath({f1, f2});
  ASSERT_EQ(out.find_peaks(0.1).size(), 1u);
}

TEST(SuppressionTest, ToleranceBoundary) {
  SuppressionOptions opt;
  opt.match_tolerance_rad = deg2rad(5.0);
  const auto f1 = combine({peak_at(720, 60, 3, 1.0), peak_at(720, 200, 3, 0.8)});
  // 4 degrees away: within tolerance, kept.
  const auto near4 = combine({peak_at(720, 60, 3, 1.0), peak_at(720, 204, 3, 0.8)});
  EXPECT_EQ(suppress_multipath({f1, near4}, opt).find_peaks(0.1).size(), 2u);
  // 8 degrees away: beyond tolerance, removed.
  const auto far8 = combine({peak_at(720, 60, 3, 1.0), peak_at(720, 208, 3, 0.8)});
  EXPECT_EQ(suppress_multipath({f1, far8}, opt).find_peaks(0.1).size(), 1u);
}

TEST(SuppressionTest, WeakPeaksBelowFloorIgnored) {
  SuppressionOptions opt;
  opt.peak_floor = 0.2;
  // A tiny wiggle at 300 in the primary is below the floor: neither
  // matched nor removed, just left as-is.
  auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 300, 4, 0.05)});
  const auto f2 = peak_at(720, 60, 4, 1.0);
  const auto out = suppress_multipath({f1, f2}, opt);
  EXPECT_GT(out.value_at(deg2rad(300)), 0.0);
}

TEST(SuppressionTest, MaxGroupLimitsComparisons) {
  SuppressionOptions opt;
  opt.max_group = 2;
  const auto f1 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  const auto f2 = combine({peak_at(720, 60, 4, 1.0), peak_at(720, 200, 4, 0.8)});
  // Frame 3 would kill the 200-degree peak, but max_group=2 ignores it.
  const auto f3 = peak_at(720, 60, 4, 1.0);
  const auto out = suppress_multipath({f1, f2, f3}, opt);
  EXPECT_EQ(out.find_peaks(0.1).size(), 2u);
}

}  // namespace
}  // namespace arraytrack::core
