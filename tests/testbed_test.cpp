// Tests for the office testbed and metrics helpers.
#include <gtest/gtest.h>

#include "testbed/metrics.h"
#include "testbed/office.h"
#include "testbed/runner.h"

namespace arraytrack::testbed {
namespace {

TEST(OfficeTest, StandardLayoutShape) {
  const auto tb = OfficeTestbed::standard();
  EXPECT_EQ(tb.ap_sites.size(), 6u);
  EXPECT_EQ(tb.clients.size(), 41u);
  EXPECT_GE(tb.plan.walls().size(), 10u);
  EXPECT_EQ(tb.plan.pillars().size(), 4u);
  // All clients and APs inside the bounds.
  for (const auto& c : tb.clients)
    EXPECT_TRUE(tb.plan.bounds().contains(c)) << c.to_string();
  for (const auto& ap : tb.ap_sites)
    EXPECT_TRUE(tb.plan.bounds().contains(ap.position));
}

TEST(OfficeTest, DeterministicLayout) {
  const auto a = OfficeTestbed::standard();
  const auto b = OfficeTestbed::standard();
  for (std::size_t i = 0; i < a.clients.size(); ++i)
    EXPECT_EQ(a.clients[i], b.clients[i]);
}

TEST(OfficeTest, SomeClientsBlockedByPillars) {
  const auto tb = OfficeTestbed::standard();
  // At least one AP sees at least one pillar-blocked client (the paper
  // deliberately places clients behind concrete pillars).
  std::size_t total_blocked = 0;
  for (std::size_t a = 0; a < tb.ap_sites.size(); ++a)
    total_blocked += tb.blocked_clients(a).size();
  EXPECT_GE(total_blocked, 1u);
}

TEST(OfficeTest, MaterialVarietyPresent)
{
  const auto tb = OfficeTestbed::standard();
  bool has_metal = false, has_glass = false, has_wood = false,
       has_cubicle = false;
  for (const auto& w : tb.plan.walls()) {
    has_metal |= w.material == geom::Material::kMetal;
    has_glass |= w.material == geom::Material::kGlass;
    has_wood |= w.material == geom::Material::kWood;
    has_cubicle |= w.material == geom::Material::kCubicle;
  }
  EXPECT_TRUE(has_metal);
  EXPECT_TRUE(has_glass);
  EXPECT_TRUE(has_wood);
  EXPECT_TRUE(has_cubicle);
}

TEST(ErrorStatsTest, BasicStatistics) {
  ErrorStats s({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 1.75);
}

TEST(ErrorStatsTest, CdfAt) {
  ErrorStats s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(ErrorStatsTest, EmptyGuards) {
  ErrorStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.percentile(50), std::out_of_range);
  EXPECT_NE(s.summary("x").find("no samples"), std::string::npos);
}

TEST(ErrorStatsTest, ReportStringsContainNumbers) {
  ErrorStats s({10.0, 20.0, 30.0});
  const auto table = s.cdf_table({15.0, 25.0});
  EXPECT_NE(table.find("0.33"), std::string::npos);
  EXPECT_NE(table.find("0.67"), std::string::npos);
  EXPECT_NE(s.summary("test").find("median=20.0"), std::string::npos);
}

TEST(RunnerTest, CombinationsEnumerate) {
  const auto c0 = ExperimentRunner::combinations(6, 3);
  EXPECT_EQ(c0.size(), 20u);  // C(6,3)
  const auto c1 = ExperimentRunner::combinations(6, 6);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].size(), 6u);
  EXPECT_TRUE(ExperimentRunner::combinations(3, 5).empty());
  // Every combination strictly increasing and in range.
  for (const auto& comb : c0) {
    for (std::size_t i = 0; i < comb.size(); ++i) {
      EXPECT_LT(comb[i], 6u);
      if (i > 0) {
        EXPECT_LT(comb[i - 1], comb[i]);
      }
    }
  }
}

}  // namespace
}  // namespace arraytrack::testbed
