// Tests for the ArrayTrack server and the System facade.
#include <gtest/gtest.h>

#include "core/arraytrack.h"

namespace arraytrack::core {
namespace {

using geom::Vec2;

geom::Floorplan open_plan() {
  geom::Floorplan plan({{0, 0}, {20, 12}});
  plan.add_wall({0, 0}, {20, 0}, geom::Material::kBrick);
  plan.add_wall({20, 0}, {20, 12}, geom::Material::kBrick);
  plan.add_wall({20, 12}, {0, 12}, geom::Material::kBrick);
  plan.add_wall({0, 12}, {0, 0}, geom::Material::kBrick);
  return plan;
}

SystemConfig fast_config() {
  SystemConfig cfg;
  // Coarser grid keeps unit tests quick; benches use the 10 cm grid.
  cfg.server.localizer.grid_step_m = 0.25;
  return cfg;
}

TEST(SystemTest, AddApsAndCalibrate) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  EXPECT_EQ(sys.add_ap({1, 1}, 0.0), 0);
  EXPECT_EQ(sys.add_ap({19, 1}, deg2rad(90.0)), 1);
  EXPECT_EQ(sys.num_aps(), 2u);
  EXPECT_TRUE(sys.ap(0).calibrated());
  EXPECT_TRUE(sys.ap(1).calibrated());
}

TEST(SystemTest, LocateNeedsFrames) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1, 1}, 0.0);
  EXPECT_FALSE(sys.locate(0, 0.0).has_value());
}

TEST(SystemTest, ThreeApLocalizationInOpenRoom) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({19.0, 1.0}, deg2rad(135.0));
  sys.add_ap({10.0, 11.0}, deg2rad(-90.0));

  const Vec2 truth{12.0, 6.0};
  // Three frames with slight movement (enables multipath suppression).
  sys.transmit(7, truth, 0.00);
  sys.transmit(7, truth + Vec2{0.03, 0.02}, 0.03);
  sys.transmit(7, truth + Vec2{-0.02, 0.04}, 0.06);

  const auto fix = sys.locate(7, 0.07);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 0.5)
      << "got " << fix->position.to_string();
}

TEST(SystemTest, HeatmapModeNearTruth) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({19.0, 1.0}, deg2rad(135.0));
  const Vec2 truth{9.0, 7.0};
  sys.transmit(0, truth, 0.0);
  const auto map = sys.heatmap(0, 0.01);
  ASSERT_TRUE(map.has_value());
  // Find the argmax cell.
  double best = -1.0;
  Vec2 best_pos;
  for (std::size_t iy = 0; iy < map->ny; ++iy)
    for (std::size_t ix = 0; ix < map->nx; ++ix)
      if (map->at(ix, iy) > best) {
        best = map->at(ix, iy);
        best_pos = map->cell_center(ix, iy);
      }
  EXPECT_LT(geom::distance(best_pos, truth), 1.0);
}

TEST(ServerTest, ClientSpectraOnlyFromApsThatHeard) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1, 1}, 0.0);
  sys.add_ap({19, 1}, deg2rad(180.0));
  sys.transmit(3, {10, 6}, 0.0);
  // Client 5 never transmitted.
  EXPECT_TRUE(sys.server().client_spectra(5, 0.01).empty());
  EXPECT_EQ(sys.server().client_spectra(3, 0.01).size(), 2u);
  // Frames older than the grouping window are not used.
  EXPECT_TRUE(sys.server().client_spectra(3, 10.0).empty());
}

TEST(ServerTest, SuppressionToggleChangesSpectra) {
  const auto plan = open_plan();
  SystemConfig with = fast_config();
  with.server.multipath_suppression = true;
  SystemConfig without = fast_config();
  without.server.multipath_suppression = false;

  const Vec2 truth{14.0, 4.0};
  auto run = [&](SystemConfig cfg) {
    System sys(&plan, cfg);
    sys.add_ap({1.0, 1.0}, deg2rad(45.0));
    sys.transmit(0, truth, 0.00);
    sys.transmit(0, truth + Vec2{0.04, 0.01}, 0.03);
    sys.transmit(0, truth + Vec2{0.01, -0.04}, 0.06);
    return sys.server().client_spectra(0, 0.07);
  };
  const auto s_with = run(with);
  const auto s_without = run(without);
  ASSERT_EQ(s_with.size(), 1u);
  ASSERT_EQ(s_without.size(), 1u);
  // Suppression removes peaks: never more peaks than unsuppressed.
  EXPECT_LE(s_with[0].spectrum.find_peaks(0.08).size(),
            s_without[0].spectrum.find_peaks(0.08).size());
}

TEST(ServerTest, LocateFromSpectraDirect) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({19.0, 1.0}, deg2rad(135.0));
  const Vec2 truth{10.0, 5.0};
  sys.transmit(0, truth, 0.0);
  const auto spectra = sys.server().client_spectra(0, 0.01);
  const auto fix = sys.server().locate_from_spectra(spectra);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 1.0);
}

TEST(ServerTest, LocateTrackedSmoothsSequentialFixes) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  sys.add_ap({19.0, 1.0}, deg2rad(135.0));
  sys.add_ap({10.0, 11.0}, deg2rad(-90.0));

  // A client walks in +x; tracked fixes must stay finite and close to
  // the truth, and the tracker state must persist across calls.
  Vec2 pos{6.0, 6.0};
  double worst = 0.0;
  for (int k = 0; k < 8; ++k) {
    const double t = 0.2 * k;
    sys.transmit(4, pos, t);
    const auto fix = sys.server().locate_tracked(4, t + 0.01);
    ASSERT_TRUE(fix.has_value());
    worst = std::max(worst, geom::distance(fix->position, pos));
    pos += Vec2{0.2, 0.0};
  }
  EXPECT_LT(worst, 2.0);
}

TEST(ServerTest, SetPipelineRebuildsProcessors) {
  const auto plan = open_plan();
  System sys(&plan, fast_config());
  sys.add_ap({1.0, 1.0}, deg2rad(45.0));
  const Vec2 truth{12.0, 6.0};
  sys.transmit(0, truth, 0.0);

  const auto before = sys.server().client_spectra(0, 0.01);
  ASSERT_EQ(before.size(), 1u);

  PipelineOptions raw;
  raw.geometry_weighting = false;
  raw.symmetry_removal = false;
  raw.bearing_sigma_deg = 0.0;
  sys.server().set_pipeline(raw);
  const auto after = sys.server().client_spectra(0, 0.01);
  ASSERT_EQ(after.size(), 1u);
  // The raw pipeline keeps the mirror; the default suppressed it.
  const double truth_local = wrap_2pi(
      sys.ap(0).array().bearing_to(truth));
  const double mirror = wrap_2pi(-truth_local);
  EXPECT_GT(after[0].spectrum.value_at(mirror) + 1e-9,
            before[0].spectrum.value_at(mirror));
}

}  // namespace
}  // namespace arraytrack::core
