// Multi-node federation determinism tests.
//
// The headline claim: a cluster of N virtual-clock nodes fed over
// authenticated links produces the *byte-identical* sorted fix set as
// a single LocationService run of the same records — across 1/2/4
// nodes, 1/2/8 workers, batch widths, scripted leave/join with session
// handoff, and elastic resizing. Sharding, link framing, handoff
// serialization and the front-tier merge must all be transparent to
// the fix stream for this to hold, which is what makes it the
// strongest single assertion in the tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "phy/wire.h"
#include "service/service.h"

namespace arraytrack::cluster {
namespace {

using geom::Vec2;
using service::LocationService;
using service::ServiceOptions;
using Record = LocationService::TimedWireRecord;

geom::Floorplan make_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> make_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

const std::vector<Vec2>& client_sites() {
  static const std::vector<Vec2> sites = {
      {12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}, {14.5, 2.5}};
  return sites;
}

std::vector<Record> wire_schedule(core::System& sys, int clients, int frames,
                                  double gap_s) {
  phy::WireFormat wire;
  std::vector<Record> out;
  for (int i = 0; i < frames; ++i)
    for (int c = 0; c < clients; ++c) {
      const double t = 0.1 + gap_s * i + 0.011 * c;
      sys.transmit(c, client_sites()[std::size_t(c)], t);
      for (std::size_t a = 0; a < sys.num_aps(); ++a)
        out.push_back({t, a, wire.encode(sys.ap(int(a)).buffer().newest())});
    }
  return out;
}

ServiceOptions virtual_options(std::size_t workers) {
  ServiceOptions opt;
  opt.workers = workers;
  opt.virtual_clock = true;
  opt.virtual_cost_s = 0.02;
  opt.latency_slo_s = 0.5;
  return opt;
}

ClusterOptions cluster_options(std::size_t nodes, std::size_t workers) {
  ClusterOptions opt;
  opt.nodes = nodes;
  opt.service = virtual_options(workers);
  return opt;
}

/// Baseline: one service, every record, sorted report.
service::ServiceReport baseline(const geom::Floorplan* plan,
                                const std::vector<Record>& records,
                                ServiceOptions opt) {
  auto sys = make_system(plan);
  LocationService svc(sys.get(), opt);
  return svc.run_wire(records);
}

void expect_identical_fixes(const std::vector<delivery::Fix>& a,
                            const std::vector<delivery::Fix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_id, b[i].client_id);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].frame_time_s, b[i].frame_time_s);
    // Exact equality is the contract: sharding, links and handoff must
    // not perturb a single bit of the pipeline's output.
    EXPECT_EQ(a[i].position.x, b[i].position.x);
    EXPECT_EQ(a[i].position.y, b[i].position.y);
    EXPECT_EQ(a[i].smoothed.x, b[i].smoothed.x);
    EXPECT_EQ(a[i].smoothed.y, b[i].smoothed.y);
    EXPECT_EQ(a[i].likelihood, b[i].likelihood);
  }
}

TEST(ClusterTest, ByteIdenticalFixesAcrossNodeAndWorkerCounts) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 5, 0.2);
  const auto base = baseline(&plan, records, virtual_options(2));
  ASSERT_GT(base.fixes.size(), 0u);

  for (std::size_t nodes : {1u, 2u, 4u})
    for (std::size_t workers : {1u, 2u, 8u}) {
      Cluster cluster([&] { return make_system(&plan); },
                      cluster_options(nodes, workers));
      const auto rep = cluster.run(records);
      expect_identical_fixes(base.fixes, rep.fixes);
      EXPECT_EQ(rep.stats.unroutable, 0u) << nodes << "n/" << workers << "w";
      EXPECT_EQ(rep.links.auth_bad_tag, 0u);
      EXPECT_EQ(rep.links.delivered, rep.links.sent);
    }
}

TEST(ClusterTest, ByteIdenticalFixesAcrossBatchWidths) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 5, 0.2);
  const auto base = baseline(&plan, records, virtual_options(2));

  for (std::size_t batch : {1u, 2u, 4u}) {
    auto opt = cluster_options(2, 2);
    opt.service.batch_max = batch;
    Cluster cluster([&] { return make_system(&plan); }, opt);
    expect_identical_fixes(base.fixes, cluster.run(records).fixes);
  }
}

TEST(ClusterTest, SteppedAndBatchedDrivesAgree) {
  // Feeding one capture event at a time (all APs' records of one
  // transmit) with a pump after each must equal one bulk run: the link
  // layer adds no order or timing sensitivity. Event granularity is
  // the service's own contract — records of one transmit landing in
  // one ingest batch is what groups them into one job.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const std::size_t aps = capture->num_aps();
  const auto records = wire_schedule(*capture, 3, 4, 0.2);
  const auto base = baseline(&plan, records, virtual_options(2));

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(2, 2));
  for (std::size_t i = 0; i < records.size(); i += aps) {
    cluster.ingest({records.begin() + std::ptrdiff_t(i),
                    records.begin() + std::ptrdiff_t(i + aps)});
    cluster.pump();
  }
  cluster.flush();
  auto fixes = cluster.drain_fixes();
  std::sort(fixes.begin(), fixes.end(),
            [](const delivery::Fix& a, const delivery::Fix& b) {
              if (a.frame_time_s != b.frame_time_s)
                return a.frame_time_s < b.frame_time_s;
              if (a.client_id != b.client_id) return a.client_id < b.client_id;
              return a.seq < b.seq;
            });
  expect_identical_fixes(base.fixes, fixes);
}

TEST(ClusterTest, ShardMapIsCanonicalOverMembership) {
  const auto plan = make_plan();
  Cluster cluster([&] { return make_system(&plan); }, cluster_options(4, 1));
  // Every client routes to an alive node, stably.
  std::map<int, std::size_t> before;
  for (int c = 0; c < 64; ++c) {
    before[c] = cluster.node_of(c);
    EXPECT_LT(before[c], 4u);
    EXPECT_EQ(cluster.node_of(c), before[c]);
  }
  // A leave only moves the departed node's clients; a re-join restores
  // the original map exactly (assignment depends on the alive set, not
  // on history).
  cluster.node_leave(2);
  for (int c = 0; c < 64; ++c) {
    if (before[c] != 2)
      EXPECT_EQ(cluster.node_of(c), before[c]) << "client " << c << " moved";
    else
      EXPECT_NE(cluster.node_of(c), 2u);
  }
  cluster.node_join(2);
  for (int c = 0; c < 64; ++c) EXPECT_EQ(cluster.node_of(c), before[c]);
}

TEST(ClusterTest, GracefulLeaveHandsSessionsOffBitExactly) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 6, 0.2);
  const auto base = baseline(&plan, records, virtual_options(2));
  const std::size_t half = records.size() / 2;

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(3, 2));
  cluster.ingest({records.begin(), records.begin() + std::ptrdiff_t(half)});
  cluster.flush();
  cluster.node_leave(1);
  EXPECT_EQ(cluster.alive_nodes(), 2u);
  cluster.ingest({records.begin() + std::ptrdiff_t(half), records.end()});
  ClusterReport rep = cluster.run({});

  // Sessions moved, none rejected, and the survivors continued every
  // tracker bit-for-bit — otherwise the smoothed fixes diverge.
  EXPECT_GT(cluster.stats().handoffs_sent, 0u);
  EXPECT_EQ(cluster.stats().handoffs_applied, cluster.stats().handoffs_sent);
  EXPECT_EQ(cluster.stats().handoffs_rejected, 0u);
  EXPECT_EQ(cluster.stats().sessions_lost, 0u);
  expect_identical_fixes(base.fixes, rep.fixes);
}

TEST(ClusterTest, JoinMigratesShardsBackBitExactly) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 6, 0.2);
  const auto base = baseline(&plan, records, virtual_options(2));
  const std::size_t half = records.size() / 2;

  Cluster cluster([&] { return make_system(&plan); }, cluster_options(4, 2));
  cluster.node_leave(3);  // start with a 3-node fleet, slot 3 dark
  cluster.ingest({records.begin(), records.begin() + std::ptrdiff_t(half)});
  cluster.flush();
  cluster.node_join(3);  // scale out mid-run
  EXPECT_EQ(cluster.alive_nodes(), 4u);
  cluster.ingest({records.begin() + std::ptrdiff_t(half), records.end()});
  ClusterReport rep = cluster.run({});

  EXPECT_EQ(cluster.stats().handoffs_applied, cluster.stats().handoffs_sent);
  EXPECT_EQ(cluster.stats().handoffs_rejected, 0u);
  expect_identical_fixes(base.fixes, rep.fixes);
}

TEST(ClusterTest, ElasticNodesStillMatchFixedWidthNodes) {
  // Heavier load so the per-node autoscalers actually fire. Coalescing
  // under load depends on how clients share queues, so the byte-equal
  // reference is a fixed-width cluster of the *same topology*, not a
  // single service: elasticity on vs off must be invisible in the fix
  // stream.
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 4, 12, 0.05);

  auto opt = cluster_options(2, 1);
  opt.service.virtual_cost_s = 0.1;
  opt.service.latency_slo_s = 30.0;  // no shedding: complete sets
  opt.service.shards = 1;  // per-shard depth is the pressure signal
  Cluster fixed([&] { return make_system(&plan); }, opt);
  const auto base = fixed.run(records);
  ASSERT_GT(base.fixes.size(), 0u);

  opt.service.elastic.enabled = true;
  opt.service.elastic.min_workers = 1;
  opt.service.elastic.max_workers = 4;
  opt.service.elastic.eval_period_s = 0.25;
  opt.service.elastic.grow_depth = 1.5;
  opt.service.elastic.hysteresis = 2;
  Cluster cluster([&] { return make_system(&plan); }, opt);
  const auto rep = cluster.run(records);

  std::size_t resizes = 0;
  for (std::size_t n = 0; n < cluster.num_slots(); ++n)
    resizes += cluster.node_service(n)->elastic_log().size();
  EXPECT_GT(resizes, 0u) << "load never tripped a node's autoscaler";
  expect_identical_fixes(base.fixes, rep.fixes);
}

TEST(ClusterTest, UnroutableRecordsAreCountedAndDropped) {
  const auto plan = make_plan();
  Cluster cluster([&] { return make_system(&plan); }, cluster_options(2, 1));
  cluster.ingest({{0.1, 0, {0xde, 0xad, 0xbe, 0xef}}});  // no readable header
  cluster.flush();
  EXPECT_EQ(cluster.stats().records_in, 1u);
  EXPECT_EQ(cluster.stats().unroutable, 1u);
  EXPECT_EQ(cluster.total_link_stats().sent, 0u);
}

TEST(ClusterTest, StatsJsonCarriesClusterAndNodeCounters) {
  const auto plan = make_plan();
  auto capture = make_system(&plan);
  const auto records = wire_schedule(*capture, 2, 2, 0.2);
  Cluster cluster([&] { return make_system(&plan); }, cluster_options(2, 1));
  cluster.run(records);
  const std::string json = cluster.stats_json();
  EXPECT_NE(json.find("\"records_in\": "), std::string::npos);
  EXPECT_NE(json.find("\"link_delivered\": "), std::string::npos);
  EXPECT_NE(json.find("\"node_services\": ["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace arraytrack::cluster
