// Unit and property tests for the complex linear algebra substrate.
#include <gtest/gtest.h>

#include <random>

#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace arraytrack::linalg {
namespace {

CMatrix random_matrix(std::size_t rows, std::size_t cols,
                      std::mt19937_64& rng) {
  std::normal_distribution<double> g(0.0, 1.0);
  CMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = cplx{g(rng), g(rng)};
  return m;
}

CMatrix random_hermitian(std::size_t n, std::mt19937_64& rng) {
  const CMatrix a = random_matrix(n, n, rng);
  CMatrix h = a * a.hermitian();
  // Add an asymmetric-free perturbation on the diagonal for variety.
  for (std::size_t i = 0; i < n; ++i) h(i, i) += cplx{double(i), 0.0};
  return h;
}

TEST(CVectorTest, ArithmeticAndNorms) {
  CVector a{cplx{1, 0}, cplx{0, 1}};
  CVector b{cplx{2, 0}, cplx{0, -1}};
  const CVector sum = a + b;
  EXPECT_EQ(sum[0], (cplx{3, 0}));
  EXPECT_EQ(sum[1], (cplx{0, 0}));
  EXPECT_DOUBLE_EQ(a.squared_norm(), 2.0);
  EXPECT_DOUBLE_EQ(a.norm(), std::sqrt(2.0));
}

TEST(CVectorTest, DotIsHermitian) {
  CVector a{cplx{1, 2}, cplx{3, -1}};
  CVector b{cplx{0, 1}, cplx{2, 2}};
  const cplx ab = a.dot(b);
  const cplx ba = b.dot(a);
  EXPECT_NEAR(ab.real(), ba.real(), 1e-12);
  EXPECT_NEAR(ab.imag(), -ba.imag(), 1e-12);
  // <a, a> is the squared norm.
  EXPECT_NEAR(a.dot(a).real(), a.squared_norm(), 1e-12);
  EXPECT_NEAR(a.dot(a).imag(), 0.0, 1e-12);
}

TEST(CVectorTest, NormalizedHasUnitNorm) {
  CVector a{cplx{3, 4}, cplx{0, 0}, cplx{1, -1}};
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
  // Zero vector stays zero instead of dividing by zero.
  CVector z(3);
  EXPECT_DOUBLE_EQ(z.normalized().norm(), 0.0);
}

TEST(CVectorTest, ConjugateInvolution) {
  CVector a{cplx{1, 2}, cplx{-3, 0.5}};
  const CVector c = a.conj().conj();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], c[i]);
}

TEST(CMatrixTest, IdentityMultiplication) {
  std::mt19937_64 rng(1);
  const CMatrix a = random_matrix(4, 4, rng);
  const CMatrix i = CMatrix::identity(4);
  EXPECT_LT((a * i).max_abs_diff(a), 1e-12);
  EXPECT_LT((i * a).max_abs_diff(a), 1e-12);
}

TEST(CMatrixTest, MultiplicationAgainstHandComputed) {
  const CMatrix a{{cplx{1, 0}, cplx{0, 1}}, {cplx{2, 0}, cplx{0, 0}}};
  const CMatrix b{{cplx{0, 1}, cplx{1, 0}}, {cplx{1, 0}, cplx{0, -1}}};
  const CMatrix c = a * b;
  EXPECT_EQ(c(0, 0), (cplx{0, 2}));   // 1*i + i*1
  EXPECT_EQ(c(0, 1), (cplx{2, 0}));   // 1*1 + i*(-i)
  EXPECT_EQ(c(1, 0), (cplx{0, 2}));   // 2*i
  EXPECT_EQ(c(1, 1), (cplx{2, 0}));   // 2*1
}

TEST(CMatrixTest, HermitianTransposeProperties) {
  std::mt19937_64 rng(2);
  const CMatrix a = random_matrix(3, 5, rng);
  const CMatrix ah = a.hermitian();
  ASSERT_EQ(ah.rows(), 5u);
  ASSERT_EQ(ah.cols(), 3u);
  EXPECT_LT(ah.hermitian().max_abs_diff(a), 1e-15);
  // (AB)^H == B^H A^H.
  const CMatrix b = random_matrix(5, 4, rng);
  EXPECT_LT((a * b).hermitian().max_abs_diff(b.hermitian() * a.hermitian()),
            1e-12);
}

TEST(CMatrixTest, OuterProductRankOne) {
  CVector v{cplx{1, 1}, cplx{2, 0}};
  CVector w{cplx{0, 1}, cplx{1, -1}, cplx{3, 0}};
  const CMatrix m = CMatrix::outer(v, w);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), v[0] * std::conj(w[0]));
  EXPECT_EQ(m(1, 2), v[1] * std::conj(w[2]));
}

TEST(CMatrixTest, BlockExtraction) {
  std::mt19937_64 rng(3);
  const CMatrix a = random_matrix(5, 5, rng);
  const CMatrix b = a.block(1, 2, 3, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(b(r, c), a(r + 1, c + 2));
}

TEST(CMatrixTest, TraceAndFrobenius) {
  const CMatrix a{{cplx{1, 0}, cplx{0, 2}}, {cplx{0, 0}, cplx{3, 1}}};
  EXPECT_EQ(a.trace(), (cplx{4, 1}));
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(1 + 4 + 9 + 1), 1e-12);
}

TEST(CMatrixTest, IsHermitianDetects) {
  std::mt19937_64 rng(4);
  CMatrix h = random_hermitian(4, rng);
  EXPECT_TRUE(h.is_hermitian(1e-9));
  h(0, 1) += cplx{0.1, 0.0};
  EXPECT_FALSE(h.is_hermitian(1e-9));
}

TEST(QuadraticFormTest, MatchesDirectComputation) {
  std::mt19937_64 rng(5);
  const CMatrix h = random_hermitian(3, rng);
  CVector v{cplx{1, 0}, cplx{0, 1}, cplx{0.5, -0.5}};
  const double q = quadratic_form_real(v, h);
  const cplx direct = v.dot(h * v);
  EXPECT_NEAR(q, direct.real(), 1e-10);
}

TEST(EigenTest, DiagonalMatrix) {
  const std::vector<double> d{3.0, -1.0, 2.0};
  const auto r = eig_hermitian(CMatrix::diagonal(d));
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenTest, TwoByTwoKnown) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  const CMatrix a{{cplx{2, 0}, cplx{0, 1}}, {cplx{0, -1}, cplx{2, 0}}};
  const auto r = eig_hermitian(a);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-10);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_THROW(eig_hermitian(CMatrix(2, 3)), std::invalid_argument);
}

TEST(EigenTest, RejectsNonHermitian) {
  CMatrix a{{cplx{1, 0}, cplx{5, 0}}, {cplx{0, 0}, cplx{1, 0}}};
  EXPECT_THROW(eig_hermitian(a), std::invalid_argument);
}

// Property sweep: random Hermitian matrices of several sizes must
// satisfy A*V = V*diag(lambda), V unitary, eigenvalues sorted.
class EigenPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenPropertyTest, ReconstructionAndUnitarity) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(100 + n);
  for (int rep = 0; rep < 5; ++rep) {
    const CMatrix a = random_hermitian(n, rng);
    const auto r = eig_hermitian(a);
    ASSERT_EQ(r.eigenvalues.size(), n);

    // Sorted ascending.
    for (std::size_t i = 1; i < n; ++i)
      EXPECT_LE(r.eigenvalues[i - 1], r.eigenvalues[i] + 1e-9);

    // A * v_i == lambda_i * v_i.
    const double scale = a.frobenius_norm();
    for (std::size_t i = 0; i < n; ++i) {
      const CVector v = r.eigenvectors.col(i);
      const CVector av = a * v;
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR(std::abs(av[j] - r.eigenvalues[i] * v[j]), 0.0,
                    1e-8 * scale)
            << "n=" << n << " eigpair " << i;
    }

    // V^H V == I.
    const CMatrix vhv = r.eigenvectors.hermitian() * r.eigenvectors;
    EXPECT_LT(vhv.max_abs_diff(CMatrix::identity(n)), 1e-9);

    // Trace preserved: sum of eigenvalues == trace(A).
    double sum = 0.0;
    for (double ev : r.eigenvalues) sum += ev;
    EXPECT_NEAR(sum, a.trace().real(), 1e-8 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(EigenTest, PositiveSemidefiniteRankDeficient) {
  // Rank-1 covariance-like matrix: v v^H has eigenvalues {|v|^2, 0...}.
  CVector v{cplx{1, 1}, cplx{2, 0}, cplx{0, -1}, cplx{0.5, 0.5}};
  const CMatrix r1 = CMatrix::outer(v, v);
  const auto r = eig_hermitian(r1);
  EXPECT_NEAR(r.eigenvalues.back(), v.squared_norm(), 1e-9);
  for (std::size_t i = 0; i + 1 < r.eigenvalues.size(); ++i)
    EXPECT_NEAR(r.eigenvalues[i], 0.0, 1e-9);
}

// ---------------------------------------------------------------------
// Edge cases the subspace tracker's exact fallback leans on: repeated
// and near-degenerate eigenvalues, rank-deficient and zero matrices,
// and the warm-started (seeded) path agreeing with the plain one.
// ---------------------------------------------------------------------

TEST(EigenTest, ZeroMatrixAllZeroEigenvalues) {
  const auto r = eig_hermitian(CMatrix(5, 5));
  for (double ev : r.eigenvalues) EXPECT_EQ(ev, 0.0);
  // Eigenvectors are still a unitary basis.
  const CMatrix g = r.eigenvectors.hermitian() * r.eigenvectors;
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(g(i, j).real(), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(EigenTest, RepeatedEigenvaluesSpanIsCorrect) {
  // 3*I plus a rank-1 bump: eigenvalues {3, 3, 3, 3 + |v|^2}. The
  // degenerate eigenvectors are not unique, but reconstruction and
  // orthonormality must still hold exactly.
  CVector v{cplx{1, 0}, cplx{0, 1}, cplx{-1, 1}, cplx{0.5, -0.5}};
  CMatrix a = CMatrix::outer(v, v);
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 3.0;
  const auto r = eig_hermitian(a);
  for (std::size_t i = 0; i + 1 < 4; ++i)
    EXPECT_NEAR(r.eigenvalues[i], 3.0, 1e-9);
  EXPECT_NEAR(r.eigenvalues.back(), 3.0 + v.squared_norm(), 1e-9);
  const CMatrix recon = r.eigenvectors *
                        CMatrix::diagonal(r.eigenvalues) *
                        r.eigenvectors.hermitian();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(std::abs(recon(i, j) - a(i, j)), 0.0, 1e-9);
}

TEST(EigenTest, NearDegenerateEigenvaluesStaySorted) {
  // Two eigenvalues split by 1e-9 on top of a well-separated third.
  std::vector<double> d{1.0, 2.0, 2.0 + 1e-9};
  const auto r = eig_hermitian(CMatrix::diagonal(d));
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_LE(r.eigenvalues[0], r.eigenvalues[1]);
  EXPECT_LE(r.eigenvalues[1], r.eigenvalues[2]);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1] + r.eigenvalues[2], 4.0 + 1e-9, 1e-12);
}

TEST(EigenTest, SeededIdentityBitIdenticalToPlain) {
  std::mt19937_64 rng(71);
  const CMatrix a = random_hermitian(6, rng);
  const auto plain = eig_hermitian(a);
  const auto seeded = eig_hermitian_seeded(a, CMatrix::identity(6));
  ASSERT_EQ(plain.eigenvalues.size(), seeded.eigenvalues.size());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(plain.eigenvalues[i], seeded.eigenvalues[i]);
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(plain.eigenvectors(i, j), seeded.eigenvectors(i, j));
  }
}

TEST(EigenTest, SeededWarmStartSameSortedEigensystem) {
  // Seed with the eigenbasis of a nearby matrix; the seeded solve must
  // land on the same sorted eigensystem as the plain one (up to the
  // per-eigenvector phase that any eigensolver is free to choose).
  std::mt19937_64 rng(72);
  const CMatrix a = random_hermitian(8, rng);
  CMatrix perturbed = a;
  std::normal_distribution<double> g(0.0, 1e-3);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      const cplx e{g(rng), g(rng)};
      perturbed(i, j) += e;
      perturbed(j, i) += std::conj(e);
    }
  }
  const auto seed = eig_hermitian(perturbed);
  const auto warm = eig_hermitian_seeded(a, seed.eigenvectors);
  const auto cold = eig_hermitian(a);
  const double scale = a.frobenius_norm();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(warm.eigenvalues[i], cold.eigenvalues[i], 1e-8 * scale);
    // Same eigenvector up to phase: |<warm_i, cold_i>| == 1.
    cplx dot{0.0, 0.0};
    for (std::size_t r = 0; r < 8; ++r)
      dot += std::conj(warm.eigenvectors(r, i)) * cold.eigenvectors(r, i);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-6);
  }
}

TEST(EigenTest, SeededRejectsWrongSizeSeed) {
  std::mt19937_64 rng(73);
  const CMatrix a = random_hermitian(4, rng);
  EXPECT_THROW(eig_hermitian_seeded(a, CMatrix::identity(5)),
               std::invalid_argument);
}

TEST(TypesTest, AngleWrapping) {
  EXPECT_NEAR(wrap_2pi(-kPi / 2), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_2pi(5 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(1.5 * kPi), -0.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-15);
  EXPECT_NEAR(rad2deg(kPi / 4), 45.0, 1e-12);
}

}  // namespace
}  // namespace arraytrack::linalg
