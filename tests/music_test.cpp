// Tests for covariance estimation, spatial smoothing and MUSIC.
#include <gtest/gtest.h>

#include <random>

#include "aoa/covariance.h"
#include "aoa/music.h"
#include "array/geometry.h"
#include "array/placed_array.h"

namespace arraytrack::aoa {
namespace {

using array::ArrayGeometry;
using array::PlacedArray;

constexpr double kLambda = 0.1226;

PlacedArray ula8() {
  return PlacedArray(ArrayGeometry::uniform_linear(8, kLambda / 2), {0, 0},
                     0.0);
}

std::vector<std::size_t> first_n(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// Snapshot matrix for D incoherent sources at the given bearings.
linalg::CMatrix incoherent_snapshots(const PlacedArray& pa,
                                     const std::vector<double>& bearings,
                                     std::size_t n, double snr_db,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  const double noise_sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);

  linalg::CMatrix x(pa.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    for (double b : bearings) {
      const auto a = pa.steering(b, kLambda);
      const cplx s = std::exp(kJ * uang(rng));  // independent per source
      for (std::size_t m = 0; m < pa.size(); ++m) x(m, k) += a[m] * s;
    }
    for (std::size_t m = 0; m < pa.size(); ++m)
      x(m, k) += cplx{noise_sigma * g(rng), noise_sigma * g(rng)};
  }
  return x;
}

// Coherent multipath: the same symbol arrives from several bearings
// with fixed complex gains (rank-1 covariance before smoothing).
linalg::CMatrix coherent_snapshots(const PlacedArray& pa,
                                   const std::vector<double>& bearings,
                                   const std::vector<cplx>& gains,
                                   std::size_t n, double snr_db,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::normal_distribution<double> g(0.0, 1.0);
  const double noise_sigma = std::pow(10.0, -snr_db / 20.0) / std::sqrt(2.0);

  linalg::CMatrix x(pa.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx s = std::exp(kJ * uang(rng));  // one symbol, all paths
    for (std::size_t d = 0; d < bearings.size(); ++d) {
      const auto a = pa.steering(bearings[d], kLambda);
      for (std::size_t m = 0; m < pa.size(); ++m)
        x(m, k) += gains[d] * a[m] * s;
    }
    for (std::size_t m = 0; m < pa.size(); ++m)
      x(m, k) += cplx{noise_sigma * g(rng), noise_sigma * g(rng)};
  }
  return x;
}

double strongest_bearing_deg(const AoaSpectrum& s) {
  return rad2deg(s.dominant_bearing());
}

TEST(CovarianceTest, MatchesDirectFormula) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  linalg::CMatrix x(3, 5);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) x(r, c) = cplx{g(rng), g(rng)};
  const auto r = sample_covariance(x);
  EXPECT_TRUE(r.is_hermitian(1e-12));
  cplx direct{0, 0};
  for (std::size_t k = 0; k < 5; ++k)
    direct += x(1, k) * std::conj(x(2, k));
  EXPECT_NEAR(std::abs(r(1, 2) - direct / 5.0), 0.0, 1e-12);
}

TEST(CovarianceTest, ZeroSnapshotsThrows) {
  EXPECT_THROW(sample_covariance(linalg::CMatrix(3, 0)),
               std::invalid_argument);
}

TEST(SmoothingTest, GroupOneIsIdentity) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  linalg::CMatrix x(4, 10);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 10; ++c) x(r, c) = cplx{g(rng), g(rng)};
  const auto r = sample_covariance(x);
  EXPECT_LT(spatial_smooth(r, 1).max_abs_diff(r), 1e-15);
}

TEST(SmoothingTest, ShrinksDimensionAndStaysHermitian) {
  const auto pa = ula8();
  const auto x = incoherent_snapshots(pa, {deg2rad(70)}, 20, 20, 5);
  const auto r = sample_covariance(x);
  for (std::size_t ng : {2u, 3u, 4u}) {
    const auto rs = spatial_smooth(r, ng);
    EXPECT_EQ(rs.rows(), 8 - ng + 1);
    EXPECT_TRUE(rs.is_hermitian(1e-9));
  }
  EXPECT_THROW(spatial_smooth(r, 0), std::invalid_argument);
  EXPECT_THROW(spatial_smooth(r, 9), std::invalid_argument);
}

TEST(SmoothingTest, RestoresRankOfCoherentSources) {
  // Two coherent arrivals: unsmoothed covariance is rank ~1 (plus
  // noise); smoothing lifts the second signal eigenvalue.
  const auto pa = ula8();
  const auto x = coherent_snapshots(
      pa, {deg2rad(60), deg2rad(120)}, {cplx{1, 0}, cplx{0.9, 0.3}}, 100,
      40.0, 6);
  const auto r = sample_covariance(x);
  const auto eig_raw = linalg::eig_hermitian(r).eigenvalues;
  const auto rs = spatial_smooth(r, 3);
  const auto eig_s = linalg::eig_hermitian(rs).eigenvalues;
  const double raw_ratio = eig_raw[eig_raw.size() - 2] / eig_raw.back();
  const double smooth_ratio = eig_s[eig_s.size() - 2] / eig_s.back();
  EXPECT_LT(raw_ratio, 0.02);      // rank collapse without smoothing
  EXPECT_GT(smooth_ratio, 0.05);   // second eigenvalue restored
}

TEST(ForwardBackwardTest, PreservesHermitianAndDiagonal) {
  const auto pa = ula8();
  const auto x = incoherent_snapshots(pa, {deg2rad(70)}, 50, 20, 7);
  const auto r = sample_covariance(x);
  const auto fb = forward_backward(r);
  EXPECT_TRUE(fb.is_hermitian(1e-9));
  EXPECT_NEAR(fb.trace().real(), r.trace().real(), 1e-9);
}

TEST(MusicTest, RejectsBadConstruction) {
  const auto pa = ula8();
  EXPECT_THROW(MusicEstimator(&pa, {0}, kLambda), std::invalid_argument);
  MusicOptions opt;
  opt.smoothing_groups = 8;
  EXPECT_THROW(MusicEstimator(&pa, first_n(8), kLambda, opt),
               std::invalid_argument);
}

TEST(MusicTest, SingleSourceFreeSpace) {
  const auto pa = ula8();
  MusicEstimator music(&pa, first_n(8), kLambda);
  const auto x = incoherent_snapshots(pa, {deg2rad(75)}, 10, 25, 11);
  const auto spec = music.spectrum(x);
  EXPECT_NEAR(strongest_bearing_deg(spec), 75.0, 1.5);
}

TEST(MusicTest, SpectrumIsMirrored) {
  const auto pa = ula8();
  MusicEstimator music(&pa, first_n(8), kLambda);
  const auto x = incoherent_snapshots(pa, {deg2rad(75)}, 10, 25, 12);
  const auto spec = music.spectrum(x);
  for (std::size_t i = 0; i < spec.bins(); ++i) {
    const std::size_t mirror = (spec.bins() - i) % spec.bins();
    EXPECT_NEAR(spec[i], spec[mirror], 1e-9 * (1.0 + spec[i]));
  }
}

// Parameterized property sweep: MUSIC must recover a single source
// within 2 degrees across the usable bearing range.
class MusicBearingSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicBearingSweep, RecoversBearing) {
  const double bearing_deg = GetParam();
  const auto pa = ula8();
  MusicEstimator music(&pa, first_n(8), kLambda);
  const auto x =
      incoherent_snapshots(pa, {deg2rad(bearing_deg)}, 10, 25,
                           std::uint64_t(bearing_deg * 10));
  const auto spec = music.spectrum(x);
  EXPECT_NEAR(strongest_bearing_deg(spec), bearing_deg, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bearings, MusicBearingSweep,
                         ::testing::Values(20.0, 35.0, 50.0, 65.0, 80.0,
                                           90.0, 105.0, 120.0, 135.0, 150.0,
                                           160.0));

TEST(MusicTest, TwoIncoherentSourcesResolved) {
  const auto pa = ula8();
  MusicOptions opt;
  opt.smoothing_groups = 2;
  MusicEstimator music(&pa, first_n(8), kLambda, opt);
  const auto x = incoherent_snapshots(pa, {deg2rad(60), deg2rad(110)}, 50,
                                      25, 13);
  const auto spec = music.spectrum(x);
  const auto peaks = spec.find_peaks(0.05);
  bool found60 = false, found110 = false;
  for (const auto& p : peaks) {
    const double deg = rad2deg(p.bearing_rad);
    if (std::abs(deg - 60.0) < 2.5) found60 = true;
    if (std::abs(deg - 110.0) < 2.5) found110 = true;
  }
  EXPECT_TRUE(found60);
  EXPECT_TRUE(found110);
}

TEST(MusicTest, CoherentSourcesNeedSmoothing) {
  // Without smoothing, coherent multipath distorts the spectrum (false
  // or displaced peaks); with NG=3, both true bearings are recovered.
  const auto pa = ula8();
  const auto x = coherent_snapshots(
      pa, {deg2rad(55), deg2rad(125)}, {cplx{1, 0}, cplx{0.8, -0.4}}, 50,
      30.0, 14);

  MusicOptions with;
  with.smoothing_groups = 3;
  MusicEstimator music_smooth(&pa, first_n(8), kLambda, with);
  const auto spec = music_smooth.spectrum(x);
  const auto peaks = spec.find_peaks(0.05);
  bool found55 = false, found125 = false;
  for (const auto& p : peaks) {
    const double deg = rad2deg(p.bearing_rad);
    if (std::abs(deg - 55.0) < 3.0) found55 = true;
    if (std::abs(deg - 125.0) < 3.0) found125 = true;
  }
  EXPECT_TRUE(found55);
  EXPECT_TRUE(found125);
}

TEST(MusicTest, SignalCountEstimation) {
  const auto pa = ula8();
  MusicEstimator music(&pa, first_n(8), kLambda);
  // Clearly separated eigenvalues: 3 signals above 12% of max.
  EXPECT_EQ(music.estimate_num_signals({0.01, 0.01, 0.02, 0.02, 0.02, 0.5,
                                        0.8, 1.0}),
            3u);
  // All below threshold except the largest -> 1.
  EXPECT_EQ(music.estimate_num_signals({0.001, 0.001, 0.001, 0.001, 0.001,
                                        0.001, 0.001, 1.0}),
            1u);
  // Never consumes every eigenvector.
  EXPECT_EQ(music.estimate_num_signals({1.0, 1.0, 1.0}), 2u);
}

TEST(MusicTest, FixedSignalCountOverride) {
  const auto pa = ula8();
  MusicOptions opt;
  opt.fixed_num_signals = 2;
  MusicEstimator music(&pa, first_n(8), kLambda, opt);
  EXPECT_EQ(music.estimate_num_signals({0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1,
                                        1.0}),
            2u);
}

TEST(MusicTest, MoreSnapshotsSharpenSpectrum) {
  // Paper Fig. 19: N=1 is unstable, N>=5 stabilizes. Check the peak
  // bearing variance shrinks with N.
  const auto pa = ula8();
  MusicEstimator music(&pa, first_n(8), kLambda);
  auto spread = [&](std::size_t n) {
    std::vector<double> bearings;
    for (int t = 0; t < 20; ++t) {
      const auto x = incoherent_snapshots(pa, {deg2rad(70)}, n, 8.0,
                                          std::uint64_t(1000 + t));
      bearings.push_back(strongest_bearing_deg(music.spectrum(x)));
    }
    double mean = 0, var = 0;
    for (double b : bearings) mean += b;
    mean /= double(bearings.size());
    for (double b : bearings) var += (b - mean) * (b - mean);
    return var / double(bearings.size());
  };
  EXPECT_LT(spread(10), spread(1) + 1e-12);
}

TEST(MusicTest, SubarraySizeAccessors) {
  const auto pa = ula8();
  MusicOptions opt;
  opt.smoothing_groups = 2;
  MusicEstimator music(&pa, first_n(8), kLambda, opt);
  EXPECT_EQ(music.array_size(), 8u);
  EXPECT_EQ(music.subarray_size(), 7u);
}

}  // namespace
}  // namespace arraytrack::aoa
