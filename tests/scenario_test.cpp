// Tests for scenario file parsing, serialization and system assembly.
#include <gtest/gtest.h>

#include "testbed/scenario.h"

namespace arraytrack::testbed {
namespace {

const char* kMinimal = R"(
# a tiny scenario
bounds 0 0 10 8
wall 0 0 10 0 brick
wall 5 0 5 4 drywall   # partition
pillar 5 6 0.3 7.5
ap 1 1 45
ap 9 1 135
client 6 5
tx_power 10
heights 2.5 1.0
seed 99
)";

TEST(ScenarioParseTest, MinimalParses) {
  ScenarioParseError err;
  const auto sc = parse_scenario(kMinimal, &err);
  ASSERT_TRUE(sc.has_value()) << err.message;
  EXPECT_DOUBLE_EQ(sc->plan.bounds().max.x, 10.0);
  ASSERT_EQ(sc->plan.walls().size(), 2u);
  EXPECT_EQ(sc->plan.walls()[1].material, geom::Material::kDrywall);
  ASSERT_EQ(sc->plan.pillars().size(), 1u);
  EXPECT_DOUBLE_EQ(sc->plan.pillars()[0].loss_db, 7.5);
  ASSERT_EQ(sc->ap_sites.size(), 2u);
  EXPECT_NEAR(sc->ap_sites[0].orientation_rad, deg2rad(45.0), 1e-12);
  ASSERT_EQ(sc->clients.size(), 1u);
  EXPECT_DOUBLE_EQ(sc->system.channel.tx_power_dbm, 10.0);
  EXPECT_DOUBLE_EQ(sc->system.channel.ap_height_m, 2.5);
  EXPECT_DOUBLE_EQ(sc->system.channel.client_height_m, 1.0);
  EXPECT_EQ(sc->system.seed, 99u);
}

TEST(ScenarioParseTest, ErrorsCarryLineNumbers) {
  ScenarioParseError err;
  EXPECT_FALSE(parse_scenario("bounds 0 0 10\n", &err).has_value());
  EXPECT_EQ(err.line, 1u);
  EXPECT_FALSE(
      parse_scenario("bounds 0 0 10 10\nap 1 1 0\nwall 1 2 3 4 vibranium\n",
                     &err)
          .has_value());
  EXPECT_EQ(err.line, 3u);
  EXPECT_NE(err.message.find("vibranium"), std::string::npos);
  EXPECT_FALSE(
      parse_scenario("bounds 0 0 5 5\nap 1 1 0\nwarp 1 2\n", &err).has_value());
  EXPECT_EQ(err.line, 3u);
}

TEST(ScenarioParseTest, RequiresBoundsAndAps) {
  ScenarioParseError err;
  EXPECT_FALSE(parse_scenario("ap 1 1 0\n", &err).has_value());
  EXPECT_NE(err.message.find("bounds"), std::string::npos);
  EXPECT_FALSE(parse_scenario("bounds 0 0 5 5\n", &err).has_value());
  EXPECT_NE(err.message.find("ap"), std::string::npos);
}

TEST(ScenarioParseTest, InvertedBoundsRejected) {
  ScenarioParseError err;
  EXPECT_FALSE(parse_scenario("bounds 5 5 0 0\nap 1 1 0\n", &err).has_value());
}

TEST(ScenarioSerializeTest, RoundTrip) {
  const auto sc1 = parse_scenario(kMinimal);
  ASSERT_TRUE(sc1.has_value());
  const auto text = serialize_scenario(*sc1);
  const auto sc2 = parse_scenario(text);
  ASSERT_TRUE(sc2.has_value());
  EXPECT_EQ(sc1->plan.walls().size(), sc2->plan.walls().size());
  EXPECT_EQ(sc1->ap_sites.size(), sc2->ap_sites.size());
  EXPECT_EQ(sc1->clients.size(), sc2->clients.size());
  EXPECT_DOUBLE_EQ(sc1->system.channel.tx_power_dbm,
                   sc2->system.channel.tx_power_dbm);
  for (std::size_t i = 0; i < sc1->plan.walls().size(); ++i) {
    EXPECT_EQ(sc1->plan.walls()[i].material, sc2->plan.walls()[i].material);
    EXPECT_NEAR(geom::distance(sc1->plan.walls()[i].a,
                               sc2->plan.walls()[i].a),
                0.0, 1e-9);
  }
}

TEST(ScenarioTest, OfficeScenarioMatchesTestbed) {
  const auto sc = office_scenario();
  const auto tb = OfficeTestbed::standard();
  EXPECT_EQ(sc.ap_sites.size(), tb.ap_sites.size());
  EXPECT_EQ(sc.clients.size(), tb.clients.size());
  EXPECT_EQ(sc.plan.walls().size(), tb.plan.walls().size());
  // And it serializes/parses losslessly.
  const auto rt = parse_scenario(serialize_scenario(sc));
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->clients.size(), sc.clients.size());
}

TEST(ScenarioTest, MakeSystemLocalizes) {
  const auto sc = parse_scenario(kMinimal);
  ASSERT_TRUE(sc.has_value());
  auto sys = sc->make_system();
  EXPECT_EQ(sys.num_aps(), 2u);
  const geom::Vec2 truth = sc->clients[0];
  sys.transmit(0, truth, 0.0);
  const auto fix = sys.locate(0, 0.01);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, truth), 1.5);
}

TEST(ScenarioTest, MaterialNamesRoundTrip) {
  using geom::Material;
  for (auto m : {Material::kConcrete, Material::kBrick, Material::kDrywall,
                 Material::kGlass, Material::kMetal, Material::kWood,
                 Material::kCubicle})
    EXPECT_EQ(material_from_name(geom::material_name(m)), m);
  EXPECT_FALSE(material_from_name("adamantium").has_value());
}

TEST(ScenarioTest, ShippedScenarioFilesLoad) {
  for (const char* name : {"office.txt", "small_lab.txt"}) {
    ScenarioParseError err;
    const auto sc = load_scenario(
        std::string(AT_SOURCE_DIR) + "/scenarios/" + name, &err);
    ASSERT_TRUE(sc.has_value()) << name << ": " << err.message;
    EXPECT_GE(sc->ap_sites.size(), 3u) << name;
    EXPECT_FALSE(sc->clients.empty()) << name;
    EXPECT_GE(sc->plan.walls().size(), 4u) << name;
  }
}

TEST(ScenarioTest, LoadMissingFileFails) {
  ScenarioParseError err;
  EXPECT_FALSE(load_scenario("/nonexistent/path.txt", &err).has_value());
  EXPECT_NE(err.message.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace arraytrack::testbed
