// Tests for floorplan geometry and multipath discovery.
#include <gtest/gtest.h>

#include "geom/floorplan.h"
#include "geom/paths.h"
#include "geom/vec2.h"
#include "linalg/types.h"

namespace arraytrack::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Vec2Test, RotationAndAngle) {
  const Vec2 x{1, 0};
  const Vec2 r = x.rotated(kPi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR((Vec2{0, -2}).angle(), -kPi / 2, 1e-12);
  const Vec2 u = unit_from_angle(deg2rad(30.0));
  EXPECT_NEAR(u.x, std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(u.y, 0.5, 1e-12);
}

TEST(Vec2Test, PerpIsOrthogonal) {
  const Vec2 v{2.5, -1.0};
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
  EXPECT_DOUBLE_EQ(v.perp().norm(), v.norm());
}

TEST(SegmentIntersectTest, CrossingSegments) {
  double t = 0, u = 0;
  Vec2 p;
  ASSERT_TRUE(segment_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}, &t, &u, &p));
  EXPECT_NEAR(t, 0.5, 1e-12);
  EXPECT_NEAR(u, 0.5, 1e-12);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(SegmentIntersectTest, NonCrossingAndParallel) {
  EXPECT_FALSE(segment_intersect({0, 0}, {1, 0}, {2, -1}, {2, 1}, nullptr,
                                 nullptr, nullptr));
  EXPECT_FALSE(segment_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}, nullptr,
                                 nullptr, nullptr));
}

TEST(ReflectTest, AcrossAxes) {
  const Vec2 p{3, 4};
  const Vec2 rx = reflect_across_line(p, {0, 0}, {1, 0});  // x-axis
  EXPECT_NEAR(rx.x, 3.0, 1e-12);
  EXPECT_NEAR(rx.y, -4.0, 1e-12);
  const Vec2 ry = reflect_across_line(p, {0, 0}, {0, 1});  // y-axis
  EXPECT_NEAR(ry.x, -3.0, 1e-12);
  EXPECT_NEAR(ry.y, 4.0, 1e-12);
  // Reflection is an involution.
  const Vec2 back = reflect_across_line(rx, {0, 0}, {1, 0});
  EXPECT_NEAR(distance(back, p), 0.0, 1e-12);
}

TEST(PointSegmentDistanceTest, EndpointsAndInterior) {
  EXPECT_NEAR(point_segment_distance({0, 1}, {0, 0}, {2, 0}), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance({-3, 0}, {0, 0}, {2, 0}), 3.0, 1e-12);
  EXPECT_NEAR(point_segment_distance({1, -2}, {0, 0}, {2, 0}), 2.0, 1e-12);
}

TEST(RectTest, ContainsAndExpand) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains({5, 2}));
  EXPECT_FALSE(r.contains({11, 2}));
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  const Rect e = r.expanded(1.0);
  EXPECT_TRUE(e.contains({-0.5, -0.5}));
}

TEST(MaterialTest, AllMaterialsHaveProperties) {
  for (auto m : {Material::kConcrete, Material::kBrick, Material::kDrywall,
                 Material::kGlass, Material::kMetal, Material::kWood,
                 Material::kCubicle}) {
    EXPECT_GT(reflection_loss_db(m), 0.0);
    EXPECT_GT(transmission_loss_db(m), 0.0);
    EXPECT_GE(scatter_roughness(m), 0.0);
    EXPECT_LE(scatter_roughness(m), 1.0);
    EXPECT_FALSE(material_name(m).empty());
  }
  // Metal attenuates through-wall far harder than drywall.
  EXPECT_GT(transmission_loss_db(Material::kMetal),
            transmission_loss_db(Material::kDrywall));
}

TEST(FloorplanTest, ObstructionAccumulates) {
  Floorplan plan({{0, 0}, {10, 10}});
  plan.add_wall({5, 0}, {5, 10}, Material::kDrywall);
  plan.add_wall({7, 0}, {7, 10}, Material::kConcrete);
  const double loss = plan.obstruction_loss_db({1, 5}, {9, 5});
  EXPECT_NEAR(loss,
              transmission_loss_db(Material::kDrywall) +
                  transmission_loss_db(Material::kConcrete),
              1e-9);
  EXPECT_FALSE(plan.line_of_sight({1, 5}, {9, 5}));
  EXPECT_TRUE(plan.line_of_sight({1, 5}, {4, 5}));
}

TEST(FloorplanTest, SkipWallsExcluded) {
  Floorplan plan({{0, 0}, {10, 10}});
  plan.add_wall({5, 0}, {5, 10}, Material::kDrywall);
  EXPECT_DOUBLE_EQ(plan.obstruction_loss_db({1, 5}, {9, 5}, {0}), 0.0);
}

TEST(FloorplanTest, PillarBlocking) {
  Floorplan plan({{0, 0}, {10, 10}});
  plan.add_pillar({{5, 5}, 0.4, 13.0});
  EXPECT_EQ(plan.pillars_crossed({0, 5}, {10, 5}), 1);
  EXPECT_EQ(plan.pillars_crossed({0, 8}, {10, 8}), 0);
  EXPECT_NEAR(plan.obstruction_loss_db({0, 5}, {10, 5}), 13.0, 1e-12);
}

TEST(PathsTest, FreeSpaceHasOnlyDirect) {
  Floorplan plan({{0, 0}, {100, 100}});
  const auto paths = find_paths(plan, {10, 10}, {20, 10});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_direct());
  EXPECT_NEAR(paths[0].length_m, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(paths[0].loss_db, 0.0);
}

TEST(PathsTest, SingleWallReflectionGeometry) {
  // Mirror wall along y=0; tx and rx above it. Classic image geometry:
  // path length equals distance from image (x_t, -y_t) to rx.
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kMetal);
  const Vec2 tx{0, 3}, rx{8, 5};
  geom::PathFinderOptions opt;
  opt.max_order = 1;
  const auto paths = find_paths(plan, tx, rx, opt);
  ASSERT_EQ(paths.size(), 2u);
  const auto& refl = paths[1];
  EXPECT_EQ(refl.order(), 1);
  const double expect_len = distance({0, -3}, rx);
  EXPECT_NEAR(refl.length_m, expect_len, 1e-9);
  EXPECT_NEAR(refl.loss_db, reflection_loss_db(Material::kMetal), 1e-9);
  // The bounce point lies on the wall between tx and rx.
  EXPECT_NEAR(refl.points[1].y, 0.0, 1e-9);
  EXPECT_GT(refl.points[1].x, 0.0);
  EXPECT_LT(refl.points[1].x, 8.0);
  // Incidence angle equals reflection angle.
  const Vec2 in = (refl.points[1] - tx).normalized();
  const Vec2 out = (rx - refl.points[1]).normalized();
  EXPECT_NEAR(in.y, -out.y, 1e-9);
  EXPECT_NEAR(in.x, out.x, 1e-9);
}

TEST(PathsTest, NoReflectionWhenSpecularPointOffWall) {
  // Wall too short for the mirror point.
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({20, 0}, {30, 0}, Material::kMetal);
  geom::PathFinderOptions opt;
  opt.max_order = 1;
  const auto paths = find_paths(plan, {0, 3}, {4, 5}, opt);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_direct());
}

TEST(PathsTest, SecondOrderBetweenParallelWalls) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kMetal);
  plan.add_wall({-50, 10}, {50, 10}, Material::kMetal);
  geom::PathFinderOptions opt;
  opt.max_order = 2;
  const auto paths = find_paths(plan, {0, 3}, {8, 5}, opt);
  // direct + 2 single bounces + double bounces (floor->ceiling and
  // ceiling->floor).
  int order2 = 0;
  for (const auto& p : paths)
    if (p.order() == 2) ++order2;
  EXPECT_GE(order2, 2);
  for (const auto& p : paths) {
    if (p.order() != 2) continue;
    // Double-bounce loss = two metal reflections.
    EXPECT_NEAR(p.loss_db, 2.0 * reflection_loss_db(Material::kMetal), 1e-9);
    // Reflected path is longer than direct.
    EXPECT_GT(p.length_m, paths[0].length_m);
  }
}

TEST(PathsTest, ArrivalDirectionPointsToReceiver) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kMetal);
  const Vec2 tx{0, 3}, rx{8, 5};
  const auto paths = find_paths(plan, tx, rx);
  for (const auto& p : paths) {
    const Vec2 dir = p.arrival_direction();
    EXPECT_NEAR(dir.norm(), 1.0, 1e-12);
    // Last leg direction must be consistent with the final two points.
    const Vec2 expect =
        (p.points.back() - p.points[p.points.size() - 2]).normalized();
    EXPECT_NEAR(distance(dir, expect), 0.0, 1e-12);
  }
}

TEST(PathsTest, MaxExcessLossPrunes) {
  Floorplan plan({{-50, -10}, {50, 50}});
  plan.add_wall({-50, 0}, {50, 0}, Material::kCubicle);  // 11 dB bounce
  geom::PathFinderOptions opt;
  opt.max_order = 1;
  opt.max_excess_loss_db = 5.0;
  const auto paths = find_paths(plan, {0, 3}, {8, 5}, opt);
  ASSERT_EQ(paths.size(), 1u);  // reflection pruned
}

TEST(PathsTest, DirectPathReportedEvenWhenObstructed) {
  Floorplan plan({{0, 0}, {20, 20}});
  plan.add_wall({10, 0}, {10, 20}, Material::kMetal);
  const auto paths = find_paths(plan, {5, 5}, {15, 5});
  ASSERT_FALSE(paths.empty());
  EXPECT_TRUE(paths[0].is_direct());
  EXPECT_NEAR(paths[0].loss_db, transmission_loss_db(Material::kMetal), 1e-9);
}

}  // namespace
}  // namespace arraytrack::geom
