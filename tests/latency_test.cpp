// Tests for the latency model (paper 4.4 and 4.3.3).
#include <gtest/gtest.h>

#include "core/latency.h"

namespace arraytrack::core {
namespace {

TEST(LatencyModelTest, FrameAirtimeMatchesPaper) {
  LatencyModel m;
  // "approximately 222 us for a 1500 byte frame at 54 Mbit/s to 12 ms
  // for the same size frame at 1 Mbit/s."
  EXPECT_NEAR(m.frame_airtime_s(1500, 54e6), 222e-6, 1e-6);
  EXPECT_NEAR(m.frame_airtime_s(1500, 1e6), 12e-3, 0.1e-3);
}

TEST(LatencyModelTest, SerializationMatchesPaper) {
  // Tt = (10 samples)(32 bits)(8 radios) / 1 Mbit/s = 2.56 ms.
  LatencyModel m;
  EXPECT_NEAR(m.serialization_s(), 2.56e-3, 1e-9);
}

TEST(LatencyModelTest, ControlTrafficMatchesPaper) {
  // 4.3.3: 0.0256 Mbit/s at a 100 ms refresh interval.
  LatencyModel m;
  EXPECT_NEAR(m.control_traffic_bps(0.1), 0.0256e6, 1.0);
}

TEST(LatencyModelTest, DetectionIsPreambleLength) {
  LatencyModel m;
  EXPECT_NEAR(m.detection_s, 16e-6, 1e-12);
}

TEST(LatencyReportTest, TotalsAddUp) {
  LatencyModel m;
  const auto r = make_latency_report(m, /*measured_processing_s=*/0.095);
  EXPECT_NEAR(r.total_excl_bus_s(),
              16e-6 + 2.56e-3 + 0.095, 1e-9);
  EXPECT_NEAR(r.total_s(), r.total_excl_bus_s() + 30e-3, 1e-9);
  EXPECT_NE(r.to_string().find("Tp"), std::string::npos);
}

TEST(LatencyReportTest, PaperHeadlineShape) {
  // With the paper's measured Tp ~ 100 ms, the headline total
  // (excluding bus) is ~100 ms — processing dominates.
  LatencyModel m;
  const auto r = make_latency_report(m, 0.100);
  EXPECT_GT(r.processing_s / r.total_excl_bus_s(), 0.95);
  EXPECT_NEAR(r.total_excl_bus_s(), 0.1026, 0.001);
}

}  // namespace
}  // namespace arraytrack::core
