// Tests for AWGN generation and dB bookkeeping.
#include <gtest/gtest.h>

#include "dsp/noise.h"

namespace arraytrack::dsp {
namespace {

TEST(DbTest, RoundTrip) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
  EXPECT_NEAR(db_to_linear(-3.0), 0.501187, 1e-5);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
  for (double db : {-30.0, -3.0, 0.0, 7.5, 40.0})
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
}

TEST(MeanPowerTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_power({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_power({cplx{1, 0}, cplx{0, 1}}), 1.0);
  EXPECT_DOUBLE_EQ(mean_power({cplx{3, 4}}), 25.0);
}

TEST(AwgnTest, GeneratedPowerMatchesRequest) {
  AwgnSource src(42);
  const double want = 0.25;
  const auto n = src.generate(200000, want);
  EXPECT_NEAR(mean_power(n), want, 0.01 * want);
}

TEST(AwgnTest, CircularSymmetry) {
  // I and Q rails carry equal power and are uncorrelated.
  AwgnSource src(43);
  const auto n = src.generate(200000, 1.0);
  double pi = 0.0, pq = 0.0, xc = 0.0;
  for (const auto& v : n) {
    pi += v.real() * v.real();
    pq += v.imag() * v.imag();
    xc += v.real() * v.imag();
  }
  pi /= double(n.size());
  pq /= double(n.size());
  xc /= double(n.size());
  EXPECT_NEAR(pi, 0.5, 0.01);
  EXPECT_NEAR(pq, 0.5, 0.01);
  EXPECT_NEAR(xc, 0.0, 0.01);
}

TEST(AwgnTest, AddNoiseHitsTargetSnr) {
  AwgnSource src(44);
  for (double snr_db : {30.0, 10.0, 0.0, -10.0}) {
    std::vector<cplx> sig(100000, cplx{1.0, 0.0});  // unit power signal
    std::vector<cplx> noisy = sig;
    src.add_noise(noisy, snr_db);
    double noise_power = 0.0;
    for (std::size_t i = 0; i < sig.size(); ++i)
      noise_power += std::norm(noisy[i] - sig[i]);
    noise_power /= double(sig.size());
    EXPECT_NEAR(linear_to_db(1.0 / noise_power), snr_db, 0.3)
        << "snr " << snr_db;
  }
}

TEST(AwgnTest, DeterministicPerSeed) {
  AwgnSource a(7), b(7), c(8);
  const auto na = a.generate(16, 1.0);
  const auto nb = b.generate(16, 1.0);
  const auto nc = c.generate(16, 1.0);
  bool differs_from_c = false;
  for (std::size_t i = 0; i < na.size(); ++i) {
    EXPECT_EQ(na[i], nb[i]);
    if (na[i] != nc[i]) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

}  // namespace
}  // namespace arraytrack::dsp
