// The quantized int16 kernel tier and the coarse-to-fine sweep built
// on it. The contracts under test are stronger than the float
// kernels': quant kernel outputs must be *bitwise identical* across
// every dispatch level (exact integer cores + pinned non-fused double
// finalize), the coarse log table must be a certified upper bound on
// the float heatmap factors it prunes against, and the end-to-end
// quantized sweep must produce fix sets byte-identical to the
// all-float path — with the ARRAYTRACK_QUANT kill switch restoring
// today's binaries exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/arraytrack.h"
#include "core/simd.h"
#include "core/synthesis.h"
#include "linalg/kernels.h"
#include "service/service.h"

namespace arraytrack {
namespace {

using core::simd::ForcedLevel;
using core::simd::Level;
using linalg::CoarseLogTable;
using linalg::QuantPlanes;
using linalg::QuantVectors;
using linalg::SplitPlanes;

std::vector<Level> runnable_levels() {
  std::vector<Level> out{Level::kScalar};
  for (Level l : {Level::kSse2, Level::kAvx2})
    if (core::simd::clamp_to_hardware(l) == l) out.push_back(l);
  return out;
}

void fill_planes(SplitPlanes& p, std::mt19937_64& rng, double amp = 1.0) {
  std::uniform_real_distribution<double> u(-amp, amp);
  for (std::size_t k = 0; k < p.m; ++k)
    for (std::size_t i = 0; i < p.rows; ++i)
      p.set(k, i, cplx{u(rng), u(rng)});
}

// Random Hermitian PSD matrix r = a^H a.
std::vector<cplx> random_psd(std::size_t m, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<cplx> a(m * m), r(m * m, cplx{0.0, 0.0});
  for (auto& v : a) v = cplx{u(rng), u(rng)};
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      cplx s{0.0, 0.0};
      for (std::size_t k = 0; k < m; ++k) s += std::conj(a[k * m + i]) * a[k * m + j];
      r[i * m + j] = s;
    }
  return r;
}

// --- quantizer invariants ---------------------------------------------

TEST(QuantKernelsTest, QuantizedTableStaysInRangeAndReconstructs) {
  std::mt19937_64 rng(7);
  SplitPlanes t(361, 7);
  fill_planes(t, rng, 3.0);
  const QuantPlanes q = QuantPlanes::quantize(t);
  ASSERT_EQ(q.rows, t.rows);
  ASSERT_EQ(q.m, t.m);
  for (std::size_t i = 0; i < q.rows; ++i) {
    for (std::size_t k = 0; k < q.m; ++k) {
      const int qr = q.re[k * q.pitch + i];
      const int qi = q.im[k * q.pitch + i];
      EXPECT_GE(qr, -32767);
      EXPECT_LE(qr, 32767);
      EXPECT_GE(qi, -32767);
      EXPECT_LE(qi, 32767);
      // Reconstruction error within one quantization step.
      const double step = double(q.scale[i]);
      EXPECT_NEAR(double(qr) * step, t.re[k * t.pitch + i], step * 0.75);
      EXPECT_NEAR(double(qi) * step, t.im[k * t.pitch + i], step * 0.75);
    }
  }
  // Footprint: >= 3x smaller than the float table (tentpole criterion).
  const std::size_t float_bytes =
      (t.re.size() + t.im.size()) * sizeof(double);
  EXPECT_GE(double(float_bytes) / double(q.bytes()), 3.0);
}

TEST(QuantKernelsTest, QuantizedVectorsStayInIntExactRange) {
  std::mt19937_64 rng(13);
  const std::size_t m = 16, nvec = 5;
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::vector<double> re(nvec * m), im(nvec * m);
  for (auto& v : re) v = u(rng);
  for (auto& v : im) v = u(rng);
  const QuantVectors q = QuantVectors::quantize(re.data(), im.data(), nvec, m);
  for (std::size_t e = 0; e < nvec * m; ++e) {
    EXPECT_LE(std::abs(int(q.re[e])), 1023);
    EXPECT_LE(std::abs(int(q.im[e])), 1023);
  }
}

// --- cross-level bitwise identity -------------------------------------

TEST(QuantKernelsTest, ProjectorBitwiseIdenticalAcrossLevels) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (std::size_t m : {std::size_t(3), std::size_t(7), std::size_t(16)}) {
    for (std::size_t rows :
         {std::size_t(5), std::size_t(357), std::size_t(361)}) {
      SplitPlanes t(rows, m);
      fill_planes(t, rng);
      const QuantPlanes q = QuantPlanes::quantize(t);
      const std::size_t nvec = 1 + (m + rows) % 3;
      std::vector<double> re(nvec * m), im(nvec * m);
      for (auto& v : re) v = u(rng);
      for (auto& v : im) v = u(rng);
      const QuantVectors ev =
          QuantVectors::quantize(re.data(), im.data(), nvec, m);

      std::vector<double> want(rows);
      {
        ForcedLevel g(Level::kScalar);
        linalg::kernels::projector_power_quant(q, ev, want.data());
      }
      for (Level lvl : runnable_levels()) {
        ForcedLevel g(lvl);
        std::vector<double> got(rows, -1.0);
        linalg::kernels::projector_power_quant(q, ev, got.data());
        for (std::size_t i = 0; i < rows; ++i)
          ASSERT_EQ(got[i], want[i])
              << "projector_power_quant not bitwise at level "
              << core::simd::name(lvl) << " m=" << m << " rows=" << rows
              << " i=" << i;
      }
    }
  }
}

TEST(QuantKernelsTest, BartlettBitwiseIdenticalAcrossLevels) {
  std::mt19937_64 rng(29);
  for (std::size_t m : {std::size_t(3), std::size_t(7), std::size_t(9)}) {
    for (std::size_t rows :
         {std::size_t(5), std::size_t(357), std::size_t(361)}) {
      SplitPlanes t(rows, m);
      fill_planes(t, rng);
      const QuantPlanes q = QuantPlanes::quantize(t);
      const std::vector<cplx> r = random_psd(m, rng);

      std::vector<double> want(rows);
      {
        ForcedLevel g(Level::kScalar);
        linalg::kernels::bartlett_power_quant(q, r.data(), want.data());
      }
      for (Level lvl : runnable_levels()) {
        ForcedLevel g(lvl);
        std::vector<double> got(rows, -1.0);
        linalg::kernels::bartlett_power_quant(q, r.data(), got.data());
        for (std::size_t i = 0; i < rows; ++i)
          ASSERT_EQ(got[i], want[i])
              << "bartlett_power_quant not bitwise at level "
              << core::simd::name(lvl) << " m=" << m << " rows=" << rows
              << " i=" << i;
      }
    }
  }
}

TEST(QuantKernelsTest, ScoreAccumBitwiseIdenticalAcrossLevels) {
  std::mt19937_64 rng(31);
  const std::size_t bins = 360, count = 1013;
  std::vector<std::int32_t> table(bins);
  std::uniform_int_distribution<std::int32_t> tv(-5000, 5000);
  for (auto& v : table) v = tv(rng);
  std::vector<std::int32_t> bin0(count);
  std::uniform_int_distribution<std::int32_t> bv(0, int(bins) - 1);
  for (auto& v : bin0) v = bv(rng);

  std::vector<std::int32_t> want(count, 17);
  {
    ForcedLevel g(Level::kScalar);
    linalg::kernels::score_accum(table.data(), bin0.data(), count,
                                 want.data());
  }
  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    std::vector<std::int32_t> got(count, 17);
    linalg::kernels::score_accum(table.data(), bin0.data(), count, got.data());
    for (std::size_t c = 0; c < count; ++c) ASSERT_EQ(got[c], want[c]);
  }
}

// --- quant vs float tolerance -----------------------------------------

// The int16 tier is a *coarse* pass; it only has to be close enough
// that its certified upper bound stays tight. Pin the relative error
// against the float kernels so regressions in the quantizers show up.
TEST(QuantKernelsTest, ProjectorTracksFloatKernelWithinTolerance) {
  std::mt19937_64 rng(37);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t m = 7, rows = 361, nvec = 2;
  SplitPlanes t(rows, m);
  fill_planes(t, rng);
  std::vector<double> re(nvec * m), im(nvec * m);
  for (auto& v : re) v = u(rng);
  for (auto& v : im) v = u(rng);

  std::vector<double> want(rows), got(rows);
  linalg::kernels::projector_power(t, re.data(), im.data(), nvec, want.data());
  const QuantPlanes q = QuantPlanes::quantize(t);
  const QuantVectors ev = QuantVectors::quantize(re.data(), im.data(), nvec, m);
  linalg::kernels::projector_power_quant(q, ev, got.data());

  double vmax = 0.0;
  for (double v : want) vmax = std::max(vmax, v);
  for (std::size_t i = 0; i < rows; ++i)
    EXPECT_NEAR(got[i], want[i], vmax * 2e-3) << "row " << i;
}

TEST(QuantKernelsTest, BartlettTracksFloatKernelWithinTolerance) {
  std::mt19937_64 rng(41);
  const std::size_t m = 7, rows = 361;
  SplitPlanes t(rows, m);
  fill_planes(t, rng);
  const std::vector<cplx> r = random_psd(m, rng);

  std::vector<double> want(rows), got(rows);
  linalg::kernels::bartlett_power(t, r.data(), want.data());
  const QuantPlanes q = QuantPlanes::quantize(t);
  linalg::kernels::bartlett_power_quant(q, r.data(), got.data());

  double vmax = 0.0;
  for (double v : want) vmax = std::max(vmax, std::abs(v));
  for (std::size_t i = 0; i < rows; ++i)
    EXPECT_NEAR(got[i], want[i], vmax * 2e-3) << "row " << i;
}

// --- the guard band is load-bearing -----------------------------------

// coarse_log_table commits to an upper bound: for every bin pair and
// every lerp fraction, the Q.6 entry must dominate 64 * log2 of the
// clamped interpolated float value. The pruner's exactness rests on
// this, so measure it directly across random spectra, including
// MUSIC-like spectra with enormous adjacent-bin ratios.
TEST(QuantGuardBandTest, PairMaxEntryDominatesEveryLerp) {
  std::mt19937_64 rng(43);
  const std::size_t bins = 360;
  const double floor = 1e-6;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> p(bins);
    std::uniform_real_distribution<double> mag(-6.0, 12.0);
    for (auto& v : p) v = std::pow(10.0, mag(rng));
    // Sharpen a few random peaks to MUSIC-denominator extremes.
    std::uniform_int_distribution<std::size_t> bi(0, bins - 1);
    for (int s = 0; s < 4; ++s) p[bi(rng)] = 1e12;

    const CoarseLogTable ct = linalg::coarse_log_table(p.data(), bins, floor);
    ASSERT_EQ(ct.pairmax.size(), bins);
    const double scale = double(1 << CoarseLogTable::kFracBits);
    for (std::size_t b = 0; b < bins; ++b) {
      const double p0 = p[b], p1 = p[(b + 1) % bins];
      for (double f : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const double lerp = std::max((1.0 - f) * p0 + f * p1, floor);
        const double true_bits = std::log2(lerp) * scale;
        ASSERT_GE(double(ct.pairmax[b]) + 1e-9, true_bits)
            << "bin " << b << " frac " << f;
        // Tightness: the committed slack bound holds too.
        ASSERT_LE(double(ct.pairmax[b]) / scale,
                  std::log2(lerp) + ct.slack_bits + 1e-9);
      }
    }
  }
}

// The error-bound test the issue asks for: across random covariances,
// the max |quant - float| spectrum error expressed in log2 bits stays
// under the pair-max table's quantization ulp — i.e. quantization
// noise alone can never push a cell's coarse score past the certified
// band the pruner allows for.
TEST(QuantGuardBandTest, SpectrumErrorStaysUnderGuardBand) {
  std::mt19937_64 rng(47);
  const std::size_t m = 7, rows = 361;
  SplitPlanes t(rows, m);
  fill_planes(t, rng);
  const QuantPlanes q = QuantPlanes::quantize(t);

  double worst_bits = 0.0;
  for (int trial = 0; trial < 16; ++trial) {
    const std::vector<cplx> r = random_psd(m, rng);
    std::vector<double> want(rows), got(rows);
    linalg::kernels::bartlett_power(t, r.data(), want.data());
    linalg::kernels::bartlett_power_quant(q, r.data(), got.data());
    for (std::size_t i = 0; i < rows; ++i) {
      if (want[i] <= 0.0 || got[i] <= 0.0) continue;
      worst_bits = std::max(worst_bits, std::abs(std::log2(got[i] / want[i])));
    }
  }
  // One Q.6 ulp = 1/64 bit; quantization error must stay well inside.
  const double ulp = 1.0 / double(1 << CoarseLogTable::kFracBits);
  EXPECT_LT(worst_bits, ulp) << "int16 pass drifts past the coarse table ulp";
}

// --- coarse-to-fine localizer byte-identity ---------------------------

aoa::AoaSpectrum spectrum_peaking_at(double bearing_rad,
                                     double width_rad = deg2rad(4.0),
                                     std::size_t bins = 720) {
  aoa::AoaSpectrum s(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double d = aoa::bearing_distance(s.bin_bearing(i), bearing_rad);
    s[i] = std::exp(-0.5 * (d / width_rad) * (d / width_rad));
  }
  return s;
}

core::ApSpectrum ap_looking_at(geom::Vec2 pos, double orient,
                               geom::Vec2 target) {
  core::ApSpectrum ap;
  ap.ap_position = pos;
  ap.orientation_rad = orient;
  const double world = (target - pos).angle();
  ap.spectrum = spectrum_peaking_at(wrap_2pi(world - orient));
  return ap;
}

std::vector<core::ApSpectrum> office_row(geom::Vec2 truth) {
  return {ap_looking_at({0, 0}, 0.0, truth),
          ap_looking_at({10, 0}, deg2rad(90.0), truth),
          ap_looking_at({5, 10}, deg2rad(-45.0), truth),
          // One dead AP: empty spectrum, multiplies by the floor.
          core::ApSpectrum{{0, 10}, 0.0, aoa::AoaSpectrum{}}};
}

TEST(QuantLocalizerTest, LocateByteIdenticalQuantOnOffAtEveryLevel) {
  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    for (const geom::Vec2 truth :
         {geom::Vec2{6.0, 4.0}, geom::Vec2{1.3, 8.7}, geom::Vec2{9.9, 0.2}}) {
      const auto aps = office_row(truth);
      core::LocalizerOptions on;
      on.quantized_sweep = true;
      core::LocalizerOptions off;
      off.quantized_sweep = false;
      core::Localizer loc_on({{0, 0}, {10, 10}}, on);
      core::Localizer loc_off({{0, 0}, {10, 10}}, off);
      const auto a = loc_on.locate(aps);
      const auto b = loc_off.locate(aps);
      ASSERT_TRUE(a && b);
      // Byte-identical, not merely close.
      EXPECT_EQ(a->position.x, b->position.x)
          << core::simd::name(lvl) << " truth " << truth.x << "," << truth.y;
      EXPECT_EQ(a->position.y, b->position.y);
      EXPECT_EQ(a->likelihood, b->likelihood);
      // And the coarse pass genuinely pruned most of the grid.
      EXPECT_GT(loc_on.quant_pruned(), loc_on.quant_refined());
      EXPECT_EQ(loc_off.quant_pruned(), 0u);
    }
  }
}

TEST(QuantLocalizerTest, LocateBatchByteIdenticalAcrossWidthsAndSwitch) {
  std::vector<std::vector<core::ApSpectrum>> batch;
  for (const geom::Vec2 truth :
       {geom::Vec2{6.0, 4.0}, geom::Vec2{1.3, 8.7}, geom::Vec2{9.9, 0.2},
        geom::Vec2{5.0, 5.0}, geom::Vec2{2.2, 2.2}})
    batch.push_back(office_row(truth));
  batch.push_back({});  // empty row keeps its nullopt contract

  core::LocalizerOptions off;
  off.quantized_sweep = false;
  core::Localizer loc_off({{0, 0}, {10, 10}}, off);
  const auto want = loc_off.locate_batch(batch);

  for (Level lvl : runnable_levels()) {
    ForcedLevel g(lvl);
    const auto want_lvl = loc_off.locate_batch(batch);
    core::LocalizerOptions on;
    on.quantized_sweep = true;
    core::Localizer loc_on({{0, 0}, {10, 10}}, on);
    const auto got = loc_on.locate_batch(batch);
    ASSERT_EQ(got.size(), want_lvl.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].has_value(), want_lvl[j].has_value()) << "row " << j;
      if (!got[j]) continue;
      EXPECT_EQ(got[j]->position.x, want_lvl[j]->position.x)
          << "row " << j << " level " << core::simd::name(lvl);
      EXPECT_EQ(got[j]->position.y, want_lvl[j]->position.y);
      EXPECT_EQ(got[j]->likelihood, want_lvl[j]->likelihood);
      // Batch rows equal single-row locate too.
      const auto single = loc_on.locate(batch[j]);
      ASSERT_TRUE(single);
      EXPECT_EQ(got[j]->position.x, single->position.x);
      EXPECT_EQ(got[j]->position.y, single->position.y);
      EXPECT_EQ(got[j]->likelihood, single->likelihood);
    }
    EXPECT_GT(loc_on.quant_pruned(), 0u);
  }
  (void)want;
}

TEST(QuantLocalizerTest, NonPositiveFloorFallsBackToDensePath) {
  const auto aps = office_row({6.0, 4.0});
  core::LocalizerOptions on;
  on.quantized_sweep = true;
  on.floor = 0.0;  // log-domain coarse pass cannot run
  core::LocalizerOptions off = on;
  off.quantized_sweep = false;
  core::Localizer loc_on({{0, 0}, {10, 10}}, on);
  core::Localizer loc_off({{0, 0}, {10, 10}}, off);
  const auto a = loc_on.locate(aps);
  const auto b = loc_off.locate(aps);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->position.x, b->position.x);
  EXPECT_EQ(a->position.y, b->position.y);
  EXPECT_EQ(a->likelihood, b->likelihood);
  EXPECT_EQ(loc_on.quant_pruned(), 0u);  // nothing was pruned
}

TEST(QuantLocalizerTest, EnvOverrideWinsOverOption) {
  core::LocalizerOptions on;
  on.quantized_sweep = true;
  ASSERT_EQ(setenv("ARRAYTRACK_QUANT", "off", 1), 0);
  core::Localizer forced_off({{0, 0}, {10, 10}}, on);
  EXPECT_FALSE(forced_off.quantized_sweep());
  core::LocalizerOptions off;
  off.quantized_sweep = false;
  ASSERT_EQ(setenv("ARRAYTRACK_QUANT", "on", 1), 0);
  core::Localizer forced_on({{0, 0}, {10, 10}}, off);
  EXPECT_TRUE(forced_on.quantized_sweep());
  ASSERT_EQ(unsetenv("ARRAYTRACK_QUANT"), 0);
  core::Localizer plain({{0, 0}, {10, 10}}, off);
  EXPECT_FALSE(plain.quantized_sweep());
  // The setter is the runtime kill switch.
  plain.set_quantized_sweep(true);
  EXPECT_TRUE(plain.quantized_sweep());
}

// --- service layer -----------------------------------------------------

geom::Floorplan service_plan() {
  geom::Floorplan plan({{0, 0}, {18, 10}});
  plan.add_wall({0, 0}, {18, 0}, geom::Material::kBrick);
  plan.add_wall({18, 0}, {18, 10}, geom::Material::kBrick);
  plan.add_wall({18, 10}, {0, 10}, geom::Material::kBrick);
  plan.add_wall({0, 10}, {0, 0}, geom::Material::kBrick);
  return plan;
}

std::unique_ptr<core::System> service_system(const geom::Floorplan* plan) {
  core::SystemConfig cfg;
  cfg.server.localizer.grid_step_m = 0.25;  // keep tests quick
  auto sys = std::make_unique<core::System>(plan, cfg);
  sys->add_ap({1, 1}, deg2rad(45.0));
  sys->add_ap({17, 1}, deg2rad(135.0));
  sys->add_ap({9, 9.5}, deg2rad(-90.0));
  return sys;
}

std::vector<core::FrameEvent> service_schedule() {
  const std::vector<geom::Vec2> sites = {{12.0, 6.0}, {5.0, 3.0}, {9.0, 7.0}};
  std::vector<core::FrameEvent> out;
  for (int i = 0; i < 5; ++i)
    for (int c = 0; c < 3; ++c)
      out.push_back({0.1 + 0.2 * i + 0.011 * c, c, sites[std::size_t(c)]});
  std::sort(out.begin(), out.end(),
            [](const core::FrameEvent& a, const core::FrameEvent& b) {
              return a.time_s < b.time_s;
            });
  return out;
}

// The quantized sweep is invisible in the service's output: fix
// streams are byte-identical quant-on vs quant-off at every worker
// count and batch width, while the stats JSON shows the pruner doing
// real work and a >= 3x smaller quantized table tier.
TEST(QuantServiceTest, ServiceFixesByteIdenticalAndStatsReportQuant) {
  const auto plan = service_plan();
  const auto schedule = service_schedule();

  std::vector<service::ServiceReport> reports;
  std::string stats_on, stats_off;
  for (bool quant : {true, false}) {
    for (std::size_t workers : {1u, 4u}) {
      for (std::size_t batch : {1u, 4u}) {
        auto sys = service_system(&plan);
        service::ServiceOptions opt;
        opt.workers = workers;
        opt.batch_max = batch;
        opt.virtual_clock = true;
        opt.virtual_cost_s = 0.02;
        opt.latency_slo_s = 0.5;
        opt.quantized_sweep = quant;
        service::LocationService svc(sys.get(), opt);
        EXPECT_EQ(svc.options().quantized_sweep, quant);
        reports.push_back(svc.run(schedule));
        auto& stats = quant ? stats_on : stats_off;
        if (stats.empty()) {
          stats = svc.stats_json();
          const auto& loc = sys->server().localizer();
          if (quant) {
            EXPECT_GT(loc.quant_pruned(), 0u);
            EXPECT_GT(loc.quant_pruned(), loc.quant_refined());
          } else {
            EXPECT_EQ(loc.quant_pruned() + loc.quant_refined(), 0u);
          }
          EXPECT_GE(sys->server().steering_table_bytes(),
                    3 * sys->server().quant_table_bytes());
        }
      }
    }
  }

  const auto& base = reports.front();
  ASSERT_GT(base.fixes.size(), 0u);
  for (std::size_t r = 1; r < reports.size(); ++r) {
    const auto& other = reports[r];
    ASSERT_EQ(base.fixes.size(), other.fixes.size()) << "run " << r;
    for (std::size_t i = 0; i < base.fixes.size(); ++i) {
      EXPECT_EQ(base.fixes[i].client_id, other.fixes[i].client_id);
      EXPECT_EQ(base.fixes[i].position.x, other.fixes[i].position.x);
      EXPECT_EQ(base.fixes[i].position.y, other.fixes[i].position.y);
      EXPECT_EQ(base.fixes[i].likelihood, other.fixes[i].likelihood);
    }
  }

  for (const std::string* s : {&stats_on, &stats_off}) {
    EXPECT_NE(s->find("\"quant\""), std::string::npos);
    EXPECT_NE(s->find("\"quant_pruned\""), std::string::npos);
    EXPECT_NE(s->find("\"steering_table_bytes\""), std::string::npos);
    EXPECT_NE(s->find("\"quant_table_bytes\""), std::string::npos);
  }
  EXPECT_NE(stats_on.find("\"quantized_sweep\": true"), std::string::npos);
  EXPECT_NE(stats_off.find("\"quantized_sweep\": false"), std::string::npos);
}

}  // namespace
}  // namespace arraytrack
