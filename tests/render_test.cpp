// Tests for the PPM image renderer.
#include <gtest/gtest.h>

#include <fstream>

#include "core/synthesis.h"
#include "testbed/render.h"
#include "testbed/scenario.h"

namespace arraytrack::testbed {
namespace {

TEST(ImageTest, PpmHeaderAndSize) {
  Image img(4, 3, {1, 2, 3});
  const auto bytes = img.to_ppm();
  const std::string header(bytes.begin(), bytes.begin() + 11);
  EXPECT_EQ(header, "P6\n4 3\n255\n");
  EXPECT_EQ(bytes.size(), 11u + 4u * 3u * 3u);
  EXPECT_EQ(bytes[11], 1);
  EXPECT_EQ(bytes[12], 2);
  EXPECT_EQ(bytes[13], 3);
}

TEST(ImageTest, SetClipsOutOfRange) {
  Image img(4, 4);
  img.set(-1, 0, {255, 0, 0});
  img.set(0, 10, {255, 0, 0});
  img.set(2, 2, {255, 0, 0});
  EXPECT_EQ(img.at(2, 2).r, 255);
  int red = 0;
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      if (img.at(x, y).r == 255) ++red;
  EXPECT_EQ(red, 1);
}

TEST(ImageTest, LineDrawsEndpoints) {
  Image img(10, 10);
  img.line(1, 1, 8, 6, {0, 255, 0});
  EXPECT_EQ(img.at(1, 1).g, 255);
  EXPECT_EQ(img.at(8, 6).g, 255);
}

TEST(ImageTest, DiscFills) {
  Image img(11, 11);
  img.disc(5, 5, 2, {0, 0, 255});
  EXPECT_EQ(img.at(5, 5).b, 255);
  EXPECT_EQ(img.at(5, 3).b, 255);
  EXPECT_EQ(img.at(5, 2).b, 0);
}

TEST(HeatColorTest, OrderedAndClamped) {
  const auto low = heat_color(0.0);
  const auto high = heat_color(1.0);
  EXPECT_GT(int(high.r), int(low.r));  // red end is hot
  EXPECT_GT(int(low.b), int(high.b));  // blue end is cold
  // Out-of-range inputs clamp instead of misbehaving.
  const auto under = heat_color(-5.0);
  EXPECT_EQ(under.r, low.r);
  const auto over = heat_color(7.0);
  EXPECT_EQ(over.r, high.r);
}

TEST(RenderTest, HeatmapImageShape) {
  core::Heatmap map;
  map.bounds = {{0, 0}, {8, 4}};
  map.nx = 16;
  map.ny = 8;
  map.cells.assign(map.nx * map.ny, 0.1);
  map.cells[3 * map.nx + 10] = 1.0;  // one hot cell

  geom::Floorplan plan(map.bounds);
  plan.add_wall({0, 0}, {8, 0}, geom::Material::kBrick);
  plan.add_pillar({{4, 2}, 0.3, 9.0});

  RenderOptions opt;
  opt.pixels_per_meter = 8;
  // No truth marker here: its disc would paint over the hot cell this
  // test hunts for.
  const auto img =
      render_heatmap(map, plan, {{{1, 1}, 0.0}}, nullptr, nullptr, opt);
  EXPECT_EQ(img.width(), 64u);
  EXPECT_EQ(img.height(), 32u);

  // The hot cell region must be redder than a cold corner.
  // Cell (10, 3) center = (5.25, 1.75) -> pixel (42, 31 - 14 = 17)... find
  // by value instead: hottest pixel must be near that location.
  std::size_t best_x = 0, best_y = 0;
  int best_r = -1;
  for (std::size_t y = 0; y < img.height(); ++y)
    for (std::size_t x = 0; x < img.width(); ++x)
      if (int(img.at(x, y).r) - int(img.at(x, y).b) > best_r) {
        best_r = int(img.at(x, y).r) - int(img.at(x, y).b);
        best_x = x;
        best_y = y;
      }
  // Expected pixel: x = 5.25 * 8 = 42, y = 31 - 1.75 * 8 = 17.
  EXPECT_NEAR(double(best_x), 42.0, 6.0);
  EXPECT_NEAR(double(best_y), 17.0, 6.0);
}

TEST(RenderTest, WritePpmToDisk) {
  Image img(8, 8, {10, 20, 30});
  const std::string path = "/tmp/arraytrack_render_test.ppm";
  ASSERT_TRUE(img.write_ppm(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(bool(in));
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  EXPECT_FALSE(img.write_ppm("/nonexistent/dir/x.ppm"));
}

}  // namespace
}  // namespace arraytrack::testbed
