// Antenna array geometries (element layouts in the array-local frame).
//
// The prototype in the paper mounts 16 antennas in a rectangle (two
// rows of eight at half-wavelength pitch, Fig. 11) and drives them from
// eight radios through an antenna-select switch. The linear row is what
// MUSIC sweeps; the off-row element provides the 360-degree symmetry
// disambiguation of section 2.3.4.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.h"

namespace arraytrack::array {

class ArrayGeometry {
 public:
  ArrayGeometry() = default;
  explicit ArrayGeometry(std::vector<geom::Vec2> offsets)
      : offsets_(std::move(offsets)) {}
  /// With explicit vertical offsets (meters above the mount height),
  /// one per element; enables elevation estimation (3-D extension).
  ArrayGeometry(std::vector<geom::Vec2> offsets, std::vector<double> z)
      : offsets_(std::move(offsets)), z_offsets_(std::move(z)) {}

  /// Uniform linear array along local +x, centered on the origin.
  static ArrayGeometry uniform_linear(std::size_t elements,
                                      double spacing_m);

  /// Two parallel rows of `columns` elements (the paper's 16-antenna
  /// rectangle): row 0 at local y=0, row 1 at y = -row_gap.
  static ArrayGeometry rectangular(std::size_t columns, double spacing_m,
                                   double row_gap_m);

  /// Uniform circular array of `elements` at `radius_m`.
  static ArrayGeometry circular(std::size_t elements, double radius_m);

  /// L-shaped 3-D array: a horizontal row of `columns` elements along
  /// local +x (z = 0) plus a vertical column of `verticals` elements
  /// rising from the row's center — the paper's proposed
  /// "vertically-oriented antenna array in conjunction with the
  /// existing horizontally-oriented array" (section 4.3.1). The
  /// vertical elements share the center's plan position and differ
  /// only in z.
  static ArrayGeometry l_shaped(std::size_t columns, std::size_t verticals,
                                double spacing_m);

  std::size_t size() const { return offsets_.size(); }
  const std::vector<geom::Vec2>& offsets() const { return offsets_; }
  const geom::Vec2& offset(std::size_t i) const { return offsets_[i]; }

  /// Vertical offset of element i above the mount height (0 for flat
  /// arrays, which carry no z offsets at all).
  double z_offset(std::size_t i) const {
    return z_offsets_.empty() ? 0.0 : z_offsets_[i];
  }
  bool has_vertical_extent() const;

  /// Sub-geometry containing the given element indices (e.g. the first
  /// row of the rectangle, or the 8+1 symmetry-removal set).
  ArrayGeometry subset(const std::vector<std::size_t>& indices) const;

  /// Largest pairwise element distance (aperture) in meters.
  double aperture_m() const;

 private:
  std::vector<geom::Vec2> offsets_;
  std::vector<double> z_offsets_;  // empty = flat array
};

/// ArrayTrack's physical constants: half-wavelength element pitch at
/// 2.4 GHz is 6.13 cm (paper section 3).
inline constexpr double kHalfWavelengthSpacingM = 0.0613;

}  // namespace arraytrack::array
