// AP phase calibration (paper section 3, equations 9-12).
//
// Each radio front end's downconversion oscillator adds an unknown
// phase offset; AoA is impossible until those are measured and removed.
// The paper injects a continuous-wave tone from a USRP2 through SMA
// splitters and cables ("external paths") whose own small imperfections
// contaminate a single measurement; running the measurement twice with
// the two external paths exchanged cancels the imperfection exactly:
//   Phoff1 = (Phex2 + Phin2) - (Phex1 + Phin1)
//   Phoff2 = (Phex1 + Phin2) - (Phex2 + Phin1)
//   (Phoff1 + Phoff2)/2 = Phin2 - Phin1          (the wanted offset)
//   (Phoff2 - Phoff1)/2 = Phex1 - Phex2          (the rig error)
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/types.h"

namespace arraytrack::array {

/// Simulated bank of radio receivers with hidden LO phase offsets.
/// Offsets are fixed at construction (one power cycle of the AP).
class RadioBank {
 public:
  /// `radios` receivers with offsets drawn uniformly from [0, 2*pi).
  RadioBank(std::size_t radios, std::uint64_t seed);

  /// Exact hidden offsets (test oracle; a real AP cannot read these).
  const std::vector<double>& true_offsets() const { return offsets_; }

  std::size_t size() const { return offsets_.size(); }

  /// Applies radio i's offset to a sample, as the downconverter does.
  cplx downconvert(std::size_t radio, cplx rf_sample) const;

  /// Applies the offsets to a whole per-radio sample vector.
  linalg::CVector downconvert(const linalg::CVector& rf_samples) const;

 private:
  std::vector<double> offsets_;
};

/// The calibration fixture: a tone source and two external paths with
/// small unknown phase imperfections, plus measurement phase noise.
class CalibrationRig {
 public:
  struct Options {
    double external_path_imbalance_rad = 0.15;  // |Phex1 - Phex2| scale
    double measurement_noise_rad = 0.0;         // per-measurement jitter
  };

  CalibrationRig(const RadioBank* bank, Options opt, std::uint64_t seed);

  /// One calibration pass over all radios relative to radio 0.
  /// `swapped` exchanges the two external paths (the second pass of the
  /// paper's scheme). Returns measured offsets Phoff[i] for each radio.
  std::vector<double> measure(bool swapped);

  /// Runs both passes and combines them per equations 11-12. The result
  /// offsets satisfy offsets[0] == 0; apply with PhaseCalibration.
  std::vector<double> calibrate();

  /// The rig's hidden external-path imbalance (test oracle).
  double true_imbalance() const { return phex1_ - phex2_; }

  /// Imbalance estimate from the last calibrate() call, eq. 12.
  double estimated_imbalance() const { return estimated_imbalance_; }

 private:
  const RadioBank* bank_;
  Options opt_;
  std::mt19937_64 rng_;
  double phex1_;
  double phex2_;
  double estimated_imbalance_ = 0.0;
};

/// Applies measured calibration offsets to received per-radio samples.
class PhaseCalibration {
 public:
  PhaseCalibration() = default;
  explicit PhaseCalibration(std::vector<double> offsets)
      : offsets_(std::move(offsets)) {}

  bool empty() const { return offsets_.empty(); }
  std::size_t size() const { return offsets_.size(); }
  const std::vector<double>& offsets() const { return offsets_; }

  /// Subtracts the measured offsets: y_i = x_i * exp(-j * offset_i).
  linalg::CVector apply(const linalg::CVector& samples) const;

  /// Worst-case residual between these offsets and a radio bank's true
  /// offsets, after removing the common (radio-0-relative) reference.
  double max_residual(const RadioBank& bank) const;

 private:
  std::vector<double> offsets_;
};

}  // namespace arraytrack::array
