#include "array/geometry.h"

#include <cmath>

#include "linalg/types.h"

namespace arraytrack::array {

ArrayGeometry ArrayGeometry::uniform_linear(std::size_t elements,
                                            double spacing_m) {
  std::vector<geom::Vec2> offsets;
  offsets.reserve(elements);
  const double x0 = -0.5 * spacing_m * double(elements - 1);
  for (std::size_t i = 0; i < elements; ++i)
    offsets.push_back({x0 + spacing_m * double(i), 0.0});
  return ArrayGeometry(std::move(offsets));
}

ArrayGeometry ArrayGeometry::rectangular(std::size_t columns,
                                         double spacing_m, double row_gap_m) {
  std::vector<geom::Vec2> offsets;
  offsets.reserve(2 * columns);
  const double x0 = -0.5 * spacing_m * double(columns - 1);
  for (std::size_t i = 0; i < columns; ++i)
    offsets.push_back({x0 + spacing_m * double(i), 0.0});
  for (std::size_t i = 0; i < columns; ++i)
    offsets.push_back({x0 + spacing_m * double(i), -row_gap_m});
  return ArrayGeometry(std::move(offsets));
}

ArrayGeometry ArrayGeometry::circular(std::size_t elements, double radius_m) {
  std::vector<geom::Vec2> offsets;
  offsets.reserve(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    const double ang = kTwoPi * double(i) / double(elements);
    offsets.push_back({radius_m * std::cos(ang), radius_m * std::sin(ang)});
  }
  return ArrayGeometry(std::move(offsets));
}

ArrayGeometry ArrayGeometry::l_shaped(std::size_t columns,
                                      std::size_t verticals,
                                      double spacing_m) {
  std::vector<geom::Vec2> offsets;
  std::vector<double> z;
  offsets.reserve(columns + verticals);
  z.reserve(columns + verticals);
  const double x0 = -0.5 * spacing_m * double(columns - 1);
  for (std::size_t i = 0; i < columns; ++i) {
    offsets.push_back({x0 + spacing_m * double(i), 0.0});
    z.push_back(0.0);
  }
  for (std::size_t i = 0; i < verticals; ++i) {
    offsets.push_back({0.0, 0.0});
    z.push_back(spacing_m * double(i + 1));
  }
  return ArrayGeometry(std::move(offsets), std::move(z));
}

bool ArrayGeometry::has_vertical_extent() const {
  for (double z : z_offsets_)
    if (z != 0.0) return true;
  return false;
}

ArrayGeometry ArrayGeometry::subset(
    const std::vector<std::size_t>& indices) const {
  std::vector<geom::Vec2> offsets;
  std::vector<double> z;
  offsets.reserve(indices.size());
  z.reserve(indices.size());
  for (std::size_t i : indices) {
    offsets.push_back(offsets_[i]);
    z.push_back(z_offset(i));
  }
  return ArrayGeometry(std::move(offsets), std::move(z));
}

double ArrayGeometry::aperture_m() const {
  double best = 0.0;
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    for (std::size_t j = i + 1; j < offsets_.size(); ++j)
      best = std::max(best, geom::distance(offsets_[i], offsets_[j]));
  return best;
}

}  // namespace arraytrack::array
