#include "array/placed_array.h"

#include <cmath>

namespace arraytrack::array {

std::vector<geom::Vec2> PlacedArray::world_positions() const {
  std::vector<geom::Vec2> out;
  out.reserve(geometry_.size());
  for (const auto& off : geometry_.offsets())
    out.push_back(position_ + off.rotated(orientation_));
  return out;
}

geom::Vec2 PlacedArray::world_position(std::size_t element) const {
  return position_ + geometry_.offset(element).rotated(orientation_);
}

linalg::CVector PlacedArray::steering(double theta_local_rad,
                                      double lambda_m) const {
  const geom::Vec2 u = geom::unit_from_angle(theta_local_rad);
  linalg::CVector a(geometry_.size());
  const double k = kTwoPi / lambda_m;
  for (std::size_t m = 0; m < geometry_.size(); ++m)
    a[m] = std::exp(kJ * (k * geometry_.offset(m).dot(u)));
  return a;
}

linalg::CVector PlacedArray::steering_subset(
    double theta_local_rad, double lambda_m,
    std::span<const std::size_t> elements) const {
  const geom::Vec2 u = geom::unit_from_angle(theta_local_rad);
  linalg::CVector a(elements.size());
  const double k = kTwoPi / lambda_m;
  for (std::size_t i = 0; i < elements.size(); ++i)
    a[i] = std::exp(kJ * (k * geometry_.offset(elements[i]).dot(u)));
  return a;
}

linalg::CVector PlacedArray::steering3(double theta_local_rad,
                                       double elevation_rad,
                                       double lambda_m) const {
  const geom::Vec2 u = geom::unit_from_angle(theta_local_rad);
  const double ce = std::cos(elevation_rad);
  const double se = std::sin(elevation_rad);
  linalg::CVector a(geometry_.size());
  const double k = kTwoPi / lambda_m;
  for (std::size_t m = 0; m < geometry_.size(); ++m)
    a[m] = std::exp(kJ * (k * (geometry_.offset(m).dot(u) * ce +
                               geometry_.z_offset(m) * se)));
  return a;
}

std::vector<double> PlacedArray::element_heights(double mount_height_m) const {
  std::vector<double> out;
  out.reserve(geometry_.size());
  for (std::size_t m = 0; m < geometry_.size(); ++m)
    out.push_back(mount_height_m + geometry_.z_offset(m));
  return out;
}

double PlacedArray::world_to_local(double world_bearing_rad) const {
  return wrap_pi(world_bearing_rad - orientation_);
}

double PlacedArray::local_to_world(double theta_local_rad) const {
  return wrap_pi(theta_local_rad + orientation_);
}

double PlacedArray::bearing_to(const geom::Vec2& world_point) const {
  return world_to_local((world_point - position_).angle());
}

}  // namespace arraytrack::array
