// An antenna array placed on the floorplan: geometry + pose, steering
// vectors, and local/world bearing conversions.
#pragma once

#include <span>
#include <vector>

#include "array/geometry.h"
#include "geom/vec2.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace arraytrack::array {

/// Bearing conventions:
///  * A *local* bearing theta is measured from the array's +x axis
///    (the linear-array row direction), counter-clockwise, in radians.
///    A linear array resolves theta only up to the y-axis mirror
///    (theta vs -theta), which is the symmetry ambiguity of 2.3.4.
///  * A *world* bearing is measured from the global +x axis.
class PlacedArray {
 public:
  PlacedArray() = default;
  PlacedArray(ArrayGeometry geometry, geom::Vec2 position,
              double orientation_rad)
      : geometry_(std::move(geometry)),
        position_(position),
        orientation_(orientation_rad) {}

  const ArrayGeometry& geometry() const { return geometry_; }
  const geom::Vec2& position() const { return position_; }
  double orientation() const { return orientation_; }
  std::size_t size() const { return geometry_.size(); }

  /// World-frame position of each element.
  std::vector<geom::Vec2> world_positions() const;
  geom::Vec2 world_position(std::size_t element) const;

  /// Steering vector a(theta) for a plane wave arriving from local
  /// bearing theta: a_m = exp(+j * 2*pi/lambda * (offset_m . u(theta))).
  /// Matches the channel's phase convention (phase = -2*pi*d/lambda):
  /// elements closer to the source lead in phase.
  linalg::CVector steering(double theta_local_rad, double lambda_m) const;

  /// Steering vector restricted to a subset of elements.
  linalg::CVector steering_subset(double theta_local_rad, double lambda_m,
                                  std::span<const std::size_t> elements) const;

  /// 3-D steering for an array with vertical extent: a plane wave from
  /// local azimuth `theta` and elevation `elevation` (positive = from
  /// above) gives
  ///   a_m = exp(+j*2*pi/lambda * (offset_m . u(theta) * cos(el)
  ///                               + z_m * sin(el))).
  linalg::CVector steering3(double theta_local_rad, double elevation_rad,
                            double lambda_m) const;

  /// Absolute height of each element when the array reference is
  /// mounted at `mount_height_m`.
  std::vector<double> element_heights(double mount_height_m) const;

  double world_to_local(double world_bearing_rad) const;
  double local_to_world(double theta_local_rad) const;

  /// Local bearing from the array center toward a world point.
  double bearing_to(const geom::Vec2& world_point) const;

 private:
  ArrayGeometry geometry_;
  geom::Vec2 position_;
  double orientation_ = 0.0;
};

}  // namespace arraytrack::array
