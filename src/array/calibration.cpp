#include "array/calibration.h"

#include <cmath>
#include <stdexcept>

namespace arraytrack::array {

RadioBank::RadioBank(std::size_t radios, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  offsets_.reserve(radios);
  for (std::size_t i = 0; i < radios; ++i) offsets_.push_back(uang(rng));
}

cplx RadioBank::downconvert(std::size_t radio, cplx rf_sample) const {
  return rf_sample * std::exp(kJ * offsets_[radio]);
}

linalg::CVector RadioBank::downconvert(const linalg::CVector& rf) const {
  if (rf.size() != offsets_.size())
    throw std::invalid_argument("RadioBank::downconvert: size mismatch");
  linalg::CVector out(rf.size());
  for (std::size_t i = 0; i < rf.size(); ++i) out[i] = downconvert(i, rf[i]);
  return out;
}

CalibrationRig::CalibrationRig(const RadioBank* bank, Options opt,
                               std::uint64_t seed)
    : bank_(bank), opt_(opt), rng_(seed) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  phex1_ = opt_.external_path_imbalance_rad * u(rng_);
  phex2_ = opt_.external_path_imbalance_rad * u(rng_);
}

std::vector<double> CalibrationRig::measure(bool swapped) {
  std::normal_distribution<double> noise(0.0, opt_.measurement_noise_rad);
  const auto& in = bank_->true_offsets();
  // Radio 0 always listens through path 1; radio i through path 2
  // (or exchanged when `swapped`). The tone itself has phase 0 at the
  // splitter, so the i-th measured offset is the phase of radio i's
  // output relative to radio 0's.
  const double path_ref = swapped ? phex2_ : phex1_;
  const double path_meas = swapped ? phex1_ : phex2_;
  std::vector<double> out(bank_->size(), 0.0);
  for (std::size_t i = 1; i < bank_->size(); ++i) {
    const double ref_phase = path_ref + in[0];
    const double meas_phase = path_meas + in[i];
    double m = wrap_pi(meas_phase - ref_phase);
    if (opt_.measurement_noise_rad > 0.0) m = wrap_pi(m + noise(rng_));
    out[i] = m;
  }
  return out;
}

std::vector<double> CalibrationRig::calibrate() {
  const auto pass1 = measure(/*swapped=*/false);
  const auto pass2 = measure(/*swapped=*/true);
  std::vector<double> offsets(bank_->size(), 0.0);
  double imbalance = 0.0;
  for (std::size_t i = 1; i < bank_->size(); ++i) {
    // Equations 11 and 12 of the paper. The averages must be taken on
    // the circle: convert to phasors before combining so that wrap
    // boundaries do not corrupt the mean.
    const cplx mean = 0.5 * (std::exp(kJ * pass1[i]) + std::exp(kJ * pass2[i]));
    offsets[i] = std::arg(mean);
    const cplx diff = std::exp(kJ * (pass2[i] - pass1[i]));
    imbalance += 0.5 * std::arg(diff);
  }
  if (bank_->size() > 1) imbalance /= double(bank_->size() - 1);
  estimated_imbalance_ = imbalance;
  return offsets;
}

linalg::CVector PhaseCalibration::apply(const linalg::CVector& samples) const {
  if (samples.size() != offsets_.size())
    throw std::invalid_argument("PhaseCalibration::apply: size mismatch");
  linalg::CVector out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    out[i] = samples[i] * std::exp(-kJ * offsets_[i]);
  return out;
}

double PhaseCalibration::max_residual(const RadioBank& bank) const {
  if (bank.size() != offsets_.size())
    throw std::invalid_argument("PhaseCalibration::max_residual: size");
  double worst = 0.0;
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    const double truth = wrap_pi(bank.true_offsets()[i] - bank.true_offsets()[0]);
    worst = std::max(worst, std::abs(wrap_pi(offsets_[i] - truth)));
  }
  return worst;
}

}  // namespace arraytrack::array
