// Scenario files: a plain-text format describing a deployment —
// floorplan, AP sites, client positions and radio settings — so
// experiments can be run from data instead of code (see
// tools/arraytrack_sim). Line-oriented; '#' starts a comment.
//
//   bounds   <min_x> <min_y> <max_x> <max_y>
//   wall     <x1> <y1> <x2> <y2> <material>
//   pillar   <x> <y> <radius> [loss_db]
//   ap       <x> <y> <orientation_deg>
//   client   <x> <y>
//   tx_power <dbm>
//   heights  <ap_m> <client_m>
//   seed     <n>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/arraytrack.h"
#include "testbed/office.h"

namespace arraytrack::testbed {

struct Scenario {
  geom::Floorplan plan;
  std::vector<ApSite> ap_sites;
  std::vector<geom::Vec2> clients;
  core::SystemConfig system;

  /// Builds a ready-to-use System with every AP installed. The
  /// Scenario must outlive the returned System (it borrows the plan).
  core::System make_system() const;
};

struct ScenarioParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parses the text format. On failure returns nullopt and fills
/// `error` (if given) with the offending line and reason.
std::optional<Scenario> parse_scenario(const std::string& text,
                                       ScenarioParseError* error = nullptr);

/// Reads a scenario from a file; nullopt on I/O or parse failure.
std::optional<Scenario> load_scenario(const std::string& path,
                                      ScenarioParseError* error = nullptr);

/// Inverse of parse_scenario (round-trips through parse).
std::string serialize_scenario(const Scenario& scenario);

/// Material name lookup ("drywall" -> Material::kDrywall); nullopt for
/// unknown names.
std::optional<geom::Material> material_from_name(const std::string& name);

/// The standard office testbed expressed as a Scenario.
Scenario office_scenario();

}  // namespace arraytrack::testbed
