// Error statistics and CDF reporting for the evaluation benches.
#pragma once

#include <string>
#include <vector>

namespace arraytrack::testbed {

class ErrorStats {
 public:
  ErrorStats() = default;
  explicit ErrorStats(std::vector<double> samples);

  void add(double v) { samples_.push_back(v); }
  void add_all(const std::vector<double>& vs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double median() const { return percentile(50.0); }
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double min() const;
  double max() const;

  /// Fraction of samples <= threshold (one CDF point).
  double cdf_at(double threshold) const;

  /// Sorted copy of the samples.
  std::vector<double> sorted() const;

  /// Multi-row table: threshold vs CDF fraction, for the bench output.
  std::string cdf_table(const std::vector<double>& thresholds,
                        const std::string& unit = "cm") const;

  /// One summary line: n, mean, median, p90/p95/p98.
  std::string summary(const std::string& label,
                      const std::string& unit = "cm") const;

 private:
  std::vector<double> samples_;
};

}  // namespace arraytrack::testbed
