#include "testbed/render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace arraytrack::testbed {

Image::Image(std::size_t width, std::size_t height, Rgb fill)
    : w_(width), h_(height), pixels_(width * height, fill) {}

void Image::set(std::ptrdiff_t x, std::ptrdiff_t y, Rgb c) {
  if (x < 0 || y < 0 || std::size_t(x) >= w_ || std::size_t(y) >= h_) return;
  pixels_[std::size_t(y) * w_ + std::size_t(x)] = c;
}

void Image::line(std::ptrdiff_t x0, std::ptrdiff_t y0, std::ptrdiff_t x1,
                 std::ptrdiff_t y1, Rgb c) {
  const std::ptrdiff_t dx = std::abs(x1 - x0);
  const std::ptrdiff_t dy = -std::abs(y1 - y0);
  const std::ptrdiff_t sx = x0 < x1 ? 1 : -1;
  const std::ptrdiff_t sy = y0 < y1 ? 1 : -1;
  std::ptrdiff_t err = dx + dy;
  while (true) {
    set(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const std::ptrdiff_t e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Image::disc(std::ptrdiff_t cx, std::ptrdiff_t cy, std::ptrdiff_t radius,
                 Rgb c) {
  for (std::ptrdiff_t y = -radius; y <= radius; ++y)
    for (std::ptrdiff_t x = -radius; x <= radius; ++x)
      if (x * x + y * y <= radius * radius) set(cx + x, cy + y, c);
}

std::vector<std::uint8_t> Image::to_ppm() const {
  char header[64];
  const int n =
      std::snprintf(header, sizeof(header), "P6\n%zu %zu\n255\n", w_, h_);
  std::vector<std::uint8_t> out(header, header + n);
  out.reserve(out.size() + pixels_.size() * 3);
  for (const auto& p : pixels_) {
    out.push_back(p.r);
    out.push_back(p.g);
    out.push_back(p.b);
  }
  return out;
}

bool Image::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto bytes = to_ppm();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  return bool(out);
}

Rgb heat_color(double v) {
  v = std::clamp(v, 0.0, 1.0);
  // Four-stop gradient: navy -> cyan -> yellow -> red.
  struct Stop {
    double t;
    Rgb c;
  };
  static const Stop stops[] = {{0.0, {10, 10, 60}},
                               {0.35, {30, 180, 200}},
                               {0.7, {240, 220, 60}},
                               {1.0, {220, 40, 30}}};
  for (std::size_t i = 1; i < 4; ++i) {
    if (v <= stops[i].t) {
      const double f = (v - stops[i - 1].t) / (stops[i].t - stops[i - 1].t);
      const auto& a = stops[i - 1].c;
      const auto& b = stops[i].c;
      return {std::uint8_t(a.r + f * (b.r - a.r)),
              std::uint8_t(a.g + f * (b.g - a.g)),
              std::uint8_t(a.b + f * (b.b - a.b))};
    }
  }
  return stops[3].c;
}

Image render_heatmap(const core::Heatmap& map, const geom::Floorplan& plan,
                     const std::vector<ApSite>& aps, const geom::Vec2* truth,
                     const geom::Vec2* estimate, RenderOptions opt) {
  const double ppm = double(opt.pixels_per_meter);
  const auto& b = map.bounds;
  const std::size_t w = std::size_t(std::ceil(b.width() * ppm));
  const std::size_t h = std::size_t(std::ceil(b.height() * ppm));
  Image img(std::max<std::size_t>(w, 1), std::max<std::size_t>(h, 1));

  auto to_px = [&](const geom::Vec2& p) {
    // +y up: flip the row index.
    return std::pair<std::ptrdiff_t, std::ptrdiff_t>(
        std::ptrdiff_t((p.x - b.min.x) * ppm),
        std::ptrdiff_t(double(img.height()) - 1 - (p.y - b.min.y) * ppm));
  };

  // Likelihood field (log-compressed for visibility, like the paper's
  // figures where side lobes remain visible).
  const double top = map.max_value();
  for (std::size_t py = 0; py < img.height(); ++py) {
    for (std::size_t px = 0; px < img.width(); ++px) {
      const double x = b.min.x + (double(px) + 0.5) / ppm;
      const double y =
          b.min.y + (double(img.height() - 1 - py) + 0.5) / ppm;
      const std::size_t ix = std::min(
          map.nx - 1, std::size_t((x - b.min.x) / b.width() * double(map.nx)));
      const std::size_t iy = std::min(
          map.ny - 1,
          std::size_t((y - b.min.y) / b.height() * double(map.ny)));
      const double v = top > 0.0 ? map.at(ix, iy) / top : 0.0;
      const double compressed =
          v > 0.0 ? std::max(0.0, 1.0 + std::log10(v) / 4.0) : 0.0;
      img.at(px, py) = heat_color(compressed);
    }
  }

  if (opt.draw_walls) {
    for (const auto& wall : plan.walls()) {
      const auto [x0, y0] = to_px(wall.a);
      const auto [x1, y1] = to_px(wall.b);
      img.line(x0, y0, x1, y1, {230, 230, 230});
    }
  }
  if (opt.draw_pillars) {
    for (const auto& p : plan.pillars()) {
      const auto [cx, cy] = to_px(p.center);
      img.disc(cx, cy, std::ptrdiff_t(p.radius * ppm), {160, 160, 160});
    }
  }
  for (const auto& ap : aps) {
    const auto [cx, cy] = to_px(ap.position);
    img.disc(cx, cy, 3, {255, 255, 255});
  }
  if (truth) {
    const auto [cx, cy] = to_px(*truth);
    img.disc(cx, cy, 3, {40, 220, 60});
  }
  if (estimate) {
    const auto [cx, cy] = to_px(*estimate);
    img.disc(cx, cy, 2, {240, 60, 240});
  }
  return img;
}

}  // namespace arraytrack::testbed
