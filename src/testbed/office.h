// The synthetic office testbed (stands in for the paper's Fig. 12).
//
// A 40 m x 16 m floor: perimeter walls, a central corridor, a row of
// offices along the top, an open cubicle area below, concrete pillars
// in the corridor, plus metal / glass / wood features so clients sit
// near a variety of reflectors — mirroring how the paper placed its 41
// Soekris clients "near metal, wood, glass and plastic walls" and
// "behind concrete pillars".
#pragma once

#include <vector>

#include "geom/floorplan.h"
#include "geom/vec2.h"

namespace arraytrack::testbed {

struct ApSite {
  geom::Vec2 position;
  double orientation_rad = 0.0;
};

struct OfficeTestbed {
  geom::Floorplan plan;
  /// Six AP sites, labelled 1-6 like the paper's floorplan.
  std::vector<ApSite> ap_sites;
  /// 41 client ground-truth positions, roughly uniform over the floor.
  std::vector<geom::Vec2> clients;

  /// The standard testbed used by every experiment bench.
  static OfficeTestbed standard();

  /// Clients whose direct path to the given AP site crosses >= 1 pillar
  /// (the deliberately hard NLOS cases).
  std::vector<std::size_t> blocked_clients(std::size_t ap_index) const;
};

}  // namespace arraytrack::testbed
