// Experiment runner: drives the full ArrayTrack stack over the office
// testbed and evaluates localization error across AP subsets — the
// harness behind the paper's Figs. 13, 15, 16 and 18.
#pragma once

#include <cstdint>
#include <vector>

#include "core/arraytrack.h"
#include "testbed/office.h"

namespace arraytrack::testbed {

struct RunnerConfig {
  core::SystemConfig system;
  /// Frames transmitted per client, with small motion in between
  /// (paper 4.2: two more samples < 5 cm away).
  std::size_t frames_per_client = 3;
  double frame_spacing_s = 0.030;
  /// Client displacement between consecutive frames, meters.
  double move_step_m = 0.035;
  std::uint64_t seed = 42;
};

/// Per-client fused spectra (one per AP) plus the ground truth.
struct ClientObservation {
  geom::Vec2 truth;
  std::vector<core::ApSpectrum> per_ap;  // index = AP id
};

class ExperimentRunner {
 public:
  /// Builds a System over the testbed's floorplan with all its AP
  /// sites installed. `testbed` must outlive the runner.
  ExperimentRunner(const OfficeTestbed* testbed, RunnerConfig cfg = {});

  core::System& system() { return system_; }
  const OfficeTestbed& testbed() const { return *testbed_; }

  /// Transmits frames_per_client frames per client (with inter-frame
  /// motion) and fuses each AP's spectra. Expensive; run once and share
  /// across AP-subset evaluations.
  std::vector<ClientObservation> observe_all_clients();

  /// Same, for a caller-chosen subset of client indices.
  std::vector<ClientObservation> observe_clients(
      const std::vector<std::size_t>& client_indices);

  /// Localization error (meters) per observation, fusing only the APs
  /// in `ap_subset`.
  std::vector<double> localization_errors(
      const std::vector<ClientObservation>& obs,
      const std::vector<std::size_t>& ap_subset) const;

  /// Errors pooled over every size-k subset of the testbed's APs (the
  /// paper's "all combinations of three, four, five and six APs").
  std::vector<double> errors_for_ap_count(
      const std::vector<ClientObservation>& obs, std::size_t k) const;

  /// All size-k subsets of {0..n-1}.
  static std::vector<std::vector<std::size_t>> combinations(std::size_t n,
                                                            std::size_t k);

 private:
  const OfficeTestbed* testbed_;
  RunnerConfig cfg_;
  core::System system_;
  double clock_s_ = 0.0;
};

}  // namespace arraytrack::testbed
