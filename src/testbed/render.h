// Image rendering for heatmaps and floorplans (binary PPM, no
// dependencies): the likelihood images of the paper's Fig. 14, with
// the floorplan, AP sites and ground truth overlaid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/synthesis.h"
#include "geom/floorplan.h"
#include "testbed/office.h"

namespace arraytrack::testbed {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// A simple raster image with PPM (P6) output.
class Image {
 public:
  Image(std::size_t width, std::size_t height, Rgb fill = {0, 0, 0});

  std::size_t width() const { return w_; }
  std::size_t height() const { return h_; }

  Rgb& at(std::size_t x, std::size_t y) { return pixels_[y * w_ + x]; }
  const Rgb& at(std::size_t x, std::size_t y) const {
    return pixels_[y * w_ + x];
  }

  /// Clipped single-pixel set.
  void set(std::ptrdiff_t x, std::ptrdiff_t y, Rgb c);
  /// Bresenham line, clipped.
  void line(std::ptrdiff_t x0, std::ptrdiff_t y0, std::ptrdiff_t x1,
            std::ptrdiff_t y1, Rgb c);
  /// Filled disc, clipped.
  void disc(std::ptrdiff_t cx, std::ptrdiff_t cy, std::ptrdiff_t radius,
            Rgb c);

  /// Binary PPM bytes ("P6 ...").
  std::vector<std::uint8_t> to_ppm() const;
  /// Writes to_ppm() to a file; false on I/O failure.
  bool write_ppm(const std::string& path) const;

 private:
  std::size_t w_, h_;
  std::vector<Rgb> pixels_;
};

/// Perceptually ordered colormap for likelihood in [0, 1]
/// (dark blue -> cyan -> yellow -> red).
Rgb heat_color(double v01);

struct RenderOptions {
  std::size_t pixels_per_meter = 16;
  bool draw_walls = true;
  bool draw_pillars = true;
};

/// Renders a likelihood heatmap over its bounds with the floorplan
/// overlaid; optional AP sites (white discs), ground truth (green) and
/// estimate (magenta). Image y is flipped so +y is up.
Image render_heatmap(const core::Heatmap& map, const geom::Floorplan& plan,
                     const std::vector<ApSite>& aps = {},
                     const geom::Vec2* truth = nullptr,
                     const geom::Vec2* estimate = nullptr,
                     RenderOptions opt = {});

}  // namespace arraytrack::testbed
