#include "testbed/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace arraytrack::testbed {

ErrorStats::ErrorStats(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void ErrorStats::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
}

double ErrorStats::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : samples_) acc += v;
  return acc / double(samples_.size());
}

double ErrorStats::percentile(double p) const {
  if (samples_.empty()) throw std::out_of_range("ErrorStats: no samples");
  auto s = sorted();
  const double rank = (p / 100.0) * double(s.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double f = rank - double(lo);
  return (1.0 - f) * s[lo] + f * s[hi];
}

double ErrorStats::min() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

double ErrorStats::max() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

double ErrorStats::cdf_at(double threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : samples_)
    if (v <= threshold) ++n;
  return double(n) / double(samples_.size());
}

std::vector<double> ErrorStats::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

std::string ErrorStats::cdf_table(const std::vector<double>& thresholds,
                                  const std::string& unit) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (double t : thresholds)
    os << "  P(err <= " << std::setw(7) << t << " " << unit
       << ") = " << cdf_at(t) << "\n";
  return os.str();
}

std::string ErrorStats::summary(const std::string& label,
                                const std::string& unit) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (samples_.empty()) {
    os << label << ": no samples";
    return os.str();
  }
  os << label << ": n=" << samples_.size() << "  mean=" << mean() << unit
     << "  median=" << median() << unit << "  p90=" << percentile(90.0)
     << unit << "  p95=" << percentile(95.0) << unit
     << "  p98=" << percentile(98.0) << unit;
  return os.str();
}

}  // namespace arraytrack::testbed
