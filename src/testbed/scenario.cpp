#include "testbed/scenario.h"

#include <fstream>
#include <sstream>

namespace arraytrack::testbed {

core::System Scenario::make_system() const {
  core::System sys(&plan, system);
  for (const auto& site : ap_sites)
    sys.add_ap(site.position, site.orientation_rad);
  return sys;
}

std::optional<geom::Material> material_from_name(const std::string& name) {
  using geom::Material;
  for (auto m : {Material::kConcrete, Material::kBrick, Material::kDrywall,
                 Material::kGlass, Material::kMetal, Material::kWood,
                 Material::kCubicle}) {
    if (geom::material_name(m) == name) return m;
  }
  return std::nullopt;
}

std::optional<Scenario> parse_scenario(const std::string& text,
                                       ScenarioParseError* error) {
  auto fail = [&](std::size_t line, const std::string& msg) {
    if (error) *error = {line, msg};
    return std::nullopt;
  };

  Scenario sc;
  bool have_bounds = false;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;  // blank line

    if (cmd == "bounds") {
      double x0, y0, x1, y1;
      if (!(line >> x0 >> y0 >> x1 >> y1) || x1 <= x0 || y1 <= y0)
        return fail(lineno, "bounds needs min_x min_y max_x max_y");
      sc.plan.set_bounds({{x0, y0}, {x1, y1}});
      have_bounds = true;
    } else if (cmd == "wall") {
      double x1, y1, x2, y2;
      std::string mat;
      if (!(line >> x1 >> y1 >> x2 >> y2 >> mat))
        return fail(lineno, "wall needs x1 y1 x2 y2 material");
      const auto m = material_from_name(mat);
      if (!m) return fail(lineno, "unknown material '" + mat + "'");
      sc.plan.add_wall({x1, y1}, {x2, y2}, *m);
    } else if (cmd == "pillar") {
      double x, y, r, loss = 9.0;
      if (!(line >> x >> y >> r))
        return fail(lineno, "pillar needs x y radius [loss_db]");
      line >> loss;
      if (r <= 0.0) return fail(lineno, "pillar radius must be positive");
      sc.plan.add_pillar({{x, y}, r, loss});
    } else if (cmd == "ap") {
      double x, y, deg;
      if (!(line >> x >> y >> deg))
        return fail(lineno, "ap needs x y orientation_deg");
      sc.ap_sites.push_back({{x, y}, deg2rad(deg)});
    } else if (cmd == "client") {
      double x, y;
      if (!(line >> x >> y)) return fail(lineno, "client needs x y");
      sc.clients.push_back({x, y});
    } else if (cmd == "tx_power") {
      if (!(line >> sc.system.channel.tx_power_dbm))
        return fail(lineno, "tx_power needs dbm");
    } else if (cmd == "heights") {
      if (!(line >> sc.system.channel.ap_height_m >>
            sc.system.channel.client_height_m))
        return fail(lineno, "heights needs ap_m client_m");
    } else if (cmd == "seed") {
      if (!(line >> sc.system.seed)) return fail(lineno, "seed needs n");
    } else {
      return fail(lineno, "unknown directive '" + cmd + "'");
    }
  }
  if (!have_bounds) return fail(0, "scenario has no bounds line");
  if (sc.ap_sites.empty()) return fail(0, "scenario has no ap lines");
  return sc;
}

std::optional<Scenario> load_scenario(const std::string& path,
                                      ScenarioParseError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = {0, "cannot open '" + path + "'"};
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario(buf.str(), error);
}

std::string serialize_scenario(const Scenario& sc) {
  std::ostringstream os;
  os << "# ArrayTrack scenario\n";
  const auto& b = sc.plan.bounds();
  os << "bounds " << b.min.x << " " << b.min.y << " " << b.max.x << " "
     << b.max.y << "\n";
  os << "tx_power " << sc.system.channel.tx_power_dbm << "\n";
  os << "heights " << sc.system.channel.ap_height_m << " "
     << sc.system.channel.client_height_m << "\n";
  os << "seed " << sc.system.seed << "\n";
  for (const auto& w : sc.plan.walls())
    os << "wall " << w.a.x << " " << w.a.y << " " << w.b.x << " " << w.b.y
       << " " << geom::material_name(w.material) << "\n";
  for (const auto& p : sc.plan.pillars())
    os << "pillar " << p.center.x << " " << p.center.y << " " << p.radius
       << " " << p.loss_db << "\n";
  for (const auto& a : sc.ap_sites)
    os << "ap " << a.position.x << " " << a.position.y << " "
       << rad2deg(a.orientation_rad) << "\n";
  for (const auto& c : sc.clients)
    os << "client " << c.x << " " << c.y << "\n";
  return os.str();
}

Scenario office_scenario() {
  const auto tb = OfficeTestbed::standard();
  Scenario sc;
  sc.plan = tb.plan;
  sc.ap_sites = tb.ap_sites;
  sc.clients = tb.clients;
  return sc;
}

}  // namespace arraytrack::testbed
