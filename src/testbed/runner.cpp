#include "testbed/runner.h"

#include <cmath>
#include <random>

namespace arraytrack::testbed {

ExperimentRunner::ExperimentRunner(const OfficeTestbed* testbed,
                                   RunnerConfig cfg)
    : testbed_(testbed), cfg_(cfg), system_(&testbed->plan, cfg.system) {
  for (const auto& site : testbed_->ap_sites)
    system_.add_ap(site.position, site.orientation_rad);
}

std::vector<ClientObservation> ExperimentRunner::observe_all_clients() {
  std::vector<std::size_t> all(testbed_->clients.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return observe_clients(all);
}

std::vector<ClientObservation> ExperimentRunner::observe_clients(
    const std::vector<std::size_t>& client_indices) {
  std::mt19937_64 rng(cfg_.seed);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);

  std::vector<ClientObservation> out;
  out.reserve(client_indices.size());
  for (std::size_t ci : client_indices) {
    const geom::Vec2 truth = testbed_->clients.at(ci);
    geom::Vec2 pos = truth;
    const double t0 = clock_s_;
    for (std::size_t f = 0; f < cfg_.frames_per_client; ++f) {
      system_.transmit(int(ci), pos, t0 + double(f) * cfg_.frame_spacing_s);
      // Small inadvertent movement before the next frame (paper 4.2).
      pos += geom::unit_from_angle(uang(rng)) * cfg_.move_step_m;
    }
    const double now =
        t0 + double(cfg_.frames_per_client) * cfg_.frame_spacing_s;
    ClientObservation obs;
    obs.truth = truth;
    obs.per_ap = system_.server().client_spectra(int(ci), now);
    out.push_back(std::move(obs));
    // Advance the clock past the suppression window so the next
    // client's frames never group with this one's.
    clock_s_ = now + 1.0;
  }
  return out;
}

std::vector<double> ExperimentRunner::localization_errors(
    const std::vector<ClientObservation>& obs,
    const std::vector<std::size_t>& ap_subset) const {
  std::vector<double> errors;
  errors.reserve(obs.size());
  for (const auto& o : obs) {
    std::vector<core::ApSpectrum> subset;
    subset.reserve(ap_subset.size());
    for (std::size_t a : ap_subset)
      if (a < o.per_ap.size()) subset.push_back(o.per_ap[a]);
    const auto fix = system_.server().locate_from_spectra(subset);
    if (!fix) continue;
    errors.push_back(geom::distance(fix->position, o.truth));
  }
  return errors;
}

std::vector<double> ExperimentRunner::errors_for_ap_count(
    const std::vector<ClientObservation>& obs, std::size_t k) const {
  std::vector<double> pooled;
  for (const auto& subset : combinations(testbed_->ap_sites.size(), k)) {
    const auto errs = localization_errors(obs, subset);
    pooled.insert(pooled.end(), errs.begin(), errs.end());
  }
  return pooled;
}

std::vector<std::vector<std::size_t>> ExperimentRunner::combinations(
    std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    out.push_back(idx);
    // Advance the rightmost index that can move.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
}

}  // namespace arraytrack::testbed
