#include "testbed/office.h"

#include <cmath>
#include <random>

#include "linalg/types.h"

namespace arraytrack::testbed {
namespace {

using geom::Material;
using geom::Vec2;

void add_perimeter(geom::Floorplan& plan, double w, double h) {
  plan.add_wall({0, 0}, {w, 0}, Material::kBrick);
  plan.add_wall({w, 0}, {w, h}, Material::kBrick);
  plan.add_wall({w, h}, {0, h}, Material::kBrick);
  plan.add_wall({0, h}, {0, 0}, Material::kBrick);
}

}  // namespace

OfficeTestbed OfficeTestbed::standard() {
  OfficeTestbed tb;
  // 32 m x 14 m, comparable to the paper's single office floor: links
  // stay under ~25 m so a degree of bearing error costs decimeters,
  // not meters.
  constexpr double kW = 32.0;
  constexpr double kH = 14.0;
  tb.plan.set_bounds({{0.0, 0.0}, {kW, kH}});
  add_perimeter(tb.plan, kW, kH);

  // Corridor walls at y = 6 and y = 8, drywall, with door gaps.
  for (double x = 0.0; x < kW; x += 8.0) {
    tb.plan.add_wall({x, 6.0}, {x + 6.5, 6.0}, Material::kDrywall);
    tb.plan.add_wall({x + 1.5, 8.0}, {x + 8.0, 8.0}, Material::kDrywall);
  }

  // Offices along the top: dividers from the corridor wall to the top
  // perimeter.
  for (double x = 6.4; x < kW - 1.0; x += 6.4)
    tb.plan.add_wall({x, 8.0}, {x, kH}, Material::kDrywall);

  // Open-plan cubicle area below the corridor: fabric partitions.
  for (double x = 5.0; x < kW - 4.0; x += 7.0) {
    tb.plan.add_wall({x, 1.2}, {x, 3.6}, Material::kCubicle);
    tb.plan.add_wall({x - 2.0, 3.6}, {x, 3.6}, Material::kCubicle);
  }

  // Feature walls: a glass meeting-room front, a metal cabinet run, and
  // a wood-panelled wall, so clients see varied reflector materials.
  tb.plan.add_wall({22.0, 2.0}, {27.0, 2.0}, Material::kGlass);
  tb.plan.add_wall({22.0, 2.0}, {22.0, 4.8}, Material::kGlass);
  tb.plan.add_wall({9.0, 4.9}, {13.0, 4.9}, Material::kMetal);
  tb.plan.add_wall({27.5, 8.0}, {27.5, 11.5}, Material::kWood);

  // Concrete pillars along the corridor line (the NLOS blockers).
  tb.plan.add_pillar({{6.5, 7.0}, 0.35, 9.0});
  tb.plan.add_pillar({{13.0, 7.0}, 0.35, 9.0});
  tb.plan.add_pillar({{19.5, 7.0}, 0.35, 9.0});
  tb.plan.add_pillar({{26.0, 7.0}, 0.35, 9.0});

  // Six AP sites spread like the paper's "1"-"6" labels: corners and
  // mid-points, each oriented so its array faces the floor interior.
  tb.ap_sites = {
      {{2.0, 1.0}, deg2rad(40.0)},     // 1: lower-left
      {{30.0, 1.0}, deg2rad(140.0)},   // 2: lower-right
      {{16.0, 7.0}, deg2rad(25.0)},    // 3: corridor center
      {{2.0, 13.0}, deg2rad(-40.0)},   // 4: upper-left
      {{30.0, 13.0}, deg2rad(220.0)},  // 5: upper-right
      {{16.0, 1.0}, deg2rad(110.0)},   // 6: lower-middle
  };

  // 41 clients: an 8 x 5 jittered grid (40) plus one deliberately
  // pillar-shadowed point. Deterministic seed so every experiment sees
  // the same layout.
  std::mt19937_64 rng(2013);
  std::uniform_real_distribution<double> jit(-0.7, 0.7);
  const double margin = 1.5;
  for (int gy = 0; gy < 5; ++gy) {
    for (int gx = 0; gx < 8; ++gx) {
      const double x = margin + (kW - 2 * margin) * (double(gx) + 0.5) / 8.0;
      const double y = margin + (kH - 2 * margin) * (double(gy) + 0.5) / 5.0;
      Vec2 p{x + jit(rng), y + jit(rng)};
      // Keep clear of pillar interiors.
      for (const auto& pil : tb.plan.pillars())
        if (geom::distance(p, pil.center) < pil.radius + 0.3)
          p.x += pil.radius + 0.5;
      tb.clients.push_back(p);
    }
  }
  // Client 41: straight behind a pillar as seen from AP 3.
  tb.clients.push_back({19.5, 5.4});

  return tb;
}

std::vector<std::size_t> OfficeTestbed::blocked_clients(
    std::size_t ap_index) const {
  std::vector<std::size_t> out;
  const Vec2 ap = ap_sites.at(ap_index).position;
  for (std::size_t i = 0; i < clients.size(); ++i)
    if (plan.pillars_crossed(ap, clients[i]) >= 1) out.push_back(i);
  return out;
}

}  // namespace arraytrack::testbed
