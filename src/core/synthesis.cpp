#include "core/synthesis.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>

#include "core/thread_pool.h"
#include "linalg/kernels.h"

namespace arraytrack::core {

double ApSpectrum::likelihood_toward(const geom::Vec2& x, double floor) const {
  const double world_bearing = (x - ap_position).angle();
  const double local = wrap_2pi(world_bearing - orientation_rad);
  return std::max(spectrum.value_at(local), floor);
}

geom::Vec2 Heatmap::cell_center(std::size_t ix, std::size_t iy) const {
  const double sx = bounds.width() / double(nx);
  const double sy = bounds.height() / double(ny);
  return {bounds.min.x + (double(ix) + 0.5) * sx,
          bounds.min.y + (double(iy) + 0.5) * sy};
}

double Heatmap::max_value() const {
  return cells.empty() ? 0.0 : *std::max_element(cells.begin(), cells.end());
}

std::string Heatmap::to_ascii(std::size_t width) const {
  static const char kShades[] = " .:-=+*#%@";
  if (cells.empty() || nx == 0 || ny == 0) return "";
  const std::size_t height =
      std::max<std::size_t>(1, width * ny / (nx * 2));  // chars ~2:1 aspect
  const double top = max_value();
  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    // Top row shows max y.
    const std::size_t iy = (height - 1 - r) * ny / height;
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t ix = c * nx / width;
      const double v = top > 0.0 ? at(ix, iy) / top : 0.0;
      const int shade = std::min(9, int(v * 9.999));
      os << kShades[shade];
    }
    os << "\n";
  }
  return os.str();
}

Localizer::Localizer(geom::Rect bounds, LocalizerOptions opt)
    : bounds_(bounds), opt_(opt), quant_enabled_(opt.quantized_sweep) {
  // ARRAYTRACK_QUANT overrides the option either way — same shape as
  // the ARRAYTRACK_EXACT_EVD / ARRAYTRACK_BATCH escape hatches.
  if (const char* env = std::getenv("ARRAYTRACK_QUANT")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "false") == 0)
      quant_enabled_ = false;
    else if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
             std::strcmp(env, "true") == 0)
      quant_enabled_ = true;
  }
}

double Localizer::likelihood(const std::vector<ApSpectrum>& aps,
                             const geom::Vec2& x) const {
  double l = 1.0;
  for (const auto& ap : aps) l *= ap.likelihood_toward(x, opt_.floor);
  return l;
}

std::shared_ptr<const Localizer::BearingLut> Localizer::bearing_lut(
    const ApSpectrum& ap, std::size_t nx, std::size_t ny) const {
  const std::size_t bins = ap.spectrum.bins();
  const LutKey key{ap.ap_position.x, ap.ap_position.y, ap.orientation_rad,
                   bins};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = bearing_cache_.find(key);
    if (it != bearing_cache_.end()) return it->second;
  }

  // Built outside the lock: two threads may race to build the same
  // table, but they produce identical values and the map keeps one.
  Heatmap probe;
  probe.bounds = bounds_;
  probe.nx = nx;
  probe.ny = ny;
  auto lut = std::make_shared<BearingLut>();
  lut->bin0.resize(nx * ny);
  lut->bin1.resize(nx * ny);
  lut->frac.resize(nx * ny);
  const double bin_width = kTwoPi / double(bins);
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const geom::Vec2 x = probe.cell_center(ix, iy);
      const double world = (x - ap.ap_position).angle();
      // Exactly AoaSpectrum::value_at's bin/weight derivation applied
      // to the bearing the uncached path would pass it.
      const double w = wrap_2pi(world - ap.orientation_rad) / bin_width;
      const std::size_t i0 = std::size_t(w) % bins;
      const std::size_t cell = iy * nx + ix;
      lut->bin0[cell] = std::int32_t(i0);
      lut->bin1[cell] = std::int32_t((i0 + 1) % bins);
      lut->frac[cell] = w - std::floor(w);
    }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  // A handful of fixed AP poses is the expected population; a runaway
  // caller (e.g. sweeping synthetic poses) just flushes the cache.
  if (bearing_cache_.size() >= 64) bearing_cache_.clear();
  return bearing_cache_.emplace(key, std::move(lut)).first->second;
}

Heatmap Localizer::heatmap(const std::vector<ApSpectrum>& aps) const {
  Heatmap map;
  map.bounds = bounds_;
  map.nx = std::max<std::size_t>(1, std::size_t(bounds_.width() / opt_.grid_step_m));
  map.ny = std::max<std::size_t>(1, std::size_t(bounds_.height() / opt_.grid_step_m));
  map.cells.assign(map.nx * map.ny, 1.0);

  std::vector<std::shared_ptr<const BearingLut>> luts(aps.size());
  for (std::size_t k = 0; k < aps.size(); ++k)
    if (!aps[k].spectrum.empty()) luts[k] = bearing_lut(aps[k], map.nx, map.ny);

  // Row chunks on the shared pool; every cell is an independent write,
  // and the kernel's remainder lanes round exactly like its full
  // lanes, so the chunking (and pool width) cannot change the result.
  ThreadPool::shared().parallel_ranges(
      map.ny, opt_.threads, [&](std::size_t y0, std::size_t y1) {
        const std::size_t c0 = y0 * map.nx;
        const std::size_t count = (y1 - y0) * map.nx;
        for (std::size_t k = 0; k < aps.size(); ++k) {
          if (!luts[k]) {
            // Empty spectrum: value_at reads 0, clamped to the floor.
            const double v = std::max(0.0, opt_.floor);
            for (std::size_t c = c0; c < c0 + count; ++c) map.cells[c] *= v;
            continue;
          }
          linalg::kernels::gather_lerp_product(
              aps[k].spectrum.values().data(), luts[k]->bin0.data() + c0,
              luts[k]->bin1.data() + c0, luts[k]->frac.data() + c0, count,
              opt_.floor, map.cells.data() + c0);
        }
      });
  return map;
}

LocationEstimate Localizer::hill_climb(const std::vector<ApSpectrum>& aps,
                                       geom::Vec2 start) const {
  geom::Vec2 pos = start;
  double best = likelihood(aps, pos);
  double step = opt_.hill_climb_step_m;
  std::size_t iters = 0;
  while (step >= opt_.hill_climb_min_step_m &&
         iters < opt_.hill_climb_max_iters) {
    ++iters;
    const geom::Vec2 candidates[4] = {{pos.x + step, pos.y},
                                      {pos.x - step, pos.y},
                                      {pos.x, pos.y + step},
                                      {pos.x, pos.y - step}};
    bool improved = false;
    for (const auto& c : candidates) {
      if (!bounds_.contains(c)) continue;
      const double l = likelihood(aps, c);
      if (l > best) {
        best = l;
        pos = c;
        improved = true;
      }
    }
    if (!improved) step *= 0.5;
  }
  return {pos, best};
}

namespace {

/// Streaming bounded top-K insert over a strided cell view: keeps
/// `ord` sorted by (value descending, index ascending) with at most
/// `cap` entries. Because that order is strict and total, feeding
/// every cell index in ascending order yields exactly the prefix that
/// sorting all cells would — without touching the rest of the grid.
inline void insert_top_cell(std::vector<std::size_t>& ord, std::size_t c,
                            const double* cells, std::size_t stride,
                            std::size_t cap) {
  const auto better = [cells, stride](std::size_t i, std::size_t j) {
    const double vi = cells[i * stride], vj = cells[j * stride];
    if (vi != vj) return vi > vj;
    return i < j;
  };
  if (ord.size() == cap && better(ord.back(), c)) return;
  ord.insert(std::upper_bound(ord.begin(), ord.end(), c, better), c);
  if (ord.size() > cap) ord.pop_back();
}

}  // namespace

LocationEstimate Localizer::refine(const std::vector<ApSpectrum>& aps,
                                   const Heatmap& map) const {
  const std::size_t candidates = std::min<std::size_t>(
      map.cells.size(),
      std::max<std::size_t>(64, 32 * std::max<std::size_t>(
                                         1, opt_.hill_climb_starts)));
  std::vector<std::size_t> order;
  order.reserve(candidates + 1);
  for (std::size_t c = 0; c < map.cells.size(); ++c)
    insert_top_cell(order, c, map.cells.data(), 1, candidates);
  return refine_cells(aps, map, map.cells.data(), 1, std::move(order),
                      candidates);
}

std::optional<LocationEstimate> Localizer::refine_cells_inner(
    const std::vector<ApSpectrum>& aps, const Heatmap& shape,
    const double* cells, std::size_t stride,
    const std::vector<std::size_t>& order, std::size_t candidates) const {
  // Top-K grid cells, separated so the starts are not adjacent cells
  // of the same mode; ties break toward the lower cell index to keep
  // start selection deterministic.
  auto pick_starts = [&](std::size_t limit) {
    std::vector<geom::Vec2> starts;
    for (std::size_t k = 0; k < limit; ++k) {
      if (starts.size() >= opt_.hill_climb_starts) break;
      const std::size_t cell = order[k];
      const geom::Vec2 p = shape.cell_center(cell % shape.nx, cell / shape.nx);
      bool close = false;
      for (const auto& s : starts)
        if (geom::distance(s, p) < 3.0 * opt_.grid_step_m) close = true;
      if (!close) starts.push_back(p);
    }
    return starts;
  };

  const std::size_t ncells = shape.nx * shape.ny;
  const std::vector<geom::Vec2> starts = pick_starts(order.size());
  if (starts.size() < opt_.hill_climb_starts && candidates < ncells) {
    // Pathological spacing rejected most candidates; the caller must
    // rebuild a full-grid ordering (which needs every cell value — the
    // quantized sweep never computed them, hence the bail-out).
    return std::nullopt;
  }

  std::optional<LocationEstimate> best;
  for (const auto& s : starts) {
    const LocationEstimate e = hill_climb(aps, s);
    if (!best || e.likelihood > best->likelihood) best = e;
  }
  if (!best) {
    // hill_climb_starts == 0: grid-only mode (latency ablation). The
    // grid has at least one cell, so order is never empty here.
    const std::size_t cell = order[0];
    best = LocationEstimate{
        shape.cell_center(cell % shape.nx, cell / shape.nx),
        cells[cell * stride]};
  }
  return best;
}

LocationEstimate Localizer::refine_cells(const std::vector<ApSpectrum>& aps,
                                         const Heatmap& shape,
                                         const double* cells,
                                         std::size_t stride,
                                         std::vector<std::size_t> order,
                                         std::size_t candidates) const {
  if (auto e = refine_cells_inner(aps, shape, cells, stride, order, candidates))
    return *e;
  // Pathological spacing rejected most candidates; fall back to the
  // full ordering rather than under-seeding the hill climb.
  auto better = [cells, stride](std::size_t i, std::size_t j) {
    const double vi = cells[i * stride], vj = cells[j * stride];
    if (vi != vj) return vi > vj;
    return i < j;
  };
  const std::size_t ncells = shape.nx * shape.ny;
  order.resize(ncells);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), better);
  return *refine_cells_inner(aps, shape, cells, stride, order, ncells);
}

std::optional<LocationEstimate> Localizer::locate_quant_row(
    const std::vector<ApSpectrum>& aps,
    const std::vector<const BearingLut*>& luts, const Heatmap& shape,
    std::size_t candidates) const {
  const std::size_t ncells = shape.nx * shape.ny;
  // The coarse pass works in log2 space, so it needs a positive floor
  // clamp; the default (0.05) qualifies, a zero/negative floor does not.
  if (opt_.floor <= 0.0 || candidates >= ncells) return std::nullopt;

  // Per-AP round-up log2 pair-max tables; empty spectra contribute a
  // constant factor per cell, folded into the threshold instead of
  // being added to every score.
  const double empty_v = std::max(0.0, opt_.floor);
  std::int64_t base = 0;
  std::vector<linalg::CoarseLogTable> tables(aps.size());
  for (std::size_t k = 0; k < aps.size(); ++k) {
    if (!luts[k]) {
      base += std::int64_t(std::ceil(
          std::log2(empty_v) *
          double(1 << linalg::CoarseLogTable::kFracBits)));
      continue;
    }
    tables[k] = linalg::coarse_log_table(aps[k].spectrum.values().data(),
                                         aps[k].spectrum.bins(), opt_.floor);
  }

  // Integer upper-bound scores over the full grid: one 4-byte gather +
  // add per (cell, AP) against the float path's two 8-byte gathers, a
  // lerp, and a multiply. Disjoint row chunks on the shared pool;
  // integer adds make chunking trivially result-free.
  std::vector<std::int32_t> score(ncells, 0);
  ThreadPool::shared().parallel_ranges(
      shape.ny, opt_.threads, [&](std::size_t y0, std::size_t y1) {
        const std::size_t c0 = y0 * shape.nx;
        const std::size_t count = (y1 - y0) * shape.nx;
        for (std::size_t k = 0; k < aps.size(); ++k)
          if (luts[k])
            linalg::kernels::score_accum(tables[k].pairmax.data(),
                                         luts[k]->bin0.data() + c0, count,
                                         score.data() + c0);
      });

  // Phase A: exactly evaluate the top-`candidates` cells by coarse
  // score with the float kernels, compacted (per-cell chains in
  // gather_lerp_product are position-independent, so these values are
  // bitwise what the dense sweep would write at those cells). The
  // selection probes a widening margin below the coarse maximum with
  // vector count passes until `candidates` cells clear it, bisects the
  // bracket a few steps to keep the tie set small, then trims by
  // (score desc, index asc) — exactly the set a full streaming top-K
  // scan would keep, at a fraction of its cost.
  const auto thr32 = [](std::int64_t t) {
    return std::int32_t(std::clamp<std::int64_t>(
        t, std::numeric_limits<std::int32_t>::min(),
        std::numeric_limits<std::int32_t>::max()));
  };
  const std::int32_t smax = linalg::kernels::score_max(score.data(), ncells);
  std::int64_t dlo = 0, dhi = 64;
  while (linalg::kernels::score_count_ge(
             score.data(), ncells, thr32(std::int64_t(smax) - dhi)) <
         candidates) {
    dlo = dhi;
    dhi *= 2;
  }
  for (int step = 0; step < 3 && dhi - dlo > 1; ++step) {
    const std::int64_t mid = dlo + (dhi - dlo) / 2;
    if (linalg::kernels::score_count_ge(
            score.data(), ncells, thr32(std::int64_t(smax) - mid)) >=
        candidates)
      dhi = mid;
    else
      dlo = mid;
  }
  const std::int32_t ta = thr32(std::int64_t(smax) - dhi);
  const std::size_t cnt_a =
      linalg::kernels::score_count_ge(score.data(), ncells, ta);
  // A flat coarse surface (most of the grid within the bracket of the
  // maximum) cannot prune enough to beat the dense sweep.
  if (cnt_a > ncells / 2) return std::nullopt;
  std::vector<std::uint32_t> picked(cnt_a);
  linalg::kernels::score_collect_ge(score.data(), ncells, ta, picked.data());
  if (picked.size() > candidates) {
    std::nth_element(picked.begin(),
                     picked.begin() + std::ptrdiff_t(candidates), picked.end(),
                     [&](std::uint32_t i, std::uint32_t j) {
                       if (score[i] != score[j]) return score[i] > score[j];
                       return i < j;
                     });
    picked.resize(candidates);
  }
  std::vector<std::size_t> topm(picked.begin(), picked.end());
  std::sort(topm.begin(), topm.end());

  // Exact values only exist at evaluated cells; everything else in
  // this buffer stays uninitialized and is provably never read.
  std::unique_ptr<double[]> dense(new double[ncells]);
  std::vector<std::int32_t> b0, b1;
  std::vector<double> fr, vals;
  const auto exact_eval = [&](const std::vector<std::size_t>& cells_idx) {
    const std::size_t n = cells_idx.size();
    vals.assign(n, 1.0);
    b0.resize(n);
    b1.resize(n);
    fr.resize(n);
    for (std::size_t k = 0; k < aps.size(); ++k) {
      if (!luts[k]) {
        for (auto& x : vals) x *= empty_v;
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = cells_idx[i];
        b0[i] = luts[k]->bin0[c];
        b1[i] = luts[k]->bin1[c];
        fr[i] = luts[k]->frac[c];
      }
      linalg::kernels::gather_lerp_product(
          aps[k].spectrum.values().data(), b0.data(), b1.data(), fr.data(), n,
          opt_.floor, vals.data());
    }
    for (std::size_t i = 0; i < n; ++i) dense[cells_idx[i]] = vals[i];
  };
  exact_eval(topm);

  double exact_min = dense[topm[0]];
  for (std::size_t c : topm) exact_min = std::min(exact_min, dense[c]);
  // Zero/denormal products would need -inf log thresholds; hand the
  // row back to the dense path rather than reasoning about them.
  if (!(exact_min > 0.0) || !std::isfinite(exact_min)) return std::nullopt;

  // Phase B: the K-th largest exact value of the full grid is >= the
  // minimum of any K exactly-evaluated cells, so every cell the dense
  // sweep would rank into its top K satisfies
  //   score[c] + base >= 64 * log2(f_c) >= 64 * log2(exact_min) >= Lq,
  // with one Q.6 step subtracted to absorb double log2 rounding.
  // Cells below the threshold are *provably* outside the dense top-K.
  // (Clamping thr into int32 only ever widens the survivor set.)
  const std::int64_t lq =
      std::int64_t(std::ceil(
          std::log2(exact_min) *
          double(1 << linalg::CoarseLogTable::kFracBits))) -
      1;
  const std::int32_t tb = thr32(lq - base);
  const std::size_t cnt_b =
      linalg::kernels::score_count_ge(score.data(), ncells, tb);
  // Weak pruning (flat likelihoods): the dense sweep is cheaper than
  // compacted evaluation of most of the grid.
  if (cnt_b > ncells / 2) return std::nullopt;
  std::vector<std::uint32_t> above(cnt_b);
  linalg::kernels::score_collect_ge(score.data(), ncells, tb, above.data());
  std::vector<std::size_t> extra;
  extra.reserve(above.size());
  for (std::uint32_t c : above)
    if (!std::binary_search(topm.begin(), topm.end(), std::size_t(c)))
      extra.push_back(c);
  const std::size_t survivors = topm.size() + extra.size();
  if (!extra.empty()) exact_eval(extra);

  // The survivor set contains every dense-top-K cell with bitwise-equal
  // values, so the streaming top-K over survivors fed in ascending
  // index order reproduces the dense pass's `order` exactly. topm and
  // extra are each ascending and disjoint, so a merge stays ascending.
  std::vector<std::size_t> surv(survivors);
  std::merge(topm.begin(), topm.end(), extra.begin(), extra.end(),
             surv.begin());
  std::vector<std::size_t> order;
  order.reserve(candidates + 1);
  for (std::size_t c : surv)
    insert_top_cell(order, c, dense.get(), 1, candidates);

  auto e = refine_cells_inner(aps, shape, dense.get(), 1, order, candidates);
  if (!e) return std::nullopt;
  quant_refined_.fetch_add(survivors, std::memory_order_relaxed);
  quant_pruned_.fetch_add(ncells - survivors, std::memory_order_relaxed);
  return e;
}

std::optional<LocationEstimate> Localizer::locate(
    const std::vector<ApSpectrum>& aps) const {
  if (aps.empty()) return std::nullopt;
  if (quant_enabled_) {
    Heatmap shape;
    shape.bounds = bounds_;
    shape.nx = std::max<std::size_t>(
        1, std::size_t(bounds_.width() / opt_.grid_step_m));
    shape.ny = std::max<std::size_t>(
        1, std::size_t(bounds_.height() / opt_.grid_step_m));
    const std::size_t candidates = std::min<std::size_t>(
        shape.nx * shape.ny,
        std::max<std::size_t>(
            64, 32 * std::max<std::size_t>(1, opt_.hill_climb_starts)));
    std::vector<std::shared_ptr<const BearingLut>> owned(aps.size());
    std::vector<const BearingLut*> luts(aps.size(), nullptr);
    for (std::size_t k = 0; k < aps.size(); ++k)
      if (!aps[k].spectrum.empty()) {
        owned[k] = bearing_lut(aps[k], shape.nx, shape.ny);
        luts[k] = owned[k].get();
      }
    if (auto e = locate_quant_row(aps, luts, shape, candidates)) return e;
    quant_refined_.fetch_add(shape.nx * shape.ny, std::memory_order_relaxed);
  }
  const Heatmap map = heatmap(aps);
  return refine(aps, map);
}

Localizer::BatchSweep Localizer::sweep_batch(
    const std::vector<const std::vector<ApSpectrum>*>& batch) const {
  BatchSweep sweep;
  sweep.nx =
      std::max<std::size_t>(1, std::size_t(bounds_.width() / opt_.grid_step_m));
  sweep.ny = std::max<std::size_t>(
      1, std::size_t(bounds_.height() / opt_.grid_step_m));
  const std::size_t nx = sweep.nx, ny = sweep.ny;

  // Group rows by their ordered per-AP LUT signature (nullptr marks an
  // empty spectrum, which multiplies by the clamped floor): one SoA
  // pass per group streams each bearing LUT once for all member rows.
  // Rows sharing a LUT pointer necessarily agree on pose and bin count,
  // so one transposed table per (group, AP slot) holds every member's
  // spectrum.
  std::vector<std::vector<std::shared_ptr<const BearingLut>>> row_luts(
      batch.size());
  std::map<std::vector<const BearingLut*>, std::vector<std::size_t>> groups;
  for (std::size_t rj = 0; rj < batch.size(); ++rj) {
    const auto& aps = *batch[rj];
    std::vector<const BearingLut*> sig(aps.size(), nullptr);
    row_luts[rj].resize(aps.size());
    for (std::size_t k = 0; k < aps.size(); ++k)
      if (!aps[k].spectrum.empty()) {
        row_luts[rj][k] = bearing_lut(aps[k], nx, ny);
        sig[k] = row_luts[rj][k].get();
      }
    groups[std::move(sig)].push_back(rj);
  }

  for (auto& [sig, members] : groups) {
    const std::size_t g = members.size();
    // Transposed spectrum tables: bin b of member r at table[b*g + r],
    // so the kernel's per-cell bin lookups are contiguous loads.
    std::vector<std::vector<double>> tables(sig.size());
    for (std::size_t k = 0; k < sig.size(); ++k) {
      if (!sig[k]) continue;
      const std::size_t bins = (*batch[members[0]])[k].spectrum.bins();
      tables[k].resize(bins * g);
      for (std::size_t r = 0; r < g; ++r) {
        const auto& vals = (*batch[members[r]])[k].spectrum.values();
        for (std::size_t b = 0; b < bins; ++b) tables[k][b * g + r] = vals[b];
      }
    }

    // Interleaved likelihood rows: cell c of member r at soa[c*g + r].
    std::vector<double> soa(nx * ny * g, 1.0);
    ThreadPool::shared().parallel_ranges(
        ny, opt_.threads, [&](std::size_t y0, std::size_t y1) {
          const std::size_t c0 = y0 * nx;
          const std::size_t cend = y1 * nx;
          // Tiles keep the SoA slab and the LUT slices cache-resident
          // across the AP passes; within a tile the AP order (k
          // ascending) matches heatmap()'s per-cell multiply order, so
          // the non-associative double product is unchanged.
          constexpr std::size_t kTileCells = 1024;
          for (std::size_t t0 = c0; t0 < cend; t0 += kTileCells) {
            const std::size_t count = std::min(kTileCells, cend - t0);
            for (std::size_t k = 0; k < sig.size(); ++k) {
              if (!sig[k]) {
                // Empty spectrum: value_at reads 0, clamped to the floor.
                const double v = std::max(0.0, opt_.floor);
                double* cell = soa.data() + t0 * g;
                for (std::size_t e = 0; e < count * g; ++e) cell[e] *= v;
                continue;
              }
              linalg::kernels::gather_lerp_product_batch(
                  tables[k].data(), sig[k]->bin0.data() + t0,
                  sig[k]->bin1.data() + t0, sig[k]->frac.data() + t0, count,
                  g, opt_.floor, soa.data() + t0 * g);
            }
          }
        });

    sweep.groups.push_back(
        BatchSweep::Group{std::move(members), std::move(soa)});
  }
  return sweep;
}

std::vector<Heatmap> Localizer::heatmap_batch(
    const std::vector<const std::vector<ApSpectrum>*>& batch) const {
  const BatchSweep sweep = sweep_batch(batch);
  std::vector<Heatmap> maps(batch.size());
  for (auto& map : maps) {
    map.bounds = bounds_;
    map.nx = sweep.nx;
    map.ny = sweep.ny;
    map.cells.resize(sweep.nx * sweep.ny);
  }
  for (const auto& grp : sweep.groups) {
    const std::size_t g = grp.members.size();
    for (std::size_t r = 0; r < g; ++r) {
      double* dst = maps[grp.members[r]].cells.data();
      for (std::size_t c = 0; c < sweep.nx * sweep.ny; ++c)
        dst[c] = grp.soa[c * g + r];
    }
  }
  return maps;
}

std::vector<std::optional<LocationEstimate>> Localizer::locate_batch(
    const std::vector<std::vector<ApSpectrum>>& batch) const {
  std::vector<std::optional<LocationEstimate>> out(batch.size());
  // Empty rows keep locate()'s contract (nullopt) and stay out of the
  // shared sweep.
  std::vector<const std::vector<ApSpectrum>*> live;
  std::vector<std::size_t> live_idx;
  for (std::size_t j = 0; j < batch.size(); ++j)
    if (!batch[j].empty()) {
      live.push_back(&batch[j]);
      live_idx.push_back(j);
    }
  if (live.empty()) return out;

  if (quant_enabled_) {
    // Coarse-to-fine per row: the integer pass replaces the dense SoA
    // float sweep outright, so there is no slab to share — only the
    // bearing LUTs, which the cache already de-duplicates across rows.
    // Each row's result is bitwise what locate() produces for it, which
    // is itself bitwise the dense batch path's (both feed refinement
    // the same order over the same values).
    Heatmap shape;
    shape.bounds = bounds_;
    shape.nx = std::max<std::size_t>(
        1, std::size_t(bounds_.width() / opt_.grid_step_m));
    shape.ny = std::max<std::size_t>(
        1, std::size_t(bounds_.height() / opt_.grid_step_m));
    const std::size_t candidates = std::min<std::size_t>(
        shape.nx * shape.ny,
        std::max<std::size_t>(
            64, 32 * std::max<std::size_t>(1, opt_.hill_climb_starts)));
    for (std::size_t j = 0; j < live.size(); ++j) {
      const auto& aps = *live[j];
      std::vector<std::shared_ptr<const BearingLut>> owned(aps.size());
      std::vector<const BearingLut*> luts(aps.size(), nullptr);
      for (std::size_t k = 0; k < aps.size(); ++k)
        if (!aps[k].spectrum.empty()) {
          owned[k] = bearing_lut(aps[k], shape.nx, shape.ny);
          luts[k] = owned[k].get();
        }
      if (auto e = locate_quant_row(aps, luts, shape, candidates)) {
        out[live_idx[j]] = e;
      } else {
        quant_refined_.fetch_add(shape.nx * shape.ny,
                                 std::memory_order_relaxed);
        const Heatmap map = heatmap(aps);
        out[live_idx[j]] = refine(aps, map);
      }
    }
    return out;
  }

  const BatchSweep sweep = sweep_batch(live);
  Heatmap shape;  // bounds/nx/ny only; refine_cells never reads cells
  shape.bounds = bounds_;
  shape.nx = sweep.nx;
  shape.ny = sweep.ny;
  const std::size_t candidates = std::min<std::size_t>(
      sweep.nx * sweep.ny,
      std::max<std::size_t>(64, 32 * std::max<std::size_t>(
                                         1, opt_.hill_climb_starts)));
  for (const auto& grp : sweep.groups) {
    const std::size_t g = grp.members.size();
    // One cell-major pass builds every member's top-K at once: cell c
    // reads g contiguous doubles from the slab, so start selection
    // costs one stream over the SoA instead of a dense heatmap plus a
    // strided rescan per row.
    std::vector<std::vector<std::size_t>> orders(g);
    for (auto& ord : orders) ord.reserve(candidates + 1);
    for (std::size_t c = 0; c < sweep.nx * sweep.ny; ++c)
      for (std::size_t r = 0; r < g; ++r)
        insert_top_cell(orders[r], c, grp.soa.data() + r, g, candidates);
    for (std::size_t r = 0; r < g; ++r) {
      const std::size_t row = grp.members[r];
      out[live_idx[row]] =
          refine_cells(*live[row], shape, grp.soa.data() + r, g,
                       std::move(orders[r]), candidates);
    }
  }
  return out;
}

}  // namespace arraytrack::core
