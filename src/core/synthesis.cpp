#include "core/synthesis.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

namespace arraytrack::core {

double ApSpectrum::likelihood_toward(const geom::Vec2& x, double floor) const {
  const double world_bearing = (x - ap_position).angle();
  const double local = wrap_2pi(world_bearing - orientation_rad);
  return std::max(spectrum.value_at(local), floor);
}

geom::Vec2 Heatmap::cell_center(std::size_t ix, std::size_t iy) const {
  const double sx = bounds.width() / double(nx);
  const double sy = bounds.height() / double(ny);
  return {bounds.min.x + (double(ix) + 0.5) * sx,
          bounds.min.y + (double(iy) + 0.5) * sy};
}

double Heatmap::max_value() const {
  return cells.empty() ? 0.0 : *std::max_element(cells.begin(), cells.end());
}

std::string Heatmap::to_ascii(std::size_t width) const {
  static const char kShades[] = " .:-=+*#%@";
  if (cells.empty() || nx == 0 || ny == 0) return "";
  const std::size_t height =
      std::max<std::size_t>(1, width * ny / (nx * 2));  // chars ~2:1 aspect
  const double top = max_value();
  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    // Top row shows max y.
    const std::size_t iy = (height - 1 - r) * ny / height;
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t ix = c * nx / width;
      const double v = top > 0.0 ? at(ix, iy) / top : 0.0;
      const int shade = std::min(9, int(v * 9.999));
      os << kShades[shade];
    }
    os << "\n";
  }
  return os.str();
}

Localizer::Localizer(geom::Rect bounds, LocalizerOptions opt)
    : bounds_(bounds), opt_(opt) {}

double Localizer::likelihood(const std::vector<ApSpectrum>& aps,
                             const geom::Vec2& x) const {
  double l = 1.0;
  for (const auto& ap : aps) l *= ap.likelihood_toward(x, opt_.floor);
  return l;
}

Heatmap Localizer::heatmap(const std::vector<ApSpectrum>& aps) const {
  Heatmap map;
  map.bounds = bounds_;
  map.nx = std::max<std::size_t>(1, std::size_t(bounds_.width() / opt_.grid_step_m));
  map.ny = std::max<std::size_t>(1, std::size_t(bounds_.height() / opt_.grid_step_m));
  map.cells.assign(map.nx * map.ny, 0.0);

  std::size_t workers = opt_.threads;
  if (workers == 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<std::size_t>(workers, map.ny);

  auto run_rows = [&](std::size_t y0, std::size_t y1) {
    for (std::size_t iy = y0; iy < y1; ++iy)
      for (std::size_t ix = 0; ix < map.nx; ++ix)
        map.cells[iy * map.nx + ix] =
            likelihood(aps, map.cell_center(ix, iy));
  };

  if (workers <= 1) {
    run_rows(0, map.ny);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (map.ny + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t y0 = w * chunk;
      const std::size_t y1 = std::min(map.ny, y0 + chunk);
      if (y0 < y1) pool.emplace_back(run_rows, y0, y1);
    }
    for (auto& t : pool) t.join();
  }
  return map;
}

LocationEstimate Localizer::hill_climb(const std::vector<ApSpectrum>& aps,
                                       geom::Vec2 start) const {
  geom::Vec2 pos = start;
  double best = likelihood(aps, pos);
  double step = opt_.hill_climb_step_m;
  std::size_t iters = 0;
  while (step >= opt_.hill_climb_min_step_m &&
         iters < opt_.hill_climb_max_iters) {
    ++iters;
    const geom::Vec2 candidates[4] = {{pos.x + step, pos.y},
                                      {pos.x - step, pos.y},
                                      {pos.x, pos.y + step},
                                      {pos.x, pos.y - step}};
    bool improved = false;
    for (const auto& c : candidates) {
      if (!bounds_.contains(c)) continue;
      const double l = likelihood(aps, c);
      if (l > best) {
        best = l;
        pos = c;
        improved = true;
      }
    }
    if (!improved) step *= 0.5;
  }
  return {pos, best};
}

std::optional<LocationEstimate> Localizer::locate(
    const std::vector<ApSpectrum>& aps) const {
  if (aps.empty()) return std::nullopt;
  const Heatmap map = heatmap(aps);

  // Top-K grid cells, separated so the starts are not adjacent cells of
  // the same mode.
  struct Cell {
    double value;
    std::size_t ix, iy;
  };
  std::vector<Cell> cells;
  cells.reserve(map.cells.size());
  for (std::size_t iy = 0; iy < map.ny; ++iy)
    for (std::size_t ix = 0; ix < map.nx; ++ix)
      cells.push_back({map.at(ix, iy), ix, iy});
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.value > b.value; });

  std::vector<geom::Vec2> starts;
  for (const auto& c : cells) {
    if (starts.size() >= opt_.hill_climb_starts) break;
    const geom::Vec2 p = map.cell_center(c.ix, c.iy);
    bool close = false;
    for (const auto& s : starts)
      if (geom::distance(s, p) < 3.0 * opt_.grid_step_m) close = true;
    if (!close) starts.push_back(p);
  }

  std::optional<LocationEstimate> best;
  for (const auto& s : starts) {
    const LocationEstimate e = hill_climb(aps, s);
    if (!best || e.likelihood > best->likelihood) best = e;
  }
  if (!best && !cells.empty()) {
    // hill_climb_starts == 0: grid-only mode (latency ablation).
    const geom::Vec2 p = map.cell_center(cells[0].ix, cells[0].iy);
    best = LocationEstimate{p, cells[0].value};
  }
  return best;
}

}  // namespace arraytrack::core
