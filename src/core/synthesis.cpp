#include "core/synthesis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/thread_pool.h"
#include "linalg/kernels.h"

namespace arraytrack::core {

double ApSpectrum::likelihood_toward(const geom::Vec2& x, double floor) const {
  const double world_bearing = (x - ap_position).angle();
  const double local = wrap_2pi(world_bearing - orientation_rad);
  return std::max(spectrum.value_at(local), floor);
}

geom::Vec2 Heatmap::cell_center(std::size_t ix, std::size_t iy) const {
  const double sx = bounds.width() / double(nx);
  const double sy = bounds.height() / double(ny);
  return {bounds.min.x + (double(ix) + 0.5) * sx,
          bounds.min.y + (double(iy) + 0.5) * sy};
}

double Heatmap::max_value() const {
  return cells.empty() ? 0.0 : *std::max_element(cells.begin(), cells.end());
}

std::string Heatmap::to_ascii(std::size_t width) const {
  static const char kShades[] = " .:-=+*#%@";
  if (cells.empty() || nx == 0 || ny == 0) return "";
  const std::size_t height =
      std::max<std::size_t>(1, width * ny / (nx * 2));  // chars ~2:1 aspect
  const double top = max_value();
  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    // Top row shows max y.
    const std::size_t iy = (height - 1 - r) * ny / height;
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t ix = c * nx / width;
      const double v = top > 0.0 ? at(ix, iy) / top : 0.0;
      const int shade = std::min(9, int(v * 9.999));
      os << kShades[shade];
    }
    os << "\n";
  }
  return os.str();
}

Localizer::Localizer(geom::Rect bounds, LocalizerOptions opt)
    : bounds_(bounds), opt_(opt) {}

double Localizer::likelihood(const std::vector<ApSpectrum>& aps,
                             const geom::Vec2& x) const {
  double l = 1.0;
  for (const auto& ap : aps) l *= ap.likelihood_toward(x, opt_.floor);
  return l;
}

std::shared_ptr<const Localizer::BearingLut> Localizer::bearing_lut(
    const ApSpectrum& ap, std::size_t nx, std::size_t ny) const {
  const std::size_t bins = ap.spectrum.bins();
  const LutKey key{ap.ap_position.x, ap.ap_position.y, ap.orientation_rad,
                   bins};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = bearing_cache_.find(key);
    if (it != bearing_cache_.end()) return it->second;
  }

  // Built outside the lock: two threads may race to build the same
  // table, but they produce identical values and the map keeps one.
  Heatmap probe;
  probe.bounds = bounds_;
  probe.nx = nx;
  probe.ny = ny;
  auto lut = std::make_shared<BearingLut>();
  lut->bin0.resize(nx * ny);
  lut->bin1.resize(nx * ny);
  lut->frac.resize(nx * ny);
  const double bin_width = kTwoPi / double(bins);
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const geom::Vec2 x = probe.cell_center(ix, iy);
      const double world = (x - ap.ap_position).angle();
      // Exactly AoaSpectrum::value_at's bin/weight derivation applied
      // to the bearing the uncached path would pass it.
      const double w = wrap_2pi(world - ap.orientation_rad) / bin_width;
      const std::size_t i0 = std::size_t(w) % bins;
      const std::size_t cell = iy * nx + ix;
      lut->bin0[cell] = std::int32_t(i0);
      lut->bin1[cell] = std::int32_t((i0 + 1) % bins);
      lut->frac[cell] = w - std::floor(w);
    }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  // A handful of fixed AP poses is the expected population; a runaway
  // caller (e.g. sweeping synthetic poses) just flushes the cache.
  if (bearing_cache_.size() >= 64) bearing_cache_.clear();
  return bearing_cache_.emplace(key, std::move(lut)).first->second;
}

Heatmap Localizer::heatmap(const std::vector<ApSpectrum>& aps) const {
  Heatmap map;
  map.bounds = bounds_;
  map.nx = std::max<std::size_t>(1, std::size_t(bounds_.width() / opt_.grid_step_m));
  map.ny = std::max<std::size_t>(1, std::size_t(bounds_.height() / opt_.grid_step_m));
  map.cells.assign(map.nx * map.ny, 1.0);

  std::vector<std::shared_ptr<const BearingLut>> luts(aps.size());
  for (std::size_t k = 0; k < aps.size(); ++k)
    if (!aps[k].spectrum.empty()) luts[k] = bearing_lut(aps[k], map.nx, map.ny);

  // Row chunks on the shared pool; every cell is an independent write,
  // and the kernel's remainder lanes round exactly like its full
  // lanes, so the chunking (and pool width) cannot change the result.
  ThreadPool::shared().parallel_ranges(
      map.ny, opt_.threads, [&](std::size_t y0, std::size_t y1) {
        const std::size_t c0 = y0 * map.nx;
        const std::size_t count = (y1 - y0) * map.nx;
        for (std::size_t k = 0; k < aps.size(); ++k) {
          if (!luts[k]) {
            // Empty spectrum: value_at reads 0, clamped to the floor.
            const double v = std::max(0.0, opt_.floor);
            for (std::size_t c = c0; c < c0 + count; ++c) map.cells[c] *= v;
            continue;
          }
          linalg::kernels::gather_lerp_product(
              aps[k].spectrum.values().data(), luts[k]->bin0.data() + c0,
              luts[k]->bin1.data() + c0, luts[k]->frac.data() + c0, count,
              opt_.floor, map.cells.data() + c0);
        }
      });
  return map;
}

LocationEstimate Localizer::hill_climb(const std::vector<ApSpectrum>& aps,
                                       geom::Vec2 start) const {
  geom::Vec2 pos = start;
  double best = likelihood(aps, pos);
  double step = opt_.hill_climb_step_m;
  std::size_t iters = 0;
  while (step >= opt_.hill_climb_min_step_m &&
         iters < opt_.hill_climb_max_iters) {
    ++iters;
    const geom::Vec2 candidates[4] = {{pos.x + step, pos.y},
                                      {pos.x - step, pos.y},
                                      {pos.x, pos.y + step},
                                      {pos.x, pos.y - step}};
    bool improved = false;
    for (const auto& c : candidates) {
      if (!bounds_.contains(c)) continue;
      const double l = likelihood(aps, c);
      if (l > best) {
        best = l;
        pos = c;
        improved = true;
      }
    }
    if (!improved) step *= 0.5;
  }
  return {pos, best};
}

std::optional<LocationEstimate> Localizer::locate(
    const std::vector<ApSpectrum>& aps) const {
  if (aps.empty()) return std::nullopt;
  const Heatmap map = heatmap(aps);

  // Top-K grid cells, separated so the starts are not adjacent cells of
  // the same mode. The spacing filter only ever looks at the first few
  // dozen cells, so a bounded partial_sort replaces the full
  // nx*ny-cell sort; ties break toward the lower cell index to keep
  // start selection deterministic.
  std::vector<std::size_t> order(map.cells.size());
  std::iota(order.begin(), order.end(), 0);
  auto better = [&map](std::size_t i, std::size_t j) {
    if (map.cells[i] != map.cells[j]) return map.cells[i] > map.cells[j];
    return i < j;
  };
  const std::size_t candidates = std::min<std::size_t>(
      order.size(),
      std::max<std::size_t>(64, 32 * std::max<std::size_t>(
                                         1, opt_.hill_climb_starts)));
  std::partial_sort(order.begin(),
                    order.begin() + std::ptrdiff_t(candidates), order.end(),
                    better);

  auto pick_starts = [&](std::size_t limit) {
    std::vector<geom::Vec2> starts;
    for (std::size_t k = 0; k < limit; ++k) {
      if (starts.size() >= opt_.hill_climb_starts) break;
      const std::size_t cell = order[k];
      const geom::Vec2 p = map.cell_center(cell % map.nx, cell / map.nx);
      bool close = false;
      for (const auto& s : starts)
        if (geom::distance(s, p) < 3.0 * opt_.grid_step_m) close = true;
      if (!close) starts.push_back(p);
    }
    return starts;
  };

  std::vector<geom::Vec2> starts = pick_starts(candidates);
  if (starts.size() < opt_.hill_climb_starts && candidates < order.size()) {
    // Pathological spacing rejected most candidates; fall back to the
    // full ordering rather than under-seeding the hill climb.
    std::sort(order.begin(), order.end(), better);
    starts = pick_starts(order.size());
  }

  std::optional<LocationEstimate> best;
  for (const auto& s : starts) {
    const LocationEstimate e = hill_climb(aps, s);
    if (!best || e.likelihood > best->likelihood) best = e;
  }
  if (!best && !order.empty()) {
    // hill_climb_starts == 0: grid-only mode (latency ablation).
    const std::size_t cell = order[0];
    best = LocationEstimate{map.cell_center(cell % map.nx, cell / map.nx),
                            map.cells[cell]};
  }
  return best;
}

}  // namespace arraytrack::core
