// Per-AP spectrum pipeline: frame capture -> calibrated snapshots ->
// spatially smoothed MUSIC -> geometry weighting -> symmetry removal.
// This is the "AoA spectrum computation" box of Fig. 1, with each
// optimization independently toggleable so benches can isolate them.
#pragma once

#include <cstddef>
#include <memory>

#include "aoa/music.h"
#include "aoa/spectrum.h"
#include "aoa/symmetry.h"
#include "core/synthesis.h"
#include "phy/frontend.h"

namespace arraytrack::core {

struct PipelineOptions {
  /// NG = 4 on an 8-antenna row leaves the "five virtual antennas"
  /// the paper's 4.2.1 says are needed to avoid losing the direct path;
  /// ApProcessor clamps NG to half the row for smaller arrays.
  aoa::MusicOptions music{.smoothing_groups = 4};
  /// Confidence window W(theta) of 2.3.3.
  bool geometry_weighting = true;
  /// Soft blend level for the weighting (see
  /// AoaSpectrum::apply_geometry_weighting); 0 = the paper's plain
  /// multiplicative window (measured best on the office testbed; the
  /// soft variant is kept for the ablation bench).
  double weighting_soft_floor = 0.0;
  /// 360-degree disambiguation via the off-row antenna (2.3.4).
  bool symmetry_removal = true;
  double symmetry_suppression = 0.01;
  /// Number of leading elements forming the MUSIC linear row; 0 = all
  /// the AP's radios.
  std::size_t linear_elements = 0;
  /// Bearing-uncertainty kernel applied to the finished spectrum before
  /// it is used as a fusion likelihood: residual bias from coherent
  /// multipath, calibration residue and array imperfections is a few
  /// degrees, so a needle-sharp pseudospectrum would otherwise miss the
  /// true position in the product of equation 8. 0 disables.
  double bearing_sigma_deg = 2.0;
};

class ApProcessor {
 public:
  /// `ap` must outlive the processor.
  ApProcessor(const phy::AccessPointFrontEnd* ap, PipelineOptions opt = {});

  const PipelineOptions& options() const { return opt_; }
  const phy::AccessPointFrontEnd& ap() const { return *ap_; }

  /// Full spectrum pipeline for one captured frame. The spectrum is
  /// normalized to peak 1. A non-null `tracker` replaces the per-frame
  /// eigendecomposition inside MUSIC with the tracked signal basis for
  /// this frame stream (see MusicEstimator::spectrum_from_covariance).
  aoa::AoaSpectrum process(const phy::FrameCapture& frame,
                           linalg::SubspaceTracker* tracker = nullptr) const;

  /// The pipeline up to (not including) the bearing-uncertainty blur:
  /// calibration -> smoothed MUSIC -> geometry weighting -> symmetry
  /// removal. finish_spectrum() completes it; process() is exactly
  /// process_sharp() followed by finish_spectrum().
  aoa::AoaSpectrum process_sharp(const phy::FrameCapture& frame,
                                 linalg::SubspaceTracker* tracker = nullptr) const;

  /// Calibrated covariance of the MUSIC linear row for one frame — the
  /// input of the covariance -> spectrum stage that music_spectrum()
  /// (and the subspace tracker) consume. Split out so benches can
  /// isolate that stage from capture calibration.
  linalg::CMatrix row_covariance(const phy::FrameCapture& frame) const;

  /// The covariance -> MUSIC-spectrum stage alone (no geometry
  /// weighting, symmetry removal, or blur), with optional tracking.
  aoa::AoaSpectrum music_spectrum(const linalg::CMatrix& row_cov,
                                  linalg::SubspaceTracker* tracker = nullptr) const;

  /// Tracker options matching this processor's MUSIC configuration.
  linalg::SubspaceOptions subspace_options() const {
    return music_->subspace_options();
  }

  /// The MUSIC estimator (steering tables live there); used for the
  /// server's table-footprint accounting and the quant benches.
  const aoa::MusicEstimator& music() const { return *music_; }

  /// Bearing blur + peak normalization — the tail of process(), split
  /// out so the batched server path can run the blur of many sharp
  /// spectra as one structure-of-arrays convolution per AP.
  void finish_spectrum(aoa::AoaSpectrum& spec) const;

  /// The processed spectrum tagged with the AP pose, ready to fuse.
  ApSpectrum process_tagged(const phy::FrameCapture& frame) const;

 private:
  const phy::AccessPointFrontEnd* ap_;
  PipelineOptions opt_;
  std::size_t row_;  // linear row length
  /// Estimators are geometry-bound and precompute steering tables, so
  /// they are built once here rather than per frame.
  std::unique_ptr<aoa::MusicEstimator> music_;
  std::unique_ptr<aoa::SymmetryResolver> resolver_;
};

}  // namespace arraytrack::core
