#include "core/suppression.h"

#include <algorithm>
#include <stdexcept>

namespace arraytrack::core {

namespace {

// Total power of `candidate`'s peaks that pair (within tolerance) with
// a peak in EVERY other spectrum of the group.
double paired_power(const std::vector<aoa::AoaSpectrum>& group,
                    std::size_t candidate, std::size_t use,
                    const SuppressionOptions& opt,
                    std::vector<bool>* paired_out = nullptr) {
  const auto peaks = group[candidate].find_peaks(opt.peak_floor);
  if (paired_out) paired_out->assign(peaks.size(), false);
  double total = 0.0;
  for (std::size_t p = 0; p < peaks.size(); ++p) {
    bool everywhere = true;
    for (std::size_t i = 0; i < use && everywhere; ++i) {
      if (i == candidate) continue;
      bool found = false;
      for (const auto& other : group[i].find_peaks(opt.peak_floor)) {
        if (aoa::bearing_distance(peaks[p].bearing_rad, other.bearing_rad) <=
            opt.match_tolerance_rad) {
          found = true;
          break;
        }
      }
      everywhere = found;
    }
    if (everywhere) {
      total += peaks[p].power;
      if (paired_out) (*paired_out)[p] = true;
    }
  }
  return total;
}

}  // namespace

aoa::AoaSpectrum suppress_multipath(const std::vector<aoa::AoaSpectrum>& group,
                                    const SuppressionOptions& opt) {
  if (group.empty())
    throw std::invalid_argument("suppress_multipath: empty group");

  if (group.size() < opt.min_group) return group.front();

  const std::size_t use =
      std::min(group.size(), std::max(opt.max_group, opt.min_group));

  // Fig. 8 step 2 says "arbitrarily choose one AoA spectrum as the
  // primary"; we exploit that freedom and pick the spectrum whose peaks
  // pair best with the rest of the group — a frame caught in a deep
  // coherent fade has displaced peaks that pair with nothing, and
  // choosing it as primary would erase the direct path.
  std::size_t best = 0;
  double best_power = -1.0;
  for (std::size_t c = 0; c < use; ++c) {
    const double p = paired_power(group, c, use, opt);
    if (p > best_power) {
      best_power = p;
      best = c;
    }
  }

  aoa::AoaSpectrum primary = group[best];
  const auto peaks = primary.find_peaks(opt.peak_floor);
  std::vector<bool> paired;
  paired_power(group, best, use, opt, &paired);

  // If nothing pairs (every frame disagrees with every other), keep the
  // primary untouched: a multipath-rich spectrum still localizes better
  // than an empty one.
  bool any = false;
  for (bool b : paired) any |= b;
  if (!any) return primary;

  for (std::size_t p = 0; p < peaks.size(); ++p)
    if (!paired[p]) primary.remove_lobe(peaks[p].bearing_rad);
  return primary;
}

}  // namespace arraytrack::core
