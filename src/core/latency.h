// End-to-end latency model (paper 4.4, Fig. 21).
//
// Latency = frame airtime T (overlapped), preamble detection Td,
// WARP->PC bus latency Tl, sample serialization Tt, and server
// processing Tp. Tp is the only term measured on this machine (the
// others are properties of the prototype hardware, modeled exactly as
// the paper reports them); benches measure Tp with the real pipeline.
#pragma once

#include <cstddef>
#include <string>

namespace arraytrack::core {

struct LatencyModel {
  /// Preamble detection time: 10 short + 2 long training symbols.
  double detection_s = 16e-6;
  /// WARP-to-PC bus latency (paper estimate ~30 ms; excluded from the
  /// paper's headline figure, reported separately).
  double bus_latency_s = 30e-3;
  /// Effective WARP Ethernet throughput (paper: ~1 Mbit/s usable).
  double link_bps = 1e6;
  std::size_t samples = 10;
  std::size_t bits_per_sample = 32;
  std::size_t radios = 8;

  /// Frame airtime for a payload at a bitrate (222 us at 54 Mbit/s to
  /// 12 ms at 1 Mbit/s for 1500 bytes).
  double frame_airtime_s(std::size_t payload_bytes, double bitrate_bps) const {
    return double(payload_bytes) * 8.0 / bitrate_bps;
  }

  /// Serialization time Tt for the AoA samples of one frame.
  double serialization_s() const {
    return double(samples * bits_per_sample * radios) / link_bps;
  }

  /// Control traffic rate at a given location refresh interval
  /// (paper 4.3.3: 0.0256 Mbit/s at 100 ms).
  double control_traffic_bps(double refresh_interval_s) const {
    return double(samples * bits_per_sample * radios) / refresh_interval_s;
  }
};

struct LatencyReport {
  double detection_s = 0.0;       // Td
  double serialization_s = 0.0;   // Tt
  double bus_s = 0.0;             // Tl
  double processing_s = 0.0;      // Tp (measured)
  /// Latency past the end of the frame, excluding bus latency — the
  /// paper's ~100 ms headline quantity.
  double total_excl_bus_s() const {
    return detection_s + serialization_s + processing_s;
  }
  double total_s() const { return total_excl_bus_s() + bus_s; }
  std::string to_string() const;
};

/// Assembles a report from the model plus a measured processing time.
LatencyReport make_latency_report(const LatencyModel& model,
                                  double measured_processing_s);

}  // namespace arraytrack::core
