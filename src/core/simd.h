// Runtime SIMD dispatch for the numeric kernel layer.
//
// Release binaries must stay portable (no -march=native), so the hot
// kernels in src/linalg/kernels.* are compiled at several instruction
// levels inside one translation unit (per-function target attributes)
// and the level to run is chosen at runtime from CPUID. The choice is
// process-wide and overridable:
//
//   ARRAYTRACK_FORCE_SCALAR=1   force the scalar reference paths
//   ARRAYTRACK_SIMD=scalar|sse2|avx2
//                               request a specific level (clamped to
//                               what the CPU supports)
//   simd::force(level)          programmatic override (tests, benches);
//                               takes precedence over the environment
//
// Kernels re-read active() on every call (one relaxed atomic load per
// sweep, not per element), so an override is effective immediately.
//
// This header is a dependency-free leaf: src/linalg may include it even
// though linalg sits below core in the library graph.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace arraytrack::core::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* name(Level l) {
  switch (l) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

/// Best level this CPU can execute, ignoring all overrides. AVX2 is
/// only reported together with FMA (the kernels use fused ops).
inline Level hardware_level() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

/// Never hand the kernels a level the CPU cannot run.
inline Level clamp_to_hardware(Level l) {
  const Level hw = hardware_level();
  return static_cast<int>(l) <= static_cast<int>(hw) ? l : hw;
}

/// Level requested by hardware detection plus the environment
/// overrides (ARRAYTRACK_FORCE_SCALAR, ARRAYTRACK_SIMD).
inline Level detect() {
  if (const char* fs = std::getenv("ARRAYTRACK_FORCE_SCALAR");
      fs && fs[0] != '\0' && std::strcmp(fs, "0") != 0)
    return Level::kScalar;
  if (const char* req = std::getenv("ARRAYTRACK_SIMD")) {
    if (std::strcmp(req, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(req, "sse2") == 0) return clamp_to_hardware(Level::kSse2);
    if (std::strcmp(req, "avx2") == 0) return clamp_to_hardware(Level::kAvx2);
    // Unknown value: fall through to plain detection.
  }
  return hardware_level();
}

namespace detail {
inline std::atomic<int>& level_slot() {
  static std::atomic<int> slot{-1};  // -1 = not yet detected
  return slot;
}
}  // namespace detail

/// The dispatch level every kernel call uses right now.
inline Level active() {
  int v = detail::level_slot().load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(detect());
    detail::level_slot().store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

/// Process-wide override (clamped to hardware). Used by the dispatch
/// tests and the kernel microbenchmark to pin a level.
inline void force(Level l) {
  detail::level_slot().store(static_cast<int>(clamp_to_hardware(l)),
                             std::memory_order_relaxed);
}

/// Drop any force() override and re-run environment + CPUID detection.
inline void reset() {
  detail::level_slot().store(static_cast<int>(detect()),
                             std::memory_order_relaxed);
}

/// RAII level override for tests: restores the previous level on exit.
class ForcedLevel {
 public:
  explicit ForcedLevel(Level l) : prev_(active()) { force(l); }
  ~ForcedLevel() { force(prev_); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;

 private:
  Level prev_;
};

}  // namespace arraytrack::core::simd
