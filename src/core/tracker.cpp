#include "core/tracker.h"

#include <cmath>

namespace arraytrack::core {
namespace {

inline double& at(std::array<double, 16>& m, int r, int c) {
  return m[std::size_t(r * 4 + c)];
}
inline double at(const std::array<double, 16>& m, int r, int c) {
  return m[std::size_t(r * 4 + c)];
}

}  // namespace

LocationTracker::LocationTracker(TrackerOptions opt) : opt_(opt) {}

void LocationTracker::reset() {
  initialized_ = false;
  last_rejected_ = false;
  state_ = {};
  cov_ = {};
}

void LocationTracker::propagate(double dt) {
  // x' = x + v*dt (constant velocity); F = [I, dt*I; 0, I].
  state_[0] += state_[2] * dt;
  state_[1] += state_[3] * dt;

  // P' = F P F^T + Q, with Q the white-acceleration model.
  std::array<double, 16> p = cov_;
  // F P: row 0 += dt * row 2; row 1 += dt * row 3.
  for (int c = 0; c < 4; ++c) {
    at(p, 0, c) += dt * at(p, 2, c);
    at(p, 1, c) += dt * at(p, 3, c);
  }
  // (F P) F^T: col 0 += dt * col 2; col 1 += dt * col 3.
  for (int r = 0; r < 4; ++r) {
    at(p, r, 0) += dt * at(p, r, 2);
    at(p, r, 1) += dt * at(p, r, 3);
  }
  const double q = opt_.accel_noise * opt_.accel_noise;
  const double dt2 = dt * dt;
  const double q_pp = q * dt2 * dt2 / 4.0;
  const double q_pv = q * dt2 * dt / 2.0;
  const double q_vv = q * dt2;
  at(p, 0, 0) += q_pp;
  at(p, 1, 1) += q_pp;
  at(p, 2, 2) += q_vv;
  at(p, 3, 3) += q_vv;
  at(p, 0, 2) += q_pv;
  at(p, 2, 0) += q_pv;
  at(p, 1, 3) += q_pv;
  at(p, 3, 1) += q_pv;
  cov_ = p;
}

geom::Vec2 LocationTracker::predict(double time_s) const {
  const double dt = time_s - last_time_;
  return {state_[0] + state_[2] * dt, state_[1] + state_[3] * dt};
}

geom::Vec2 LocationTracker::update(const geom::Vec2& fix, double time_s) {
  last_rejected_ = false;
  const double r = opt_.fix_noise_m * opt_.fix_noise_m;

  if (!initialized_ || time_s - last_time_ > opt_.max_coast_s ||
      time_s < last_time_) {
    initialized_ = true;
    last_time_ = time_s;
    state_ = {fix.x, fix.y, 0.0, 0.0};
    cov_ = {};
    at(cov_, 0, 0) = r;
    at(cov_, 1, 1) = r;
    at(cov_, 2, 2) = 4.0;  // unknown velocity, ~2 m/s std
    at(cov_, 3, 3) = 4.0;
    return fix;
  }

  propagate(time_s - last_time_);
  last_time_ = time_s;

  // Innovation and its covariance S = H P H^T + R (H selects x, y; the
  // position block of P is diagonal-ish but keep the full 2x2).
  const double ix = fix.x - state_[0];
  const double iy = fix.y - state_[1];
  const double s00 = at(cov_, 0, 0) + r;
  const double s01 = at(cov_, 0, 1);
  const double s11 = at(cov_, 1, 1) + r;
  const double det = s00 * s11 - s01 * s01;
  if (det <= 0.0) {
    // Degenerate covariance; trust the fix outright.
    state_[0] = fix.x;
    state_[1] = fix.y;
    return fix;
  }
  const double inv00 = s11 / det;
  const double inv01 = -s01 / det;
  const double inv11 = s00 / det;

  const double maha2 =
      ix * (inv00 * ix + inv01 * iy) + iy * (inv01 * ix + inv11 * iy);
  if (maha2 > opt_.gate * opt_.gate) {
    last_rejected_ = true;
    return position();  // coast on the prediction
  }

  // Kalman gain K = P H^T S^{-1} (4x2), columns for x and y residuals.
  for (int rrow = 0; rrow < 4; ++rrow) {
    const double p0 = at(cov_, rrow, 0);
    const double p1 = at(cov_, rrow, 1);
    const double k0 = p0 * inv00 + p1 * inv01;
    const double k1 = p0 * inv01 + p1 * inv11;
    state_[std::size_t(rrow)] += k0 * ix + k1 * iy;
  }

  // Joseph-free covariance update: P = (I - K H) P computed column-wise.
  std::array<double, 16> p = cov_;
  for (int rrow = 0; rrow < 4; ++rrow) {
    const double p0 = at(cov_, rrow, 0);
    const double p1 = at(cov_, rrow, 1);
    const double k0 = p0 * inv00 + p1 * inv01;
    const double k1 = p0 * inv01 + p1 * inv11;
    for (int c = 0; c < 4; ++c)
      at(p, rrow, c) -= k0 * at(cov_, 0, c) + k1 * at(cov_, 1, c);
  }
  cov_ = p;
  return position();
}

}  // namespace arraytrack::core
