// Public facade for the ArrayTrack system.
//
// Wires together the channel simulator, AP front ends, and the central
// server behind one object. Typical use:
//
//   geom::Floorplan plan = ...;
//   core::System sys(&plan);
//   sys.add_ap({1.0, 2.0}, /*orientation=*/0.0);
//   sys.add_ap({20.0, 2.0}, kPi / 2);
//   sys.transmit(/*client_id=*/0, {10.0, 5.0}, /*time_s=*/0.0);
//   sys.transmit(0, {10.02, 5.03}, 0.03);   // small motion between frames
//   auto fix = sys.locate(0, 0.05);
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "channel/channel.h"
#include "core/server.h"
#include "geom/floorplan.h"
#include "phy/frontend.h"

namespace arraytrack::core {

struct SystemConfig {
  channel::ChannelConfig channel;
  phy::ApConfig ap;
  ServerOptions server;
  /// Run the two-pass phase calibration automatically on each new AP.
  bool auto_calibrate = true;
  /// Margin added around the floorplan bounds for the search grid.
  double search_margin_m = 0.0;
  std::uint64_t seed = 7;
};

class System {
 public:
  /// `plan` must outlive the system.
  explicit System(const geom::Floorplan* plan, SystemConfig cfg = {});

  const SystemConfig& config() const { return cfg_; }
  channel::MultipathChannel& channel() { return channel_; }
  const channel::MultipathChannel& channel() const { return channel_; }
  ArrayTrackServer& server() { return *server_; }
  const ArrayTrackServer& server() const { return *server_; }

  /// Adds a 16-antenna (2 x radios) rectangular-array AP at the given
  /// pose, registers it with the server, and (by default) calibrates
  /// it. Returns the AP id.
  int add_ap(geom::Vec2 position, double orientation_rad);

  std::size_t num_aps() const { return aps_.size(); }
  phy::AccessPointFrontEnd& ap(int id) { return *aps_.at(std::size_t(id)); }
  const phy::AccessPointFrontEnd& ap(int id) const {
    return *aps_.at(std::size_t(id));
  }

  /// Simulates a client frame transmission: every AP hears it (fast
  /// snapshot path) and buffers a capture.
  void transmit(int client_id, geom::Vec2 position, double time_s);

  /// Location estimate from the frames buffered in the last 100 ms.
  std::optional<LocationEstimate> locate(int client_id, double now_s) const {
    return server_->locate(client_id, now_s);
  }

  std::optional<Heatmap> heatmap(int client_id, double now_s) const {
    return server_->heatmap(client_id, now_s);
  }

 private:
  const geom::Floorplan* plan_;
  SystemConfig cfg_;
  channel::MultipathChannel channel_;
  std::unique_ptr<ArrayTrackServer> server_;
  std::vector<std::unique_ptr<phy::AccessPointFrontEnd>> aps_;
};

}  // namespace arraytrack::core
