#include "core/latency.h"

#include <sstream>

namespace arraytrack::core {

std::string LatencyReport::to_string() const {
  std::ostringstream os;
  os << "Td(detect)=" << detection_s * 1e6 << " us, "
     << "Tt(serialize)=" << serialization_s * 1e3 << " ms, "
     << "Tl(bus)=" << bus_s * 1e3 << " ms, "
     << "Tp(process)=" << processing_s * 1e3 << " ms, "
     << "total(excl bus)=" << total_excl_bus_s() * 1e3 << " ms";
  return os.str();
}

LatencyReport make_latency_report(const LatencyModel& model,
                                  double measured_processing_s) {
  LatencyReport r;
  r.detection_s = model.detection_s;
  r.serialization_s = model.serialization_s();
  r.bus_s = model.bus_latency_s;
  r.processing_s = measured_processing_s;
  return r;
}

}  // namespace arraytrack::core
