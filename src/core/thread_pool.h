// Persistent worker pool for the server's data-parallel hot paths.
//
// The paper's real-time claim (~100 ms fixes, 4.4) makes throughput a
// first-class concern: spawning and joining std::threads on every
// heatmap call costs more than the work at fine grain, and the per-AP
// spectrum pipelines are embarrassingly parallel. This pool is created
// once (usually via shared()) and reused for every fix.
//
// Design rules that keep results identical to the serial code:
//   - every parallel region writes disjoint output slots (one per
//     index/chunk); no reductions whose result depends on scheduling;
//   - chunk boundaries depend only on (n, max_parallel), never on
//     which worker picks a chunk up;
//   - the caller participates: it executes chunks too and helps drain
//     the queue while waiting, so nested calls from a worker cannot
//     deadlock and a 1-thread pool degenerates to the serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arraytrack::core {

class ThreadPool {
 public:
  /// `workers` background threads; 0 = hardware_concurrency - 1 (the
  /// caller thread always executes chunks itself, so total parallelism
  /// is workers + 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Background worker count (excludes the participating caller).
  std::size_t workers() const { return threads_.size(); }
  /// Maximum concurrency a parallel region can reach: workers + caller.
  std::size_t size() const { return threads_.size() + 1; }

  /// Process-wide pool shared by server, localizer and benches. Built
  /// lazily on first use, sized to the hardware.
  static ThreadPool& shared();

  /// Runs body(i) for every i in [begin, end), blocking until all are
  /// done. At most `max_parallel` indices run concurrently (0 = pool
  /// size). Exceptions from `body` are rethrown on the caller (first
  /// one wins); remaining indices still run to completion.
  void parallel_for(std::size_t begin, std::size_t end,
                    std::size_t max_parallel,
                    const std::function<void(std::size_t)>& body);

  /// Splits [0, n) into at most `max_chunks` contiguous ranges (0 =
  /// pool size) and runs body(lo, hi) per range. The split depends
  /// only on (n, max_chunks), so outputs are scheduling-independent.
  void parallel_ranges(std::size_t n, std::size_t max_chunks,
                       const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Batch;

  void worker_loop();
  /// Runs one queued task if any; returns false when the queue is empty.
  bool run_one_task();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  bool stop_ = false;
};

}  // namespace arraytrack::core
