#include "core/realtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>

#include "core/thread_pool.h"

namespace arraytrack::core {

double RealtimeReport::latency_percentile(double p) const {
  if (fixes.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(fixes.size());
  for (const auto& f : fixes) lat.push_back(f.latency_s);
  std::sort(lat.begin(), lat.end());
  const double rank = (p / 100.0) * double(lat.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = rank - double(lo);
  return (1.0 - frac) * lat[lo] + frac * lat[hi];
}

double RealtimeReport::median_error_m() const {
  if (fixes.empty()) return 0.0;
  std::vector<double> e;
  e.reserve(fixes.size());
  for (const auto& f : fixes) e.push_back(f.error_m);
  std::sort(e.begin(), e.end());
  return e[e.size() / 2];
}

RealtimeSimulator::RealtimeSimulator(System* system, RealtimeOptions opt)
    : system_(system), opt_(opt) {}

RealtimeReport RealtimeSimulator::run(
    const std::vector<FrameEvent>& schedule) {
  RealtimeReport report;
  report.frames_in = schedule.size();
  report.pool_threads = ThreadPool::shared().size();
  if (schedule.empty()) return report;
  report.duration_s = schedule.back().time_s - schedule.front().time_s;

  struct Job {
    double arrival_s;     // when the AoA record reaches the server
    double frame_time_s;  // newest frame folded into this job
    int client_id;
    geom::Vec2 truth;
  };

  // Per-frame transport delay: detection completes Td after the
  // preamble begins; the samples then serialize over the link and
  // cross the bus.
  const double transport = opt_.latency.detection_s +
                           opt_.latency.serialization_s() +
                           opt_.latency.bus_latency_s;

  std::deque<Job> queue;
  double server_free_s = 0.0;

  auto process_ready_jobs = [&](double now_s) {
    // A job leaves the queue only when the server has actually reached
    // it in simulated time; a busy server leaves later jobs queued so
    // newer frames can still coalesce into them.
    while (!queue.empty() &&
           std::max(server_free_s, queue.front().arrival_s) <= now_s) {
      const Job job = queue.front();
      queue.pop_front();
      const double start = std::max(server_free_s, job.arrival_s);

      const auto t0 = std::chrono::steady_clock::now();
      const auto fix = system_->locate(job.client_id, job.frame_time_s + 1e-4);
      const double tp =
          opt_.processing_scale *
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      server_free_s = start + tp;

      if (fix) {
        FixRecord rec;
        rec.client_id = job.client_id;
        rec.frame_time_s = job.frame_time_s;
        rec.ready_time_s = server_free_s;
        rec.latency_s = server_free_s - job.frame_time_s;
        rec.position = fix->position;
        rec.error_m = geom::distance(fix->position, job.truth);
        report.fixes.push_back(rec);
      }
    }
  };

  for (const auto& ev : schedule) {
    process_ready_jobs(ev.time_s);
    system_->transmit(ev.client_id, ev.position, ev.time_s);

    // Coalesce with a queued (not yet started) job for this client.
    bool coalesced = false;
    if (opt_.coalesce_per_client) {
      for (auto& job : queue) {
        if (job.client_id == ev.client_id) {
          job.frame_time_s = ev.time_s;
          job.truth = ev.position;
          job.arrival_s = ev.time_s + transport;
          ++report.jobs_coalesced;
          coalesced = true;
          break;
        }
      }
    }
    if (!coalesced)
      queue.push_back({ev.time_s + transport, ev.time_s, ev.client_id,
                       ev.position});
  }
  // Drain everything after the last frame.
  process_ready_jobs(schedule.back().time_s + transport + 3600.0);
  return report;
}

}  // namespace arraytrack::core
