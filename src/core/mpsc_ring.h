// Bounded lock-free multi-producer ring (Vyukov-style bounded queue).
//
// The ingest front-end publishes decoded frame events from N per-AP
// decoder threads into one ring per session shard; the admission layer
// drains them. Each cell carries a sequence number that encodes both
// its occupancy and its lap, so producers claim cells with a single
// CAS on the tail and never block consumers (and vice versa). The
// queue is actually MPMC — that is what makes drop-oldest possible
// from the producer side: on a full ring the producer pops (discards)
// the oldest event and retries, so the newest data always wins, the
// same philosophy as the service's shard-queue admission.
//
// Capacity is rounded up to a power of two (minimum 2: with a single
// cell the sequence number aliases — a cell published at position p
// carries seq p+1, exactly what position p+1 reads as "free" — so a
// one-cell ring cannot tell full from empty). try_push / try_pop are
// lock-free; push_overwrite is the drop-oldest wrapper and returns how
// many events it had to discard so the caller can account them (a
// service that sheds must never do so silently).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace arraytrack::core {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Snapshot of the occupancy; exact only when quiescent.
  std::size_t size_approx() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

  /// Moves from `v` and returns true, or leaves `v` untouched and
  /// returns false when the ring is full.
  bool try_push(T& v) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = std::intptr_t(seq) - std::intptr_t(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full: the cell still holds an unconsumed lap
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Moves the oldest event into `out`; false when empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = std::intptr_t(seq) - std::intptr_t(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Drop-oldest push: on a full ring, discards the oldest queued
  /// event and retries until `v` fits. Returns the number of events
  /// discarded (0 when the ring had room).
  std::size_t push_overwrite(T v) {
    std::size_t dropped = 0;
    while (!try_push(v)) {
      T victim;
      if (try_pop(victim)) ++dropped;
    }
    return dropped;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  // Head and tail on separate cache lines from each other and the
  // cells, so producers and the consumer do not false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace arraytrack::core
