// Multipath suppression (paper 2.4, Fig. 8).
//
// Reflection-path peaks twitch when the transmitter moves a few
// centimeters; the direct-path peak holds still (Table 1). Grouping the
// AoA spectra of two or three frames received within 100 ms and
// deleting primary-spectrum peaks that have no stable partner in the
// others therefore removes predominantly reflection peaks.
#pragma once

#include <vector>

#include "aoa/spectrum.h"

namespace arraytrack::core {

struct SuppressionOptions {
  /// Frames farther apart than this are never grouped (paper: 100 ms).
  double max_group_spacing_s = 0.100;
  /// A peak "pairs" with another spectrum's peak within this tolerance
  /// (paper: 5 degrees).
  double match_tolerance_rad = deg2rad(5.0);
  /// Group size bounds (paper: two to three spectra).
  std::size_t min_group = 2;
  std::size_t max_group = 3;
  /// Ignore peaks weaker than this fraction of the spectrum maximum.
  double peak_floor = 0.08;
};

/// Applies the suppression algorithm to a group of spectra from frames
/// already verified to be close in time. The first spectrum is the
/// primary; peaks without a partner in EVERY other spectrum are erased.
/// A group smaller than min_group passes the primary through unchanged
/// (step 1 of Fig. 8).
aoa::AoaSpectrum suppress_multipath(const std::vector<aoa::AoaSpectrum>& group,
                                    const SuppressionOptions& opt = {});

}  // namespace arraytrack::core
