// The central ArrayTrack server (Fig. 1, right side).
//
// Pulls per-frame snapshots from every registered AP's circular buffer,
// runs the per-AP spectrum pipeline, groups recent frames for multipath
// suppression, and synthesizes all APs' spectra into a location.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "core/suppression.h"
#include "core/synthesis.h"
#include "core/tracker.h"
#include "phy/frontend.h"

namespace arraytrack::core {

struct ServerOptions {
  PipelineOptions pipeline;
  SuppressionOptions suppression;
  LocalizerOptions localizer;
  /// Master switch for the 2.4 suppression step (off reproduces the
  /// paper's "unoptimized" curves when pipeline toggles are also off).
  bool multipath_suppression = true;
};

/// The input of one pipeline job: each registered AP's frames for one
/// client, in registration order (oldest first within an AP; an AP
/// that heard nothing contributes an empty inner vector). Snapshotted
/// out of the live circular buffers so a backend worker can run the
/// pipeline while ingest keeps appending frames.
using FrameGroup = std::vector<std::vector<phy::FrameCapture>>;

/// Per-client tracked-subspace state: one linalg::SubspaceTracker per
/// registered AP, in registration order. Created by
/// ArrayTrackServer::make_client_subspace(), owned by the client's
/// session (the service layer keeps it alongside the LocationTracker),
/// and passed into locate_frames / spectra_from_frames so the MUSIC
/// stage consumes and advances tracked signal bases instead of running
/// a fresh eigendecomposition per frame. One instance belongs to one
/// client's frame stream: feed it jobs in that client's arrival order
/// and never from two jobs concurrently (the per-AP fan-out inside a
/// single job is safe — each AP touches only its own tracker). reset()
/// drops all tracked state; call it on session eviction or after
/// set_pipeline() rebuilds the processors.
class ClientSubspace {
 public:
  ClientSubspace() = default;

  /// Tracker for the AP at registration index `ap`; nullptr when the
  /// index is out of range (an AP registered after creation falls back
  /// to the exact per-frame decomposition).
  linalg::SubspaceTracker* tracker(std::size_t ap) {
    return ap < trackers_.size() ? &trackers_[ap] : nullptr;
  }
  std::size_t size() const { return trackers_.size(); }

  void reset() {
    for (auto& t : trackers_) t.reset();
  }

 private:
  friend class ArrayTrackServer;
  std::vector<linalg::SubspaceTracker> trackers_;
};

class ArrayTrackServer {
 public:
  ArrayTrackServer(geom::Rect bounds, ServerOptions opt = {});

  const ServerOptions& options() const { return opt_; }
  const Localizer& localizer() const { return localizer_; }

  /// Replaces the pipeline options and rebuilds every registered AP's
  /// processor (the processors bake steering tables at construction,
  /// so mutating options in place would silently do nothing).
  void set_pipeline(const PipelineOptions& pipeline);

  /// Toggles the 2.4 suppression step.
  void set_multipath_suppression(bool on) { opt_.multipath_suppression = on; }

  /// Runtime kill switch for the localizer's quantized coarse-to-fine
  /// sweep (both settings are byte-identical; see LocalizerOptions).
  void set_quantized_sweep(bool on) { localizer_.set_quantized_sweep(on); }
  bool quantized_sweep() const { return localizer_.quantized_sweep(); }

  /// Aggregate steering-table footprint across every registered AP's
  /// MUSIC estimator: float tier and the ~3.5x smaller int16 tier.
  std::size_t steering_table_bytes() const;
  std::size_t quant_table_bytes() const;

  /// Registers an AP; the front end must outlive the server.
  void register_ap(const phy::AccessPointFrontEnd* ap);
  std::size_t num_aps() const { return aps_.size(); }

  /// Per-AP fused spectrum for a client: processes the frames the AP
  /// heard from `client_id` within the suppression window ending at
  /// `now_s` and applies multipath suppression across them. Returns
  /// one tagged spectrum per AP that heard the client, in registration
  /// order. The per-AP pipelines run concurrently on the shared
  /// core::ThreadPool (bounded by LocalizerOptions::threads); results
  /// are identical to the serial evaluation.
  std::vector<ApSpectrum> client_spectra(int client_id, double now_s) const;

  /// Copies every AP's frames from `client_id` within the suppression
  /// window ending at `now_s` out of the circular buffers — the
  /// snapshot half of client_spectra(), run on the ingest thread so
  /// the compute half can run elsewhere.
  FrameGroup snapshot_frames(int client_id, double now_s) const;

  /// The compute half: per-AP pipeline + multipath suppression over a
  /// pre-snapshotted frame group, fanned out on the shared pool.
  /// client_spectra() is exactly spectra_from_frames(snapshot_frames()).
  /// A non-null `subspace` (this client's tracked state) replaces each
  /// AP's per-frame eigendecomposition with its tracked signal basis.
  std::vector<ApSpectrum> spectra_from_frames(
      const FrameGroup& frames, ClientSubspace* subspace = nullptr) const;

  /// End-to-end location estimate (equation 8 + hill climbing).
  std::optional<LocationEstimate> locate(int client_id, double now_s) const;

  /// locate() over a pre-snapshotted frame group (the backend-worker
  /// job entry point), optionally with the client's tracked subspaces.
  std::optional<LocationEstimate> locate_frames(
      const FrameGroup& frames, ClientSubspace* subspace = nullptr) const;

  /// Fresh tracked-subspace state covering the currently registered
  /// APs, wired to `counters` (may be null) for fleet-wide stats. Each
  /// tracker inherits its AP's MUSIC thresholds, so the exact-path
  /// basis picks the same signal count the tracker-less pipeline does.
  ClientSubspace make_client_subspace(
      linalg::SubspaceCounters* counters = nullptr) const;

  /// spectra_from_frames() for a batch of jobs at once: per AP, the
  /// sharp spectra of every (job, frame) pair are computed, the
  /// bearing blur runs as one structure-of-arrays convolution across
  /// all rows (kernels::fir_batch amortizes the tap addressing and
  /// vectorizes across jobs), and the per-job groups are fused as
  /// usual. Row j is bitwise identical to
  /// spectra_from_frames(*groups[j]). `subspaces`, when non-empty, is
  /// parallel to `groups` (null entries allowed): job j's spectra use
  /// client j's tracked bases. Jobs of the same client must appear in
  /// that client's arrival order, which the service's per-client FIFO
  /// guarantees; within one AP the batch is walked serially in job
  /// order, so a shared tracker still sees a deterministic stream.
  std::vector<std::vector<ApSpectrum>> spectra_from_frames_batch(
      const std::vector<const FrameGroup*>& groups,
      const std::vector<ClientSubspace*>& subspaces = {}) const;

  /// locate_frames() for a batch of jobs sharing this server's grid —
  /// the service's batched-dispatch entry point. Spectra come from
  /// spectra_from_frames_batch() and positions from
  /// Localizer::locate_batch(), so row j is bitwise identical to
  /// locate_frames(*groups[j]) at every batch size.
  std::vector<std::optional<LocationEstimate>> locate_frames_batch(
      const std::vector<const FrameGroup*>& groups,
      const std::vector<ClientSubspace*>& subspaces = {}) const;

  /// The likelihood heatmap for a client (Fig. 14).
  std::optional<Heatmap> heatmap(int client_id, double now_s) const;

  /// Location directly from caller-supplied spectra (used by benches
  /// that construct spectra out of band).
  std::optional<LocationEstimate> locate_from_spectra(
      const std::vector<ApSpectrum>& spectra) const {
    return localizer_.locate(spectra);
  }

  /// Like locate(), but smoothed through a per-client constant-velocity
  /// Kalman tracker with outlier gating — the trajectory the paper's
  /// AR/retail applications consume. Falls back to the raw fix for a
  /// client's first observation.
  std::optional<LocationEstimate> locate_tracked(int client_id, double now_s);

 private:
  struct Entry {
    const phy::AccessPointFrontEnd* ap;
    std::unique_ptr<ApProcessor> processor;
  };

  ServerOptions opt_;
  Localizer localizer_;
  std::vector<Entry> aps_;
  std::map<int, LocationTracker> trackers_;
};

}  // namespace arraytrack::core
