#include "core/localize3d.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "aoa/covariance.h"
#include "aoa/symmetry.h"

namespace arraytrack::core {

double Ap3dSpectrum::likelihood_toward(const geom::Vec2& xy, double z,
                                       double floor) const {
  const double world = (xy - ap_position).angle();
  const double az = wrap_2pi(world - orientation_rad);
  const double dist = geom::distance(xy, ap_position);
  const double el = std::atan2(z - mount_height_m, std::max(dist, 0.01));
  const double p_az = std::max(azimuth.value_at(az), floor);
  const double p_el = std::max(elevation.value_at(el), floor);
  return p_az * p_el;
}

array::ArrayGeometry make_3d_ap_geometry(double wavelength_m) {
  const double s = wavelength_m / 2.0;
  std::vector<geom::Vec2> offsets;
  std::vector<double> z;
  const double x0 = -0.5 * s * 7.0;
  for (int i = 0; i < 8; ++i) {
    offsets.push_back({x0 + s * double(i), 0.0});
    z.push_back(0.0);
  }
  // Vertical column, a quarter wavelength behind the row so the column
  // elements double as front/back (symmetry) discriminators.
  for (int i = 0; i < 4; ++i) {
    offsets.push_back({0.0, -wavelength_m / 4.0});
    z.push_back(s * double(i + 1));
  }
  return array::ArrayGeometry(std::move(offsets), std::move(z));
}

Ap3dProcessor::Ap3dProcessor(const phy::AccessPointFrontEnd* ap,
                             Pipeline3dOptions opt)
    : ap_(ap), opt_(opt) {
  const std::size_t need = opt_.row_elements + opt_.column_elements;
  if (ap_->capture_elements().size() < need)
    throw std::invalid_argument(
        "Ap3dProcessor: capture smaller than row + column");
  opt_.azimuth_music.smoothing_groups = std::max<std::size_t>(
      1, std::min(opt_.azimuth_music.smoothing_groups,
                  opt_.row_elements / 2));
  opt_.elevation_music.smoothing_groups = std::max<std::size_t>(
      1, std::min(opt_.elevation_music.smoothing_groups,
                  opt_.column_elements / 2));
}

Ap3dSpectrum Ap3dProcessor::process(const phy::FrameCapture& frame) const {
  const linalg::CMatrix samples = ap_->calibrated_samples(frame);
  const double lambda = ap_->channel().config().wavelength_m();
  const std::size_t rows = opt_.row_elements;
  const std::size_t cols = opt_.column_elements;

  Ap3dSpectrum out;
  out.ap_position = ap_->array().position();
  out.orientation_rad = ap_->array().orientation();
  out.mount_height_m = ap_->channel().config().ap_height_m;

  // Azimuth: MUSIC over the horizontal row.
  std::vector<std::size_t> row_elements(rows);
  for (std::size_t i = 0; i < rows; ++i) row_elements[i] = frame.element_ids[i];
  aoa::MusicEstimator music(&ap_->array(), row_elements, lambda,
                            opt_.azimuth_music);
  out.azimuth = music.spectrum(samples.block(0, 0, rows, samples.cols()));
  if (opt_.geometry_weighting) out.azimuth.apply_geometry_weighting();
  if (opt_.symmetry_removal) {
    std::vector<std::size_t> all(frame.element_ids.begin(),
                                 frame.element_ids.end());
    aoa::SymmetryOptions sym;
    sym.suppression = opt_.symmetry_suppression;
    aoa::SymmetryResolver resolver(&ap_->array(), all, lambda, sym);
    resolver.resolve_per_peak(aoa::sample_covariance(samples), &out.azimuth);
  }
  if (opt_.bearing_sigma_deg > 0.0)
    out.azimuth.convolve_gaussian(deg2rad(opt_.bearing_sigma_deg));
  out.azimuth.normalize();

  // Elevation: MUSIC over the vertical column.
  std::vector<std::size_t> col_elements(cols);
  linalg::CMatrix col_samples(cols, samples.cols());
  for (std::size_t i = 0; i < cols; ++i) {
    col_elements[i] = frame.element_ids[rows + i];
    col_samples.set_row(i, samples.row(rows + i));
  }
  aoa::ElevationMusic elev(&ap_->array(), col_elements, lambda,
                           opt_.elevation_music);
  out.elevation = elev.spectrum(col_samples);
  out.elevation.normalize();
  return out;
}

Localizer3d::Localizer3d(geom::Rect bounds, Localizer3dOptions opt)
    : bounds_(bounds), opt_(opt) {}

double Localizer3d::likelihood(const std::vector<Ap3dSpectrum>& aps,
                               const geom::Vec2& xy, double z) const {
  double l = 1.0;
  for (const auto& ap : aps) l *= ap.likelihood_toward(xy, z, opt_.floor);
  return l;
}

Location3dEstimate Localizer3d::hill_climb(
    const std::vector<Ap3dSpectrum>& aps, geom::Vec2 xy, double z) const {
  double best = likelihood(aps, xy, z);
  double step = opt_.hill_climb_step_m;
  std::size_t iters = 0;
  while (step >= opt_.hill_climb_min_step_m &&
         iters < opt_.hill_climb_max_iters) {
    ++iters;
    bool improved = false;
    const geom::Vec2 moves[4] = {{xy.x + step, xy.y},
                                 {xy.x - step, xy.y},
                                 {xy.x, xy.y + step},
                                 {xy.x, xy.y - step}};
    for (const auto& m : moves) {
      if (!bounds_.contains(m)) continue;
      const double l = likelihood(aps, m, z);
      if (l > best) {
        best = l;
        xy = m;
        improved = true;
      }
    }
    for (double dz : {step, -step}) {
      const double zz = std::clamp(z + dz, opt_.z_min_m, opt_.z_max_m);
      const double l = likelihood(aps, xy, zz);
      if (l > best) {
        best = l;
        z = zz;
        improved = true;
      }
    }
    if (!improved) step *= 0.5;
  }
  return {xy, z, best};
}

std::optional<Location3dEstimate> Localizer3d::locate(
    const std::vector<Ap3dSpectrum>& aps) const {
  if (aps.empty()) return std::nullopt;

  struct Cell {
    double value;
    geom::Vec2 xy;
    double z;
  };
  std::vector<Cell> cells;
  for (double z = opt_.z_min_m; z <= opt_.z_max_m + 1e-9; z += opt_.z_step_m)
    for (double y = bounds_.min.y + opt_.grid_step_m / 2; y < bounds_.max.y;
         y += opt_.grid_step_m)
      for (double x = bounds_.min.x + opt_.grid_step_m / 2; x < bounds_.max.x;
           x += opt_.grid_step_m)
        cells.push_back({likelihood(aps, {x, y}, z), {x, y}, z});

  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.value > b.value; });

  std::vector<Cell> starts;
  for (const auto& c : cells) {
    if (starts.size() >= opt_.hill_climb_starts) break;
    bool close = false;
    for (const auto& s : starts)
      if (geom::distance(s.xy, c.xy) < 3.0 * opt_.grid_step_m &&
          std::abs(s.z - c.z) < 2.0 * opt_.z_step_m)
        close = true;
    if (!close) starts.push_back(c);
  }

  std::optional<Location3dEstimate> best;
  for (const auto& s : starts) {
    const auto e = hill_climb(aps, s.xy, s.z);
    if (!best || e.likelihood > best->likelihood) best = e;
  }
  if (!best && !cells.empty())
    best = Location3dEstimate{cells[0].xy, cells[0].z, cells[0].value};
  return best;
}

}  // namespace arraytrack::core
