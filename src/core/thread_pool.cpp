#include "core/thread_pool.h"

#include <algorithm>
#include <exception>

namespace arraytrack::core {

// Completion state for one parallel_for / parallel_ranges call. Tasks
// decrement `remaining`; the submitting thread helps drain the queue
// and then sleeps on `done_cv` until the last task finishes.
struct ThreadPool::Batch {
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
  std::exception_ptr error;

  void finish_one() {
    std::lock_guard<std::mutex> lock(m);
    if (--remaining == 0) done_cv.notify_all();
  }
  void record_error() {
    std::lock_guard<std::mutex> lock(m);
    if (!error) error = std::current_exception();
  }
};

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 1 ? hw - 1 : 0;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t max_parallel,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t width = max_parallel == 0 ? size() : std::min(max_parallel, size());
  width = std::min(width, n);
  if (width <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // `width` tasks, each walking a contiguous run of indices, so the
  // knob really bounds concurrency. The split depends only on
  // (n, width) — never on which worker picks a task — so outputs are
  // scheduling-independent.
  const std::size_t step = (n + width - 1) / width;
  Batch batch;
  batch.remaining = width;
  auto run_chunk = [&batch, &body, begin, end, step](std::size_t c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    try {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    } catch (...) {
      batch.record_error();
    }
    batch.finish_one();
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 1; c < width; ++c)
      queue_.push_back([run_chunk, c] { run_chunk(c); });
  }
  work_cv_.notify_all();
  run_chunk(0);

  // Help drain the queue (ours or another batch's), then wait.
  while (run_one_task()) {
  }
  {
    std::unique_lock<std::mutex> lock(batch.m);
    batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::parallel_ranges(
    std::size_t n, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  std::size_t chunks = max_chunks == 0 ? size() : std::min(max_chunks, size());
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  const std::size_t step = (n + chunks - 1) / chunks;
  const std::size_t used = (n + step - 1) / step;  // last chunk may vanish
  parallel_for(0, used, used, [&](std::size_t c) {
    const std::size_t lo = c * step;
    const std::size_t hi = std::min(n, lo + step);
    body(lo, hi);
  });
}

}  // namespace arraytrack::core
