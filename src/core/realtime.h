// Compatibility shim: the event-driven real-time simulator now lives
// in the service layer (service/realtime.h), implemented as the
// single-worker, batch-of-one special case of the LocationService. The
// types stay in namespace arraytrack::core.
#pragma once

#include "service/realtime.h"
