// AoA spectra synthesis: combining per-AP spectra into a position
// (paper 2.5). Likelihood of the client at x is the product of every
// AP's spectrum evaluated at the bearing from that AP to x; searched on
// a 10 cm grid, then refined with hill climbing from the top grid cells.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "aoa/spectrum.h"
#include "geom/vec2.h"

namespace arraytrack::core {

/// A processed spectrum together with the pose of the AP that made it.
struct ApSpectrum {
  geom::Vec2 ap_position;
  double orientation_rad = 0.0;
  aoa::AoaSpectrum spectrum;

  /// Spectrum value at the bearing from this AP toward world point x.
  double likelihood_toward(const geom::Vec2& x, double floor) const;
};

struct LocalizerOptions {
  double grid_step_m = 0.10;         // paper: 10 cm x 10 cm grid
  std::size_t hill_climb_starts = 3; // paper: top three grid positions
  double hill_climb_step_m = 0.05;
  double hill_climb_min_step_m = 0.001;
  std::size_t hill_climb_max_iters = 200;
  /// Per-AP likelihood floor: keeps one blocked or wrong-sided AP from
  /// zeroing the whole product (the paper's synthesis works because a
  /// disagreeing AP only weakens a location, it does not veto it).
  double floor = 0.05;
  /// Parallelism bound for the grid evaluation and the server's per-AP
  /// fan-out, both serviced by the shared core::ThreadPool; 0 = the
  /// pool's full width, 1 = serial. Results are identical for every
  /// value (chunks write disjoint slots).
  std::size_t threads = 0;
  /// Coarse-to-fine quantized sweep: the grid search first scores every
  /// cell with an integer upper-bound pass (round-up Q.6 log2 pair-max
  /// tables, linalg::coarse_log_table + kernels::score_accum), exactly
  /// evaluates only the cells whose bound clears the top-K threshold
  /// with the existing float kernels, and feeds refinement the same
  /// top-K order and bitwise-equal values the dense float sweep would
  /// produce — fix sets are byte-identical with this on or off. The
  /// ARRAYTRACK_QUANT env var ("on"/"off") overrides at construction.
  bool quantized_sweep = true;
};

struct LocationEstimate {
  geom::Vec2 position;
  double likelihood = 0.0;
};

/// Dense likelihood map over the search bounds (paper Fig. 14).
struct Heatmap {
  geom::Rect bounds;
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::vector<double> cells;  // row-major, y-major rows

  double at(std::size_t ix, std::size_t iy) const {
    return cells[iy * nx + ix];
  }
  geom::Vec2 cell_center(std::size_t ix, std::size_t iy) const;
  double max_value() const;
  /// ASCII rendering (top row = max y), for benches and examples.
  std::string to_ascii(std::size_t width = 72) const;
};

class Localizer {
 public:
  explicit Localizer(geom::Rect bounds, LocalizerOptions opt = {});

  const geom::Rect& bounds() const { return bounds_; }
  const LocalizerOptions& options() const { return opt_; }

  /// L(x) = prod_i P_i(theta_i(x)); equation 8.
  double likelihood(const std::vector<ApSpectrum>& aps,
                    const geom::Vec2& x) const;

  Heatmap heatmap(const std::vector<ApSpectrum>& aps) const;

  /// Batched heatmaps for rows that share this localizer's grid: rows
  /// whose per-AP bearing-LUT signatures match are swept together in
  /// structure-of-arrays layout (kernels::gather_lerp_product_batch),
  /// so each LUT and the grid tiles stream from memory once per group
  /// instead of once per row. Every returned map is bitwise identical
  /// to heatmap() on that row alone.
  std::vector<Heatmap> heatmap_batch(
      const std::vector<const std::vector<ApSpectrum>*>& batch) const;

  /// Full pipeline: grid search, then hill climbing from the top
  /// `hill_climb_starts` cells. Empty input yields nullopt.
  std::optional<LocationEstimate> locate(
      const std::vector<ApSpectrum>& aps) const;

  /// locate() for a batch of concurrent requests: the grid sweep is
  /// amortized via heatmap_batch(), then each row is refined with its
  /// own hill climb. Row j is bitwise identical to locate(batch[j]) —
  /// batching changes memory traffic, never results.
  std::vector<std::optional<LocationEstimate>> locate_batch(
      const std::vector<std::vector<ApSpectrum>>& batch) const;

  /// Kill switch for the quantized coarse-to-fine sweep (overrides the
  /// option/env chosen at construction); off is bitwise-identical to
  /// the all-float path by construction, on is too — the switch exists
  /// for A/B latency measurement and as an escape hatch.
  void set_quantized_sweep(bool on) { quant_enabled_ = on; }
  bool quantized_sweep() const { return quant_enabled_; }

  /// Coarse-to-fine accounting: cells skipped by the integer pass vs
  /// cells exactly evaluated with the float kernels (both cumulative
  /// across locate/locate_batch calls; a dense fallback row counts all
  /// its cells as refined).
  std::uint64_t quant_pruned() const { return quant_pruned_.load(); }
  std::uint64_t quant_refined() const { return quant_refined_.load(); }

 private:
  LocationEstimate hill_climb(const std::vector<ApSpectrum>& aps,
                              geom::Vec2 start) const;

  /// Start selection + hill climbing over an already-built heatmap;
  /// the shared tail of locate() and locate_batch().
  LocationEstimate refine(const std::vector<ApSpectrum>& aps,
                          const Heatmap& map) const;

  /// refine() over a strided cell view (cell c at cells[c * stride]):
  /// `order` holds the already-selected top `candidates` cell indices
  /// and `shape` carries bounds/nx/ny (its own cells are not read).
  /// Lets the batch path keep likelihood rows interleaved instead of
  /// materializing a dense heatmap per job.
  LocationEstimate refine_cells(const std::vector<ApSpectrum>& aps,
                                const Heatmap& shape, const double* cells,
                                std::size_t stride,
                                std::vector<std::size_t> order,
                                std::size_t candidates) const;

  /// refine_cells without its dense fallback: returns nullopt when
  /// start separation rejected too many candidates (the rare case that
  /// needs a full-grid ordering), so callers that never materialized a
  /// dense heatmap — the quantized sweep — can rebuild one first.
  std::optional<LocationEstimate> refine_cells_inner(
      const std::vector<ApSpectrum>& aps, const Heatmap& shape,
      const double* cells, std::size_t stride,
      const std::vector<std::size_t>& order, std::size_t candidates) const;

  /// The shared SoA sweep behind heatmap_batch()/locate_batch(): rows
  /// grouped by bearing-LUT signature, each group's likelihood rows
  /// interleaved in one slab (cell c of group-member r at
  /// soa[c * members.size() + r]).
  struct BatchSweep {
    std::size_t nx = 0, ny = 0;
    struct Group {
      std::vector<std::size_t> members;  // indices into the batch
      std::vector<double> soa;
    };
    std::vector<Group> groups;
  };
  BatchSweep sweep_batch(
      const std::vector<const std::vector<ApSpectrum>*>& batch) const;

  /// Per-cell spectrum lookup, precomputed: the interpolation bin pair
  /// and lerp weight that AoaSpectrum::value_at would derive from the
  /// bearing toward the cell. Flat arrays so the heatmap inner loop is
  /// a branch-free gather + lerp + product (kernels::gather_lerp_product)
  /// instead of wrap_2pi + value_at per (cell, AP).
  struct BearingLut {
    std::vector<std::int32_t> bin0, bin1;
    std::vector<double> frac;
  };

  /// The lookup table from an AP pose toward every grid cell, cached
  /// per (pose, spectrum bin count): AP poses and the grid are fixed
  /// for the life of a server, so the atan2 per (cell, AP) — the
  /// dominant cost of the grid search — is paid once, not on every
  /// fix. The stored (bin, weight) pairs are exactly what the uncached
  /// value_at path computes, so results are unchanged.
  std::shared_ptr<const BearingLut> bearing_lut(const ApSpectrum& ap,
                                                std::size_t nx,
                                                std::size_t ny) const;

  /// One row of the quantized coarse-to-fine sweep: integer
  /// upper-bound scores over the full grid, exact float evaluation of
  /// the surviving cells, then refine_cells_inner on the top-K order —
  /// which is provably the order the dense float sweep would hand it.
  /// Returns nullopt when the row must fall back to the dense path
  /// (degenerate likelihoods, weak pruning, or start under-seeding);
  /// the caller recomputes that row with the float sweep, so the
  /// result is byte-identical either way.
  std::optional<LocationEstimate> locate_quant_row(
      const std::vector<ApSpectrum>& aps,
      const std::vector<const BearingLut*>& luts, const Heatmap& shape,
      std::size_t candidates) const;

  geom::Rect bounds_;
  LocalizerOptions opt_;
  bool quant_enabled_ = true;
  mutable std::atomic<std::uint64_t> quant_pruned_{0};
  mutable std::atomic<std::uint64_t> quant_refined_{0};

  // x, y, orientation, spectrum bins
  using LutKey = std::tuple<double, double, double, std::size_t>;
  mutable std::mutex cache_mutex_;
  mutable std::map<LutKey, std::shared_ptr<const BearingLut>> bearing_cache_;
};

}  // namespace arraytrack::core
