// Successive interference cancellation for packet collisions
// (paper 4.3.5).
//
// When two packets collide but their preambles do not overlap,
// ArrayTrack detects both and computes an AoA spectrum for each. The
// second spectrum is contaminated by the first packet's body, so its
// peaks contain BOTH transmitters' bearings; removing the peaks already
// attributed to the first packet recovers the second packet's AoA.
#pragma once

#include "aoa/spectrum.h"

namespace arraytrack::core {

struct SicOptions {
  /// Peaks of the first spectrum within this tolerance of a peak in the
  /// second are cancelled.
  double match_tolerance_rad = deg2rad(5.0);
  /// Ignore first-spectrum peaks below this fraction of its maximum.
  double peak_floor = 0.08;
};

/// Removes from `contaminated` every lobe that matches a peak of
/// `first` (the earlier packet's clean spectrum). Returns the cleaned,
/// re-normalized spectrum for the second packet.
aoa::AoaSpectrum sic_cancel(const aoa::AoaSpectrum& first,
                            aoa::AoaSpectrum contaminated,
                            const SicOptions& opt = {});

/// Probability that two preambles overlap when two packets of
/// `packet_bytes` collide (the paper's 0.6% for 1000-byte packets):
/// preamble_airtime / packet_airtime, both at `bitrate_bps`.
double preamble_collision_probability(std::size_t packet_bytes,
                                      double bitrate_bps,
                                      double preamble_s = 16e-6);

}  // namespace arraytrack::core
