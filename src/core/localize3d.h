// Three-dimensional localization (the paper's 4.3.1 future work,
// implemented): each AP carries the standard horizontal row plus a
// vertical antenna column; azimuth and elevation spectra are fused
// over an (x, y, z) grid, eliminating the height-difference bearing
// bias of Appendix A by estimating height directly.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "aoa/elevation.h"
#include "aoa/music.h"
#include "aoa/spectrum.h"
#include "core/pipeline.h"
#include "geom/vec2.h"
#include "phy/frontend.h"

namespace arraytrack::core {

/// One AP's processed 3-D observation: azimuth spectrum (full circle,
/// from the horizontal row) plus elevation spectrum (from the vertical
/// column), tagged with the AP pose and mount height.
struct Ap3dSpectrum {
  geom::Vec2 ap_position;
  double orientation_rad = 0.0;
  double mount_height_m = 0.0;
  aoa::AoaSpectrum azimuth;
  aoa::ElevationSpectrum elevation;

  /// Joint likelihood of a client at plan position `xy`, height `z`.
  double likelihood_toward(const geom::Vec2& xy, double z,
                           double floor) const;
};

struct Pipeline3dOptions {
  /// Number of leading geometry elements forming the horizontal row.
  std::size_t row_elements = 8;
  /// Number of trailing geometry elements forming the vertical column.
  std::size_t column_elements = 4;
  aoa::MusicOptions azimuth_music{.smoothing_groups = 4};
  aoa::ElevationMusicOptions elevation_music;
  bool geometry_weighting = true;
  bool symmetry_removal = true;
  double symmetry_suppression = 0.01;
  double bearing_sigma_deg = 2.0;
};

/// Processes L-array frame captures into Ap3dSpectrum observations.
class Ap3dProcessor {
 public:
  Ap3dProcessor(const phy::AccessPointFrontEnd* ap,
                Pipeline3dOptions opt = {});

  Ap3dSpectrum process(const phy::FrameCapture& frame) const;

 private:
  const phy::AccessPointFrontEnd* ap_;
  Pipeline3dOptions opt_;
};

struct Localizer3dOptions {
  double grid_step_m = 0.25;
  double z_min_m = 0.0;
  double z_max_m = 2.2;
  double z_step_m = 0.2;
  double floor = 0.05;
  std::size_t hill_climb_starts = 3;
  double hill_climb_step_m = 0.1;
  double hill_climb_min_step_m = 0.005;
  std::size_t hill_climb_max_iters = 200;
};

struct Location3dEstimate {
  geom::Vec2 position;
  double height_m = 0.0;
  double likelihood = 0.0;
};

class Localizer3d {
 public:
  Localizer3d(geom::Rect bounds, Localizer3dOptions opt = {});

  double likelihood(const std::vector<Ap3dSpectrum>& aps,
                    const geom::Vec2& xy, double z) const;

  std::optional<Location3dEstimate> locate(
      const std::vector<Ap3dSpectrum>& aps) const;

 private:
  Location3dEstimate hill_climb(const std::vector<Ap3dSpectrum>& aps,
                                geom::Vec2 xy, double z) const;

  geom::Rect bounds_;
  Localizer3dOptions opt_;
};

/// The standard 3-D AP geometry: an 8-element half-wavelength row plus
/// a 4-element vertical column mounted a quarter wavelength behind the
/// row (so the column also provides front/back disambiguation).
array::ArrayGeometry make_3d_ap_geometry(double wavelength_m);

}  // namespace arraytrack::core
