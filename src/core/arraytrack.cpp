#include "core/arraytrack.h"

#include "array/geometry.h"

namespace arraytrack::core {

System::System(const geom::Floorplan* plan, SystemConfig cfg)
    : plan_(plan), cfg_(cfg), channel_(plan, cfg.channel, cfg.seed) {
  server_ = std::make_unique<ArrayTrackServer>(
      plan_->bounds().expanded(cfg_.search_margin_m), cfg_.server);
}

int System::add_ap(geom::Vec2 position, double orientation_rad) {
  // In-row pitch is the paper's half wavelength (6.13 cm). The second
  // (diversity) row sits a quarter wavelength behind the first: the
  // front/back phase difference of an off-row element is pi*sin(theta),
  // which keeps the 2.3.4 side decision well-posed at every bearing —
  // a half-wavelength gap would make it degenerate toward broadside.
  const double spacing = channel_.config().wavelength_m() / 2.0;
  auto geometry = array::ArrayGeometry::rectangular(cfg_.ap.radios, spacing,
                                                    spacing / 2.0);
  array::PlacedArray placed(std::move(geometry), position, orientation_rad);

  phy::ApConfig ap_cfg = cfg_.ap;
  const int id = int(aps_.size());
  aps_.push_back(std::make_unique<phy::AccessPointFrontEnd>(
      id, std::move(placed), &channel_, ap_cfg));
  if (cfg_.auto_calibrate) aps_.back()->run_calibration();
  server_->register_ap(aps_.back().get());
  return id;
}

void System::transmit(int client_id, geom::Vec2 position, double time_s) {
  for (auto& ap : aps_) ap->capture_snapshot(position, time_s, client_id);
}

}  // namespace arraytrack::core
