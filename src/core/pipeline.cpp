#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "aoa/covariance.h"

namespace arraytrack::core {

ApProcessor::ApProcessor(const phy::AccessPointFrontEnd* ap,
                         PipelineOptions opt)
    : ap_(ap), opt_(opt) {
  row_ = opt_.linear_elements ? opt_.linear_elements : ap_->config().radios;
  if (row_ > ap_->config().radios)
    throw std::invalid_argument("ApProcessor: linear row exceeds radio count");
  // Keep at least half the row as the smoothed subarray.
  opt_.music.smoothing_groups =
      std::max<std::size_t>(1, std::min(opt_.music.smoothing_groups, row_ / 2));

  const double wavelength = ap_->channel().config().wavelength_m();
  const auto elements = ap_->capture_elements();
  std::vector<std::size_t> row_elements(elements.begin(),
                                        elements.begin() +
                                            std::ptrdiff_t(row_));
  music_ = std::make_unique<aoa::MusicEstimator>(&ap_->array(), row_elements,
                                                 wavelength, opt_.music);
  if (opt_.symmetry_removal && elements.size() > row_) {
    aoa::SymmetryOptions sym;
    sym.suppression = opt_.symmetry_suppression;
    resolver_ = std::make_unique<aoa::SymmetryResolver>(
        &ap_->array(), elements, wavelength, sym);
  }
}

aoa::AoaSpectrum ApProcessor::process(const phy::FrameCapture& frame,
                                      linalg::SubspaceTracker* tracker) const {
  aoa::AoaSpectrum spec = process_sharp(frame, tracker);
  finish_spectrum(spec);
  return spec;
}

linalg::CMatrix ApProcessor::row_covariance(
    const phy::FrameCapture& frame) const {
  const linalg::CMatrix samples = ap_->calibrated_samples(frame);
  if (samples.rows() < row_)
    throw std::invalid_argument("ApProcessor: capture smaller than row");
  return aoa::sample_covariance(samples.block(0, 0, row_, samples.cols()));
}

aoa::AoaSpectrum ApProcessor::music_spectrum(
    const linalg::CMatrix& row_cov, linalg::SubspaceTracker* tracker) const {
  return music_->spectrum_from_covariance(row_cov, tracker);
}

aoa::AoaSpectrum ApProcessor::process_sharp(
    const phy::FrameCapture& frame, linalg::SubspaceTracker* tracker) const {
  const linalg::CMatrix samples = ap_->calibrated_samples(frame);
  if (samples.rows() < row_)
    throw std::invalid_argument("ApProcessor: capture smaller than row");

  aoa::AoaSpectrum spec = music_->spectrum_from_covariance(
      aoa::sample_covariance(samples.block(0, 0, row_, samples.cols())),
      tracker);

  if (opt_.geometry_weighting)
    spec.apply_geometry_weighting(opt_.weighting_soft_floor);

  // Symmetry removal uses the linear row plus every off-row element
  // captured via diversity synthesis (the paper's "ninth antenna",
  // generalized to all available diversity antennas for a stronger
  // side decision).
  if (resolver_ && samples.rows() > row_)
    resolver_->resolve_per_peak(aoa::sample_covariance(samples), &spec);

  return spec;
}

void ApProcessor::finish_spectrum(aoa::AoaSpectrum& spec) const {
  if (opt_.bearing_sigma_deg > 0.0)
    spec.convolve_gaussian(deg2rad(opt_.bearing_sigma_deg));
  spec.normalize();
}

ApSpectrum ApProcessor::process_tagged(const phy::FrameCapture& frame) const {
  ApSpectrum out;
  out.ap_position = ap_->array().position();
  out.orientation_rad = ap_->array().orientation();
  out.spectrum = process(frame);
  return out;
}

}  // namespace arraytrack::core
