#include "core/server.h"

#include <algorithm>
#include <optional>

#include "core/thread_pool.h"

namespace arraytrack::core {

ArrayTrackServer::ArrayTrackServer(geom::Rect bounds, ServerOptions opt)
    : opt_(opt), localizer_(bounds, opt.localizer) {}

void ArrayTrackServer::register_ap(const phy::AccessPointFrontEnd* ap) {
  Entry e;
  e.ap = ap;
  e.processor = std::make_unique<ApProcessor>(ap, opt_.pipeline);
  aps_.push_back(std::move(e));
}

void ArrayTrackServer::set_pipeline(const PipelineOptions& pipeline) {
  opt_.pipeline = pipeline;
  for (auto& entry : aps_)
    entry.processor = std::make_unique<ApProcessor>(entry.ap, pipeline);
}

std::optional<LocationEstimate> ArrayTrackServer::locate_tracked(
    int client_id, double now_s) {
  auto fix = locate(client_id, now_s);
  if (!fix) return std::nullopt;
  auto& tracker = trackers_[client_id];
  fix->position = tracker.update(fix->position, now_s);
  return fix;
}

std::vector<ApSpectrum> ArrayTrackServer::client_spectra(int client_id,
                                                         double now_s) const {
  return spectra_from_frames(snapshot_frames(client_id, now_s));
}

FrameGroup ArrayTrackServer::snapshot_frames(int client_id,
                                             double now_s) const {
  FrameGroup group(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i)
    group[i] = aps_[i].ap->buffer().recent_from(
        client_id, now_s, opt_.suppression.max_group_spacing_s);
  return group;
}

std::vector<ApSpectrum> ArrayTrackServer::spectra_from_frames(
    const FrameGroup& frames_per_ap) const {
  // Per-AP pipelines (detection -> diversity synthesis -> covariance ->
  // eigendecomposition -> MUSIC -> suppression) are independent
  // read-only work over disjoint front ends, so they fan out across
  // the shared pool. Each AP writes its own slot and the slots are
  // compacted in registration order afterwards, so the result is
  // identical to the serial loop for any pool width.
  const std::size_t n = std::min(aps_.size(), frames_per_ap.size());
  std::vector<std::optional<ApSpectrum>> slots(n);
  ThreadPool::shared().parallel_for(
      0, n, opt_.localizer.threads, [&](std::size_t i) {
        const auto& entry = aps_[i];
        const auto& frames = frames_per_ap[i];
        if (frames.empty()) return;

        // Use at most max_group of the newest frames (paper: two to
        // three).
        const std::size_t use =
            std::min(frames.size(), opt_.suppression.max_group);
        std::vector<aoa::AoaSpectrum> group;
        group.reserve(use);
        for (std::size_t k = frames.size() - use; k < frames.size(); ++k)
          group.push_back(entry.processor->process(frames[k]));

        aoa::AoaSpectrum fused =
            opt_.multipath_suppression
                ? suppress_multipath(group, opt_.suppression)
                : group.front();
        fused.normalize();

        ApSpectrum tagged;
        tagged.ap_position = entry.ap->array().position();
        tagged.orientation_rad = entry.ap->array().orientation();
        tagged.spectrum = std::move(fused);
        slots[i] = std::move(tagged);
      });

  std::vector<ApSpectrum> out;
  out.reserve(n);
  for (auto& slot : slots)
    if (slot) out.push_back(std::move(*slot));
  return out;
}

std::optional<LocationEstimate> ArrayTrackServer::locate(int client_id,
                                                         double now_s) const {
  const auto spectra = client_spectra(client_id, now_s);
  if (spectra.empty()) return std::nullopt;
  return localizer_.locate(spectra);
}

std::optional<LocationEstimate> ArrayTrackServer::locate_frames(
    const FrameGroup& frames) const {
  const auto spectra = spectra_from_frames(frames);
  if (spectra.empty()) return std::nullopt;
  return localizer_.locate(spectra);
}

std::optional<Heatmap> ArrayTrackServer::heatmap(int client_id,
                                                 double now_s) const {
  const auto spectra = client_spectra(client_id, now_s);
  if (spectra.empty()) return std::nullopt;
  return localizer_.heatmap(spectra);
}

}  // namespace arraytrack::core
