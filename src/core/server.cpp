#include "core/server.h"

#include <algorithm>
#include <iterator>
#include <optional>

#include "core/thread_pool.h"
#include "linalg/kernels.h"

namespace arraytrack::core {
namespace {

/// Bearing blur for a stack of same-size spectra in one pass: the
/// Gaussian taps and the circular window addressing are computed once,
/// and the multiply-accumulate streams across rows via
/// kernels::fir_batch. Each row's bits match
/// AoaSpectrum::convolve_gaussian run on that row alone.
void blur_rows(double sigma_rad, std::vector<aoa::AoaSpectrum>& rows) {
  if (rows.empty()) return;
  const std::size_t bins = rows.front().bins();
  for (const auto& row : rows)
    if (row.bins() != bins) {
      // Mixed bin counts cannot share a window; blur row by row.
      for (auto& r : rows) r.convolve_gaussian(sigma_rad);
      return;
    }
  const auto taps = aoa::gaussian_taps(sigma_rad, bins);
  if (taps.empty()) return;  // the blur is a no-op for these parameters
  const std::size_t half = taps.size() / 2;
  const std::size_t nrows = rows.size();
  // Circularly extended interleaved input: sample e of row r (at
  // ext[e*nrows + r]) holds that row's bin (e - half) mod bins, which
  // turns the circular convolution into a plain FIR.
  std::vector<double> ext((bins + 2 * half) * nrows);
  for (std::size_t e = 0; e < bins + 2 * half; ++e) {
    const std::size_t src = (e + bins - half) % bins;
    for (std::size_t r = 0; r < nrows; ++r) ext[e * nrows + r] = rows[r][src];
  }
  std::vector<double> out(bins * nrows);
  linalg::kernels::fir_batch(ext.data(), nrows, bins, taps.data(), taps.size(),
                             out.data());
  for (std::size_t r = 0; r < nrows; ++r) {
    std::vector<double> row(bins);
    for (std::size_t i = 0; i < bins; ++i) row[i] = out[i * nrows + r];
    rows[r] = aoa::AoaSpectrum(std::move(row));
  }
}

}  // namespace

ArrayTrackServer::ArrayTrackServer(geom::Rect bounds, ServerOptions opt)
    : opt_(opt), localizer_(bounds, opt.localizer) {}

void ArrayTrackServer::register_ap(const phy::AccessPointFrontEnd* ap) {
  Entry e;
  e.ap = ap;
  e.processor = std::make_unique<ApProcessor>(ap, opt_.pipeline);
  aps_.push_back(std::move(e));
}

std::size_t ArrayTrackServer::steering_table_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : aps_)
    total += entry.processor->music().steering_table_bytes();
  return total;
}

std::size_t ArrayTrackServer::quant_table_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : aps_)
    total += entry.processor->music().quant_table_bytes();
  return total;
}

void ArrayTrackServer::set_pipeline(const PipelineOptions& pipeline) {
  opt_.pipeline = pipeline;
  for (auto& entry : aps_)
    entry.processor = std::make_unique<ApProcessor>(entry.ap, pipeline);
}

std::optional<LocationEstimate> ArrayTrackServer::locate_tracked(
    int client_id, double now_s) {
  auto fix = locate(client_id, now_s);
  if (!fix) return std::nullopt;
  auto& tracker = trackers_[client_id];
  fix->position = tracker.update(fix->position, now_s);
  return fix;
}

std::vector<ApSpectrum> ArrayTrackServer::client_spectra(int client_id,
                                                         double now_s) const {
  return spectra_from_frames(snapshot_frames(client_id, now_s));
}

FrameGroup ArrayTrackServer::snapshot_frames(int client_id,
                                             double now_s) const {
  FrameGroup group(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i)
    group[i] = aps_[i].ap->buffer().recent_from(
        client_id, now_s, opt_.suppression.max_group_spacing_s);
  return group;
}

ClientSubspace ArrayTrackServer::make_client_subspace(
    linalg::SubspaceCounters* counters) const {
  ClientSubspace cs;
  cs.trackers_.reserve(aps_.size());
  for (const auto& entry : aps_)
    cs.trackers_.emplace_back(entry.processor->subspace_options(), counters);
  return cs;
}

std::vector<ApSpectrum> ArrayTrackServer::spectra_from_frames(
    const FrameGroup& frames_per_ap, ClientSubspace* subspace) const {
  // Per-AP pipelines (detection -> diversity synthesis -> covariance ->
  // eigendecomposition -> MUSIC -> suppression) are independent
  // read-only work over disjoint front ends, so they fan out across
  // the shared pool. Each AP writes its own slot and the slots are
  // compacted in registration order afterwards, so the result is
  // identical to the serial loop for any pool width.
  const std::size_t n = std::min(aps_.size(), frames_per_ap.size());
  std::vector<std::optional<ApSpectrum>> slots(n);
  ThreadPool::shared().parallel_for(
      0, n, opt_.localizer.threads, [&](std::size_t i) {
        const auto& entry = aps_[i];
        const auto& frames = frames_per_ap[i];
        if (frames.empty()) return;

        // Use at most max_group of the newest frames (paper: two to
        // three).
        const std::size_t use =
            std::min(frames.size(), opt_.suppression.max_group);
        linalg::SubspaceTracker* tracker =
            subspace != nullptr ? subspace->tracker(i) : nullptr;
        std::vector<aoa::AoaSpectrum> group;
        group.reserve(use);
        for (std::size_t k = frames.size() - use; k < frames.size(); ++k)
          group.push_back(entry.processor->process(frames[k], tracker));

        aoa::AoaSpectrum fused =
            opt_.multipath_suppression
                ? suppress_multipath(group, opt_.suppression)
                : group.front();
        fused.normalize();

        ApSpectrum tagged;
        tagged.ap_position = entry.ap->array().position();
        tagged.orientation_rad = entry.ap->array().orientation();
        tagged.spectrum = std::move(fused);
        slots[i] = std::move(tagged);
      });

  std::vector<ApSpectrum> out;
  out.reserve(n);
  for (auto& slot : slots)
    if (slot) out.push_back(std::move(*slot));
  return out;
}

std::vector<std::vector<ApSpectrum>> ArrayTrackServer::spectra_from_frames_batch(
    const std::vector<const FrameGroup*>& groups,
    const std::vector<ClientSubspace*>& subspaces) const {
  const std::size_t b = groups.size();
  const std::size_t n = aps_.size();
  // slots[i][j]: job j's fused spectrum at AP i; compacted per job in
  // registration order afterwards, exactly like the un-batched path.
  std::vector<std::vector<std::optional<ApSpectrum>>> slots(
      n, std::vector<std::optional<ApSpectrum>>(b));
  ThreadPool::shared().parallel_for(
      0, n, opt_.localizer.threads, [&](std::size_t i) {
        const auto& entry = aps_[i];
        // Sharp spectra of every (job, frame) pair this AP heard, with
        // the same newest-max_group frame selection per job as
        // spectra_from_frames().
        std::vector<aoa::AoaSpectrum> rows;
        std::vector<std::size_t> rows_of(b, 0);
        for (std::size_t j = 0; j < b; ++j) {
          if (i >= groups[j]->size()) continue;
          const auto& frames = (*groups[j])[i];
          if (frames.empty()) continue;
          linalg::SubspaceTracker* tracker =
              j < subspaces.size() && subspaces[j] != nullptr
                  ? subspaces[j]->tracker(i)
                  : nullptr;
          const std::size_t use =
              std::min(frames.size(), opt_.suppression.max_group);
          for (std::size_t k = frames.size() - use; k < frames.size(); ++k)
            rows.push_back(entry.processor->process_sharp(frames[k], tracker));
          rows_of[j] = use;
        }
        if (rows.empty()) return;

        // finish_spectrum() for the whole stack: one batched blur,
        // then per-row peak normalization.
        const double sigma_deg = entry.processor->options().bearing_sigma_deg;
        if (sigma_deg > 0.0) blur_rows(deg2rad(sigma_deg), rows);
        for (auto& row : rows) row.normalize();

        std::size_t cursor = 0;
        for (std::size_t j = 0; j < b; ++j) {
          if (!rows_of[j]) continue;
          std::vector<aoa::AoaSpectrum> group(
              std::make_move_iterator(rows.begin() + std::ptrdiff_t(cursor)),
              std::make_move_iterator(rows.begin() +
                                      std::ptrdiff_t(cursor + rows_of[j])));
          cursor += rows_of[j];
          aoa::AoaSpectrum fused =
              opt_.multipath_suppression
                  ? suppress_multipath(group, opt_.suppression)
                  : group.front();
          fused.normalize();
          ApSpectrum tagged;
          tagged.ap_position = entry.ap->array().position();
          tagged.orientation_rad = entry.ap->array().orientation();
          tagged.spectrum = std::move(fused);
          slots[i][j] = std::move(tagged);
        }
      });

  std::vector<std::vector<ApSpectrum>> out(b);
  for (std::size_t j = 0; j < b; ++j) {
    const std::size_t nj = std::min(n, groups[j]->size());
    out[j].reserve(nj);
    for (std::size_t i = 0; i < nj; ++i)
      if (slots[i][j]) out[j].push_back(std::move(*slots[i][j]));
  }
  return out;
}

std::vector<std::optional<LocationEstimate>>
ArrayTrackServer::locate_frames_batch(
    const std::vector<const FrameGroup*>& groups,
    const std::vector<ClientSubspace*>& subspaces) const {
  return localizer_.locate_batch(spectra_from_frames_batch(groups, subspaces));
}

std::optional<LocationEstimate> ArrayTrackServer::locate(int client_id,
                                                         double now_s) const {
  const auto spectra = client_spectra(client_id, now_s);
  if (spectra.empty()) return std::nullopt;
  return localizer_.locate(spectra);
}

std::optional<LocationEstimate> ArrayTrackServer::locate_frames(
    const FrameGroup& frames, ClientSubspace* subspace) const {
  const auto spectra = spectra_from_frames(frames, subspace);
  if (spectra.empty()) return std::nullopt;
  return localizer_.locate(spectra);
}

std::optional<Heatmap> ArrayTrackServer::heatmap(int client_id,
                                                 double now_s) const {
  const auto spectra = client_spectra(client_id, now_s);
  if (spectra.empty()) return std::nullopt;
  return localizer_.heatmap(spectra);
}

}  // namespace arraytrack::core
