// Trajectory tracking over per-frame location fixes.
//
// ArrayTrack produces an independent location estimate per frame group
// (~10 per second at the paper's refresh interval). The applications
// the paper motivates — AR navigation, retail analytics — want a
// smooth trajectory, not independent fixes: occasional multipath
// outliers (a wrong-ghost fix several meters away) should be rejected
// and the path between fixes interpolated. This module implements a
// constant-velocity Kalman filter with Mahalanobis outlier gating.
#pragma once

#include <array>
#include <optional>

#include "geom/vec2.h"

namespace arraytrack::core {

struct TrackerOptions {
  /// Process noise: white acceleration standard deviation (m/s^2).
  /// Walking users maneuver at ~1 m/s^2.
  double accel_noise = 1.0;
  /// Fix measurement noise standard deviation (m). ArrayTrack's
  /// per-fix error is a few tens of centimeters.
  double fix_noise_m = 0.5;
  /// Reject fixes whose Mahalanobis distance from the prediction
  /// exceeds this (sqrt of the chi-square gate).
  double gate = 3.5;
  /// After this long without an accepted fix, reinitialize on the next
  /// one instead of trusting a stale velocity estimate.
  double max_coast_s = 2.0;
};

/// Bit-exact snapshot of a tracker's mutable state (the Kalman state,
/// covariance and timing), the unit of session handoff between
/// federation nodes. Options are excluded: exporter and importer must
/// construct their trackers with identical TrackerOptions.
struct TrackerState {
  bool initialized = false;
  bool last_rejected = false;
  double last_time = 0.0;
  std::array<double, 4> state{};
  std::array<double, 16> cov{};
};

class LocationTracker {
 public:
  explicit LocationTracker(TrackerOptions opt = {});

  /// Drops all state; the next fix reinitializes the track.
  void reset();

  /// Snapshot / restore of the mutable filter state, so a handed-off
  /// session continues its smoothed trajectory bit-for-bit.
  TrackerState save_state() const {
    return {initialized_, last_rejected_, last_time_, state_, cov_};
  }
  void restore_state(const TrackerState& st) {
    initialized_ = st.initialized;
    last_rejected_ = st.last_rejected;
    last_time_ = st.last_time;
    state_ = st.state;
    cov_ = st.cov;
  }

  bool initialized() const { return initialized_; }

  /// Feeds one location fix. Returns the filtered position, or the
  /// predicted position when the fix was gated out as an outlier.
  geom::Vec2 update(const geom::Vec2& fix, double time_s);

  /// True if the most recent update() rejected its fix.
  bool last_rejected() const { return last_rejected_; }

  /// Extrapolated position at a (later) time; requires initialized().
  geom::Vec2 predict(double time_s) const;

  geom::Vec2 position() const { return {state_[0], state_[1]}; }
  geom::Vec2 velocity() const { return {state_[2], state_[3]}; }
  double last_update_s() const { return last_time_; }

 private:
  void propagate(double dt);

  TrackerOptions opt_;
  bool initialized_ = false;
  bool last_rejected_ = false;
  double last_time_ = 0.0;
  // State [x, y, vx, vy] and covariance, row-major 4x4.
  std::array<double, 4> state_{};
  std::array<double, 16> cov_{};
};

}  // namespace arraytrack::core
