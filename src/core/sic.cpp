#include "core/sic.h"

namespace arraytrack::core {

aoa::AoaSpectrum sic_cancel(const aoa::AoaSpectrum& first,
                            aoa::AoaSpectrum contaminated,
                            const SicOptions& opt) {
  const auto first_peaks = first.find_peaks(opt.peak_floor);
  for (const auto& p : first_peaks) {
    // Only cancel where the contaminated spectrum actually has a
    // matching lobe; removing at an arbitrary bearing would carve holes
    // in the second packet's own peaks.
    for (const auto& q : contaminated.find_peaks(opt.peak_floor)) {
      if (aoa::bearing_distance(p.bearing_rad, q.bearing_rad) <=
          opt.match_tolerance_rad) {
        contaminated.remove_lobe(q.bearing_rad);
        break;
      }
    }
  }
  contaminated.normalize();
  return contaminated;
}

double preamble_collision_probability(std::size_t packet_bytes,
                                      double bitrate_bps, double preamble_s) {
  const double airtime_s = double(packet_bytes) * 8.0 / bitrate_bps;
  if (airtime_s <= 0.0) return 1.0;
  const double p = preamble_s / airtime_s;
  return p > 1.0 ? 1.0 : p;
}

}  // namespace arraytrack::core
