#include "delivery/history.h"

#include <algorithm>
#include <utility>

namespace arraytrack::delivery {

HistoryStore::HistoryStore(HistoryOptions opt) : opt_(opt) {
  opt_.dense_capacity = std::max<std::size_t>(1, opt_.dense_capacity);
  opt_.tier_capacity = std::max<std::size_t>(1, opt_.tier_capacity);
}

void HistoryStore::append(const Fix& fix) {
  std::shared_ptr<const ClientHistory> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(fix.client_id);
    if (it != clients_.end()) old = it->second;
  }

  // Copy-on-write outside the lock: the bounded per-client state is a
  // few KB, and readers keep their epoch alive via the shared_ptr.
  auto next = old ? std::make_shared<ClientHistory>(*old)
                  : std::make_shared<ClientHistory>();
  if (next->tiers.size() < opt_.tiers) next->tiers.resize(opt_.tiers);
  if (next->keep_phase.size() < opt_.tiers) next->keep_phase.resize(opt_.tiers);

  TrackPoint pt;
  pt.time_s = fix.frame_time_s;
  pt.seq = fix.seq;
  pt.position = fix.position;
  pt.smoothed = fix.smoothed;
  pt.likelihood = fix.likelihood;
  next->dense.push_back(pt);

  if (next->dense.size() > opt_.dense_capacity) {
    // Cascade the oldest dense point down the thinning tiers: each
    // tier keeps every other candidate it is offered (geometric decay)
    // and overflows its own oldest point into the next.
    TrackPoint overflow = next->dense.front();
    next->dense.erase(next->dense.begin());
    for (std::size_t i = 0; i < opt_.tiers; ++i) {
      next->keep_phase[i] ^= 1;
      if (next->keep_phase[i] == 0) break;  // decimated away
      auto& tier = next->tiers[i];
      tier.push_back(overflow);
      if (tier.size() <= opt_.tier_capacity) break;
      overflow = tier.front();  // tier overflow cascades to the next
      tier.erase(tier.begin());
    }
    // opt_.tiers == 0 (or the last tier overflowing): point dropped.
  }

  const std::uint64_t np = next->points();
  const std::uint64_t op = old ? old->points() : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    clients_[fix.client_id] = std::move(next);
  }
  points_.fetch_add(np - op, std::memory_order_relaxed);
}

std::shared_ptr<const ClientHistory> HistoryStore::snapshot(int client) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  return it == clients_.end() ? nullptr : it->second;
}

std::optional<TrackPoint> HistoryStore::latest(int client) const {
  const auto snap = snapshot(client);
  if (!snap || snap->dense.empty()) return std::nullopt;
  return snap->dense.back();
}

std::vector<TrackPoint> HistoryStore::trajectory(int client, double t0,
                                                 double t1) const {
  std::vector<TrackPoint> out;
  const auto snap = snapshot(client);
  if (!snap) return out;
  auto take = [&](const std::vector<TrackPoint>& pts) {
    for (const auto& p : pts)
      if (p.time_s >= t0 && p.time_s <= t1) out.push_back(p);
  };
  // Oldest tier first, dense last: globally ascending time (points
  // only ever move dense -> tier0 -> tier1 -> ... in arrival order).
  for (std::size_t i = snap->tiers.size(); i-- > 0;) take(snap->tiers[i]);
  take(snap->dense);
  return out;
}

void HistoryStore::forget_client(int client) {
  std::shared_ptr<const ClientHistory> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return;
    old = std::move(it->second);
    clients_.erase(it);
  }
  points_.fetch_sub(old->points(), std::memory_order_relaxed);
}

}  // namespace arraytrack::delivery
