#include "delivery/geofence.h"

#include <utility>

namespace arraytrack::delivery {

int GeofenceEngine::add_zone(geom::Polygon polygon, ZoneOptions opt,
                             std::string label) {
  Zone z;
  z.id = int(zones_.size());
  z.label = std::move(label);
  z.polygon = std::move(polygon);
  z.opt = opt;
  zones_.push_back(std::move(z));
  // Existing clients see the new zone on their next fix.
  for (auto& [client, presences] : state_) presences.resize(zones_.size());
  return zones_.back().id;
}

void GeofenceEngine::update(const Fix& fix,
                            const std::function<void(Event&&)>& emit) {
  if (zones_.empty()) return;
  auto& presences = state_[fix.client_id];
  presences.resize(zones_.size());

  const geom::Vec2 p = fix.smoothed;
  for (const Zone& z : zones_) {
    Presence& st = presences[std::size_t(z.id)];
    const double sd = z.polygon.signed_distance(p);  // negative inside

    auto fire = [&](EventKind kind, double dwell) {
      Event ev;
      ev.kind = kind;
      ev.fix = fix;
      ev.zone_id = z.id;
      ev.dwell_s = dwell;
      ++trigger_fires_;
      emit(std::move(ev));
    };

    if (!st.inside) {
      if (sd <= -z.opt.enter_margin_m) {
        st.inside = true;
        st.entered_at_s = fix.frame_time_s;
        st.dwell_fired = false;
        fire(EventKind::kZoneEnter, 0.0);
        // A zero dwell threshold never fires; a visit shorter than the
        // threshold fires nothing either — checked on later fixes.
      }
      continue;
    }

    if (sd >= z.opt.leave_margin_m) {
      st.inside = false;
      fire(EventKind::kZoneLeave, fix.frame_time_s - st.entered_at_s);
      continue;
    }

    if (z.opt.dwell_s > 0.0 && !st.dwell_fired &&
        fix.frame_time_s - st.entered_at_s >= z.opt.dwell_s) {
      st.dwell_fired = true;
      fire(EventKind::kZoneDwell, fix.frame_time_s - st.entered_at_s);
    }
  }
}

std::vector<int> GeofenceEngine::occupants(int zone_id) const {
  std::vector<int> out;
  if (zone_id < 0 || std::size_t(zone_id) >= zones_.size()) return out;
  for (const auto& [client, presences] : state_)
    if (std::size_t(zone_id) < presences.size() &&
        presences[std::size_t(zone_id)].inside)
      out.push_back(client);  // std::map iteration is already ascending
  return out;
}

void GeofenceEngine::forget_client(int client_id) { state_.erase(client_id); }

}  // namespace arraytrack::delivery
