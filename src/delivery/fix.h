// The location fix record the serving engine emits.
//
// Lives in the delivery layer (not service/) because this is the unit
// of everything read-side: the fix bus fans it out to subscribers, the
// geofence engine evaluates zones against it, and the history store
// snapshots it for trajectory queries. service/service.h aliases it as
// ServiceFix, so write-path code is unchanged.
#pragma once

#include <cstdint>

#include "geom/vec2.h"

namespace arraytrack::delivery {

/// One smoothed location fix leaving the engine.
struct Fix {
  int client_id = -1;
  std::uint64_t seq = 0;        // per-session job sequence number
  double frame_time_s = 0.0;    // newest frame folded into the job
  double queue_wait_s = 0.0;    // server arrival -> job start
  double processing_s = 0.0;    // pipeline time (modeled in virtual mode)
  double latency_s = 0.0;       // frame end -> fix out (incl. transport)
  geom::Vec2 position;          // raw pipeline fix
  geom::Vec2 smoothed;          // after the session tracker
  double likelihood = 0.0;
  double error_m = -1.0;        // vs ground truth; < 0 when unknown
  bool tracker_rejected = false;
};

}  // namespace arraytrack::delivery
