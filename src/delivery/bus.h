// The fix bus: streaming delivery and the read-side query layer.
//
// The service publishes every committed fix here, once, at fix-commit
// time. The bus then does three things under one short publish lock:
//
//   1. fans the fix out to subscribers — each subscriber owns a
//      bounded drop-oldest ring (delivery/subscriber.h), so a stalled
//      reader sheds its own backlog and never stalls the publisher;
//   2. evaluates geofence zones (delivery/geofence.h) and fans the
//      resulting enter/leave/dwell events out over the same rings;
//   3. folds the fix into the per-client history store
//      (delivery/history.h), publishing a fresh epoch snapshot.
//
// Queries — latest(client), trajectory(client, t0, t1),
// zone_occupancy(zone) — are safe to call concurrently with the write
// path: history reads are epoch snapshots (lock-free after the pointer
// grab) and occupancy is copied out under the publish lock.
//
// Publishers may be multiple service workers; the publish lock makes
// the bus a serialization point per publish, not per reader. The
// per-client event substream is deterministic (fixes of one client
// arrive in sequence order from its single shard); the interleaving
// across clients is not, which is why consumers that compare streams
// across worker counts sort events canonically first — the same
// convention ServiceReport.fixes already uses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "delivery/event.h"
#include "delivery/geofence.h"
#include "delivery/history.h"
#include "delivery/subscriber.h"

namespace arraytrack::delivery {

struct BusOptions {
  HistoryOptions history;
  /// Keep every published fix in an internal catch-all buffer drained
  /// by drain_retained() — the batch read path run()/run_wire() reports
  /// and the cluster fan-in drain from. Turn off when all consumers
  /// subscribe.
  bool retain_fixes = true;
};

class FixBus {
 public:
  explicit FixBus(BusOptions opt = {});

  // ---- configuration (call before publishing starts) ----

  /// Registers a geofence zone; returns its id.
  int add_zone(geom::Polygon polygon, ZoneOptions zopt = {},
               std::string label = {});

  // ---- subscriptions ----

  /// Creates a subscriber. The returned object stays valid until
  /// unsubscribe(); poll from exactly one thread.
  std::shared_ptr<Subscriber> subscribe(SubscribeOptions sopt = {});
  void unsubscribe(const std::shared_ptr<Subscriber>& sub);
  std::size_t subscriber_count() const;

  // ---- write path (service workers) ----

  /// Commits one fix: retained buffer, history epoch, fix fanout,
  /// geofence evaluation + event fanout. Never blocks on readers.
  void publish(const Fix& fix);

  /// Forgets a client everywhere (history + presence). Used when the
  /// service evicts a session.
  void forget_client(int client_id);

  // ---- read-side queries ----

  /// Newest retained point for `client`.
  std::optional<TrackPoint> latest(int client) const {
    return history_.latest(client);
  }
  /// Retained points with time in [t0, t1], ascending.
  std::vector<TrackPoint> trajectory(int client, double t0, double t1) const {
    return history_.trajectory(client, t0, t1);
  }
  /// Clients currently inside `zone_id`, ascending client id.
  std::vector<int> zone_occupancy(int zone_id) const;

  const HistoryStore& history() const { return history_; }
  std::vector<Zone> zones() const;

  // ---- batch drain (service reports, cluster fan-in) ----

  /// Drains the internal catch-all fix buffer (publish order).
  std::vector<Fix> drain_retained();

  // ---- stats ----

  std::uint64_t published_fixes() const {
    return published_fixes_.load(std::memory_order_relaxed);
  }
  std::uint64_t published_events() const {
    return published_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t trigger_fires() const {
    return trigger_fires_.load(std::memory_order_relaxed);
  }
  /// Sum of events shed across all current subscribers.
  std::uint64_t total_shed() const;

  /// Delivery block for the service stats JSON: counters plus one
  /// entry per subscriber with its id, label, delivered/shed/cursor.
  std::string stats_json() const;

 private:
  void fanout_locked(const Event& ev);

  BusOptions opt_;
  /// Serializes publish, subscription churn, and geofence state.
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Subscriber>> subscribers_;
  int next_subscriber_id_ = 0;
  GeofenceEngine geofence_;
  HistoryStore history_;
  std::vector<Fix> retained_;
  std::atomic<std::uint64_t> published_fixes_{0};
  std::atomic<std::uint64_t> published_events_{0};
  std::atomic<std::uint64_t> trigger_fires_{0};
};

}  // namespace arraytrack::delivery
