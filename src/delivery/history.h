// Per-client location history with time-decayed downsampling.
//
// A trajectory query wants dense recent detail and only the shape of
// the distant past, in bounded memory. Each client's history is a
// dense window of the newest fixes at full rate plus a geometrically
// thinned tail: when the dense window overflows, its oldest point is
// promoted into tier 0 keeping every 2nd sample; tier 0 overflows into
// tier 1 keeping every 2nd of those (1/4 density), and so on, until
// the last tier drops its overflow outright. Total footprint per
// client is dense_capacity + tiers * tier_capacity points, while the
// covered time span grows ~2x per tier.
//
// Concurrency: epoch snapshots. Every append publishes a fresh
// immutable ClientHistory (copy-on-write of the bounded per-client
// state); readers grab the current snapshot under a pointer-swap lock
// and then read entirely lock-free, so a slow reader holds an old
// epoch alive instead of blocking the write path. Appends are
// serialized by the fix bus's publish lock; per-client fixes arrive in
// sequence order, so snapshots are a deterministic function of the fix
// stream — byte-identical across service worker counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "delivery/fix.h"

namespace arraytrack::delivery {

struct HistoryOptions {
  /// Newest fixes kept at full rate.
  std::size_t dense_capacity = 64;
  /// Points per thinned tier.
  std::size_t tier_capacity = 32;
  /// Thinned tiers (tier i keeps 1/2^(i+1) of the fix rate); 0 = drop
  /// everything older than the dense window.
  std::size_t tiers = 3;
};

/// One retained trajectory point.
struct TrackPoint {
  double time_s = 0.0;
  std::uint64_t seq = 0;
  geom::Vec2 position;
  geom::Vec2 smoothed;
  double likelihood = 0.0;
};

/// Immutable per-client snapshot (one epoch). Concatenating
/// tiers[tiers-1] .. tiers[0] then dense yields the whole retained
/// trajectory in ascending time order.
struct ClientHistory {
  std::vector<std::vector<TrackPoint>> tiers;  ///< each ascending, oldest tier last
  std::vector<TrackPoint> dense;               ///< ascending time, newest last
  /// Per-tier decimation phase: promotion into tier i keeps every
  /// other candidate; the phase travels with the snapshot so the
  /// thinning pattern is deterministic.
  std::vector<std::uint8_t> keep_phase;

  std::size_t points() const {
    std::size_t n = dense.size();
    for (const auto& t : tiers) n += t.size();
    return n;
  }
};

class HistoryStore {
 public:
  explicit HistoryStore(HistoryOptions opt = {});

  /// Writer side (serialized by the bus publish lock): folds one fix
  /// into the client's history and publishes a new epoch snapshot.
  void append(const Fix& fix);

  /// Current epoch for `client` (nullptr when unseen). Safe to read
  /// concurrently with append(); the snapshot never mutates.
  std::shared_ptr<const ClientHistory> snapshot(int client) const;

  /// Newest retained point for `client`.
  std::optional<TrackPoint> latest(int client) const;

  /// Retained points with time_s in [t0, t1], ascending time.
  std::vector<TrackPoint> trajectory(int client, double t0, double t1) const;

  /// Drops a client's history (session eviction).
  void forget_client(int client);

  std::uint64_t total_points() const {
    return points_.load(std::memory_order_relaxed);
  }
  /// Approximate retained footprint (points * sizeof(TrackPoint)).
  std::uint64_t approx_bytes() const {
    return total_points() * sizeof(TrackPoint);
  }

  const HistoryOptions& options() const { return opt_; }

 private:
  HistoryOptions opt_;
  /// Guards only the map and its shared_ptr values (pointer swaps);
  /// never held while building or reading a snapshot.
  mutable std::mutex mutex_;
  std::map<int, std::shared_ptr<const ClientHistory>> clients_;
  std::atomic<std::uint64_t> points_{0};
};

}  // namespace arraytrack::delivery
