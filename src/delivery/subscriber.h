// One read-side consumer of the fix bus.
//
// Each subscriber owns a bounded ring carrying its private copy of the
// event stream, with the same drop-oldest discipline as the ingest
// rings (core/mpsc_ring.h): when a reader falls behind, the publisher
// evicts that reader's oldest undelivered events — counted, never
// silent — instead of blocking. A deliberately stalled subscriber
// therefore sheds its own backlog while every other subscriber, and
// the publish path itself, runs at full speed.
//
// The ring reuses the Vyukov cell protocol from core::MpscRing:
// publishes are serialized by the bus lock and each subscriber has one
// consumer, so this is the SPSC special case of that queue — but
// drop-oldest requires the publisher to pop the victim, which is
// exactly the MPMC capability the shared implementation already
// proves under TSan. The subscriber's position in its stream is the
// cursor (delivered + shed); published - cursor is its current lag.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mpsc_ring.h"
#include "delivery/event.h"

namespace arraytrack::delivery {

struct SubscribeOptions {
  /// Ring capacity (rounded up to a power of two, minimum 2). The
  /// backlog bound a slow reader sheds against.
  std::size_t capacity = 256;
  /// Only this client's events; -1 subscribes to every client.
  int client_id = -1;
  /// Deliver location fixes (EventKind::kFix).
  bool fixes = true;
  /// Deliver geofence events (kZoneEnter/kZoneLeave/kZoneDwell).
  bool zone_events = true;
  /// Only events of this zone (zone events with a different id are
  /// filtered); -1 = every zone.
  int zone_id = -1;
  /// Shown in the delivery stats JSON.
  std::string label;
};

class Subscriber {
 public:
  /// Consumer side; single reader thread. Moves the next event into
  /// `out`, false when the ring is empty.
  bool poll(Event& out) {
    if (!ring_.try_pop(out)) return false;
    delivered_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Drains up to `max` events (0 = everything currently queued).
  std::vector<Event> poll_batch(std::size_t max = 0) {
    std::vector<Event> out;
    Event ev;
    while ((max == 0 || out.size() < max) && poll(ev))
      out.push_back(std::move(ev));
    return out;
  }

  int id() const { return id_; }
  const SubscribeOptions& options() const { return opt_; }

  /// Events offered to this subscriber by the bus.
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  /// Events the consumer has popped.
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Events evicted drop-oldest because this reader lagged.
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  /// Position in this subscriber's event stream: everything before the
  /// cursor was either delivered or shed, nothing after it was.
  std::uint64_t cursor() const { return delivered() + shed(); }
  /// Events currently waiting in the ring.
  std::uint64_t lag() const { return published() - cursor(); }

 private:
  friend class FixBus;

  Subscriber(int id, SubscribeOptions opt)
      : id_(id), opt_(std::move(opt)), ring_(opt_.capacity) {}

  /// True when the bus should route `ev` here.
  bool wants(const Event& ev) const {
    if (opt_.client_id >= 0 && ev.fix.client_id != opt_.client_id)
      return false;
    if (ev.kind == EventKind::kFix) return opt_.fixes;
    if (!opt_.zone_events) return false;
    return opt_.zone_id < 0 || ev.zone_id == opt_.zone_id;
  }

  /// Producer side (bus publish lock held).
  void offer(const Event& ev) {
    published_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t dropped = ring_.push_overwrite(ev);
    if (dropped) shed_.fetch_add(dropped, std::memory_order_relaxed);
  }

  int id_;
  SubscribeOptions opt_;
  core::MpscRing<Event> ring_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace arraytrack::delivery
