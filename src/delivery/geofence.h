// Zone-presence triggers evaluated at fix-publish time.
//
// Zones are polygons in floorplan coordinates (geom::Polygon). The
// engine keeps per-(client, zone) presence state and turns a stream of
// fixes into enter / leave / dwell events with hysteresis: a client
// only *enters* once its smoothed position is inside the zone by at
// least `enter_margin_m`, and only *leaves* once it is outside by at
// least `leave_margin_m` — a client jittering on the boundary flaps no
// events. Dwell fires once per visit when the client has been present
// for `dwell_s` seconds of fix time.
//
// Determinism: presence state is keyed per client and every update is
// driven by that client's fix stream in sequence order, so the event
// substream of a client is a pure function of its fixes — the same
// contract the service's fix sets already meet across worker counts.
// The engine is not itself thread-safe; the fix bus serializes calls
// under its publish lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "delivery/event.h"
#include "geom/polygon.h"

namespace arraytrack::delivery {

struct ZoneOptions {
  /// Must be inside the polygon by this margin (m) to arm an enter.
  double enter_margin_m = 0.0;
  /// Must be outside by this margin (m) to arm a leave. Together with
  /// enter_margin_m this is the hysteresis band around the boundary.
  double leave_margin_m = 0.25;
  /// Continuous presence (fix time) after which one kZoneDwell fires
  /// per visit; <= 0 disables dwell events.
  double dwell_s = 0.0;
};

struct Zone {
  int id = -1;
  std::string label;
  geom::Polygon polygon;
  ZoneOptions opt;
};

class GeofenceEngine {
 public:
  /// Registers a zone and returns its id (dense, starting at 0).
  int add_zone(geom::Polygon polygon, ZoneOptions opt = {},
               std::string label = {});

  const std::vector<Zone>& zones() const { return zones_; }

  /// Folds one fix into the presence state; `emit` is called for every
  /// enter/leave/dwell event it triggers, in zone-id order. Evaluates
  /// the smoothed position (the tracker output is the presence signal;
  /// raw per-fix jitter is what the hysteresis band exists to absorb).
  void update(const Fix& fix, const std::function<void(Event&&)>& emit);

  /// Clients currently present in `zone_id`, ascending (empty when the
  /// id is unknown). Caller must hold the bus publish serialization or
  /// otherwise not race update(); the fix bus snapshots this under its
  /// lock for the concurrent query path.
  std::vector<int> occupants(int zone_id) const;

  /// Drops a client's presence (session eviction). Emits nothing: an
  /// evicted session is not a client walking out of a zone.
  void forget_client(int client_id);

  std::uint64_t trigger_fires() const { return trigger_fires_; }

 private:
  struct Presence {
    bool inside = false;
    double entered_at_s = 0.0;
    bool dwell_fired = false;
  };

  std::vector<Zone> zones_;
  /// state_[client][zone_id]
  std::map<int, std::vector<Presence>> state_;
  std::uint64_t trigger_fires_ = 0;
};

}  // namespace arraytrack::delivery
