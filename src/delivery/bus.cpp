#include "delivery/bus.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace arraytrack::delivery {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kFix:
      return "fix";
    case EventKind::kZoneEnter:
      return "zone_enter";
    case EventKind::kZoneLeave:
      return "zone_leave";
    case EventKind::kZoneDwell:
      return "zone_dwell";
  }
  return "unknown";
}

FixBus::FixBus(BusOptions opt) : opt_(opt), history_(opt.history) {}

int FixBus::add_zone(geom::Polygon polygon, ZoneOptions zopt,
                     std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  return geofence_.add_zone(std::move(polygon), zopt, std::move(label));
}

std::shared_ptr<Subscriber> FixBus::subscribe(SubscribeOptions sopt) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto sub = std::shared_ptr<Subscriber>(
      new Subscriber(next_subscriber_id_++, std::move(sopt)));
  subscribers_.push_back(sub);
  return sub;
}

void FixBus::unsubscribe(const std::shared_ptr<Subscriber>& sub) {
  if (!sub) return;
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), sub),
      subscribers_.end());
}

std::size_t FixBus::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

void FixBus::fanout_locked(const Event& ev) {
  published_events_.fetch_add(1, std::memory_order_relaxed);
  for (auto& sub : subscribers_)
    if (sub->wants(ev)) sub->offer(ev);
}

void FixBus::publish(const Fix& fix) {
  std::lock_guard<std::mutex> lock(mutex_);
  published_fixes_.fetch_add(1, std::memory_order_relaxed);
  if (opt_.retain_fixes) retained_.push_back(fix);
  history_.append(fix);

  Event ev;
  ev.kind = EventKind::kFix;
  ev.fix = fix;
  fanout_locked(ev);

  geofence_.update(fix, [&](Event&& zev) { fanout_locked(zev); });
  trigger_fires_.store(geofence_.trigger_fires(), std::memory_order_relaxed);
}

void FixBus::forget_client(int client_id) {
  history_.forget_client(client_id);
  std::lock_guard<std::mutex> lock(mutex_);
  geofence_.forget_client(client_id);
}

std::vector<int> FixBus::zone_occupancy(int zone_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return geofence_.occupants(zone_id);
}

std::vector<Zone> FixBus::zones() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return geofence_.zones();
}

std::vector<Fix> FixBus::drain_retained() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Fix> out;
  out.swap(retained_);
  return out;
}

std::uint64_t FixBus::total_shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& sub : subscribers_) n += sub->shed();
  return n;
}

std::string FixBus::stats_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"published_fixes\": " << published_fixes_.load()
     << ", \"published_events\": " << published_events_.load()
     << ", \"trigger_fires\": " << trigger_fires_.load()
     << ", \"history_points\": " << history_.total_points()
     << ", \"history_bytes\": " << history_.approx_bytes()
     << ", \"subscribers\": [";
  bool first = true;
  for (const auto& sub : subscribers_) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << sub->id() << ", \"label\": \""
       << sub->options().label << "\", \"published\": " << sub->published()
       << ", \"delivered\": " << sub->delivered()
       << ", \"shed\": " << sub->shed() << ", \"cursor\": " << sub->cursor()
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace arraytrack::delivery
