// Events the fix bus delivers to subscribers.
#pragma once

#include <cstdint>

#include "delivery/fix.h"

namespace arraytrack::delivery {

enum class EventKind : std::uint8_t {
  kFix = 0,        ///< a location fix was committed
  kZoneEnter = 1,  ///< client presence entered a zone (hysteresis passed)
  kZoneLeave = 2,  ///< client presence left a zone
  kZoneDwell = 3,  ///< client stayed inside a zone for the dwell threshold
};

const char* event_kind_name(EventKind k);

/// One bus event. Zone events carry the fix that triggered them, so a
/// subscriber watching a zone still sees where the client was and the
/// fix's sequence number (which orders a client's events totally).
struct Event {
  EventKind kind = EventKind::kFix;
  Fix fix;
  int zone_id = -1;      ///< kZone* only
  double dwell_s = 0.0;  ///< kZoneLeave / kZoneDwell: time inside so far
};

}  // namespace arraytrack::delivery
