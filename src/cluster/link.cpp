#include "cluster/link.h"

#include <algorithm>
#include <cstring>

namespace arraytrack::cluster {
namespace {

constexpr std::uint32_t kMagic = 0x4154524c;  // bytes "LRTA"
constexpr std::size_t kHeader = 4 + 4 + 8 + 8 + 4 + 4;
constexpr std::size_t kTag = 32;
/// A corrupted length field must not make the parser wait forever for
/// bytes that will never come; anything above this is treated as
/// garbage and resynced past.
constexpr std::size_t kMaxPayload = std::size_t(1) << 24;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Link::Link(std::vector<std::uint8_t> tx_key, FaultPlan faults)
    : Link(tx_key, tx_key, faults) {}

Link::Link(std::vector<std::uint8_t> tx_key, std::vector<std::uint8_t> rx_key,
           FaultPlan faults)
    : tx_key_(std::move(tx_key)),
      rx_key_(std::move(rx_key)),
      faults_(faults),
      rng_(faults.seed) {}

double Link::draw() {
  return double(splitmix64(rng_) >> 11) * 0x1.0p-53;
}

std::vector<std::uint8_t> Link::frame(const Envelope& env) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeader + env.payload.size() + kTag);
  put_u32(out, kMagic);
  put_u32(out, std::uint32_t(env.type));
  put_u64(out, ++tx_seq_);
  std::uint64_t time_bits;
  std::memcpy(&time_bits, &env.time_s, sizeof(time_bits));
  put_u64(out, time_bits);
  put_u32(out, env.ap_index);
  put_u32(out, std::uint32_t(env.payload.size()));
  out.insert(out.end(), env.payload.begin(), env.payload.end());
  const Digest tag = hmac_sha256(tx_key_, out.data(), out.size());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

void Link::append(std::vector<std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Link::send(const Envelope& env) {
  ++stats_.sent;
  std::vector<std::uint8_t> f = frame(env);

  if (faults_.any()) {
    if (draw() < faults_.drop) {
      ++stats_.fault_dropped;
      // The held frame (if any) still rides behind the next survivor.
      return;
    }
    if (draw() < faults_.corrupt && f.size() > 4) {
      // Flip one bit past the magic: the tag check must catch it. (The
      // magic itself is spared so the frame stays *findable* and the
      // failure is attributed to auth, not resync — truncation covers
      // the byte-skipping path.)
      const std::size_t bit = 32 + std::size_t(draw() * double((f.size() - 4) * 8));
      f[bit / 8] ^= std::uint8_t(1u << (bit % 8));
      ++stats_.fault_corrupted;
    }
    if (draw() < faults_.truncate && f.size() > kHeader) {
      const std::size_t cut = 1 + std::size_t(draw() * double(kTag));
      f.resize(f.size() - std::min(cut, f.size() - 4));
      ++stats_.fault_truncated;
    }
    const bool dup = draw() < faults_.duplicate;
    if (!held_.empty()) {
      // A held-back frame rides after this one: that is the reorder.
      append(f);
      if (dup) {
        append(f);
        ++stats_.fault_duplicated;
      }
      append(std::move(held_));
      held_.clear();
      return;
    }
    if (draw() < faults_.reorder) {
      ++stats_.fault_reordered;
      held_ = std::move(f);
      return;
    }
    append(f);
    if (dup) {
      append(std::move(f));
      ++stats_.fault_duplicated;
    }
    return;
  }
  append(std::move(f));
}

std::vector<Envelope> Link::parse(bool counting_lost) {
  std::vector<Envelope> out;
  for (;;) {
    // Hunt for the next frame magic (resync after corruption).
    while (buf_.size() - rd_ >= 4 && get_u32(buf_.data() + rd_) != kMagic) {
      ++rd_;
      ++stats_.resync_bytes;
    }
    if (buf_.size() - rd_ < kHeader) break;
    const std::uint8_t* p = buf_.data() + rd_;
    const std::size_t len = get_u32(p + 28);
    if (len > kMaxPayload) {
      ++rd_;
      ++stats_.resync_bytes;
      continue;
    }
    const std::size_t need = kHeader + len + kTag;
    if (buf_.size() - rd_ < need) break;  // incomplete tail frame

    const Digest expect = hmac_sha256(rx_key_, p, kHeader + len);
    Digest got;
    std::memcpy(got.data(), p + kHeader + len, kTag);
    if (!digest_equal(expect, got)) {
      // Unauthenticated bytes are never interpreted: skip one byte and
      // rescan, so a truncated frame's tail merging into the next
      // frame's head cannot swallow that next frame.
      ++stats_.auth_bad_tag;
      ++rd_;
      ++stats_.resync_bytes;
      continue;
    }

    const std::uint64_t seq = get_u64(p + 8);
    rd_ += need;
    if (rx_seen_ && seq <= rx_last_) {
      ++stats_.auth_replayed;
      continue;
    }
    if (rx_seen_ && seq > rx_last_ + 1) stats_.seq_gaps += seq - rx_last_ - 1;
    rx_last_ = seq;
    rx_seen_ = true;

    Envelope env;
    env.type = EnvelopeType(get_u32(p + 4));
    const std::uint64_t time_bits = get_u64(p + 16);
    std::memcpy(&env.time_s, &time_bits, sizeof(env.time_s));
    env.ap_index = get_u32(p + 24);
    env.payload.assign(p + kHeader, p + kHeader + len);
    if (counting_lost)
      ++stats_.lost_on_reset;
    else {
      ++stats_.delivered;
      out.push_back(std::move(env));
    }
  }
  // Compact the consumed prefix so the pipe does not grow unboundedly.
  if (rd_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(rd_));
    rd_ = 0;
  }
  return out;
}

std::vector<Envelope> Link::receive() {
  if (!held_.empty()) {
    // Nothing followed the held-back frame; deliver it late rather
    // than lose it (it still arrives out of order if frames were sent
    // after the hold).
    append(std::move(held_));
    held_.clear();
  }
  return parse(false);
}

void Link::reset() {
  if (!held_.empty()) {
    append(std::move(held_));
    held_.clear();
  }
  parse(true);
  // A truncated tail frame that never completed is lost with the pipe.
  if (buf_.size() > rd_) ++stats_.lost_on_reset;
  buf_.clear();
  rd_ = 0;
  tx_seq_ = 0;
  rx_last_ = 0;
  rx_seen_ = false;
}

}  // namespace arraytrack::cluster
