#include "cluster/handoff.h"

#include <cstring>

namespace arraytrack::cluster {
namespace {

constexpr std::uint32_t kMagic = 0x41545353;  // bytes "SSTA"
constexpr std::uint32_t kVersion = 1;
/// Sanity ceilings: a handoff describes one client's session, not an
/// arbitrary blob. Shapes beyond these are corruption by construction.
constexpr std::size_t kMaxAps = 4096;
constexpr std::size_t kMaxFrames = 65536;
constexpr std::size_t kMaxDim = 65536;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_cplx(std::vector<std::uint8_t>& out, const cplx& v) {
  put_f64(out, v.real());
  put_f64(out, v.imag());
}

void put_cmatrix(std::vector<std::uint8_t>& out, const linalg::CMatrix& m) {
  put_u32(out, std::uint32_t(m.rows()));
  put_u32(out, std::uint32_t(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) put_cplx(out, m(r, c));
}

/// Bounds-checked cursor over the input; every get_* fails sticky once
/// the buffer runs short.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t k) {
    if (!ok || n - off < k) ok = false;
    return ok;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  cplx c64() {
    const double re = f64();
    const double im = f64();
    return {re, im};
  }
  bool matrix(linalg::CMatrix& m) {
    const std::size_t rows = u32();
    const std::size_t cols = u32();
    if (!ok || rows > kMaxDim || cols > kMaxDim || !need(rows * cols * 16))
      return ok = false;
    m = linalg::CMatrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) m(r, c) = c64();
    return ok;
  }
};

void put_frame(std::vector<std::uint8_t>& out, const phy::FrameCapture& f) {
  put_f64(out, f.timestamp_s);
  put_f64(out, f.snr_db);
  put_u32(out, std::uint32_t(f.client_id));
  put_u32(out, f.source_ap);
  put_u64(out, f.wire_seq);
  put_u32(out, std::uint32_t(f.element_ids.size()));
  for (std::size_t id : f.element_ids) put_u64(out, std::uint64_t(id));
  put_cmatrix(out, f.samples);
}

bool get_frame(Reader& r, phy::FrameCapture& f) {
  f.timestamp_s = r.f64();
  f.snr_db = r.f64();
  f.client_id = int(std::int32_t(r.u32()));
  f.source_ap = r.u32();
  f.wire_seq = r.u64();
  const std::size_t n_ids = r.u32();
  if (!r.ok || n_ids > kMaxDim || !r.need(n_ids * 8)) return r.ok = false;
  f.element_ids.resize(n_ids);
  for (std::size_t i = 0; i < n_ids; ++i)
    f.element_ids[i] = std::size_t(r.u64());
  return r.matrix(f.samples);
}

void put_subspace(std::vector<std::uint8_t>& out,
                  const linalg::SubspaceTrackerState& st) {
  const auto& b = st.basis;
  put_u32(out, std::uint32_t(b.m));
  put_u32(out, std::uint32_t(b.k));
  put_u32(out, std::uint32_t(b.num_signals));
  put_u32(out, b.exact ? 1 : 0);
  put_u32(out, std::uint32_t(b.re.size()));
  for (double v : b.re) put_f64(out, v);
  for (double v : b.im) put_f64(out, v);
  put_u32(out, std::uint32_t(b.eigenvalues.size()));
  for (double v : b.eigenvalues) put_f64(out, v);

  put_u32(out, std::uint32_t(st.m));
  put_u32(out, std::uint32_t(st.k));
  put_u32(out, std::uint32_t(st.w.size()));
  for (const cplx& v : st.w) put_cplx(out, v);
  put_cmatrix(out, st.last_full_v);
  put_f64(out, st.noise_ref);
  put_f64(out, st.last_residual);
  put_u64(out, st.since_full);
  put_u64(out, st.n_full);
  put_u64(out, st.n_tracked);
  put_u64(out, st.n_reseed);
  put_u64(out, st.period);
  put_f64(out, st.resid_early);
  put_f64(out, st.resid_late);
  put_u64(out, st.resid_early_n);
  put_u64(out, st.resid_late_n);
}

bool get_subspace(Reader& r, linalg::SubspaceTrackerState& st) {
  auto& b = st.basis;
  b.m = r.u32();
  b.k = r.u32();
  b.num_signals = r.u32();
  b.exact = r.u32() != 0;
  const std::size_t n_basis = r.u32();
  if (!r.ok || b.m > kMaxDim || b.k > kMaxDim || n_basis > kMaxDim * 2 ||
      !r.need(n_basis * 16))
    return r.ok = false;
  b.re.resize(n_basis);
  b.im.resize(n_basis);
  for (double& v : b.re) v = r.f64();
  for (double& v : b.im) v = r.f64();
  const std::size_t n_eig = r.u32();
  if (!r.ok || n_eig > kMaxDim || !r.need(n_eig * 8)) return r.ok = false;
  b.eigenvalues.resize(n_eig);
  for (double& v : b.eigenvalues) v = r.f64();

  st.m = r.u32();
  st.k = r.u32();
  const std::size_t n_w = r.u32();
  if (!r.ok || st.m > kMaxDim || st.k > kMaxDim || n_w > kMaxDim * 2 ||
      !r.need(n_w * 16))
    return r.ok = false;
  st.w.resize(n_w);
  for (cplx& v : st.w) v = r.c64();
  if (!r.matrix(st.last_full_v)) return false;
  st.noise_ref = r.f64();
  st.last_residual = r.f64();
  st.since_full = std::size_t(r.u64());
  st.n_full = r.u64();
  st.n_tracked = r.u64();
  st.n_reseed = r.u64();
  st.period = std::size_t(r.u64());
  st.resid_early = r.f64();
  st.resid_late = r.f64();
  st.resid_early_n = std::size_t(r.u64());
  st.resid_late_n = std::size_t(r.u64());
  return r.ok;
}

}  // namespace

std::vector<std::uint8_t> serialize_session(
    const service::LocationService::SessionState& st) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, std::uint32_t(st.client_id));
  put_u64(out, st.next_seq);

  put_u32(out, st.tracker.initialized ? 1 : 0);
  put_u32(out, st.tracker.last_rejected ? 1 : 0);
  put_f64(out, st.tracker.last_time);
  for (double v : st.tracker.state) put_f64(out, v);
  for (double v : st.tracker.cov) put_f64(out, v);

  put_u32(out, std::uint32_t(st.history.size()));
  for (const auto& ap_hist : st.history) {
    put_u32(out, std::uint32_t(ap_hist.size()));
    for (const auto& f : ap_hist) put_frame(out, f);
  }

  put_u32(out, std::uint32_t(st.subspace.size()));
  for (const auto& sub : st.subspace) put_subspace(out, sub);
  return out;
}

std::optional<service::LocationService::SessionState> deserialize_session(
    const std::vector<std::uint8_t>& bytes) {
  Reader r{bytes.data(), bytes.size()};
  if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;

  service::LocationService::SessionState st;
  st.client_id = int(std::int32_t(r.u32()));
  st.next_seq = r.u64();

  st.tracker.initialized = r.u32() != 0;
  st.tracker.last_rejected = r.u32() != 0;
  st.tracker.last_time = r.f64();
  for (double& v : st.tracker.state) v = r.f64();
  for (double& v : st.tracker.cov) v = r.f64();
  if (!r.ok) return std::nullopt;

  const std::size_t n_aps = r.u32();
  if (!r.ok || n_aps > kMaxAps) return std::nullopt;
  st.history.resize(n_aps);
  for (auto& ap_hist : st.history) {
    const std::size_t n_frames = r.u32();
    if (!r.ok || n_frames > kMaxFrames) return std::nullopt;
    ap_hist.resize(n_frames);
    for (auto& f : ap_hist)
      if (!get_frame(r, f)) return std::nullopt;
  }

  const std::size_t n_sub = r.u32();
  if (!r.ok || n_sub > kMaxAps) return std::nullopt;
  st.subspace.resize(n_sub);
  for (auto& sub : st.subspace)
    if (!get_subspace(r, sub)) return std::nullopt;

  // Exact-size contract, like the wire decoder: trailing bytes mean a
  // framing disagreement somewhere upstream.
  if (!r.ok || r.off != r.n) return std::nullopt;
  return st;
}

}  // namespace arraytrack::cluster
