// Authenticated inter-node byte-stream links.
//
// Federation nodes are connected by in-process byte-stream pipes that
// model a TCP-like transport: bytes arrive in order, but the stream may
// be cut (node kill), and a deterministic fault injector can drop,
// duplicate, reorder, bit-flip or truncate whole frames to exercise the
// failure paths. Every frame is an envelope:
//
//   u32 magic "LRTA" | u32 type | u64 envelope_seq | f64 time_s
//   | u32 ap_index | u32 payload_len | payload | 32-byte HMAC-SHA256 tag
//
// The tag covers everything before it, keyed per deployment (see
// auth.h); the envelope sequence is per-link monotone, so the receiver
// rejects duplicated or reordered frames as replays and counts forward
// jumps as gaps — the same discipline wire v1 applies per AP, applied
// here per link. A frame that fails the tag check (corruption,
// truncation, wrong key) is never parsed further: the receiver skips
// one byte and rescans for the magic, so one bad frame cannot poison
// the rest of the stream.
//
// Every envelope offered to send() lands in exactly one terminal
// counter: delivered, fault_dropped, auth_bad_tag, auth_replayed,
// lost_on_reset, or still buffered — the accounting invariant the
// fault-injection tier asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/auth.h"

namespace arraytrack::cluster {

enum class EnvelopeType : std::uint32_t {
  kData = 1,     ///< payload is one phy wire capture record
  kHandoff = 2,  ///< payload is one phy::HandoffRecord (shard migration)
};

struct Envelope {
  EnvelopeType type = EnvelopeType::kData;
  /// kData: the record's service-clock stamp and source AP (carried in
  /// the envelope so the receiving node can rebuild a
  /// TimedWireRecord without decoding first).
  double time_s = 0.0;
  std::uint32_t ap_index = 0;
  std::vector<std::uint8_t> payload;
};

/// Deterministic whole-frame fault injection on the send side. Rates
/// are per frame in [0, 1]; draws come from a seeded splitmix64 stream,
/// so a given (plan, traffic) pair always injects the same faults.
struct FaultPlan {
  double drop = 0.0;       ///< frame never enters the pipe (counted)
  double duplicate = 0.0;  ///< frame appended twice (replay at receiver)
  double reorder = 0.0;    ///< frame held back one send (replay at receiver)
  double corrupt = 0.0;    ///< one bit flipped past the magic (tag fails)
  double truncate = 0.0;   ///< tail bytes chopped (tag fails / stalls)
  std::uint64_t seed = 1;
  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           truncate > 0;
  }
};

struct LinkStats {
  std::uint64_t sent = 0;       ///< envelopes offered to send()
  std::uint64_t delivered = 0;  ///< envelopes returned by receive()
  std::uint64_t fault_dropped = 0;
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_reordered = 0;
  std::uint64_t fault_corrupted = 0;
  std::uint64_t fault_truncated = 0;
  std::uint64_t auth_bad_tag = 0;   ///< HMAC mismatch (corrupt/trunc/wrong key)
  std::uint64_t auth_replayed = 0;  ///< envelope seq <= newest accepted
  std::uint64_t seq_gaps = 0;       ///< missing envelopes implied by jumps
  std::uint64_t resync_bytes = 0;   ///< bytes skipped rescanning for magic
  std::uint64_t lost_on_reset = 0;  ///< parseable envelopes dropped by reset()
};

/// One unidirectional authenticated pipe. Single-threaded by design:
/// the cluster front tier drives both ends from its own thread (the
/// same discipline LocationService::submit assumes for its producer).
class Link {
 public:
  /// `tx_key` signs outgoing frames, `rx_key` verifies incoming ones;
  /// they differ only in wrong-key tests.
  explicit Link(std::vector<std::uint8_t> tx_key, FaultPlan faults = {});
  Link(std::vector<std::uint8_t> tx_key, std::vector<std::uint8_t> rx_key,
       FaultPlan faults = {});

  /// Frames, signs and appends one envelope (subject to the fault
  /// plan). The envelope sequence is stamped here.
  void send(const Envelope& env);

  /// Parses, verifies and strips every complete frame currently
  /// buffered, in stream order. Tag or replay failures are counted and
  /// skipped; an incomplete tail frame stays buffered for the next
  /// call.
  std::vector<Envelope> receive();

  /// Node-kill path: counts the parseable envelopes still in flight
  /// into lost_on_reset (tag failures into auth_bad_tag), clears the
  /// pipe, and rearms both ends at sequence zero for a restarted peer.
  void reset();

  const LinkStats& stats() const { return stats_; }
  /// Unconsumed bytes in the pipe (0 once receive() has drained it).
  std::size_t buffered_bytes() const { return buf_.size() - rd_ + held_.size(); }

 private:
  std::vector<std::uint8_t> frame(const Envelope& env);
  void append(std::vector<std::uint8_t> bytes);
  double draw();  // uniform [0, 1) from the seeded stream
  /// Parse loop shared by receive() and reset().
  std::vector<Envelope> parse(bool counting_lost);

  std::vector<std::uint8_t> tx_key_, rx_key_;
  FaultPlan faults_;
  std::uint64_t rng_;
  std::uint64_t tx_seq_ = 0;
  std::uint64_t rx_last_ = 0;
  bool rx_seen_ = false;
  std::vector<std::uint8_t> buf_;
  std::size_t rd_ = 0;
  /// Reorder hold-back: a framed envelope waiting to be appended after
  /// the next send (flushed by receive() so nothing is silently lost).
  std::vector<std::uint8_t> held_;
  LinkStats stats_;
};

}  // namespace arraytrack::cluster
