#include "cluster/cluster.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cluster/handoff.h"
#include "phy/wire.h"

namespace arraytrack::cluster {

namespace {

/// Keys are a deployment concern; the default only keeps the signing
/// path honest when the caller does not care about key management.
std::vector<std::uint8_t> default_key() {
  const char* k = "arraytrack-cluster-default-key";
  return std::vector<std::uint8_t>(k, k + 30);
}

void json_u64(std::string& out, const char* key, std::uint64_t v,
              bool& first) {
  out += first ? "\"" : ", \"";
  out += key;
  out += "\": ";
  out += std::to_string(v);
  first = false;
}

}  // namespace

Cluster::Cluster(SystemFactory factory, ClusterOptions opt)
    : factory_(std::move(factory)), opt_(std::move(opt)), bus_(opt_.delivery) {
  opt_.nodes = std::max<std::size_t>(1, opt_.nodes);
  opt_.cluster_shards = std::max<std::size_t>(1, opt_.cluster_shards);
  if (opt_.key.empty()) opt_.key = default_key();
  slots_.resize(opt_.nodes);
  for (std::size_t i = 0; i < slots_.size(); ++i) make_slot(i);
  recompute_shard_map();
}

Cluster::~Cluster() = default;

Cluster::Slot& Cluster::make_slot(std::size_t slot) {
  Slot& s = slots_[slot];
  s.system = factory_();
  if (!s.system) throw std::runtime_error("cluster: factory returned null");
  s.service =
      std::make_unique<service::LocationService>(s.system.get(), opt_.service);
  FaultPlan plan = opt_.faults;
  plan.seed = opt_.faults.seed + slot;  // independent per-link streams
  s.link = std::make_unique<Link>(opt_.key, plan);
  s.alive = true;
  return s;
}

std::size_t Cluster::alive_nodes() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.alive ? 1 : 0;
  return n;
}

bool Cluster::node_alive(std::size_t slot) const {
  return slot < slots_.size() && slots_[slot].alive;
}

service::LocationService* Cluster::node_service(std::size_t slot) {
  return node_alive(slot) ? slots_[slot].service.get() : nullptr;
}

const LinkStats& Cluster::link_stats(std::size_t slot) const {
  return slots_.at(slot).link->stats();
}

LinkStats Cluster::total_link_stats() const {
  LinkStats t;
  for (const auto& s : slots_) {
    if (!s.link) continue;
    const LinkStats& l = s.link->stats();
    t.sent += l.sent;
    t.delivered += l.delivered;
    t.fault_dropped += l.fault_dropped;
    t.fault_duplicated += l.fault_duplicated;
    t.fault_reordered += l.fault_reordered;
    t.fault_corrupted += l.fault_corrupted;
    t.fault_truncated += l.fault_truncated;
    t.auth_bad_tag += l.auth_bad_tag;
    t.auth_replayed += l.auth_replayed;
    t.seq_gaps += l.seq_gaps;
    t.resync_bytes += l.resync_bytes;
    t.lost_on_reset += l.lost_on_reset;
  }
  return t;
}

std::size_t Cluster::shard_of(int client_id) const {
  return std::size_t(std::uint32_t(client_id) * 2654435761u) %
         opt_.cluster_shards;
}

std::size_t Cluster::node_of(int client_id) const {
  return shard_map_[shard_of(client_id)];
}

namespace {

/// splitmix64 finalizer: the (shard, slot) weight for rendezvous
/// hashing.
std::uint64_t hrw_weight(std::uint64_t shard, std::uint64_t slot) {
  std::uint64_t z = shard * 0x9e3779b97f4a7c15ull + slot + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Cluster::recompute_shard_map() {
  // Canonical assignment by rendezvous (highest-random-weight) hashing:
  // shard s belongs to the alive slot with the largest hrw_weight(s,
  // slot). Depends only on the alive set — every front-tier replica
  // would agree, a re-join restores the exact pre-leave map — and it is
  // minimally disruptive: a membership change moves only the shards of
  // the slot that left or joined, never shards between survivors (a
  // survivor's winning weight is unaffected by other slots
  // disappearing or appearing). node_leave/node_join lean on that: they
  // migrate sessions touching the changed slot only.
  if (alive_nodes() == 0) throw std::runtime_error("cluster: no nodes alive");
  shard_map_.resize(opt_.cluster_shards);
  for (std::size_t s = 0; s < opt_.cluster_shards; ++s) {
    std::uint64_t best = 0;
    bool first = true;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].alive) continue;
      const std::uint64_t w = hrw_weight(s, i);
      if (first || w > best) {
        shard_map_[s] = i;
        best = w;
        first = false;
      }
    }
  }
}

void Cluster::ingest(
    const std::vector<service::LocationService::TimedWireRecord>& records) {
  for (const auto& rec : records) {
    ++stats_.records_in;
    const auto client =
        phy::WireFormat::peek_client(rec.bytes.data(), rec.bytes.size());
    if (!client || *client < 0) {
      // No trustworthy routing key: counted and dropped here rather
      // than burdening an arbitrary node with undecodable bytes.
      ++stats_.unroutable;
      continue;
    }
    Envelope env;
    env.type = EnvelopeType::kData;
    env.time_s = rec.time_s;
    env.ap_index = std::uint32_t(rec.ap_index);
    env.payload = rec.bytes;
    slots_[node_of(*client)].link->send(env);
  }
}

void Cluster::deliver_to_node(std::size_t slot) {
  Slot& s = slots_[slot];
  std::vector<Envelope> envs = s.link->receive();
  if (envs.empty()) return;
  std::vector<service::LocationService::TimedWireRecord> batch;
  auto flush_batch = [&] {
    if (batch.empty()) return;
    s.service->ingest_wire(batch);
    batch.clear();
  };
  for (Envelope& env : envs) {
    if (env.type == EnvelopeType::kData) {
      batch.push_back({env.time_s, env.ap_index, std::move(env.payload)});
      continue;
    }
    // A handoff is a barrier: records for the migrated client that were
    // sent after it must be ingested after the import.
    flush_batch();
    const auto rec =
        phy::decode_handoff(env.payload.data(), env.payload.size());
    if (!rec) {
      ++stats_.handoffs_rejected;
      continue;
    }
    const auto state = deserialize_session(rec->payload);
    if (!state || state->client_id != rec->client_id) {
      ++stats_.handoffs_rejected;
      continue;
    }
    s.service->import_session(*state);
    ++stats_.handoffs_applied;
  }
  flush_batch();
}

void Cluster::drain_node_fixes(std::size_t slot) {
  Slot& s = slots_[slot];
  for (const auto& fix : s.service->bus().drain_retained()) {
    auto [it, fresh] = publish_cursor_.try_emplace(
        fix.client_id, -std::numeric_limits<double>::infinity());
    if (!fresh && fix.frame_time_s <= it->second) {
      // Already published a fix at or past this frame time for this
      // client (e.g. a session rewound by a replayed handoff): exactly-
      // once delivery wins over re-emission.
      ++stats_.fixes_deduped;
      continue;
    }
    it->second = fix.frame_time_s;
    ++stats_.fixes_out;
    bus_.publish(fix);
  }
}

void Cluster::pump() {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].alive) deliver_to_node(i);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].alive) drain_node_fixes(i);
}

void Cluster::flush() {
  // Pump until a pass delivers nothing. (Not until the pipes are
  // byte-empty: a fault-truncated tail frame never completes and would
  // stall that condition forever.)
  for (;;) {
    const std::uint64_t before = total_link_stats().delivered;
    pump();
    if (total_link_stats().delivered == before) break;
  }
  for (auto& s : slots_)
    if (s.alive) s.service->flush();
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].alive) drain_node_fixes(i);
}

std::vector<delivery::Fix> Cluster::drain_fixes() {
  return bus_.drain_retained();
}

ClusterReport Cluster::run(
    const std::vector<service::LocationService::TimedWireRecord>& records) {
  ingest(records);
  flush();
  ClusterReport rep;
  rep.fixes = drain_fixes();
  std::sort(rep.fixes.begin(), rep.fixes.end(),
            [](const delivery::Fix& a, const delivery::Fix& b) {
              if (a.frame_time_s != b.frame_time_s)
                return a.frame_time_s < b.frame_time_s;
              if (a.client_id != b.client_id) return a.client_id < b.client_id;
              return a.seq < b.seq;
            });
  rep.duration_s =
      records.empty() ? 0.0 : records.back().time_s - records.front().time_s;
  rep.stats = stats_;
  rep.links = total_link_stats();
  return rep;
}

void Cluster::send_handoff(std::size_t from, std::size_t to, int client) {
  auto state = slots_[from].service->export_session(client);
  if (!state) return;  // no session or still busy; nothing to move
  phy::HandoffRecord rec;
  rec.client_id = client;
  rec.seq = ++handoff_seq_;
  rec.payload = serialize_session(*state);
  Envelope env;
  env.type = EnvelopeType::kHandoff;
  env.payload = phy::encode_handoff(rec);
  slots_[to].link->send(env);
  ++stats_.handoffs_sent;
}

void Cluster::node_leave(std::size_t slot) {
  if (!node_alive(slot) || alive_nodes() <= 1)
    throw std::runtime_error("cluster: cannot retire slot");
  ++stats_.node_leaves;
  // Settle the departing node: deliver what its link holds, finish its
  // queued jobs, publish its fixes.
  pump();
  Slot& s = slots_[slot];
  s.service->flush();
  drain_node_fixes(slot);

  // Retire the slot from the map first so each session's new owner is
  // the post-departure one, then ship the sessions over that owner's
  // link (sorted for a deterministic handoff order).
  s.alive = false;
  recompute_shard_map();
  std::vector<int> clients = s.service->session_clients();
  for (int client : clients) send_handoff(slot, node_of(client), client);
  s.service.reset();
  s.system.reset();
  s.link->reset();
  // Deliver the handoffs now; routing already points at the new owners.
  pump();
}

void Cluster::node_join(std::size_t slot) {
  if (slot >= slots_.size() || slots_[slot].alive)
    throw std::runtime_error("cluster: slot not joinable");
  ++stats_.node_joins;
  // Donors must be settled before their sessions can be exported (a
  // queued job pins its session).
  flush();
  make_slot(slot);
  recompute_shard_map();
  // Migrate the sessions of every shard that changed owner (under
  // rendezvous hashing, exactly the shards the new node wins).
  for (std::size_t donor = 0; donor < slots_.size(); ++donor) {
    if (donor == slot || !slots_[donor].alive) continue;
    for (int client : slots_[donor].service->session_clients()) {
      const std::size_t owner = node_of(client);
      if (owner != donor) send_handoff(donor, owner, client);
    }
  }
  pump();
}

void Cluster::node_kill(std::size_t slot) {
  if (!node_alive(slot) || alive_nodes() <= 1)
    throw std::runtime_error("cluster: cannot kill slot");
  ++stats_.node_kills;
  Slot& s = slots_[slot];
  // No goodbye: sessions, queued jobs and buffered link traffic die
  // with the node. Fixes the node already committed to its bus are
  // published posthumously — they were real results.
  stats_.sessions_lost += s.service->session_clients().size();
  drain_node_fixes(slot);
  // Destruction completes in-flight jobs internally, but their fixes
  // land on a bus nobody drains again — from the cluster's view they
  // died with the node.
  s.service.reset();
  s.system.reset();
  s.link->reset();  // in-flight envelopes -> lost_on_reset
  s.alive = false;
  recompute_shard_map();
}

void Cluster::node_restart(std::size_t slot) {
  node_join(slot);
  --stats_.node_joins;
  ++stats_.node_restarts;
}

std::string Cluster::stats_json() const {
  std::string out = "{";
  bool first = true;
  json_u64(out, "nodes", slots_.size(), first);
  json_u64(out, "alive", alive_nodes(), first);
  json_u64(out, "cluster_shards", opt_.cluster_shards, first);
  json_u64(out, "records_in", stats_.records_in, first);
  json_u64(out, "unroutable", stats_.unroutable, first);
  json_u64(out, "fixes_out", stats_.fixes_out, first);
  json_u64(out, "fixes_deduped", stats_.fixes_deduped, first);
  json_u64(out, "handoffs_sent", stats_.handoffs_sent, first);
  json_u64(out, "handoffs_applied", stats_.handoffs_applied, first);
  json_u64(out, "handoffs_rejected", stats_.handoffs_rejected, first);
  json_u64(out, "sessions_lost", stats_.sessions_lost, first);
  json_u64(out, "node_joins", stats_.node_joins, first);
  json_u64(out, "node_leaves", stats_.node_leaves, first);
  json_u64(out, "node_kills", stats_.node_kills, first);
  json_u64(out, "node_restarts", stats_.node_restarts, first);
  const LinkStats l = total_link_stats();
  json_u64(out, "link_sent", l.sent, first);
  json_u64(out, "link_delivered", l.delivered, first);
  json_u64(out, "link_fault_dropped", l.fault_dropped, first);
  json_u64(out, "link_fault_duplicated", l.fault_duplicated, first);
  json_u64(out, "link_fault_reordered", l.fault_reordered, first);
  json_u64(out, "link_fault_corrupted", l.fault_corrupted, first);
  json_u64(out, "link_fault_truncated", l.fault_truncated, first);
  json_u64(out, "link_auth_bad_tag", l.auth_bad_tag, first);
  json_u64(out, "link_auth_replayed", l.auth_replayed, first);
  json_u64(out, "link_seq_gaps", l.seq_gaps, first);
  json_u64(out, "link_lost_on_reset", l.lost_on_reset, first);
  out += ", \"node_services\": [";
  bool first_node = true;
  for (const auto& s : slots_) {
    if (!first_node) out += ", ";
    first_node = false;
    out += s.alive ? s.service->stats_json() : "null";
  }
  out += "]}";
  return out;
}

}  // namespace arraytrack::cluster
