#include "cluster/auth.h"

#include <cstring>

namespace arraytrack::cluster {
namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void compress(std::uint32_t h[8], const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i)
    w[i] = std::uint32_t(block[4 * i]) << 24 |
           std::uint32_t(block[4 * i + 1]) << 16 |
           std::uint32_t(block[4 * i + 2]) << 8 |
           std::uint32_t(block[4 * i + 3]);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

}  // namespace

Digest sha256(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h[8];
  std::memcpy(h, kInit, sizeof(h));

  std::size_t off = 0;
  for (; off + 64 <= len; off += 64) compress(h, data + off);

  // Final block(s): message tail, the 0x80 terminator, zero padding and
  // the 64-bit big-endian bit length.
  std::uint8_t block[128] = {0};
  const std::size_t rem = len - off;
  if (rem) std::memcpy(block, data + off, rem);
  block[rem] = 0x80;
  const std::size_t total = rem + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = std::uint64_t(len) * 8;
  for (int i = 0; i < 8; ++i)
    block[total - 1 - i] = std::uint8_t(bits >> (8 * i));
  compress(h, block);
  if (total == 128) compress(h, block + 64);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = std::uint8_t(h[i] >> 24);
    out[4 * i + 1] = std::uint8_t(h[i] >> 16);
    out[4 * i + 2] = std::uint8_t(h[i] >> 8);
    out[4 * i + 3] = std::uint8_t(h[i]);
  }
  return out;
}

Digest hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                   const std::uint8_t* data, std::size_t len) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k[kBlock] = {0};
  if (key_len > kBlock) {
    const Digest kd = sha256(key, key_len);
    std::memcpy(k, kd.data(), kd.size());
  } else if (key_len) {
    std::memcpy(k, key, key_len);
  }

  std::vector<std::uint8_t> inner(kBlock + len);
  for (std::size_t i = 0; i < kBlock; ++i) inner[i] = k[i] ^ 0x36;
  if (len) std::memcpy(inner.data() + kBlock, data, len);
  const Digest ih = sha256(inner.data(), inner.size());

  std::uint8_t outer[kBlock + 32];
  for (std::size_t i = 0; i < kBlock; ++i) outer[i] = k[i] ^ 0x5c;
  std::memcpy(outer + kBlock, ih.data(), ih.size());
  return sha256(outer, sizeof(outer));
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace arraytrack::cluster
