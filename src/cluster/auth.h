// Per-record authentication for inter-node links (the ROADMAP's open
// wire-auth item, folded into the cluster layer).
//
// Federation pipes carry location-bearing records between nodes; a
// record that can be forged or replayed lets an attacker inject phantom
// clients or stale positions. Every link frame therefore carries an
// HMAC-SHA256 tag over its header and payload, keyed per deployment.
// The implementation is self-contained (FIPS 180-4 SHA-256 + RFC 2104
// HMAC) so the cluster has no crypto library dependency; it is used for
// integrity/authenticity tagging of in-process streams, not as a
// general-purpose crypto provider.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace arraytrack::cluster {

using Digest = std::array<std::uint8_t, 32>;

/// SHA-256 of `len` bytes at `data` (FIPS 180-4).
Digest sha256(const std::uint8_t* data, std::size_t len);

/// HMAC-SHA256 (RFC 2104) of `len` bytes at `data` under `key`. Keys
/// longer than the 64-byte block are pre-hashed, shorter ones are
/// zero-padded, per the RFC.
Digest hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                   const std::uint8_t* data, std::size_t len);

inline Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                          const std::uint8_t* data, std::size_t len) {
  return hmac_sha256(key.data(), key.size(), data, len);
}

/// Constant-time tag comparison: a timing oracle on the tag check
/// would let an attacker forge tags byte by byte.
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace arraytrack::cluster
