// Multi-node federation front tier.
//
// One LocationService scales to a worker pool; this layer scales to a
// fleet of them. A Cluster owns N backend node slots, each holding its
// own core::System (identically configured and seeded, so calibration
// and search grids agree) and its own service::LocationService, fed
// through an authenticated byte-stream link (link.h) carrying wire v1
// capture records and handoff records:
//
//   ingest(records) -> peek client id -> cluster shard (Knuth hash)
//     -> shard map -> node link (signed kData envelope)
//   pump() -> per node: link.receive() -> ingest_wire()
//          -> kHandoff envelopes -> deserialize -> import_session()
//          -> drain node fixes -> per-client dedupe -> front FixBus
//
// Membership. Shards are assigned canonically by rendezvous hashing —
// shard s belongs to the alive slot with the highest (s, slot) hash
// weight — so the assignment depends only on the alive set, never on
// the history of joins and leaves, and a membership change moves only
// the changed slot's shards, never shards between survivors. On a
// graceful leave (and for shards a join takes over), the affected
// sessions are exported, serialized (handoff.h) and shipped to their
// new owner over its link, so trackers continue bit-for-bit. A kill
// loses the node's sessions and whatever its link still buffered, all
// of it counted; re-heard clients then start fresh sessions — the
// convergence the fault tier asserts.
//
// Determinism. Each client's session lives wholly on one node, every
// node service runs under the virtual clock, and the front tier drives
// everything from one thread — so under light load the cluster's
// sorted fix set is byte-identical across 1/2/4 nodes, worker counts,
// batch widths, and scripted leave/join (faults off), matching a
// single-service run of the same records.
//
// No fix is published twice: the front tier keeps a per-client
// frame-time cursor and drops (and counts) anything at or behind it,
// which also defuses a replayed-then-rewound session double-emitting
// after a duplicated handoff.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "core/arraytrack.h"
#include "delivery/bus.h"
#include "service/service.h"

namespace arraytrack::cluster {

struct ClusterOptions {
  /// Backend node slots (fixed; membership toggles slots alive/dead).
  std::size_t nodes = 2;
  /// Cluster-level shard count for the client -> node map. More shards
  /// mean finer-grained handoff on membership change.
  std::size_t cluster_shards = 64;
  /// Per-node service configuration (virtual_clock recommended; the
  /// cluster inherits its determinism from the node services).
  service::ServiceOptions service;
  /// HMAC key for every link; a default key is installed when empty.
  std::vector<std::uint8_t> key;
  /// Fault plan applied to each front->node link (seed is offset by
  /// the slot index so the streams draw independently).
  FaultPlan faults;
  /// Front-tier fix bus configuration.
  delivery::BusOptions delivery;
};

struct ClusterStats {
  std::uint64_t records_in = 0;   ///< records offered to ingest()
  std::uint64_t unroutable = 0;   ///< no readable client id in the header
  std::uint64_t fixes_out = 0;    ///< published on the front bus
  std::uint64_t fixes_deduped = 0;  ///< dropped by the per-client cursor
  std::uint64_t handoffs_sent = 0;
  std::uint64_t handoffs_applied = 0;
  std::uint64_t handoffs_rejected = 0;  ///< bad record or payload
  std::uint64_t sessions_lost = 0;      ///< sessions destroyed by a kill
  std::uint64_t node_joins = 0;
  std::uint64_t node_leaves = 0;
  std::uint64_t node_kills = 0;
  std::uint64_t node_restarts = 0;
};

struct ClusterReport {
  /// Sorted by (frame_time, client, seq), comparable across node and
  /// worker counts like ServiceReport::fixes.
  std::vector<delivery::Fix> fixes;
  double duration_s = 0.0;
  ClusterStats stats;
  /// Aggregated link-level accounting across every slot's link.
  LinkStats links;

  double fix_rate_hz() const {
    return duration_s > 0.0 ? double(fixes.size()) / duration_s : 0.0;
  }
};

class Cluster {
 public:
  /// Builds one backend System per node. Factories must produce
  /// identically configured and seeded systems — node-local calibration
  /// must agree or fixes diverge across shard placements.
  using SystemFactory = std::function<std::unique_ptr<core::System>()>;

  Cluster(SystemFactory factory, ClusterOptions opt);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterOptions& options() const { return opt_; }
  const ClusterStats& stats() const { return stats_; }
  std::size_t num_slots() const { return slots_.size(); }
  std::size_t alive_nodes() const;
  bool node_alive(std::size_t slot) const;
  /// The slot's service; nullptr while the slot is dead.
  service::LocationService* node_service(std::size_t slot);
  const LinkStats& link_stats(std::size_t slot) const;
  /// Sum of every slot's link counters.
  LinkStats total_link_stats() const;

  /// Front-tier fix bus: cluster-wide fixes, zones, history queries.
  delivery::FixBus& bus() { return bus_; }

  /// Cluster shard of a client (Knuth hash, like the in-service
  /// sharding) and its current owner slot.
  std::size_t shard_of(int client_id) const;
  std::size_t node_of(int client_id) const;

  /// Routes each record to its owner node's link by the client id
  /// peeked from the record header. Unroutable records are counted and
  /// dropped (never guessed at).
  void ingest(
      const std::vector<service::LocationService::TimedWireRecord>& records);

  /// Delivers buffered link traffic into every alive node (capture
  /// records to ingest_wire, handoffs to import_session) and drains
  /// node fixes through the dedupe cursor onto the front bus. Stepped
  /// and batched drives admit the same jobs under the virtual clock as
  /// long as steps land on capture-event boundaries (the records of
  /// one transmit must reach the node in one ingest batch to group
  /// into one job — the service's own wire-ingest contract).
  void pump();

  /// pump() until the links are quiet, then flush every node service
  /// and drain the remaining fixes.
  void flush();

  /// Removes and returns the front bus's retained fixes (publish
  /// order). flush() first for a complete set.
  std::vector<delivery::Fix> drain_fixes();

  /// ingest + flush + sorted report, the cluster analogue of
  /// LocationService::run_wire.
  ClusterReport run(
      const std::vector<service::LocationService::TimedWireRecord>& records);

  // ---- membership ----

  /// Graceful departure: flushes the slot, hands every session off to
  /// its new owner over that owner's link, retires the slot.
  void node_leave(std::size_t slot);
  /// Brings a dead slot (back) up with a fresh service and takes over
  /// its canonical shards, migrating their sessions from current
  /// owners via handoff.
  void node_join(std::size_t slot);
  /// Crash: the slot's sessions and buffered link traffic are lost
  /// (counted), no handoff. Surviving slots take over its shards.
  void node_kill(std::size_t slot);
  /// node_join for a previously killed slot (counted separately).
  void node_restart(std::size_t slot);

  /// Cluster counters plus per-slot link and service stats, one flat
  /// JSON object (for BENCH_cluster.json and the sim tool).
  std::string stats_json() const;

 private:
  struct Slot {
    std::unique_ptr<core::System> system;
    std::unique_ptr<service::LocationService> service;
    std::unique_ptr<Link> link;
    bool alive = false;
  };

  void recompute_shard_map();
  Slot& make_slot(std::size_t slot);
  /// Exports `client` from `from` and ships it to `to`'s link.
  void send_handoff(std::size_t from, std::size_t to, int client);
  void drain_node_fixes(std::size_t slot);
  void deliver_to_node(std::size_t slot);

  SystemFactory factory_;
  ClusterOptions opt_;
  std::vector<Slot> slots_;
  /// cluster shard -> alive slot index.
  std::vector<std::size_t> shard_map_;
  std::uint64_t handoff_seq_ = 0;
  /// Per-client newest published frame time (the no-double-publish
  /// cursor).
  std::map<int, double> publish_cursor_;
  delivery::FixBus bus_;
  ClusterStats stats_;
};

}  // namespace arraytrack::cluster
