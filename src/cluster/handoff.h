// Session-state serialization for shard handoff.
//
// When a shard moves between federation nodes (join, graceful leave,
// rebalance), the client sessions riding on it move too: the smoothing
// tracker's Kalman state, the per-AP subspace-tracker states, the
// wire-path frame history and the fix sequence cursor. This module
// flattens a service::LocationService::SessionState into bytes and
// back.
//
// Unlike the capture wire format, nothing here is quantized: every
// double travels as its exact bit pattern, because the receiving node
// must continue the fix stream bit-for-bit (the byte-identical
// cluster determinism tests depend on it). The payload rides inside a
// phy::HandoffRecord, which rides inside a signed link envelope — this
// layer never sees untrusted bytes that passed no tag check, but it
// still bounds-checks everything (a handoff from a skewed peer version
// must fail cleanly, not overrun).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "service/service.h"

namespace arraytrack::cluster {

std::vector<std::uint8_t> serialize_session(
    const service::LocationService::SessionState& st);

/// nullopt on truncated input, bad magic/version, or an impossible
/// shape (the deserializer never trusts a length field it has not
/// checked against the remaining bytes).
std::optional<service::LocationService::SessionState> deserialize_session(
    const std::vector<std::uint8_t>& bytes);

}  // namespace arraytrack::cluster
