// Carrier frequency offset (CFO) estimation and correction.
//
// A client's oscillator is off by up to +-20 ppm (+-48.7 kHz at
// 2.437 GHz), rotating the received constellation. Two facts matter
// for ArrayTrack:
//  * CFO is common-mode across the AP's antennas, so the spatial
//    covariance Rxx — and therefore every AoA spectrum — is unaffected.
//    (dsp_cfo_test verifies this invariance.)
//  * The Schmidl-Cox autocorrelation P(d) over repeated training
//    symbols carries the CFO in its phase: angle(P) = 2*pi*df*Tsym,
//    which is the classic estimator implemented here.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::dsp {

/// Applies a frequency offset `df_hz` to a sample stream at
/// `sample_rate_hz` (what the client's oscillator does to the signal).
std::vector<cplx> apply_cfo(const std::vector<cplx>& x, double df_hz,
                            double sample_rate_hz, double initial_phase = 0.0);

/// Schmidl-Cox CFO estimator over a repeated-symbol section starting at
/// `offset`: correlates each sample with its copy `period` samples
/// later across `span` samples. Unambiguous range is
/// +-sample_rate / (2 * period) — +-625 kHz for the 16-sample short
/// training symbol at 20 Msps base rate (32 samples at 40 Msps).
///
/// Returns the estimated offset in Hz.
double estimate_cfo(const std::vector<cplx>& x, std::size_t offset,
                    std::size_t period, std::size_t span,
                    double sample_rate_hz);

/// Removes an estimated offset: y[n] = x[n] * exp(-j*2*pi*df*n/fs).
std::vector<cplx> correct_cfo(const std::vector<cplx>& x, double df_hz,
                              double sample_rate_hz);

/// Parts-per-million helper: df = ppm * 1e-6 * carrier.
double ppm_to_hz(double ppm, double carrier_hz);

}  // namespace arraytrack::dsp
