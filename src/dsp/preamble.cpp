#include "dsp/preamble.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "dsp/fft.h"

namespace arraytrack::dsp {
namespace {

// 802.11a/g short training sequence, frequency domain, subcarriers
// -26..+26 (53 entries, DC in the middle), scaled by sqrt(13/6).
std::vector<cplx> sts_freq() {
  const double a = std::sqrt(13.0 / 6.0);
  const cplx p{a, a}, m{-a, -a}, z{0.0, 0.0};
  return {z, z, p, z, z, z, m, z, z, z, p, z, z, z, m, z, z, z,
          m, z, z, z, p, z, z, z, z, z, z, z, m, z, z, z, m, z,
          z, z, p, z, z, z, p, z, z, z, p, z, z, z, p, z, z};
}

// 802.11a/g long training sequence, frequency domain, subcarriers
// -26..+26 (DC = 0).
std::vector<cplx> lts_freq() {
  const auto v = [](double r) { return cplx{r, 0.0}; };
  const std::vector<double> seq = {
      1,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1,
      1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  0,  1,
      -1, -1, 1,  1,  -1, 1,  -1, 1,  -1, -1, -1, -1, -1, 1,
      1,  -1, -1, 1,  -1, 1,  -1, 1,  1,  1,  1};
  std::vector<cplx> out;
  out.reserve(seq.size());
  for (double r : seq) out.push_back(v(r));
  return out;
}

// Builds one time-domain period of length 64*oversample from a
// -26..+26 subcarrier map using an IFFT of size 64*oversample (upper
// bins zero => ideal band-limited oversampling).
std::vector<cplx> synth_period(const std::vector<cplx>& freq53,
                               std::size_t oversample) {
  const std::size_t nfft = 64 * oversample;
  std::vector<cplx> bins(nfft, cplx{0.0, 0.0});
  // freq53[i] corresponds to subcarrier k = i - 26.
  for (std::size_t i = 0; i < freq53.size(); ++i) {
    const int k = int(i) - 26;
    if (k == 0) {
      bins[0] = freq53[i];
    } else if (k > 0) {
      bins[std::size_t(k)] = freq53[i];
    } else {
      bins[std::size_t(int(nfft) + k)] = freq53[i];
    }
  }
  auto time = ifft(bins);
  // ifft carries 1/N; rescale so oversampling does not change amplitude.
  for (auto& s : time) s *= double(nfft);
  return time;
}

void scale_to_unit_power(std::vector<cplx>& x) {
  double p = 0.0;
  for (const auto& s : x) p += std::norm(s);
  if (p == 0.0) return;
  const double g = std::sqrt(double(x.size()) / p);
  for (auto& s : x) s *= g;
}

}  // namespace

PreambleGenerator::PreambleGenerator(std::size_t oversample)
    : oversample_(oversample) {
  if (!is_power_of_two(oversample))
    throw std::invalid_argument("PreambleGenerator: oversample must be 2^k");

  // The STS has period 16 at base rate: the 64-sample synthesis repeats
  // 4x, so take the first 16*oversample samples.
  auto sts64 = synth_period(sts_freq(), oversample_);
  sts_.assign(sts64.begin(),
              sts64.begin() + std::ptrdiff_t(sts_period()));
  lts_ = synth_period(lts_freq(), oversample_);

  sts_section_.clear();
  for (std::size_t r = 0; r < PreambleTiming::kNumSts; ++r)
    sts_section_.insert(sts_section_.end(), sts_.begin(), sts_.end());

  preamble_ = sts_section_;
  // Guard interval: cyclic prefix = last 32*oversample samples of LTS.
  const std::size_t gi = PreambleTiming::kGuard * oversample_;
  preamble_.insert(preamble_.end(), lts_.end() - std::ptrdiff_t(gi),
                   lts_.end());
  for (std::size_t r = 0; r < PreambleTiming::kNumLts; ++r)
    preamble_.insert(preamble_.end(), lts_.begin(), lts_.end());

  // Normalize the whole preamble (and the views used by detectors) to
  // unit average power so SNR settings are well defined.
  double p = 0.0;
  for (const auto& s : preamble_) p += std::norm(s);
  const double g = std::sqrt(double(preamble_.size()) / p);
  for (auto& s : preamble_) s *= g;
  for (auto& s : sts_) s *= g;
  for (auto& s : lts_) s *= g;
  for (auto& s : sts_section_) s *= g;

  // FFT(long_symbol())[bin(k)] == g * nfft * L_k for the synthesis
  // above, so storing that product makes "received spectrum divided by
  // lts_frequency_symbol" return the channel gain directly.
  lts_freq_ = lts_freq();
  for (auto& s : lts_freq_) s *= g * double(64 * oversample_);
}

cplx PreambleGenerator::lts_frequency_symbol(int k) const {
  if (k < -26 || k > 26) return cplx{0.0, 0.0};
  return lts_freq_[std::size_t(k + 26)];
}

std::vector<cplx> PreambleGenerator::frame(std::size_t body_samples,
                                           unsigned seed) const {
  std::vector<cplx> out = preamble_;
  out.reserve(out.size() + body_samples);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> bit(0, 1);
  const double amp = 1.0 / std::sqrt(2.0);
  std::vector<cplx> body;
  body.reserve(body_samples);
  for (std::size_t i = 0; i < body_samples; ++i)
    body.push_back(cplx{bit(rng) ? amp : -amp, bit(rng) ? amp : -amp});
  scale_to_unit_power(body);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace arraytrack::dsp
