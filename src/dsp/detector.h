// Packet detection on raw IQ streams (paper section 2.1, 4.3.4).
//
// Two detectors are provided:
//  * SchmidlCoxDetector — the classic autocorrelation plateau detector
//    the paper's FPGA design modifies. Robust to CFO, cheap, but its
//    metric degrades at very low SNR.
//  * MatchedFilterDetector — cross-correlates against the known short
//    training sequence; "complex conjugate with the known training
//    symbol generates peaks which are very easy to detect even at low
//    SNR" (paper section 4.3). Using all ten short symbols this detects
//    down to about -10 dB as the paper reports.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::dsp {

struct Detection {
  std::size_t start_index = 0;  // index of the first preamble sample
  double metric = 0.0;          // detector-specific confidence in [0,1]
};

/// Schmidl-Cox autocorrelation detector over the short training symbols.
class SchmidlCoxDetector {
 public:
  /// `period` is the STS period in samples at the stream's sample rate
  /// (16 * oversample). `threshold` is the plateau metric trigger level.
  explicit SchmidlCoxDetector(std::size_t period, double threshold = 0.6);

  /// Timing metric M(d) = |P(d)|^2 / R(d)^2 for every valid offset.
  std::vector<double> metric(const std::vector<cplx>& stream) const;

  /// First detection at or after `from`, if any. The returned start
  /// index is the beginning of the detected plateau.
  std::optional<Detection> detect(const std::vector<cplx>& stream,
                                  std::size_t from = 0) const;

  std::size_t period() const { return period_; }

 private:
  std::size_t period_;
  double threshold_;
};

/// Normalized matched filter against a known reference sequence.
class MatchedFilterDetector {
 public:
  /// `reference` is typically the full ten-symbol short training
  /// section. `threshold` applies to the normalized correlation in [0,1].
  MatchedFilterDetector(std::vector<cplx> reference, double threshold = 0.5);

  /// Normalized correlation magnitude at each alignment offset.
  std::vector<double> correlation(const std::vector<cplx>& stream) const;

  /// Best alignment at or after `from` whose normalized correlation
  /// clears the threshold.
  std::optional<Detection> detect(const std::vector<cplx>& stream,
                                  std::size_t from = 0) const;

  /// All local correlation maxima above threshold, each at least
  /// `min_separation` samples apart — used for collision scenarios
  /// where two preambles occupy one capture.
  std::vector<Detection> detect_all(const std::vector<cplx>& stream,
                                    std::size_t min_separation) const;

 private:
  std::vector<cplx> reference_;
  double threshold_;
  double ref_energy_;
};

}  // namespace arraytrack::dsp
