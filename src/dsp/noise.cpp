#include "dsp/noise.h"

#include <cmath>

namespace arraytrack::dsp {

double mean_power(const std::vector<cplx>& x) {
  if (x.empty()) return 0.0;
  double p = 0.0;
  for (const auto& s : x) p += std::norm(s);
  return p / double(x.size());
}

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

cplx AwgnSource::sample(double power) {
  const double sigma = std::sqrt(power / 2.0);
  return cplx{sigma * gauss_(rng_), sigma * gauss_(rng_)};
}

void AwgnSource::add_noise(std::vector<cplx>& signal, double snr_db) {
  double sig_power = mean_power(signal);
  if (sig_power == 0.0) sig_power = 1.0;
  const double noise_power = sig_power / db_to_linear(snr_db);
  for (auto& s : signal) s += sample(noise_power);
}

std::vector<cplx> AwgnSource::generate(std::size_t n, double power) {
  std::vector<cplx> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(power));
  return out;
}

}  // namespace arraytrack::dsp
