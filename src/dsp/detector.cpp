#include "dsp/detector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arraytrack::dsp {

SchmidlCoxDetector::SchmidlCoxDetector(std::size_t period, double threshold)
    : period_(period), threshold_(threshold) {
  if (period_ == 0) throw std::invalid_argument("SchmidlCox: period == 0");
}

std::vector<double> SchmidlCoxDetector::metric(
    const std::vector<cplx>& stream) const {
  const std::size_t l = period_;
  if (stream.size() < 2 * l) return {};
  const std::size_t n = stream.size() - 2 * l + 1;
  std::vector<double> m(n, 0.0);

  // Sliding P(d) = sum_{k<L} conj(r[d+k]) r[d+k+L] and
  // R(d) = sum_{k<L} |r[d+k+L]|^2, updated incrementally.
  cplx p{0.0, 0.0};
  double r = 0.0;
  for (std::size_t k = 0; k < l; ++k) {
    p += std::conj(stream[k]) * stream[k + l];
    r += std::norm(stream[k + l]);
  }
  for (std::size_t d = 0;; ++d) {
    m[d] = r > 0.0 ? std::norm(p) / (r * r) : 0.0;
    if (d + 1 >= n) break;
    p -= std::conj(stream[d]) * stream[d + l];
    p += std::conj(stream[d + l]) * stream[d + 2 * l];
    r -= std::norm(stream[d + l]);
    r += std::norm(stream[d + 2 * l]);
  }
  return m;
}

std::optional<Detection> SchmidlCoxDetector::detect(
    const std::vector<cplx>& stream, std::size_t from) const {
  const auto m = metric(stream);
  // Require the metric to stay above threshold for half an STS period:
  // single-sample excursions from noise are not a plateau.
  const std::size_t hold = std::max<std::size_t>(1, period_ / 2);
  std::size_t run = 0;
  for (std::size_t d = from; d < m.size(); ++d) {
    if (m[d] >= threshold_) {
      if (++run >= hold) {
        const std::size_t start = d + 1 - run;
        return Detection{start, std::min(m[start], 1.0)};
      }
    } else {
      run = 0;
    }
  }
  return std::nullopt;
}

MatchedFilterDetector::MatchedFilterDetector(std::vector<cplx> reference,
                                             double threshold)
    : reference_(std::move(reference)), threshold_(threshold) {
  if (reference_.empty())
    throw std::invalid_argument("MatchedFilter: empty reference");
  ref_energy_ = 0.0;
  for (const auto& s : reference_) ref_energy_ += std::norm(s);
}

std::vector<double> MatchedFilterDetector::correlation(
    const std::vector<cplx>& stream) const {
  if (stream.size() < reference_.size()) return {};
  const std::size_t n = stream.size() - reference_.size() + 1;
  std::vector<double> out(n, 0.0);

  // Window energy, maintained incrementally for normalization.
  double win_energy = 0.0;
  for (std::size_t k = 0; k < reference_.size(); ++k)
    win_energy += std::norm(stream[k]);

  for (std::size_t d = 0; d < n; ++d) {
    cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < reference_.size(); ++k)
      acc += std::conj(reference_[k]) * stream[d + k];
    const double denom = std::sqrt(ref_energy_ * std::max(win_energy, 1e-30));
    out[d] = std::abs(acc) / denom;
    if (d + 1 < n) {
      win_energy -= std::norm(stream[d]);
      win_energy += std::norm(stream[d + reference_.size()]);
    }
  }
  return out;
}

std::optional<Detection> MatchedFilterDetector::detect(
    const std::vector<cplx>& stream, std::size_t from) const {
  const auto c = correlation(stream);
  // Find the first local maximum above threshold, then refine to the
  // best value within one reference length (the true alignment peak).
  for (std::size_t d = from; d < c.size(); ++d) {
    if (c[d] < threshold_) continue;
    std::size_t best = d;
    const std::size_t end = std::min(c.size(), d + reference_.size());
    for (std::size_t k = d; k < end; ++k)
      if (c[k] > c[best]) best = k;
    return Detection{best, std::min(c[best], 1.0)};
  }
  return std::nullopt;
}

std::vector<Detection> MatchedFilterDetector::detect_all(
    const std::vector<cplx>& stream, std::size_t min_separation) const {
  const auto c = correlation(stream);
  std::vector<Detection> out;
  std::size_t d = 0;
  while (d < c.size()) {
    if (c[d] >= threshold_) {
      std::size_t best = d;
      const std::size_t end = std::min(c.size(), d + reference_.size());
      for (std::size_t k = d; k < end; ++k)
        if (c[k] > c[best]) best = k;
      out.push_back(Detection{best, std::min(c[best], 1.0)});
      d = best + std::max<std::size_t>(min_separation, 1);
    } else {
      ++d;
    }
  }
  return out;
}

}  // namespace arraytrack::dsp
