// 802.11 OFDM PLCP preamble synthesis (Fig. 2 of the paper).
//
// The preamble is ten identical short training symbols (0.8 us each),
// a guard interval, and two identical long training symbols (3.2 us
// each): 16 us total. ArrayTrack's packet detector triggers on the
// short symbols and its diversity-synthesis switch toggles antennas
// between the two long symbols, so we synthesize the exact standard
// sequences rather than a stand-in.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::dsp {

/// 802.11 OFDM timing constants at the base 20 Msps rate.
struct PreambleTiming {
  static constexpr std::size_t kBaseRateHz = 20'000'000;
  static constexpr std::size_t kStsPeriod = 16;    // samples per short symbol
  static constexpr std::size_t kNumSts = 10;       // s0..s9
  static constexpr std::size_t kGuard = 32;        // GI before the LTS pair
  static constexpr std::size_t kLtsPeriod = 64;    // samples per long symbol
  static constexpr std::size_t kNumLts = 2;        // S0, S1
  static constexpr std::size_t kTotal =
      kNumSts * kStsPeriod + kGuard + kNumLts * kLtsPeriod;  // 320 = 16 us
};

/// Synthesizes the standard preamble at an integer oversampling of the
/// 20 Msps base rate. ArrayTrack APs sample at 40 Msps (oversample=2).
class PreambleGenerator {
 public:
  /// `oversample` must be a power of two >= 1.
  explicit PreambleGenerator(std::size_t oversample = 2);

  std::size_t oversample() const { return oversample_; }
  double sample_rate_hz() const {
    return double(PreambleTiming::kBaseRateHz) * double(oversample_);
  }

  /// Samples per short training symbol at this rate.
  std::size_t sts_period() const {
    return PreambleTiming::kStsPeriod * oversample_;
  }
  /// Samples per long training symbol at this rate.
  std::size_t lts_period() const {
    return PreambleTiming::kLtsPeriod * oversample_;
  }

  /// Offset of long training symbol S0 / S1 within the preamble.
  std::size_t lts0_offset() const {
    return (PreambleTiming::kNumSts * PreambleTiming::kStsPeriod +
            PreambleTiming::kGuard) *
           oversample_;
  }
  std::size_t lts1_offset() const { return lts0_offset() + lts_period(); }

  /// One period of the short training symbol (16 base samples).
  const std::vector<cplx>& short_symbol() const { return sts_; }

  /// One period of the long training symbol (64 base samples).
  const std::vector<cplx>& long_symbol() const { return lts_; }

  /// The section of the preamble containing all ten short symbols.
  const std::vector<cplx>& short_section() const { return sts_section_; }

  /// The full 16 us preamble (10 STS + GI + 2 LTS), unit average power.
  const std::vector<cplx>& preamble() const { return preamble_; }

  /// Frequency-domain long-training symbol for subcarrier k
  /// (-26..26); 0 for unused bins including DC. Includes the
  /// generator's power-normalization scale, so dividing a received LTS
  /// spectrum by it yields CSI in the same units as the time samples.
  cplx lts_frequency_symbol(int k) const;

  /// Preamble followed by `body_samples` of pseudo-random QPSK "body"
  /// (deterministic per `seed`); handy for collision experiments where
  /// a second packet's preamble lands on the first packet's body.
  std::vector<cplx> frame(std::size_t body_samples, unsigned seed = 1) const;

 private:
  std::size_t oversample_;
  std::vector<cplx> sts_;          // one STS period
  std::vector<cplx> lts_;          // one LTS period
  std::vector<cplx> sts_section_;  // ten STS periods
  std::vector<cplx> preamble_;     // full preamble
  std::vector<cplx> lts_freq_;     // scaled LTS bins, index = k + 26
};

}  // namespace arraytrack::dsp
