#include "dsp/fft.h"

#include <cmath>
#include <stdexcept>

namespace arraytrack::dsp {
namespace {

// In-place iterative radix-2 Cooley-Tukey. sign = -1 forward, +1 inverse.
void fft_radix2(std::vector<cplx>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * kTwoPi / double(len);
    const cplx wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Direct O(n^2) DFT for non-power-of-two sizes.
std::vector<cplx> dft_direct(const std::vector<cplx>& x, int sign) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = sign * kTwoPi * double(k) * double(m) / double(n);
      acc += x[m] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::vector<cplx> fft(const std::vector<cplx>& x) {
  if (x.empty()) return {};
  if (!is_power_of_two(x.size())) return dft_direct(x, -1);
  std::vector<cplx> a = x;
  fft_radix2(a, -1);
  return a;
}

std::vector<cplx> ifft(const std::vector<cplx>& x) {
  if (x.empty()) return {};
  std::vector<cplx> a;
  if (!is_power_of_two(x.size())) {
    a = dft_direct(x, +1);
  } else {
    a = x;
    fft_radix2(a, +1);
  }
  const double inv = 1.0 / double(a.size());
  for (auto& v : a) v *= inv;
  return a;
}

std::vector<cplx> circular_xcorr(const std::vector<cplx>& a,
                                 const std::vector<cplx>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("circular_xcorr: size mismatch");
  // Correlation theorem: with ifft carrying the 1/N factor,
  // c[d] = sum_n conj(a[n]) b[n+d] = ifft( conj(fft(a)) .* fft(b) )[d].
  auto fa = fft(a);
  auto fb = fft(b);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] = std::conj(fa[i]) * fb[i];
  return ifft(fa);
}

}  // namespace arraytrack::dsp
