// Discrete Fourier transforms.
//
// The OFDM preamble synthesis path needs 64/128-point IFFTs; tests and
// benches use a few other sizes. Power-of-two lengths use iterative
// radix-2 Cooley-Tukey; other lengths fall back to a direct DFT (all
// our non-power-of-two uses are tiny).
#pragma once

#include <vector>

#include "linalg/types.h"

namespace arraytrack::dsp {

/// Forward DFT: X[k] = sum_n x[n] * exp(-j*2*pi*k*n/N). No scaling.
std::vector<cplx> fft(const std::vector<cplx>& x);

/// Inverse DFT with 1/N scaling, so ifft(fft(x)) == x.
std::vector<cplx> ifft(const std::vector<cplx>& x);

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Circular cross-correlation via frequency domain:
/// c[d] = sum_n conj(a[n]) * b[(n + d) mod N]. Sizes must match.
std::vector<cplx> circular_xcorr(const std::vector<cplx>& a,
                                 const std::vector<cplx>& b);

}  // namespace arraytrack::dsp
