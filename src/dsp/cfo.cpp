#include "dsp/cfo.h"

#include <cmath>
#include <stdexcept>

namespace arraytrack::dsp {

std::vector<cplx> apply_cfo(const std::vector<cplx>& x, double df_hz,
                            double sample_rate_hz, double initial_phase) {
  std::vector<cplx> out(x.size());
  const double step = kTwoPi * df_hz / sample_rate_hz;
  for (std::size_t n = 0; n < x.size(); ++n)
    out[n] = x[n] * std::exp(kJ * (initial_phase + step * double(n)));
  return out;
}

double estimate_cfo(const std::vector<cplx>& x, std::size_t offset,
                    std::size_t period, std::size_t span,
                    double sample_rate_hz) {
  if (period == 0) throw std::invalid_argument("estimate_cfo: period == 0");
  if (offset + span + period > x.size())
    throw std::invalid_argument("estimate_cfo: window exceeds stream");
  cplx p{0.0, 0.0};
  for (std::size_t k = 0; k < span; ++k)
    p += std::conj(x[offset + k]) * x[offset + k + period];
  // angle(P) = 2*pi * df * period / fs.
  return std::arg(p) * sample_rate_hz / (kTwoPi * double(period));
}

std::vector<cplx> correct_cfo(const std::vector<cplx>& x, double df_hz,
                              double sample_rate_hz) {
  return apply_cfo(x, -df_hz, sample_rate_hz);
}

double ppm_to_hz(double ppm, double carrier_hz) {
  return ppm * 1e-6 * carrier_hz;
}

}  // namespace arraytrack::dsp
