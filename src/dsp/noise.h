// Complex AWGN generation and SNR bookkeeping.
#pragma once

#include <random>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::dsp {

/// Average power (mean |x|^2) of a sample vector; 0 for empty input.
double mean_power(const std::vector<cplx>& x);

double db_to_linear(double db);
double linear_to_db(double linear);

/// Circularly-symmetric complex Gaussian noise source.
class AwgnSource {
 public:
  explicit AwgnSource(std::uint64_t seed) : rng_(seed) {}

  /// One noise sample with total variance `power` (power/2 per I/Q rail).
  cplx sample(double power);

  /// Adds noise in place such that mean_power(signal)/noise_power equals
  /// snr_db. A zero-power signal gets unit-power-referenced noise so a
  /// "silent" capture still contains a noise floor.
  void add_noise(std::vector<cplx>& signal, double snr_db);

  /// Noise vector of length n with the given per-sample power.
  std::vector<cplx> generate(std::size_t n, double power);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
  std::normal_distribution<double> gauss_{0.0, 1.0};
};

}  // namespace arraytrack::dsp
