// Two-antenna phase-difference AoA (the paper's equation 1).
//
// The free-space primer baseline: theta = arcsin((ph2 - ph1)/pi) for a
// half-wavelength pair. Breaks down badly under multipath — exactly the
// motivation for MUSIC — so it serves as the simplest comparison point.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "linalg/types.h"

namespace arraytrack::baselines {

/// Bearing estimate from one snapshot at two antennas spaced
/// lambda/2 apart along the local +x axis. Returns the local bearing
/// measured from the array axis, in [0, pi] (front half only; a pair
/// has the same mirror ambiguity as a full linear array), or nullopt
/// when the phase difference is out of the arcsin domain (pure noise).
std::optional<double> phase_difference_bearing(cplx x1, cplx x2);

/// Averaged estimate over an M x N snapshot matrix, using rows 0 and 1.
std::optional<double> phase_difference_bearing(const linalg::CMatrix& snapshots);

}  // namespace arraytrack::baselines
