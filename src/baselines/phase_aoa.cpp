#include "baselines/phase_aoa.h"

#include <cmath>
#include <stdexcept>

namespace arraytrack::baselines {

std::optional<double> phase_difference_bearing(cplx x1, cplx x2) {
  if (std::abs(x1) == 0.0 || std::abs(x2) == 0.0) return std::nullopt;
  // Our steering convention: element at +x/2 leads by pi*cos(theta)
  // relative to the element at -x/2 for arrival bearing theta from the
  // array axis, so delta = angle(x2) - angle(x1) = pi*cos(theta).
  const double delta = wrap_pi(std::arg(x2) - std::arg(x1));
  const double c = delta / kPi;
  if (c < -1.0 || c > 1.0) return std::nullopt;
  return std::acos(c);
}

std::optional<double> phase_difference_bearing(
    const linalg::CMatrix& snapshots) {
  if (snapshots.rows() < 2 || snapshots.cols() == 0)
    throw std::invalid_argument("phase_difference_bearing: need 2 rows");
  // Average the cross-correlation over snapshots, then take its phase:
  // more robust than averaging per-sample angles across wraps.
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < snapshots.cols(); ++k)
    acc += snapshots(1, k) * std::conj(snapshots(0, k));
  if (std::abs(acc) == 0.0) return std::nullopt;
  const double c = std::arg(acc) / kPi;
  if (c < -1.0 || c > 1.0) return std::nullopt;
  return std::acos(c);
}

}  // namespace arraytrack::baselines
