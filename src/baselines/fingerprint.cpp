#include "baselines/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arraytrack::baselines {

void RssiFingerprintDb::add(geom::Vec2 position,
                            std::vector<double> rssi_dbm) {
  if (!entries_.empty() && rssi_dbm.size() != entries_.front().rssi_dbm.size())
    throw std::invalid_argument("RssiFingerprintDb: AP count mismatch");
  entries_.push_back({position, std::move(rssi_dbm)});
}

std::optional<geom::Vec2> RssiFingerprintDb::locate(
    const std::vector<double>& rssi_dbm, std::size_t k) const {
  if (entries_.empty()) return std::nullopt;
  if (rssi_dbm.size() != entries_.front().rssi_dbm.size())
    throw std::invalid_argument("RssiFingerprintDb::locate: AP count mismatch");

  struct Scored {
    double dist2;
    std::size_t idx;
  };
  std::vector<Scored> scored;
  scored.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < rssi_dbm.size(); ++j) {
      const double e = rssi_dbm[j] - entries_[i].rssi_dbm[j];
      d2 += e * e;
    }
    scored.push_back({d2, i});
  }
  const std::size_t kk = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(kk),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.dist2 < b.dist2;
                    });
  geom::Vec2 acc{0.0, 0.0};
  for (std::size_t i = 0; i < kk; ++i)
    acc += entries_[scored[i].idx].position;
  return acc / double(kk);
}

void HorusFingerprintDb::add(
    geom::Vec2 position, const std::vector<std::vector<double>>& readings) {
  if (readings.empty())
    throw std::invalid_argument("HorusFingerprintDb: no readings");
  const std::size_t aps = readings.front().size();
  for (const auto& r : readings)
    if (r.size() != aps)
      throw std::invalid_argument("HorusFingerprintDb: ragged readings");
  if (!cells_.empty() && aps != cells_.front().mean_dbm.size())
    throw std::invalid_argument("HorusFingerprintDb: AP count mismatch");

  Cell cell;
  cell.position = position;
  cell.mean_dbm.assign(aps, 0.0);
  cell.var_db2.assign(aps, 0.0);
  for (const auto& r : readings)
    for (std::size_t j = 0; j < aps; ++j) cell.mean_dbm[j] += r[j];
  for (std::size_t j = 0; j < aps; ++j)
    cell.mean_dbm[j] /= double(readings.size());
  for (const auto& r : readings)
    for (std::size_t j = 0; j < aps; ++j) {
      const double e = r[j] - cell.mean_dbm[j];
      cell.var_db2[j] += e * e;
    }
  for (std::size_t j = 0; j < aps; ++j) {
    cell.var_db2[j] /= double(readings.size());
    // Quantization / sampling floor: whole-dB readings cannot support
    // a variance below ~1/12 dB^2, and a zero variance would make the
    // likelihood degenerate.
    cell.var_db2[j] = std::max(cell.var_db2[j], 0.5);
  }
  cells_.push_back(std::move(cell));
}

std::optional<geom::Vec2> HorusFingerprintDb::locate(
    const std::vector<double>& rssi_dbm, std::size_t k) const {
  if (cells_.empty()) return std::nullopt;
  if (rssi_dbm.size() != cells_.front().mean_dbm.size())
    throw std::invalid_argument("HorusFingerprintDb::locate: AP count");

  struct Scored {
    double log_like;
    std::size_t idx;
  };
  std::vector<Scored> scored;
  scored.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    double ll = 0.0;
    for (std::size_t j = 0; j < rssi_dbm.size(); ++j) {
      const double e = rssi_dbm[j] - cells_[i].mean_dbm[j];
      ll += -0.5 * e * e / cells_[i].var_db2[j] -
            0.5 * std::log(cells_[i].var_db2[j]);
    }
    scored.push_back({ll, i});
  }
  const std::size_t kk = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(kk),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.log_like > b.log_like;
                    });
  // Probability-weighted centroid over the top-k cells (normalize by
  // the best log-likelihood for numeric safety).
  const double top = scored.front().log_like;
  geom::Vec2 acc{0.0, 0.0};
  double wsum = 0.0;
  for (std::size_t i = 0; i < kk; ++i) {
    const double w = std::exp(scored[i].log_like - top);
    acc += cells_[scored[i].idx].position * w;
    wsum += w;
  }
  return acc / wsum;
}

}  // namespace arraytrack::baselines
