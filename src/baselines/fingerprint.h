// RADAR-style RSSI fingerprinting baseline (Bahl & Padmanabhan 2000).
//
// Offline phase: record the per-AP RSS vector on a training grid.
// Online phase: k-nearest-neighbors in signal space, averaging the
// training positions of the k best matches. Requires the expensive
// site survey ArrayTrack exists to avoid; included as the map-building
// comparison point.
#pragma once

#include <optional>
#include <vector>

#include "geom/vec2.h"

namespace arraytrack::baselines {

class RssiFingerprintDb {
 public:
  struct Entry {
    geom::Vec2 position;
    std::vector<double> rssi_dbm;  // one reading per AP, fixed order
  };

  /// Adds a survey point; every entry must carry the same AP count.
  void add(geom::Vec2 position, std::vector<double> rssi_dbm);

  std::size_t size() const { return entries_.size(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// kNN match in signal space (Euclidean distance over dB vectors).
  std::optional<geom::Vec2> locate(const std::vector<double>& rssi_dbm,
                                   std::size_t k = 3) const;

 private:
  std::vector<Entry> entries_;
};

/// Horus-style probabilistic fingerprinting (Youssef & Agrawala 2005):
/// the offline survey stores a per-cell Gaussian RSS model (mean and
/// variance per AP, from repeated readings); online, the location is
/// the survey cell maximizing the joint Gaussian likelihood, refined
/// by a probability-weighted centroid over the top cells. Reaches
/// ~0.6 m in the paper's related-work discussion, at the cost of a
/// heavy calibration effort ArrayTrack avoids.
class HorusFingerprintDb {
 public:
  /// Adds one survey location with several RSS readings per AP:
  /// `readings[k][j]` is the k-th reading of AP j.
  void add(geom::Vec2 position,
           const std::vector<std::vector<double>>& readings);

  std::size_t size() const { return cells_.size(); }

  /// Maximum-likelihood match with weighted-centroid refinement over
  /// the `k` most likely cells.
  std::optional<geom::Vec2> locate(const std::vector<double>& rssi_dbm,
                                   std::size_t k = 3) const;

 private:
  struct Cell {
    geom::Vec2 position;
    std::vector<double> mean_dbm;
    std::vector<double> var_db2;
  };
  std::vector<Cell> cells_;
};

}  // namespace arraytrack::baselines
