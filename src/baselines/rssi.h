// RSSI-based localization baselines (related-work comparisons).
//
// Model-based trilateration fits a log-distance path loss model to the
// per-AP received powers and grid-searches the position minimizing the
// distance residual (the TIX / Lim et al. family, meter-scale accuracy).
// Weighted centroid is the crudest useful estimator. Both consume only
// whole-dB RSS readings, matching what commodity hardware exposes.
#pragma once

#include <optional>
#include <vector>

#include "geom/vec2.h"

namespace arraytrack::baselines {

struct RssiReading {
  geom::Vec2 ap_position;
  double rssi_dbm = 0.0;  // quantized to whole dB by the caller
};

struct LogDistanceModel {
  /// Power at the reference distance (1 m), dBm.
  double p0_dbm = -30.0;
  /// Path loss exponent; 2 free space, 3-4 cluttered indoors.
  double exponent = 3.0;

  double predict_dbm(double distance_m) const;
  double invert_distance_m(double rssi_dbm) const;
};

/// Grid-searched trilateration: position minimizing the sum of squared
/// differences between measured and model-predicted RSS.
std::optional<geom::Vec2> rssi_trilaterate(const std::vector<RssiReading>& readings,
                                           const LogDistanceModel& model,
                                           const geom::Rect& bounds,
                                           double grid_step_m = 0.25);

/// Weighted centroid of AP positions, weights = linearized RSS.
std::optional<geom::Vec2> rssi_weighted_centroid(
    const std::vector<RssiReading>& readings);

}  // namespace arraytrack::baselines
