#include "baselines/rssi.h"

#include <cmath>
#include <limits>

namespace arraytrack::baselines {

double LogDistanceModel::predict_dbm(double distance_m) const {
  const double d = std::max(distance_m, 0.1);
  return p0_dbm - 10.0 * exponent * std::log10(d);
}

double LogDistanceModel::invert_distance_m(double rssi_dbm) const {
  return std::pow(10.0, (p0_dbm - rssi_dbm) / (10.0 * exponent));
}

std::optional<geom::Vec2> rssi_trilaterate(
    const std::vector<RssiReading>& readings, const LogDistanceModel& model,
    const geom::Rect& bounds, double grid_step_m) {
  if (readings.size() < 3) return std::nullopt;
  double best_cost = std::numeric_limits<double>::infinity();
  geom::Vec2 best;
  for (double y = bounds.min.y; y <= bounds.max.y; y += grid_step_m) {
    for (double x = bounds.min.x; x <= bounds.max.x; x += grid_step_m) {
      const geom::Vec2 p{x, y};
      double cost = 0.0;
      for (const auto& r : readings) {
        const double pred = model.predict_dbm(geom::distance(p, r.ap_position));
        const double e = pred - r.rssi_dbm;
        cost += e * e;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
      }
    }
  }
  return best;
}

std::optional<geom::Vec2> rssi_weighted_centroid(
    const std::vector<RssiReading>& readings) {
  if (readings.empty()) return std::nullopt;
  double wsum = 0.0;
  geom::Vec2 acc{0.0, 0.0};
  for (const auto& r : readings) {
    const double w = std::pow(10.0, r.rssi_dbm / 20.0);
    acc += r.ap_position * w;
    wsum += w;
  }
  if (wsum == 0.0) return std::nullopt;
  return acc / wsum;
}

}  // namespace arraytrack::baselines
