// Fundamental scalar types shared across the ArrayTrack library.
#pragma once

#include <complex>
#include <numbers>

namespace arraytrack {

/// Complex baseband sample / matrix scalar. All signal processing in
/// ArrayTrack operates on complex doubles: AoA information lives in
/// inter-antenna phase, so we keep full double precision end to end.
using cplx = std::complex<double>;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Imaginary unit, for readable phasor arithmetic: std::exp(kJ * phi).
inline constexpr cplx kJ{0.0, 1.0};

/// Degrees <-> radians. Bearings in the public API are degrees
/// (matching the paper's figures); all internal math uses radians.
inline constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
inline constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to [0, 2*pi).
double wrap_2pi(double rad);

/// Wrap an angle to (-pi, pi].
double wrap_pi(double rad);

}  // namespace arraytrack
