// Rank-d signal-subspace tracking over a slowly varying Hermitian
// covariance stream (the "kill the per-packet EVD" optimization).
//
// Consecutive frames from one client produce nearly identical antenna
// covariances, so the MUSIC signal subspace barely rotates between
// fixes. Instead of a full cyclic-Jacobi eigendecomposition per frame,
// a SubspaceTracker carries the d dominant eigenvectors (plus one
// probe direction) from frame to frame and refreshes them with one
// power step + Rayleigh-Ritz refinement per update — O(m^2 k) against
// Jacobi's O(m^3 * sweeps) — falling back to the exact decomposition
// (warm-started from the last full eigenbasis) whenever a drift
// monitor says the tracked basis can no longer be trusted.
//
// The MUSIC projector sweep only needs an orthonormal basis of the
// signal *subspace* (it is invariant to rotations within it), which is
// exactly what the tracker maintains; the Ritz values stand in for the
// leading eigenvalues in the D-selection rule.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace arraytrack::linalg {

/// Shared D-selection rule (paper 2.3.1): with `fixed` == 0, count the
/// eigenvalues within `threshold` of the largest, clamped to
/// [1, n - 1] so at least one signal and one noise direction remain;
/// `fixed` > 0 overrides the count (still clamped to n - 1).
/// `eigenvalues` must be sorted ascending (eig_hermitian order) and
/// non-empty; a single-entry list returns 1.
std::size_t signal_count(const std::vector<double>& eigenvalues,
                         double threshold, std::size_t fixed = 0);

/// True when the ARRAYTRACK_EXACT_EVD environment variable is set to
/// anything but "" or "0": every SubspaceTracker constructed while it
/// is set runs the full-Jacobi path on each update, byte-identical to
/// the tracker-less code path (the production kill switch and the
/// cross-check baseline for tests and benches).
bool exact_evd_forced();

struct SubspaceOptions {
  /// D-selection threshold, mirroring MusicOptions::eig_threshold.
  double eig_threshold = 0.06;
  /// Fixed signal count override; 0 = automatic via eig_threshold.
  std::size_t fixed_num_signals = 0;
  /// Relative invariant-subspace residual ||R W - W (W^H R W)||_F /
  /// ||R W||_F above which the tracked basis is abandoned and reseeded
  /// with a full decomposition.
  double residual_tol = 0.15;
  /// Unconditional full-decomposition refresh every this many updates
  /// (bounds slow cumulative drift the residual cannot see); 0 = never.
  /// With adaptive_reseed this is the initial cadence.
  std::size_t reseed_period = 64;
  /// Adapt the refresh cadence to the observed residual trend instead
  /// of holding it fixed: a monitor-forced reseed, or a refresh window
  /// whose residuals rose from its first half to its second, halves
  /// the period (drift is outpacing the timer); a flat or falling
  /// window doubles it (the timer fired for nothing). The period stays
  /// inside [reseed_period_min, reseed_period_max]; the cadence is a
  /// pure function of the covariance stream, so per-stream determinism
  /// is unchanged. Ignored when reseed_period == 0.
  bool adaptive_reseed = true;
  std::size_t reseed_period_min = 16;
  std::size_t reseed_period_max = 256;
  /// Run the exact full-Jacobi path on every update. Defaulted ON when
  /// ARRAYTRACK_EXACT_EVD is set at construction time.
  bool force_exact = false;
};

/// Shared atomic tallies for a fleet of trackers (e.g. every tracker
/// of a LocationService), so the tracked/full split is observable in
/// production stats snapshots. Increments are relaxed; totals only.
struct SubspaceCounters {
  /// Full Jacobi decompositions (cold seeds + forced-exact + reseeds).
  std::atomic<std::uint64_t> evd_full{0};
  /// Updates served by the tracked recursion (no decomposition).
  std::atomic<std::uint64_t> evd_tracked{0};
  /// Subset of evd_full forced by the monitor (drift, signal-count
  /// change, rank collapse) or the periodic refresh, after a tracked
  /// history existed.
  std::atomic<std::uint64_t> evd_reseed{0};
};

/// The tracker's current estimate of the dominant eigenstructure.
/// Vectors are stored split-complex and vector-major — re[s * m + i]
/// is Re(e_s[i]) — with s = 0 the largest-eigenvalue direction, so the
/// first num_signals planes feed kernels::projector_power directly.
struct SubspaceBasis {
  std::size_t m = 0;            ///< ambient dimension (antennas)
  std::size_t k = 0;            ///< tracked directions (signals + probe)
  std::size_t num_signals = 0;  ///< d: leading columns spanning the signal subspace
  std::vector<double> re, im;   ///< k * m, orthonormal columns, descending
  /// Leading eigenvalues, descending: exact from Jacobi on full
  /// updates, Ritz values of the tracked basis otherwise.
  std::vector<double> eigenvalues;
  bool exact = false;  ///< true when this basis came from a full decomposition
};

/// Bit-exact snapshot of one tracker's mutable state, the unit of
/// session handoff between federation nodes (src/cluster/). Excludes
/// the options (fixed at construction — exporter and importer must be
/// constructed with identical SubspaceOptions, which the service
/// guarantees by building every session from the same ServerOptions)
/// and the reused workspaces (resized on import). Doubles are carried
/// verbatim, so a handed-off tracker continues the exact sequence of
/// tracked updates the original would have produced.
struct SubspaceTrackerState {
  SubspaceBasis basis;
  std::size_t m = 0, k = 0;
  std::vector<cplx> w;
  CMatrix last_full_v;
  double noise_ref = 0.0, last_residual = 0.0;
  std::size_t since_full = 0;
  std::uint64_t n_full = 0, n_tracked = 0, n_reseed = 0;
  std::size_t period = 0;
  double resid_early = 0.0, resid_late = 0.0;
  std::size_t resid_early_n = 0, resid_late_n = 0;
};

/// Tracks the dominant subspace of one Hermitian covariance stream.
/// Not thread-safe; one tracker belongs to one (client, AP) stream and
/// is updated in frame order, which makes the tracked spectra a
/// deterministic function of that stream alone.
class SubspaceTracker {
 public:
  explicit SubspaceTracker(SubspaceOptions opt = {},
                           SubspaceCounters* counters = nullptr);

  /// Folds one covariance into the tracked state and returns the basis
  /// to use for it. The first call (and any call after reset(), a size
  /// change, drift, a signal-count change, or the periodic refresh)
  /// runs a full decomposition; steady-state calls run the tracked
  /// recursion. `r` must be square Hermitian.
  const SubspaceBasis& update(const CMatrix& r);

  /// Drops all tracked state; the next update reseeds from scratch.
  void reset();

  /// Snapshot / restore of the mutable tracked state (see
  /// SubspaceTrackerState). import_state() replaces whatever this
  /// tracker held; the next update continues the imported stream
  /// bit-for-bit.
  SubspaceTrackerState export_state() const;
  void import_state(const SubspaceTrackerState& st);

  const SubspaceOptions& options() const { return opt_; }
  const SubspaceBasis& basis() const { return basis_; }
  /// True when this tracker runs the exact path on every update
  /// (force_exact option or ARRAYTRACK_EXACT_EVD at construction).
  bool exact_only() const { return force_; }

  /// Relative residual of the most recent tracked attempt (0 after a
  /// full decomposition).
  double last_residual() const { return last_residual_; }

  /// Current refresh cadence: equals options().reseed_period until
  /// adaptive_reseed moves it.
  std::size_t reseed_period_current() const { return period_; }

  // Per-tracker tallies (the shared SubspaceCounters aggregate these
  // across trackers).
  std::uint64_t updates() const { return n_full_ + n_tracked_; }
  std::uint64_t full_evds() const { return n_full_; }
  std::uint64_t tracked_updates() const { return n_tracked_; }
  std::uint64_t reseeds() const { return n_reseed_; }

 private:
  void seed_full(const CMatrix& r, bool warm, bool is_reseed);
  /// One power step + Rayleigh-Ritz refinement; false when the drift
  /// monitor demands a reseed instead.
  bool tracked_update(const CMatrix& r);
  void publish_basis(std::size_t d, bool exact);
  /// Folds the finished refresh window into the adaptive cadence
  /// (`timer_fired` = the periodic refresh, not the drift monitor,
  /// triggered this reseed) and clears the window accumulators.
  void adapt_period(bool timer_fired);

  SubspaceOptions opt_;
  SubspaceCounters* counters_ = nullptr;
  bool force_ = false;

  SubspaceBasis basis_;
  std::size_t m_ = 0;  ///< ambient dimension of the tracked state
  std::size_t k_ = 0;  ///< tracked directions (0 = no state yet)
  /// Tracked orthonormal basis, column-major (w_[c * m_ + r]), columns
  /// in descending eigenvalue order; first basis_.num_signals columns
  /// span the signal subspace, the last is the growth probe.
  std::vector<cplx> w_;
  /// Eigenvector matrix of the last full decomposition — the warm
  /// start seed for reseeds (near-diagonalizes the next covariance).
  CMatrix last_full_v_;
  /// Mean noise eigenvalue at the last full decomposition; anchors the
  /// unexplained-energy test of the drift monitor.
  double noise_ref_ = 0.0;
  double last_residual_ = 0.0;
  std::size_t since_full_ = 0;
  std::uint64_t n_full_ = 0, n_tracked_ = 0, n_reseed_ = 0;

  /// Adaptive refresh cadence (== opt_.reseed_period when fixed).
  std::size_t period_ = 0;
  /// Residual sums over the current refresh window, split at period/2,
  /// so a reseed can compare the window's first half against its
  /// second (the "rising" signal).
  double resid_early_ = 0.0, resid_late_ = 0.0;
  std::size_t resid_early_n_ = 0, resid_late_n_ = 0;

  // Reused workspaces (no steady-state allocation on the hot path).
  std::vector<cplx> z_, s_, u_, y_;
  std::vector<double> ritz_;
  std::vector<std::size_t> order_;
};

}  // namespace arraytrack::linalg
