// Dense complex vector and matrix types.
//
// ArrayTrack's heaviest numerical kernel is MUSIC on an MxM antenna
// covariance matrix with M <= 16, so this module favours clarity and
// exact semantics; the dense sweep hot loops live in the SIMD kernel
// layer (kernels.h) instead. Storage is row-major, owned by a
// std::vector (RAII, value semantics).
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::linalg {

class CMatrix;

/// Dense complex column vector.
class CVector {
 public:
  CVector() = default;
  explicit CVector(std::size_t n) : data_(n, cplx{0.0, 0.0}) {}
  CVector(std::initializer_list<cplx> init) : data_(init) {}
  explicit CVector(std::vector<cplx> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  cplx& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  const cplx& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  std::span<const cplx> span() const { return data_; }
  std::span<cplx> span() { return data_; }

  const std::vector<cplx>& data() const { return data_; }

  CVector& operator+=(const CVector& rhs);
  CVector& operator-=(const CVector& rhs);
  CVector& operator*=(cplx s);

  friend CVector operator+(CVector lhs, const CVector& rhs) { return lhs += rhs; }
  friend CVector operator-(CVector lhs, const CVector& rhs) { return lhs -= rhs; }
  friend CVector operator*(CVector lhs, cplx s) { return lhs *= s; }
  friend CVector operator*(cplx s, CVector rhs) { return rhs *= s; }

  /// Hermitian inner product <this, rhs> = sum conj(this_i) * rhs_i.
  cplx dot(const CVector& rhs) const;

  /// Euclidean norm.
  double norm() const;

  /// Sum of |x_i|^2 (signal power over the vector).
  double squared_norm() const;

  /// Returns this vector scaled to unit norm (zero vector stays zero).
  CVector normalized() const;

  /// Elementwise complex conjugate.
  CVector conj() const;

  std::string to_string() const;

 private:
  std::vector<cplx> data_;
};

/// Dense complex matrix, row-major.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// Construct from nested initializer list: CMatrix{{a,b},{c,d}}.
  CMatrix(std::initializer_list<std::initializer_list<cplx>> init);

  static CMatrix identity(std::size_t n);

  /// n x n matrix with `diag` on the diagonal.
  static CMatrix diagonal(std::span<const double> diag);

  /// Rank-1 outer product v * w^H.
  static CMatrix outer(const CVector& v, const CVector& w);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage, for the SIMD kernel layer (kernels.h).
  const cplx* data() const { return data_.data(); }
  cplx* data() { return data_.data(); }

  CMatrix& operator+=(const CMatrix& rhs);
  CMatrix& operator-=(const CMatrix& rhs);
  CMatrix& operator*=(cplx s);

  friend CMatrix operator+(CMatrix lhs, const CMatrix& rhs) { return lhs += rhs; }
  friend CMatrix operator-(CMatrix lhs, const CMatrix& rhs) { return lhs -= rhs; }
  friend CMatrix operator*(CMatrix lhs, cplx s) { return lhs *= s; }
  friend CMatrix operator*(cplx s, CMatrix rhs) { return rhs *= s; }

  CMatrix operator*(const CMatrix& rhs) const;
  CVector operator*(const CVector& rhs) const;

  /// Conjugate transpose A^H.
  CMatrix hermitian() const;

  /// Plain transpose A^T (no conjugation).
  CMatrix transpose() const;

  cplx trace() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Sum of |a_ij| over all off-diagonal entries; Jacobi convergence metric.
  double off_diagonal_norm() const;

  /// Max |a_ij - b_ij|; convenience for tests.
  double max_abs_diff(const CMatrix& other) const;

  /// Contiguous submatrix [r0, r0+nr) x [c0, c0+nc).
  CMatrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                std::size_t nc) const;

  CVector row(std::size_t r) const;
  CVector col(std::size_t c) const;

  void set_row(std::size_t r, const CVector& v);
  void set_col(std::size_t c, const CVector& v);

  /// True if max |a_ij - conj(a_ji)| <= tol.
  bool is_hermitian(double tol = 1e-9) const;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// v^H * M * v as a real number (asserts the imaginary residue is tiny;
/// valid for Hermitian M). Used for power projections.
double quadratic_form_real(const CVector& v, const CMatrix& m);

}  // namespace arraytrack::linalg
