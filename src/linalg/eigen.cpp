#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace arraytrack::linalg {
namespace {

// One complex Jacobi rotation zeroing A(p,q). A is updated in place as
// G^H * A * G and the rotation is accumulated into V as V * G, where G
// is the identity except G(p,p)=c, G(q,q)=c, G(p,q)=s*phase,
// G(q,p)=-s*conj(phase), with phase = A(p,q)/|A(p,q)|.
void rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const cplx apq = a(p, q);
  const double g = std::abs(apq);
  if (g == 0.0) return;

  const cplx phase = apq / g;
  const double app = a(p, p).real();
  const double aqq = a(q, q).real();

  // Choose t = tan(rotation) as the smaller-magnitude root of
  // t^2 + 2*theta*t - 1 = 0 with theta = (aqq - app) / (2|apq|).
  const double theta = (aqq - app) / (2.0 * g);
  const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
  const double c = 1.0 / std::sqrt(t * t + 1.0);
  const double s = t * c;

  const std::size_t n = a.rows();

  // Column update: B = A * G touches only columns p and q.
  for (std::size_t k = 0; k < n; ++k) {
    const cplx akp = a(k, p);
    const cplx akq = a(k, q);
    a(k, p) = c * akp - s * std::conj(phase) * akq;
    a(k, q) = s * phase * akp + c * akq;
  }
  // Row update: A' = G^H * B touches only rows p and q.
  for (std::size_t k = 0; k < n; ++k) {
    const cplx apk = a(p, k);
    const cplx aqk = a(q, k);
    a(p, k) = c * apk - s * phase * aqk;
    a(q, k) = s * std::conj(phase) * apk + c * aqk;
  }
  // Clean up the rotationally-zeroed pair exactly; Jacobi convergence
  // proofs assume these entries vanish rather than hold roundoff dust.
  a(p, q) = cplx{0.0, 0.0};
  a(q, p) = cplx{0.0, 0.0};
  a(p, p) = cplx{a(p, p).real(), 0.0};
  a(q, q) = cplx{a(q, q).real(), 0.0};

  // Accumulate eigenvectors: V = V * G.
  for (std::size_t k = 0; k < n; ++k) {
    const cplx vkp = v(k, p);
    const cplx vkq = v(k, q);
    v(k, p) = c * vkp - s * std::conj(phase) * vkq;
    v(k, q) = s * phase * vkp + c * vkq;
  }
}

// Validates squareness / Hermitian-ness of `input` and returns its
// symmetrized copy, with the Frobenius scale (used for the sweep
// tolerance) written to `scale_out`.
CMatrix symmetrized_checked(const CMatrix& input, double hermitian_tol,
                            double& scale_out) {
  if (input.rows() != input.cols())
    throw std::invalid_argument("eig_hermitian: matrix must be square");
  const std::size_t n = input.rows();

  const double scale = std::max(input.frobenius_norm(), 1e-300);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c)
      if (std::abs(input(r, c) - std::conj(input(c, r))) >
          hermitian_tol * scale)
        throw std::invalid_argument("eig_hermitian: matrix is not Hermitian");

  // Symmetrize to scrub floating-point asymmetry from covariance sums.
  CMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      a(r, c) = 0.5 * (input(r, c) + std::conj(input(c, r)));
  scale_out = scale;
  return a;
}

// Cyclic Jacobi sweeps over the symmetrized matrix `a`, accumulating
// rotations into `v` (which may start at identity or at a warm-start
// unitary), followed by the ascending sort. Consumes `a` and `v`.
EigenResult jacobi_sweep_and_sort(CMatrix& a, CMatrix& v, double scale) {
  const std::size_t n = a.rows();

  constexpr int kMaxSweeps = 100;
  const double tol = 1e-14 * scale;
  auto exact_off_norm = [&a, n] {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::abs(a(p, q));
    return off;
  };
  // The seed rescanned the full off-diagonal norm at the top of every
  // sweep. Here the scan is folded into the sweep itself: each visit
  // already takes |a(p, q)| for the rotation threshold, so the sum
  // comes for free and feeds the next sweep's convergence check. The
  // folded sum mixes pre- and post-rotation values, so a "converged"
  // verdict is confirmed with one exact rescan before breaking.
  double off = std::numeric_limits<double>::infinity();
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (off <= tol && (off = exact_off_norm()) <= tol) break;
    std::size_t rotations = 0;
    double swept_off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        const double mag = std::abs(a(p, q));
        swept_off += mag;
        if (mag > tol / double(n * n)) {
          rotate(a, v, p, q);
          ++rotations;
        }
      }
    // Early exit: a sweep with zero rotations saw every entry at or
    // below tol / n^2, so the true off-norm is at most tol / 2.
    if (rotations == 0) break;
    off = swept_off;
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i).real() < a(j, j).real();
  });

  EigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = CMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    result.eigenvalues.push_back(a(order[i], order[i]).real());
    result.eigenvectors.set_col(i, v.col(order[i]));
  }
  return result;
}

bool is_identity_exact(const CMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (m(r, c) != (r == c ? cplx{1.0, 0.0} : cplx{0.0, 0.0})) return false;
  return true;
}

}  // namespace

EigenResult eig_hermitian(const CMatrix& input, double hermitian_tol) {
  double scale = 0.0;
  CMatrix a = symmetrized_checked(input, hermitian_tol, scale);
  CMatrix v = CMatrix::identity(a.rows());
  return jacobi_sweep_and_sort(a, v, scale);
}

EigenResult eig_hermitian_seeded(const CMatrix& input, const CMatrix& seed,
                                 double hermitian_tol) {
  if (seed.rows() != input.rows() || seed.cols() != input.cols())
    throw std::invalid_argument(
        "eig_hermitian_seeded: seed must match the matrix size");

  double scale = 0.0;
  CMatrix a = symmetrized_checked(input, hermitian_tol, scale);

  // An exact-identity seed takes the plain path, keeping the result
  // bit-identical to eig_hermitian (the pre-rotation below would only
  // add benign roundoff, but bitwise parity is cheap to keep).
  if (is_identity_exact(seed)) {
    CMatrix v = CMatrix::identity(a.rows());
    return jacobi_sweep_and_sort(a, v, scale);
  }

  // Pre-rotate into the seed's frame: A' = seed^H * A * seed. When the
  // seed eigenbasis belongs to a nearby matrix, A' is almost diagonal
  // and the sweeps converge immediately. Re-symmetrize to scrub the
  // roundoff asymmetry the two multiplies introduce.
  CMatrix rotated = seed.hermitian() * a * seed;
  const std::size_t n = rotated.rows();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      const cplx sym = 0.5 * (rotated(r, c) + std::conj(rotated(c, r)));
      rotated(r, c) = sym;
      rotated(c, r) = std::conj(sym);
    }
    rotated(r, r) = cplx{rotated(r, r).real(), 0.0};
  }

  CMatrix v = seed;
  return jacobi_sweep_and_sort(rotated, v, scale);
}

}  // namespace arraytrack::linalg
