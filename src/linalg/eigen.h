// Hermitian eigendecomposition via cyclic complex Jacobi rotations.
//
// MUSIC needs the full eigensystem of the MxM antenna covariance matrix
// (M <= 16 in ArrayTrack). Jacobi is simple, unconditionally stable for
// Hermitian input, and at this size within a small factor of optimal.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace arraytrack::linalg {

/// Result of eig_hermitian. Eigenvalues are real (Hermitian input) and
/// sorted ascending; eigenvectors.col(i) is the unit eigenvector for
/// eigenvalues[i]. Satisfies A * V = V * diag(eigenvalues) and V^H V = I.
struct EigenResult {
  std::vector<double> eigenvalues;
  CMatrix eigenvectors;
};

/// Eigendecomposition of a Hermitian matrix.
///
/// The input is symmetrized first (covariance estimates carry tiny
/// asymmetries from floating-point accumulation). Throws
/// std::invalid_argument if the matrix is not square or is grossly
/// non-Hermitian (relative asymmetry above `hermitian_tol`).
EigenResult eig_hermitian(const CMatrix& a, double hermitian_tol = 1e-6);

/// Warm-started eigendecomposition: diagonalizes seed^H * A * seed and
/// accumulates rotations on top of `seed`, so when `seed` (a unitary
/// matrix, typically the eigenvectors of a nearby matrix) already
/// near-diagonalizes A, Jacobi converges in one or two sweeps instead
/// of the usual five-plus from identity. Returns the same sorted
/// eigensystem of A as eig_hermitian up to roundoff and per-vector
/// phase; with seed == identity the result is bit-identical to
/// eig_hermitian. Throws if A fails the checks of eig_hermitian or if
/// `seed` is not square of matching size.
EigenResult eig_hermitian_seeded(const CMatrix& a, const CMatrix& seed,
                                 double hermitian_tol = 1e-6);

}  // namespace arraytrack::linalg
