#include "linalg/types.h"

#include <cmath>

namespace arraytrack {

double wrap_2pi(double rad) {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

double wrap_pi(double rad) {
  double w = wrap_2pi(rad);
  if (w > kPi) w -= kTwoPi;
  return w;
}

}  // namespace arraytrack
