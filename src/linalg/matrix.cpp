#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace arraytrack::linalg {

CVector& CVector::operator+=(const CVector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CVector& CVector::operator-=(const CVector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CVector& CVector::operator*=(cplx s) {
  for (auto& v : data_) v *= s;
  return *this;
}

cplx CVector::dot(const CVector& rhs) const {
  assert(size() == rhs.size());
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < size(); ++i)
    acc += std::conj(data_[i]) * rhs.data_[i];
  return acc;
}

double CVector::squared_norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return acc;
}

double CVector::norm() const { return std::sqrt(squared_norm()); }

CVector CVector::normalized() const {
  const double n = norm();
  if (n == 0.0) return *this;
  CVector out = *this;
  out *= cplx{1.0 / n, 0.0};
  return out;
}

CVector CVector::conj() const {
  CVector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = std::conj(data_[i]);
  return out;
}

std::string CVector::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i].real() << (data_[i].imag() < 0 ? "-" : "+")
       << std::abs(data_[i].imag()) << "j";
  }
  os << "]";
  return os.str();
}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<cplx>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

CMatrix CMatrix::diagonal(std::span<const double> diag) {
  CMatrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = cplx{diag[i], 0.0};
  return m;
}

CMatrix CMatrix::outer(const CVector& v, const CVector& w) {
  CMatrix m(v.size(), w.size());
  for (std::size_t r = 0; r < v.size(); ++r)
    for (std::size_t c = 0; c < w.size(); ++c)
      m(r, c) = v[r] * std::conj(w[c]);
  return m;
}

CMatrix& CMatrix::operator+=(const CMatrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CMatrix& CMatrix::operator-=(const CMatrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(cplx s) {
  for (auto& v : data_) v *= s;
  return *this;
}

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  assert(cols_ == rhs.rows_);
  CMatrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(r, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

CVector CMatrix::operator*(const CVector& rhs) const {
  assert(cols_ == rhs.size());
  CVector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * rhs[c];
    out[r] = acc;
  }
  return out;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

cplx CMatrix::trace() const {
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < std::min(rows_, cols_); ++i) acc += (*this)(i, i);
  return acc;
}

double CMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

double CMatrix::off_diagonal_norm() const {
  double acc = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c) acc += std::abs((*this)(r, c));
  return acc;
}

double CMatrix::max_abs_diff(const CMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

CMatrix CMatrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                       std::size_t nc) const {
  assert(r0 + nr <= rows_ && c0 + nc <= cols_);
  CMatrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
  return out;
}

CVector CMatrix::row(std::size_t r) const {
  CVector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

CVector CMatrix::col(std::size_t c) const {
  CVector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void CMatrix::set_row(std::size_t r, const CVector& v) {
  assert(v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void CMatrix::set_col(std::size_t c, const CVector& v) {
  assert(v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

bool CMatrix::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r; c < cols_; ++c)
      if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol) return false;
  return true;
}

std::string CMatrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx v = (*this)(r, c);
      os << (c ? ", " : "") << v.real() << (v.imag() < 0 ? "-" : "+")
         << std::abs(v.imag()) << "j";
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

double quadratic_form_real(const CVector& v, const CMatrix& m) {
  const cplx q = v.dot(m * v);
  assert(std::abs(q.imag()) <= 1e-6 * (1.0 + std::abs(q.real())));
  return q.real();
}

}  // namespace arraytrack::linalg
