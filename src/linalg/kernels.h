// SIMD kernel layer for the dense sweep loops: the MUSIC projector
// matvec, the Bartlett quadratic form, snapshot-covariance
// accumulation, forward-backward averaging, the heatmap
// gather+lerp+product (single-row and batched structure-of-arrays
// forms), and the batched bearing-blur FIR. Each kernel ships a
// scalar reference path plus
// SSE2 and AVX2+FMA implementations selected at runtime via
// core::simd::active(); results at a fixed level are deterministic
// (bitwise identical for any caller chunking), and levels agree with
// the scalar reference to ~1e-9 relative (vector paths reassociate
// sums and use fused multiply-adds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::linalg {

/// Split-complex (structure-of-arrays) plane storage. Plane k holds
/// one antenna's value across all rows; element i of plane k lives at
/// [k * pitch + i]. Laying steering tables and snapshots out this way
/// turns the per-row complex multiply-accumulate into contiguous
/// real-valued FMA streams: a vector register holds the same antenna
/// for `width` adjacent rows, and the complex operand is broadcast.
struct SplitPlanes {
  std::size_t rows = 0;   // elements per plane (swept bins / snapshots)
  std::size_t m = 0;      // plane count (antennas)
  std::size_t pitch = 0;  // distance between planes (== rows)
  std::vector<double> re, im;

  SplitPlanes() = default;
  SplitPlanes(std::size_t rows_, std::size_t m_) { resize(rows_, m_); }

  void resize(std::size_t rows_, std::size_t m_) {
    rows = rows_;
    m = m_;
    pitch = rows_;
    re.assign(m * pitch, 0.0);
    im.assign(m * pitch, 0.0);
  }

  void set(std::size_t plane, std::size_t idx, cplx v) {
    re[plane * pitch + idx] = v.real();
    im[plane * pitch + idx] = v.imag();
  }
  cplx get(std::size_t plane, std::size_t idx) const {
    return {re[plane * pitch + idx], im[plane * pitch + idx]};
  }
};

/// Quantized split-complex table: the int16 tier of SplitPlanes. Each
/// row i (one swept bin) is stored as int16 re/im planes plus one
/// float scale factor, value ~= q * scale[row], with q clamped to
/// [-32767, 32767] (never -32768, so widening 16x16 multiplies cannot
/// hit the 2^31 pmaddwd corner). For m antennas the footprint is
/// 4*m + 4 bytes per row against SplitPlanes' 16*m — ~3.5x smaller at
/// m = 7 — which is what lets a whole office's steering tables sit in
/// L2 and what an RP2040-class AP frontend would consume directly.
struct QuantPlanes {
  std::size_t rows = 0;
  std::size_t m = 0;
  std::size_t pitch = 0;
  std::vector<std::int16_t> re, im;
  std::vector<float> scale;  // one per row

  /// Quantizes a float table row-by-row (scale = row max / 32767).
  static QuantPlanes quantize(const SplitPlanes& t);

  /// Table footprint in bytes (payload vectors only).
  std::size_t bytes() const {
    return (re.size() + im.size()) * sizeof(std::int16_t) +
           scale.size() * sizeof(float);
  }
};

/// Quantized packed complex vectors (the projector's eigenvector /
/// subspace-basis operand): vector s, component k at [s * m + k], one
/// float scale per vector. Components are quantized to magnitude
/// <= 1023 (10 bits + sign) so that an m-term complex dot against a
/// 15-bit table row accumulates exactly in int32 for m <= 32.
struct QuantVectors {
  std::size_t nvec = 0;
  std::size_t m = 0;
  std::vector<std::int16_t> re, im;
  std::vector<float> scale;  // one per vector

  /// Quantizes `nvec` packed vectors laid out like the float kernels'
  /// ev_re/ev_im operands (component k of vector s at [s * m + k]).
  static QuantVectors quantize(const double* ev_re, const double* ev_im,
                               std::size_t nvec, std::size_t m);
};

/// Per-spectrum coarse table for the quantized position sweep: bin b
/// holds ceil(64 * log2(max(p[b], p[b+1 mod bins], floor))) — a
/// round-up fixed-point (Q.6) log2 of the *pair max* of the two bins a
/// bearing-LUT cell interpolates between. Because linear
/// interpolation never exceeds the larger endpoint and the heatmap
/// clamps at `floor`, summing these per-AP entries gives a certified
/// upper bound on 64 * log2 of the float likelihood product at every
/// cell — the guard band that makes coarse-to-fine pruning exact.
/// `slack_bits` is the committed tightness bound: the table entry
/// overshoots the true per-cell log2 factor by at most this many bits
/// (max adjacent-pair log-ratio after floor clamping, plus the
/// quantization ulp).
struct CoarseLogTable {
  static constexpr int kFracBits = 6;
  std::vector<std::int32_t> pairmax;
  double slack_bits = 0.0;
};

CoarseLogTable coarse_log_table(const double* p, std::size_t bins,
                                double floor);

namespace kernels {

/// Signal-subspace power of every table row against `nvec` packed
/// complex vectors (vector s, component k at [s * t.m + k]):
///   out[i] = sum_{s < nvec} | sum_k t_k(i) * e_s(k) |^2
/// With t holding *conjugated* steering rows this is the projector
/// numerator of the MUSIC denominator, evaluated for all swept bins in
/// one pass over the table.
void projector_power(const SplitPlanes& t, const double* ev_re,
                     const double* ev_im, std::size_t nvec, double* out);

/// Bartlett quadratic form per table row against a Hermitian matrix
/// (row-major complex, t.m x t.m): out[i] = a_i^H R a_i, with a_i the
/// (unconjugated) steering vector in row i of the table.
void bartlett_power(const SplitPlanes& t, const cplx* r, double* out);

/// Snapshot covariance from split planes (plane i = antenna i over
/// x.rows snapshots): r[i * m + j] = (1/rows) sum_k x_i(k) conj(x_j(k)).
/// Only the upper triangle is accumulated; the lower is its exact
/// conjugate mirror (term-wise identical to accumulating it directly).
void covariance(const SplitPlanes& x, cplx* r);

/// Forward-backward average of a square complex matrix: with J the
/// exchange matrix, out = 0.5 * (r + J conj(r) J), i.e. flat element t
/// of out is 0.5 * (r[t] + conj(r[m*m - 1 - t])). `out` must not alias
/// `r`.
void forward_backward(const cplx* r, std::size_t m, cplx* out);

/// Heatmap likelihood product: for each cell c,
///   cells[c] *= max((1 - frac[c]) * power[bin0[c]]
///                     + frac[c] * power[bin1[c]], floor)
/// -- a branch-free gather + lerp + product over flat arrays. Cell
/// results are independent of how callers chunk the range: the vector
/// paths' remainder lanes round exactly like their full lanes.
void gather_lerp_product(const double* power, const std::int32_t* bin0,
                         const std::int32_t* bin1, const double* frac,
                         std::size_t count, double floor, double* cells);

/// Batched heatmap likelihood product in structure-of-arrays layout:
/// `table` holds one spectrum per batch row, transposed so bin b of
/// row r lives at table[b * nrows + r]; `cells` interleaves the rows
/// the same way (cell c of row r at cells[c * nrows + r]). For every
/// cell c and row r,
///   cells[c*nrows+r] *= max((1 - frac[c]) * table[bin0[c]*nrows+r]
///                             + frac[c] * table[bin1[c]*nrows+r], floor)
/// One streaming pass over the shared (bin0, bin1, frac) bearing LUT
/// updates all nrows likelihood rows, and the transposed tables turn
/// the per-cell gathers into contiguous loads. At each dispatch level
/// the per-element operation chain matches gather_lerp_product's
/// (fused multiply-add exactly where that kernel fuses), so a batch
/// row is bitwise identical to running the un-batched kernel on it.
void gather_lerp_product_batch(const double* table, const std::int32_t* bin0,
                               const std::int32_t* bin1, const double* frac,
                               std::size_t count, std::size_t nrows,
                               double floor, double* cells);

/// Batched FIR filter in the same interleaved layout: `in` holds
/// nrows signal rows with sample k of row r at in[k * nrows + r]
/// (k < nout + ntaps - 1), and every output sample accumulates taps
/// in ascending order from zero:
///   out[i*nrows+r] = sum_j taps[j] * in[(i+j)*nrows+r]
/// Callers express a circular convolution by pre-extending the input
/// with the wrapped edge samples. Every level performs separate
/// multiply/add (never fused), so all levels produce identical bits
/// and each row matches the plain scalar loop that
/// aoa::AoaSpectrum::convolve_gaussian runs un-batched.
void fir_batch(const double* in, std::size_t nrows, std::size_t nout,
               const double* taps, std::size_t ntaps, double* out);

/// Quantized projector sweep: the int16 tier of projector_power.
///   out[i] = sum_s (scale_i * scale_s)^2 * (ar_is^2 + ai_is^2)
/// where (ar, ai) is the integer complex dot of quantized table row i
/// against quantized vector s. The dot accumulates through widening
/// 16x16 -> 32-bit multiply-adds (exact in int32 for t.m <= 32), and
/// the int32 -> double finalize uses the same non-fused operation
/// chain at every dispatch level, so results are *bitwise identical*
/// across scalar/SSE2/AVX2 — stronger than the float kernels' 1e-9
/// cross-level contract.
void projector_power_quant(const QuantPlanes& t, const QuantVectors& ev,
                           double* out);

/// Quantized Bartlett form: int16 tier of bartlett_power. The
/// Hermitian matrix is quantized internally to int16 with one global
/// scale; per (j, k) pair the table dot products are exact widening
/// int16 multiply-adds (single pmaddwd-shaped pair sums, no integer
/// accumulation across pairs) and the per-row reduction runs the same
/// non-fused double chain at every level — bitwise identical across
/// scalar/SSE2/AVX2.
void bartlett_power_quant(const QuantPlanes& t, const cplx* r, double* out);

/// Coarse heatmap scoring pass: score[c] += table[bin0[c]] over int32
/// accumulators — the quantized, log-domain form of
/// gather_lerp_product (the product becomes a sum of round-up log2
/// pair-max entries from coarse_log_table, so one gather + add per
/// (cell, AP) replaces two gathers, a lerp, and a multiply). Integer
/// adds are associative, so every dispatch level is bitwise identical
/// by construction.
void score_accum(const std::int32_t* table, const std::int32_t* bin0,
                 std::size_t count, std::int32_t* score);

/// Selection helpers over coarse score arrays — exact integer
/// reductions, so every dispatch level is bitwise identical by
/// construction. score_max needs n >= 1; score_collect_ge writes the
/// indices with v[i] >= thr in ascending order into `out` (size it
/// with score_count_ge) and returns how many it wrote.
std::int32_t score_max(const std::int32_t* v, std::size_t n);
std::size_t score_count_ge(const std::int32_t* v, std::size_t n,
                           std::int32_t thr);
std::size_t score_collect_ge(const std::int32_t* v, std::size_t n,
                             std::int32_t thr, std::uint32_t* out);

}  // namespace kernels
}  // namespace arraytrack::linalg
