// SIMD kernel layer for the dense sweep loops: the MUSIC projector
// matvec, the Bartlett quadratic form, snapshot-covariance
// accumulation, forward-backward averaging, the heatmap
// gather+lerp+product (single-row and batched structure-of-arrays
// forms), and the batched bearing-blur FIR. Each kernel ships a
// scalar reference path plus
// SSE2 and AVX2+FMA implementations selected at runtime via
// core::simd::active(); results at a fixed level are deterministic
// (bitwise identical for any caller chunking), and levels agree with
// the scalar reference to ~1e-9 relative (vector paths reassociate
// sums and use fused multiply-adds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::linalg {

/// Split-complex (structure-of-arrays) plane storage. Plane k holds
/// one antenna's value across all rows; element i of plane k lives at
/// [k * pitch + i]. Laying steering tables and snapshots out this way
/// turns the per-row complex multiply-accumulate into contiguous
/// real-valued FMA streams: a vector register holds the same antenna
/// for `width` adjacent rows, and the complex operand is broadcast.
struct SplitPlanes {
  std::size_t rows = 0;   // elements per plane (swept bins / snapshots)
  std::size_t m = 0;      // plane count (antennas)
  std::size_t pitch = 0;  // distance between planes (== rows)
  std::vector<double> re, im;

  SplitPlanes() = default;
  SplitPlanes(std::size_t rows_, std::size_t m_) { resize(rows_, m_); }

  void resize(std::size_t rows_, std::size_t m_) {
    rows = rows_;
    m = m_;
    pitch = rows_;
    re.assign(m * pitch, 0.0);
    im.assign(m * pitch, 0.0);
  }

  void set(std::size_t plane, std::size_t idx, cplx v) {
    re[plane * pitch + idx] = v.real();
    im[plane * pitch + idx] = v.imag();
  }
  cplx get(std::size_t plane, std::size_t idx) const {
    return {re[plane * pitch + idx], im[plane * pitch + idx]};
  }
};

namespace kernels {

/// Signal-subspace power of every table row against `nvec` packed
/// complex vectors (vector s, component k at [s * t.m + k]):
///   out[i] = sum_{s < nvec} | sum_k t_k(i) * e_s(k) |^2
/// With t holding *conjugated* steering rows this is the projector
/// numerator of the MUSIC denominator, evaluated for all swept bins in
/// one pass over the table.
void projector_power(const SplitPlanes& t, const double* ev_re,
                     const double* ev_im, std::size_t nvec, double* out);

/// Bartlett quadratic form per table row against a Hermitian matrix
/// (row-major complex, t.m x t.m): out[i] = a_i^H R a_i, with a_i the
/// (unconjugated) steering vector in row i of the table.
void bartlett_power(const SplitPlanes& t, const cplx* r, double* out);

/// Snapshot covariance from split planes (plane i = antenna i over
/// x.rows snapshots): r[i * m + j] = (1/rows) sum_k x_i(k) conj(x_j(k)).
/// Only the upper triangle is accumulated; the lower is its exact
/// conjugate mirror (term-wise identical to accumulating it directly).
void covariance(const SplitPlanes& x, cplx* r);

/// Forward-backward average of a square complex matrix: with J the
/// exchange matrix, out = 0.5 * (r + J conj(r) J), i.e. flat element t
/// of out is 0.5 * (r[t] + conj(r[m*m - 1 - t])). `out` must not alias
/// `r`.
void forward_backward(const cplx* r, std::size_t m, cplx* out);

/// Heatmap likelihood product: for each cell c,
///   cells[c] *= max((1 - frac[c]) * power[bin0[c]]
///                     + frac[c] * power[bin1[c]], floor)
/// -- a branch-free gather + lerp + product over flat arrays. Cell
/// results are independent of how callers chunk the range: the vector
/// paths' remainder lanes round exactly like their full lanes.
void gather_lerp_product(const double* power, const std::int32_t* bin0,
                         const std::int32_t* bin1, const double* frac,
                         std::size_t count, double floor, double* cells);

/// Batched heatmap likelihood product in structure-of-arrays layout:
/// `table` holds one spectrum per batch row, transposed so bin b of
/// row r lives at table[b * nrows + r]; `cells` interleaves the rows
/// the same way (cell c of row r at cells[c * nrows + r]). For every
/// cell c and row r,
///   cells[c*nrows+r] *= max((1 - frac[c]) * table[bin0[c]*nrows+r]
///                             + frac[c] * table[bin1[c]*nrows+r], floor)
/// One streaming pass over the shared (bin0, bin1, frac) bearing LUT
/// updates all nrows likelihood rows, and the transposed tables turn
/// the per-cell gathers into contiguous loads. At each dispatch level
/// the per-element operation chain matches gather_lerp_product's
/// (fused multiply-add exactly where that kernel fuses), so a batch
/// row is bitwise identical to running the un-batched kernel on it.
void gather_lerp_product_batch(const double* table, const std::int32_t* bin0,
                               const std::int32_t* bin1, const double* frac,
                               std::size_t count, std::size_t nrows,
                               double floor, double* cells);

/// Batched FIR filter in the same interleaved layout: `in` holds
/// nrows signal rows with sample k of row r at in[k * nrows + r]
/// (k < nout + ntaps - 1), and every output sample accumulates taps
/// in ascending order from zero:
///   out[i*nrows+r] = sum_j taps[j] * in[(i+j)*nrows+r]
/// Callers express a circular convolution by pre-extending the input
/// with the wrapped edge samples. Every level performs separate
/// multiply/add (never fused), so all levels produce identical bits
/// and each row matches the plain scalar loop that
/// aoa::AoaSpectrum::convolve_gaussian runs un-batched.
void fir_batch(const double* in, std::size_t nrows, std::size_t nout,
               const double* taps, std::size_t ntaps, double* out);

}  // namespace kernels
}  // namespace arraytrack::linalg
