#include "linalg/kernels.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "core/simd.h"  // dependency-free leaf header (see its comment)

#if defined(__x86_64__) || defined(__i386__)
#define AT_KERNELS_X86 1
#include <immintrin.h>
#else
#define AT_KERNELS_X86 0
#endif

#if AT_KERNELS_X86 && (defined(__GNUC__) || defined(__clang__))
#define AT_TARGET_AVX2 __attribute__((target("avx2,fma")))
// AVX2 without FMA in the target ISA: for kernels whose bit-for-bit
// contract requires separate multiply/add (the batched blur FIR), the
// compiler must be unable to contract the mul+add intrinsic pair into
// a fused op, which -ffp-contract otherwise permits even for
// intrinsics.
#define AT_TARGET_AVX2_NOFMA __attribute__((target("avx2")))
#define AT_TARGET_SSE2 __attribute__((target("sse2")))
#else
#define AT_TARGET_AVX2
#define AT_TARGET_AVX2_NOFMA
#define AT_TARGET_SSE2
#endif

// Determinism note: every vector path below handles its remainder
// elements with scalar code whose rounding matches the full lanes
// op-for-op (std::fma where the lanes use fused ops, separate
// multiply/add where they do not). A cell or row therefore computes
// the same bits whether it lands in a full vector block or a tail,
// which is what keeps results independent of caller chunking (the
// thread pool splits the heatmap at arbitrary offsets).

namespace arraytrack::linalg::kernels {
namespace {

// ---------------------------------------------------------------- scalar

void projector_power_scalar(const SplitPlanes& t, const double* ev_re,
                            const double* ev_im, std::size_t nvec,
                            double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar += cr * er[k] - ci * ei[k];
        ai += cr * ei[k] + ci * er[k];
      }
      acc += ar * ar + ai * ai;
    }
    out[i] = acc;
  }
}

void bartlett_power_scalar(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      acc += r[j * m + j].real() * (pj * pj + qj * qj);
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double u = r[j * m + k].real();
        const double v = r[j * m + k].imag();
        // conj(a_j) R_jk a_k + its mirror term = 2 Re(conj(a_j) R_jk a_k).
        acc += 2.0 * (u * (pj * pk + qj * qk) - v * (pj * qk - qj * pk));
      }
    }
    out[i] = acc;
  }
}

void covariance_scalar(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      double re = 0.0, im = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        re += pi[k] * pj[k] + qi[k] * qj[k];
        im += qi[k] * pj[k] - pi[k] * qj[k];
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

void forward_backward_scalar(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  for (std::size_t t = 0; t < total; ++t)
    out[t] = 0.5 * (r[t] + std::conj(r[total - 1 - t]));
}

void gather_lerp_product_scalar(const double* power, const std::int32_t* bin0,
                                const std::int32_t* bin1, const double* frac,
                                std::size_t count, double floor,
                                double* cells) {
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const double v = (1.0 - f) * power[bin0[c]] + f * power[bin1[c]];
    cells[c] *= std::max(v, floor);
  }
}

void gather_lerp_product_batch_scalar(const double* table,
                                      const std::int32_t* bin0,
                                      const std::int32_t* bin1,
                                      const double* frac, std::size_t count,
                                      std::size_t nrows, double floor,
                                      double* cells) {
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    for (std::size_t r = 0; r < nrows; ++r) {
      const double v = (1.0 - f) * t0[r] + f * t1[r];
      cell[r] *= std::max(v, floor);
    }
  }
}

void fir_batch_scalar(const double* in, std::size_t nrows, std::size_t nout,
                      const double* taps, std::size_t ntaps, double* out) {
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    for (std::size_t r = 0; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j) acc += taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

#if AT_KERNELS_X86

// ----------------------------------------------------------------- SSE2

AT_TARGET_SSE2
void projector_power_sse2(const SplitPlanes& t, const double* ev_re,
                          const double* ev_im, std::size_t nvec, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      __m128d ar = _mm_setzero_pd(), ai = _mm_setzero_pd();
      for (std::size_t k = 0; k < m; ++k) {
        const __m128d cr = _mm_loadu_pd(tre + k * pitch + i);
        const __m128d ci = _mm_loadu_pd(tim + k * pitch + i);
        const __m128d br = _mm_set1_pd(er[k]);
        const __m128d bi = _mm_set1_pd(ei[k]);
        ar = _mm_add_pd(ar, _mm_mul_pd(cr, br));
        ar = _mm_sub_pd(ar, _mm_mul_pd(ci, bi));
        ai = _mm_add_pd(ai, _mm_mul_pd(cr, bi));
        ai = _mm_add_pd(ai, _mm_mul_pd(ci, br));
      }
      acc = _mm_add_pd(acc, _mm_mul_pd(ar, ar));
      acc = _mm_add_pd(acc, _mm_mul_pd(ai, ai));
    }
    _mm_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar = ar + cr * er[k];
        ar = ar - ci * ei[k];
        ai = ai + cr * ei[k];
        ai = ai + ci * er[k];
      }
      acc = acc + ar * ar;
      acc = acc + ai * ai;
    }
    out[i] = acc;
  }
}

AT_TARGET_SSE2
void bartlett_power_sse2(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m128d pj = _mm_loadu_pd(tre + j * pitch + i);
      const __m128d qj = _mm_loadu_pd(tim + j * pitch + i);
      const __m128d mag =
          _mm_add_pd(_mm_mul_pd(pj, pj), _mm_mul_pd(qj, qj));
      acc = _mm_add_pd(acc, _mm_mul_pd(mag, _mm_set1_pd(r[j * m + j].real())));
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m128d pk = _mm_loadu_pd(tre + k * pitch + i);
        const __m128d qk = _mm_loadu_pd(tim + k * pitch + i);
        const __m128d dotr =
            _mm_add_pd(_mm_mul_pd(pj, pk), _mm_mul_pd(qj, qk));
        const __m128d doti =
            _mm_sub_pd(_mm_mul_pd(pj, qk), _mm_mul_pd(qj, pk));
        const __m128d u = _mm_set1_pd(r[j * m + k].real());
        const __m128d v = _mm_set1_pd(r[j * m + k].imag());
        const __m128d w =
            _mm_sub_pd(_mm_mul_pd(u, dotr), _mm_mul_pd(v, doti));
        acc = _mm_add_pd(acc, _mm_mul_pd(w, _mm_set1_pd(2.0)));
      }
    }
    _mm_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      acc = acc + (pj * pj + qj * qj) * r[j * m + j].real();
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double dotr = pj * pk + qj * qk;
        const double doti = pj * qk - qj * pk;
        const double w =
            r[j * m + k].real() * dotr - r[j * m + k].imag() * doti;
        acc = acc + w * 2.0;
      }
    }
    out[i] = acc;
  }
}

AT_TARGET_SSE2
void covariance_sse2(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      __m128d vre = _mm_setzero_pd(), vim = _mm_setzero_pd();
      std::size_t k = 0;
      for (; k + 2 <= n; k += 2) {
        const __m128d a = _mm_loadu_pd(pi + k);
        const __m128d b = _mm_loadu_pd(qi + k);
        const __m128d c = _mm_loadu_pd(pj + k);
        const __m128d d = _mm_loadu_pd(qj + k);
        vre = _mm_add_pd(vre, _mm_mul_pd(a, c));
        vre = _mm_add_pd(vre, _mm_mul_pd(b, d));
        vim = _mm_add_pd(vim, _mm_mul_pd(b, c));
        vim = _mm_sub_pd(vim, _mm_mul_pd(a, d));
      }
      double re = _mm_cvtsd_f64(vre) + _mm_cvtsd_f64(_mm_unpackhi_pd(vre, vre));
      double im = _mm_cvtsd_f64(vim) + _mm_cvtsd_f64(_mm_unpackhi_pd(vim, vim));
      for (; k < n; ++k) {
        re = re + pi[k] * pj[k];
        re = re + qi[k] * qj[k];
        im = im + qi[k] * pj[k];
        im = im - pi[k] * qj[k];
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

AT_TARGET_SSE2
void forward_backward_sse2(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  const double* d = reinterpret_cast<const double*>(r);
  double* o = reinterpret_cast<double*>(out);
  const __m128d conj_mask = _mm_set_pd(-0.0, 0.0);  // negate the imag lane
  const __m128d half = _mm_set1_pd(0.5);
  for (std::size_t t = 0; t < total; ++t) {
    const __m128d fwd = _mm_loadu_pd(d + 2 * t);
    __m128d rev = _mm_loadu_pd(d + 2 * (total - 1 - t));
    rev = _mm_xor_pd(rev, conj_mask);
    _mm_storeu_pd(o + 2 * t, _mm_mul_pd(_mm_add_pd(fwd, rev), half));
  }
}

AT_TARGET_SSE2
void gather_lerp_product_sse2(const double* power, const std::int32_t* bin0,
                              const std::int32_t* bin1, const double* frac,
                              std::size_t count, double floor, double* cells) {
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d vfloor = _mm_set1_pd(floor);
  std::size_t c = 0;
  for (; c + 2 <= count; c += 2) {
    const __m128d p0 = _mm_set_pd(power[bin0[c + 1]], power[bin0[c]]);
    const __m128d p1 = _mm_set_pd(power[bin1[c + 1]], power[bin1[c]]);
    const __m128d f = _mm_loadu_pd(frac + c);
    const __m128d a = _mm_mul_pd(_mm_sub_pd(ones, f), p0);
    __m128d v = _mm_add_pd(a, _mm_mul_pd(f, p1));
    v = _mm_max_pd(v, vfloor);
    _mm_storeu_pd(cells + c, _mm_mul_pd(_mm_loadu_pd(cells + c), v));
  }
  for (; c < count; ++c) {
    const double f = frac[c];
    const double a = (1.0 - f) * power[bin0[c]];
    const double v = a + f * power[bin1[c]];
    cells[c] *= std::max(v, floor);
  }
}

AT_TARGET_SSE2
void gather_lerp_product_batch_sse2(const double* table,
                                    const std::int32_t* bin0,
                                    const std::int32_t* bin1,
                                    const double* frac, std::size_t count,
                                    std::size_t nrows, double floor,
                                    double* cells) {
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d vfloor = _mm_set1_pd(floor);
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const __m128d fb = _mm_set1_pd(f);
    const __m128d omf = _mm_sub_pd(ones, fb);
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    std::size_t r = 0;
    for (; r + 2 <= nrows; r += 2) {
      const __m128d p0 = _mm_loadu_pd(t0 + r);
      const __m128d p1 = _mm_loadu_pd(t1 + r);
      const __m128d a = _mm_mul_pd(omf, p0);
      __m128d v = _mm_add_pd(a, _mm_mul_pd(fb, p1));
      v = _mm_max_pd(v, vfloor);
      _mm_storeu_pd(cell + r, _mm_mul_pd(_mm_loadu_pd(cell + r), v));
    }
    for (; r < nrows; ++r) {
      const double a = (1.0 - f) * t0[r];
      const double v = a + f * t1[r];
      cell[r] *= std::max(v, floor);
    }
  }
}

AT_TARGET_SSE2
void fir_batch_sse2(const double* in, std::size_t nrows, std::size_t nout,
                    const double* taps, std::size_t ntaps, double* out) {
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    std::size_t r = 0;
    for (; r + 2 <= nrows; r += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(taps[j]), _mm_loadu_pd(win + j * nrows + r)));
      _mm_storeu_pd(o + r, acc);
    }
    for (; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = acc + taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

// ------------------------------------------------------------- AVX2+FMA

AT_TARGET_AVX2
void projector_power_avx2(const SplitPlanes& t, const double* ev_re,
                          const double* ev_im, std::size_t nvec, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      __m256d ar = _mm256_setzero_pd(), ai = _mm256_setzero_pd();
      for (std::size_t k = 0; k < m; ++k) {
        const __m256d cr = _mm256_loadu_pd(tre + k * pitch + i);
        const __m256d ci = _mm256_loadu_pd(tim + k * pitch + i);
        const __m256d br = _mm256_set1_pd(er[k]);
        const __m256d bi = _mm256_set1_pd(ei[k]);
        ar = _mm256_fmadd_pd(cr, br, ar);
        ar = _mm256_fnmadd_pd(ci, bi, ar);
        ai = _mm256_fmadd_pd(cr, bi, ai);
        ai = _mm256_fmadd_pd(ci, br, ai);
      }
      acc = _mm256_fmadd_pd(ar, ar, acc);
      acc = _mm256_fmadd_pd(ai, ai, acc);
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar = std::fma(cr, er[k], ar);
        ar = std::fma(-ci, ei[k], ar);
        ai = std::fma(cr, ei[k], ai);
        ai = std::fma(ci, er[k], ai);
      }
      acc = std::fma(ar, ar, acc);
      acc = std::fma(ai, ai, acc);
    }
    out[i] = acc;
  }
}

AT_TARGET_AVX2
void bartlett_power_avx2(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m256d pj = _mm256_loadu_pd(tre + j * pitch + i);
      const __m256d qj = _mm256_loadu_pd(tim + j * pitch + i);
      const __m256d mag = _mm256_fmadd_pd(qj, qj, _mm256_mul_pd(pj, pj));
      acc = _mm256_fmadd_pd(mag, _mm256_set1_pd(r[j * m + j].real()), acc);
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m256d pk = _mm256_loadu_pd(tre + k * pitch + i);
        const __m256d qk = _mm256_loadu_pd(tim + k * pitch + i);
        const __m256d dotr = _mm256_fmadd_pd(qj, qk, _mm256_mul_pd(pj, pk));
        const __m256d doti = _mm256_fnmadd_pd(qj, pk, _mm256_mul_pd(pj, qk));
        const __m256d u = _mm256_set1_pd(r[j * m + k].real());
        const __m256d v = _mm256_set1_pd(r[j * m + k].imag());
        const __m256d w = _mm256_fnmadd_pd(v, doti, _mm256_mul_pd(u, dotr));
        acc = _mm256_fmadd_pd(w, _mm256_set1_pd(2.0), acc);
      }
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      const double mag = std::fma(qj, qj, pj * pj);
      acc = std::fma(mag, r[j * m + j].real(), acc);
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double dotr = std::fma(qj, qk, pj * pk);
        const double doti = std::fma(-qj, pk, pj * qk);
        const double w = std::fma(-r[j * m + k].imag(), doti,
                                  r[j * m + k].real() * dotr);
        acc = std::fma(w, 2.0, acc);
      }
    }
    out[i] = acc;
  }
}

AT_TARGET_AVX2
double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

AT_TARGET_AVX2
void covariance_avx2(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      __m256d vre = _mm256_setzero_pd(), vim = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= n; k += 4) {
        const __m256d a = _mm256_loadu_pd(pi + k);
        const __m256d b = _mm256_loadu_pd(qi + k);
        const __m256d c = _mm256_loadu_pd(pj + k);
        const __m256d d = _mm256_loadu_pd(qj + k);
        vre = _mm256_fmadd_pd(a, c, vre);
        vre = _mm256_fmadd_pd(b, d, vre);
        vim = _mm256_fmadd_pd(b, c, vim);
        vim = _mm256_fnmadd_pd(a, d, vim);
      }
      double re = hsum4(vre), im = hsum4(vim);
      for (; k < n; ++k) {
        re = std::fma(pi[k], pj[k], re);
        re = std::fma(qi[k], qj[k], re);
        im = std::fma(qi[k], pj[k], im);
        im = std::fma(-pi[k], qj[k], im);
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

AT_TARGET_AVX2
void forward_backward_avx2(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  const double* d = reinterpret_cast<const double*>(r);
  double* o = reinterpret_cast<double*>(out);
  const __m256d conj_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t t = 0;
  for (; t + 2 <= total; t += 2) {
    const __m256d fwd = _mm256_loadu_pd(d + 2 * t);
    // Two complex values in descending order, then swap the 128-bit
    // halves so lane order matches [total-1-t, total-1-(t+1)].
    __m256d rev = _mm256_loadu_pd(d + 2 * (total - t - 2));
    rev = _mm256_permute2f128_pd(rev, rev, 0x01);
    rev = _mm256_xor_pd(rev, conj_mask);
    _mm256_storeu_pd(o + 2 * t, _mm256_mul_pd(_mm256_add_pd(fwd, rev), half));
  }
  for (; t < total; ++t)
    out[t] = 0.5 * (r[t] + std::conj(r[total - 1 - t]));
}

AT_TARGET_AVX2
void gather_lerp_product_avx2(const double* power, const std::int32_t* bin0,
                              const std::int32_t* bin1, const double* frac,
                              std::size_t count, double floor, double* cells) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d vfloor = _mm256_set1_pd(floor);
  // The all-lanes mask + zeroed source form of the gather: same
  // instruction, but avoids GCC's uninitialized-source expansion of
  // the plain _mm256_i32gather_pd macro.
  const __m256d gmask = _mm256_cmp_pd(ones, _mm256_setzero_pd(), _CMP_NEQ_OQ);
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bin0 + c));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bin1 + c));
    const __m256d p0 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), power, i0, gmask, 8);
    const __m256d p1 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), power, i1, gmask, 8);
    const __m256d f = _mm256_loadu_pd(frac + c);
    const __m256d a = _mm256_mul_pd(_mm256_sub_pd(ones, f), p0);
    __m256d v = _mm256_fmadd_pd(f, p1, a);
    v = _mm256_max_pd(v, vfloor);
    _mm256_storeu_pd(cells + c, _mm256_mul_pd(_mm256_loadu_pd(cells + c), v));
  }
  for (; c < count; ++c) {
    const double f = frac[c];
    const double a = (1.0 - f) * power[bin0[c]];
    const double v = std::fma(f, power[bin1[c]], a);
    cells[c] *= std::max(v, floor);
  }
}

AT_TARGET_AVX2
void gather_lerp_product_batch_avx2(const double* table,
                                    const std::int32_t* bin0,
                                    const std::int32_t* bin1,
                                    const double* frac, std::size_t count,
                                    std::size_t nrows, double floor,
                                    double* cells) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d vfloor = _mm256_set1_pd(floor);
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const __m256d fb = _mm256_set1_pd(f);
    const __m256d omf = _mm256_sub_pd(ones, fb);
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    std::size_t r = 0;
    for (; r + 4 <= nrows; r += 4) {
      const __m256d p0 = _mm256_loadu_pd(t0 + r);
      const __m256d p1 = _mm256_loadu_pd(t1 + r);
      const __m256d a = _mm256_mul_pd(omf, p0);
      __m256d v = _mm256_fmadd_pd(fb, p1, a);
      v = _mm256_max_pd(v, vfloor);
      _mm256_storeu_pd(cell + r, _mm256_mul_pd(_mm256_loadu_pd(cell + r), v));
    }
    for (; r < nrows; ++r) {
      const double a = (1.0 - f) * t0[r];
      const double v = std::fma(f, t1[r], a);
      cell[r] *= std::max(v, floor);
    }
  }
}

AT_TARGET_AVX2_NOFMA
void fir_batch_avx2(const double* in, std::size_t nrows, std::size_t nout,
                    const double* taps, std::size_t ntaps, double* out) {
  // Deliberately mul+add, in a target without FMA so the compiler
  // cannot contract the pair: bit-compatible with the un-batched blur,
  // which compiles portably and never fuses.
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    std::size_t r = 0;
    for (; r + 4 <= nrows; r += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(taps[j]),
                                               _mm256_loadu_pd(win + j * nrows + r)));
      _mm256_storeu_pd(o + r, acc);
    }
    for (; r + 2 <= nrows; r += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(taps[j]), _mm_loadu_pd(win + j * nrows + r)));
      _mm_storeu_pd(o + r, acc);
    }
    for (; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = acc + taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

#endif  // AT_KERNELS_X86

using core::simd::Level;

}  // namespace

void projector_power(const SplitPlanes& t, const double* ev_re,
                     const double* ev_im, std::size_t nvec, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return projector_power_avx2(t, ev_re, ev_im, nvec, out);
    case Level::kSse2:
      return projector_power_sse2(t, ev_re, ev_im, nvec, out);
    case Level::kScalar:
      break;
  }
#endif
  projector_power_scalar(t, ev_re, ev_im, nvec, out);
}

void bartlett_power(const SplitPlanes& t, const cplx* r, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return bartlett_power_avx2(t, r, out);
    case Level::kSse2:
      return bartlett_power_sse2(t, r, out);
    case Level::kScalar:
      break;
  }
#endif
  bartlett_power_scalar(t, r, out);
}

void covariance(const SplitPlanes& x, cplx* r) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return covariance_avx2(x, r);
    case Level::kSse2:
      return covariance_sse2(x, r);
    case Level::kScalar:
      break;
  }
#endif
  covariance_scalar(x, r);
}

void forward_backward(const cplx* r, std::size_t m, cplx* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return forward_backward_avx2(r, m, out);
    case Level::kSse2:
      return forward_backward_sse2(r, m, out);
    case Level::kScalar:
      break;
  }
#endif
  forward_backward_scalar(r, m, out);
}

void gather_lerp_product(const double* power, const std::int32_t* bin0,
                         const std::int32_t* bin1, const double* frac,
                         std::size_t count, double floor, double* cells) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return gather_lerp_product_avx2(power, bin0, bin1, frac, count, floor,
                                      cells);
    case Level::kSse2:
      return gather_lerp_product_sse2(power, bin0, bin1, frac, count, floor,
                                      cells);
    case Level::kScalar:
      break;
  }
#endif
  gather_lerp_product_scalar(power, bin0, bin1, frac, count, floor, cells);
}

void gather_lerp_product_batch(const double* table, const std::int32_t* bin0,
                               const std::int32_t* bin1, const double* frac,
                               std::size_t count, std::size_t nrows,
                               double floor, double* cells) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return gather_lerp_product_batch_avx2(table, bin0, bin1, frac, count,
                                            nrows, floor, cells);
    case Level::kSse2:
      return gather_lerp_product_batch_sse2(table, bin0, bin1, frac, count,
                                            nrows, floor, cells);
    case Level::kScalar:
      break;
  }
#endif
  gather_lerp_product_batch_scalar(table, bin0, bin1, frac, count, nrows,
                                   floor, cells);
}

void fir_batch(const double* in, std::size_t nrows, std::size_t nout,
               const double* taps, std::size_t ntaps, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return fir_batch_avx2(in, nrows, nout, taps, ntaps, out);
    case Level::kSse2:
      return fir_batch_sse2(in, nrows, nout, taps, ntaps, out);
    case Level::kScalar:
      break;
  }
#endif
  fir_batch_scalar(in, nrows, nout, taps, ntaps, out);
}

}  // namespace arraytrack::linalg::kernels

// ------------------------------------------------------------ quantizers

namespace arraytrack::linalg {

QuantPlanes QuantPlanes::quantize(const SplitPlanes& t) {
  QuantPlanes q;
  q.rows = t.rows;
  q.m = t.m;
  q.pitch = t.rows;
  q.re.assign(q.m * q.pitch, 0);
  q.im.assign(q.m * q.pitch, 0);
  q.scale.assign(q.rows, 0.0f);
  for (std::size_t i = 0; i < t.rows; ++i) {
    double amax = 0.0;
    for (std::size_t k = 0; k < t.m; ++k) {
      amax = std::max(amax, std::abs(t.re[k * t.pitch + i]));
      amax = std::max(amax, std::abs(t.im[k * t.pitch + i]));
    }
    // Widen the scale one float ulp so float(amax / 32767) rounding
    // can never push a quantized magnitude past 32767.
    const float s = amax > 0.0 ? float(amax / 32766.0) : 1.0f;
    q.scale[i] = s;
    for (std::size_t k = 0; k < t.m; ++k) {
      const auto clamp16 = [](double v) {
        return std::int16_t(std::max(-32767.0, std::min(32767.0, v)));
      };
      q.re[k * q.pitch + i] =
          clamp16(std::nearbyint(t.re[k * t.pitch + i] / double(s)));
      q.im[k * q.pitch + i] =
          clamp16(std::nearbyint(t.im[k * t.pitch + i] / double(s)));
    }
  }
  return q;
}

QuantVectors QuantVectors::quantize(const double* ev_re, const double* ev_im,
                                    std::size_t nvec, std::size_t m) {
  QuantVectors q;
  q.nvec = nvec;
  q.m = m;
  q.re.assign(nvec * m, 0);
  q.im.assign(nvec * m, 0);
  q.scale.assign(nvec, 0.0f);
  for (std::size_t s = 0; s < nvec; ++s) {
    double amax = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      amax = std::max(amax, std::abs(ev_re[s * m + k]));
      amax = std::max(amax, std::abs(ev_im[s * m + k]));
    }
    const float sc = amax > 0.0 ? float(amax / 1022.0) : 1.0f;
    q.scale[s] = sc;
    for (std::size_t k = 0; k < m; ++k) {
      const auto clamp10 = [](double v) {
        return std::int16_t(std::max(-1023.0, std::min(1023.0, v)));
      };
      q.re[s * m + k] = clamp10(std::nearbyint(ev_re[s * m + k] / double(sc)));
      q.im[s * m + k] = clamp10(std::nearbyint(ev_im[s * m + k] / double(sc)));
    }
  }
  return q;
}

namespace {

/// Round-up Q.6 upper bound on log2(v) for a finite normal v > 0,
/// without calling log2: split v = 2^e * 1.m, bound the mantissa by
/// the next 1/256 grid point above it, and look up a round-up table
/// of 64 * log2(1 + i/256). Overshoots the exact ceil by at most
/// 64 * log2(257/256) + 1 < 1.4 Q.6 steps, which goes into
/// slack_bits; table construction is on every locate's critical path,
/// so the ~4 ns log2 per bin matters.
inline std::int32_t ceil_log2_q6_upper(double v) {
  static const auto kLut = [] {
    std::array<std::int32_t, 257> t{};
    for (int i = 0; i <= 256; ++i)
      t[std::size_t(i)] = std::int32_t(
          std::ceil(std::log2(1.0 + double(i) / 256.0) *
                    double(1 << CoarseLogTable::kFracBits)));
    return t;
  }();
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const std::int64_t e = std::int64_t((bits >> 52) & 0x7ff) - 1023;
  const std::uint32_t m = std::uint32_t((bits >> 44) & 0xff);
  return std::int32_t(e * (1 << CoarseLogTable::kFracBits)) + kLut[m + 1];
}

}  // namespace

CoarseLogTable coarse_log_table(const double* p, std::size_t bins,
                                double floor) {
  CoarseLogTable t;
  t.pairmax.resize(bins);
  // 1e-300 keeps the clamped values normal, which ceil_log2_q6_upper's
  // exponent extraction requires.
  const double lo = std::max(floor, 1e-300);
  const double ulp = 1.0 / double(1 << CoarseLogTable::kFracBits);
  double max_ratio = 1.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double p0 = std::max(p[b], lo);
    const double p1 = std::max(p[(b + 1) % bins], lo);
    const double hi2 = std::max(p0, p1);
    const double lo2 = std::min(p0, p1);
    // Round-up Q.6 log2 of the pair max: a certified upper bound on
    // log2 of any clamped lerp between the two bins.
    t.pairmax[b] = ceil_log2_q6_upper(hi2);
    // The lerp can sink to the smaller endpoint, so the per-cell
    // overshoot of this entry is at most the pair's log-ratio (plus
    // the quantization terms below).
    max_ratio = std::max(max_ratio, hi2 / lo2);
  }
  t.slack_bits =
      std::log2(max_ratio) + std::log2(257.0 / 256.0) + 2.0 * ulp;
  return t;
}

}  // namespace arraytrack::linalg

// -------------------------------------------------------- quant kernels
//
// Determinism contract for the int16 tier: the multiply-accumulate
// core is exact integer arithmetic (widening 16x16 -> 32-bit), and the
// int32 -> double finalize performs the same sequence of separately
// rounded double operations at every dispatch level (the AVX2 paths
// are compiled without FMA in the target ISA so the compiler cannot
// contract them). Results are therefore bitwise identical across
// scalar/SSE2/AVX2 — not merely 1e-9-close like the float kernels.

namespace arraytrack::linalg::kernels {
namespace {

void projector_power_quant_scalar(const QuantPlanes& t, const QuantVectors& ev,
                                  double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < ev.nvec; ++s) {
      std::int32_t ar = 0, ai = 0;
      for (std::size_t k = 0; k < m; ++k) {
        const std::int32_t cr = t.re[k * pitch + i];
        const std::int32_t ci = t.im[k * pitch + i];
        const std::int32_t er = ev.re[s * m + k];
        const std::int32_t ei = ev.im[s * m + k];
        ar += cr * er - ci * ei;
        ai += cr * ei + ci * er;
      }
      const double se = double(ev.scale[s]);
      const double se2 = se * se;
      const double ard = double(ar), aid = double(ai);
      double sq = ard * ard;
      const double sq2 = aid * aid;
      sq = sq + sq2;
      sq = sq * se2;
      acc = acc + sq;
    }
    const double si = double(t.scale[i]);
    const double si2 = si * si;
    out[i] = acc * si2;
  }
}

void bartlett_power_quant_scalar(const QuantPlanes& t, const std::int32_t* qre,
                                 const std::int32_t* qim, double rscale,
                                 double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t pj = t.re[j * pitch + i];
      const std::int32_t qj = t.im[j * pitch + i];
      const std::int32_t mag = pj * pj + qj * qj;
      acc = acc + double(mag) * double(qre[j * m + j]);
      for (std::size_t k = j + 1; k < m; ++k) {
        const std::int32_t pk = t.re[k * pitch + i];
        const std::int32_t qk = t.im[k * pitch + i];
        const std::int32_t dotr = pj * pk + qj * qk;
        const std::int32_t doti = pj * qk - qj * pk;
        double w = double(qre[j * m + k]) * double(dotr);
        w = w - double(qim[j * m + k]) * double(doti);
        acc = acc + w * 2.0;
      }
    }
    const double si = double(t.scale[i]);
    double f = si * si;
    f = f * rscale;
    out[i] = acc * f;
  }
}

void score_accum_scalar(const std::int32_t* table, const std::int32_t* bin0,
                        std::size_t count, std::int32_t* score) {
  for (std::size_t c = 0; c < count; ++c) score[c] += table[bin0[c]];
}

#if AT_KERNELS_X86

// Packs the two int16 halves of a pmaddwd broadcast operand: the low
// word multiplies the first element of each (re, im) pair, the high
// word the second.
inline std::int32_t madd_pair(std::int16_t lo, std::int16_t hi) {
  return std::int32_t(std::uint16_t(lo)) |
         (std::int32_t(std::uint16_t(hi)) << 16);
}

AT_TARGET_SSE2
void projector_power_quant_sse2(const QuantPlanes& t, const QuantVectors& ev,
                                double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  std::size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
    __m128d acc45 = _mm_setzero_pd(), acc67 = _mm_setzero_pd();
    for (std::size_t s = 0; s < ev.nvec; ++s) {
      __m128i ar_lo = _mm_setzero_si128(), ar_hi = _mm_setzero_si128();
      __m128i ai_lo = _mm_setzero_si128(), ai_hi = _mm_setzero_si128();
      for (std::size_t k = 0; k < m; ++k) {
        const __m128i cr = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(t.re.data() + k * pitch + i));
        const __m128i ci = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(t.im.data() + k * pitch + i));
        const __m128i lo = _mm_unpacklo_epi16(cr, ci);  // rows i..i+3
        const __m128i hi = _mm_unpackhi_epi16(cr, ci);  // rows i+4..i+7
        const std::int16_t er = ev.re[s * m + k];
        const std::int16_t ei = ev.im[s * m + k];
        const __m128i bar = _mm_set1_epi32(madd_pair(er, std::int16_t(-ei)));
        const __m128i bai = _mm_set1_epi32(madd_pair(ei, er));
        ar_lo = _mm_add_epi32(ar_lo, _mm_madd_epi16(lo, bar));
        ar_hi = _mm_add_epi32(ar_hi, _mm_madd_epi16(hi, bar));
        ai_lo = _mm_add_epi32(ai_lo, _mm_madd_epi16(lo, bai));
        ai_hi = _mm_add_epi32(ai_hi, _mm_madd_epi16(hi, bai));
      }
      const double se = double(ev.scale[s]);
      const __m128d se2 = _mm_set1_pd(se * se);
      const auto fold = [se2](__m128d acc, __m128i ar2, __m128i ai2) {
        const __m128d ard = _mm_cvtepi32_pd(ar2);
        const __m128d aid = _mm_cvtepi32_pd(ai2);
        __m128d sq = _mm_mul_pd(ard, ard);
        const __m128d sq2 = _mm_mul_pd(aid, aid);
        sq = _mm_add_pd(sq, sq2);
        sq = _mm_mul_pd(sq, se2);
        return _mm_add_pd(acc, sq);
      };
      acc01 = fold(acc01, ar_lo, ai_lo);
      acc23 = fold(acc23, _mm_shuffle_epi32(ar_lo, _MM_SHUFFLE(1, 0, 3, 2)),
                   _mm_shuffle_epi32(ai_lo, _MM_SHUFFLE(1, 0, 3, 2)));
      acc45 = fold(acc45, ar_hi, ai_hi);
      acc67 = fold(acc67, _mm_shuffle_epi32(ar_hi, _MM_SHUFFLE(1, 0, 3, 2)),
                   _mm_shuffle_epi32(ai_hi, _MM_SHUFFLE(1, 0, 3, 2)));
    }
    const __m128 f03 = _mm_loadu_ps(t.scale.data() + i);
    const __m128 f47 = _mm_loadu_ps(t.scale.data() + i + 4);
    const auto store2 = [](double* dst, __m128d acc, __m128d sf) {
      const __m128d si2 = _mm_mul_pd(sf, sf);
      _mm_storeu_pd(dst, _mm_mul_pd(acc, si2));
    };
    store2(out + i, acc01, _mm_cvtps_pd(f03));
    store2(out + i + 2, acc23, _mm_cvtps_pd(_mm_movehl_ps(f03, f03)));
    store2(out + i + 4, acc45, _mm_cvtps_pd(f47));
    store2(out + i + 6, acc67, _mm_cvtps_pd(_mm_movehl_ps(f47, f47)));
  }
  // Scalar tail: integers are exact and the double chain matches the
  // lane chain op-for-op, so tail rows equal their vector-lane bits.
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < ev.nvec; ++s) {
      std::int32_t ar = 0, ai = 0;
      for (std::size_t k = 0; k < m; ++k) {
        const std::int32_t cr = t.re[k * pitch + i];
        const std::int32_t ci = t.im[k * pitch + i];
        const std::int32_t er = ev.re[s * m + k];
        const std::int32_t ei = ev.im[s * m + k];
        ar += cr * er - ci * ei;
        ai += cr * ei + ci * er;
      }
      const double se = double(ev.scale[s]);
      const double se2 = se * se;
      const double ard = double(ar), aid = double(ai);
      double sq = ard * ard;
      const double sq2 = aid * aid;
      sq = sq + sq2;
      sq = sq * se2;
      acc = acc + sq;
    }
    const double si = double(t.scale[i]);
    const double si2 = si * si;
    out[i] = acc * si2;
  }
}

AT_TARGET_SSE2
void bartlett_power_quant_sse2(const QuantPlanes& t, const std::int32_t* qre,
                               const std::int32_t* qim, double rscale,
                               double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m128i pj = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(t.re.data() + j * pitch + i));
      const __m128i qj = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(t.im.data() + j * pitch + i));
      const __m128i pairj = _mm_unpacklo_epi16(pj, qj);  // 4 (p,q) pairs
      const __m128i mag = _mm_madd_epi16(pairj, pairj);
      const __m128d rd = _mm_set1_pd(double(qre[j * m + j]));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_cvtepi32_pd(mag), rd));
      const __m128i maghi = _mm_shuffle_epi32(mag, _MM_SHUFFLE(1, 0, 3, 2));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_cvtepi32_pd(maghi), rd));
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m128i pk = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(t.re.data() + k * pitch + i));
        const __m128i qk = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(t.im.data() + k * pitch + i));
        const __m128i pairk = _mm_unpacklo_epi16(pk, qk);
        const __m128i negpk = _mm_sub_epi16(_mm_setzero_si128(), pk);
        const __m128i pairki = _mm_unpacklo_epi16(qk, negpk);  // (q, -p)
        const __m128i dotr = _mm_madd_epi16(pairj, pairk);
        const __m128i doti = _mm_madd_epi16(pairj, pairki);
        const __m128d u = _mm_set1_pd(double(qre[j * m + k]));
        const __m128d v = _mm_set1_pd(double(qim[j * m + k]));
        const __m128d two = _mm_set1_pd(2.0);
        const auto off = [u, v, two](__m128d acc, __m128i dr, __m128i di) {
          __m128d w = _mm_mul_pd(u, _mm_cvtepi32_pd(dr));
          w = _mm_sub_pd(w, _mm_mul_pd(v, _mm_cvtepi32_pd(di)));
          return _mm_add_pd(acc, _mm_mul_pd(w, two));
        };
        acc01 = off(acc01, dotr, doti);
        acc23 = off(acc23, _mm_shuffle_epi32(dotr, _MM_SHUFFLE(1, 0, 3, 2)),
                    _mm_shuffle_epi32(doti, _MM_SHUFFLE(1, 0, 3, 2)));
      }
    }
    const __m128 sf = _mm_loadu_ps(t.scale.data() + i);
    const __m128d rs = _mm_set1_pd(rscale);
    const auto store2 = [rs](double* dst, __m128d acc, __m128d sd) {
      __m128d f = _mm_mul_pd(sd, sd);
      f = _mm_mul_pd(f, rs);
      _mm_storeu_pd(dst, _mm_mul_pd(acc, f));
    };
    store2(out + i, acc01, _mm_cvtps_pd(sf));
    store2(out + i + 2, acc23, _mm_cvtps_pd(_mm_movehl_ps(sf, sf)));
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t pj = t.re[j * pitch + i];
      const std::int32_t qj = t.im[j * pitch + i];
      const std::int32_t mag = pj * pj + qj * qj;
      acc = acc + double(mag) * double(qre[j * m + j]);
      for (std::size_t k = j + 1; k < m; ++k) {
        const std::int32_t pk = t.re[k * pitch + i];
        const std::int32_t qk = t.im[k * pitch + i];
        const std::int32_t dotr = pj * pk + qj * qk;
        const std::int32_t doti = pj * qk - qj * pk;
        double w = double(qre[j * m + k]) * double(dotr);
        w = w - double(qim[j * m + k]) * double(doti);
        acc = acc + w * 2.0;
      }
    }
    const double si = double(t.scale[i]);
    double f = si * si;
    f = f * rscale;
    out[i] = acc * f;
  }
}

// Lambdas do not inherit the enclosing function's target attribute, so
// the AVX2 quant helpers are standalone targeted functions.
AT_TARGET_AVX2_NOFMA
inline __m256d quant_fold_avx2(__m256d acc4, __m128i ar4, __m128i ai4,
                               __m256d se2) {
  const __m256d ard = _mm256_cvtepi32_pd(ar4);
  const __m256d aid = _mm256_cvtepi32_pd(ai4);
  __m256d sq = _mm256_mul_pd(ard, ard);
  const __m256d sq2 = _mm256_mul_pd(aid, aid);
  sq = _mm256_add_pd(sq, sq2);
  sq = _mm256_mul_pd(sq, se2);
  return _mm256_add_pd(acc4, sq);
}

AT_TARGET_AVX2_NOFMA
inline void quant_store4_avx2(double* dst, __m256d acc4, __m128 sf) {
  const __m256d sd = _mm256_cvtps_pd(sf);
  const __m256d si2 = _mm256_mul_pd(sd, sd);
  _mm256_storeu_pd(dst, _mm256_mul_pd(acc4, si2));
}

AT_TARGET_AVX2_NOFMA
inline __m256d quant_off_avx2(__m256d acc4, __m128i dr, __m128i di, __m256d u,
                              __m256d v, __m256d two) {
  __m256d w = _mm256_mul_pd(u, _mm256_cvtepi32_pd(dr));
  w = _mm256_sub_pd(w, _mm256_mul_pd(v, _mm256_cvtepi32_pd(di)));
  return _mm256_add_pd(acc4, _mm256_mul_pd(w, two));
}

AT_TARGET_AVX2_NOFMA
inline void quant_store4_scaled_avx2(double* dst, __m256d acc4, __m128 sf,
                                     __m256d rs) {
  const __m256d sd = _mm256_cvtps_pd(sf);
  __m256d f = _mm256_mul_pd(sd, sd);
  f = _mm256_mul_pd(f, rs);
  _mm256_storeu_pd(dst, _mm256_mul_pd(acc4, f));
}

AT_TARGET_AVX2_NOFMA
void projector_power_quant_avx2(const QuantPlanes& t, const QuantVectors& ev,
                                double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  std::size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    // Lane order after 256-bit unpack: low 128 covers rows i..i+3 and
    // i+8..i+11, high 128 rows i+4..i+7 and i+12..i+15.
    __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                      _mm256_setzero_pd(), _mm256_setzero_pd()};
    for (std::size_t s = 0; s < ev.nvec; ++s) {
      __m256i ar_lo = _mm256_setzero_si256(), ar_hi = _mm256_setzero_si256();
      __m256i ai_lo = _mm256_setzero_si256(), ai_hi = _mm256_setzero_si256();
      for (std::size_t k = 0; k < m; ++k) {
        const __m256i cr = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.re.data() + k * pitch + i));
        const __m256i ci = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.im.data() + k * pitch + i));
        const __m256i lo = _mm256_unpacklo_epi16(cr, ci);
        const __m256i hi = _mm256_unpackhi_epi16(cr, ci);
        const std::int16_t er = ev.re[s * m + k];
        const std::int16_t ei = ev.im[s * m + k];
        const __m256i bar =
            _mm256_set1_epi32(madd_pair(er, std::int16_t(-ei)));
        const __m256i bai = _mm256_set1_epi32(madd_pair(ei, er));
        ar_lo = _mm256_add_epi32(ar_lo, _mm256_madd_epi16(lo, bar));
        ar_hi = _mm256_add_epi32(ar_hi, _mm256_madd_epi16(hi, bar));
        ai_lo = _mm256_add_epi32(ai_lo, _mm256_madd_epi16(lo, bai));
        ai_hi = _mm256_add_epi32(ai_hi, _mm256_madd_epi16(hi, bai));
      }
      const double se = double(ev.scale[s]);
      const __m256d se2 = _mm256_set1_pd(se * se);
      acc[0] = quant_fold_avx2(acc[0], _mm256_castsi256_si128(ar_lo),
                               _mm256_castsi256_si128(ai_lo), se2);  // i..i+3
      acc[1] = quant_fold_avx2(acc[1], _mm256_castsi256_si128(ar_hi),
                               _mm256_castsi256_si128(ai_hi), se2);  // +4..+7
      acc[2] = quant_fold_avx2(acc[2], _mm256_extracti128_si256(ar_lo, 1),
                               _mm256_extracti128_si256(ai_lo, 1),
                               se2);  // i+8..i+11
      acc[3] = quant_fold_avx2(acc[3], _mm256_extracti128_si256(ar_hi, 1),
                               _mm256_extracti128_si256(ai_hi, 1),
                               se2);  // i+12..i+15
    }
    quant_store4_avx2(out + i, acc[0], _mm_loadu_ps(t.scale.data() + i));
    quant_store4_avx2(out + i + 4, acc[1],
                      _mm_loadu_ps(t.scale.data() + i + 4));
    quant_store4_avx2(out + i + 8, acc[2],
                      _mm_loadu_ps(t.scale.data() + i + 8));
    quant_store4_avx2(out + i + 12, acc[3],
                      _mm_loadu_ps(t.scale.data() + i + 12));
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < ev.nvec; ++s) {
      std::int32_t ar = 0, ai = 0;
      for (std::size_t k = 0; k < m; ++k) {
        const std::int32_t cr = t.re[k * pitch + i];
        const std::int32_t ci = t.im[k * pitch + i];
        const std::int32_t er = ev.re[s * m + k];
        const std::int32_t ei = ev.im[s * m + k];
        ar += cr * er - ci * ei;
        ai += cr * ei + ci * er;
      }
      const double se = double(ev.scale[s]);
      const double se2 = se * se;
      const double ard = double(ar), aid = double(ai);
      double sq = ard * ard;
      const double sq2 = aid * aid;
      sq = sq + sq2;
      sq = sq * se2;
      acc = acc + sq;
    }
    const double si = double(t.scale[i]);
    const double si2 = si * si;
    out[i] = acc * si2;
  }
}

AT_TARGET_AVX2_NOFMA
void bartlett_power_quant_avx2(const QuantPlanes& t, const std::int32_t* qre,
                               const std::int32_t* qim, double rscale,
                               double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  std::size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    __m256d acc03 = _mm256_setzero_pd(), acc47 = _mm256_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m128i pj = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(t.re.data() + j * pitch + i));
      const __m128i qj = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(t.im.data() + j * pitch + i));
      // Row-ordered halves: low 128 rows i..i+3, high rows i+4..i+7.
      const __m256i pairj = _mm256_set_m128i(_mm_unpackhi_epi16(pj, qj),
                                             _mm_unpacklo_epi16(pj, qj));
      const __m256i mag = _mm256_madd_epi16(pairj, pairj);
      const __m256d rd = _mm256_set1_pd(double(qre[j * m + j]));
      acc03 = _mm256_add_pd(
          acc03,
          _mm256_mul_pd(_mm256_cvtepi32_pd(_mm256_castsi256_si128(mag)), rd));
      acc47 = _mm256_add_pd(
          acc47, _mm256_mul_pd(
                     _mm256_cvtepi32_pd(_mm256_extracti128_si256(mag, 1)), rd));
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m128i pk = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(t.re.data() + k * pitch + i));
        const __m128i qk = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(t.im.data() + k * pitch + i));
        const __m256i pairk = _mm256_set_m128i(_mm_unpackhi_epi16(pk, qk),
                                               _mm_unpacklo_epi16(pk, qk));
        const __m128i negpk = _mm_sub_epi16(_mm_setzero_si128(), pk);
        const __m256i pairki = _mm256_set_m128i(
            _mm_unpackhi_epi16(qk, negpk), _mm_unpacklo_epi16(qk, negpk));
        const __m256i dotr = _mm256_madd_epi16(pairj, pairk);
        const __m256i doti = _mm256_madd_epi16(pairj, pairki);
        const __m256d u = _mm256_set1_pd(double(qre[j * m + k]));
        const __m256d v = _mm256_set1_pd(double(qim[j * m + k]));
        const __m256d two = _mm256_set1_pd(2.0);
        acc03 = quant_off_avx2(acc03, _mm256_castsi256_si128(dotr),
                               _mm256_castsi256_si128(doti), u, v, two);
        acc47 = quant_off_avx2(acc47, _mm256_extracti128_si256(dotr, 1),
                               _mm256_extracti128_si256(doti, 1), u, v, two);
      }
    }
    const __m256d rs = _mm256_set1_pd(rscale);
    quant_store4_scaled_avx2(out + i, acc03,
                             _mm_loadu_ps(t.scale.data() + i), rs);
    quant_store4_scaled_avx2(out + i + 4, acc47,
                             _mm_loadu_ps(t.scale.data() + i + 4), rs);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t pj = t.re[j * pitch + i];
      const std::int32_t qj = t.im[j * pitch + i];
      const std::int32_t mag = pj * pj + qj * qj;
      acc = acc + double(mag) * double(qre[j * m + j]);
      for (std::size_t k = j + 1; k < m; ++k) {
        const std::int32_t pk = t.re[k * pitch + i];
        const std::int32_t qk = t.im[k * pitch + i];
        const std::int32_t dotr = pj * pk + qj * qk;
        const std::int32_t doti = pj * qk - qj * pk;
        double w = double(qre[j * m + k]) * double(dotr);
        w = w - double(qim[j * m + k]) * double(doti);
        acc = acc + w * 2.0;
      }
    }
    const double si = double(t.scale[i]);
    double f = si * si;
    f = f * rscale;
    out[i] = acc * f;
  }
}

AT_TARGET_AVX2
void score_accum_avx2(const std::int32_t* table, const std::int32_t* bin0,
                      std::size_t count, std::int32_t* score) {
  std::size_t c = 0;
  for (; c + 8 <= count; c += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bin0 + c));
    const __m256i vals = _mm256_i32gather_epi32(table, idx, 4);
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(score + c));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(score + c),
                        _mm256_add_epi32(cur, vals));
  }
  for (; c < count; ++c) score[c] += table[bin0[c]];
}

AT_TARGET_AVX2
std::int32_t score_max_avx2(const std::int32_t* v, std::size_t n) {
  std::int32_t best = v[0];
  std::size_t i = 0;
  if (n >= 8) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    for (i = 8; i + 8 <= n; i += 8)
      acc = _mm256_max_epi32(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int l = 0; l < 8; ++l) best = std::max(best, lanes[l]);
  }
  for (; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

AT_TARGET_AVX2
std::size_t score_count_ge_avx2(const std::int32_t* v, std::size_t n,
                                std::int32_t thr) {
  const __m256i lim = _mm256_set1_epi32(thr - 1);  // >= thr  <=>  > thr-1
  std::size_t count = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(x, lim)));
    count += std::size_t(__builtin_popcount(unsigned(mask)));
  }
  for (; i < n; ++i) count += v[i] >= thr;
  return count;
}

AT_TARGET_AVX2
std::size_t score_collect_ge_avx2(const std::int32_t* v, std::size_t n,
                                  std::int32_t thr, std::uint32_t* out) {
  const __m256i lim = _mm256_set1_epi32(thr - 1);
  std::size_t w = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    unsigned mask = unsigned(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(x, lim))));
    while (mask) {
      const unsigned l = unsigned(__builtin_ctz(mask));
      out[w++] = std::uint32_t(i + l);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i)
    if (v[i] >= thr) out[w++] = std::uint32_t(i);
  return w;
}

#endif  // AT_KERNELS_X86

std::int32_t score_max_scalar(const std::int32_t* v, std::size_t n) {
  std::int32_t best = v[0];
  for (std::size_t i = 1; i < n; ++i) best = std::max(best, v[i]);
  return best;
}

std::size_t score_count_ge_scalar(const std::int32_t* v, std::size_t n,
                                  std::int32_t thr) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += v[i] >= thr;
  return count;
}

std::size_t score_collect_ge_scalar(const std::int32_t* v, std::size_t n,
                                    std::int32_t thr, std::uint32_t* out) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (v[i] >= thr) out[w++] = std::uint32_t(i);
  return w;
}

}  // namespace

void projector_power_quant(const QuantPlanes& t, const QuantVectors& ev,
                           double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return projector_power_quant_avx2(t, ev, out);
    case Level::kSse2:
      return projector_power_quant_sse2(t, ev, out);
    case Level::kScalar:
      break;
  }
#endif
  projector_power_quant_scalar(t, ev, out);
}

void bartlett_power_quant(const QuantPlanes& t, const cplx* r, double* out) {
  // Quantize the Hermitian operand once per call (m x m is tiny next
  // to the rows x m^2 sweep) in shared code, so every level consumes
  // identical integers.
  const std::size_t m = t.m;
  double amax = 0.0;
  for (std::size_t e = 0; e < m * m; ++e) {
    amax = std::max(amax, std::abs(r[e].real()));
    amax = std::max(amax, std::abs(r[e].imag()));
  }
  const double rscale = amax > 0.0 ? amax / 32767.0 : 1.0;
  std::vector<std::int32_t> qre(m * m), qim(m * m);
  for (std::size_t e = 0; e < m * m; ++e) {
    qre[e] = std::int32_t(std::nearbyint(r[e].real() / rscale));
    qim[e] = std::int32_t(std::nearbyint(r[e].imag() / rscale));
  }
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return bartlett_power_quant_avx2(t, qre.data(), qim.data(), rscale, out);
    case Level::kSse2:
      return bartlett_power_quant_sse2(t, qre.data(), qim.data(), rscale, out);
    case Level::kScalar:
      break;
  }
#endif
  bartlett_power_quant_scalar(t, qre.data(), qim.data(), rscale, out);
}

void score_accum(const std::int32_t* table, const std::int32_t* bin0,
                 std::size_t count, std::int32_t* score) {
#if AT_KERNELS_X86
  if (core::simd::active() == Level::kAvx2)
    return score_accum_avx2(table, bin0, count, score);
#endif
  score_accum_scalar(table, bin0, count, score);
}

std::int32_t score_max(const std::int32_t* v, std::size_t n) {
#if AT_KERNELS_X86
  if (core::simd::active() == Level::kAvx2) return score_max_avx2(v, n);
#endif
  return score_max_scalar(v, n);
}

std::size_t score_count_ge(const std::int32_t* v, std::size_t n,
                           std::int32_t thr) {
#if AT_KERNELS_X86
  // The vector compare tests > thr-1, which wraps at INT32_MIN; that
  // threshold means "everything" anyway, so the scalar path takes it.
  if (core::simd::active() == Level::kAvx2 &&
      thr != std::numeric_limits<std::int32_t>::min())
    return score_count_ge_avx2(v, n, thr);
#endif
  return score_count_ge_scalar(v, n, thr);
}

std::size_t score_collect_ge(const std::int32_t* v, std::size_t n,
                             std::int32_t thr, std::uint32_t* out) {
#if AT_KERNELS_X86
  if (core::simd::active() == Level::kAvx2 &&
      thr != std::numeric_limits<std::int32_t>::min())
    return score_collect_ge_avx2(v, n, thr, out);
#endif
  return score_collect_ge_scalar(v, n, thr, out);
}

}  // namespace arraytrack::linalg::kernels
