#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>

#include "core/simd.h"  // dependency-free leaf header (see its comment)

#if defined(__x86_64__) || defined(__i386__)
#define AT_KERNELS_X86 1
#include <immintrin.h>
#else
#define AT_KERNELS_X86 0
#endif

#if AT_KERNELS_X86 && (defined(__GNUC__) || defined(__clang__))
#define AT_TARGET_AVX2 __attribute__((target("avx2,fma")))
// AVX2 without FMA in the target ISA: for kernels whose bit-for-bit
// contract requires separate multiply/add (the batched blur FIR), the
// compiler must be unable to contract the mul+add intrinsic pair into
// a fused op, which -ffp-contract otherwise permits even for
// intrinsics.
#define AT_TARGET_AVX2_NOFMA __attribute__((target("avx2")))
#define AT_TARGET_SSE2 __attribute__((target("sse2")))
#else
#define AT_TARGET_AVX2
#define AT_TARGET_AVX2_NOFMA
#define AT_TARGET_SSE2
#endif

// Determinism note: every vector path below handles its remainder
// elements with scalar code whose rounding matches the full lanes
// op-for-op (std::fma where the lanes use fused ops, separate
// multiply/add where they do not). A cell or row therefore computes
// the same bits whether it lands in a full vector block or a tail,
// which is what keeps results independent of caller chunking (the
// thread pool splits the heatmap at arbitrary offsets).

namespace arraytrack::linalg::kernels {
namespace {

// ---------------------------------------------------------------- scalar

void projector_power_scalar(const SplitPlanes& t, const double* ev_re,
                            const double* ev_im, std::size_t nvec,
                            double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar += cr * er[k] - ci * ei[k];
        ai += cr * ei[k] + ci * er[k];
      }
      acc += ar * ar + ai * ai;
    }
    out[i] = acc;
  }
}

void bartlett_power_scalar(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      acc += r[j * m + j].real() * (pj * pj + qj * qj);
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double u = r[j * m + k].real();
        const double v = r[j * m + k].imag();
        // conj(a_j) R_jk a_k + its mirror term = 2 Re(conj(a_j) R_jk a_k).
        acc += 2.0 * (u * (pj * pk + qj * qk) - v * (pj * qk - qj * pk));
      }
    }
    out[i] = acc;
  }
}

void covariance_scalar(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      double re = 0.0, im = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        re += pi[k] * pj[k] + qi[k] * qj[k];
        im += qi[k] * pj[k] - pi[k] * qj[k];
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

void forward_backward_scalar(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  for (std::size_t t = 0; t < total; ++t)
    out[t] = 0.5 * (r[t] + std::conj(r[total - 1 - t]));
}

void gather_lerp_product_scalar(const double* power, const std::int32_t* bin0,
                                const std::int32_t* bin1, const double* frac,
                                std::size_t count, double floor,
                                double* cells) {
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const double v = (1.0 - f) * power[bin0[c]] + f * power[bin1[c]];
    cells[c] *= std::max(v, floor);
  }
}

void gather_lerp_product_batch_scalar(const double* table,
                                      const std::int32_t* bin0,
                                      const std::int32_t* bin1,
                                      const double* frac, std::size_t count,
                                      std::size_t nrows, double floor,
                                      double* cells) {
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    for (std::size_t r = 0; r < nrows; ++r) {
      const double v = (1.0 - f) * t0[r] + f * t1[r];
      cell[r] *= std::max(v, floor);
    }
  }
}

void fir_batch_scalar(const double* in, std::size_t nrows, std::size_t nout,
                      const double* taps, std::size_t ntaps, double* out) {
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    for (std::size_t r = 0; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j) acc += taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

#if AT_KERNELS_X86

// ----------------------------------------------------------------- SSE2

AT_TARGET_SSE2
void projector_power_sse2(const SplitPlanes& t, const double* ev_re,
                          const double* ev_im, std::size_t nvec, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      __m128d ar = _mm_setzero_pd(), ai = _mm_setzero_pd();
      for (std::size_t k = 0; k < m; ++k) {
        const __m128d cr = _mm_loadu_pd(tre + k * pitch + i);
        const __m128d ci = _mm_loadu_pd(tim + k * pitch + i);
        const __m128d br = _mm_set1_pd(er[k]);
        const __m128d bi = _mm_set1_pd(ei[k]);
        ar = _mm_add_pd(ar, _mm_mul_pd(cr, br));
        ar = _mm_sub_pd(ar, _mm_mul_pd(ci, bi));
        ai = _mm_add_pd(ai, _mm_mul_pd(cr, bi));
        ai = _mm_add_pd(ai, _mm_mul_pd(ci, br));
      }
      acc = _mm_add_pd(acc, _mm_mul_pd(ar, ar));
      acc = _mm_add_pd(acc, _mm_mul_pd(ai, ai));
    }
    _mm_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar = ar + cr * er[k];
        ar = ar - ci * ei[k];
        ai = ai + cr * ei[k];
        ai = ai + ci * er[k];
      }
      acc = acc + ar * ar;
      acc = acc + ai * ai;
    }
    out[i] = acc;
  }
}

AT_TARGET_SSE2
void bartlett_power_sse2(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m128d pj = _mm_loadu_pd(tre + j * pitch + i);
      const __m128d qj = _mm_loadu_pd(tim + j * pitch + i);
      const __m128d mag =
          _mm_add_pd(_mm_mul_pd(pj, pj), _mm_mul_pd(qj, qj));
      acc = _mm_add_pd(acc, _mm_mul_pd(mag, _mm_set1_pd(r[j * m + j].real())));
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m128d pk = _mm_loadu_pd(tre + k * pitch + i);
        const __m128d qk = _mm_loadu_pd(tim + k * pitch + i);
        const __m128d dotr =
            _mm_add_pd(_mm_mul_pd(pj, pk), _mm_mul_pd(qj, qk));
        const __m128d doti =
            _mm_sub_pd(_mm_mul_pd(pj, qk), _mm_mul_pd(qj, pk));
        const __m128d u = _mm_set1_pd(r[j * m + k].real());
        const __m128d v = _mm_set1_pd(r[j * m + k].imag());
        const __m128d w =
            _mm_sub_pd(_mm_mul_pd(u, dotr), _mm_mul_pd(v, doti));
        acc = _mm_add_pd(acc, _mm_mul_pd(w, _mm_set1_pd(2.0)));
      }
    }
    _mm_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      acc = acc + (pj * pj + qj * qj) * r[j * m + j].real();
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double dotr = pj * pk + qj * qk;
        const double doti = pj * qk - qj * pk;
        const double w =
            r[j * m + k].real() * dotr - r[j * m + k].imag() * doti;
        acc = acc + w * 2.0;
      }
    }
    out[i] = acc;
  }
}

AT_TARGET_SSE2
void covariance_sse2(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      __m128d vre = _mm_setzero_pd(), vim = _mm_setzero_pd();
      std::size_t k = 0;
      for (; k + 2 <= n; k += 2) {
        const __m128d a = _mm_loadu_pd(pi + k);
        const __m128d b = _mm_loadu_pd(qi + k);
        const __m128d c = _mm_loadu_pd(pj + k);
        const __m128d d = _mm_loadu_pd(qj + k);
        vre = _mm_add_pd(vre, _mm_mul_pd(a, c));
        vre = _mm_add_pd(vre, _mm_mul_pd(b, d));
        vim = _mm_add_pd(vim, _mm_mul_pd(b, c));
        vim = _mm_sub_pd(vim, _mm_mul_pd(a, d));
      }
      double re = _mm_cvtsd_f64(vre) + _mm_cvtsd_f64(_mm_unpackhi_pd(vre, vre));
      double im = _mm_cvtsd_f64(vim) + _mm_cvtsd_f64(_mm_unpackhi_pd(vim, vim));
      for (; k < n; ++k) {
        re = re + pi[k] * pj[k];
        re = re + qi[k] * qj[k];
        im = im + qi[k] * pj[k];
        im = im - pi[k] * qj[k];
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

AT_TARGET_SSE2
void forward_backward_sse2(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  const double* d = reinterpret_cast<const double*>(r);
  double* o = reinterpret_cast<double*>(out);
  const __m128d conj_mask = _mm_set_pd(-0.0, 0.0);  // negate the imag lane
  const __m128d half = _mm_set1_pd(0.5);
  for (std::size_t t = 0; t < total; ++t) {
    const __m128d fwd = _mm_loadu_pd(d + 2 * t);
    __m128d rev = _mm_loadu_pd(d + 2 * (total - 1 - t));
    rev = _mm_xor_pd(rev, conj_mask);
    _mm_storeu_pd(o + 2 * t, _mm_mul_pd(_mm_add_pd(fwd, rev), half));
  }
}

AT_TARGET_SSE2
void gather_lerp_product_sse2(const double* power, const std::int32_t* bin0,
                              const std::int32_t* bin1, const double* frac,
                              std::size_t count, double floor, double* cells) {
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d vfloor = _mm_set1_pd(floor);
  std::size_t c = 0;
  for (; c + 2 <= count; c += 2) {
    const __m128d p0 = _mm_set_pd(power[bin0[c + 1]], power[bin0[c]]);
    const __m128d p1 = _mm_set_pd(power[bin1[c + 1]], power[bin1[c]]);
    const __m128d f = _mm_loadu_pd(frac + c);
    const __m128d a = _mm_mul_pd(_mm_sub_pd(ones, f), p0);
    __m128d v = _mm_add_pd(a, _mm_mul_pd(f, p1));
    v = _mm_max_pd(v, vfloor);
    _mm_storeu_pd(cells + c, _mm_mul_pd(_mm_loadu_pd(cells + c), v));
  }
  for (; c < count; ++c) {
    const double f = frac[c];
    const double a = (1.0 - f) * power[bin0[c]];
    const double v = a + f * power[bin1[c]];
    cells[c] *= std::max(v, floor);
  }
}

AT_TARGET_SSE2
void gather_lerp_product_batch_sse2(const double* table,
                                    const std::int32_t* bin0,
                                    const std::int32_t* bin1,
                                    const double* frac, std::size_t count,
                                    std::size_t nrows, double floor,
                                    double* cells) {
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d vfloor = _mm_set1_pd(floor);
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const __m128d fb = _mm_set1_pd(f);
    const __m128d omf = _mm_sub_pd(ones, fb);
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    std::size_t r = 0;
    for (; r + 2 <= nrows; r += 2) {
      const __m128d p0 = _mm_loadu_pd(t0 + r);
      const __m128d p1 = _mm_loadu_pd(t1 + r);
      const __m128d a = _mm_mul_pd(omf, p0);
      __m128d v = _mm_add_pd(a, _mm_mul_pd(fb, p1));
      v = _mm_max_pd(v, vfloor);
      _mm_storeu_pd(cell + r, _mm_mul_pd(_mm_loadu_pd(cell + r), v));
    }
    for (; r < nrows; ++r) {
      const double a = (1.0 - f) * t0[r];
      const double v = a + f * t1[r];
      cell[r] *= std::max(v, floor);
    }
  }
}

AT_TARGET_SSE2
void fir_batch_sse2(const double* in, std::size_t nrows, std::size_t nout,
                    const double* taps, std::size_t ntaps, double* out) {
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    std::size_t r = 0;
    for (; r + 2 <= nrows; r += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(taps[j]), _mm_loadu_pd(win + j * nrows + r)));
      _mm_storeu_pd(o + r, acc);
    }
    for (; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = acc + taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

// ------------------------------------------------------------- AVX2+FMA

AT_TARGET_AVX2
void projector_power_avx2(const SplitPlanes& t, const double* ev_re,
                          const double* ev_im, std::size_t nvec, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      __m256d ar = _mm256_setzero_pd(), ai = _mm256_setzero_pd();
      for (std::size_t k = 0; k < m; ++k) {
        const __m256d cr = _mm256_loadu_pd(tre + k * pitch + i);
        const __m256d ci = _mm256_loadu_pd(tim + k * pitch + i);
        const __m256d br = _mm256_set1_pd(er[k]);
        const __m256d bi = _mm256_set1_pd(ei[k]);
        ar = _mm256_fmadd_pd(cr, br, ar);
        ar = _mm256_fnmadd_pd(ci, bi, ar);
        ai = _mm256_fmadd_pd(cr, bi, ai);
        ai = _mm256_fmadd_pd(ci, br, ai);
      }
      acc = _mm256_fmadd_pd(ar, ar, acc);
      acc = _mm256_fmadd_pd(ai, ai, acc);
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t s = 0; s < nvec; ++s) {
      const double* er = ev_re + s * m;
      const double* ei = ev_im + s * m;
      double ar = 0.0, ai = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double cr = tre[k * pitch + i];
        const double ci = tim[k * pitch + i];
        ar = std::fma(cr, er[k], ar);
        ar = std::fma(-ci, ei[k], ar);
        ai = std::fma(cr, ei[k], ai);
        ai = std::fma(ci, er[k], ai);
      }
      acc = std::fma(ar, ar, acc);
      acc = std::fma(ai, ai, acc);
    }
    out[i] = acc;
  }
}

AT_TARGET_AVX2
void bartlett_power_avx2(const SplitPlanes& t, const cplx* r, double* out) {
  const std::size_t rows = t.rows, m = t.m, pitch = t.pitch;
  const double* tre = t.re.data();
  const double* tim = t.im.data();
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < m; ++j) {
      const __m256d pj = _mm256_loadu_pd(tre + j * pitch + i);
      const __m256d qj = _mm256_loadu_pd(tim + j * pitch + i);
      const __m256d mag = _mm256_fmadd_pd(qj, qj, _mm256_mul_pd(pj, pj));
      acc = _mm256_fmadd_pd(mag, _mm256_set1_pd(r[j * m + j].real()), acc);
      for (std::size_t k = j + 1; k < m; ++k) {
        const __m256d pk = _mm256_loadu_pd(tre + k * pitch + i);
        const __m256d qk = _mm256_loadu_pd(tim + k * pitch + i);
        const __m256d dotr = _mm256_fmadd_pd(qj, qk, _mm256_mul_pd(pj, pk));
        const __m256d doti = _mm256_fnmadd_pd(qj, pk, _mm256_mul_pd(pj, qk));
        const __m256d u = _mm256_set1_pd(r[j * m + k].real());
        const __m256d v = _mm256_set1_pd(r[j * m + k].imag());
        const __m256d w = _mm256_fnmadd_pd(v, doti, _mm256_mul_pd(u, dotr));
        acc = _mm256_fmadd_pd(w, _mm256_set1_pd(2.0), acc);
      }
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double pj = tre[j * pitch + i];
      const double qj = tim[j * pitch + i];
      const double mag = std::fma(qj, qj, pj * pj);
      acc = std::fma(mag, r[j * m + j].real(), acc);
      for (std::size_t k = j + 1; k < m; ++k) {
        const double pk = tre[k * pitch + i];
        const double qk = tim[k * pitch + i];
        const double dotr = std::fma(qj, qk, pj * pk);
        const double doti = std::fma(-qj, pk, pj * qk);
        const double w = std::fma(-r[j * m + k].imag(), doti,
                                  r[j * m + k].real() * dotr);
        acc = std::fma(w, 2.0, acc);
      }
    }
    out[i] = acc;
  }
}

AT_TARGET_AVX2
double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

AT_TARGET_AVX2
void covariance_avx2(const SplitPlanes& x, cplx* r) {
  const std::size_t m = x.m, n = x.rows, pitch = x.pitch;
  const double* xre = x.re.data();
  const double* xim = x.im.data();
  const double inv_n = 1.0 / double(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = xre + i * pitch;
    const double* qi = xim + i * pitch;
    for (std::size_t j = i; j < m; ++j) {
      const double* pj = xre + j * pitch;
      const double* qj = xim + j * pitch;
      __m256d vre = _mm256_setzero_pd(), vim = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= n; k += 4) {
        const __m256d a = _mm256_loadu_pd(pi + k);
        const __m256d b = _mm256_loadu_pd(qi + k);
        const __m256d c = _mm256_loadu_pd(pj + k);
        const __m256d d = _mm256_loadu_pd(qj + k);
        vre = _mm256_fmadd_pd(a, c, vre);
        vre = _mm256_fmadd_pd(b, d, vre);
        vim = _mm256_fmadd_pd(b, c, vim);
        vim = _mm256_fnmadd_pd(a, d, vim);
      }
      double re = hsum4(vre), im = hsum4(vim);
      for (; k < n; ++k) {
        re = std::fma(pi[k], pj[k], re);
        re = std::fma(qi[k], qj[k], re);
        im = std::fma(qi[k], pj[k], im);
        im = std::fma(-pi[k], qj[k], im);
      }
      if (j == i) im = 0.0;  // diagonal of x x^H is exactly real
      r[i * m + j] = cplx{re * inv_n, im * inv_n};
      if (j != i) r[j * m + i] = cplx{re * inv_n, -im * inv_n};
    }
  }
}

AT_TARGET_AVX2
void forward_backward_avx2(const cplx* r, std::size_t m, cplx* out) {
  const std::size_t total = m * m;
  const double* d = reinterpret_cast<const double*>(r);
  double* o = reinterpret_cast<double*>(out);
  const __m256d conj_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t t = 0;
  for (; t + 2 <= total; t += 2) {
    const __m256d fwd = _mm256_loadu_pd(d + 2 * t);
    // Two complex values in descending order, then swap the 128-bit
    // halves so lane order matches [total-1-t, total-1-(t+1)].
    __m256d rev = _mm256_loadu_pd(d + 2 * (total - t - 2));
    rev = _mm256_permute2f128_pd(rev, rev, 0x01);
    rev = _mm256_xor_pd(rev, conj_mask);
    _mm256_storeu_pd(o + 2 * t, _mm256_mul_pd(_mm256_add_pd(fwd, rev), half));
  }
  for (; t < total; ++t)
    out[t] = 0.5 * (r[t] + std::conj(r[total - 1 - t]));
}

AT_TARGET_AVX2
void gather_lerp_product_avx2(const double* power, const std::int32_t* bin0,
                              const std::int32_t* bin1, const double* frac,
                              std::size_t count, double floor, double* cells) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d vfloor = _mm256_set1_pd(floor);
  // The all-lanes mask + zeroed source form of the gather: same
  // instruction, but avoids GCC's uninitialized-source expansion of
  // the plain _mm256_i32gather_pd macro.
  const __m256d gmask = _mm256_cmp_pd(ones, _mm256_setzero_pd(), _CMP_NEQ_OQ);
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bin0 + c));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bin1 + c));
    const __m256d p0 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), power, i0, gmask, 8);
    const __m256d p1 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), power, i1, gmask, 8);
    const __m256d f = _mm256_loadu_pd(frac + c);
    const __m256d a = _mm256_mul_pd(_mm256_sub_pd(ones, f), p0);
    __m256d v = _mm256_fmadd_pd(f, p1, a);
    v = _mm256_max_pd(v, vfloor);
    _mm256_storeu_pd(cells + c, _mm256_mul_pd(_mm256_loadu_pd(cells + c), v));
  }
  for (; c < count; ++c) {
    const double f = frac[c];
    const double a = (1.0 - f) * power[bin0[c]];
    const double v = std::fma(f, power[bin1[c]], a);
    cells[c] *= std::max(v, floor);
  }
}

AT_TARGET_AVX2
void gather_lerp_product_batch_avx2(const double* table,
                                    const std::int32_t* bin0,
                                    const std::int32_t* bin1,
                                    const double* frac, std::size_t count,
                                    std::size_t nrows, double floor,
                                    double* cells) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d vfloor = _mm256_set1_pd(floor);
  for (std::size_t c = 0; c < count; ++c) {
    const double f = frac[c];
    const __m256d fb = _mm256_set1_pd(f);
    const __m256d omf = _mm256_sub_pd(ones, fb);
    const double* t0 = table + std::size_t(bin0[c]) * nrows;
    const double* t1 = table + std::size_t(bin1[c]) * nrows;
    double* cell = cells + c * nrows;
    std::size_t r = 0;
    for (; r + 4 <= nrows; r += 4) {
      const __m256d p0 = _mm256_loadu_pd(t0 + r);
      const __m256d p1 = _mm256_loadu_pd(t1 + r);
      const __m256d a = _mm256_mul_pd(omf, p0);
      __m256d v = _mm256_fmadd_pd(fb, p1, a);
      v = _mm256_max_pd(v, vfloor);
      _mm256_storeu_pd(cell + r, _mm256_mul_pd(_mm256_loadu_pd(cell + r), v));
    }
    for (; r < nrows; ++r) {
      const double a = (1.0 - f) * t0[r];
      const double v = std::fma(f, t1[r], a);
      cell[r] *= std::max(v, floor);
    }
  }
}

AT_TARGET_AVX2_NOFMA
void fir_batch_avx2(const double* in, std::size_t nrows, std::size_t nout,
                    const double* taps, std::size_t ntaps, double* out) {
  // Deliberately mul+add, in a target without FMA so the compiler
  // cannot contract the pair: bit-compatible with the un-batched blur,
  // which compiles portably and never fuses.
  for (std::size_t i = 0; i < nout; ++i) {
    const double* win = in + i * nrows;
    double* o = out + i * nrows;
    std::size_t r = 0;
    for (; r + 4 <= nrows; r += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(taps[j]),
                                               _mm256_loadu_pd(win + j * nrows + r)));
      _mm256_storeu_pd(o + r, acc);
    }
    for (; r + 2 <= nrows; r += 2) {
      __m128d acc = _mm_setzero_pd();
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(taps[j]), _mm_loadu_pd(win + j * nrows + r)));
      _mm_storeu_pd(o + r, acc);
    }
    for (; r < nrows; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < ntaps; ++j)
        acc = acc + taps[j] * win[j * nrows + r];
      o[r] = acc;
    }
  }
}

#endif  // AT_KERNELS_X86

using core::simd::Level;

}  // namespace

void projector_power(const SplitPlanes& t, const double* ev_re,
                     const double* ev_im, std::size_t nvec, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return projector_power_avx2(t, ev_re, ev_im, nvec, out);
    case Level::kSse2:
      return projector_power_sse2(t, ev_re, ev_im, nvec, out);
    case Level::kScalar:
      break;
  }
#endif
  projector_power_scalar(t, ev_re, ev_im, nvec, out);
}

void bartlett_power(const SplitPlanes& t, const cplx* r, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return bartlett_power_avx2(t, r, out);
    case Level::kSse2:
      return bartlett_power_sse2(t, r, out);
    case Level::kScalar:
      break;
  }
#endif
  bartlett_power_scalar(t, r, out);
}

void covariance(const SplitPlanes& x, cplx* r) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return covariance_avx2(x, r);
    case Level::kSse2:
      return covariance_sse2(x, r);
    case Level::kScalar:
      break;
  }
#endif
  covariance_scalar(x, r);
}

void forward_backward(const cplx* r, std::size_t m, cplx* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return forward_backward_avx2(r, m, out);
    case Level::kSse2:
      return forward_backward_sse2(r, m, out);
    case Level::kScalar:
      break;
  }
#endif
  forward_backward_scalar(r, m, out);
}

void gather_lerp_product(const double* power, const std::int32_t* bin0,
                         const std::int32_t* bin1, const double* frac,
                         std::size_t count, double floor, double* cells) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return gather_lerp_product_avx2(power, bin0, bin1, frac, count, floor,
                                      cells);
    case Level::kSse2:
      return gather_lerp_product_sse2(power, bin0, bin1, frac, count, floor,
                                      cells);
    case Level::kScalar:
      break;
  }
#endif
  gather_lerp_product_scalar(power, bin0, bin1, frac, count, floor, cells);
}

void gather_lerp_product_batch(const double* table, const std::int32_t* bin0,
                               const std::int32_t* bin1, const double* frac,
                               std::size_t count, std::size_t nrows,
                               double floor, double* cells) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return gather_lerp_product_batch_avx2(table, bin0, bin1, frac, count,
                                            nrows, floor, cells);
    case Level::kSse2:
      return gather_lerp_product_batch_sse2(table, bin0, bin1, frac, count,
                                            nrows, floor, cells);
    case Level::kScalar:
      break;
  }
#endif
  gather_lerp_product_batch_scalar(table, bin0, bin1, frac, count, nrows,
                                   floor, cells);
}

void fir_batch(const double* in, std::size_t nrows, std::size_t nout,
               const double* taps, std::size_t ntaps, double* out) {
#if AT_KERNELS_X86
  switch (core::simd::active()) {
    case Level::kAvx2:
      return fir_batch_avx2(in, nrows, nout, taps, ntaps, out);
    case Level::kSse2:
      return fir_batch_sse2(in, nrows, nout, taps, ntaps, out);
    case Level::kScalar:
      break;
  }
#endif
  fir_batch_scalar(in, nrows, nout, taps, ntaps, out);
}

}  // namespace arraytrack::linalg::kernels
