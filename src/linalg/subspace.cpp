#include "linalg/subspace.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string_view>

namespace arraytrack::linalg {
namespace {

// Cyclic complex Jacobi on a small k x k Hermitian matrix held in a raw
// row-major buffer (s[r * k + c]), eigenvectors accumulated into the
// row-major buffer u (overwritten with identity first). Eigenvalues
// land on the diagonal of s, unsorted. The hot-path sibling of the
// CMatrix-based sweep in eigen.cpp: k here is the tracked rank
// (typically 3), and avoiding CMatrix/EigenResult allocations is what
// keeps a tracked update an order of magnitude under a full m x m
// decomposition.
void small_hermitian_jacobi(std::size_t k, cplx* s, cplx* u) {
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      u[r * k + c] = (r == c) ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
  if (k < 2) return;

  double scale = 0.0;
  for (std::size_t i = 0; i < k * k; ++i) scale += std::norm(s[i]);
  const double tol = 1e-14 * std::sqrt(std::max(scale, 1e-300));

  constexpr int kMaxSweeps = 24;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < k; ++p)
      for (std::size_t q = p + 1; q < k; ++q) off += std::abs(s[p * k + q]);
    if (off <= tol) break;

    for (std::size_t p = 0; p + 1 < k; ++p)
      for (std::size_t q = p + 1; q < k; ++q) {
        const cplx spq = s[p * k + q];
        const double g = std::abs(spq);
        if (g <= tol / double(k * k)) continue;

        const cplx phase = spq / g;
        const double theta =
            (s[q * k + q].real() - s[p * k + p].real()) / (2.0 * g);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;

        for (std::size_t i = 0; i < k; ++i) {
          const cplx sip = s[i * k + p];
          const cplx siq = s[i * k + q];
          s[i * k + p] = c * sip - sn * std::conj(phase) * siq;
          s[i * k + q] = sn * phase * sip + c * siq;
        }
        for (std::size_t i = 0; i < k; ++i) {
          const cplx spi = s[p * k + i];
          const cplx sqi = s[q * k + i];
          s[p * k + i] = c * spi - sn * phase * sqi;
          s[q * k + i] = sn * std::conj(phase) * spi + c * sqi;
        }
        s[p * k + q] = cplx{0.0, 0.0};
        s[q * k + p] = cplx{0.0, 0.0};
        s[p * k + p] = cplx{s[p * k + p].real(), 0.0};
        s[q * k + q] = cplx{s[q * k + q].real(), 0.0};

        for (std::size_t i = 0; i < k; ++i) {
          const cplx uip = u[i * k + p];
          const cplx uiq = u[i * k + q];
          u[i * k + p] = c * uip - sn * std::conj(phase) * uiq;
          u[i * k + q] = sn * phase * uip + c * uiq;
        }
      }
  }
}

}  // namespace

std::size_t signal_count(const std::vector<double>& eigenvalues,
                         double threshold, std::size_t fixed) {
  const std::size_t n = eigenvalues.size();
  if (n <= 1) return n;
  if (fixed > 0) return std::min(fixed, n - 1);
  std::size_t d = 0;
  for (double v : eigenvalues)
    if (v >= threshold * eigenvalues.back()) ++d;
  return std::min(std::max<std::size_t>(d, 1), n - 1);
}

bool exact_evd_forced() {
  const char* v = std::getenv("ARRAYTRACK_EXACT_EVD");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

SubspaceTracker::SubspaceTracker(SubspaceOptions opt,
                                 SubspaceCounters* counters)
    : opt_(opt),
      counters_(counters),
      force_(opt.force_exact || exact_evd_forced()) {
  opt_.reseed_period_min = std::max<std::size_t>(1, opt_.reseed_period_min);
  opt_.reseed_period_max =
      std::max(opt_.reseed_period_min, opt_.reseed_period_max);
  period_ = opt_.reseed_period;
  if (opt_.adaptive_reseed && period_ > 0)
    period_ = std::clamp(period_, opt_.reseed_period_min,
                         opt_.reseed_period_max);
}

void SubspaceTracker::reset() {
  m_ = 0;
  k_ = 0;
  w_.clear();
  last_full_v_ = CMatrix();
  noise_ref_ = 0.0;
  last_residual_ = 0.0;
  since_full_ = 0;
  basis_ = SubspaceBasis{};
  period_ = opt_.reseed_period;
  if (opt_.adaptive_reseed && period_ > 0)
    period_ = std::clamp(period_, opt_.reseed_period_min,
                         opt_.reseed_period_max);
  resid_early_ = resid_late_ = 0.0;
  resid_early_n_ = resid_late_n_ = 0;
}

SubspaceTrackerState SubspaceTracker::export_state() const {
  SubspaceTrackerState st;
  st.basis = basis_;
  st.m = m_;
  st.k = k_;
  st.w = w_;
  st.last_full_v = last_full_v_;
  st.noise_ref = noise_ref_;
  st.last_residual = last_residual_;
  st.since_full = since_full_;
  st.n_full = n_full_;
  st.n_tracked = n_tracked_;
  st.n_reseed = n_reseed_;
  st.period = period_;
  st.resid_early = resid_early_;
  st.resid_late = resid_late_;
  st.resid_early_n = resid_early_n_;
  st.resid_late_n = resid_late_n_;
  return st;
}

void SubspaceTracker::import_state(const SubspaceTrackerState& st) {
  basis_ = st.basis;
  m_ = st.m;
  k_ = st.k;
  w_ = st.w;
  last_full_v_ = st.last_full_v;
  noise_ref_ = st.noise_ref;
  last_residual_ = st.last_residual;
  since_full_ = st.since_full;
  n_full_ = st.n_full;
  n_tracked_ = st.n_tracked;
  n_reseed_ = st.n_reseed;
  period_ = st.period;
  resid_early_ = st.resid_early;
  resid_late_ = st.resid_late;
  resid_early_n_ = st.resid_early_n;
  resid_late_n_ = st.resid_late_n;
  // The workspaces seed_full would have sized on this node.
  z_.resize(m_ * k_);
  y_.resize(m_ * k_);
  s_.resize(k_ * k_);
  u_.resize(k_ * k_);
  ritz_.resize(k_);
  order_.resize(k_);
}

void SubspaceTracker::adapt_period(bool timer_fired) {
  const double early =
      resid_early_n_ ? resid_early_ / double(resid_early_n_) : 0.0;
  const double late =
      resid_late_n_ ? resid_late_ / double(resid_late_n_) : 0.0;
  const bool rising = resid_late_n_ > 0 && late > 1.25 * early + 1e-12;
  resid_early_ = resid_late_ = 0.0;
  resid_early_n_ = resid_late_n_ = 0;
  if (!opt_.adaptive_reseed || period_ == 0) return;

  // A monitor-forced reseed means the basis decayed before the timer
  // fired; a timer reseed over a window whose residuals rose from its
  // first half to its second means drift is accelerating toward that
  // same outcome. Both halve the cadence. A flat or falling window
  // means the timer fired for nothing: stretch it.
  if (!timer_fired || rising)
    period_ = std::max(opt_.reseed_period_min, period_ / 2);
  else
    period_ = std::min(opt_.reseed_period_max, period_ * 2);
}

const SubspaceBasis& SubspaceTracker::update(const CMatrix& r) {
  if (r.rows() != r.cols())
    throw std::invalid_argument("SubspaceTracker: covariance must be square");

  if (force_) {
    // Kill switch: plain eig_hermitian on every update, the same call
    // the tracker-less spectrum path makes, so spectra stay
    // byte-identical to the no-tracker baseline.
    seed_full(r, /*warm=*/false, /*is_reseed=*/false);
    return basis_;
  }

  const bool cold = k_ == 0 || r.rows() != m_;
  if (cold) {
    seed_full(r, /*warm=*/false, /*is_reseed=*/false);
    return basis_;
  }

  if (period_ > 0 && since_full_ >= period_) {
    adapt_period(/*timer_fired=*/true);
    seed_full(r, /*warm=*/true, /*is_reseed=*/true);
    return basis_;
  }

  if (!tracked_update(r)) {
    adapt_period(/*timer_fired=*/false);
    seed_full(r, /*warm=*/true, /*is_reseed=*/true);
    return basis_;
  }
  return basis_;
}

void SubspaceTracker::seed_full(const CMatrix& r, bool warm, bool is_reseed) {
  const bool can_warm =
      warm && last_full_v_.rows() == r.rows() && last_full_v_.cols() == r.cols();
  EigenResult eig =
      can_warm ? eig_hermitian_seeded(r, last_full_v_) : eig_hermitian(r);

  m_ = r.rows();
  const std::size_t d =
      signal_count(eig.eigenvalues, opt_.eig_threshold, opt_.fixed_num_signals);
  k_ = std::min(d + 1, m_);

  // Tracked basis = top-k eigenvectors, descending (eig_hermitian
  // sorts ascending, so column c of W is eigenvector m-1-c).
  w_.resize(m_ * k_);
  for (std::size_t c = 0; c < k_; ++c) {
    const std::size_t src = m_ - 1 - c;
    for (std::size_t i = 0; i < m_; ++i) w_[c * m_ + i] = eig.eigenvectors(i, src);
  }

  // Reference noise floor: mean of the eigenvalues outside the tracked
  // set. Anchors the unexplained-energy drift test; when the tracked
  // set covers the whole space that test is vacuous.
  if (m_ > k_) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m_ - k_; ++i) acc += eig.eigenvalues[i];
    noise_ref_ = acc / double(m_ - k_);
  } else {
    noise_ref_ = eig.eigenvalues.front();
  }

  basis_.eigenvalues.resize(k_);
  for (std::size_t c = 0; c < k_; ++c)
    basis_.eigenvalues[c] = eig.eigenvalues[m_ - 1 - c];

  last_full_v_ = std::move(eig.eigenvectors);
  last_residual_ = 0.0;
  since_full_ = 0;
  // Cold seeds and size changes reach here without adapt_period
  // having consumed the window; start the new window clean either way.
  resid_early_ = resid_late_ = 0.0;
  resid_early_n_ = resid_late_n_ = 0;

  // Size hot-path workspaces here so tracked updates never allocate.
  z_.resize(m_ * k_);
  y_.resize(m_ * k_);
  s_.resize(k_ * k_);
  u_.resize(k_ * k_);
  ritz_.resize(k_);
  order_.resize(k_);

  ++n_full_;
  if (is_reseed) ++n_reseed_;
  if (counters_ != nullptr) {
    counters_->evd_full.fetch_add(1, std::memory_order_relaxed);
    if (is_reseed) counters_->evd_reseed.fetch_add(1, std::memory_order_relaxed);
  }
  publish_basis(d, /*exact=*/true);
}

bool SubspaceTracker::tracked_update(const CMatrix& r) {
  const std::size_t m = m_;
  const std::size_t k = k_;
  const cplx* rd = r.data();

  // Power step Z = R * W, column by column (R row-major, W col-major).
  for (std::size_t c = 0; c < k; ++c) {
    const cplx* wc = &w_[c * m];
    cplx* zc = &z_[c * m];
    for (std::size_t i = 0; i < m; ++i) {
      const cplx* ri = rd + i * m;
      cplx acc{0.0, 0.0};
      for (std::size_t j = 0; j < m; ++j) acc += ri[j] * wc[j];
      zc[i] = acc;
    }
  }

  // Rayleigh quotient S = W^H * Z (k x k, row-major).
  double s_norm2 = 0.0;
  for (std::size_t a = 0; a < k; ++a) {
    const cplx* wa = &w_[a * m];
    for (std::size_t b = 0; b < k; ++b) {
      const cplx* zb = &z_[b * m];
      cplx acc{0.0, 0.0};
      for (std::size_t i = 0; i < m; ++i) acc += std::conj(wa[i]) * zb[i];
      s_[a * k + b] = acc;
      s_norm2 += std::norm(acc);
    }
  }

  double z_norm2 = 0.0;
  for (std::size_t i = 0; i < m * k; ++i) z_norm2 += std::norm(z_[i]);
  if (z_norm2 <= 1e-300) return false;  // degenerate covariance: reseed

  // Invariance residual, free by Pythagoras: with W orthonormal,
  // ||R W - W S||_F^2 = ||Z||_F^2 - ||S||_F^2. Large relative residual
  // means the subspace rotated faster than one power step can follow.
  const double resid2 = std::max(0.0, z_norm2 - s_norm2);
  last_residual_ = std::sqrt(resid2 / z_norm2);
  // Window accounting for the adaptive cadence: first vs second half
  // of the refresh window (a monitor rejection below still lands its
  // high residual in the window before adapt_period reads it).
  if (period_ > 0 && since_full_ * 2 < period_) {
    resid_early_ += last_residual_;
    ++resid_early_n_;
  } else {
    resid_late_ += last_residual_;
    ++resid_late_n_;
  }
  if (last_residual_ > opt_.residual_tol) return false;

  // Ritz refinement: diagonalize S, rotate Z into the Ritz frame.
  small_hermitian_jacobi(k, s_.data(), u_.data());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return s_[a * k + a].real() > s_[b * k + b].real();
  });
  for (std::size_t j = 0; j < k; ++j)
    ritz_[j] = s_[order_[j] * k + order_[j]].real();

  const std::size_t d = basis_.num_signals;
  const double top = ritz_[0];
  if (top <= 0.0) return false;

  // Signal-count drift: the D-selection rule applied to the Ritz
  // values. The probe column (index d) promoting to signal strength,
  // or the weakest tracked signal decaying below the threshold, both
  // change d — reseed so the full eigensystem re-derives it.
  if (opt_.fixed_num_signals == 0) {
    if (d < k && ritz_[d] >= opt_.eig_threshold * top) return false;
    if (d >= 2 && ritz_[d - 1] < opt_.eig_threshold * top) return false;
  }

  // Blind-spot guard: energy orthogonal to span(W) is invisible to
  // R * W, so compare total power tr(R) against what the tracked Ritz
  // values plus the reference noise floor explain. A new arrival
  // outside the tracked span shows up here first.
  if (m > k) {
    double trace = 0.0;
    for (std::size_t i = 0; i < m; ++i) trace += rd[i * m + i].real();
    double explained = double(m - k) * noise_ref_;
    for (std::size_t j = 0; j < k; ++j) explained += ritz_[j];
    if (trace - explained >= opt_.eig_threshold * top) return false;
  }

  // New basis Y = Z * U, columns in descending Ritz order, then
  // modified Gram-Schmidt. MGS on Z U (rather than normalizing W U)
  // folds the power step's rotation into the basis — this is what
  // makes the recursion converge to the dominant subspace instead of
  // merely rotating within the seeded one.
  for (std::size_t j = 0; j < k; ++j) {
    cplx* yj = &y_[j * m];
    const std::size_t uc = order_[j];
    for (std::size_t i = 0; i < m; ++i) {
      cplx acc{0.0, 0.0};
      for (std::size_t a = 0; a < k; ++a) acc += z_[a * m + i] * u_[a * k + uc];
      yj[i] = acc;
    }
  }
  const double col_floor = 1e-12 * std::sqrt(z_norm2 / double(k));
  for (std::size_t j = 0; j < k; ++j) {
    cplx* yj = &y_[j * m];
    for (std::size_t p = 0; p < j; ++p) {
      const cplx* yp = &y_[p * m];
      cplx proj{0.0, 0.0};
      for (std::size_t i = 0; i < m; ++i) proj += std::conj(yp[i]) * yj[i];
      for (std::size_t i = 0; i < m; ++i) yj[i] -= proj * yp[i];
    }
    double nrm2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) nrm2 += std::norm(yj[i]);
    const double nrm = std::sqrt(nrm2);
    if (nrm <= col_floor) return false;  // rank collapse: reseed
    const double inv = 1.0 / nrm;
    for (std::size_t i = 0; i < m; ++i) yj[i] *= inv;
  }

  w_.swap(y_);
  basis_.eigenvalues.assign(ritz_.begin(), ritz_.end());
  ++since_full_;
  ++n_tracked_;
  if (counters_ != nullptr)
    counters_->evd_tracked.fetch_add(1, std::memory_order_relaxed);
  publish_basis(d, /*exact=*/false);
  return true;
}

void SubspaceTracker::publish_basis(std::size_t d, bool exact) {
  basis_.m = m_;
  basis_.k = k_;
  basis_.num_signals = d;
  basis_.exact = exact;
  basis_.re.resize(k_ * m_);
  basis_.im.resize(k_ * m_);
  for (std::size_t c = 0; c < k_; ++c)
    for (std::size_t i = 0; i < m_; ++i) {
      basis_.re[c * m_ + i] = w_[c * m_ + i].real();
      basis_.im[c * m_ + i] = w_[c * m_ + i].imag();
    }
}

}  // namespace arraytrack::linalg
