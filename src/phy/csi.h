// Channel state information (CSI) capture.
//
// OFDM receivers estimate the per-subcarrier channel H_m[k] at every
// antenna from the known long training symbol. CSI is the input to the
// joint angle-delay estimation of the SpotFi line of follow-on work
// (aoa/joint.h): across antennas the phase of H encodes the angle of
// arrival, across subcarriers it encodes each path's time of flight.
//
// Two acquisition paths mirror the rest of the front end:
//  * synthesize_csi: exact CSI from the channel's path decomposition
//    (the fast snapshot-level path), plus per-bin estimation noise;
//  * extract_csi: DFT of a received LTS window divided by the known
//    training symbols (the waveform path).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.h"
#include "dsp/noise.h"
#include "dsp/preamble.h"
#include "linalg/matrix.h"

namespace arraytrack::phy {

struct CsiCapture {
  /// H: rows = antennas, cols = subcarriers (in the order of
  /// `subcarrier_offsets_hz`).
  linalg::CMatrix h;
  /// Frequency of each subcarrier relative to the carrier, Hz.
  std::vector<double> subcarrier_offsets_hz;
  double snr_db = 0.0;
};

/// The 802.11 data/pilot subcarrier indices k = -26..-1, 1..26 at
/// 312.5 kHz spacing (DC carries no energy and is skipped).
std::vector<int> standard_subcarriers();

/// Exact CSI from a per-path channel decomposition:
/// H_m(f) = sum_p g_pm * exp(-j*2*pi*f*tau_p), plus circular Gaussian
/// estimation noise at the capture's per-bin SNR.
CsiCapture synthesize_csi(const channel::PathResponse& paths,
                          double subcarrier_spacing_hz,
                          const std::vector<int>& subcarriers,
                          double noise_power_mw, dsp::AwgnSource* noise);

/// Least-squares CSI from a received LTS window: FFT of the window
/// divided by the known training frequency symbols. `lts_windows[m]`
/// holds antenna m's 64*oversample LTS samples.
CsiCapture extract_csi(const std::vector<std::vector<cplx>>& lts_windows,
                       const dsp::PreambleGenerator& preamble);

}  // namespace arraytrack::phy
