#include "phy/frontend.h"

#include <algorithm>

#include "dsp/cfo.h"
#include <cmath>
#include <stdexcept>

namespace arraytrack::phy {
namespace {

constexpr double kBaseRate = 20e6;

}  // namespace

AccessPointFrontEnd::AccessPointFrontEnd(int id, array::PlacedArray array,
                                         const channel::MultipathChannel* channel,
                                         ApConfig cfg)
    : id_(id),
      array_(std::move(array)),
      channel_(channel),
      cfg_(cfg),
      radios_(cfg.radios, cfg.radio_seed + std::uint64_t(id) * 7919u),
      buffer_(cfg.buffer_capacity),
      noise_(cfg.noise_seed + std::uint64_t(id) * 104729u),
      preamble_(std::size_t(channel->config().sample_rate_hz / kBaseRate)) {
  const std::size_t needed =
      cfg_.diversity_synthesis ? 2 * cfg_.radios : cfg_.radios;
  if (array_.size() < needed)
    throw std::invalid_argument(
        "AccessPointFrontEnd: array too small for radio configuration");
  if (array_.geometry().has_vertical_extent())
    element_heights_ =
        array_.element_heights(channel_->config().ap_height_m);
}

std::size_t AccessPointFrontEnd::radio_of_element(std::size_t element) const {
  return element % cfg_.radios;
}

std::vector<std::size_t> AccessPointFrontEnd::capture_elements() const {
  const std::size_t n =
      cfg_.diversity_synthesis ? 2 * cfg_.radios : cfg_.radios;
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

void AccessPointFrontEnd::run_calibration() {
  array::CalibrationRig rig(&radios_, {},
                            cfg_.radio_seed ^ 0xabcdef12345ull);
  calibration_ = array::PhaseCalibration(rig.calibrate());
}

FrameCapture AccessPointFrontEnd::capture_snapshot(const geom::Vec2& client_pos,
                                                   double time_s,
                                                   int client_id) {
  const auto elements = capture_elements();
  const auto world = array_.world_positions();
  std::vector<geom::Vec2> positions;
  positions.reserve(elements.size());
  for (std::size_t e : elements) positions.push_back(world[e]);

  std::vector<double> heights;
  if (!element_heights_.empty())
    for (std::size_t e : elements) heights.push_back(element_heights_[e]);
  const auto resp = channel_->path_response(client_pos, array_.position(),
                                            positions, heights);
  const double noise_power = channel_->noise_power_mw();

  FrameCapture frame;
  frame.timestamp_s = time_s;
  frame.element_ids = elements;
  frame.client_id = client_id;
  frame.samples = linalg::CMatrix(elements.size(), cfg_.snapshots);

  // The transmitted waveform is a wideband pseudo-random sequence (the
  // LTS), identical across both diversity rows; each path sees it
  // delayed by its own excess propagation. Paths whose delays differ by
  // at least one sample therefore decorrelate across snapshots — the
  // property spatially smoothed MUSIC depends on. Model the sequence as
  // white unit-modulus symbols and index it per path delay.
  std::size_t max_delay = 0;
  for (std::size_t d : resp.delays) max_delay = std::max(max_delay, d);
  std::uniform_real_distribution<double> uang(0.0, kTwoPi);
  std::vector<cplx> seq(cfg_.snapshots + max_delay);
  for (auto& s : seq) s = std::exp(kJ * uang(noise_.rng()));

  for (std::size_t k = 0; k < cfg_.snapshots; ++k) {
    for (std::size_t m = 0; m < elements.size(); ++m) {
      cplx rf{0.0, 0.0};
      for (std::size_t p = 0; p < resp.delays.size(); ++p)
        rf += resp.gains(p, m) * seq[k + max_delay - resp.delays[p]];
      rf += noise_.sample(noise_power);
      frame.samples(m, k) =
          radios_.downconvert(radio_of_element(elements[m]), rf);
    }
  }

  frame.snr_db = resp.total_power_dbm - channel_->config().noise_floor_dbm;
  frame.source_ap = std::uint32_t(id_);
  frame.wire_seq = next_wire_seq_++;
  buffer_.push(frame);
  return frame;
}

std::vector<FrameCapture> AccessPointFrontEnd::receive(
    const std::vector<Transmission>& txs, double time_s) {
  const auto elements = capture_elements();
  const auto world = array_.world_positions();
  std::vector<geom::Vec2> positions;
  positions.reserve(elements.size());
  for (std::size_t e : elements) positions.push_back(world[e]);

  // Superpose every transmission through the wideband channel.
  std::size_t total_len = 0;
  for (const auto& tx : txs)
    total_len = std::max(total_len,
                         tx.start_sample + tx.waveform->size() + 64);
  std::vector<std::vector<cplx>> streams(
      elements.size(), std::vector<cplx>(total_len, cplx{}));
  for (const auto& tx : txs) {
    // The client's oscillator offset rides on the waveform; the linear
    // channel commutes with it.
    std::vector<cplx> shifted;
    const std::vector<cplx>* wf = tx.waveform;
    if (tx.cfo_hz != 0.0) {
      shifted = dsp::apply_cfo(*tx.waveform, tx.cfo_hz,
                               channel_->config().sample_rate_hz);
      wf = &shifted;
    }
    const auto rx = channel_->apply(*wf, tx.client_pos, array_.position(),
                                    positions);
    for (std::size_t m = 0; m < rx.size(); ++m) {
      const std::size_t n = std::min(rx[m].size(), total_len - tx.start_sample);
      for (std::size_t i = 0; i < n; ++i)
        streams[m][tx.start_sample + i] += rx[m][i];
    }
  }
  // Receiver noise on every stream.
  const double noise_power = channel_->noise_power_mw();
  for (auto& s : streams)
    for (auto& v : s) v += noise_.sample(noise_power);

  // Packet detection runs on radio 0's default antenna (element 0),
  // matched-filtering against the full ten-symbol short training
  // section (4.3.4: all ten symbols => detection down to ~-10 dB).
  dsp::MatchedFilterDetector detector(preamble_.short_section(),
                                      cfg_.detection_threshold);
  const auto detections =
      detector.detect_all(streams[0], preamble_.preamble().size() / 2);

  const double fs = channel_->config().sample_rate_hz;
  const std::size_t transient =
      std::size_t(std::ceil(cfg_.switch_transient_s * fs));
  const std::size_t lts0 = preamble_.lts0_offset();
  const std::size_t lts1 = preamble_.lts1_offset();
  const std::size_t half = cfg_.radios;

  std::vector<FrameCapture> out;
  for (const auto& det : detections) {
    const std::size_t p = det.start_index;
    const std::size_t need = p + lts1 + transient + cfg_.snapshots + 1;
    if (need > total_len) continue;

    FrameCapture frame;
    frame.timestamp_s = time_s + double(p) / fs;
    frame.element_ids = elements;
    frame.samples = linalg::CMatrix(elements.size(), cfg_.snapshots);

    for (std::size_t k = 0; k < cfg_.snapshots; ++k) {
      // Row 0 antennas sample LTS S0; after the AntSel switch (and its
      // transient) row 1 antennas sample the identical LTS S1 at the
      // same intra-symbol offset.
      for (std::size_t m = 0; m < half; ++m) {
        const cplx rf0 = streams[m][p + lts0 + transient + k];
        frame.samples(m, k) = radios_.downconvert(m, rf0);
        if (cfg_.diversity_synthesis) {
          const cplx rf1 = streams[half + m][p + lts1 + transient + k];
          frame.samples(half + m, k) = radios_.downconvert(m, rf1);
        }
      }
    }

    // SNR estimate: preamble window power vs noise floor.
    double win_power = 0.0;
    const std::size_t win = preamble_.preamble().size();
    for (std::size_t i = 0; i < win; ++i) win_power += std::norm(streams[0][p + i]);
    win_power /= double(win);
    frame.snr_db = dsp::linear_to_db(
        std::max(win_power - noise_power, 1e-30) / noise_power);

    // Ground-truth attribution: nearest transmission start.
    long best_gap = -1;
    for (const auto& tx : txs) {
      const long gap = std::labs(long(tx.start_sample) - long(p));
      if (best_gap < 0 || gap < best_gap) {
        best_gap = gap;
        frame.client_id = tx.client_id;
      }
    }

    frame.source_ap = std::uint32_t(id_);
    frame.wire_seq = next_wire_seq_++;
    buffer_.push(frame);
    out.push_back(std::move(frame));
  }
  return out;
}

linalg::CMatrix AccessPointFrontEnd::calibrated_samples(
    const FrameCapture& frame) const {
  linalg::CMatrix out = frame.samples;
  if (calibration_.empty()) return out;
  const auto& offsets = calibration_.offsets();
  for (std::size_t m = 0; m < out.rows(); ++m) {
    const cplx corr =
        std::exp(-kJ * offsets[radio_of_element(frame.element_ids[m])]);
    for (std::size_t k = 0; k < out.cols(); ++k) out(m, k) *= corr;
  }
  return out;
}

double AccessPointFrontEnd::snr_db(const geom::Vec2& pos) const {
  const auto elements = capture_elements();
  const auto world = array_.world_positions();
  std::vector<geom::Vec2> positions;
  positions.reserve(elements.size());
  for (std::size_t e : elements) positions.push_back(world[e]);
  std::vector<double> heights;
  if (!element_heights_.empty())
    for (std::size_t e : elements) heights.push_back(element_heights_[e]);
  const auto resp =
      channel_->response(pos, array_.position(), positions, heights);
  return resp.total_power_dbm - channel_->config().noise_floor_dbm;
}

}  // namespace arraytrack::phy
