// ArrayTrack access-point front end.
//
// Stands in for the paper's two-WARP FPGA prototype (Fig. 11): eight
// radio chains driving a 16-antenna rectangular array through an
// antenna-select (AntSel) switch, a Schmidl-Cox-style packet detector,
// diversity synthesis across the two long training symbols (2.2), and
// a circular buffer of per-frame snapshots feeding the server.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "array/calibration.h"
#include "array/placed_array.h"
#include "channel/channel.h"
#include "dsp/detector.h"
#include "dsp/noise.h"
#include "dsp/preamble.h"
#include "phy/frame_buffer.h"

namespace arraytrack::phy {

struct ApConfig {
  std::size_t radios = 8;
  /// Capture the second antenna row via AntSel during LTS S1 (2.2).
  /// Off = plain 8-antenna linear array, on = 16 virtual antennas.
  bool diversity_synthesis = true;
  /// Snapshot samples per frame used for AoA (paper uses 10; 4.3.3).
  std::size_t snapshots = 10;
  /// Antenna switch transient; samples inside it are discarded (2.2).
  double switch_transient_s = 500e-9;
  /// Matched-filter detection threshold on normalized correlation.
  double detection_threshold = 0.35;
  std::size_t buffer_capacity = 128;
  std::uint64_t noise_seed = 1234;
  std::uint64_t radio_seed = 99;
};

/// One simulated transmission arriving at the AP (for collisions, pass
/// several with different start offsets).
struct Transmission {
  const std::vector<cplx>* waveform = nullptr;
  geom::Vec2 client_pos;
  std::size_t start_sample = 0;
  int client_id = -1;
  /// Client oscillator offset. Common-mode across antennas, so AoA is
  /// untouched (see dsp_cfo_test); it does rotate the constellation,
  /// which the detector path must tolerate.
  double cfo_hz = 0.0;
};

class AccessPointFrontEnd {
 public:
  /// `array` must use a rectangular (2 x radios) geometry when
  /// diversity synthesis is on, or have at least `radios` elements
  /// otherwise. `channel` must outlive the front end.
  AccessPointFrontEnd(int id, array::PlacedArray array,
                      const channel::MultipathChannel* channel,
                      ApConfig cfg = {});

  int id() const { return id_; }
  const array::PlacedArray& array() const { return array_; }
  const channel::MultipathChannel& channel() const { return *channel_; }
  const ApConfig& config() const { return cfg_; }
  CircularFrameBuffer& buffer() { return buffer_; }
  const CircularFrameBuffer& buffer() const { return buffer_; }
  const array::RadioBank& radios() const { return radios_; }

  /// Runs the two-pass phase calibration (section 3) and stores the
  /// result; captures taken afterwards can be calibrated exactly.
  void run_calibration();
  const array::PhaseCalibration& calibration() const { return calibration_; }
  bool calibrated() const { return !calibration_.empty(); }

  /// Element indices captured per frame: row 0 (+ row 1 when diversity
  /// synthesis is on).
  std::vector<std::size_t> capture_elements() const;

  /// Fast path used by the localization experiments: skips waveform
  /// synthesis and samples the narrowband channel directly, with
  /// per-sample receiver noise and per-radio LO offsets, exactly the
  /// data the detector path would deliver from the long training
  /// symbols. Pushes the capture into the buffer and returns it.
  FrameCapture capture_snapshot(const geom::Vec2& client_pos, double time_s,
                                int client_id = -1);

  /// Full pipeline: superposes the transmissions through the wideband
  /// channel, adds noise, runs packet detection on the radio streams,
  /// and extracts diversity-synthesized snapshots for each detected
  /// preamble. Returns captures in detection order (also buffered).
  std::vector<FrameCapture> receive(const std::vector<Transmission>& txs,
                                    double time_s);

  /// Applies the stored calibration to a capture, yielding the
  /// calibrated snapshot matrix the AoA engine consumes. Falls back to
  /// raw samples when never calibrated.
  linalg::CMatrix calibrated_samples(const FrameCapture& frame) const;

  /// Received SNR for a client at `pos` (mean over capture elements).
  double snr_db(const geom::Vec2& pos) const;

 private:
  // Radio LO offset for a given geometry element: the two antennas of a
  // diversity pair share one radio chain.
  std::size_t radio_of_element(std::size_t element) const;

  int id_;
  array::PlacedArray array_;
  const channel::MultipathChannel* channel_;
  /// Per-element heights when the geometry has vertical extent (the
  /// 3-D L-array extension); empty for flat arrays.
  std::vector<double> element_heights_;
  ApConfig cfg_;
  array::RadioBank radios_;
  array::PhaseCalibration calibration_;
  CircularFrameBuffer buffer_;
  mutable dsp::AwgnSource noise_;
  dsp::PreambleGenerator preamble_;
  /// Next capture sequence number (stamped into FrameCapture::wire_seq
  /// and carried by wire v1 records for ingest replay detection).
  std::uint64_t next_wire_seq_ = 0;
};

}  // namespace arraytrack::phy
