#include "phy/csi.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace arraytrack::phy {

std::vector<int> standard_subcarriers() {
  std::vector<int> out;
  out.reserve(52);
  for (int k = -26; k <= 26; ++k)
    if (k != 0) out.push_back(k);
  return out;
}

CsiCapture synthesize_csi(const channel::PathResponse& paths,
                          double subcarrier_spacing_hz,
                          const std::vector<int>& subcarriers,
                          double noise_power_mw, dsp::AwgnSource* noise) {
  const std::size_t antennas = paths.gains.cols();
  const std::size_t bins = subcarriers.size();

  CsiCapture csi;
  csi.h = linalg::CMatrix(antennas, bins);
  csi.subcarrier_offsets_hz.reserve(bins);
  for (int k : subcarriers)
    csi.subcarrier_offsets_hz.push_back(double(k) * subcarrier_spacing_hz);

  double signal_power = 0.0;
  for (std::size_t m = 0; m < antennas; ++m) {
    for (std::size_t b = 0; b < bins; ++b) {
      cplx h{0.0, 0.0};
      for (std::size_t p = 0; p < paths.delays_s.size(); ++p) {
        const double phase =
            -kTwoPi * csi.subcarrier_offsets_hz[b] * paths.delays_s[p];
        h += paths.gains(p, m) * std::exp(kJ * phase);
      }
      signal_power += std::norm(h);
      if (noise) h += noise->sample(noise_power_mw);
      csi.h(m, b) = h;
    }
  }
  signal_power /= double(antennas * bins);
  csi.snr_db = noise_power_mw > 0.0
                   ? dsp::linear_to_db(
                         std::max(signal_power, 1e-30) / noise_power_mw)
                   : 300.0;
  return csi;
}

CsiCapture extract_csi(const std::vector<std::vector<cplx>>& lts_windows,
                       const dsp::PreambleGenerator& preamble) {
  if (lts_windows.empty())
    throw std::invalid_argument("extract_csi: no antennas");
  const std::size_t n = preamble.lts_period();
  const std::size_t os = preamble.oversample();
  const double spacing = 312.5e3;

  const auto subcarriers = standard_subcarriers();
  CsiCapture csi;
  csi.h = linalg::CMatrix(lts_windows.size(), subcarriers.size());
  csi.subcarrier_offsets_hz.reserve(subcarriers.size());
  for (int k : subcarriers)
    csi.subcarrier_offsets_hz.push_back(double(k) * spacing);

  for (std::size_t m = 0; m < lts_windows.size(); ++m) {
    if (lts_windows[m].size() != n)
      throw std::invalid_argument("extract_csi: window length mismatch");
    const auto spectrum = dsp::fft(lts_windows[m]);
    for (std::size_t b = 0; b < subcarriers.size(); ++b) {
      const int k = subcarriers[b];
      const std::size_t idx =
          k >= 0 ? std::size_t(k) : std::size_t(std::ptrdiff_t(n) + k);
      csi.h(m, b) = spectrum[idx] / preamble.lts_frequency_symbol(k);
    }
  }
  (void)os;
  return csi;
}

}  // namespace arraytrack::phy
