#include "phy/wire.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace arraytrack::phy {
namespace {

constexpr std::uint32_t kMagic = 0x41545231;  // "ATR1"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Header layout (little endian):
//   u32 magic | u32 elements | u32 snapshots | u32 bits_per_rail
//   f64 timestamp | f64 snr_db | f64 scale | i32 client_id
//   u32 element_id[elements]
// followed by elements*snapshots { int I, int Q } packed rail-by-rail
// into ceil(bits/8) bytes each, two's complement.
constexpr std::size_t kFixedHeader = 4 * 4 + 3 * 8 + 4;

std::size_t rail_bytes(int bits) { return std::size_t((bits + 7) / 8); }

void put_signed(std::vector<std::uint8_t>& out, long v, std::size_t nbytes) {
  const std::uint64_t u = std::uint64_t(v);
  for (std::size_t i = 0; i < nbytes; ++i)
    out.push_back(std::uint8_t(u >> (8 * i)));
}

long get_signed(const std::uint8_t* p, std::size_t nbytes, int bits) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < nbytes; ++i) u |= std::uint64_t(p[i]) << (8 * i);
  // Sign-extend from `bits`.
  const std::uint64_t sign = 1ull << (bits - 1);
  if (u & sign) u |= ~((sign << 1) - 1);
  return long(std::int64_t(u));
}

}  // namespace

std::size_t WireFormat::encoded_size(std::size_t elements,
                                     std::size_t snapshots) const {
  return kFixedHeader + 4 * elements +
         elements * snapshots * 2 * rail_bytes(bits_per_rail);
}

double WireFormat::serialization_s(std::size_t elements,
                                   std::size_t snapshots,
                                   double link_bps) const {
  return double(encoded_size(elements, snapshots)) * 8.0 / link_bps;
}

std::vector<std::uint8_t> WireFormat::encode(const FrameCapture& frame) const {
  const std::size_t elements = frame.samples.rows();
  const std::size_t snapshots = frame.samples.cols();

  // Shared full-scale: max |I| or |Q| over the capture.
  double peak = 0.0;
  for (std::size_t m = 0; m < elements; ++m)
    for (std::size_t k = 0; k < snapshots; ++k) {
      peak = std::max(peak, std::abs(frame.samples(m, k).real()));
      peak = std::max(peak, std::abs(frame.samples(m, k).imag()));
    }
  if (peak == 0.0) peak = 1.0;
  const long qmax = (1l << (bits_per_rail - 1)) - 1;
  const double scale = peak / double(qmax);

  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(elements, snapshots));
  put_u32(out, kMagic);
  put_u32(out, std::uint32_t(elements));
  put_u32(out, std::uint32_t(snapshots));
  put_u32(out, std::uint32_t(bits_per_rail));
  put_f64(out, frame.timestamp_s);
  put_f64(out, frame.snr_db);
  put_f64(out, scale);
  put_u32(out, std::uint32_t(frame.client_id));
  for (std::size_t m = 0; m < elements; ++m)
    put_u32(out, std::uint32_t(m < frame.element_ids.size()
                                   ? frame.element_ids[m]
                                   : m));

  const std::size_t nb = rail_bytes(bits_per_rail);
  auto quantize = [&](double v) {
    return std::clamp(long(std::lround(v / scale)), -qmax, qmax);
  };
  for (std::size_t m = 0; m < elements; ++m) {
    for (std::size_t k = 0; k < snapshots; ++k) {
      put_signed(out, quantize(frame.samples(m, k).real()), nb);
      put_signed(out, quantize(frame.samples(m, k).imag()), nb);
    }
  }
  return out;
}

std::optional<FrameCapture> WireFormat::decode(
    const std::vector<std::uint8_t>& bytes) const {
  if (bytes.size() < kFixedHeader) return std::nullopt;
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kMagic) return std::nullopt;
  const std::size_t elements = get_u32(p + 4);
  const std::size_t snapshots = get_u32(p + 8);
  const int bits = int(get_u32(p + 12));
  if (bits < 2 || bits > 32 || elements == 0 || elements > 1024 ||
      snapshots == 0 || snapshots > 65536)
    return std::nullopt;

  FrameCapture frame;
  frame.timestamp_s = get_f64(p + 16);
  frame.snr_db = get_f64(p + 24);
  const double scale = get_f64(p + 32);
  frame.client_id = int(std::int32_t(get_u32(p + 40)));
  // A corrupted header must not smuggle NaN/inf into the pipeline (a
  // non-finite scale poisons every sample; a non-finite timestamp
  // breaks frame grouping and service deadlines). encode() can only
  // produce finite positive scales.
  if (!std::isfinite(frame.timestamp_s) || !std::isfinite(frame.snr_db) ||
      !std::isfinite(scale) || scale <= 0.0)
    return std::nullopt;
  // The largest magnitude get_signed can produce is 2^(bits-1); a huge
  // (but finite) corrupted scale would overflow samples to inf.
  if (!std::isfinite(scale * double(1ull << (bits - 1)))) return std::nullopt;

  const std::size_t nb = rail_bytes(bits);
  const std::size_t need =
      kFixedHeader + 4 * elements + elements * snapshots * 2 * nb;
  if (bytes.size() != need) return std::nullopt;

  const std::uint8_t* ids = p + kFixedHeader;
  frame.element_ids.resize(elements);
  for (std::size_t m = 0; m < elements; ++m)
    frame.element_ids[m] = get_u32(ids + 4 * m);

  const std::uint8_t* data = ids + 4 * elements;
  frame.samples = linalg::CMatrix(elements, snapshots);
  std::size_t off = 0;
  for (std::size_t m = 0; m < elements; ++m) {
    for (std::size_t k = 0; k < snapshots; ++k) {
      const long i = get_signed(data + off, nb, bits);
      off += nb;
      const long q = get_signed(data + off, nb, bits);
      off += nb;
      frame.samples(m, k) = cplx{double(i) * scale, double(q) * scale};
    }
  }
  return frame;
}

}  // namespace arraytrack::phy
