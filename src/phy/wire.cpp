#include "phy/wire.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace arraytrack::phy {
namespace {

constexpr std::uint32_t kMagicV0 = 0x41545231;       // bytes "1RTA"
constexpr std::uint32_t kMagicV1 = 0x41545232;       // bytes "2RTA"
constexpr std::uint32_t kMagicHandoff = 0x41545248;  // bytes "HRTA"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// v0 header layout (little endian):
//   u32 magic | u32 elements | u32 snapshots | u32 bits_per_rail
//   f64 timestamp | f64 snr_db | f64 scale | i32 client_id
//   u32 element_id[elements]
// followed by elements*snapshots { int I, int Q } packed rail-by-rail
// into ceil(bits/8) bytes each, two's complement.
constexpr std::size_t kFixedHeaderV0 = 4 * 4 + 3 * 8 + 4;

// v1 header layout (little endian):
//   u32 magic | u32 version | u32 elements | u32 snapshots
//   u32 bits_per_rail | u32 ap_id | u64 seq
//   f64 timestamp | f64 snr_db | f64 scale | i32 client_id
//   u32 element_id[elements]
// with the same payload packing as v0.
constexpr std::size_t kFixedHeaderV1 = 6 * 4 + 8 + 3 * 8 + 4;

std::size_t rail_bytes(int bits) { return std::size_t((bits + 7) / 8); }

void put_signed(std::vector<std::uint8_t>& out, long v, std::size_t nbytes) {
  const std::uint64_t u = std::uint64_t(v);
  for (std::size_t i = 0; i < nbytes; ++i)
    out.push_back(std::uint8_t(u >> (8 * i)));
}

long get_signed(const std::uint8_t* p, std::size_t nbytes, int bits) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < nbytes; ++i) u |= std::uint64_t(p[i]) << (8 * i);
  // Sign-extend from `bits`.
  const std::uint64_t sign = 1ull << (bits - 1);
  if (u & sign) u |= ~((sign << 1) - 1);
  return long(std::int64_t(u));
}

bool shape_ok(std::size_t elements, std::size_t snapshots, int bits) {
  return bits >= 2 && bits <= 32 && elements > 0 && elements <= 1024 &&
         snapshots > 0 && snapshots <= 65536;
}

// Shared scalar-field validation: a corrupted header must not smuggle
// NaN/inf into the pipeline (a non-finite scale poisons every sample;
// a non-finite timestamp breaks frame grouping and service deadlines).
// encode() can only produce finite positive scales.
bool scalars_ok(double timestamp_s, double snr_db, double scale, int bits) {
  if (!std::isfinite(timestamp_s) || !std::isfinite(snr_db) ||
      !std::isfinite(scale) || scale <= 0.0)
    return false;
  // The largest magnitude get_signed can produce is 2^(bits-1); a huge
  // (but finite) corrupted scale would overflow samples to inf.
  return std::isfinite(scale * double(1ull << (bits - 1)));
}

}  // namespace

int WireFormat::header_version(const std::uint8_t* bytes, std::size_t size) {
  if (size < 4) return -1;
  const std::uint32_t magic = get_u32(bytes);
  if (magic == kMagicV0) return 0;
  if (magic == kMagicV1)
    return size >= 8 ? int(std::min<std::uint32_t>(get_u32(bytes + 4),
                                                   0x7fffffffu))
                     : -1;
  return -1;
}

std::optional<int> WireFormat::peek_client(const std::uint8_t* bytes,
                                           std::size_t size) {
  const std::uint32_t magic = size >= 4 ? get_u32(bytes) : 0;
  if (magic == kMagicV0 && size >= kFixedHeaderV0)
    return int(std::int32_t(get_u32(bytes + 40)));
  if (magic == kMagicV1 && size >= kFixedHeaderV1)
    return int(std::int32_t(get_u32(bytes + 56)));
  return std::nullopt;
}

std::size_t WireFormat::encoded_size(std::size_t elements,
                                     std::size_t snapshots) const {
  const std::size_t header = version == 0 ? kFixedHeaderV0 : kFixedHeaderV1;
  return header + 4 * elements +
         elements * snapshots * 2 * rail_bytes(bits_per_rail);
}

double WireFormat::serialization_s(std::size_t elements,
                                   std::size_t snapshots,
                                   double link_bps) const {
  return double(encoded_size(elements, snapshots)) * 8.0 / link_bps;
}

std::vector<std::uint8_t> WireFormat::encode(const FrameCapture& frame) const {
  const std::size_t elements = frame.samples.rows();
  const std::size_t snapshots = frame.samples.cols();

  // Shared full-scale: max |I| or |Q| over the capture.
  double peak = 0.0;
  for (std::size_t m = 0; m < elements; ++m)
    for (std::size_t k = 0; k < snapshots; ++k) {
      peak = std::max(peak, std::abs(frame.samples(m, k).real()));
      peak = std::max(peak, std::abs(frame.samples(m, k).imag()));
    }
  if (peak == 0.0) peak = 1.0;
  const long qmax = (1l << (bits_per_rail - 1)) - 1;
  const double scale = peak / double(qmax);

  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(elements, snapshots));
  if (version == 0) {
    put_u32(out, kMagicV0);
  } else {
    put_u32(out, kMagicV1);
    put_u32(out, kVersion);
  }
  put_u32(out, std::uint32_t(elements));
  put_u32(out, std::uint32_t(snapshots));
  put_u32(out, std::uint32_t(bits_per_rail));
  if (version != 0) {
    put_u32(out, frame.source_ap);
    put_u64(out, frame.wire_seq);
  }
  put_f64(out, frame.timestamp_s);
  put_f64(out, frame.snr_db);
  put_f64(out, scale);
  put_u32(out, std::uint32_t(frame.client_id));
  for (std::size_t m = 0; m < elements; ++m)
    put_u32(out, std::uint32_t(m < frame.element_ids.size()
                                   ? frame.element_ids[m]
                                   : m));

  const std::size_t nb = rail_bytes(bits_per_rail);
  auto quantize = [&](double v) {
    return std::clamp(long(std::lround(v / scale)), -qmax, qmax);
  };
  for (std::size_t m = 0; m < elements; ++m) {
    for (std::size_t k = 0; k < snapshots; ++k) {
      put_signed(out, quantize(frame.samples(m, k).real()), nb);
      put_signed(out, quantize(frame.samples(m, k).imag()), nb);
    }
  }
  return out;
}

std::optional<FrameCapture> WireFormat::decode(
    const std::vector<std::uint8_t>& bytes) const {
  if (bytes.size() < 4) return std::nullopt;
  const std::uint8_t* p = bytes.data();
  const std::uint32_t magic = get_u32(p);

  FrameCapture frame;
  std::size_t header;
  std::size_t elements, snapshots;
  int bits;
  double scale;

  if (magic == kMagicV0) {
    if (!accept_legacy_v0) return std::nullopt;
    header = kFixedHeaderV0;
    if (bytes.size() < header) return std::nullopt;
    elements = get_u32(p + 4);
    snapshots = get_u32(p + 8);
    bits = int(get_u32(p + 12));
    if (!shape_ok(elements, snapshots, bits)) return std::nullopt;
    frame.timestamp_s = get_f64(p + 16);
    frame.snr_db = get_f64(p + 24);
    scale = get_f64(p + 32);
    frame.client_id = int(std::int32_t(get_u32(p + 40)));
  } else if (magic == kMagicV1) {
    header = kFixedHeaderV1;
    if (bytes.size() < header) return std::nullopt;
    if (get_u32(p + 4) != kVersion) return std::nullopt;
    elements = get_u32(p + 8);
    snapshots = get_u32(p + 12);
    bits = int(get_u32(p + 16));
    if (!shape_ok(elements, snapshots, bits)) return std::nullopt;
    frame.source_ap = get_u32(p + 20);
    frame.wire_seq = get_u64(p + 24);
    frame.timestamp_s = get_f64(p + 32);
    frame.snr_db = get_f64(p + 40);
    scale = get_f64(p + 48);
    frame.client_id = int(std::int32_t(get_u32(p + 56)));
  } else {
    return std::nullopt;
  }
  if (!scalars_ok(frame.timestamp_s, frame.snr_db, scale, bits))
    return std::nullopt;

  const std::size_t nb = rail_bytes(bits);
  const std::size_t need =
      header + 4 * elements + elements * snapshots * 2 * nb;
  if (bytes.size() != need) return std::nullopt;

  const std::uint8_t* ids = p + header;
  frame.element_ids.resize(elements);
  for (std::size_t m = 0; m < elements; ++m)
    frame.element_ids[m] = get_u32(ids + 4 * m);

  const std::uint8_t* data = ids + 4 * elements;
  frame.samples = linalg::CMatrix(elements, snapshots);
  std::size_t off = 0;
  for (std::size_t m = 0; m < elements; ++m) {
    for (std::size_t k = 0; k < snapshots; ++k) {
      const long i = get_signed(data + off, nb, bits);
      off += nb;
      const long q = get_signed(data + off, nb, bits);
      off += nb;
      frame.samples(m, k) = cplx{double(i) * scale, double(q) * scale};
    }
  }
  return frame;
}

std::vector<std::uint8_t> encode_handoff(const HandoffRecord& rec) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + rec.payload.size());
  put_u32(out, kMagicHandoff);
  put_u32(out, kVersion);
  put_u32(out, std::uint32_t(rec.client_id));
  put_u64(out, rec.seq);
  put_u32(out, std::uint32_t(rec.payload.size()));
  out.insert(out.end(), rec.payload.begin(), rec.payload.end());
  return out;
}

std::optional<HandoffRecord> decode_handoff(const std::uint8_t* bytes,
                                            std::size_t size) {
  constexpr std::size_t kHeader = 4 * 4 + 8;
  if (size < kHeader) return std::nullopt;
  if (get_u32(bytes) != kMagicHandoff) return std::nullopt;
  if (get_u32(bytes + 4) != kVersion) return std::nullopt;
  HandoffRecord rec;
  rec.client_id = int(std::int32_t(get_u32(bytes + 8)));
  rec.seq = get_u64(bytes + 12);
  const std::size_t len = get_u32(bytes + 20);
  if (size != kHeader + len) return std::nullopt;
  rec.payload.assign(bytes + kHeader, bytes + kHeader + len);
  return rec;
}

bool is_handoff_record(const std::uint8_t* bytes, std::size_t size) {
  return size >= 4 && get_u32(bytes) == kMagicHandoff;
}

}  // namespace arraytrack::phy
