// AP-to-server wire format (the "Tt" link of Fig. 1 / section 4.4).
//
// The prototype shipped (10 samples) x (32 bits I+Q) x (8 radios) per
// frame over the WARP's Ethernet. This module defines that record:
// a fixed header plus per-element quantized IQ samples, with the bit
// depth configurable (16+16 matches the paper's 32 bits per sample).
// Quantization uses a per-frame shared scale (max-abs normalization),
// mirroring the FPGA's fixed-point capture path.
//
// Two header generations exist:
//  * v0 ("1RTA" magic) — the original unversioned record. Accepted on
//    decode only behind the explicit `accept_legacy_v0` compat flag,
//    because it carries no sequence number: a concurrent ingest path
//    cannot tell a legacy duplicate from a fresh frame.
//  * v1 ("2RTA" magic + explicit version field) — adds the capturing
//    AP id and a per-AP monotonically increasing sequence number, so
//    the server's decoder threads can reject duplicates, detect
//    replays and count gaps at ingest (see service::LocationService).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/frame_buffer.h"

namespace arraytrack::phy {

struct WireFormat {
  /// Bits per rail (I or Q); the paper's 32-bit samples are 16+16.
  int bits_per_rail = 16;

  /// Header generation written by encode(): 1 (current) or 0 (legacy,
  /// for talking to pre-versioning servers).
  int version = 1;

  /// Accept legacy v0 records on decode. Off by default: v0 has no
  /// sequence numbers, so replayed or duplicated records are
  /// indistinguishable from fresh ones.
  bool accept_legacy_v0 = false;

  /// Serialized size in bytes for a capture of the given shape (header
  /// size depends on `version`).
  std::size_t encoded_size(std::size_t elements, std::size_t snapshots) const;

  /// Serialization time over a link, seconds (the Tt term).
  double serialization_s(std::size_t elements, std::size_t snapshots,
                         double link_bps) const;

  /// Encodes a frame capture. The element ids, timestamp, SNR and
  /// client tag ride along in the header; v1 additionally carries the
  /// frame's source_ap and wire_seq.
  std::vector<std::uint8_t> encode(const FrameCapture& frame) const;

  /// Decodes a record; returns nullopt on malformed input (short
  /// buffer, bad magic, unsupported version, impossible shape) and on
  /// v0 input unless `accept_legacy_v0` is set. Samples are
  /// reconstructed up to quantization error (see wire tests for the
  /// error bound). v1 fills the frame's source_ap / wire_seq; v0
  /// leaves them 0.
  std::optional<FrameCapture> decode(const std::vector<std::uint8_t>& bytes) const;

  /// Header generation of a raw record: 0 for a v0 magic, the header's
  /// version field for a v1 magic (whether or not it is supported), -1
  /// when the buffer is too short or the magic is unknown. Lets the
  /// ingest layer account "rejected because unversioned" separately
  /// from "malformed".
  static int header_version(const std::uint8_t* bytes, std::size_t size);

  /// Client id tagged in a raw record's header, without decoding the
  /// samples — the cluster front tier routes records by client shard
  /// before any node spends decode work on them. nullopt when the
  /// buffer is too short for the header or the magic is unknown.
  static std::optional<int> peek_client(const std::uint8_t* bytes,
                                        std::size_t size);
};

/// Session-handoff record: the wire v1 carrier for shard migration
/// between federation nodes. The payload is opaque at this layer (the
/// cluster layer serializes the session's tracker/subspace/history
/// state into it); the header carries the client being moved and a
/// per-handoff sequence number so the receiving node can account and
/// order migrations like any other v1 traffic.
///
/// Layout (little endian):
///   u32 magic "HRTA" | u32 version (1) | i32 client_id | u64 seq
///   | u32 payload_len | payload bytes
struct HandoffRecord {
  int client_id = -1;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_handoff(const HandoffRecord& rec);
/// nullopt on short buffer, bad magic, unsupported version, or a
/// payload length that disagrees with the buffer size.
std::optional<HandoffRecord> decode_handoff(const std::uint8_t* bytes,
                                            std::size_t size);
/// True when `bytes` starts with the handoff magic (cheap dispatch for
/// streams that interleave capture and handoff records).
bool is_handoff_record(const std::uint8_t* bytes, std::size_t size);

}  // namespace arraytrack::phy
