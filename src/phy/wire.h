// AP-to-server wire format (the "Tt" link of Fig. 1 / section 4.4).
//
// The prototype shipped (10 samples) x (32 bits I+Q) x (8 radios) per
// frame over the WARP's Ethernet. This module defines that record:
// a fixed header plus per-element quantized IQ samples, with the bit
// depth configurable (16+16 matches the paper's 32 bits per sample).
// Quantization uses a per-frame shared scale (max-abs normalization),
// mirroring the FPGA's fixed-point capture path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/frame_buffer.h"

namespace arraytrack::phy {

struct WireFormat {
  /// Bits per rail (I or Q); the paper's 32-bit samples are 16+16.
  int bits_per_rail = 16;

  /// Serialized size in bytes for a capture of the given shape.
  std::size_t encoded_size(std::size_t elements, std::size_t snapshots) const;

  /// Serialization time over a link, seconds (the Tt term).
  double serialization_s(std::size_t elements, std::size_t snapshots,
                         double link_bps) const;

  /// Encodes a frame capture. The element ids, timestamp, SNR and
  /// client tag ride along in the header.
  std::vector<std::uint8_t> encode(const FrameCapture& frame) const;

  /// Decodes a record; returns nullopt on malformed input (short
  /// buffer, bad magic, impossible shape). Samples are reconstructed
  /// up to quantization error (see wire tests for the error bound).
  std::optional<FrameCapture> decode(const std::vector<std::uint8_t>& bytes) const;
};

}  // namespace arraytrack::phy
