#include "phy/frame_buffer.h"

namespace arraytrack::phy {

bool CircularFrameBuffer::push(FrameCapture frame) {
  bool evicted = false;
  if (capacity_ > 0 && entries_.size() >= capacity_) {
    entries_.pop_front();
    evicted = true;
  }
  entries_.push_back(std::move(frame));
  return evicted;
}

std::optional<FrameCapture> CircularFrameBuffer::pop() {
  if (entries_.empty()) return std::nullopt;
  FrameCapture f = std::move(entries_.front());
  entries_.pop_front();
  return f;
}

std::vector<FrameCapture> CircularFrameBuffer::recent_from(
    int client_id, double now_s, double window_s) const {
  std::vector<FrameCapture> out;
  for (const auto& f : entries_) {
    if (f.client_id == client_id && now_s - f.timestamp_s <= window_s &&
        f.timestamp_s <= now_s)
      out.push_back(f);
  }
  return out;
}

}  // namespace arraytrack::phy
