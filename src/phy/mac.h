// Minimal 802.11 MAC framing and client traffic generation.
//
// ArrayTrack needs no frame *contents* — it reads raw preamble samples
// — but a deployment still needs to know WHICH client transmitted, and
// an evaluation needs realistic traffic timing. This module provides:
//  * a compact data-frame header (addresses, sequence number) with
//    IEEE CRC-32, serialized to bytes and mapped onto QPSK body
//    samples, so simulated frames carry real, checkable structure;
//  * a Poisson traffic source that schedules per-client transmissions
//    (the organic-traffic experiment driver).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "linalg/types.h"

namespace arraytrack::phy {

using MacAddress = std::array<std::uint8_t, 6>;

/// Pretty "xx:xx:xx:xx:xx:xx" form.
std::string to_string(const MacAddress& mac);

/// Deterministic locally-administered address for a client index.
MacAddress client_mac(int client_id);

/// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320).
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

struct MacFrame {
  std::uint16_t frame_control = 0x0008;  // data frame
  std::uint16_t duration = 0;
  MacAddress addr1{};  // receiver
  MacAddress addr2{};  // transmitter
  MacAddress addr3{};  // BSSID
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;

  /// Header + payload + FCS (CRC-32 of everything before it).
  std::vector<std::uint8_t> serialize() const;

  /// Parses and verifies the FCS; nullopt on short input or CRC error.
  static std::optional<MacFrame> parse(const std::vector<std::uint8_t>& bytes);

  /// Maps the serialized frame onto unit-power QPSK body samples
  /// (2 bits per sample), ready to append to a preamble.
  std::vector<cplx> to_qpsk() const;

  /// Inverse of to_qpsk (hard decisions); nullopt if the recovered
  /// bytes fail the FCS.
  static std::optional<MacFrame> from_qpsk(const std::vector<cplx>& symbols);
};

/// Poisson traffic source: schedules frame transmissions for a set of
/// clients with independent exponential inter-arrival times.
class TrafficSource {
 public:
  struct Event {
    double time_s;
    int client_id;
    std::uint16_t sequence;
  };

  /// `rate_hz` frames per second per client.
  TrafficSource(std::size_t clients, double rate_hz, std::uint64_t seed);

  /// All events in [0, duration_s), time-sorted.
  std::vector<Event> schedule(double duration_s);

 private:
  std::size_t clients_;
  double rate_hz_;
  std::mt19937_64 rng_;
};

}  // namespace arraytrack::phy
