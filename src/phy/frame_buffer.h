// Circular frame buffer (paper section 2.1, Fig. 1).
//
// The FPGA design stores the preamble snapshots of each detected frame
// into a circular buffer, one logical entry per frame; the server pulls
// entries out asynchronously. We keep the same structure: bounded
// capacity, overwrite-oldest, timestamped entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace arraytrack::phy {

/// Snapshot samples for one detected frame at one AP.
struct FrameCapture {
  double timestamp_s = 0.0;
  /// Raw (uncalibrated) snapshots: rows = antenna elements, cols = the
  /// ~10 preamble samples used for AoA.
  linalg::CMatrix samples;
  /// Geometry element index of each row in `samples`.
  std::vector<std::size_t> element_ids;
  /// Receiver SNR estimate for this frame, dB.
  double snr_db = 0.0;
  /// Simulation-only ground truth tag (which client transmitted); a
  /// real AP would identify the transmitter from the MAC header when
  /// available. Negative when unknown.
  int client_id = -1;
  /// Id of the AP that captured this frame; carried by wire v1 headers
  /// so the server can reject mis-addressed records.
  std::uint32_t source_ap = 0;
  /// Per-AP monotonically increasing capture sequence number, stamped
  /// by the front end. Wire v1 carries it so the ingest layer can
  /// detect duplicates, replays and gaps; meaningless for legacy v0
  /// records (always 0).
  std::uint64_t wire_seq = 0;
};

class CircularFrameBuffer {
 public:
  explicit CircularFrameBuffer(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Appends a frame, evicting the oldest when full. Returns true if an
  /// entry was evicted.
  bool push(FrameCapture frame);

  /// Oldest-first access.
  const FrameCapture& at(std::size_t i) const { return entries_.at(i); }
  const FrameCapture& newest() const { return entries_.back(); }

  /// Removes and returns the oldest entry.
  std::optional<FrameCapture> pop();

  /// All frames from `client_id` captured within `window_s` of
  /// `now_s`, oldest first — the grouping input for the multipath
  /// suppression step.
  std::vector<FrameCapture> recent_from(int client_id, double now_s,
                                        double window_s) const;

  void clear() { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<FrameCapture> entries_;
};

}  // namespace arraytrack::phy
