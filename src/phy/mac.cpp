#include "phy/mac.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace arraytrack::phy {
namespace {

constexpr std::size_t kHeaderBytes = 2 + 2 + 6 * 3 + 2;  // 24
constexpr double kQpskAmp = 0.70710678118654752440;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v & 0xff));
  out.push_back(std::uint8_t(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return std::uint16_t(p[0] | (std::uint16_t(p[1]) << 8));
}

}  // namespace

std::string to_string(const MacAddress& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

MacAddress client_mac(int client_id) {
  // 02:... = locally administered, unicast.
  const std::uint32_t id = std::uint32_t(client_id);
  return {0x02, 0xa7, 0x00, std::uint8_t(id >> 16), std::uint8_t(id >> 8),
          std::uint8_t(id)};
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return ~crc;
}

std::vector<std::uint8_t> MacFrame::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + 4);
  put_u16(out, frame_control);
  put_u16(out, duration);
  for (const auto& a : {addr1, addr2, addr3})
    out.insert(out.end(), a.begin(), a.end());
  put_u16(out, sequence);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t fcs = crc32(out.data(), out.size());
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(fcs >> (8 * i)));
  return out;
}

std::optional<MacFrame> MacFrame::parse(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes + 4) return std::nullopt;
  const std::size_t body = bytes.size() - 4;
  std::uint32_t fcs = 0;
  for (int i = 0; i < 4; ++i)
    fcs |= std::uint32_t(bytes[body + std::size_t(i)]) << (8 * i);
  if (crc32(bytes.data(), body) != fcs) return std::nullopt;

  MacFrame f;
  f.frame_control = get_u16(bytes.data());
  f.duration = get_u16(bytes.data() + 2);
  std::copy_n(bytes.begin() + 4, 6, f.addr1.begin());
  std::copy_n(bytes.begin() + 10, 6, f.addr2.begin());
  std::copy_n(bytes.begin() + 16, 6, f.addr3.begin());
  f.sequence = get_u16(bytes.data() + 22);
  f.payload.assign(bytes.begin() + std::ptrdiff_t(kHeaderBytes),
                   bytes.begin() + std::ptrdiff_t(body));
  return f;
}

std::vector<cplx> MacFrame::to_qpsk() const {
  const auto bytes = serialize();
  std::vector<cplx> out;
  out.reserve(bytes.size() * 4);
  for (std::uint8_t b : bytes) {
    for (int pair = 0; pair < 4; ++pair) {
      const int bits = (b >> (2 * pair)) & 0x3;
      out.push_back(cplx{(bits & 1) ? kQpskAmp : -kQpskAmp,
                         (bits & 2) ? kQpskAmp : -kQpskAmp});
    }
  }
  return out;
}

std::optional<MacFrame> MacFrame::from_qpsk(
    const std::vector<cplx>& symbols) {
  if (symbols.size() % 4 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(symbols.size() / 4);
  for (std::size_t i = 0; i < symbols.size(); i += 4) {
    std::uint8_t b = 0;
    for (int pair = 0; pair < 4; ++pair) {
      const cplx s = symbols[i + std::size_t(pair)];
      const int bits = (s.real() > 0 ? 1 : 0) | (s.imag() > 0 ? 2 : 0);
      b |= std::uint8_t(bits << (2 * pair));
    }
    bytes.push_back(b);
  }
  return parse(bytes);
}

TrafficSource::TrafficSource(std::size_t clients, double rate_hz,
                             std::uint64_t seed)
    : clients_(clients), rate_hz_(rate_hz), rng_(seed) {}

std::vector<TrafficSource::Event> TrafficSource::schedule(double duration_s) {
  std::exponential_distribution<double> gap(rate_hz_);
  std::vector<Event> events;
  for (std::size_t c = 0; c < clients_; ++c) {
    double t = gap(rng_);
    std::uint16_t seq = 0;
    while (t < duration_s) {
      events.push_back({t, int(c), seq++});
      t += gap(rng_);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time_s < b.time_s; });
  return events;
}

}  // namespace arraytrack::phy
