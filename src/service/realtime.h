// Event-driven real-time server simulation (paper 4.4 made dynamic).
//
// The latency bench measures the static budget Td + Tt + Tl + Tp; this
// module answers the operational question behind the paper's "100 ms,
// real-time" claim: when frames arrive on their own schedule, what
// end-to-end latency does each location fix see, including queueing at
// a backend that consumes jobs one at a time (each job's per-AP
// pipelines and grid rows fan out on the shared core::ThreadPool, so
// the measured Tp reflects the parallel server)?
//
// For every transmitted frame: the AoA samples exist Td after the
// preamble starts, reach the server Tt + Tl later, wait for the server
// to go idle, and take Tp (measured wall-clock of the real pipeline,
// scaled if desired) to turn into a fix.
//
// Since the LocationService grew a measured-cost virtual mode, this is
// a thin wrapper over it: RealtimeSimulator::run configures a
// single-worker, single-shard, batch-of-one service whose modeled
// timeline advances by the measured pipeline time — the same event-loop
// semantics this module used to implement directly. The header stays in
// namespace arraytrack::core (and is re-exported from core/realtime.h)
// so existing callers do not change.
#pragma once

#include <cstddef>
#include <vector>

#include "core/arraytrack.h"
#include "core/latency.h"

namespace arraytrack::core {

struct RealtimeOptions {
  LatencyModel latency;
  /// Scale on the measured wall-clock processing time (1.0 = this
  /// machine; ~5.0 approximates the paper's Matlab backend).
  double processing_scale = 1.0;
  /// Frames for the same client arriving while an earlier job is still
  /// queued are coalesced into it (the server refreshes a location, it
  /// does not replay history).
  bool coalesce_per_client = true;
};

struct FrameEvent {
  double time_s = 0.0;
  int client_id = -1;
  geom::Vec2 position;  // ground truth at transmit time
};

struct FixRecord {
  int client_id = -1;
  double frame_time_s = 0.0;  // transmit time of the newest frame used
  double ready_time_s = 0.0;  // when the fix left the server
  double latency_s = 0.0;     // ready - frame end
  double error_m = 0.0;
  geom::Vec2 position;
};

struct RealtimeReport {
  std::vector<FixRecord> fixes;
  std::size_t frames_in = 0;
  std::size_t jobs_coalesced = 0;
  double duration_s = 0.0;
  /// Width of the shared pool the measured server fanned out on (the
  /// backend consumes jobs serially, but each job's per-AP pipelines
  /// and grid rows run pool-parallel).
  std::size_t pool_threads = 0;

  double fix_rate_hz() const {
    return duration_s > 0.0 ? double(fixes.size()) / duration_s : 0.0;
  }
  /// Latency percentile over the produced fixes (p in [0, 100]).
  double latency_percentile(double p) const;
  double median_error_m() const;
};

/// Drives a System through a frame schedule and models the server as a
/// single worker consuming AoA records in arrival order.
class RealtimeSimulator {
 public:
  /// `system` must outlive the simulator and have its APs installed.
  RealtimeSimulator(System* system, RealtimeOptions opt = {});

  /// `schedule` must be sorted by time. Returns the full report.
  RealtimeReport run(const std::vector<FrameEvent>& schedule);

 private:
  System* system_;
  RealtimeOptions opt_;
};

}  // namespace arraytrack::core
