#include "service/realtime.h"

#include <algorithm>

#include "core/thread_pool.h"
#include "service/service.h"

namespace arraytrack::core {

double RealtimeReport::latency_percentile(double p) const {
  if (fixes.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(fixes.size());
  for (const auto& f : fixes) lat.push_back(f.latency_s);
  std::sort(lat.begin(), lat.end());
  const double rank = (p / 100.0) * double(lat.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = rank - double(lo);
  return (1.0 - frac) * lat[lo] + frac * lat[hi];
}

double RealtimeReport::median_error_m() const {
  if (fixes.empty()) return 0.0;
  std::vector<double> e;
  e.reserve(fixes.size());
  for (const auto& f : fixes) e.push_back(f.error_m);
  std::sort(e.begin(), e.end());
  return e[e.size() / 2];
}

RealtimeSimulator::RealtimeSimulator(System* system, RealtimeOptions opt)
    : system_(system), opt_(opt) {}

RealtimeReport RealtimeSimulator::run(
    const std::vector<FrameEvent>& schedule) {
  RealtimeReport report;
  report.frames_in = schedule.size();
  report.pool_threads = ThreadPool::shared().size();
  if (schedule.empty()) return report;
  report.duration_s = schedule.back().time_s - schedule.front().time_s;

  // The single Matlab-style backend as a LocationService special case:
  // one worker, one shard (a global FIFO), no batching, an effectively
  // unbounded queue, and no SLO shedding. measured_cost drives the
  // modeled timeline from the measured pipeline wall time, exactly the
  // event loop this module used to implement.
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.shards = 1;
  sopt.batch_max = 1;
  sopt.shard_queue_capacity = std::size_t(1) << 20;
  sopt.latency_slo_s = 0.0;
  sopt.coalesce_per_client = opt_.coalesce_per_client;
  sopt.tracked_fixes = false;
  sopt.transport = opt_.latency;
  sopt.virtual_clock = true;
  sopt.measured_cost = true;
  sopt.processing_scale = opt_.processing_scale;

  service::LocationService svc(system_, sopt);
  const service::ServiceReport srep = svc.run(schedule);

  report.jobs_coalesced = srep.jobs_coalesced;
  report.fixes.reserve(srep.fixes.size());
  for (const auto& f : srep.fixes) {
    FixRecord rec;
    rec.client_id = f.client_id;
    rec.frame_time_s = f.frame_time_s;
    rec.latency_s = f.latency_s;
    rec.ready_time_s = f.frame_time_s + f.latency_s;
    rec.position = f.position;
    rec.error_m = f.error_m >= 0.0 ? f.error_m : 0.0;
    report.fixes.push_back(rec);
  }
  return report;
}

}  // namespace arraytrack::core
