// Time source for the serving engine.
//
// Wall mode reads the steady clock (seconds since construction), which
// is what a deployed service sheds load against. Virtual mode reads a
// value the driver advances explicitly between submissions: every
// admission, coalescing and shedding decision then depends only on the
// submitted event times, so a multi-worker run is reproducible bit for
// bit — the property tests/service_test.cpp leans on.
#pragma once

#include <atomic>
#include <chrono>

namespace arraytrack::service {

class ServiceClock {
 public:
  explicit ServiceClock(bool virtual_mode)
      : virtual_(virtual_mode), epoch_(std::chrono::steady_clock::now()) {}

  bool is_virtual() const { return virtual_; }

  /// Seconds on the active timeline.
  double now() const {
    if (virtual_) return virtual_now_.load(std::memory_order_acquire);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Advances the virtual timeline (driver thread; no effect needed in
  /// wall mode). Time never moves backwards.
  void set(double t) {
    double cur = virtual_now_.load(std::memory_order_relaxed);
    while (t > cur && !virtual_now_.compare_exchange_weak(
                          cur, t, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

 private:
  bool virtual_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<double> virtual_now_{0.0};
};

}  // namespace arraytrack::service
